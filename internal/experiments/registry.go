package experiments

import "fmt"

// Experiment is one registered table/figure reproduction.
type Experiment struct {
	ID    string
	Title string
	Run   func(*Context) (*Result, error)
}

// All lists every experiment in paper order, followed by the ablations.
var All = []Experiment{
	{"fig03", "SZ error distribution is uniform", Fig03ErrorDistribution},
	{"fig04", "FFT error distribution vs model", Fig04FFTErrorDistribution},
	{"fig05", "FFT error variance vs model", Fig05FFTErrorVariance},
	{"fig06", "Halo candidate cells before/after compression", Fig06CandidateCells},
	{"fig07", "Halo mass distribution vs error bound", Fig07HaloMassDistribution},
	{"table1", "Mass difference per changed cell", Table1MassPerChangedCell},
	{"fig08", "Fault-cell estimate vs measurement", Fig08FaultCellEstimate},
	{"fig09", "Per-partition bit-rate curves", Fig09BitrateCurves},
	{"fig10a", "C_m prediction accuracy", Fig10aCmPrediction},
	{"fig10b", "Ratio consistency across snapshots", Fig10bRatioConsistency},
	{"fig11", "Optimized error-bound map", Fig11ErrorBoundMap},
	{"fig12", "Bit-quality ratio equalization", Fig12BitQualityRatio},
	{"fig13", "Power-spectrum preservation", Fig13PowerSpectrum},
	{"fig14", "Effective-cell histogram", Fig14EffectiveCellHistogram},
	{"fig15", "Ratio improvement on all six fields", Fig15RatioAllFields},
	{"fig16", "Improvement across redshifts", Fig16Redshifts},
	{"fig17", "Error-bound maps early vs late", Fig17RedshiftEbMaps},
	{"fig18", "Improvement vs partition size", Fig18PartitionSize},
	{"fig19", "Improvement vs simulation scale", Fig19SimulationScale},
	{"sec43", "In situ overhead", Sec43Overhead},
	{"ablation-predictor", "Ablation: predictor", AblationPredictor},
	{"ablation-quant", "Ablation: quantization placement", AblationQuantPlacement},
	{"ablation-clamp", "Ablation: clamp factor", AblationClamp},
	{"ablation-strategy", "Ablation: allocation strategy", AblationStrategy},
	{"ablation-cm", "Ablation: C_m predictor source", AblationCmSource},
	{"ablation-compressor", "Ablation: SZ vs ZFP", AblationCompressor},
	{"codec-adaptive", "Cross-codec adaptive vs static", CrossCodecAdaptive},
	{"timeseries", "Streaming pipeline: recalibration policies over time", TimeseriesPipeline},
}

// ByID returns the experiment with the given ID.
func ByID(id string) (Experiment, error) {
	for _, e := range All {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("experiments: unknown id %q", id)
}
