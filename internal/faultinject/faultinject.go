// Package faultinject is the deterministic fault-injection harness behind
// the chaos test suite: every failure mode the fault-tolerance layer claims
// to survive — torn archive writes, connection resets, latency spikes,
// mid-batch panics — is reproduced here as a scripted, seed-driven fault,
// so "the service survives a crash" is a repeatable unit test instead of
// an anecdote.
//
// Everything is deterministic on purpose. A Plan is seeded; the faults it
// derives (which byte a write tears at, which accept a listener resets)
// come from its own PRNG, never from wall-clock time or scheduler races.
// Re-running a failed chaos test with the same seed replays the identical
// fault sequence.
package faultinject

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"time"
)

// ErrInjected is the root of every error this package fabricates; tests
// assert errors.Is(err, ErrInjected) to distinguish an injected fault from
// a real one leaking through.
var ErrInjected = errors.New("injected fault")

// Plan is a seeded source of deterministic fault decisions. One Plan
// typically scripts one chaos scenario; its methods hand out wrapped
// writers, conns, and panic schedules that all draw from the same PRNG
// stream, so the whole scenario replays from one seed.
type Plan struct {
	mu  sync.Mutex
	rng *rand.Rand
}

// NewPlan seeds a plan. Equal seeds produce equal fault sequences.
func NewPlan(seed int64) *Plan {
	return &Plan{rng: rand.New(rand.NewSource(seed))}
}

// Intn draws a deterministic integer in [0, n) from the plan's stream.
func (p *Plan) Intn(n int) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.rng.Intn(n)
}

// Float64 draws a deterministic float in [0, 1) from the plan's stream.
func (p *Plan) Float64() float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.rng.Float64()
}

// --- Torn writes ----------------------------------------------------------

// TornWriter wraps an io.Writer and tears the stream at a scripted byte
// offset: bytes up to the offset pass through, the write that crosses it
// reports a short-write error, and every later write fails. That is what a
// kill -9 (or a full disk, or a dying node) leaves behind: a prefix of the
// intended bytes with no footer — exactly the artifact core.RecoverStream
// exists to salvage.
type TornWriter struct {
	w       io.Writer
	remain  int64 // bytes still allowed through
	torn    bool
	written int64
}

// NewTornWriter tears w after exactly n bytes have passed through.
func NewTornWriter(w io.Writer, n int64) *TornWriter {
	return &TornWriter{w: w, remain: n}
}

// TornWriterWithin tears w at a plan-chosen offset in [min, max).
func (p *Plan) TornWriterWithin(w io.Writer, min, max int64) *TornWriter {
	if max <= min {
		max = min + 1
	}
	return NewTornWriter(w, min+int64(p.Intn(int(max-min))))
}

// Write forwards the allowed prefix and then fails, mimicking a crash
// mid-write: the destination keeps what was written before the tear.
func (tw *TornWriter) Write(b []byte) (int, error) {
	if tw.torn {
		return 0, fmt.Errorf("faultinject: write after tear: %w", ErrInjected)
	}
	if int64(len(b)) <= tw.remain {
		n, err := tw.w.Write(b)
		tw.written += int64(n)
		tw.remain -= int64(n)
		return n, err
	}
	tw.torn = true
	n := 0
	if tw.remain > 0 {
		n, _ = tw.w.Write(b[:tw.remain])
		tw.written += int64(n)
		tw.remain = 0
	}
	return n, fmt.Errorf("faultinject: torn write after %d bytes: %w", tw.written, ErrInjected)
}

// Written reports how many bytes reached the destination.
func (tw *TornWriter) Written() int64 { return tw.written }

// Torn reports whether the tear has happened yet.
func (tw *TornWriter) Torn() bool { return tw.torn }

// --- Connection faults ----------------------------------------------------

// ConnFaults scripts the failure behavior of one wrapped connection.
type ConnFaults struct {
	// ResetAfterBytes closes the connection (RST-style: reads and writes
	// fail) once this many bytes have moved in either direction combined.
	// Zero means never.
	ResetAfterBytes int64
	// DropAfterWrites closes the connection (RST-style) once this many
	// Write calls have completed — "the link died after the N-th message",
	// the scripted form of a peer crashing between frames. Zero means
	// never.
	DropAfterWrites int
	// BlackholeWrites simulates a one-way partition: writes report success
	// without a byte reaching the peer, while reads still flow. This is
	// the asymmetric failure a heartbeat detector must catch (the sick
	// rank still hears the world but the world stops hearing it).
	BlackholeWrites bool
	// ReadLatency and WriteLatency delay every read/write — the latency
	// spike injection. Zero means no delay.
	ReadLatency, WriteLatency time.Duration
	// Sleep, when set, replaces time.Sleep for latency injection — wire a
	// Clock's Sleep here and latency tests advance a fake clock instead of
	// stalling the test binary. Nil means real time.Sleep.
	Sleep func(time.Duration)
}

// healthy reports whether the script injects nothing, so WrapListener can
// hand back the bare conn.
func (f ConnFaults) healthy() bool {
	return f.ResetAfterBytes == 0 && f.DropAfterWrites == 0 && !f.BlackholeWrites &&
		f.ReadLatency == 0 && f.WriteLatency == 0
}

// sleep applies an injected delay through the configured seam.
func (f *ConnFaults) sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	if f.Sleep != nil {
		f.Sleep(d)
		return
	}
	time.Sleep(d)
}

// Conn wraps a net.Conn with scripted faults. It is what a chaos test
// hands to an HTTP transport to see resets and latency spikes without a
// hostile network.
type Conn struct {
	net.Conn
	faults ConnFaults

	mu     sync.Mutex
	moved  int64
	writes int
	reset  bool
}

// WrapConn applies scripted faults to a live connection.
func WrapConn(c net.Conn, f ConnFaults) *Conn {
	return &Conn{Conn: c, faults: f}
}

func (c *Conn) charge(n int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.moved += int64(n)
	if c.faults.ResetAfterBytes > 0 && c.moved >= c.faults.ResetAfterBytes && !c.reset {
		c.reset = true
		c.Conn.Close()
		return fmt.Errorf("faultinject: connection reset after %d bytes: %w", c.moved, ErrInjected)
	}
	if c.reset {
		return fmt.Errorf("faultinject: connection already reset: %w", ErrInjected)
	}
	return nil
}

func (c *Conn) Read(b []byte) (int, error) {
	c.faults.sleep(c.faults.ReadLatency)
	c.mu.Lock()
	if c.reset {
		c.mu.Unlock()
		return 0, fmt.Errorf("faultinject: read on reset connection: %w", ErrInjected)
	}
	c.mu.Unlock()
	n, err := c.Conn.Read(b)
	if cerr := c.charge(n); cerr != nil && err == nil {
		err = cerr
	}
	return n, err
}

func (c *Conn) Write(b []byte) (int, error) {
	c.faults.sleep(c.faults.WriteLatency)
	c.mu.Lock()
	if c.reset {
		c.mu.Unlock()
		return 0, fmt.Errorf("faultinject: write on reset connection: %w", ErrInjected)
	}
	if c.faults.BlackholeWrites {
		// One-way partition: the caller sees success, the peer sees
		// silence. Bytes are not charged — nothing moved.
		c.mu.Unlock()
		return len(b), nil
	}
	c.mu.Unlock()
	n, err := c.Conn.Write(b)
	if cerr := c.charge(n); cerr != nil && err == nil {
		err = cerr
	}
	c.mu.Lock()
	// The N-th message is delivered, then the link dies: the writer only
	// notices on its next call, like a real RST racing a send.
	c.writes++
	if c.faults.DropAfterWrites > 0 && c.writes >= c.faults.DropAfterWrites && !c.reset {
		c.reset = true
		c.Conn.Close()
	}
	c.mu.Unlock()
	return n, err
}

// Listener wraps a net.Listener, applying per-accept fault scripts: the
// decide callback is invoked with each accept's ordinal and returns the
// faults for that connection (zero ConnFaults = a healthy conn).
type Listener struct {
	net.Listener
	decide func(accept int) ConnFaults

	mu sync.Mutex
	n  int
}

// WrapListener scripts faults per accepted connection.
func WrapListener(l net.Listener, decide func(accept int) ConnFaults) *Listener {
	return &Listener{Listener: l, decide: decide}
}

func (l *Listener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	l.mu.Lock()
	i := l.n
	l.n++
	l.mu.Unlock()
	f := l.decide(i)
	if f.healthy() {
		return c, nil
	}
	return WrapConn(c, f), nil
}

// --- Deterministic clock --------------------------------------------------

// Clock is a manually advanced clock for testing time-dependent logic
// (backoff, circuit-breaker cooldowns, Retry-After estimation) without
// sleeping. The zero time starts at a fixed epoch so failures print
// readable offsets.
type Clock struct {
	mu  sync.Mutex
	now time.Time
	// sleeps records every Sleep duration, in order — the assertion
	// surface for backoff tests.
	sleeps []time.Duration
}

// NewClock starts a clock at a fixed deterministic epoch.
func NewClock() *Clock {
	return &Clock{now: time.Date(2021, 6, 21, 0, 0, 0, 0, time.UTC)}
}

// Now returns the current fake time.
func (c *Clock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Advance moves the clock forward.
func (c *Clock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
}

// Sleep records the request and advances the clock instantly — no real
// time passes, so a thousand-retry backoff test runs in microseconds.
func (c *Clock) Sleep(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sleeps = append(c.sleeps, d)
	c.now = c.now.Add(d)
}

// Sleeps returns a copy of every recorded Sleep duration.
func (c *Clock) Sleeps() []time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]time.Duration, len(c.sleeps))
	copy(out, c.sleeps)
	return out
}

// --- Scheduled panics -----------------------------------------------------

// PanicSchedule fires a panic on scripted call ordinals: the chaos suite's
// way to detonate inside a specific batch or field without racing the
// scheduler. Call Check at the instrumented site; it panics on the n-th
// call (1-based) for each scheduled n.
type PanicSchedule struct {
	mu    sync.Mutex
	calls int
	at    map[int]bool
}

// PanicAt schedules panics at the given 1-based call ordinals.
func PanicAt(ordinals ...int) *PanicSchedule {
	at := make(map[int]bool, len(ordinals))
	for _, n := range ordinals {
		at[n] = true
	}
	return &PanicSchedule{at: at}
}

// Check counts one call and panics if this ordinal is scheduled. The panic
// value wraps ErrInjected so recovery sites can classify it.
func (ps *PanicSchedule) Check() {
	ps.mu.Lock()
	ps.calls++
	n := ps.calls
	fire := ps.at[n]
	ps.mu.Unlock()
	if fire {
		panic(fmt.Errorf("faultinject: scheduled panic at call %d: %w", n, ErrInjected))
	}
}

// Calls reports how many times Check has run.
func (ps *PanicSchedule) Calls() int {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	return ps.calls
}
