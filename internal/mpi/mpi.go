// Package mpi provides a small message-passing runtime that stands in for
// MPI in the paper's in situ protocol. Each "rank" owns one set of compute
// partitions; the collectives mirror the MPI operations the paper uses
// (notably MPI_Allreduce for the global mean, Sec. 3.6/4.3) with
// deterministic, rank-ordered reductions so runs are bit-reproducible
// regardless of scheduling.
//
// The collectives are defined on Comm, which delegates to a Transport: the
// default in-process world (goroutine ranks sharing memory, mpi.Run) and
// the TCP transport in internal/mpinet implement the same interface, so
// the protocol code above is identical on one machine and on a cluster.
//
// Failure semantics: a rank that panics or returns an error poisons the
// in-process world — every subsequent or in-flight collective on any peer
// fails fast with a typed *apierr.RankFailedError instead of deadlocking
// on a barrier the dead rank will never enter. The in-process world cannot
// recover (the ranks share one address space, so a dead rank means suspect
// state); the TCP transport recovers by opening a new membership epoch.
package mpi

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/apierr"
)

// Op is a reduction operator.
type Op int

const (
	// OpSum adds contributions in rank order.
	OpSum Op = iota
	// OpMin takes the minimum.
	OpMin
	// OpMax takes the maximum.
	OpMax
)

func (o Op) String() string {
	switch o {
	case OpSum:
		return "sum"
	case OpMin:
		return "min"
	case OpMax:
		return "max"
	default:
		return fmt.Sprintf("Op(%d)", int(o))
	}
}

// Apply folds b into a. Exported so transports outside this package
// (internal/mpinet's coordinator) reduce with the exact same operator.
func (o Op) Apply(a, b float64) float64 {
	switch o {
	case OpSum:
		return a + b
	case OpMin:
		if b < a {
			return b
		}
		return a
	case OpMax:
		if b > a {
			return b
		}
		return a
	default:
		panic("mpi: unknown op")
	}
}

// Transport is the engine underneath a communicator: it executes the
// collectives and point-to-point sends for one rank. Implementations must
// reduce in ascending rank order (the bit-reproducibility contract) and
// must fail pending and future calls with a typed *apierr.RankFailedError
// — never hang — when a peer is lost.
type Transport interface {
	// Rank is this rank's index in [0, Size).
	Rank() int
	// Size is the number of ranks the world started with. It does not
	// shrink on failure; Alive reports current membership.
	Size() int
	// Epoch is the membership epoch: 0 at start, bumped every time a rank
	// is declared failed or leaves. The in-process world stays at 0.
	Epoch() int
	// Alive lists the ranks currently believed alive, ascending.
	Alive() []int
	// Barrier blocks until every alive rank has entered it.
	Barrier() error
	// Allreduce combines one scalar per rank; every rank gets the result.
	Allreduce(v float64, op Op) (float64, error)
	// AllreduceSlice element-wise reduces equal-length vectors.
	AllreduceSlice(v []float64, op Op) ([]float64, error)
	// Allgather collects one scalar per rank in rank order.
	Allgather(v float64) ([]float64, error)
	// AllgatherSlice concatenates per-rank vectors in rank order; the
	// vectors may have different lengths.
	AllgatherSlice(v []float64) ([]float64, error)
	// Bcast distributes root's value to every rank.
	Bcast(v float64, root int) (float64, error)
	// Send delivers a vector to a peer (buffered, copied).
	Send(to int, data []float64) error
	// Recv blocks for the next vector from a peer.
	Recv(from int) ([]float64, error)
	// Stats reports collectives and point-to-point messages executed.
	Stats() (collectives, messages int64)
}

// Comm is one rank's handle on a communicator. All methods delegate to the
// underlying Transport.
type Comm struct {
	t Transport
}

// NewComm wraps a transport — the seam through which internal/mpinet's TCP
// transport (or any future one) drives the same protocol code as the
// in-process world.
func NewComm(t Transport) *Comm { return &Comm{t: t} }

// Transport returns the underlying transport.
func (c *Comm) Transport() Transport { return c.t }

// Rank returns this rank's index in [0, Size).
func (c *Comm) Rank() int { return c.t.Rank() }

// Size returns the number of ranks the world started with.
func (c *Comm) Size() int { return c.t.Size() }

// Epoch returns the current membership epoch.
func (c *Comm) Epoch() int { return c.t.Epoch() }

// Alive lists the ranks currently believed alive, ascending.
func (c *Comm) Alive() []int { return c.t.Alive() }

// Barrier blocks until every alive rank has entered it.
func (c *Comm) Barrier() error { return c.t.Barrier() }

// Allreduce combines one scalar per rank with op; every rank receives the
// same result. The reduction is evaluated in rank order, so OpSum results
// are identical across runs.
func (c *Comm) Allreduce(v float64, op Op) (float64, error) { return c.t.Allreduce(v, op) }

// AllreduceSlice element-wise reduces equal-length vectors. Every rank
// receives a freshly allocated result.
func (c *Comm) AllreduceSlice(v []float64, op Op) ([]float64, error) {
	return c.t.AllreduceSlice(v, op)
}

// Allgather collects one scalar from every rank; every rank receives the
// full rank-ordered vector.
func (c *Comm) Allgather(v float64) ([]float64, error) { return c.t.Allgather(v) }

// AllgatherSlice concatenates per-rank vectors in rank order. Vectors may
// have different lengths.
func (c *Comm) AllgatherSlice(v []float64) ([]float64, error) { return c.t.AllgatherSlice(v) }

// Bcast distributes root's value to every rank.
func (c *Comm) Bcast(v float64, root int) (float64, error) { return c.t.Bcast(v, root) }

// Send delivers a vector to rank `to` (buffered; blocks only if the peer
// has undelivered messages outstanding). The slice is copied.
func (c *Comm) Send(to int, data []float64) error { return c.t.Send(to, data) }

// Recv blocks for the next message from rank `from`.
func (c *Comm) Recv(from int) ([]float64, error) { return c.t.Recv(from) }

// Stats reports how many collectives and point-to-point messages the
// communicator has executed (for overhead accounting).
func (c *Comm) Stats() (collectives, messages int64) { return c.t.Stats() }

// --- In-process transport -------------------------------------------------

// p2pBuffer is the per-pair message buffer depth of the in-process world.
const p2pBuffer = 4

// world is the shared state of one in-process communicator.
type world struct {
	size int

	mu         sync.Mutex
	cond       *sync.Cond
	arrived    int
	generation int64

	// failedRank, when ≥ 0, poisons the world: a rank died (panic or
	// error return) and every collective must fail fast instead of
	// waiting on a barrier the dead rank can never enter.
	failedRank int
	failCause  error
	// done is closed when the world is poisoned, unblocking Send/Recv.
	done     chan struct{}
	poisoned sync.Once

	slots  []float64   // one scalar slot per rank
	slices [][]float64 // one vector slot per rank

	// p2p[from*size+to] carries point-to-point messages.
	p2p []chan []float64

	// Stats.
	collectives atomic.Int64
	messages    atomic.Int64
}

// inproc is one rank's view of the in-process world; it implements
// Transport.
type inproc struct {
	rank int
	w    *world
}

func newWorld(size int) *world {
	w := &world{
		size:       size,
		failedRank: -1,
		done:       make(chan struct{}),
		slots:      make([]float64, size),
		slices:     make([][]float64, size),
		p2p:        make([]chan []float64, size*size),
	}
	w.cond = sync.NewCond(&w.mu)
	for i := range w.p2p {
		w.p2p[i] = make(chan []float64, p2pBuffer)
	}
	return w
}

// poison marks rank dead and wakes everything: barrier waiters (via the
// generation bump + broadcast) and Send/Recv blockers (via done). Only the
// first failure is recorded; the world never heals.
func (w *world) poison(rank int, cause error) {
	w.poisoned.Do(func() {
		w.mu.Lock()
		w.failedRank = rank
		w.failCause = cause
		w.arrived = 0
		w.generation++
		w.cond.Broadcast()
		w.mu.Unlock()
		close(w.done)
	})
}

// failErr builds the typed failure every collective reports once the world
// is poisoned. Callers hold w.mu or know failedRank is immutable-set.
func (w *world) failErr() error {
	return &apierr.RankFailedError{Rank: w.failedRank, Epoch: 0, Err: w.failCause}
}

// Run launches size ranks, each executing fn with its own Comm, and waits
// for all of them. The first non-nil error (lowest rank wins) is returned.
// A panic in any rank is converted into an error rather than crashing the
// whole process, and — like an error return — poisons the world so peers
// blocked in (or later entering) a collective fail fast with a typed
// *apierr.RankFailedError instead of deadlocking.
func Run(size int, fn func(c *Comm) error) error {
	if size <= 0 {
		return errors.New("mpi: size must be positive")
	}
	w := newWorld(size)
	errs := make([]error, size)
	var wg sync.WaitGroup
	for r := 0; r < size; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					err := fmt.Errorf("mpi: rank %d panicked: %v", rank, p)
					errs[rank] = err
					w.poison(rank, err)
				} else if errs[rank] != nil {
					// An error return is a rank leaving the protocol:
					// peers mid-collective must not wait for it.
					w.poison(rank, errs[rank])
				}
			}()
			errs[rank] = fn(NewComm(&inproc{rank: rank, w: w}))
		}(r)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

func (t *inproc) Rank() int  { return t.rank }
func (t *inproc) Size() int  { return t.w.size }
func (t *inproc) Epoch() int { return 0 }

// Alive lists the live ranks. The in-process world cannot rebalance onto
// survivors (a dead goroutine leaves shared state suspect), so this is
// diagnostic: collectives keep failing after a poison no matter what.
func (t *inproc) Alive() []int {
	w := t.w
	w.mu.Lock()
	failed := w.failedRank
	w.mu.Unlock()
	out := make([]int, 0, w.size)
	for r := 0; r < w.size; r++ {
		if r != failed {
			out = append(out, r)
		}
	}
	return out
}

// Barrier blocks until every rank has entered it, or fails fast with the
// typed rank-failure error once the world is poisoned.
func (t *inproc) Barrier() error {
	w := t.w
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.failedRank >= 0 {
		return w.failErr()
	}
	gen := w.generation
	w.arrived++
	if w.arrived == w.size {
		w.arrived = 0
		w.generation++
		w.cond.Broadcast()
		return nil
	}
	for gen == w.generation && w.failedRank < 0 {
		w.cond.Wait()
	}
	if w.failedRank >= 0 {
		return w.failErr()
	}
	return nil
}

func (t *inproc) Allreduce(v float64, op Op) (float64, error) {
	w := t.w
	if t.rank == 0 {
		w.collectives.Add(1)
	}
	w.slots[t.rank] = v
	if err := t.Barrier(); err != nil { // all deposits visible
		return 0, err
	}
	acc := w.slots[0]
	for r := 1; r < w.size; r++ {
		acc = op.Apply(acc, w.slots[r])
	}
	// Nobody overwrites slots until everyone has read.
	if err := t.Barrier(); err != nil {
		return 0, err
	}
	return acc, nil
}

func (t *inproc) AllreduceSlice(v []float64, op Op) ([]float64, error) {
	w := t.w
	if t.rank == 0 {
		w.collectives.Add(1)
	}
	w.slices[t.rank] = v
	if err := t.Barrier(); err != nil {
		return nil, err
	}
	n := len(w.slices[0])
	for r := 1; r < w.size; r++ {
		if len(w.slices[r]) != n {
			// Every rank sees the same mismatch and returns the same
			// error; the trailing barrier keeps the world consistent, so
			// later collectives still work (mismatch is recoverable,
			// unlike a dead rank).
			if err := t.Barrier(); err != nil {
				return nil, err
			}
			return nil, fmt.Errorf("mpi: AllreduceSlice length mismatch: rank 0 has %d, rank %d has %d",
				n, r, len(w.slices[r]))
		}
	}
	out := make([]float64, n)
	copy(out, w.slices[0])
	for r := 1; r < w.size; r++ {
		src := w.slices[r]
		for i := range out {
			out[i] = op.Apply(out[i], src[i])
		}
	}
	if err := t.Barrier(); err != nil {
		return nil, err
	}
	return out, nil
}

func (t *inproc) Allgather(v float64) ([]float64, error) {
	w := t.w
	if t.rank == 0 {
		w.collectives.Add(1)
	}
	w.slots[t.rank] = v
	if err := t.Barrier(); err != nil {
		return nil, err
	}
	out := make([]float64, w.size)
	copy(out, w.slots)
	if err := t.Barrier(); err != nil {
		return nil, err
	}
	return out, nil
}

func (t *inproc) AllgatherSlice(v []float64) ([]float64, error) {
	w := t.w
	if t.rank == 0 {
		w.collectives.Add(1)
	}
	w.slices[t.rank] = v
	if err := t.Barrier(); err != nil {
		return nil, err
	}
	var out []float64
	for r := 0; r < w.size; r++ {
		out = append(out, w.slices[r]...)
	}
	if err := t.Barrier(); err != nil {
		return nil, err
	}
	return out, nil
}

func (t *inproc) Bcast(v float64, root int) (float64, error) {
	w := t.w
	if root < 0 || root >= w.size {
		return 0, fmt.Errorf("mpi: bcast from invalid root %d", root)
	}
	if t.rank == 0 {
		w.collectives.Add(1)
	}
	if t.rank == root {
		w.slots[root] = v
	}
	if err := t.Barrier(); err != nil {
		return 0, err
	}
	out := w.slots[root]
	if err := t.Barrier(); err != nil {
		return 0, err
	}
	return out, nil
}

// Send delivers a vector to rank `to` (buffered; blocks only if the peer
// has p2pBuffer undelivered messages outstanding). The slice is copied. A
// Send blocked on a full peer buffer fails fast when the world is
// poisoned instead of waiting on a receiver that may never drain it.
func (t *inproc) Send(to int, data []float64) error {
	w := t.w
	if to < 0 || to >= w.size {
		return fmt.Errorf("mpi: send to invalid rank %d", to)
	}
	cp := make([]float64, len(data))
	copy(cp, data)
	select {
	case w.p2p[t.rank*w.size+to] <- cp:
		w.messages.Add(1)
		return nil
	case <-w.done:
		w.mu.Lock()
		defer w.mu.Unlock()
		return w.failErr()
	}
}

// Recv blocks for the next message from rank `from`, failing fast (after
// draining already-delivered messages) once the world is poisoned.
func (t *inproc) Recv(from int) ([]float64, error) {
	w := t.w
	if from < 0 || from >= w.size {
		return nil, fmt.Errorf("mpi: recv from invalid rank %d", from)
	}
	ch := w.p2p[from*w.size+t.rank]
	select {
	case v := <-ch:
		return v, nil
	case <-w.done:
		// Messages delivered before the poison are still readable.
		select {
		case v := <-ch:
			return v, nil
		default:
		}
		w.mu.Lock()
		defer w.mu.Unlock()
		return nil, w.failErr()
	}
}

func (t *inproc) Stats() (collectives, messages int64) {
	return t.w.collectives.Load(), t.w.messages.Load()
}
