package model

import (
	"math"
	"testing"

	"repro/internal/stats"
)

// scanned builds a prediction-kind model over a synthetic error
// distribution: mass hitRate predicts exactly, the rest decays
// geometrically across magnitudes around scale.
func scanned(n int, hitRate, scale float64) *RQModel {
	d := &stats.ErrDist{}
	hits := int(float64(n) * hitRate)
	for i := 0; i < hits; i++ {
		d.Add(0)
	}
	for i := hits; i < n; i++ {
		d.Add(scale * math.Exp(float64(i%13)-6))
	}
	return &RQModel{Kind: RQPrediction, Dist: d, N: n, ValueRange: 100, HeaderBits: 416}
}

func TestRQModelValidate(t *testing.T) {
	var nilModel *RQModel
	if nilModel.Validate() == nil {
		t.Error("nil model validated")
	}
	if (&RQModel{Kind: RQPrediction, N: 0}).Validate() == nil {
		t.Error("zero-cell model validated")
	}
	if err := (&RQModel{Kind: RQPrediction, N: 10}).Validate(); err != ErrNoScan {
		t.Errorf("scanless prediction model: %v, want ErrNoScan", err)
	}
	if err := (&RQModel{Kind: RQTransform, N: 10, ValueRange: 1}).Validate(); err != nil {
		t.Errorf("transform model needs no scan: %v", err)
	}
	if err := scanned(1000, 0.5, 0.1).Validate(); err != nil {
		t.Errorf("scanned model: %v", err)
	}
}

func TestRQPredictionPriorMonotone(t *testing.T) {
	m := scanned(4096, 0.3, 0.5)
	prev := math.Inf(1)
	for _, eb := range []float64{1e-4, 1e-3, 1e-2, 0.1, 1, 10} {
		b := m.PriorBitRate(eb)
		if b <= 0 || math.IsNaN(b) {
			t.Fatalf("eb %g: prior %g", eb, b)
		}
		if b > prev+1e-9 {
			t.Errorf("prior rose from %g to %g as eb loosened to %g", prev, b, eb)
		}
		prev = b
	}
	if m.PriorBitRate(0) != math.Inf(1) {
		t.Error("eb 0 should predict infinite rate")
	}
	// Memoized evaluations must be identical to fresh ones.
	if a, b := m.PriorBitRate(0.01), m.PriorBitRate(0.01); a != b {
		t.Errorf("memoized prior %g != %g", b, a)
	}
}

func TestRQPredictionAnchorScalesCurve(t *testing.T) {
	m := scanned(4096, 0.3, 0.5)
	const eb = 0.05
	prior := m.PriorBitRate(eb)
	if got := m.BitRate(eb); got != prior {
		t.Fatalf("unanchored BitRate %g, want prior %g", got, prior)
	}
	m.Anchor(eb, 2*prior) // observation says the prior is 2× too low
	if got := m.BitRate(eb); math.Abs(got-2*prior) > 1e-9 {
		t.Errorf("anchored BitRate %g, want %g", got, 2*prior)
	}
	// The multiplicative correction applies across the curve.
	other := 0.4
	if got, want := m.BitRate(other), 2*m.PriorBitRate(other); math.Abs(got-want) > 1e-9 {
		t.Errorf("BitRate(%g) = %g, want scaled prior %g", other, got, want)
	}
	if r := m.LogResidual(eb, 2*prior); r > 1e-9 {
		t.Errorf("residual at the anchor point is %g, want 0", r)
	}
	if r := m.LogResidual(eb, 2*prior*math.E); math.Abs(r-1) > 1e-9 {
		t.Errorf("e×-off observation has residual %g, want 1", r)
	}
	if r := m.LogResidual(eb, 0); r != 0 {
		t.Errorf("degenerate observation residual %g, want 0", r)
	}
}

func TestRQTransformModel(t *testing.T) {
	m := &RQModel{Kind: RQTransform, N: 4096, ValueRange: 64}
	// log₂(range/eb): one more bit per halving of the bound.
	if got := m.PriorBitRate(1); math.Abs(got-6) > 1e-9 {
		t.Errorf("prior at eb=1: %g, want 6", got)
	}
	if got := m.PriorBitRate(0.5) - m.PriorBitRate(1); math.Abs(got-1) > 1e-9 {
		t.Errorf("halving the bound added %g bits, want 1", got)
	}
	if got := m.PriorBitRate(0); got != 32 {
		t.Errorf("eb 0 rate %g, want max 32", got)
	}
	if got := m.PriorBitRate(1e30); got != 1e-3 {
		t.Errorf("huge eb rate %g, want floor", got)
	}
	if got := (&RQModel{Kind: RQTransform, N: 10}).PriorBitRate(1); got != 1e-3 {
		t.Errorf("rangeless transform rate %g, want floor", got)
	}
	// Anchoring shifts the intercept, preserving the logarithmic slope.
	m.Anchor(1, 8)
	if got := m.BitRate(1); math.Abs(got-8) > 1e-9 {
		t.Errorf("anchored rate %g, want 8", got)
	}
	if got := m.BitRate(0.25) - m.BitRate(1); math.Abs(got-2) > 1e-9 {
		t.Errorf("two halvings added %g bits after anchoring, want 2", got)
	}
}

func TestRQQualityPredictions(t *testing.T) {
	m := scanned(1000, 0.5, 0.1)
	if got := m.PredictMaxError(0.25); got != 0.25 {
		t.Errorf("max error %g, want the bound", got)
	}
	// PSNR from U[−eb,+eb] quantization noise: halving eb gains ~6.02 dB.
	gain := m.PredictPSNR(0.05) - m.PredictPSNR(0.1)
	if math.Abs(gain-20*math.Log10(2)) > 1e-9 {
		t.Errorf("halving eb gained %g dB, want %g", gain, 20*math.Log10(2))
	}
	if !math.IsInf(m.PredictPSNR(0), 1) {
		t.Error("zero bound should predict infinite PSNR")
	}
}

func TestRQCurveFeedsRateModelFit(t *testing.T) {
	ebs := []float64{0.01, 0.03, 0.1, 0.3, 1}
	var curves []Curve
	for i, f := range []float64{1, 3, 10} {
		m := scanned(4096, 0.2+0.2*float64(i), 0.3*f)
		m.Anchor(ebs[2], m.PriorBitRate(ebs[2])*1.3)
		curves = append(curves, m.Curve(f, ebs))
	}
	rm, err := Calibrate(curves)
	if err != nil {
		t.Fatalf("Eq.-15 fit over synthesized curves: %v", err)
	}
	if rm.Exponent >= 0 {
		t.Errorf("fitted exponent %g, want negative (rate falls with eb)", rm.Exponent)
	}
}

func TestRQPredictionEdgeDistributions(t *testing.T) {
	// All-hit distribution: p₀ = 1, no RLE mass, rate ≈ header only.
	all := &stats.ErrDist{}
	for i := 0; i < 4096; i++ {
		all.Add(0)
	}
	m := &RQModel{Kind: RQPrediction, Dist: all, N: 4096, HeaderBits: 416}
	if got := m.PriorBitRate(0.1); got <= 0 || got > 1 {
		t.Errorf("perfectly predictable partition rate %g, want small positive", got)
	}
	// All-outlier distribution: everything beyond the radius is 32-bit
	// verbatim plus a marker.
	far := &stats.ErrDist{}
	for i := 0; i < 512; i++ {
		far.Add(1e12)
	}
	m = &RQModel{Kind: RQPrediction, Dist: far, N: 512, Radius: 4}
	if got := m.PriorBitRate(1e-6); got < 32 {
		t.Errorf("all-outlier partition rate %g, want ≥ 32", got)
	}
	// Empty scan predicts nothing rather than NaN.
	if got := (&RQModel{Kind: RQPrediction, Dist: &stats.ErrDist{}, N: 10}).PriorBitRate(0.1); got != 0 {
		t.Errorf("empty-scan prior %g, want 0", got)
	}
}
