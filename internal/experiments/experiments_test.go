package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// The experiments run at a reduced scale in tests (64³, 64 partitions);
// cmd/experiments and the benches use the full 128³/512-partition layout.
var testCtx *Context

func testContext(t *testing.T) *Context {
	t.Helper()
	if testCtx == nil {
		ctx, err := NewContext(Config{N: 64, PartitionDim: 16, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		testCtx = ctx
	}
	return testCtx
}

func runExperiment(t *testing.T, id string) *Result {
	t.Helper()
	exp, err := ByID(id)
	if err != nil {
		t.Fatal(err)
	}
	res, err := exp.Run(testContext(t))
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	if res.ID != id {
		t.Errorf("result ID %q != %q", res.ID, id)
	}
	if len(res.Rows) == 0 {
		t.Errorf("%s produced no rows", id)
	}
	out := res.String()
	if !strings.Contains(out, res.Title) {
		t.Errorf("%s rendering lacks title", id)
	}
	return res
}

// parse pulls a float out of a table cell.
func parse(t *testing.T, cell string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(strings.TrimPrefix(cell, "+"), "%"), 64)
	if err != nil {
		t.Fatalf("cell %q: %v", cell, err)
	}
	return v
}

func TestRegistryComplete(t *testing.T) {
	ids := map[string]bool{}
	for _, e := range All {
		if e.ID == "" || e.Title == "" || e.Run == nil {
			t.Errorf("incomplete registration: %+v", e)
		}
		if ids[e.ID] {
			t.Errorf("duplicate id %q", e.ID)
		}
		ids[e.ID] = true
	}
	// Every table/figure of the paper's evaluation must be present.
	for _, id := range []string{"fig03", "fig04", "fig05", "fig06", "fig07",
		"table1", "fig08", "fig09", "fig10a", "fig10b", "fig11", "fig12",
		"fig13", "fig14", "fig15", "fig16", "fig17", "fig18", "fig19", "sec43"} {
		if !ids[id] {
			t.Errorf("missing experiment %s", id)
		}
	}
	if _, err := ByID("nope"); err == nil {
		t.Error("unknown id accepted")
	}
}

func TestFig03Uniformity(t *testing.T) {
	res := runExperiment(t, "fig03")
	// The note carries the max deviation; recompute the assertion from the
	// table instead: every printed fraction should be within 3x of 0.01.
	for _, row := range res.Rows {
		fr := parse(t, row[1])
		if fr > 0.03 {
			t.Errorf("bin fraction %v far from uniform", fr)
		}
	}
}

func TestFig05ModelAccuracy(t *testing.T) {
	res := runExperiment(t, "fig05")
	for _, row := range res.Rows {
		ratio := parse(t, row[3])
		if ratio < 0.9 || ratio > 1.1 {
			t.Errorf("eb %s: measured/model sigma ratio %v outside ±10%%", row[0], ratio)
		}
	}
}

func TestFig06EdgeEffect(t *testing.T) {
	res := runExperiment(t, "fig06")
	vals := map[string]float64{}
	for _, row := range res.Rows {
		vals[row[0]] = parse(t, row[1])
	}
	if vals["original candidates"] == 0 {
		t.Fatal("no candidates")
	}
	// Net candidate change should be small relative to the total.
	net := vals["reconstructed candidates"] - vals["original candidates"]
	if absT(net) > 0.3*vals["original candidates"] {
		t.Errorf("net candidate change %v too large", net)
	}
}

func absT(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

func TestFig07CountStability(t *testing.T) {
	res := runExperiment(t, "fig07")
	ref := parse(t, res.Rows[0][1])
	for _, row := range res.Rows[1:] {
		n := parse(t, row[1])
		if absT(n-ref) > 0.5*ref+3 {
			t.Errorf("eb %s: halo count %v far from original %v", row[0], n, ref)
		}
	}
}

func TestTable1DiffPerCell(t *testing.T) {
	res := runExperiment(t, "table1")
	// At least one eb row should report a finite diff-per-cell within a
	// factor ~3 of t_boundary (the paper's observation).
	found := false
	for _, row := range res.Rows[1:] {
		if row[4] == "-" {
			continue
		}
		v := parse(t, row[4])
		if v > 88.16/3 && v < 88.16*3 {
			found = true
		}
	}
	if !found {
		t.Error("no diff-per-cell near the boundary threshold")
	}
}

func TestFig08EstimateTracksMeasurement(t *testing.T) {
	res := runExperiment(t, "fig08")
	for _, row := range res.Rows {
		est := parse(t, row[1])
		meas := parse(t, row[2])
		if meas < 10 {
			continue // too few flips for a ratio test
		}
		ratio := est / meas
		if ratio < 0.3 || ratio > 3 {
			t.Errorf("eb %s: estimate/measured = %v", row[0], ratio)
		}
	}
}

func TestFig09SharedExponent(t *testing.T) {
	res := runExperiment(t, "fig09")
	// All fitted exponents negative.
	for _, row := range res.Rows {
		if parse(t, row[2]) >= 0 {
			t.Errorf("non-negative rate exponent in %v", row)
		}
	}
}

func TestFig10aAccuracy(t *testing.T) {
	res := runExperiment(t, "fig10a")
	var worst float64
	for _, row := range res.Rows {
		re := parse(t, row[3])
		if re > worst {
			worst = re
		}
	}
	if worst > 1.0 {
		t.Errorf("worst relative C_m error %v > 100%%", worst)
	}
}

func TestFig10bConsistency(t *testing.T) {
	res := runExperiment(t, "fig10b")
	for _, row := range res.Rows {
		if parse(t, row[3]) > 0.35 {
			t.Errorf("cross-snapshot ratio difference %s too large", row[3])
		}
	}
}

func TestFig11SpreadExists(t *testing.T) {
	res := runExperiment(t, "fig11")
	vals := map[string]string{}
	for _, row := range res.Rows {
		vals[row[0]] = row[1]
	}
	spread := parse(t, vals["spread (max/min)"])
	if spread < 1.5 {
		t.Errorf("error-bound spread %v too small; allocation inert", spread)
	}
	if spread > 16.01 {
		t.Errorf("spread %v exceeds the clamp box", spread)
	}
}

func TestFig12Equalization(t *testing.T) {
	res := runExperiment(t, "fig12")
	trad := parse(t, res.Rows[0][3])
	opt := parse(t, res.Rows[1][3])
	if opt >= trad {
		t.Errorf("optimization did not reduce derivative dispersion: %v -> %v", trad, opt)
	}
}

func TestFig13WithinBand(t *testing.T) {
	res := runExperiment(t, "fig13")
	for _, row := range res.Rows {
		ratio := parse(t, row[1])
		if ratio < 0.97 || ratio > 1.03 {
			t.Errorf("k=%s: P ratio %v outside a loose band", row[0], ratio)
		}
	}
}

func TestFig14Dispersion(t *testing.T) {
	res := runExperiment(t, "fig14")
	nonzeroBuckets := 0
	for _, row := range res.Rows {
		if parse(t, row[1]) > 0 {
			nonzeroBuckets++
		}
	}
	if nonzeroBuckets < 2 {
		t.Errorf("effective-cell histogram not dispersed (%d buckets)", nonzeroBuckets)
	}
}

func TestFig15AdaptiveWins(t *testing.T) {
	res := runExperiment(t, "fig15")
	if len(res.Rows) != 6 {
		t.Fatalf("expected 6 fields, got %d", len(res.Rows))
	}
	positive := 0
	for _, row := range res.Rows {
		if parse(t, row[4]) > 0 {
			positive++
		}
	}
	if positive < 4 {
		t.Errorf("adaptive improved only %d/6 fields", positive)
	}
}

func TestFig16StaticOnceLags(t *testing.T) {
	res := runExperiment(t, "fig16")
	// At the last (lowest) redshift, static_once must not beat adaptive.
	last := res.Rows[len(res.Rows)-1]
	if parse(t, last[2]) > 1.001 {
		t.Errorf("static-once beat re-optimized adaptive: %v", last)
	}
}

func TestFig18MonotoneTrend(t *testing.T) {
	res := runExperiment(t, "fig18")
	if len(res.Rows) < 2 {
		t.Skip("only one partition size at this scale")
	}
	first := parse(t, res.Rows[0][4])
	lastV := parse(t, res.Rows[len(res.Rows)-1][4])
	if lastV > first+1 { // percent units; allow a point of noise
		t.Errorf("improvement grew with partition size: %v -> %v", first, lastV)
	}
}

func TestFig19ConsistentAcrossScales(t *testing.T) {
	res := runExperiment(t, "fig19")
	for _, row := range res.Rows {
		if parse(t, row[4]) < -1 {
			t.Errorf("adaptive lost at scale %s: %v", row[0], row[4])
		}
	}
}

func TestSec43OverheadSmall(t *testing.T) {
	res := runExperiment(t, "sec43")
	for _, row := range res.Rows {
		ov := parse(t, row[4])
		if ov > 25 {
			t.Errorf("%s: overhead %v%% implausibly high", row[0], ov)
		}
	}
}

func TestRemainingExperimentsRun(t *testing.T) {
	for _, id := range []string{"fig04", "fig17", "ablation-predictor",
		"ablation-quant", "ablation-clamp", "ablation-strategy", "ablation-cm"} {
		runExperiment(t, id)
	}
}

// TestTimeseriesDriftAmortizesCalibration asserts the streaming pipeline's
// headline property per codec: drift-triggered reacts to drift (through
// recalibrations or O(1) model corrections) strictly less often than
// calibrate-every-step refits, while staying within 5 % of its bit rate —
// and the model-scan calibration chooses bit rates within 1 % of the
// probe-ladder configuration it replaced.
func TestTimeseriesDriftAmortizesCalibration(t *testing.T) {
	res := runExperiment(t, "timeseries")
	type cell struct{ recals, corr, bitrate float64 }
	runs := map[string]cell{} // "codec/policy"
	for _, row := range res.Rows {
		runs[row[0]+"/"+row[1]] = cell{parse(t, row[2]), parse(t, row[3]), parse(t, row[4])}
	}
	for _, id := range []string{"sz", "zfp"} {
		every, okE := runs[id+"/calibrate-every-step"]
		drift, okD := runs[id+"/drift-triggered"]
		once, okO := runs[id+"/calibrate-once"]
		probe, okP := runs[id+"/drift-probe-ladder"]
		if !okE || !okD || !okO || !okP {
			t.Fatalf("%s: missing policy rows in %v", id, runs)
		}
		if drift.recals >= every.recals {
			t.Errorf("%s: drift-triggered recalibrated %v times, not fewer than every-step's %v",
				id, drift.recals, every.recals)
		}
		if drift.recals+drift.corr <= once.recals {
			t.Errorf("%s: drift-triggered made %v recals + %v corrections; drift never triggered",
				id, drift.recals, drift.corr)
		}
		rel := drift.bitrate/every.bitrate - 1
		if rel < -0.05 || rel > 0.05 {
			t.Errorf("%s: drift-triggered bit rate %v vs every-step %v (%.1f%% apart), want within 5%%",
				id, drift.bitrate, every.bitrate, rel*100)
		}
		// Acceptance criterion: the model-chosen bit rate tracks the
		// probe-based choice within 1 %.
		mvp := drift.bitrate/probe.bitrate - 1
		if mvp < -0.01 || mvp > 0.01 {
			t.Errorf("%s: model-scan bit rate %v vs probe-ladder %v (%.2f%% apart), want within 1%%",
				id, drift.bitrate, probe.bitrate, mvp*100)
		}
	}
}

func TestResultRendering(t *testing.T) {
	r := &Result{ID: "x", Title: "T", Cols: []string{"a", "bb"}}
	r.AddRow("1", "2")
	r.Notef("n=%d", 5)
	s := r.String()
	for _, want := range []string{"== x: T ==", "a", "bb", "note: n=5"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendering lacks %q:\n%s", want, s)
		}
	}
}
