package nyx

import (
	"fmt"
	"io"
	"math"

	"repro/internal/grid"
	"repro/internal/stats"
)

// Evolving snapshot stream: the in situ workload. A base snapshot is
// generated (or supplied) once, and each subsequent step perturbs the base
// deterministically so that the per-partition rate features — and in
// particular their global mean, the quantity the pipeline's drift monitor
// watches — genuinely move over the run:
//
//   - strictly positive fields (densities, temperature) steepen as
//     ρ_t = ρ^(1+DriftPerStep·t): the lognormal tail grows the way
//     gravitational clustering sharpens contrast between halos and voids,
//     which raises the mean |value| step over step;
//   - signed fields (velocities) scale as v_t = (1+DriftPerStep·t)·v,
//     the linear-theory growth of peculiar velocities.
//
// A small multiplicative jitter (seeded per step and field) keeps
// consecutive steps from being rescalings of each other, so recalibration
// actually re-fits on new data.

// StreamParams configures an evolving stream.
type StreamParams struct {
	// Base configures the step-0 snapshot when the stream generates its
	// own (ignored by NewStreamFrom).
	Base Params
	// Steps is the total number of steps the stream yields, including the
	// base step (must be ≥ 1).
	Steps int
	// DriftPerStep sets the perturbation strength per step (default 0.05;
	// at the default the global mean feature of a lognormal density field
	// moves by roughly 10 % per step).
	DriftPerStep float64
	// Jitter is the per-step lognormal scatter σ decorrelating successive
	// steps (default 0.02; 0 < 0 disables — use a negative value).
	Jitter float64
	// Fields restricts the stream to a subset of the base fields
	// (default: every base field).
	Fields []string
	// Seed decorrelates the jitter stream (default: Base.Seed).
	Seed uint64
}

func (p StreamParams) withDefaults() StreamParams {
	if p.DriftPerStep == 0 {
		p.DriftPerStep = 0.05
	}
	if p.Jitter == 0 {
		p.Jitter = 0.02
	}
	if p.Jitter < 0 {
		p.Jitter = 0
	}
	if p.Seed == 0 {
		p.Seed = p.Base.Seed
	}
	return p
}

// Stream yields the steps of one evolving synthetic run. Next returns
// io.EOF after the configured number of steps, so a Stream plugs directly
// into the pipeline driver's Source contract.
type Stream struct {
	p     StreamParams
	base  map[string]*grid.Field3D
	names []string
	// ranges caches each base field's (lo, hi) — the base is immutable,
	// so the per-step perturbation need not rescan it.
	ranges map[string][2]float32
	step   int
}

// NewStream generates the base snapshot from p.Base and returns the stream.
func NewStream(p StreamParams) (*Stream, error) {
	s, err := Generate(p.Base)
	if err != nil {
		return nil, err
	}
	return NewStreamFrom(s.Fields, p)
}

// NewStreamFrom builds a stream over caller-supplied base fields (e.g. a
// snapshot loaded from disk). The base fields are never mutated.
func NewStreamFrom(base map[string]*grid.Field3D, p StreamParams) (*Stream, error) {
	p = p.withDefaults()
	if p.Steps < 1 {
		return nil, fmt.Errorf("nyx: stream needs ≥ 1 step, got %d", p.Steps)
	}
	if len(base) == 0 {
		return nil, fmt.Errorf("nyx: stream needs at least one base field")
	}
	names := p.Fields
	if len(names) == 0 {
		for _, n := range FieldNames {
			if _, ok := base[n]; ok {
				names = append(names, n)
			}
		}
		// Non-canonical field names (external snapshots) still stream.
		if len(names) == 0 {
			for n := range base {
				names = append(names, n)
			}
		}
	}
	fields := make(map[string]*grid.Field3D, len(names))
	ranges := make(map[string][2]float32, len(names))
	for _, n := range names {
		f, ok := base[n]
		if !ok {
			return nil, fmt.Errorf("nyx: stream field %q not in base snapshot", n)
		}
		fields[n] = f
		lo, hi := f.MinMax()
		ranges[n] = [2]float32{lo, hi}
	}
	return &Stream{p: p, base: fields, names: names, ranges: ranges}, nil
}

// Step returns the number of steps already yielded.
func (s *Stream) Step() int { return s.step }

// Next yields the next step's fields, or io.EOF when the run is over.
func (s *Stream) Next() (map[string]*grid.Field3D, error) {
	if s.step >= s.p.Steps {
		return nil, io.EOF
	}
	t := s.step
	s.step++
	if t == 0 {
		// The base step is shared, not copied: the driver treats snapshot
		// fields as read-only, like a simulation's live buffers.
		return s.base, nil
	}
	out := make(map[string]*grid.Field3D, len(s.base))
	for fi, name := range s.names {
		out[name] = s.perturb(name, s.base[name], t, fi)
	}
	return out, nil
}

// perturb builds step t's version of one base field.
func (s *Stream) perturb(name string, f *grid.Field3D, t, fieldIndex int) *grid.Field3D {
	growth := 1 + s.p.DriftPerStep*float64(t)
	rng := stats.NewRNG(s.p.Seed ^ (uint64(t)*0x9e3779b97f4a7c15 + uint64(fieldIndex)*0xbf58476d1ce4e5b9))
	lo, hi := s.ranges[name][0], s.ranges[name][1]
	signed := lo < 0
	g := grid.NewField3D(f.Nx, f.Ny, f.Nz)
	for i, v := range f.Data {
		jitter := 1.0
		if s.p.Jitter > 0 {
			jitter = math.Exp(rng.NormFloat64() * s.p.Jitter)
		}
		var w float64
		if signed {
			w = float64(v) * growth * jitter
		} else {
			// Positive fields steepen: ρ^growth grows the heavy tail.
			// math.Pow(0, g) = 0, so empty cells stay empty.
			w = math.Pow(float64(v), growth) * jitter
		}
		// The base field's dynamic range is the physical clamp (Table 2);
		// evolution sharpens structure inside it, it does not escape it.
		if w > float64(hi) && !signed {
			w = float64(hi)
		}
		if signed {
			w = clamp(w, -1e8, 1e8)
		}
		g.Data[i] = float32(w)
	}
	return g
}
