package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/apierr"
	"repro/internal/codec"
	"repro/internal/grid"
	"repro/internal/model"
	"repro/internal/stats"
)

// CalibrationMode selects how Calibrate obtains the bit-rate curves the
// Eq.-15 fit consumes.
type CalibrationMode uint8

const (
	// ModelScan (default) fits the ratio-quality model from one streaming
	// residual scan plus ONE validation compression per sampled partition,
	// then synthesizes the rate curves analytically — the O(samples) path
	// that replaces the probe ladder's O(samples × bounds) compressions.
	// Falls back to ProbeLadder for a field whose cross-sample model
	// residual breaches the guard band (Calibration.FellBack records it).
	ModelScan CalibrationMode = iota
	// ProbeValidated measures the full probe ladder (identical curves and
	// fit to ProbeLadder) and *additionally* runs the feature scan,
	// anchoring the model mid-grid and recording its out-of-sample residual
	// against the measured points — the opt-in mode that keeps the model
	// continuously checked while paying the ladder's cost.
	ProbeValidated
	// ProbeLadder compresses every sampled partition at every grid bound —
	// the original, purely empirical calibration.
	ProbeLadder
)

func (m CalibrationMode) String() string {
	switch m {
	case ModelScan:
		return "model-scan"
	case ProbeValidated:
		return "probe-validated"
	case ProbeLadder:
		return "probe-ladder"
	default:
		return fmt.Sprintf("CalibrationMode(%d)", int(m))
	}
}

// Calibration is a fitted rate model for one field kind. The paper fits the
// shared exponent c once and predicts each partition's coefficient from its
// mean (Sec. 3.5); we calibrate per field kind (density, temperature, ...)
// because absolute value scales differ by orders of magnitude between
// fields, and reuse the calibration across snapshots (Fig. 10b shows rate
// curves are consistent over time).
type Calibration struct {
	Model *model.RateModel
	// Curves are the sampled calibration curves (kept for diagnostics and
	// the Fig. 9/10 experiments). Under ModelScan they are synthesized by
	// the ratio-quality model; otherwise they are measured.
	Curves []model.Curve
	// PartitionIDs[i] is the partition index curve i was sampled from.
	PartitionIDs []int
	// EBs is the error-bound grid the curves were sampled at.
	EBs []float64
	// Mode records how the curves were obtained, after any fallback.
	Mode CalibrationMode
	// RQ[i] is the anchored ratio-quality model of sampled partition
	// PartitionIDs[i] (nil under ProbeLadder and after a fallback).
	RQ []*model.RQModel
	// Residual is the model-consistency metric checked against the guard
	// band: the median |ln(observed/predicted)| bit-rate gap (see
	// sharedResidual for the ModelScan form). Recorded even when the
	// calibration fell back, so callers can log why.
	Residual float64
	// FellBack is set when ModelScan breached the guard band (or the
	// synthetic curves were too degenerate to fit) and the probe ladder
	// was used for this field instead.
	FellBack bool
	// Downgraded is set when the *requested* calibration mode could not be
	// honored at all and another mode was substituted before any curve was
	// sampled — currently: ModelScan under a non-ABS error-bound mode runs
	// the probe ladder, because the residual scan characterizes absolute
	// prediction errors only. Distinct from FellBack, which records a
	// data-driven guard-band fallback of an honored ModelScan request.
	Downgraded bool
	// DowngradeReason says why the requested mode was not honored, for
	// surfacing to clients (the compression service reports it verbatim).
	DowngradeReason string
}

// CalibrationOptions tunes sampling.
type CalibrationOptions struct {
	// Partitions is the number of sampled partitions (default 16),
	// spread evenly across the feature range.
	Partitions int
	// RelEBs is the error-bound grid relative to the field's mean |value|
	// (default {1e-3, 3e-3, 1e-2, 3e-2, 0.1, 0.3, 1}). Anchoring on the
	// mean rather than the range keeps the grid in the regime where error
	// bounds are actually planned, even for heavy-tailed fields whose
	// range is 10⁵× their mean.
	RelEBs []float64
	// EBs, when non-empty, overrides the relative grid with absolute
	// error bounds.
	EBs []float64
	// Mode selects the calibration path (default ModelScan).
	Mode CalibrationMode
	// GuardBand is the relative tolerance on the model residual before
	// ModelScan falls back to the probe ladder (default 0.25, i.e. a
	// median observed-vs-predicted gap of 25 %).
	GuardBand float64
}

func (o CalibrationOptions) withDefaults() CalibrationOptions {
	if o.Partitions == 0 {
		o.Partitions = 16
	}
	if len(o.RelEBs) == 0 {
		o.RelEBs = []float64{1e-3, 3e-3, 1e-2, 3e-2, 0.1, 0.3, 1}
	}
	if o.GuardBand == 0 {
		o.GuardBand = 0.25
	}
	return o
}

// residualFloorBits excludes near-floor observations from residual
// metrics: a bit rate at the codec's fixed floor (sz header + run tokens,
// zfp's minimum rate) no longer responds to the error bound, so it carries
// no information about the model's curve — the same reason the Eq.-15 fit
// drops flat curves.
const residualFloorBits = 0.51

// Calibrate fits the rate model for a representative field. This is the
// offline step of the paper's methodology — done once per field kind,
// reused for every snapshot and partition.
//
// Under the default ModelScan mode each sampled partition costs one
// streaming residual scan plus a single validation compression; the rate
// curves are synthesized by the ratio-quality model (arXiv 2111.09815) and
// cross-checked against the validation points, falling back to the probe
// ladder when the check breaches CalibrationOptions.GuardBand. ProbeLadder
// restores the original measure-everything behavior; ProbeValidated does
// both and reports the model's out-of-sample residual. Cancellation is
// checked between sample compressions.
func (e *Engine) Calibrate(ctx context.Context, f *grid.Field3D, opts ...CalibrationOptions) (*Calibration, error) {
	var o CalibrationOptions
	if len(opts) > 0 {
		o = opts[0]
	}
	o = o.withDefaults()

	p, err := e.partitioner(f)
	if err != nil {
		return nil, err
	}
	features := e.extractFeatures(ctx, f, p)
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("core: calibration: %w", err)
	}
	lo, hi := f.MinMax()
	if hi <= lo {
		return nil, fmt.Errorf("core: %w: cannot calibrate on a constant field", apierr.ErrBadConfig)
	}
	var ebs []float64
	if len(o.EBs) > 0 {
		ebs = append([]float64(nil), o.EBs...)
	} else {
		anchor := stats.MeanOf(features) // dataset mean |value|
		if anchor <= 0 {
			return nil, errors.New("core: zero mean |value|; cannot anchor calibration grid")
		}
		ebs = make([]float64, len(o.RelEBs))
		for i, rel := range o.RelEBs {
			ebs[i] = rel * anchor
		}
	}
	for _, eb := range ebs {
		if eb <= 0 {
			return nil, fmt.Errorf("core: %w: non-positive calibration eb %v", apierr.ErrBadConfig, eb)
		}
	}

	samples := pickSamples(features, o.Partitions)
	if len(samples) < 2 {
		return nil, fmt.Errorf("core: %w: need at least 2 distinct sample partitions to calibrate (got %d)",
			apierr.ErrBadConfig, len(samples))
	}

	scratch := e.getScratch()
	defer e.putScratch(scratch)

	mode := o.Mode
	var downgradeReason string
	if mode == ModelScan && e.cfg.Mode != codec.ABS {
		// The residual scan characterizes absolute prediction errors; PWREL
		// compresses log-transformed values, so measure instead of model.
		// The substitution is recorded on the Calibration (Downgraded +
		// DowngradeReason) so callers — the service's calibrate endpoint in
		// particular — can see why ModelScan was not honored.
		mode = ProbeLadder
		downgradeReason = fmt.Sprintf(
			"%s error-bound mode: the residual scan models ABS errors only, so the probe ladder was measured instead",
			e.cfg.Mode)
	}
	var fellBack bool
	var residual float64
	switch mode {
	case ProbeValidated:
		return e.probeValidated(ctx, f, p, features, samples, ebs, scratch)
	case ModelScan:
		cal, res, err := e.modelScanCalibration(ctx, f, p, features, samples, ebs, o.GuardBand, scratch)
		if err != nil {
			return nil, err
		}
		if cal != nil {
			return cal, nil
		}
		fellBack, residual = true, res
	}
	cal, err := e.probeCalibration(ctx, f, p, features, samples, ebs, scratch)
	if err != nil {
		return nil, err
	}
	cal.FellBack = fellBack
	cal.Residual = residual
	if downgradeReason != "" {
		cal.Downgraded = true
		cal.DowngradeReason = downgradeReason
	}
	return cal, nil
}

// pickSamples selects the calibration sample partitions: evenly spaced
// feature quantiles (so the C_m-vs-feature fit sees the whole
// compressibility range) merged with the top partitions by feature
// (heavy-tailed fields concentrate all rate information there), then
// de-duplicated preserving order.
func pickSamples(features []float64, want int) []int {
	idx := make([]int, len(features))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return features[idx[a]] < features[idx[b]] })
	nSamp := want
	if nSamp > len(idx) {
		nSamp = len(idx)
	}
	samples := make([]int, 0, nSamp+4)
	if nSamp <= 1 {
		// A single quantile is the median — indexing directly instead of
		// spacing by (nSamp−1), which divides by zero here.
		samples = append(samples, idx[len(idx)/2])
	} else {
		for i := 0; i < nSamp; i++ {
			samples = append(samples, idx[i*(len(idx)-1)/(nSamp-1)])
		}
	}
	topK := nSamp / 2
	if topK < 4 {
		topK = 4
	}
	for i := 0; i < topK && i < len(idx); i++ {
		samples = append(samples, idx[len(idx)-1-i])
	}
	// De-duplicate while preserving order (quantiles collide on small
	// partition counts, and the top-K overlaps the upper quantiles).
	seen := make(map[int]bool, len(samples))
	uniq := samples[:0]
	for _, s := range samples {
		if !seen[s] {
			seen[s] = true
			uniq = append(uniq, s)
		}
	}
	return uniq
}

// probeCalibration measures one bit-rate curve per sample by compressing
// at every grid bound — the original probe ladder, and the fallback path.
// The curves are sampled through the engine's configured codec, so the
// fitted rate model describes the backend that will actually compress.
func (e *Engine) probeCalibration(ctx context.Context, f *grid.Field3D, p *grid.Partitioner,
	features []float64, samples []int, ebs []float64, scratch *codec.Scratch) (*Calibration, error) {
	parts := p.Partitions()
	curves := make([]model.Curve, 0, len(samples))
	ids := make([]int, 0, len(samples))
	for _, pi := range samples {
		part := parts[pi]
		data := e.brick(scratch, f, part)
		nx, ny, nz := part.Dims()
		cu := model.Curve{Feature: features[pi], EBs: ebs}
		rates := make([]float64, len(ebs))
		for j, eb := range ebs {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("core: calibration: %w", err)
			}
			c, err := codec.CompressCtx(ctx, e.cdc, data, nx, ny, nz, e.codecOptions(eb), scratch)
			if err != nil {
				return nil, fmt.Errorf("core: calibration compress (partition %d, eb %g): %w", pi, eb, err)
			}
			rates[j] = c.BitRate()
		}
		cu.BitRates = rates
		curves = append(curves, cu)
		ids = append(ids, pi)
	}
	rm, err := model.Calibrate(curves)
	if err != nil {
		return nil, fmt.Errorf("core: rate-model fit: %w", err)
	}
	return &Calibration{Model: rm, Curves: curves, PartitionIDs: ids, EBs: ebs, Mode: ProbeLadder}, nil
}

// modelScanCalibration is the ModelScan path: one residual scan and one
// validation compression per sample, synthetic curves, Eq.-15 fit. A nil
// Calibration (with nil error) means the guard band was breached — or the
// synthetic curves were degenerate — and the caller should fall back to
// the probe ladder; the returned residual documents the breach.
func (e *Engine) modelScanCalibration(ctx context.Context, f *grid.Field3D, p *grid.Partitioner,
	features []float64, samples []int, ebs []float64, guard float64, scratch *codec.Scratch) (*Calibration, float64, error) {
	parts := p.Partitions()
	anchorEB := ebs[len(ebs)/2]
	rqs := make([]*model.RQModel, 0, len(samples))
	obs := make([]float64, 0, len(samples))
	var scan stats.PredScan
	for _, pi := range samples {
		if err := ctx.Err(); err != nil {
			return nil, 0, fmt.Errorf("core: calibration: %w", err)
		}
		part := parts[pi]
		data := e.brick(scratch, f, part)
		nx, ny, nz := part.Dims()
		rq, err := e.scanModel(data, nx, ny, nz, &scan)
		if err != nil {
			return nil, 0, err
		}
		opt := e.codecOptions(anchorEB)
		opt.RateHint = rq.PriorBitRate(anchorEB)
		c, err := codec.CompressCtx(ctx, e.cdc, data, nx, ny, nz, opt, scratch)
		if err != nil {
			return nil, 0, fmt.Errorf("core: calibration compress (partition %d, eb %g): %w", pi, anchorEB, err)
		}
		rqs = append(rqs, rq)
		obs = append(obs, c.BitRate())
	}
	res := sharedResidual(rqs, obs, anchorEB)
	for i, rq := range rqs {
		rq.Anchor(anchorEB, obs[i])
	}
	if res > math.Log(1+guard) {
		return nil, res, nil
	}
	curves := make([]model.Curve, len(rqs))
	for i, rq := range rqs {
		curves[i] = rq.Curve(features[samples[i]], ebs)
	}
	rm, err := model.Calibrate(curves)
	if err != nil {
		return nil, res, nil
	}
	return &Calibration{
		Model: rm, Curves: curves,
		PartitionIDs: append([]int(nil), samples...),
		EBs:          ebs,
		Mode:         ModelScan,
		RQ:           rqs,
		Residual:     res,
	}, res, nil
}

// probeValidated measures the ladder exactly like probeCalibration and
// additionally scans each sample, anchoring its ratio-quality model at the
// mid-grid measured point and scoring the model against every *other*
// measured point — a true out-of-sample residual, recorded for online
// monitoring.
func (e *Engine) probeValidated(ctx context.Context, f *grid.Field3D, p *grid.Partitioner,
	features []float64, samples []int, ebs []float64, scratch *codec.Scratch) (*Calibration, error) {
	cal, err := e.probeCalibration(ctx, f, p, features, samples, ebs, scratch)
	if err != nil {
		return nil, err
	}
	parts := p.Partitions()
	mid := len(ebs) / 2
	var scan stats.PredScan
	rqs := make([]*model.RQModel, len(cal.PartitionIDs))
	var rs []float64
	for i, pi := range cal.PartitionIDs {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("core: calibration: %w", err)
		}
		part := parts[pi]
		data := e.brick(scratch, f, part)
		nx, ny, nz := part.Dims()
		rq, err := e.scanModel(data, nx, ny, nz, &scan)
		if err != nil {
			return nil, err
		}
		rates := cal.Curves[i].BitRates
		rq.Anchor(ebs[mid], rates[mid])
		rqs[i] = rq
		for j := range ebs {
			if j == mid || rates[j] < residualFloorBits {
				continue
			}
			rs = append(rs, rq.LogResidual(ebs[j], rates[j]))
		}
	}
	cal.Mode = ProbeValidated
	cal.RQ = rqs
	cal.Residual = medianOf(rs)
	return cal, nil
}

// scanModel builds an unanchored ratio-quality model for one brick from a
// single streaming pass (the "one feature scan").
func (e *Engine) scanModel(data []float32, nx, ny, nz int, ps *stats.PredScan) (*model.RQModel, error) {
	ps.Reset()
	if err := codec.ScanResiduals(data, nx, ny, nz, e.cfg.Predictor, ps); err != nil {
		return nil, err
	}
	rq := &model.RQModel{
		Kind:       model.RQPrediction,
		N:          len(data),
		ValueRange: ps.Values.Range(),
		HeaderBits: codec.SZHeaderBits,
	}
	if e.cfg.Codec == codec.ZFP {
		rq.Kind = model.RQTransform
	} else {
		rq.Dist = ps.Errs.Clone()
	}
	return rq, nil
}

// sharedResidual measures cross-sample model consistency from the one
// validation compression each sample got: a sound scan model is off from
// the observation by a single codec-wide constant (Huffman-vs-entropy gap,
// table overhead — multiplicative for prediction codecs, additive for
// transform codecs), so every sample's anchor implies the *same*
// correction. The residual is the median |ln| distance of each sample's
// implied correction from the shared (median) one — zero for a perfect
// model regardless of the constant's size, and computable without a second
// compression per sample. Near-floor observations are excluded (see
// residualFloorBits).
func sharedResidual(rqs []*model.RQModel, obs []float64, anchorEB float64) float64 {
	type point struct{ prior, obs float64 }
	pts := make([]point, 0, len(rqs))
	transform := len(rqs) > 0 && rqs[0].Kind == model.RQTransform
	for i, rq := range rqs {
		if obs[i] < residualFloorBits {
			continue
		}
		pts = append(pts, point{rq.PriorBitRate(anchorEB), obs[i]})
	}
	if len(pts) == 0 {
		return 0
	}
	rs := make([]float64, 0, len(pts))
	if transform {
		offs := make([]float64, len(pts))
		for i, pt := range pts {
			offs[i] = pt.obs - pt.prior
		}
		med := medianOf(offs)
		for _, pt := range pts {
			pred := pt.prior + med
			if pred <= 0 {
				rs = append(rs, math.Inf(1))
				continue
			}
			rs = append(rs, math.Abs(math.Log(pt.obs/pred)))
		}
	} else {
		ls := make([]float64, len(pts))
		for i, pt := range pts {
			if pt.prior <= 0 {
				continue // prior floor: no shape information
			}
			ls[i] = math.Log(pt.obs / pt.prior)
		}
		med := medianOf(ls)
		for _, l := range ls {
			rs = append(rs, math.Abs(l-med))
		}
	}
	return medianOf(rs)
}

func medianOf(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	mid := len(cp) / 2
	if len(cp)%2 == 1 {
		return cp[mid]
	}
	return (cp[mid-1] + cp[mid]) / 2
}

// Rescaled returns a copy of the calibration whose rate model predicts
// factor× the bit rate everywhere. C_m is affine in (Alpha, Beta) and
// floored at MinC, so scaling all three scales every prediction uniformly —
// which leaves the budget-normalized error-bound allocation unchanged and
// only corrects the predicted rates. This is the O(1) online correction the
// pipeline applies when the observed/predicted rate ratio drifts.
func (c *Calibration) Rescaled(factor float64) *Calibration {
	if c == nil || c.Model == nil || factor <= 0 || factor == 1 {
		return c
	}
	m := *c.Model
	m.Alpha *= factor
	m.Beta *= factor
	m.MinC *= factor
	cp := *c
	cp.Model = &m
	return &cp
}

// SuggestStaticEB inverts the rate model for the static baseline: the
// uniform bound that the model predicts hits the same average bit rate as
// a given adaptive plan (used by equal-rate comparisons).
func (c *Calibration) SuggestStaticEB(features []float64, targetBitRate float64) (float64, error) {
	if c == nil || c.Model == nil {
		return 0, fmt.Errorf("core: %w: nil calibration", apierr.ErrBadConfig)
	}
	if targetBitRate <= 0 {
		return 0, fmt.Errorf("core: %w: target bit rate must be positive", apierr.ErrBadConfig)
	}
	// Bisection on eb: dataset bit rate is monotone decreasing in eb.
	lo, hi := 1e-12, 1e12
	for i := 0; i < 200; i++ {
		mid := math.Sqrt(lo * hi) // geometric, spans decades
		uniform := make([]float64, len(features))
		for j := range uniform {
			uniform[j] = mid
		}
		br, err := c.Model.DatasetBitRate(features, uniform)
		if err != nil {
			return 0, err
		}
		if br > targetBitRate {
			lo = mid
		} else {
			hi = mid
		}
	}
	return math.Sqrt(lo * hi), nil
}
