package stats

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// Histogram is a fixed-width binned histogram over [Lo, Hi). Values outside
// the range are counted in Under/Over rather than silently dropped, because
// the halo-finder feature extraction cares about exactly how many cells fall
// inside a narrow band around the density threshold.
type Histogram struct {
	Lo, Hi float64
	Counts []int64
	Under  int64
	Over   int64
	total  int64
}

// NewHistogram creates a histogram with bins equal-width bins over [lo, hi).
func NewHistogram(lo, hi float64, bins int) (*Histogram, error) {
	if bins <= 0 {
		return nil, errors.New("stats: histogram needs at least one bin")
	}
	if !(hi > lo) {
		return nil, fmt.Errorf("stats: invalid histogram range [%g, %g)", lo, hi)
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int64, bins)}, nil
}

// Add counts one observation.
func (h *Histogram) Add(x float64) {
	h.total++
	switch {
	case x < h.Lo:
		h.Under++
	case x >= h.Hi:
		h.Over++
	default:
		i := int(float64(len(h.Counts)) * (x - h.Lo) / (h.Hi - h.Lo))
		if i == len(h.Counts) { // guard FP rounding at the top edge
			i--
		}
		h.Counts[i]++
	}
}

// AddSlice counts every element of a float32 slice.
func (h *Histogram) AddSlice(xs []float32) {
	for _, x := range xs {
		h.Add(float64(x))
	}
}

// Total returns the number of observations, including out-of-range ones.
func (h *Histogram) Total() int64 { return h.total }

// InRange returns the number of observations that landed in a bin.
func (h *Histogram) InRange() int64 { return h.total - h.Under - h.Over }

// BinWidth returns the width of each bin.
func (h *Histogram) BinWidth() float64 { return (h.Hi - h.Lo) / float64(len(h.Counts)) }

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	return h.Lo + (float64(i)+0.5)*h.BinWidth()
}

// Density returns the probability density estimate for bin i
// (count / (total·width)), or 0 when the histogram is empty.
func (h *Histogram) Density(i int) float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.Counts[i]) / (float64(h.total) * h.BinWidth())
}

// Fractions returns the per-bin fraction of in-range observations.
func (h *Histogram) Fractions() []float64 {
	out := make([]float64, len(h.Counts))
	in := h.InRange()
	if in == 0 {
		return out
	}
	for i, c := range h.Counts {
		out[i] = float64(c) / float64(in)
	}
	return out
}

// ChiSquareUniform returns the chi-square statistic of the in-range counts
// against a uniform distribution across the bins. Small values mean the
// histogram is close to uniform; the SZ error-distribution experiments
// (paper Fig. 3) use this as their closeness score.
func (h *Histogram) ChiSquareUniform() float64 {
	in := h.InRange()
	if in == 0 {
		return 0
	}
	expected := float64(in) / float64(len(h.Counts))
	var chi2 float64
	for _, c := range h.Counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	return chi2
}

// MaxDeviationFromUniform returns max_i |fraction_i − 1/bins| over in-range
// counts, a Kolmogorov-style uniformity score in [0, 1).
func (h *Histogram) MaxDeviationFromUniform() float64 {
	in := h.InRange()
	if in == 0 {
		return 0
	}
	u := 1.0 / float64(len(h.Counts))
	var m float64
	for _, c := range h.Counts {
		d := math.Abs(float64(c)/float64(in) - u)
		if d > m {
			m = d
		}
	}
	return m
}

// String renders a compact ASCII sparkline of the histogram, useful in the
// experiment CLIs.
func (h *Histogram) String() string {
	var max int64
	for _, c := range h.Counts {
		if c > max {
			max = c
		}
	}
	levels := []rune(" ▁▂▃▄▅▆▇█")
	var b strings.Builder
	fmt.Fprintf(&b, "[%g,%g) n=%d ", h.Lo, h.Hi, h.total)
	for _, c := range h.Counts {
		idx := 0
		if max > 0 {
			idx = int(float64(c) / float64(max) * float64(len(levels)-1))
		}
		b.WriteRune(levels[idx])
	}
	return b.String()
}

// CountInBand returns how many elements of xs fall inside [lo, hi). This is
// the "effective cell" extraction of the paper (cells whose value lies in
// (t_boundary − eb, t_boundary + eb)) and runs in a single pass.
func CountInBand(xs []float32, lo, hi float64) int {
	n := 0
	for _, x := range xs {
		v := float64(x)
		if v >= lo && v < hi {
			n++
		}
	}
	return n
}
