package adaptive

import (
	"context"

	"repro/internal/core"
	"repro/internal/foresight"
	"repro/internal/pipeline"
)

// System is the adaptive configurator plus its streaming driver: one
// object that calibrates rate models, plans per-partition error bounds,
// compresses snapshots (one-shot, in situ, or as a stream with calibration
// reuse), and remembers per-field calibration state across Run calls.
//
// A System is safe for concurrent use. All options resolve at New; the
// per-call hot paths never consult them, so going through the facade costs
// nothing over the internal engine (pinned by BenchmarkFacadeOverhead).
type System struct {
	eng *core.Engine
	drv *pipeline.Driver
	cal core.CalibrationOptions
}

// New builds a System from functional options. Configuration errors wrap
// ErrBadConfig; an unregistered backend name wraps ErrCodecUnknown.
func New(opts ...Option) (*System, error) {
	var cfg config
	for _, opt := range opts {
		if err := opt(&cfg); err != nil {
			return nil, err
		}
	}
	cfg.pipe.Calibration = cfg.cal
	eng, err := core.NewEngine(cfg.engine)
	if err != nil {
		return nil, err
	}
	drv, err := pipeline.NewWithEngine(eng, cfg.pipe)
	if err != nil {
		return nil, err
	}
	return &System{eng: eng, drv: drv, cal: cfg.cal}, nil
}

// Codec returns the resolved backend's registry name.
func (s *System) Codec() string { return string(s.eng.Config().Codec) }

// PartitionDim returns the effective partition brick edge.
func (s *System) PartitionDim() int { return s.eng.Config().PartitionDim }

// Calibrate samples bit-rate/error-bound curves from a representative
// field and fits the rate model — the paper's offline step, done once per
// field kind and reused across snapshots. Cancellation is checked between
// sample compressions.
func (s *System) Calibrate(ctx context.Context, f *Field) (*Calibration, error) {
	return s.eng.Calibrate(ctx, f, s.cal)
}

// Features computes the per-partition rate-model predictor (mean |value|
// per partition, in partition-ID order); hand it to PlanFromFeatures to
// plan without re-scanning the field.
func (s *System) Features(ctx context.Context, f *Field) ([]float64, error) {
	return s.eng.Features(ctx, f)
}

// Plan computes the adaptive per-partition error bounds for a field under
// the given quality budget.
func (s *System) Plan(ctx context.Context, f *Field, cal *Calibration, opt PlanOptions) (*Plan, error) {
	return s.eng.Plan(ctx, f, cal, opt)
}

// PlanFromFeatures is Plan with the per-partition features already in
// hand (they must come from Features on a field of the same layout).
func (s *System) PlanFromFeatures(features []float64, cal *Calibration, opt PlanOptions) (*Plan, error) {
	return s.eng.PlanFromFeatures(features, cal, opt)
}

// CompressAdaptive compresses each partition with its planned error
// bound. Cancellation is checked between partitions, never mid-partition,
// so every produced frame is complete and bit-exact.
func (s *System) CompressAdaptive(ctx context.Context, f *Field, plan *Plan) (*CompressedField, error) {
	return s.eng.CompressAdaptive(ctx, f, plan)
}

// CompressStatic compresses every partition with the same bound — the
// paper's "traditional" baseline, kept for comparisons.
func (s *System) CompressStatic(ctx context.Context, f *Field, eb float64) (*CompressedField, error) {
	return s.eng.CompressStatic(ctx, f, eb)
}

// CompressInSitu runs the paper's full in situ protocol over the
// simulated MPI runtime: rank-local feature extraction, one Allreduce for
// the global anchor, rank-local error-bound optimization (plus the
// optional halo-budget collective), then rank-local compression.
func (s *System) CompressInSitu(ctx context.Context, f *Field, cal *Calibration, opt InSituOptions) (*CompressedField, *InSituStats, error) {
	return s.eng.CompressInSitu(ctx, f, cal, opt)
}

// Run streams a simulation through the compressor until the source
// returns io.EOF: each step's fields are compressed with calibration
// reuse, recalibrating per the configured policy, appending to the
// configured stream writer. On error (including cancellation) the stats
// collected so far are returned alongside it; a canceled run never writes
// a partial step, so closing the writer yields a valid truncated stream.
func (s *System) Run(ctx context.Context, src Source) (*RunStats, error) {
	return s.drv.Run(ctx, src)
}

// Step compresses one snapshot's fields through the streaming pipeline,
// updating per-field calibration state.
func (s *System) Step(ctx context.Context, snap map[string]*Field) (*StepStats, error) {
	return s.drv.Step(ctx, snap)
}

// Calibration returns the streaming pipeline's current calibration for a
// field, or nil before the field's first step.
func (s *System) Calibration(name string) *Calibration {
	return s.drv.Calibration(name)
}

// Foresight returns an evaluation harness bound to this system's engine;
// set its exported fields (Halo, SpectrumTol, ...) before use.
func (s *System) Foresight() *ForesightEvaluator {
	return &foresight.Evaluator{Engine: s.eng}
}

// SpectrumBudget derives the average error bound that keeps a field's
// power spectrum within 1 ± Tolerance for k < KMax at the configured
// confidence (the paper's ±1 % band target).
func SpectrumBudget(f *Field, opt BudgetOptions) (float64, error) {
	return core.SpectrumBudget(f, opt)
}

// HaloBudget derives the halo-mass constraint for a density field from a
// reference catalog: the admissible total mass distortion for a
// mass-ratio RMSE within 1 ± tol.
func HaloBudget(f *Field, cfg HaloConfig, tol, refEB float64, p *Partitioner) (*HaloBudgetResult, error) {
	return core.HaloBudget(f, cfg, tol, refEB, p)
}

// MassFaultEstimate combines a plan with halo features to predict the
// halo-mass distortion of a compressed field (paper Eq. 11).
func MassFaultEstimate(tBoundary, refEB float64, boundaryCells []int, ebs []float64) (float64, error) {
	return core.MassFaultEstimate(tBoundary, refEB, boundaryCells, ebs)
}
