package core

import (
	"bytes"
	"context"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// Fuzz harnesses for the archive readers, v2 (single field) and v3
// (multi-snapshot stream): malformed archives must error, never panic and
// never allocate absurdly. Seeds come from the golden fixtures plus
// targeted corruptions; the checked-in corpus lives under testdata/fuzz
// and regenerates with
//
//	go test ./internal/core -run TestWriteArchiveFuzzCorpus -update-golden

// archiveFuzzSeeds returns the golden v2 fixtures plus corruptions.
func archiveFuzzSeeds(tb testing.TB) [][]byte {
	tb.Helper()
	seeds := [][]byte{
		nil,
		[]byte("ACFD"),
		bytes.Repeat([]byte{0xFF}, archiveHeader),
	}
	for _, name := range []string{"golden_sz.acfd", "golden_zfp.acfd"} {
		data, err := os.ReadFile(filepath.Join("testdata", name))
		if err != nil {
			tb.Skipf("golden fixture missing: %v", err)
		}
		seeds = append(seeds, data, data[:len(data)*2/3])
		flip := append([]byte(nil), data...)
		flip[archiveHeader+2] ^= 0x80
		seeds = append(seeds, flip)
		// A huge partition count with a tiny body.
		big := append([]byte(nil), data[:archiveHeader]...)
		big[24], big[25], big[26], big[27] = 0xFF, 0xFF, 0xFF, 0x7F
		seeds = append(seeds, big)
	}
	return seeds
}

// streamFuzzSeeds returns the golden v3 fixture plus corruptions.
func streamFuzzSeeds(tb testing.TB) [][]byte {
	tb.Helper()
	seeds := [][]byte{
		nil,
		[]byte("ACS3"),
		bytes.Repeat([]byte{0x41}, streamHeaderBytes+streamTrailerBytes),
	}
	data, err := os.ReadFile(filepath.Join("testdata", "golden_stream.acs"))
	if err != nil {
		tb.Skipf("golden fixture missing: %v", err)
	}
	seeds = append(seeds, data, data[:len(data)-3], data[:len(data)/2])
	for _, off := range []int{4, streamHeaderBytes + 1, len(data) - streamTrailerBytes + 2, len(data) - 2} {
		flip := append([]byte(nil), data...)
		flip[off] ^= 0xFF
		seeds = append(seeds, flip)
	}
	seeds = append(seeds, mutateStepNames(data)...)
	return seeds
}

// mutateStepNames returns hostile variants of a valid stream whose first
// step block's field names violate the writer's sorted-unique invariant —
// an out-of-sorted-order first name, and (when the first two names have
// equal length) a duplicated name — with the index, footer, and payloads
// untouched, so only parseStepBlock's name validation can reject them.
// Returns nil when the first step has fewer than two fields.
func mutateStepNames(data []byte) [][]byte {
	pos := streamHeaderBytes
	if len(data) < pos+4 {
		return nil
	}
	count := int(binary.LittleEndian.Uint32(data[pos : pos+4]))
	pos += 4
	if count < 2 {
		return nil
	}
	nameAt := func() (off, n int, ok bool) {
		if pos+2 > len(data) {
			return 0, 0, false
		}
		n = int(binary.LittleEndian.Uint16(data[pos : pos+2]))
		off = pos + 2
		pos = off + n
		if pos+4 > len(data) {
			return 0, 0, false
		}
		payload := int(binary.LittleEndian.Uint32(data[pos : pos+4]))
		pos += 4 + payload
		return off, n, pos <= len(data)
	}
	off1, n1, ok := nameAt()
	if !ok {
		return nil
	}
	off2, n2, ok := nameAt()
	if !ok {
		return nil
	}
	outOfOrder := append([]byte(nil), data...)
	outOfOrder[off1] = 0xFE // sorts after any writer-produced name
	out := [][]byte{outOfOrder}
	if n1 == n2 {
		dup := append([]byte(nil), data...)
		copy(dup[off2:off2+n2], dup[off1:off1+n1])
		out = append(out, dup)
	}
	return out
}

func FuzzParseCompressedField(f *testing.F) {
	for _, s := range archiveFuzzSeeds(f) {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		cf, err := ParseCompressedField(data)
		if err != nil {
			return
		}
		// A parsed archive must survive a re-encode/re-parse cycle.
		// (Byte-exact stability is asserted on writer-produced archives by
		// the golden tests; arbitrary accepted inputs may normalize, e.g.
		// reserved flag bits.)
		if _, err := ParseCompressedField(cf.Bytes()); err != nil {
			t.Fatalf("re-encoded archive no longer parses: %v", err)
		}
		// Decompression of plausible-size fields must not panic; errors
		// are expected when frame dims disagree with the partitioning.
		if cf.N() <= 1<<18 {
			_, _ = cf.Decompress(context.Background())
		}
	})
}

// recoverFuzzSeeds seeds the recovery fuzzer: everything the strict-open
// fuzzer sees, plus torn-tail artifacts only RecoverStream accepts —
// notably a hostile HALF-WRITTEN FOOTER (a crash mid-Close or
// mid-checkpoint): complete steps followed by a prefix of a valid footer,
// and variants whose surviving footer bytes are bit-flipped.
func recoverFuzzSeeds(tb testing.TB) [][]byte {
	tb.Helper()
	seeds := streamFuzzSeeds(tb)
	data, err := os.ReadFile(filepath.Join("testdata", "golden_stream.acs"))
	if err != nil {
		return seeds
	}
	sr, err := OpenStream(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		return seeds
	}
	last := sr.index[len(sr.index)-1]
	stepsEnd := int(last.Offset + last.Length)
	// Half-written footers of several lengths, including one byte short of
	// complete (the nastiest: everything validates except the trailer).
	for _, keep := range []int{1, 7, (len(data) - stepsEnd) / 2, len(data) - stepsEnd - 1} {
		if keep > 0 && stepsEnd+keep < len(data) {
			seeds = append(seeds, data[:stepsEnd+keep])
		}
	}
	// A half footer whose surviving bytes are corrupted — recovery must
	// treat it as tail garbage, not index truth.
	hostile := append([]byte(nil), data[:stepsEnd+10]...)
	for i := stepsEnd; i < len(hostile); i++ {
		hostile[i] ^= 0xA5
	}
	seeds = append(seeds, hostile)
	// A torn stream whose tail starts like a plausible next step (field
	// count 1, huge name length) — the delimiter must bounds-check it.
	tease := append([]byte(nil), data[:stepsEnd]...)
	tease = append(tease, 1, 0, 0, 0, 0xFF, 0xFF, 'x')
	seeds = append(seeds, tease)
	return seeds
}

// FuzzRecoverStream holds the recovery invariants under hostile input:
// never panic, never salvage a step the strict parser would reject, and
// always produce a salvage that re-serializes into a stream the strict
// OpenStream accepts with the same step count.
func FuzzRecoverStream(f *testing.F) {
	for _, s := range recoverFuzzSeeds(f) {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		sr, rep, err := RecoverStream(bytes.NewReader(data), int64(len(data)))
		if err != nil {
			return
		}
		if rep.Steps != sr.Steps() {
			t.Fatalf("report says %d steps, reader has %d", rep.Steps, sr.Steps())
		}
		for i := 0; i < sr.Steps(); i++ {
			_, err := sr.ReadStep(i)
			// A scan-salvaged step was validated block by block and must
			// re-read. The Clean path trusts an intact footer (the crash
			// model: torn tails, not bit rot mid-stream), so its steps may
			// still fail content validation — but never panic.
			if err != nil && !rep.Clean {
				t.Fatalf("scan-salvaged step %d does not re-read: %v", i, err)
			}
		}
		var repaired bytes.Buffer
		if _, err := sr.WriteTo(&repaired); err != nil {
			t.Fatalf("salvage does not re-serialize: %v", err)
		}
		re, err := OpenStream(bytes.NewReader(repaired.Bytes()), int64(repaired.Len()))
		if err != nil {
			t.Fatalf("repaired stream rejected by strict open: %v", err)
		}
		if re.Steps() != rep.Steps {
			t.Fatalf("repaired stream has %d steps, salvage had %d", re.Steps(), rep.Steps)
		}
	})
}

func FuzzOpenStream(f *testing.F) {
	for _, s := range streamFuzzSeeds(f) {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		sr, err := OpenStream(bytes.NewReader(data), int64(len(data)))
		if err != nil {
			return
		}
		// The index passed validation: every step must be reachable and
		// either decode or error cleanly.
		for i := 0; i < sr.Steps(); i++ {
			if fields, err := sr.ReadStep(i); err == nil {
				for _, cf := range fields {
					if cf.N() <= 1<<18 {
						_, _ = cf.Decompress(context.Background())
					}
				}
			}
		}
	})
}

// TestWriteArchiveFuzzCorpus materializes the seed corpora as checked-in
// files in Go's corpus format (reuses the golden -update-golden flag: the
// corpus derives from the fixtures, so they regenerate together).
func TestWriteArchiveFuzzCorpus(t *testing.T) {
	if !*updateGolden {
		t.Skip("run with -update-golden to rewrite the corpus")
	}
	write := func(fuzzName string, seeds [][]byte) {
		dir := filepath.Join("testdata", "fuzz", fuzzName)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		for i, s := range seeds {
			body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", s)
			if err := os.WriteFile(filepath.Join(dir, fmt.Sprintf("seed-%03d", i)), []byte(body), 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
	write("FuzzParseCompressedField", archiveFuzzSeeds(t))
	write("FuzzOpenStream", streamFuzzSeeds(t))
	write("FuzzRecoverStream", recoverFuzzSeeds(t))
}
