package core

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/apierr"
	"repro/internal/grid"
	"repro/internal/halo"
	"repro/internal/model"
	"repro/internal/optimizer"
	"repro/internal/spectrum"
	"repro/internal/stats"
)

// BudgetOptions controls how a power-spectrum quality target is converted
// into an average-error-bound budget (the paper's "2σ from Equation 10
// mapped to an acceptable error range", Sec. 4.2).
type BudgetOptions struct {
	// Tolerance is the admissible |P'(k)/P(k) − 1| (paper: 0.01).
	Tolerance float64
	// KMax is the highest wavenumber the band applies to (paper: 10).
	KMax float64
	// Confidence is the two-sided coverage probability (paper: 95.45 %).
	Confidence float64
	// ShellAveraging accounts for the √count error reduction when a
	// shell averages many modes (default true). Disabling it reproduces
	// the paper's more conservative single-bin mapping.
	ShellAveraging bool
	// Workers bounds the FFT worker pool.
	Workers int
}

func (o BudgetOptions) withDefaults() BudgetOptions {
	if o.Tolerance == 0 {
		o.Tolerance = 0.01
	}
	if o.KMax == 0 {
		o.KMax = 10
	}
	if o.Confidence == 0 {
		o.Confidence = stats.TwoSigmaConfidence
	}
	return o
}

// SpectrumBudget derives the average error bound that keeps the power
// spectrum of an n³ field within 1 ± Tolerance for k < KMax at the given
// confidence, using the FFT error model (Eqs. 9–10) anchored on a
// reference field's measured spectrum.
//
// Derivation per shell k (component bin error σ, shell amplitude
// A² = mean|F|², count c): the shell power error has a deterministic bias
// 2σ² (mean |E|² over both components) and a random part with standard
// deviation ≈ 2Aσ/√c. Requiring  conf·(2Aσ/√c) + 2σ² ≤ tol·A²  and solving
// the quadratic for σ gives the shell's admissible bin σ; the budget is the
// most restrictive shell's value, inverted through Eq. 9.
func SpectrumBudget(f *grid.Field3D, opt BudgetOptions) (float64, error) {
	opt = opt.withDefaults()
	if f.Nx != f.Ny || f.Ny != f.Nz {
		return 0, fmt.Errorf("core: %w: spectrum budget needs a cubic field, got %s", apierr.ErrBadConfig, f)
	}
	sp, err := spectrum.Compute(f, spectrum.Options{Workers: opt.Workers})
	if err != nil {
		return 0, err
	}
	n := f.Nx
	n3 := float64(n) * float64(n) * float64(n)
	k := stats.ConfidenceFactor(opt.Confidence)
	best := math.Inf(1)
	for shell := 1; shell < sp.Len(); shell++ {
		if sp.K[shell] >= opt.KMax || sp.Counts[shell] == 0 || sp.P[shell] <= 0 {
			continue
		}
		// Convert the normalized shell power back to raw |F| units
		// (BinShells divides |F|² by N⁶).
		a2 := sp.P[shell] * n3 * n3
		a := math.Sqrt(a2)
		cnt := float64(sp.Counts[shell])
		var sigma float64
		if opt.ShellAveraging {
			// 2σ² + (2kA/√c)σ − tol·A² = 0.
			b := 2 * k * a / math.Sqrt(cnt)
			sigma = (-b + math.Sqrt(b*b+8*opt.Tolerance*a2)) / 4
		} else {
			// Single-bin mapping: conf·(2Aσ) + 2σ² ≤ tol·A².
			b := 2 * k * a
			sigma = (-b + math.Sqrt(b*b+8*opt.Tolerance*a2)) / 4
		}
		if sigma < best {
			best = sigma
		}
	}
	if math.IsInf(best, 1) {
		return 0, errors.New("core: no populated shells below KMax")
	}
	return model.AverageEBForFFTSigma(n, best), nil
}

// HaloBudget derives the halo constraint for a density field from a
// reference catalog: the admissible total mass distortion for a mass-ratio
// RMSE within 1 ± tol (paper: 0.01).
func HaloBudget(f *grid.Field3D, cfg halo.Config, tol, refEB float64, p *grid.Partitioner) (*HaloBudgetResult, error) {
	if tol <= 0 {
		return nil, fmt.Errorf("core: %w: halo tolerance must be positive", apierr.ErrBadConfig)
	}
	if refEB <= 0 {
		return nil, fmt.Errorf("core: %w: halo reference eb must be positive", apierr.ErrBadConfig)
	}
	cat, err := halo.Find(f, cfg)
	if err != nil {
		return nil, err
	}
	fts := grid.ExtractFeatures(f, p, grid.FeatureOptions{
		HaloThreshold: cfg.BoundaryThreshold,
		RefEB:         refEB,
	})
	cells := make([]int, len(fts))
	for i, ft := range fts {
		cells[i] = ft.BoundaryCells
	}
	return &HaloBudgetResult{
		Catalog:       cat,
		BoundaryCells: cells,
		RefEB:         refEB,
		TBoundary:     cfg.BoundaryThreshold,
		MassBudget:    model.MassBudgetFromRMSE(cat.TotalMass(), tol),
	}, nil
}

// HaloBudgetResult carries everything the optimizer's halo constraint
// needs, plus the reference catalog for later comparison.
type HaloBudgetResult struct {
	Catalog       *halo.Catalog
	BoundaryCells []int
	RefEB         float64
	TBoundary     float64
	MassBudget    float64
}

// Constraint converts the budget result into the optimizer's constraint.
func (h *HaloBudgetResult) Constraint() optimizer.HaloConstraint {
	return optimizer.HaloConstraint{
		TBoundary:     h.TBoundary,
		RefEB:         h.RefEB,
		BoundaryCells: h.BoundaryCells,
		MassBudget:    h.MassBudget,
	}
}
