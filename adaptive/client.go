package adaptive

import (
	"net/http"
	"time"

	"repro/internal/client"
)

// Client is the resilient client for a compression service: capped
// exponential backoff with full jitter that honors the server's
// Retry-After, a per-endpoint closed/open/half-open circuit breaker (typed
// ErrCircuitOpen), and per-attempt deadlines carved from the caller's
// context. Refusals the service guarantees were never started (429
// overloaded, 503 draining) are retried for every operation; transport
// errors and 5xx only for idempotent reads. Safe for concurrent use.
type Client = client.Client

// ClientCounters is a snapshot of a Client's resilience accounting.
type ClientCounters = client.Counters

// CompressResult is one successful Client.Compress: the archive plus the
// operating point the service ran it at.
type CompressResult = client.CompressResult

// CalibrationInfo mirrors the service's /v1/calibrate response.
type CalibrationInfo = client.CalibrationInfo

// ClientBreakerConfig tunes the Client's per-endpoint circuit breaker.
type ClientBreakerConfig = client.BreakerConfig

// ClientOption configures NewClient. Rejections wrap ErrBadConfig.
type ClientOption func(*client.Config)

// WithTenant sets the X-Tenant header on every request ("" = the server's
// default tenant).
func WithTenant(tenant string) ClientOption {
	return func(c *client.Config) { c.Tenant = tenant }
}

// WithRetries bounds total tries per call (first attempt included,
// default 4; 1 disables retries) and shapes the backoff between them:
// retry n sleeps rand·min(maxBackoff, baseBackoff·2ⁿ) — full jitter —
// plus the server's Retry-After when one was given. Zero durations keep
// the defaults (50ms base, 2s max).
func WithRetries(maxAttempts int, baseBackoff, maxBackoff time.Duration) ClientOption {
	return func(c *client.Config) {
		c.MaxAttempts = maxAttempts
		c.BaseBackoff = baseBackoff
		c.MaxBackoff = maxBackoff
	}
}

// WithAttemptTimeout bounds each individual attempt on top of the
// caller's context (0 = attempts run under the caller's deadline alone).
func WithAttemptTimeout(d time.Duration) ClientOption {
	return func(c *client.Config) { c.AttemptTimeout = d }
}

// WithBreaker tunes the per-endpoint circuit breaker: threshold
// consecutive server-class failures trip it open, and after cooldown it
// admits one half-open probe. A negative threshold disables the breaker.
func WithBreaker(threshold int, cooldown time.Duration) ClientOption {
	return func(c *client.Config) {
		c.Breaker = client.BreakerConfig{Threshold: threshold, Cooldown: cooldown}
	}
}

// WithHTTPClient overrides the transport (default: a fresh h2c transport
// matching NewH2CServer).
func WithHTTPClient(hc *http.Client) ClientOption {
	return func(c *client.Config) { c.HTTPClient = hc }
}

// NewClient builds a resilient service client for the service rooted at
// baseURL (e.g. "http://127.0.0.1:8323"). Rejections wrap ErrBadConfig.
func NewClient(baseURL string, opts ...ClientOption) (*Client, error) {
	cfg := client.Config{BaseURL: baseURL}
	for _, opt := range opts {
		opt(&cfg)
	}
	return client.New(cfg)
}
