package core

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// Fuzz harnesses for the archive readers, v2 (single field) and v3
// (multi-snapshot stream): malformed archives must error, never panic and
// never allocate absurdly. Seeds come from the golden fixtures plus
// targeted corruptions; the checked-in corpus lives under testdata/fuzz
// and regenerates with
//
//	go test ./internal/core -run TestWriteArchiveFuzzCorpus -update-golden

// archiveFuzzSeeds returns the golden v2 fixtures plus corruptions.
func archiveFuzzSeeds(tb testing.TB) [][]byte {
	tb.Helper()
	seeds := [][]byte{
		nil,
		[]byte("ACFD"),
		bytes.Repeat([]byte{0xFF}, archiveHeader),
	}
	for _, name := range []string{"golden_sz.acfd", "golden_zfp.acfd"} {
		data, err := os.ReadFile(filepath.Join("testdata", name))
		if err != nil {
			tb.Skipf("golden fixture missing: %v", err)
		}
		seeds = append(seeds, data, data[:len(data)*2/3])
		flip := append([]byte(nil), data...)
		flip[archiveHeader+2] ^= 0x80
		seeds = append(seeds, flip)
		// A huge partition count with a tiny body.
		big := append([]byte(nil), data[:archiveHeader]...)
		big[24], big[25], big[26], big[27] = 0xFF, 0xFF, 0xFF, 0x7F
		seeds = append(seeds, big)
	}
	return seeds
}

// streamFuzzSeeds returns the golden v3 fixture plus corruptions.
func streamFuzzSeeds(tb testing.TB) [][]byte {
	tb.Helper()
	seeds := [][]byte{
		nil,
		[]byte("ACS3"),
		bytes.Repeat([]byte{0x41}, streamHeaderBytes+streamTrailerBytes),
	}
	data, err := os.ReadFile(filepath.Join("testdata", "golden_stream.acs"))
	if err != nil {
		tb.Skipf("golden fixture missing: %v", err)
	}
	seeds = append(seeds, data, data[:len(data)-3], data[:len(data)/2])
	for _, off := range []int{4, streamHeaderBytes + 1, len(data) - streamTrailerBytes + 2, len(data) - 2} {
		flip := append([]byte(nil), data...)
		flip[off] ^= 0xFF
		seeds = append(seeds, flip)
	}
	return seeds
}

func FuzzParseCompressedField(f *testing.F) {
	for _, s := range archiveFuzzSeeds(f) {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		cf, err := ParseCompressedField(data)
		if err != nil {
			return
		}
		// A parsed archive must survive a re-encode/re-parse cycle.
		// (Byte-exact stability is asserted on writer-produced archives by
		// the golden tests; arbitrary accepted inputs may normalize, e.g.
		// reserved flag bits.)
		if _, err := ParseCompressedField(cf.Bytes()); err != nil {
			t.Fatalf("re-encoded archive no longer parses: %v", err)
		}
		// Decompression of plausible-size fields must not panic; errors
		// are expected when frame dims disagree with the partitioning.
		if cf.N() <= 1<<18 {
			_, _ = cf.Decompress(context.Background())
		}
	})
}

func FuzzOpenStream(f *testing.F) {
	for _, s := range streamFuzzSeeds(f) {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		sr, err := OpenStream(bytes.NewReader(data), int64(len(data)))
		if err != nil {
			return
		}
		// The index passed validation: every step must be reachable and
		// either decode or error cleanly.
		for i := 0; i < sr.Steps(); i++ {
			if fields, err := sr.ReadStep(i); err == nil {
				for _, cf := range fields {
					if cf.N() <= 1<<18 {
						_, _ = cf.Decompress(context.Background())
					}
				}
			}
		}
	})
}

// TestWriteArchiveFuzzCorpus materializes the seed corpora as checked-in
// files in Go's corpus format (reuses the golden -update-golden flag: the
// corpus derives from the fixtures, so they regenerate together).
func TestWriteArchiveFuzzCorpus(t *testing.T) {
	if !*updateGolden {
		t.Skip("run with -update-golden to rewrite the corpus")
	}
	write := func(fuzzName string, seeds [][]byte) {
		dir := filepath.Join("testdata", "fuzz", fuzzName)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		for i, s := range seeds {
			body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", s)
			if err := os.WriteFile(filepath.Join(dir, fmt.Sprintf("seed-%03d", i)), []byte(body), 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
	write("FuzzParseCompressedField", archiveFuzzSeeds(t))
	write("FuzzOpenStream", streamFuzzSeeds(t))
}
