// Command adaptivecfg runs the paper's adaptive compression pipeline on a
// snapshot file: calibrate the rate model, derive the quality budget, plan
// per-partition error bounds, compress adaptively, and report ratios
// against the static baseline at the same budget.
//
// Usage:
//
//	adaptivecfg -snapshot data/snapshot_z42.nyx -field baryon_density \
//	            -partition 16 [-codec sz] [-avg-eb 0.1] [-halo] [-save out.acfd]
//
// When -avg-eb is omitted the budget is derived from the power-spectrum
// quality target (±1 % for k < 10 at 2σ confidence, the paper's setting).
// -codec selects the compression backend from the codec registry (sz by
// default; zfp approximates each planned bound with its fixed-rate search).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/halo"
	"repro/internal/nyx"
	"repro/internal/snapio"
	"repro/internal/stats"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("adaptivecfg: ")
	var (
		snapPath  = flag.String("snapshot", "", "snapshot file from nyxgen (required)")
		fieldName = flag.String("field", nyx.FieldBaryonDensity, "field to compress")
		partition = flag.Int("partition", 16, "partition brick dimension")
		codecName = flag.String("codec", string(codec.SZ),
			fmt.Sprintf("compression backend (%s)", idList()))
		avgEB    = flag.Float64("avg-eb", 0, "average error-bound budget (0 = derive from spectrum target)")
		tol      = flag.Float64("tolerance", 0.01, "power-spectrum tolerance for the derived budget")
		useHalo  = flag.Bool("halo", false, "apply the halo-finder mass budget (density fields)")
		savePath = flag.String("save", "", "write the adaptive archive to this path")
		workers  = flag.Int("workers", 0, "worker goroutines (0 = all cores)")
	)
	flag.Parse()
	if *snapPath == "" {
		flag.Usage()
		os.Exit(2)
	}

	snap, err := snapio.ReadFile(*snapPath)
	if err != nil {
		log.Fatal(err)
	}
	f, ok := snap.Fields[*fieldName]
	if !ok {
		log.Fatalf("field %q not in snapshot (have %v)", *fieldName, keys(snap.Fields))
	}
	eng, err := core.NewEngine(core.Config{
		PartitionDim: *partition,
		Workers:      *workers,
		Codec:        codec.ID(*codecName),
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("calibrating rate model on %s (%s) via %s...\n", *fieldName, f, eng.Config().Codec)
	cal, err := eng.Calibrate(f)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  rate model: b = C·eb^%.3f, C_m = %.3f %+.3f·ln(mean), R²=%.3f\n",
		cal.Model.Exponent, cal.Model.Alpha, cal.Model.Beta, cal.Model.FitR2)

	budget := *avgEB
	if budget <= 0 {
		budget, err = core.SpectrumBudget(f, core.BudgetOptions{
			Tolerance: *tol, Workers: *workers,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  spectrum-derived budget: avg eb = %.4g\n", budget)
	}

	opts := core.PlanOptions{AvgEB: budget}
	if *useHalo {
		p, err := grid.PartitionerForBrickDim(f.Nx, *partition)
		if err != nil {
			log.Fatal(err)
		}
		bt, pt := nyx.DefaultHaloConfig()
		hb, err := core.HaloBudget(f, haloConfig(bt, pt), 0.01, 1.0, p)
		if err != nil {
			log.Fatal(err)
		}
		hc := hb.Constraint()
		opts.Halo = &hc
		fmt.Printf("  halo budget: %d halos, mass budget %.4g\n",
			hb.Catalog.Count(), hb.MassBudget)
	}

	plan, err := eng.Plan(f, cal, opts)
	if err != nil {
		log.Fatal(err)
	}
	var ebStats stats.Moments
	for _, eb := range plan.EBs {
		ebStats.Add(eb)
	}
	fmt.Printf("  plan: %d partitions, eb ∈ [%.4g, %.4g], mean %.4g\n",
		len(plan.EBs), ebStats.Min(), ebStats.Max(), ebStats.Mean())
	fmt.Printf("  predicted improvement over static: %+.1f%%\n",
		plan.Predicted.PredictedImprovement()*100)

	adaptive, err := eng.CompressAdaptive(f, plan)
	if err != nil {
		log.Fatal(err)
	}
	static, err := eng.CompressStatic(f, budget)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("result:\n")
	fmt.Printf("  static  (eb=%.4g): ratio %.2f, %.3f bits/value\n",
		budget, static.Ratio(), static.BitRate())
	fmt.Printf("  adaptive          : ratio %.2f, %.3f bits/value (%+.1f%%)\n",
		adaptive.Ratio(), adaptive.BitRate(), (adaptive.Ratio()/static.Ratio()-1)*100)

	if *savePath != "" {
		if err := os.WriteFile(*savePath, adaptive.Bytes(), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  archive written to %s\n", *savePath)
	}
}

func keys(m map[string]*grid.Field3D) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

func haloConfig(boundary, peak float64) halo.Config {
	return halo.Config{BoundaryThreshold: boundary, HaloThreshold: peak, Periodic: true}
}

func idList() string {
	ids := codec.IDs()
	names := make([]string, len(ids))
	for i, id := range ids {
		names[i] = string(id)
	}
	return strings.Join(names, "|")
}
