// Halo-finder example: compress the baryon-density field under the
// combined power-spectrum + halo-mass budget (the paper's Sec. 3.6
// strategy for density fields), then verify the reconstructed halo catalog
// against the original — count, positions, and the mass-ratio RMSE the
// paper targets at 1 ± 0.01.
//
// Run with: go run ./examples/halofinder
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/halo"
	"repro/internal/nyx"
)

func main() {
	log.SetFlags(0)

	snap, err := nyx.Generate(nyx.Params{N: 64, Seed: 5, Redshift: 42})
	if err != nil {
		log.Fatal(err)
	}
	density, err := snap.Field(nyx.FieldBaryonDensity)
	if err != nil {
		log.Fatal(err)
	}

	bt, pt := nyx.DefaultHaloConfig()
	hcfg := halo.Config{BoundaryThreshold: bt, HaloThreshold: pt, Periodic: true}
	original, err := halo.Find(density, hcfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("original catalog: %d halos, %d candidate cells, total mass %.4g\n",
		original.Count(), original.Candidates, original.TotalMass())
	for _, h := range original.LargestN(3) {
		fmt.Printf("  halo %d: %d cells, mass %.4g, peak %.4g at (%.1f, %.1f, %.1f)\n",
			h.ID, h.Cells, h.Mass, h.Peak, h.X, h.Y, h.Z)
	}

	eng, err := core.NewEngine(core.Config{PartitionDim: 16})
	if err != nil {
		log.Fatal(err)
	}
	cal, err := eng.Calibrate(density)
	if err != nil {
		log.Fatal(err)
	}
	p, err := grid.PartitionerForBrickDim(64, 16)
	if err != nil {
		log.Fatal(err)
	}

	// Combined budget: spectrum band plus halo-mass budget (1 % of total
	// halo mass, per the paper's RMSE target).
	avgEB, err := core.SpectrumBudget(density, core.BudgetOptions{})
	if err != nil {
		log.Fatal(err)
	}
	hb, err := core.HaloBudget(density, hcfg, 0.01, 1.0, p)
	if err != nil {
		log.Fatal(err)
	}
	hc := hb.Constraint()
	plan, err := eng.Plan(density, cal, core.PlanOptions{AvgEB: avgEB, Halo: &hc})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nplan: avg eb %.4g, halo mass budget %.4g, halo-scaled: %v (×%.3g)\n",
		avgEB, hb.MassBudget, plan.Predicted.HaloScaled, plan.Predicted.HaloScale)

	cf, err := eng.CompressAdaptive(density, plan)
	if err != nil {
		log.Fatal(err)
	}
	recon, err := cf.Decompress()
	if err != nil {
		log.Fatal(err)
	}
	reconCat, err := halo.Find(recon, hcfg)
	if err != nil {
		log.Fatal(err)
	}
	match := halo.Match(original, reconCat, 2.0, 64, 64, 64)

	fmt.Printf("\ncompressed %.1f× — reconstructed catalog: %d halos\n",
		cf.Ratio(), reconCat.Count())
	fmt.Printf("  matched %d / lost %d / spurious %d\n",
		match.Matched, match.Lost, match.Spurious)
	fmt.Printf("  halo mass-ratio RMSE: %.5f (paper target ≤ 0.01)\n", match.MassRatioRMSE)
	fmt.Printf("  position RMSE: %.4f cells\n", match.PositionRMSE)
	fmt.Printf("  total |Δmass|: %.4g (model estimate was ≤ budget %.4g)\n",
		match.TotalAbsMassDiff, hb.MassBudget)
}
