package experiments

import (
	"math"

	"repro/internal/fft"
	"repro/internal/grid"
	"repro/internal/model"
	"repro/internal/nyx"
	"repro/internal/stats"
	"repro/internal/sz"
)

// Fig03ErrorDistribution reproduces Fig. 3: the pointwise error of SZ
// compression on the temperature field with eb = 10 is uniform in
// [−eb, +eb] (100-bin histogram).
func Fig03ErrorDistribution(ctx *Context) (*Result, error) {
	f, err := ctx.Field(nyx.FieldTemperature)
	if err != nil {
		return nil, err
	}
	const eb = 10.0
	c, err := sz.Compress(f, sz.Options{Mode: sz.ABS, ErrorBound: eb})
	if err != nil {
		return nil, err
	}
	recon, err := sz.Decompress(c)
	if err != nil {
		return nil, err
	}
	h, err := stats.NewHistogram(-eb, eb, 100)
	if err != nil {
		return nil, err
	}
	for i := range f.Data {
		h.Add(float64(f.Data[i]) - float64(recon.Data[i]))
	}
	res := &Result{
		ID:    "fig03",
		Title: "SZ error distribution (temperature, eb=10, 100 bins)",
		Cols:  []string{"bin_center", "fraction", "uniform_expect"},
	}
	fr := h.Fractions()
	// Print every 10th bin to keep the table readable; the uniformity
	// statistics summarize all 100.
	for i := 0; i < len(fr); i += 10 {
		res.AddRow(fnum(h.BinCenter(i)), fnum(fr[i]), fnum(0.01))
	}
	res.Notef("max deviation from uniform: %.5f (paper: visually uniform)", h.MaxDeviationFromUniform())
	res.Notef("chi-square vs uniform across 100 bins: %.1f", h.ChiSquareUniform())
	res.Notef("in-range samples: %d of %d", h.InRange(), h.Total())
	return res, nil
}

// injectAndTransform compresses a field with per-partition bounds, then
// returns the raw per-component FFT errors of the reconstruction.
func injectAndTransform(ctx *Context, f *grid.Field3D, ebs []float64) ([]float64, error) {
	p, err := ctx.Partitioner()
	if err != nil {
		return nil, err
	}
	recon := f.Clone()
	for i, part := range p.Partitions() {
		data := grid.Extract(f, part)
		nx, ny, nz := part.Dims()
		c, err := sz.CompressSlice(data, nx, ny, nz, sz.Options{Mode: sz.ABS, ErrorBound: ebs[i%len(ebs)]})
		if err != nil {
			return nil, err
		}
		rec, err := sz.DecompressSlice(c)
		if err != nil {
			return nil, err
		}
		if err := grid.Insert(recon, part, rec); err != nil {
			return nil, err
		}
	}
	sf, err := fft.Forward3DField(f, ctx.Cfg.Workers)
	if err != nil {
		return nil, err
	}
	sg, err := fft.Forward3DField(recon, ctx.Cfg.Workers)
	if err != nil {
		return nil, err
	}
	errs := make([]float64, 0, 2*len(sf))
	for i := range sf {
		d := sg[i] - sf[i]
		errs = append(errs, real(d), imag(d))
	}
	return errs, nil
}

// Fig04FFTErrorDistribution reproduces Fig. 4: the distribution of FFT
// errors under per-partition error bounds (average 1.0) matches the model's
// Gaussian with σ = sqrt(N³/6)·eb_avg.
func Fig04FFTErrorDistribution(ctx *Context) (*Result, error) {
	f, err := ctx.Field(nyx.FieldTemperature)
	if err != nil {
		return nil, err
	}
	// Per-partition bounds cycling around the average of 1.0, as in the
	// paper's setup ("various compression per-partition error bound ...
	// average error bound here is 1.0").
	ebs := []float64{0.5, 0.75, 1.0, 1.25, 1.5}
	errs, err := injectAndTransform(ctx, f, ebs)
	if err != nil {
		return nil, err
	}
	sigmaModel := model.SigmaFFT3DMulti(ctx.Cfg.N, ebs)
	h, err := stats.NewHistogram(-4, 4, 16) // in units of model σ
	if err != nil {
		return nil, err
	}
	var m stats.Moments
	for _, e := range errs {
		h.Add(e / sigmaModel)
		m.Add(e)
	}
	res := &Result{
		ID:    "fig04",
		Title: "FFT error distribution vs model (temperature, avg eb=1.0)",
		Cols:  []string{"x/sigma", "measured_density", "normal_density"},
	}
	for i := 0; i < len(h.Counts); i++ {
		x := h.BinCenter(i)
		res.AddRow(fnum(x), fnum(h.Density(i)), fnum(math.Exp(-x*x/2)/math.Sqrt(2*math.Pi)))
	}
	res.Notef("model sigma %.4g, measured %.4g (ratio %.3f)",
		sigmaModel, m.StdDev(), m.StdDev()/sigmaModel)
	res.Notef("measured mean %.3g (model: 0)", m.Mean())
	return res, nil
}

// Fig05FFTErrorVariance reproduces Fig. 5: measured vs modeled FFT error
// σ across a range of error bounds.
func Fig05FFTErrorVariance(ctx *Context) (*Result, error) {
	f, err := ctx.Field(nyx.FieldTemperature)
	if err != nil {
		return nil, err
	}
	res := &Result{
		ID:    "fig05",
		Title: "FFT error sigma: measured vs model across error bounds",
		Cols:  []string{"eb", "measured_sigma", "model_sigma", "ratio"},
	}
	worst := 0.0
	for _, eb := range []float64{0.1, 0.3, 1, 3, 10} {
		errs, err := injectAndTransform(ctx, f, []float64{eb})
		if err != nil {
			return nil, err
		}
		var m stats.Moments
		for _, e := range errs {
			m.Add(e)
		}
		modelS := model.SigmaFFT3D(ctx.Cfg.N, eb)
		ratio := m.StdDev() / modelS
		if d := math.Abs(ratio - 1); d > worst {
			worst = d
		}
		res.AddRow(fnum(eb), fnum(m.StdDev()), fnum(modelS), fnum(ratio))
	}
	res.Notef("worst model/measurement discrepancy: %.1f%% (paper: model 'highly reliable')", worst*100)
	return res, nil
}
