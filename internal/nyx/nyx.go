// Package nyx generates synthetic cosmology snapshots that stand in for the
// Nyx simulation data evaluated in the paper (Table 2). The real datasets
// (LBNL's 512³–2048³ Nyx runs) are not redistributable, so this package
// builds the closest synthetic equivalent that exercises the same code
// paths and exhibits the properties the adaptive-compression method
// exploits:
//
//   - a Gaussian random field with a falling cosmological power spectrum
//     (structure at all scales, P(k) decreasing in k);
//   - lognormal baryon and dark-matter density fields — heavy-tailed, with
//     dense halo-bearing regions and near-empty voids, so compute
//     partitions differ sharply in information density and compressibility
//     (paper Fig. 1);
//   - a temperature–density power-law relation with scatter;
//   - linear-theory peculiar velocities (irrotational, ∝ ∇Φ), which are the
//     "highly random" fields the paper notes compress poorly;
//   - redshift evolution via a growth factor, so earlier snapshots are
//     smoother and later ones more clustered (paper Figs. 16–17).
//
// Field value ranges are matched to Table 2 of the paper: baryon density in
// (0, 1e5) around mean 1, dark-matter density in (0, 1e4), temperature in
// (1e2, 1e7), velocities within ±1e8.
package nyx

import (
	"fmt"
	"math"

	"repro/internal/fft"
	"repro/internal/grid"
	"repro/internal/stats"
)

// Canonical field names, matching the six Nyx fields in the paper.
const (
	FieldBaryonDensity     = "baryon_density"
	FieldDarkMatterDensity = "dark_matter_density"
	FieldTemperature       = "temperature"
	FieldVelocityX         = "velocity_x"
	FieldVelocityY         = "velocity_y"
	FieldVelocityZ         = "velocity_z"
)

// FieldNames lists all six generated fields in canonical order.
var FieldNames = []string{
	FieldBaryonDensity, FieldDarkMatterDensity, FieldTemperature,
	FieldVelocityX, FieldVelocityY, FieldVelocityZ,
}

// Params controls snapshot generation.
type Params struct {
	// N is the cubic grid dimension (must be ≥ 4; powers of two are
	// fastest but not required).
	N int
	// Seed makes generation deterministic; snapshots at different
	// redshifts with the same seed share their initial conditions, like
	// successive dumps of one simulation.
	Seed uint64
	// Redshift z ≥ 0. Structure growth scales as 1/(1+z), normalized so
	// RefRedshift has unit growth.
	Redshift float64
	// RefRedshift anchors the growth normalization (default 42, the
	// latest snapshot used in the paper's Fig. 16).
	RefRedshift float64
	// SpectralIndex is the primordial tilt n_s (default 0.96).
	SpectralIndex float64
	// SigmaDelta is the standard deviation of the large-scale log-density
	// at the reference redshift (default 1.9; larger → heavier lognormal
	// tail → sparser, more clustered fields).
	SigmaDelta float64
	// AmpTilt couples small-scale roughness to the local large-scale
	// density (default 1.0): dense regions are rough in log space, voids
	// are nearly smooth — the property that makes per-partition rate
	// coefficients differ by orders of magnitude (paper Figs. 1 and 9).
	AmpTilt float64
	// SmallScale is the base small-scale log roughness at mean density
	// (default 0.5).
	SmallScale float64
	// BaryonBias and DarkMatterBias scale the lognormal exponent for the
	// two density fields (defaults 1.0 and 0.85).
	BaryonBias, DarkMatterBias float64
	// Gamma is the temperature–density polytropic exponent (default 1.6).
	Gamma float64
	// TempScatter is the lognormal scatter of temperature around the
	// power-law relation (default 0.4).
	TempScatter float64
	// T0 is the temperature at mean density (default 1e4 K).
	T0 float64
	// VelocityScale sets the RMS peculiar velocity (default 2e7, so the
	// tails reach toward ±1e8 as in Table 2).
	VelocityScale float64
	// Workers bounds FFT parallelism; 0 means GOMAXPROCS.
	Workers int
}

// withDefaults fills zero values with the documented defaults.
func (p Params) withDefaults() Params {
	if p.RefRedshift == 0 {
		p.RefRedshift = 42
	}
	if p.SpectralIndex == 0 {
		p.SpectralIndex = 0.96
	}
	if p.SigmaDelta == 0 {
		p.SigmaDelta = 1.9
	}
	if p.AmpTilt == 0 {
		p.AmpTilt = 1.0
	}
	if p.SmallScale == 0 {
		p.SmallScale = 0.5
	}
	if p.BaryonBias == 0 {
		p.BaryonBias = 1.0
	}
	if p.DarkMatterBias == 0 {
		p.DarkMatterBias = 0.85
	}
	if p.Gamma == 0 {
		p.Gamma = 1.6
	}
	if p.TempScatter == 0 {
		p.TempScatter = 0.4
	}
	if p.T0 == 0 {
		p.T0 = 1e4
	}
	if p.VelocityScale == 0 {
		p.VelocityScale = 2e7
	}
	return p
}

// Validate checks the parameters.
func (p Params) Validate() error {
	if p.N < 4 {
		return fmt.Errorf("nyx: grid dimension %d too small", p.N)
	}
	if p.Redshift < 0 {
		return fmt.Errorf("nyx: negative redshift %g", p.Redshift)
	}
	return nil
}

// Snapshot is one generated time step.
type Snapshot struct {
	Params Params
	Fields map[string]*grid.Field3D
}

// Field returns a named field or an error listing what exists.
func (s *Snapshot) Field(name string) (*grid.Field3D, error) {
	f, ok := s.Fields[name]
	if !ok {
		return nil, fmt.Errorf("nyx: no field %q (have %v)", name, FieldNames)
	}
	return f, nil
}

// growthFactor is the linear growth normalized to 1 at the reference
// redshift (Einstein–de Sitter scaling D ∝ 1/(1+z), adequate for the
// matter-dominated regime these snapshots represent).
func growthFactor(z, zRef float64) float64 {
	return (1 + zRef) / (1 + z)
}

// Generate builds a full six-field snapshot.
func Generate(p Params) (*Snapshot, error) {
	p = p.withDefaults()
	if err := p.Validate(); err != nil {
		return nil, err
	}
	n := p.N

	// 1. Linear density contrast δ in Fourier space. White noise is drawn
	// in real space and filtered by sqrt(P(k)), which keeps the field real
	// and the seed→field mapping trivially deterministic.
	rng := stats.NewRNG(p.Seed)
	delta := make([]complex128, n*n*n)
	for i := range delta {
		delta[i] = complex(rng.NormFloat64(), 0)
	}
	plan, err := fft.NewPlan3D(n, n, n, p.Workers)
	if err != nil {
		return nil, err
	}
	if err := plan.Forward(delta); err != nil {
		return nil, err
	}
	applySpectrumFilter(delta, n, p.SpectralIndex)

	// Velocity fields come from the same modes: v⃗(k) ∝ i k⃗/k² δ(k).
	velSpec := [3][]complex128{}
	for d := 0; d < 3; d++ {
		velSpec[d] = make([]complex128, len(delta))
	}
	fillVelocitySpectra(velSpec, delta, n)

	// Split δ into large-scale (k ≤ kc) and small-scale components; the
	// small scales are later modulated by the local large-scale density.
	deltaL := make([]complex128, len(delta))
	copy(deltaL, delta)
	lowPassFilter(deltaL, n)
	if err := plan.Inverse(delta); err != nil {
		return nil, err
	}
	if err := plan.Inverse(deltaL); err != nil {
		return nil, err
	}
	// δ_S = δ − δ_L, each normalized to unit variance separately.
	deltaS := make([]float64, len(delta))
	for i := range delta {
		deltaS[i] = real(delta[i]) - real(deltaL[i])
	}
	largeScale := realParts(deltaL)
	normalizeSlice(largeScale, 1)
	normalizeSlice(deltaS, 1)

	growth := growthFactor(p.Redshift, p.RefRedshift)
	sigmaL := p.SigmaDelta * growth
	sigmaS := p.SmallScale * growth

	fields := make(map[string]*grid.Field3D, 6)

	// 2. Lognormal densities with density-coupled roughness:
	//    ln ρ = σ_L·δ_L + σ_S·exp(a·δ_L)·δ_S  (then normalized to mean 1).
	// Voids (δ_L < 0) end up almost perfectly smooth, dense regions carry
	// strong small-scale structure — the rate-heterogeneity the adaptive
	// scheme exploits.
	fields[FieldBaryonDensity] = modulatedLognormal(largeScale, deltaS, n,
		p.BaryonBias*sigmaL, sigmaS, p.AmpTilt, 1e5)
	fields[FieldDarkMatterDensity] = modulatedLognormal(largeScale, deltaS, n,
		p.DarkMatterBias*sigmaL, sigmaS, p.AmpTilt, 1e4)

	// 3. Temperature: T = T0 (ρ/ρ̄)^{γ−1} e^ε, clamped to Table 2's range.
	// The scatter ε is density-coupled: shock-heated dense regions carry
	// strong thermal structure while voids follow the polytrope almost
	// exactly — so temperature partitions inherit the compressibility
	// heterogeneity of the density field, as in real Nyx data.
	tRNG := stats.NewRNG(p.Seed ^ 0x7431)
	temp := grid.NewCube(n)
	rb := fields[FieldBaryonDensity]
	for i := range temp.Data {
		rho := float64(rb.Data[i])
		scatter := p.TempScatter * clamp(math.Pow(rho, 0.5), 0.02, 4)
		t := p.T0 * math.Pow(rho, p.Gamma-1) * math.Exp(tRNG.NormFloat64()*scatter)
		temp.Data[i] = float32(clamp(t, 1e2, 1e7))
	}
	fields[FieldTemperature] = temp

	// 4. Velocities: inverse-transform the velocity spectra and scale to
	// the target RMS (growth-scaled, matching linear theory's v ∝ D·f·H).
	velNames := [3]string{FieldVelocityX, FieldVelocityY, FieldVelocityZ}
	for d := 0; d < 3; d++ {
		if err := plan.Inverse(velSpec[d]); err != nil {
			return nil, err
		}
		normalizeReal(velSpec[d], p.VelocityScale*growth)
		vf := grid.NewCube(n)
		for i, v := range velSpec[d] {
			vf.Data[i] = float32(clamp(real(v), -1e8, 1e8))
		}
		fields[velNames[d]] = vf
	}

	return &Snapshot{Params: p, Fields: fields}, nil
}

// applySpectrumFilter multiplies modes by sqrt(P(k)) with
// P(k) ∝ k^ns / (1 + (k/k0)²)², a falling spectrum with a large-scale
// turnover (BBKS-like shape). The DC mode is zeroed: δ has zero mean.
func applySpectrumFilter(spec []complex128, n int, ns float64) {
	// The turnover sits at low k so most variance lives in wavelengths of
	// a quarter box and above; that is what makes partition means differ
	// by an order of magnitude (the heterogeneity of the paper's Fig. 1).
	k0 := float64(n) / 32
	if k0 < 2 {
		k0 = 2
	}
	idx := 0
	for z := 0; z < n; z++ {
		kz := float64(wrapFreq(z, n))
		for y := 0; y < n; y++ {
			ky := float64(wrapFreq(y, n))
			for x := 0; x < n; x++ {
				kx := float64(wrapFreq(x, n))
				k2 := kx*kx + ky*ky + kz*kz
				if k2 == 0 {
					spec[idx] = 0
				} else {
					k := math.Sqrt(k2)
					pk := math.Pow(k, ns) / math.Pow(1+(k/k0)*(k/k0), 2)
					spec[idx] *= complex(math.Sqrt(pk), 0)
				}
				idx++
			}
		}
	}
}

// fillVelocitySpectra computes v_d(k) = i·k_d/k² · δ(k) for d ∈ {x,y,z}.
func fillVelocitySpectra(vel [3][]complex128, delta []complex128, n int) {
	idx := 0
	for z := 0; z < n; z++ {
		kz := float64(wrapFreq(z, n))
		for y := 0; y < n; y++ {
			ky := float64(wrapFreq(y, n))
			for x := 0; x < n; x++ {
				kx := float64(wrapFreq(x, n))
				k2 := kx*kx + ky*ky + kz*kz
				if k2 == 0 {
					vel[0][idx], vel[1][idx], vel[2][idx] = 0, 0, 0
				} else {
					base := delta[idx] * complex(0, 1/k2)
					vel[0][idx] = base * complex(kx, 0)
					vel[1][idx] = base * complex(ky, 0)
					vel[2][idx] = base * complex(kz, 0)
				}
				idx++
			}
		}
	}
}

func wrapFreq(i, n int) int {
	if i <= n/2 {
		return i
	}
	return i - n
}

// normalizeReal rescales the real parts of data to the target standard
// deviation (no-op for an all-zero field).
func normalizeReal(data []complex128, sigmaTarget float64) {
	var m stats.Moments
	for _, v := range data {
		m.Add(real(v))
	}
	sd := m.StdDev()
	if sd == 0 {
		return
	}
	scale := sigmaTarget / sd
	for i, v := range data {
		data[i] = complex(real(v)*scale, 0)
	}
}

// realParts copies the real components out of a complex field.
func realParts(data []complex128) []float64 {
	out := make([]float64, len(data))
	for i, v := range data {
		out[i] = real(v)
	}
	return out
}

// normalizeSlice rescales a slice to zero mean and the target standard
// deviation (no-op for a constant slice).
func normalizeSlice(xs []float64, sigmaTarget float64) {
	var m stats.Moments
	for _, x := range xs {
		m.Add(x)
	}
	sd := m.StdDev()
	if sd == 0 {
		return
	}
	mean := m.Mean()
	scale := sigmaTarget / sd
	for i := range xs {
		xs[i] = (xs[i] - mean) * scale
	}
}

// lowPassFilter keeps only modes with |k| ≤ kc (cosine-tapered), where kc
// is the spectrum turnover used by applySpectrumFilter.
func lowPassFilter(spec []complex128, n int) {
	kc := float64(n) / 32
	if kc < 2 {
		kc = 2
	}
	idx := 0
	for z := 0; z < n; z++ {
		kz := float64(wrapFreq(z, n))
		for y := 0; y < n; y++ {
			ky := float64(wrapFreq(y, n))
			for x := 0; x < n; x++ {
				kx := float64(wrapFreq(x, n))
				k := math.Sqrt(kx*kx + ky*ky + kz*kz)
				switch {
				case k <= kc:
					// keep
				case k <= 2*kc:
					w := 0.5 * (1 + math.Cos(math.Pi*(k-kc)/kc))
					spec[idx] *= complex(w, 0)
				default:
					spec[idx] = 0
				}
				idx++
			}
		}
	}
}

// modulatedLognormal builds ρ = exp(σL·δ_L + σS·e^{a·δ_L}·δ_S), normalized
// to mean 1 and clipped to (0, max).
func modulatedLognormal(deltaL, deltaS []float64, n int, sigmaL, sigmaS, tilt, max float64) *grid.Field3D {
	f := grid.NewCube(n)
	logRho := make([]float64, len(deltaL))
	var meanAcc float64
	for i := range deltaL {
		// The modulation argument is clamped so the roughness contrast
		// between voids and halos is large (~e⁴ ≈ 60×) but the extreme
		// tail cannot run away and dominate the global mean.
		amp := math.Exp(tilt * clamp(deltaL[i], -3, 1.2))
		lr := sigmaL*deltaL[i] + sigmaS*amp*deltaS[i]
		if lr > 30 {
			lr = 30
		}
		if lr < -30 {
			lr = -30
		}
		logRho[i] = lr
		meanAcc += math.Exp(lr)
	}
	meanAcc /= float64(len(deltaL))
	for i, lr := range logRho {
		rho := math.Exp(lr) / meanAcc
		if rho > max {
			rho = max
		}
		if rho < 1e-20 {
			rho = 1e-20
		}
		f.Data[i] = float32(rho)
	}
	return f
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// GenerateSequence builds snapshots at several redshifts from shared
// initial conditions (same seed), emulating successive dumps of one run.
func GenerateSequence(base Params, redshifts []float64) ([]*Snapshot, error) {
	out := make([]*Snapshot, 0, len(redshifts))
	for _, z := range redshifts {
		p := base
		p.Redshift = z
		s, err := Generate(p)
		if err != nil {
			return nil, fmt.Errorf("nyx: redshift %g: %w", z, err)
		}
		out = append(out, s)
	}
	return out, nil
}

// DefaultHaloConfig returns the halo-finder thresholds used throughout the
// experiments: t_boundary = 88.16 (the paper's Table 1 threshold, in units
// of mean density) and a peak cut of 3× that.
func DefaultHaloConfig() (boundary, peak float64) { return 88.16, 264.48 }
