package codec

import (
	"errors"
	"math"

	"repro/internal/grid"
	"repro/internal/zfp"
)

// zfpCodec adapts internal/zfp (transform-based, fixed-rate) to the Codec
// interface. Two behaviours:
//
//   - Options.Rate > 0: plain fixed-rate compression, ZFP's native mode.
//   - Options.Rate == 0, ErrorBound > 0: the adapter searches for the
//     cheapest rate whose measured max error meets the bound (geometric
//     ladder then bisection refinement). This is what lets a fixed-rate
//     codec consume the configurator's per-partition error-bound plans —
//     the bound is best effort: if even the maximum rate misses it, the
//     max-rate frame is returned, which is precisely the failure mode the
//     paper cites for rejecting fixed-rate codecs (Sec. 2.2).
//
// The search is single-pass: the field is compressed once at the maximum
// rate with per-block bit accounting (zfp.CompressIndexed), every probe is
// a truncated decode of that one stream (a smaller budget reads a strict
// prefix of each block), and the chosen frame is spliced out of it
// (TruncateToRate) — byte-identical to recompressing at the chosen rate,
// so the probe sequence, the chosen rates, and the archived bits all match
// the old recompress-per-probe search exactly.
type zfpCodec struct{}

func (zfpCodec) ID() ID { return ZFP }

// Rate search bounds: ZFP accepts rates in [0.5, 32] bits/value.
const (
	zfpMinRate     = 0.5
	zfpMaxRate     = 32
	zfpRefineSteps = 3
)

func (zfpCodec) Compress(data []float32, nx, ny, nz int, opt Options, s *Scratch) (Frame, error) {
	if err := validateDims(data, nx, ny, nz); err != nil {
		return nil, err
	}
	f := &grid.Field3D{Nx: nx, Ny: ny, Nz: nz, Data: data}
	if opt.Rate > 0 {
		c, err := zfp.CompressWith(f, zfp.Options{Rate: opt.Rate}, zfpScratch(s))
		if err != nil {
			return nil, err
		}
		return zfpFrame{c: c}, nil
	}
	if opt.ErrorBound <= 0 {
		return nil, errors.New("codec: zfp needs Options.Rate or Options.ErrorBound")
	}
	if opt.Mode != ABS {
		return nil, errors.New("codec: zfp rate search supports ABS error bounds only")
	}
	return compressBounded(f, opt.ErrorBound, s)
}

// compressBounded finds the cheapest fixed rate meeting an absolute error
// bound: double the rate until the measured max error fits, then bisect
// between the last failing and first passing rate to shave bits. One
// compression total; each probe decodes the indexed max-rate stream
// truncated to the probe's budget.
func compressBounded(f *grid.Field3D, eb float64, s *Scratch) (Frame, error) {
	zs := zfpScratch(s)
	ix, err := zfp.CompressIndexed(f, zfp.Options{Rate: zfpMaxRate}, zs)
	if err != nil {
		return nil, err
	}
	probe := zfpProbe(s, f)
	try := func(rate float64) (float64, error) {
		if err := ix.DecompressAtRateInto(probe, rate, zs); err != nil {
			return 0, err
		}
		return maxAbsErr(f.Data, probe.Data), nil
	}
	lo := 0.0 // highest rate known to miss the bound
	hi := 0.0 // cheapest rate known to meet it
	for rate := zfpMinRate; rate <= zfpMaxRate; rate *= 2 {
		maxErr, err := try(rate)
		if err != nil {
			return nil, err
		}
		if maxErr <= eb {
			hi = rate
			break
		}
		lo = rate
	}
	if hi == 0 {
		// Even the maximum rate misses the bound: the max-rate stream is
		// the best the codec can do; return it with ErrorBound 0 to signal
		// "no guarantee".
		return zfpFrame{c: ix.C}, nil
	}
	for i := 0; i < zfpRefineSteps && hi-lo > 0.25 && lo >= zfpMinRate; i++ {
		mid := (lo + hi) / 2
		maxErr, err := try(mid)
		if err != nil {
			return nil, err
		}
		if maxErr <= eb {
			hi = mid
		} else {
			lo = mid
		}
	}
	c, err := ix.TruncateToRate(hi, zs)
	if err != nil {
		return nil, err
	}
	return zfpFrame{c: c, eb: eb}, nil
}

func maxAbsErr(a, b []float32) float64 {
	var m float64
	for i := range a {
		d := math.Abs(float64(a[i]) - float64(b[i]))
		if d > m {
			m = d
		}
	}
	return m
}

// zfpScratch lazily materializes the ZFP working buffers inside the shared
// per-worker scratch, mirroring szScratch.
func zfpScratch(s *Scratch) *zfp.Scratch {
	if s == nil {
		return nil
	}
	if s.zfp == nil {
		s.zfp = &zfp.Scratch{}
	}
	return s.zfp
}

// zfpProbe returns the rate search's reusable reconstruction buffer, sized
// like f (partitions of one field all share a shape, so steady-state
// probing allocates nothing).
func zfpProbe(s *Scratch, f *grid.Field3D) *grid.Field3D {
	if s == nil {
		return grid.NewField3D(f.Nx, f.Ny, f.Nz)
	}
	if s.zfpProbe == nil || !s.zfpProbe.SameShape(f) {
		s.zfpProbe = grid.NewField3D(f.Nx, f.Ny, f.Nz)
	}
	return s.zfpProbe
}

func (zfpCodec) Parse(body []byte) (Frame, error) {
	c, err := zfp.Parse(body)
	if err != nil {
		return nil, err
	}
	return zfpFrame{c: c}, nil
}

// zfpFrame wraps a fixed-rate stream. eb is the bound the rate search
// verified, kept in memory only: ZFP's native serialization has no bound
// field, so parsed frames report ErrorBound 0 (no guarantee recorded).
type zfpFrame struct {
	c  *zfp.Compressed
	eb float64
}

func (f zfpFrame) CodecID() ID           { return ZFP }
func (f zfpFrame) Dims() (int, int, int) { return f.c.Nx, f.c.Ny, f.c.Nz }
func (f zfpFrame) N() int                { return f.c.N() }
func (f zfpFrame) CompressedSize() int   { return f.c.CompressedSize() }
func (f zfpFrame) BitRate() float64      { return f.c.BitRate() }
func (f zfpFrame) Ratio() float64        { return f.c.Ratio() }
func (f zfpFrame) ErrorBound() float64   { return f.eb }
func (f zfpFrame) Bytes() []byte         { return f.c.Bytes() }

func (f zfpFrame) Decompress() ([]float32, error) {
	g, err := zfp.Decompress(f.c)
	if err != nil {
		return nil, err
	}
	return g.Data, nil
}
