package archiveserve

import (
	"errors"
	"testing"
)

func TestParseRange(t *testing.T) {
	cases := []struct {
		name, spec string
		size       int64
		off, n     int64
		ok         bool
		unsat      bool
	}{
		{"empty", "", 100, 0, 0, false, false},
		{"wrong unit", "items=0-5", 100, 0, 0, false, false},
		{"bare bytes", "bytes=", 100, 0, 0, false, false},
		{"closed", "bytes=0-9", 100, 0, 10, true, false},
		{"closed interior", "bytes=10-19", 100, 10, 10, true, false},
		{"single byte", "bytes=5-5", 100, 5, 1, true, false},
		{"last byte", "bytes=99-99", 100, 99, 1, true, false},
		{"end clamped", "bytes=90-150", 100, 90, 10, true, false},
		{"open", "bytes=40-", 100, 40, 60, true, false},
		{"open from zero", "bytes=0-", 100, 0, 100, true, false},
		{"suffix", "bytes=-25", 100, 75, 25, true, false},
		{"suffix oversized", "bytes=-500", 100, 0, 100, true, false},
		{"start at size", "bytes=100-", 100, 0, 0, false, true},
		{"start past size", "bytes=200-300", 100, 0, 0, false, true},
		{"zero suffix", "bytes=-0", 100, 0, 0, false, true},
		{"inverted", "bytes=9-3", 100, 0, 0, false, false},
		{"no dash", "bytes=42", 100, 0, 0, false, false},
		{"multi range", "bytes=0-5,10-20", 100, 0, 0, false, false},
		{"interior space", "bytes=0 -5", 100, 0, 0, false, false},
		{"signed start", "bytes=+3-9", 100, 0, 0, false, false},
		{"double dash suffix", "bytes=--5", 100, 0, 0, false, false},
		{"garbage start", "bytes=x-9", 100, 0, 0, false, false},
		{"garbage end", "bytes=0-y", 100, 0, 0, false, false},
		{"overflow", "bytes=99999999999999999999-", 100, 0, 0, false, false},
		{"whole as closed", "bytes=0-99", 100, 0, 100, true, false},
	}
	for _, tc := range cases {
		off, n, ok, err := parseRange(tc.spec, tc.size)
		if tc.unsat {
			if !errors.Is(err, errRangeUnsatisfiable) {
				t.Errorf("%s: err %v, want unsatisfiable", tc.name, err)
			}
			continue
		}
		if err != nil {
			t.Errorf("%s: unexpected err %v", tc.name, err)
			continue
		}
		if ok != tc.ok || off != tc.off || n != tc.n {
			t.Errorf("%s: got (off=%d n=%d ok=%v), want (off=%d n=%d ok=%v)",
				tc.name, off, n, ok, tc.off, tc.n, tc.ok)
		}
	}
}

func TestEtagMatch(t *testing.T) {
	const tag = `"abc123-0-ff-r4"`
	cases := []struct {
		name, header string
		want         bool
	}{
		{"empty", "", false},
		{"exact", tag, true},
		{"star", "*", true},
		{"weak form", "W/" + tag, true},
		{"list hit", `"x", ` + tag + `, "y"`, true},
		{"list miss", `"x", "y"`, false},
		{"different tag", `"abc123-0-ff-r8"`, false},
		{"unquoted", `abc123-0-ff-r4`, false},
		{"spaces", ` ` + tag + ` `, true},
	}
	for _, tc := range cases {
		if got := etagMatch(tc.header, tag); got != tc.want {
			t.Errorf("%s: etagMatch(%q) = %v, want %v", tc.name, tc.header, got, tc.want)
		}
	}
}

// FuzzParseRange asserts the parser's safety invariants on arbitrary
// headers: no panics, and any accepted range must select a valid
// non-empty window inside the representation.
func FuzzParseRange(f *testing.F) {
	seeds := []string{
		"", "bytes=", "bytes=0-", "bytes=-1", "bytes=-0", "bytes=0-0",
		"bytes=0-99", "bytes=5-2", "bytes=100-", "bytes=0-5,10-20",
		"bytes=--5", "bytes=+1-2", "items=0-5", "bytes=99999999999999999999-",
		"bytes= 0-5", "bytes=0 -5", "bytes=\x00-\xff",
	}
	for _, s := range seeds {
		f.Add(s, int64(100))
	}
	f.Fuzz(func(t *testing.T, spec string, size int64) {
		if size < 0 {
			size = -size
		}
		off, n, ok, err := parseRange(spec, size)
		if err != nil {
			if !errors.Is(err, errRangeUnsatisfiable) {
				t.Fatalf("unexpected error kind: %v", err)
			}
			if ok || off != 0 || n != 0 {
				t.Fatalf("unsatisfiable but (off=%d n=%d ok=%v)", off, n, ok)
			}
			return
		}
		if !ok {
			if off != 0 || n != 0 {
				t.Fatalf("ignored range leaked bounds (off=%d n=%d)", off, n)
			}
			return
		}
		if off < 0 || n <= 0 || off >= size || off+n > size {
			t.Fatalf("accepted range outside representation: off=%d n=%d size=%d spec=%q", off, n, size, spec)
		}
	})
}
