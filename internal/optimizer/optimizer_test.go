package optimizer

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/model"
	"repro/internal/stats"
)

func testModel() *model.RateModel {
	// C_m = 1.5 + 0.4·ln(feature), c = −0.5 — representative of the
	// calibrations measured on the synthetic Nyx data.
	return &model.RateModel{Exponent: -0.5, Alpha: 1.5, Beta: 0.4, MinC: 0.05}
}

func spreadFeatures(n int, seed uint64) []float64 {
	r := stats.NewRNG(seed)
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Pow(10, r.Uniform(-1, 1.5))
	}
	return out
}

func TestAllocatePreservesMeanAndBox(t *testing.T) {
	rm := testModel()
	features := spreadFeatures(512, 1)
	cfg := Config{AvgEB: 0.2}
	res, err := Allocate(rm, features, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.EBs) != 512 {
		t.Fatalf("allocated %d bounds", len(res.EBs))
	}
	mean := stats.MeanOf(res.EBs)
	if math.Abs(mean-0.2) > 1e-6 {
		t.Errorf("mean eb = %v, want 0.2", mean)
	}
	for i, eb := range res.EBs {
		if eb < 0.2/4-1e-12 || eb > 0.2*4+1e-12 {
			t.Fatalf("eb[%d] = %v outside clamp box", i, eb)
		}
	}
}

func TestAllocateImprovesOnUniform(t *testing.T) {
	rm := testModel()
	features := spreadFeatures(256, 2)
	res, err := Allocate(rm, features, Config{AvgEB: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if res.PredictedBitRate >= res.UniformBitRate {
		t.Errorf("optimized bit rate %v not below uniform %v",
			res.PredictedBitRate, res.UniformBitRate)
	}
	if res.PredictedImprovement() <= 0 {
		t.Errorf("predicted improvement %v", res.PredictedImprovement())
	}
}

func TestAllocateDirection(t *testing.T) {
	// Under EqualDerivative with c<0, less compressible partitions
	// (higher C_m, i.e. higher feature) must receive larger error bounds.
	rm := testModel()
	features := []float64{0.1, 1, 10, 100}
	res, err := Allocate(rm, features, Config{AvgEB: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.EBs); i++ {
		if res.EBs[i] < res.EBs[i-1] {
			t.Errorf("allocation not monotone in compressibility: %v", res.EBs)
		}
	}
}

func TestHomogeneousFeaturesGiveUniform(t *testing.T) {
	rm := testModel()
	features := []float64{5, 5, 5, 5}
	res, err := Allocate(rm, features, Config{AvgEB: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	for _, eb := range res.EBs {
		if math.Abs(eb-0.3) > 1e-9 {
			t.Errorf("homogeneous data should get uniform bounds, got %v", res.EBs)
		}
	}
	if imp := res.PredictedImprovement(); math.Abs(imp) > 1e-9 {
		t.Errorf("improvement on homogeneous data = %v", imp)
	}
}

func TestPaperEq16Strategy(t *testing.T) {
	rm := testModel()
	features := []float64{0.1, 1, 10}
	res, err := Allocate(rm, features, Config{AvgEB: 1, Strategy: PaperEq16})
	if err != nil {
		t.Fatal(err)
	}
	// Mean and box still hold regardless of strategy.
	if math.Abs(stats.MeanOf(res.EBs)-1) > 1e-6 {
		t.Errorf("mean %v", stats.MeanOf(res.EBs))
	}
	// With c < 0, Eq. 16 as printed allocates in the opposite direction.
	if res.EBs[0] < res.EBs[2] {
		t.Errorf("PaperEq16 direction unexpected: %v", res.EBs)
	}
}

func TestConfigValidation(t *testing.T) {
	rm := testModel()
	if _, err := Allocate(rm, []float64{1}, Config{AvgEB: 0}); err == nil {
		t.Error("zero AvgEB accepted")
	}
	if _, err := Allocate(rm, []float64{1}, Config{AvgEB: 1, ClampFactor: 0.5}); err == nil {
		t.Error("clamp < 1 accepted")
	}
	if _, err := Allocate(rm, nil, Config{AvgEB: 1}); err == nil {
		t.Error("no partitions accepted")
	}
	if _, err := Allocate(&model.RateModel{Exponent: 1}, []float64{1}, Config{AvgEB: 1}); err == nil {
		t.Error("invalid model accepted")
	}
}

func TestClampFactorRespected(t *testing.T) {
	rm := &model.RateModel{Exponent: -0.9, Alpha: 1, Beta: 2, MinC: 0.01}
	features := spreadFeatures(64, 3)
	for _, k := range []float64{2, 4, 8} {
		res, err := Allocate(rm, features, Config{AvgEB: 1, ClampFactor: k})
		if err != nil {
			t.Fatal(err)
		}
		for _, eb := range res.EBs {
			if eb < 1/k-1e-9 || eb > k+1e-9 {
				t.Fatalf("k=%v: eb %v outside box", k, eb)
			}
		}
		if math.Abs(stats.MeanOf(res.EBs)-1) > 1e-6 {
			t.Errorf("k=%v: mean %v", k, stats.MeanOf(res.EBs))
		}
	}
}

func TestAllocateWithHaloUnderBudget(t *testing.T) {
	rm := testModel()
	features := spreadFeatures(16, 4)
	hc := HaloConstraint{
		TBoundary:     88.16,
		RefEB:         1,
		BoundaryCells: make([]int, 16), // no boundary cells → no distortion
		MassBudget:    100,
	}
	res, err := AllocateWithHalo(rm, features, Config{AvgEB: 0.5}, hc)
	if err != nil {
		t.Fatal(err)
	}
	if res.HaloScaled || res.HaloScale != 1 {
		t.Errorf("scaled without violation: %+v", res)
	}
}

func TestAllocateWithHaloOverBudget(t *testing.T) {
	rm := testModel()
	features := spreadFeatures(16, 5)
	cells := make([]int, 16)
	for i := range cells {
		cells[i] = 1000
	}
	hc := HaloConstraint{
		TBoundary:     88.16,
		RefEB:         1,
		BoundaryCells: cells,
		MassBudget:    10, // tiny budget forces scaling
	}
	res, err := AllocateWithHalo(rm, features, Config{AvgEB: 0.5}, hc)
	if err != nil {
		t.Fatal(err)
	}
	if !res.HaloScaled || res.HaloScale >= 1 {
		t.Fatalf("expected halo scaling, got %+v", res)
	}
	// After scaling, the estimate must meet the budget exactly (linearity).
	est, err := model.MassFaultFromBoundaryCells(hc.TBoundary, hc.RefEB, cells, res.EBs)
	if err != nil {
		t.Fatal(err)
	}
	if est > hc.MassBudget*(1+1e-9) {
		t.Errorf("post-scale estimate %v > budget %v", est, hc.MassBudget)
	}
}

func TestHaloConstraintValidation(t *testing.T) {
	rm := testModel()
	features := []float64{1, 2}
	bad := []HaloConstraint{
		{TBoundary: 0, RefEB: 1, BoundaryCells: []int{1, 2}, MassBudget: 1},
		{TBoundary: 1, RefEB: 0, BoundaryCells: []int{1, 2}, MassBudget: 1},
		{TBoundary: 1, RefEB: 1, BoundaryCells: []int{1}, MassBudget: 1},
		{TBoundary: 1, RefEB: 1, BoundaryCells: []int{1, 2}, MassBudget: 0},
	}
	for i, hc := range bad {
		if _, err := AllocateWithHalo(rm, features, Config{AvgEB: 1}, hc); err == nil {
			t.Errorf("case %d accepted: %+v", i, hc)
		}
	}
}

// Property: for arbitrary feature spreads and budgets, the allocation
// preserves the mean budget, respects the box, and never loses to the
// uniform baseline under the model.
func TestQuickAllocationInvariants(t *testing.T) {
	rm := testModel()
	f := func(seed uint64, avgSeed uint8) bool {
		nParts := 8 + int(seed%56)
		features := spreadFeatures(nParts, seed)
		avg := math.Pow(10, float64(avgSeed%5)-2) // 1e-2 .. 1e2
		res, err := Allocate(rm, features, Config{AvgEB: avg})
		if err != nil {
			return false
		}
		if math.Abs(stats.MeanOf(res.EBs)-avg) > 1e-5*avg {
			return false
		}
		for _, eb := range res.EBs {
			if eb <= 0 || eb < avg/4-1e-9*avg || eb > avg*4+1e-9*avg {
				return false
			}
		}
		return res.PredictedBitRate <= res.UniformBitRate*(1+1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: the clamp band and mean budget hold for arbitrary clamp
// factors, rate exponents, and allocation strategies — not just the
// defaults. Every violation reports the offending draw.
func TestQuickAllocationRandomizedConfig(t *testing.T) {
	f := func(seed uint64, expSeed, clampSeed, avgSeed uint8) bool {
		r := stats.NewRNG(seed ^ 0xA5A5)
		rm := &model.RateModel{
			// c ∈ [−1.9, −0.1]: the plausible range of measured exponents.
			Exponent: -0.1 - 1.8*float64(expSeed)/255,
			Alpha:    r.Uniform(0.2, 3),
			Beta:     r.Uniform(0.05, 1),
			MinC:     0.01,
		}
		k := 1 + 7*float64(clampSeed)/255 // clamp factor ∈ [1, 8]
		avg := math.Pow(10, 4*float64(avgSeed)/255-2)
		nParts := 4 + int(seed%124)
		features := spreadFeatures(nParts, seed)
		for _, strat := range []Strategy{EqualDerivative, PaperEq16} {
			res, err := Allocate(rm, features, Config{AvgEB: avg, ClampFactor: k, Strategy: strat})
			if err != nil {
				t.Logf("seed %d strat %v: %v", seed, strat, err)
				return false
			}
			if math.Abs(stats.MeanOf(res.EBs)-avg) > 1e-5*avg {
				t.Logf("seed %d strat %v: mean %v != %v", seed, strat, stats.MeanOf(res.EBs), avg)
				return false
			}
			for _, eb := range res.EBs {
				if eb < avg/k*(1-1e-9) || eb > avg*k*(1+1e-9) {
					t.Logf("seed %d strat %v: eb %v outside [%v, %v]", seed, strat, eb, avg/k, avg*k)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// Property: with the halo constraint attached, the post-allocation mass
// fault estimate never exceeds the budget, the scale never exceeds 1, and
// the clamp band's lower edge scales down with it (the halo downscale is
// allowed to push bounds below the band: quality may only improve).
func TestQuickHaloBudgetInvariants(t *testing.T) {
	rm := testModel()
	f := func(seed uint64, budgetSeed uint8) bool {
		r := stats.NewRNG(seed ^ 0x5A5A)
		nParts := 4 + int(seed%60)
		features := spreadFeatures(nParts, seed)
		cells := make([]int, nParts)
		for i := range cells {
			cells[i] = r.Intn(2000)
		}
		hc := HaloConstraint{
			TBoundary:     88.16,
			RefEB:         1,
			BoundaryCells: cells,
			MassBudget:    math.Pow(10, 6*float64(budgetSeed)/255-1), // 0.1 .. 1e5
		}
		avg := 0.5
		res, err := AllocateWithHalo(rm, features, Config{AvgEB: avg}, hc)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		if res.HaloScale <= 0 || res.HaloScale > 1 {
			t.Logf("seed %d: halo scale %v out of (0, 1]", seed, res.HaloScale)
			return false
		}
		if res.HaloScaled != (res.HaloScale < 1) {
			t.Logf("seed %d: HaloScaled=%v but scale %v", seed, res.HaloScaled, res.HaloScale)
			return false
		}
		est, err := model.MassFaultFromBoundaryCells(hc.TBoundary, hc.RefEB, cells, res.EBs)
		if err != nil {
			return false
		}
		if est > hc.MassBudget*(1+1e-9) {
			t.Logf("seed %d: estimate %v > budget %v", seed, est, hc.MassBudget)
			return false
		}
		lo, hi := avg/4*res.HaloScale, avg*4*res.HaloScale
		for _, eb := range res.EBs {
			if eb < lo*(1-1e-9) || eb > hi*(1+1e-9) {
				t.Logf("seed %d: eb %v outside scaled band [%v, %v]", seed, eb, lo, hi)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
