// Package zfp implements a simplified ZFP-style fixed-rate transform codec
// (Lindstrom 2014), the compressor the paper compares SZ against before
// choosing SZ (Sec. 2.2: ZFP offers fixed-rate mode but lacks the absolute
// error-bound mode the method needs). It exists so the repository can
// substantiate that choice with a measured rate-distortion comparison
// (see the compressor ablation in internal/experiments).
//
// The pipeline follows ZFP's structure:
//
//  1. partition the field into 4×4×4 blocks (edge blocks are padded by
//     replicating the last layer);
//  2. block-floating-point: align all 64 values to the block's largest
//     exponent and convert to fixed point;
//  3. the reversible integer lifting transform along x, y, z;
//  4. reorder coefficients by total sequency;
//  5. negabinary mapping and embedded group-tested bit-plane coding,
//     truncated at the per-block bit budget (rate × 64 bits).
//
// Unlike internal/sz the codec is fixed-rate, not error-bounded: the
// compressed size is exact and the pointwise error is whatever the budget
// allows — precisely the trade-off the paper rejects for its use case.
//
// The hot path is word-based and block-parallel while emitting exactly the
// bitstream of the original per-bit serial coder (pinned by the
// differential suite in reference_test.go and the golden fixtures in
// internal/core): bit planes are emitted and consumed as 64-bit words, the
// 4³ blocks are sharded over the shared worker pool (internal/parallel)
// into per-chunk bit buffers spliced back in block order, and a compression
// can record per-block bit offsets (CompressIndexed) from which any
// lower-rate stream, size, or reconstruction is derived without
// recompressing — the basis of the codec adapter's single-pass error-bound
// rate search.
package zfp

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"math/bits"
	"sync"

	"repro/internal/apierr"
	"repro/internal/grid"
	"repro/internal/huffman"
	"repro/internal/parallel"
)

const (
	blockDim        = 4
	blockSize       = blockDim * blockDim * blockDim // 64
	maxPlanes       = 40                             // fixed-point precision in bit planes
	guardBits       = 4                              // transform headroom
	headerSize      = 28
	magic           = "ZFPG"
	blockHeaderBits = 13 // 1-bit zero flag + 12-bit biased exponent

	// minParallelBlocks gates block-level fan-out: below it (the engine's
	// 16³ partitions are 64 blocks) the serial word-based path wins, above
	// it blocks are sharded into chunks over the shared pool — unless the
	// pool has no helpers (GOMAXPROCS 1), where serial skips the splice
	// and boundary-scan overhead. The chunk layout is a function of the
	// block count alone, so the spliced stream is byte-identical whatever
	// the worker count.
	minParallelBlocks = 256
	// chunkBlocks is the static shard size for the parallel paths.
	chunkBlocks = 128

	// maxBlocksPerAxis caps header-claimed dimensions in Parse (2²⁰ blocks
	// per axis ≈ 4M cells per axis) so hostile headers cannot overflow the
	// block count or drive absurd preallocation.
	maxBlocksPerAxis = 1 << 20
)

// Options configures fixed-rate compression.
type Options struct {
	// Rate is the bit budget per value (0.5 ≤ Rate ≤ 32).
	Rate float64
}

// Validate checks the options.
func (o Options) Validate() error {
	if !(o.Rate >= 0.5 && o.Rate <= 32) { // NaN-safe: NaN fails both sides
		return fmt.Errorf("zfp: rate %v outside [0.5, 32]", o.Rate)
	}
	return nil
}

// budgetOf is the per-block bit budget at a rate.
func budgetOf(rate float64) int {
	budget := int(rate * blockSize)
	if budget < blockSize/8 {
		budget = blockSize / 8
	}
	return budget
}

// Compressed is one fixed-rate compressed field.
type Compressed struct {
	Nx, Ny, Nz int
	Rate       float64
	payload    []byte
}

// N returns the number of cells.
func (c *Compressed) N() int { return c.Nx * c.Ny * c.Nz }

// CompressedSize returns the total size in bytes including the header.
func (c *Compressed) CompressedSize() int { return headerSize + len(c.payload) }

// BitRate returns achieved bits per value (≈ Rate plus header amortization
// and block padding).
func (c *Compressed) BitRate() float64 {
	return float64(c.CompressedSize()) * 8 / float64(c.N())
}

// Ratio returns the compression ratio relative to fp32.
func (c *Compressed) Ratio() float64 {
	return float64(4*c.N()) / float64(c.CompressedSize())
}

// layout is the 4³ block grid of a field.
type layout struct {
	cbx, cby, cbz int
}

func layoutOf(nx, ny, nz int) layout {
	return layout{
		cbx: (nx + blockDim - 1) / blockDim,
		cby: (ny + blockDim - 1) / blockDim,
		cbz: (nz + blockDim - 1) / blockDim,
	}
}

func (l layout) blocks() int { return l.cbx * l.cby * l.cbz }

// origin maps a linear block index (x-fastest, matching the serial coder's
// loop nest) to the block's cell origin.
func (l layout) origin(b int) (x0, y0, z0 int) {
	return (b % l.cbx) * blockDim,
		(b / l.cbx % l.cby) * blockDim,
		(b / (l.cbx * l.cby)) * blockDim
}

// sequency is the coefficient visiting order: by total frequency i+j+k,
// ties broken lexicographically — a precomputed permutation of [0,64).
var sequency = buildSequency()

func buildSequency() [blockSize]int {
	type entry struct{ idx, key int }
	var entries []entry
	for z := 0; z < blockDim; z++ {
		for y := 0; y < blockDim; y++ {
			for x := 0; x < blockDim; x++ {
				idx := (z*blockDim+y)*blockDim + x
				// key: total sequency first, then coordinates for a
				// stable, deterministic order.
				key := (x+y+z)<<12 | z<<8 | y<<4 | x
				entries = append(entries, entry{idx, key})
			}
		}
	}
	for i := 1; i < len(entries); i++ { // insertion sort, tiny n
		for j := i; j > 0 && entries[j].key < entries[j-1].key; j-- {
			entries[j], entries[j-1] = entries[j-1], entries[j]
		}
	}
	var out [blockSize]int
	for rank, e := range entries {
		out[rank] = e.idx
	}
	return out
}

// liftForward is ZFP's reversible 4-point integer lifting transform.
func liftForward(p []int64, stride int) {
	x := p[0*stride]
	y := p[1*stride]
	z := p[2*stride]
	w := p[3*stride]
	x += w
	x >>= 1
	w -= x
	z += y
	z >>= 1
	y -= z
	x += z
	x >>= 1
	z -= x
	w += y
	w >>= 1
	y -= w
	w += y >> 1
	y -= w >> 1
	p[0*stride] = x
	p[1*stride] = y
	p[2*stride] = z
	p[3*stride] = w
}

// liftInverse is ZFP's inverse lift. Like the original, it reverses
// liftForward only up to the low bits the forward shifts discard — the
// transform is nearly orthogonal, not bit-exact, which is fine for a codec
// that truncates bit planes anyway (the guard bits absorb the loss).
func liftInverse(p []int64, stride int) {
	x := p[0*stride]
	y := p[1*stride]
	z := p[2*stride]
	w := p[3*stride]
	y += w >> 1
	w -= y >> 1
	y += w
	w <<= 1
	w -= y
	z += x
	x <<= 1
	x -= z
	y += z
	z <<= 1
	z -= y
	w += x
	x <<= 1
	x -= w
	p[0*stride] = x
	p[1*stride] = y
	p[2*stride] = z
	p[3*stride] = w
}

// transformBlock applies the lifting along each axis (forward).
func transformBlock(b *[blockSize]int64) {
	// x lines
	for z := 0; z < blockDim; z++ {
		for y := 0; y < blockDim; y++ {
			liftForward(b[(z*blockDim+y)*blockDim:], 1)
		}
	}
	// y lines
	for z := 0; z < blockDim; z++ {
		for x := 0; x < blockDim; x++ {
			liftForward(b[z*blockDim*blockDim+x:], blockDim)
		}
	}
	// z lines
	for y := 0; y < blockDim; y++ {
		for x := 0; x < blockDim; x++ {
			liftForward(b[y*blockDim+x:], blockDim*blockDim)
		}
	}
}

func inverseBlock(b *[blockSize]int64) {
	for y := 0; y < blockDim; y++ {
		for x := 0; x < blockDim; x++ {
			liftInverse(b[y*blockDim+x:], blockDim*blockDim)
		}
	}
	for z := 0; z < blockDim; z++ {
		for x := 0; x < blockDim; x++ {
			liftInverse(b[z*blockDim*blockDim+x:], blockDim)
		}
	}
	for z := 0; z < blockDim; z++ {
		for y := 0; y < blockDim; y++ {
			liftInverse(b[(z*blockDim+y)*blockDim:], 1)
		}
	}
}

// negabinary maps signed to unsigned such that magnitude ordering is
// roughly preserved across bit planes.
func negabinary(x int64) uint64 {
	const mask = 0xaaaaaaaaaaaaaaaa
	return (uint64(x) + mask) ^ mask
}

func negabinaryInv(u uint64) int64 {
	const mask = 0xaaaaaaaaaaaaaaaa
	return int64((u ^ mask) - mask)
}

// blockState is the per-worker working set of one block: gathered values,
// fixed-point lattice, and the coefficient bit matrix in sequency order.
// planes doubles as both orientations of that matrix: coefficient-major
// (word i = coefficient i's bits) and plane-major (word 63−p = plane p with
// coefficient 0 at the MSB); transpose64 flips between them in ~6×64 word
// ops, so neither coder ever gathers a bit plane one coefficient at a time.
type blockState struct {
	vals   [blockSize]float64
	ints   [blockSize]int64
	planes [blockSize]uint64
}

// transpose64 transposes a 64×64 bit matrix in place (rows are words, the
// MSB is column 0) — the standard masked block-swap network.
func transpose64(a *[blockSize]uint64) {
	j := 32
	m := uint64(0x00000000FFFFFFFF)
	for j != 0 {
		for k := 0; k < blockSize; k = (k + j + 1) &^ j {
			t := (a[k] ^ (a[k+j] >> uint(j))) & m
			a[k] ^= t
			a[k+j] ^= t << uint(j)
		}
		j >>= 1
		m ^= m << uint(j)
	}
}

// planeOf maps bit plane p to its row in the plane-major orientation.
func planeOf(p int) int { return blockSize - 1 - p }

// Scratch holds the reusable state of one compression/decompression
// context: the stream writer and reader, the caller-side block state, and
// the chunk bookkeeping of the parallel paths. Pooling one Scratch per
// engine worker (the codec layer does this) makes the steady-state zfp
// path allocation-flat the way sz.Scratch does for SZ. A Scratch must not
// be used concurrently; the zero value is ready to use.
type Scratch struct {
	st     blockState
	w      *huffman.BitWriter
	r      *huffman.BitReader
	starts []int
	chunkW []*huffman.BitWriter
	bitLen []int
}

func (s *Scratch) writer(capBytes int) *huffman.BitWriter {
	if s.w == nil {
		s.w = huffman.NewBitWriter(capBytes)
	}
	s.w.Reset()
	return s.w
}

func (s *Scratch) reader(buf []byte) *huffman.BitReader {
	if s.r == nil {
		s.r = huffman.NewBitReader(buf)
		return s.r
	}
	s.r.Reset(buf)
	return s.r
}

func (s *Scratch) startsBuf(n int) []int {
	if cap(s.starts) < n {
		s.starts = make([]int, n)
	}
	return s.starts[:n]
}

func (s *Scratch) chunkBufs(n int) ([]*huffman.BitWriter, []int) {
	if cap(s.chunkW) < n {
		s.chunkW = make([]*huffman.BitWriter, n)
		s.bitLen = make([]int, n)
	}
	return s.chunkW[:n], s.bitLen[:n]
}

// scratchPool backs the scratchless entry points so casual callers still
// hit warm buffers.
var scratchPool = sync.Pool{New: func() any { return &Scratch{} }}

// workerPool holds the per-helper block state and stream cursors of the
// chunk-parallel paths (helpers cannot share the caller's Scratch).
type chunkWorker struct {
	st blockState
	r  *huffman.BitReader
}

var workerPool = sync.Pool{New: func() any {
	return &chunkWorker{r: huffman.NewBitReader(nil)}
}}

// writerPool holds the per-chunk bit buffers of the parallel encoder; they
// are checked out by encode workers and released after the splice.
var writerPool = sync.Pool{New: func() any { return huffman.NewBitWriter(0) }}

// Compress compresses a field at the fixed rate.
func Compress(f *grid.Field3D, opt Options) (*Compressed, error) {
	return CompressWith(f, opt, nil)
}

// CompressWith is Compress with a caller-owned Scratch, for allocation-flat
// steady-state compression of many equally sized bricks.
func CompressWith(f *grid.Field3D, opt Options, s *Scratch) (*Compressed, error) {
	c, _, err := compress(f, opt, s, false)
	return c, err
}

func compress(f *grid.Field3D, opt Options, s *Scratch, wantIndex bool) (*Compressed, []int, error) {
	if err := opt.Validate(); err != nil {
		return nil, nil, err
	}
	if f == nil || f.Len() == 0 {
		return nil, nil, errors.New("zfp: empty field")
	}
	if s == nil {
		ps := scratchPool.Get().(*Scratch)
		defer scratchPool.Put(ps)
		s = ps
	}
	budget := budgetOf(opt.Rate)
	l := layoutOf(f.Nx, f.Ny, f.Nz)
	n := l.blocks()
	var starts []int
	if wantIndex {
		starts = make([]int, n+1) // retained by the Indexed
	}
	w := s.writer(f.Len() / 2)
	if n < minParallelBlocks || parallel.Limit() == 0 {
		st := &s.st
		for b := 0; b < n; b++ {
			if starts != nil {
				starts[b] = w.BitLen()
			}
			x0, y0, z0 := l.origin(b)
			st.encodeBlock(w, f, x0, y0, z0, budget)
		}
		if starts != nil {
			starts[n] = w.BitLen()
		}
	} else {
		compressChunked(w, f, l, budget, starts, s)
	}
	payload := append([]byte(nil), w.Bytes()...)
	return &Compressed{Nx: f.Nx, Ny: f.Ny, Nz: f.Nz, Rate: opt.Rate, payload: payload}, starts, nil
}

// compressChunked shards the block range into fixed-size chunks over the
// shared worker pool. Each chunk encodes into its own bit buffer; the
// buffers are spliced back in block order, so the stream is byte-identical
// to the serial one regardless of how many workers participated.
func compressChunked(w *huffman.BitWriter, f *grid.Field3D, l layout, budget int, starts []int, s *Scratch) {
	n := l.blocks()
	nChunks := (n + chunkBlocks - 1) / chunkBlocks
	chunkW, bitLen := s.chunkBufs(nChunks)
	parallel.Workers(nChunks, 0, func(next func() (int, bool)) {
		cw := workerPool.Get().(*chunkWorker)
		defer workerPool.Put(cw)
		for c, ok := next(); ok; c, ok = next() {
			bw := writerPool.Get().(*huffman.BitWriter)
			bw.Reset()
			lo := c * chunkBlocks
			hi := lo + chunkBlocks
			if hi > n {
				hi = n
			}
			for b := lo; b < hi; b++ {
				if starts != nil {
					starts[b] = bw.BitLen() // chunk-relative; rebased below
				}
				x0, y0, z0 := l.origin(b)
				cw.st.encodeBlock(bw, f, x0, y0, z0, budget)
			}
			bitLen[c] = bw.BitLen()
			chunkW[c] = bw
		}
	})
	base := 0
	for c := 0; c < nChunks; c++ {
		bw := chunkW[c]
		w.AppendBitRange(bw.Bytes(), 0, bitLen[c])
		if starts != nil {
			lo := c * chunkBlocks
			hi := lo + chunkBlocks
			if hi > n {
				hi = n
			}
			for b := lo; b < hi; b++ {
				starts[b] += base
			}
		}
		base += bitLen[c]
		chunkW[c] = nil
		writerPool.Put(bw)
	}
	if starts != nil {
		starts[n] = base
	}
}

// gatherBlock copies a 4³ block, clamping coordinates at the field edge
// (replication padding).
func gatherBlock(f *grid.Field3D, x0, y0, z0 int, out *[blockSize]float64) {
	for dz := 0; dz < blockDim; dz++ {
		z := min(z0+dz, f.Nz-1)
		for dy := 0; dy < blockDim; dy++ {
			y := min(y0+dy, f.Ny-1)
			for dx := 0; dx < blockDim; dx++ {
				x := min(x0+dx, f.Nx-1)
				out[(dz*blockDim+dy)*blockDim+dx] = float64(f.At(x, y, z))
			}
		}
	}
}

// encodeBlock writes one block: 1 bit all-zero flag, 12-bit biased
// exponent, then the embedded coefficient planes up to the bit budget.
func (st *blockState) encodeBlock(w *huffman.BitWriter, f *grid.Field3D, x0, y0, z0, budget int) {
	gatherBlock(f, x0, y0, z0, &st.vals)
	// Block exponent.
	var maxAbs float64
	for _, v := range st.vals {
		a := math.Abs(v)
		if a > maxAbs {
			maxAbs = a
		}
	}
	if maxAbs == 0 {
		w.WriteBit(0) // all-zero block
		return
	}
	w.WriteBit(1)
	emax := math.Ilogb(maxAbs)
	w.WriteBits(uint64(emax+2048), 12)

	// Fixed point: scale so values fit maxPlanes bits with guard room.
	scale := math.Ldexp(1, maxPlanes-guardBits-1-emax)
	for i, v := range st.vals {
		st.ints[i] = int64(v * scale)
	}
	transformBlock(&st.ints)

	// Negabinary in sequency order, then flip the bit matrix plane-major.
	for rank, idx := range sequency {
		st.planes[rank] = negabinary(st.ints[idx])
	}
	transpose64(&st.planes)
	encodePlanes(w, &st.planes, budget)
}

// encodePlanes is the embedded group-tested bit-plane coder, emitting whole
// runs and verbatim prefixes as words. It produces exactly the bit sequence
// of the per-bit reference coder (refEncodePlanes in reference_test.go):
// per plane, sigPrefix verbatim bits for the already-significant prefix,
// then alternating group tests and zero-run+1 spans over the tail, the
// whole stream cut off at the bit budget. The budget acts as a pure
// truncation point — a smaller budget yields a strict prefix of a larger
// budget's block stream, the property the single-pass rate search
// (Indexed) is built on.
func encodePlanes(w *huffman.BitWriter, planes *[blockSize]uint64, budget int) {
	spent := 0
	sigPrefix := 0
	for plane := maxPlanes - 1; plane >= 0 && spent < budget; plane-- {
		word := planes[planeOf(plane)] // coefficient 0 at the MSB
		// Verbatim bits for the significant prefix, coefficient 0 first.
		if sigPrefix > 0 {
			n := sigPrefix
			if rem := budget - spent; n > rem {
				n = rem
			}
			w.WriteBits64(word>>(64-uint(n)), uint(n))
			spent += n
			if spent >= budget {
				return
			}
		}
		// Group-test the tail: a 1 test bit opens a zero-run ended by the
		// next significant coefficient, a 0 test bit closes the plane.
		i := sigPrefix
		for i < blockSize && spent < budget {
			rest := word << uint(i)
			if rest == 0 {
				w.WriteBit(0)
				spent++
				break
			}
			w.WriteBit(1) // group test: a significant coefficient is ahead
			spent++
			if spent >= budget {
				return
			}
			lz := bits.LeadingZeros64(rest)
			n := lz + 1 // the zero-run plus its terminating 1
			pattern := uint64(1)
			if rem := budget - spent; n > rem {
				pattern = 0 // truncated: only the run's leading zeros fit
				n = rem
			}
			w.WriteBits64(pattern, uint(n))
			spent += n
			i += lz + 1
		}
		if i > sigPrefix {
			sigPrefix = i
		}
	}
}

// Decompress reconstructs the field.
func Decompress(c *Compressed) (*grid.Field3D, error) {
	return DecompressWith(c, nil)
}

// DecompressWith is Decompress with a caller-owned Scratch.
func DecompressWith(c *Compressed, s *Scratch) (*grid.Field3D, error) {
	if c.Nx <= 0 || c.Ny <= 0 || c.Nz <= 0 {
		return nil, errors.New("zfp: invalid dimensions")
	}
	if err := (Options{Rate: c.Rate}).Validate(); err != nil {
		return nil, err
	}
	if s == nil {
		ps := scratchPool.Get().(*Scratch)
		defer scratchPool.Put(ps)
		s = ps
	}
	out := grid.NewField3D(c.Nx, c.Ny, c.Nz)
	if err := c.decodeInto(out, budgetOf(c.Rate), s); err != nil {
		return nil, err
	}
	return out, nil
}

func (c *Compressed) decodeInto(out *grid.Field3D, budget int, s *Scratch) error {
	l := layoutOf(c.Nx, c.Ny, c.Nz)
	n := l.blocks()
	if n < minParallelBlocks || parallel.Limit() == 0 {
		r := s.reader(c.payload)
		st := &s.st
		for b := 0; b < n; b++ {
			x0, y0, z0 := l.origin(b)
			if err := st.decodeBlock(r, budget); err != nil {
				return fmt.Errorf("zfp: block (%d,%d,%d): %w", x0, y0, z0, err)
			}
			scatterBlock(out, x0, y0, z0, &st.vals)
		}
		return nil
	}
	// Block lengths are data-dependent, so parallel decode needs the block
	// boundaries first: a word-based scan walks the group-test structure
	// without reconstructing coefficients, then chunks decode concurrently
	// from their bit offsets.
	starts := s.startsBuf(n + 1)
	if err := scanStarts(c.payload, l, budget, starts, s); err != nil {
		return err
	}
	return decodeChunked(out, c.payload, l, budget, budget, starts)
}

// decodeChunked decodes blocks [0, layout.blocks()) concurrently given
// their bit offsets. streamBudget is the budget the stream was encoded at
// (bounding each block's stored bits); budget ≤ streamBudget is the budget
// to decode at — smaller values reconstruct the lower-rate truncation, the
// probe operation of the single-pass rate search.
func decodeChunked(out *grid.Field3D, payload []byte, l layout, streamBudget, budget int, starts []int) error {
	n := l.blocks()
	nChunks := (n + chunkBlocks - 1) / chunkBlocks
	var firstErr error
	var mu sync.Mutex
	parallel.Workers(nChunks, 0, func(next func() (int, bool)) {
		cw := workerPool.Get().(*chunkWorker)
		defer workerPool.Put(cw)
		cw.r.Reset(payload)
		for c, ok := next(); ok; c, ok = next() {
			lo := c * chunkBlocks
			hi := lo + chunkBlocks
			if hi > n {
				hi = n
			}
			if err := decodeRange(out, l, streamBudget, budget, starts, lo, hi, &cw.st, cw.r); err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
				return
			}
		}
	})
	return firstErr
}

// decodeRange decodes blocks [lo, hi), seeking to each block's recorded bit
// offset (decoding at a smaller budget than the stream's consumes fewer
// bits than the block stores, so sequential reads would misalign).
func decodeRange(out *grid.Field3D, l layout, streamBudget, budget int, starts []int, lo, hi int, st *blockState, r *huffman.BitReader) error {
	if budget > streamBudget {
		budget = streamBudget
	}
	for b := lo; b < hi; b++ {
		if err := r.SeekBit(starts[b]); err != nil {
			return err
		}
		x0, y0, z0 := l.origin(b)
		if err := st.decodeBlock(r, budget); err != nil {
			return fmt.Errorf("zfp: block (%d,%d,%d): %w", x0, y0, z0, err)
		}
		scatterBlock(out, x0, y0, z0, &st.vals)
	}
	return nil
}

func (st *blockState) decodeBlock(r *huffman.BitReader, budget int) error {
	zeroFlag, err := r.ReadBit()
	if err != nil {
		return err
	}
	if zeroFlag == 0 {
		for i := range st.vals {
			st.vals[i] = 0
		}
		return nil
	}
	e, err := r.ReadBits(12)
	if err != nil {
		return err
	}
	emax := int(e) - 2048
	for i := range st.planes {
		st.planes[i] = 0
	}
	visited, err := decodePlanes(r, &st.planes, budget)
	if err != nil {
		return err
	}
	// Back to coefficient-major: a full matrix transpose pays off only when
	// many planes were decoded; shallow decodes (low rates, the rate
	// search's cheap probes) scatter their few set bits directly.
	const scatterPlanes = 12
	if visited <= scatterPlanes {
		var coeffs [blockSize]uint64
		for p := maxPlanes - 1; p >= maxPlanes-visited; p-- {
			for w := st.planes[planeOf(p)]; w != 0; w &= w - 1 {
				coeffs[63-bits.TrailingZeros64(w)] |= 1 << uint(p)
			}
		}
		for rank, idx := range sequency {
			st.ints[idx] = negabinaryInv(coeffs[rank])
		}
	} else {
		transpose64(&st.planes) // plane-major back to coefficient-major
		for rank, idx := range sequency {
			st.ints[idx] = negabinaryInv(st.planes[rank])
		}
	}
	inverseBlock(&st.ints)
	scale := math.Ldexp(1, -(maxPlanes - guardBits - 1 - emax))
	for i, v := range st.ints {
		st.vals[i] = float64(v) * scale
	}
	return nil
}

// decodePlanes mirrors encodePlanes word for word: verbatim prefixes are
// read as one word, zero-runs are consumed with a single unary read, and
// the plane-major words are accumulated for one transpose back in
// decodeBlock. Control flow (and therefore bit consumption) is identical
// to the per-bit reference decoder.
func decodePlanes(r *huffman.BitReader, planes *[blockSize]uint64, budget int) (visited int, err error) {
	spent := 0
	sigPrefix := 0
	for plane := maxPlanes - 1; plane >= 0 && spent < budget; plane-- {
		visited++
		var word uint64 // coefficient 0 at the MSB
		if sigPrefix > 0 {
			n := sigPrefix
			if rem := budget - spent; n > rem {
				n = rem
			}
			v, err := r.ReadBits64(uint(n))
			if err != nil {
				return visited, err
			}
			spent += n
			word = v << (64 - uint(n))
			if spent >= budget {
				planes[planeOf(plane)] = word
				return visited, nil
			}
		}
		i := sigPrefix
		for i < blockSize {
			if spent >= budget {
				planes[planeOf(plane)] = word
				return visited, nil
			}
			any, err := r.ReadBit()
			if err != nil {
				return visited, err
			}
			spent++
			if any == 0 {
				break
			}
			run := blockSize - i
			if rem := budget - spent; rem < run {
				run = rem
			}
			zeros, saw, err := r.ReadUnary(uint(run))
			if err != nil {
				return visited, err
			}
			spent += int(zeros)
			i += int(zeros)
			if saw {
				spent++
				word |= 1 << uint(63-i)
				i++
				continue
			}
			planes[planeOf(plane)] = word
			if i >= blockSize {
				break
			}
			return visited, nil // budget exhausted mid-run
		}
		planes[planeOf(plane)] = word
		if i > sigPrefix {
			sigPrefix = i
		}
	}
	return visited, nil
}

// scanStarts records every block's bit offset by walking the group-test
// structure without reconstructing coefficients — the boundary pass that
// makes parallel decode possible on a stream with data-dependent block
// lengths. It consumes exactly the bits the decoder would.
func scanStarts(payload []byte, l layout, budget int, starts []int, s *Scratch) error {
	r := s.reader(payload)
	n := l.blocks()
	for b := 0; b < n; b++ {
		starts[b] = r.BitPos()
		if err := scanBlock(r, budget); err != nil {
			x0, y0, z0 := l.origin(b)
			return fmt.Errorf("zfp: block (%d,%d,%d): %w", x0, y0, z0, err)
		}
	}
	starts[n] = r.BitPos()
	return nil
}

func scanBlock(r *huffman.BitReader, budget int) error {
	zeroFlag, err := r.ReadBit()
	if err != nil {
		return err
	}
	if zeroFlag == 0 {
		return nil
	}
	if err := r.Skip(12); err != nil {
		return err
	}
	spent := 0
	sigPrefix := 0
	for plane := maxPlanes - 1; plane >= 0 && spent < budget; plane-- {
		if sigPrefix > 0 {
			n := sigPrefix
			if rem := budget - spent; n > rem {
				n = rem
			}
			if err := r.Skip(n); err != nil {
				return err
			}
			spent += n
			if spent >= budget {
				return nil
			}
		}
		i := sigPrefix
		for i < blockSize {
			if spent >= budget {
				return nil
			}
			any, err := r.ReadBit()
			if err != nil {
				return err
			}
			spent++
			if any == 0 {
				break
			}
			run := blockSize - i
			if rem := budget - spent; rem < run {
				run = rem
			}
			zeros, saw, err := r.ReadUnary(uint(run))
			if err != nil {
				return err
			}
			spent += int(zeros)
			i += int(zeros)
			if saw {
				spent++
				i++
				continue
			}
			if i >= blockSize {
				break
			}
			return nil
		}
		if i > sigPrefix {
			sigPrefix = i
		}
	}
	return nil
}

func scatterBlock(f *grid.Field3D, x0, y0, z0 int, vals *[blockSize]float64) {
	for dz := 0; dz < blockDim && z0+dz < f.Nz; dz++ {
		for dy := 0; dy < blockDim && y0+dy < f.Ny; dy++ {
			for dx := 0; dx < blockDim && x0+dx < f.Nx; dx++ {
				f.Set(x0+dx, y0+dy, z0+dz, float32(vals[(dz*blockDim+dy)*blockDim+dx]))
			}
		}
	}
}

// Indexed is a compression carrying per-block bit accounting, produced by
// CompressIndexed at the highest rate the caller will ever probe. Because
// the plane coder's budget is a pure truncation point — a block's bits at
// budget B are exactly the first min(B, stored) bits of the same block at
// any larger budget — one max-rate compression contains every lower-rate
// stream as per-block prefixes, and the accounting turns the old
// recompress-per-probe rate search into single-pass operations:
//
//   - PredictSize gives the exact compressed size at any lower rate from
//     the length table alone;
//   - DecompressAtRateInto reconstructs the field at any lower rate (what
//     an error-bound search measures per probe);
//   - TruncateToRate splices the lower-rate stream itself, byte-identical
//     to a direct Compress at that rate.
type Indexed struct {
	C *Compressed
	// starts[b] is the absolute bit offset of block b in C's payload;
	// the final entry is the total bit length before byte padding.
	starts []int
}

// CompressIndexed compresses like CompressWith while recording the
// per-block bit accounting (one extra slice; the stream is unchanged).
func CompressIndexed(f *grid.Field3D, opt Options, s *Scratch) (*Indexed, error) {
	c, starts, err := compress(f, opt, s, true)
	if err != nil {
		return nil, err
	}
	return &Indexed{C: c, starts: starts}, nil
}

// Starts exposes the per-block bit-offset table: Starts()[b] is the
// absolute bit offset of block b in the payload, and the final entry is
// the total bit length before byte padding. The slice is the index's own
// backing store — callers must treat it as read-only. It exists so the
// accounting can be persisted (an archive server's sidecar index) and
// rehydrated later with NewIndexed instead of rescanning the stream.
func (ix *Indexed) Starts() []int { return ix.starts }

// NewIndexed rebinds a persisted bit-offset table to a parsed max-rate
// stream — the sidecar-index load path. The table is validated against the
// stream's geometry (one entry per block plus the terminator, offsets
// monotone, first at bit 0, last within the payload) so a stale or
// corrupt sidecar surfaces as apierr.ErrCorruptArchive instead of an
// out-of-bounds splice.
func NewIndexed(c *Compressed, starts []int) (*Indexed, error) {
	l := layoutOf(c.Nx, c.Ny, c.Nz)
	n := l.blocks()
	if len(starts) != n+1 {
		return nil, fmt.Errorf("zfp: %w: index has %d entries, stream has %d blocks", apierr.ErrCorruptArchive, len(starts), n)
	}
	if starts[0] != 0 {
		return nil, fmt.Errorf("zfp: %w: index does not start at bit 0", apierr.ErrCorruptArchive)
	}
	for b := 0; b < n; b++ {
		if starts[b+1] < starts[b] {
			return nil, fmt.Errorf("zfp: %w: index offsets not monotone at block %d", apierr.ErrCorruptArchive, b)
		}
	}
	if starts[n] > len(c.payload)*8 {
		return nil, fmt.Errorf("zfp: %w: index claims %d bits, payload has %d", apierr.ErrCorruptArchive, starts[n], len(c.payload)*8)
	}
	return &Indexed{C: c, starts: starts}, nil
}

// Reindex rebuilds the per-block bit accounting of a parsed stream by
// walking its group-test structure — the recovery path when a
// compression-time index (CompressIndexed) or persisted sidecar is not
// available. The scan consumes exactly the bits the decoder would, so the
// result is identical to what CompressIndexed would have recorded.
func Reindex(c *Compressed) (*Indexed, error) {
	s := scratchPool.Get().(*Scratch)
	defer scratchPool.Put(s)
	l := layoutOf(c.Nx, c.Ny, c.Nz)
	n := l.blocks()
	starts := make([]int, n+1)
	if err := scanStarts(c.payload, l, budgetOf(c.Rate), starts, s); err != nil {
		return nil, err
	}
	return &Indexed{C: c, starts: starts}, nil
}

// blockBits is the bits block b occupies when truncated to budget.
func (ix *Indexed) blockBits(b, budget int) int {
	stored := ix.starts[b+1] - ix.starts[b]
	if stored <= 1 {
		return stored // all-zero block: just the flag bit
	}
	pb := stored - blockHeaderBits
	if pb > budget {
		pb = budget
	}
	return blockHeaderBits + pb
}

// checkRate guards the derived-rate entry points. A NaN, negative, or
// out-of-range rate, or one above the rate the index was built at, is a
// caller configuration error — typed apierr.ErrBadConfig, never a silent
// mis-slice (a budget above the stored one would splice bits that were
// never written).
func (ix *Indexed) checkRate(rate float64) error {
	if err := (Options{Rate: rate}).Validate(); err != nil {
		return fmt.Errorf("zfp: %w: %w", apierr.ErrBadConfig, err)
	}
	if rate > ix.C.Rate {
		return fmt.Errorf("zfp: %w: index was built at rate %v, cannot derive rate %v", apierr.ErrBadConfig, ix.C.Rate, rate)
	}
	return nil
}

// PredictSize returns the exact compressed size in bytes (header included)
// of this field at the given rate — the probe-size prediction of the
// single-pass rate search, computed from the accounting table alone.
func (ix *Indexed) PredictSize(rate float64) (int, error) {
	if err := ix.checkRate(rate); err != nil {
		return 0, err
	}
	budget := budgetOf(rate)
	total := 0
	for b := 0; b < len(ix.starts)-1; b++ {
		total += ix.blockBits(b, budget)
	}
	return headerSize + (total+7)/8, nil
}

// DecompressAtRateInto reconstructs the field as it would decompress at the
// given (lower) rate, writing into out, which must have the compressed
// field's dimensions. No recompression happens: each block is decoded from
// its recorded offset with the smaller budget.
func (ix *Indexed) DecompressAtRateInto(out *grid.Field3D, rate float64, s *Scratch) error {
	if err := ix.checkRate(rate); err != nil {
		return err
	}
	c := ix.C
	if out.Nx != c.Nx || out.Ny != c.Ny || out.Nz != c.Nz {
		return fmt.Errorf("zfp: output field %s does not match %dx%dx%d", out, c.Nx, c.Ny, c.Nz)
	}
	if s == nil {
		ps := scratchPool.Get().(*Scratch)
		defer scratchPool.Put(ps)
		s = ps
	}
	l := layoutOf(c.Nx, c.Ny, c.Nz)
	n := l.blocks()
	streamBudget := budgetOf(c.Rate)
	budget := budgetOf(rate)
	if n < minParallelBlocks || parallel.Limit() == 0 {
		return decodeRange(out, l, streamBudget, budget, ix.starts, 0, n, &s.st, s.reader(c.payload))
	}
	return decodeChunked(out, c.payload, l, streamBudget, budget, ix.starts)
}

// DecompressAtRate is DecompressAtRateInto with a freshly allocated field.
func (ix *Indexed) DecompressAtRate(rate float64) (*grid.Field3D, error) {
	out := grid.NewField3D(ix.C.Nx, ix.C.Ny, ix.C.Nz)
	if err := ix.DecompressAtRateInto(out, rate, nil); err != nil {
		return nil, err
	}
	return out, nil
}

// TruncateToRate assembles the compressed stream this field would have at
// the given (lower) rate by splicing each block's bit prefix out of the
// max-rate payload. The result is byte-identical to Compress at that rate
// (asserted by the differential suite).
func (ix *Indexed) TruncateToRate(rate float64, s *Scratch) (*Compressed, error) {
	if err := ix.checkRate(rate); err != nil {
		return nil, err
	}
	if s == nil {
		ps := scratchPool.Get().(*Scratch)
		defer scratchPool.Put(ps)
		s = ps
	}
	budget := budgetOf(rate)
	c := ix.C
	w := s.writer(len(c.payload))
	for b := 0; b < len(ix.starts)-1; b++ {
		w.AppendBitRange(c.payload, ix.starts[b], ix.blockBits(b, budget))
	}
	payload := append([]byte(nil), w.Bytes()...)
	return &Compressed{Nx: c.Nx, Ny: c.Ny, Nz: c.Nz, Rate: rate, payload: payload}, nil
}

// Bytes serializes the compressed field.
func (c *Compressed) Bytes() []byte {
	out := make([]byte, headerSize, headerSize+len(c.payload))
	copy(out[0:4], magic)
	binary.LittleEndian.PutUint32(out[4:8], 1)
	binary.LittleEndian.PutUint32(out[8:12], uint32(c.Nx))
	binary.LittleEndian.PutUint32(out[12:16], uint32(c.Ny))
	binary.LittleEndian.PutUint32(out[16:20], uint32(c.Nz))
	binary.LittleEndian.PutUint64(out[20:28], math.Float64bits(c.Rate))
	return append(out, c.payload...)
}

// Parse deserializes a compressed field. Headers are hostile until proven
// otherwise: dimensions are bounded, the rate must be a valid fixed rate
// (rejecting NaN), and the implied block count is capped by the payload
// size (every block costs at least its zero flag bit), so a tiny input
// cannot claim a huge field and drive the decoder's preallocation.
func Parse(data []byte) (*Compressed, error) {
	if len(data) < headerSize {
		return nil, errors.New("zfp: stream shorter than header")
	}
	if string(data[0:4]) != magic {
		return nil, fmt.Errorf("zfp: bad magic %q", data[0:4])
	}
	if v := binary.LittleEndian.Uint32(data[4:8]); v != 1 {
		return nil, fmt.Errorf("zfp: unsupported version %d", v)
	}
	c := &Compressed{
		Nx:      int(binary.LittleEndian.Uint32(data[8:12])),
		Ny:      int(binary.LittleEndian.Uint32(data[12:16])),
		Nz:      int(binary.LittleEndian.Uint32(data[16:20])),
		Rate:    math.Float64frombits(binary.LittleEndian.Uint64(data[20:28])),
		payload: data[headerSize:],
	}
	if c.Nx <= 0 || c.Ny <= 0 || c.Nz <= 0 {
		return nil, errors.New("zfp: invalid dimensions")
	}
	if err := (Options{Rate: c.Rate}).Validate(); err != nil {
		return nil, err
	}
	l := layoutOf(c.Nx, c.Ny, c.Nz)
	if l.cbx > maxBlocksPerAxis || l.cby > maxBlocksPerAxis || l.cbz > maxBlocksPerAxis {
		return nil, fmt.Errorf("zfp: dimensions %dx%dx%d exceed the supported range", c.Nx, c.Ny, c.Nz)
	}
	if blocks := uint64(l.cbx) * uint64(l.cby) * uint64(l.cbz); blocks > uint64(len(c.payload))*8 {
		return nil, fmt.Errorf("zfp: %d-byte payload too short for %d blocks", len(c.payload), blocks)
	}
	return c, nil
}
