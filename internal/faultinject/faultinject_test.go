package faultinject

import (
	"bytes"
	"errors"
	"net"
	"testing"
	"time"
)

func TestTornWriterTearsAtExactOffset(t *testing.T) {
	var dst bytes.Buffer
	tw := NewTornWriter(&dst, 10)
	if n, err := tw.Write(make([]byte, 7)); n != 7 || err != nil {
		t.Fatalf("write below tear: n=%d err=%v", n, err)
	}
	n, err := tw.Write(make([]byte, 7))
	if n != 3 {
		t.Fatalf("tearing write passed %d bytes, want 3", n)
	}
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("tear error = %v, want ErrInjected", err)
	}
	if dst.Len() != 10 {
		t.Fatalf("destination holds %d bytes, want 10", dst.Len())
	}
	if _, err := tw.Write([]byte{1}); !errors.Is(err, ErrInjected) {
		t.Fatalf("post-tear write error = %v, want ErrInjected", err)
	}
	if !tw.Torn() || tw.Written() != 10 {
		t.Fatalf("Torn=%v Written=%d, want true/10", tw.Torn(), tw.Written())
	}
}

func TestPlanIsDeterministic(t *testing.T) {
	a, b := NewPlan(42), NewPlan(42)
	for i := 0; i < 100; i++ {
		if x, y := a.Intn(1000), b.Intn(1000); x != y {
			t.Fatalf("draw %d diverged: %d vs %d", i, x, y)
		}
	}
	var d1, d2 bytes.Buffer
	t1 := NewPlan(7).TornWriterWithin(&d1, 16, 256)
	t2 := NewPlan(7).TornWriterWithin(&d2, 16, 256)
	t1.Write(make([]byte, 512))
	t2.Write(make([]byte, 512))
	if t1.Written() != t2.Written() {
		t.Fatalf("same seed tore at %d vs %d bytes", t1.Written(), t2.Written())
	}
	if t1.Written() < 16 || t1.Written() >= 256 {
		t.Fatalf("tear offset %d outside [16,256)", t1.Written())
	}
}

func TestConnResetAfterBytes(t *testing.T) {
	client, server := net.Pipe()
	defer server.Close()
	fc := WrapConn(client, ConnFaults{ResetAfterBytes: 8})
	go func() {
		buf := make([]byte, 64)
		for {
			if _, err := server.Read(buf); err != nil {
				return
			}
		}
	}()
	if _, err := fc.Write(make([]byte, 8)); !errors.Is(err, ErrInjected) {
		t.Fatalf("write crossing reset budget: err=%v, want ErrInjected", err)
	}
	if _, err := fc.Write([]byte{1}); !errors.Is(err, ErrInjected) {
		t.Fatalf("write after reset: err=%v, want ErrInjected", err)
	}
	if _, err := fc.Read(make([]byte, 1)); !errors.Is(err, ErrInjected) {
		t.Fatalf("read after reset: err=%v, want ErrInjected", err)
	}
}

func TestConnDropAfterWrites(t *testing.T) {
	client, server := net.Pipe()
	defer server.Close()
	fc := WrapConn(client, ConnFaults{DropAfterWrites: 2})
	got := make(chan int, 1)
	go func() {
		buf := make([]byte, 64)
		total := 0
		for {
			n, err := server.Read(buf)
			total += n
			if err != nil {
				got <- total
				return
			}
		}
	}()
	// The first two messages are delivered...
	if _, err := fc.Write([]byte{1, 2}); err != nil {
		t.Fatalf("write 1: %v", err)
	}
	if _, err := fc.Write([]byte{3}); err != nil {
		t.Fatalf("write 2 (the last delivered): %v", err)
	}
	// ...then the link is dead.
	if _, err := fc.Write([]byte{4}); !errors.Is(err, ErrInjected) {
		t.Fatalf("write after drop: err=%v, want ErrInjected", err)
	}
	if _, err := fc.Read(make([]byte, 1)); !errors.Is(err, ErrInjected) {
		t.Fatalf("read after drop: err=%v, want ErrInjected", err)
	}
	if n := <-got; n != 3 {
		t.Fatalf("peer received %d bytes before the drop, want 3", n)
	}
}

func TestConnBlackholeWrites(t *testing.T) {
	client, server := net.Pipe()
	defer server.Close()
	defer client.Close()
	fc := WrapConn(client, ConnFaults{BlackholeWrites: true})
	// Writes report success without a byte arriving (a one-way partition):
	// net.Pipe is unbuffered, so if these writes really reached the peer
	// they would block forever with no reader.
	if n, err := fc.Write(make([]byte, 1024)); n != 1024 || err != nil {
		t.Fatalf("blackholed write: n=%d err=%v", n, err)
	}
	// The healthy direction still flows.
	go server.Write([]byte{9})
	buf := make([]byte, 1)
	if n, err := fc.Read(buf); n != 1 || err != nil || buf[0] != 9 {
		t.Fatalf("read through partition: n=%d err=%v buf=%v", n, err, buf)
	}
}

func TestConnLatencyThroughSleepSeam(t *testing.T) {
	clk := NewClock()
	client, server := net.Pipe()
	defer server.Close()
	fc := WrapConn(client, ConnFaults{
		ReadLatency:  250 * time.Millisecond,
		WriteLatency: 50 * time.Millisecond,
		Sleep:        clk.Sleep,
	})
	go func() {
		buf := make([]byte, 8)
		server.Read(buf)
		server.Write([]byte{1})
	}()
	start := time.Now()
	if _, err := fc.Write([]byte{1, 2}); err != nil {
		t.Fatalf("write: %v", err)
	}
	if _, err := fc.Read(make([]byte, 1)); err != nil {
		t.Fatalf("read: %v", err)
	}
	if real := time.Since(start); real > 5*time.Second {
		t.Fatalf("injected latency consumed %v of real time", real)
	}
	if s := clk.Sleeps(); len(s) != 2 || s[0] != 50*time.Millisecond || s[1] != 250*time.Millisecond {
		t.Fatalf("latency sleeps = %v, want [50ms 250ms]", s)
	}
}

func TestClockSleepAdvancesWithoutWaiting(t *testing.T) {
	c := NewClock()
	t0 := c.Now()
	start := time.Now()
	c.Sleep(time.Hour)
	if real := time.Since(start); real > time.Second {
		t.Fatalf("fake Sleep took %v of real time", real)
	}
	if got := c.Now().Sub(t0); got != time.Hour {
		t.Fatalf("clock advanced %v, want 1h", got)
	}
	c.Advance(time.Minute)
	if got := c.Now().Sub(t0); got != time.Hour+time.Minute {
		t.Fatalf("clock at +%v, want 1h1m", got)
	}
	if s := c.Sleeps(); len(s) != 1 || s[0] != time.Hour {
		t.Fatalf("recorded sleeps = %v", s)
	}
}

func TestPanicScheduleFiresOnScheduledCall(t *testing.T) {
	ps := PanicAt(3)
	mustNotPanic := func() {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("unscheduled call panicked: %v", r)
			}
		}()
		ps.Check()
	}
	mustNotPanic()
	mustNotPanic()
	func() {
		defer func() {
			r := recover()
			if r == nil {
				t.Fatal("scheduled call did not panic")
			}
			err, ok := r.(error)
			if !ok || !errors.Is(err, ErrInjected) {
				t.Fatalf("panic value %v does not wrap ErrInjected", r)
			}
		}()
		ps.Check()
	}()
	if ps.Calls() != 3 {
		t.Fatalf("Calls = %d, want 3", ps.Calls())
	}
}
