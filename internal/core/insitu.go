package core

import (
	"context"
	"fmt"
	"math"
	"time"

	"repro/internal/apierr"
	"repro/internal/codec"
	"repro/internal/grid"
	"repro/internal/mpi"
	"repro/internal/optimizer"
)

// In situ path (paper Secs. 3.6, 4.3). Each MPI rank owns a set of
// partitions; the full protocol per snapshot is:
//
//  1. every rank extracts its partitions' features (mean |value|, and for
//     density fields the boundary-cell count);
//  2. one Allreduce produces the global mean feature → the anchor C_a;
//  3. every rank computes its partitions' error bounds locally
//     (eb_m = ebAvg·(C_m/C_a)^γ, clamped to [ebAvg/4, 4·ebAvg] — the in
//     situ path uses the paper's static clamp without the global
//     mean-preserving rescale, which would need a second collective);
//  4. for density fields one more Allreduce sums the predicted mass fault
//     and a shared downscale enforces the halo budget (Eq. 11);
//  5. every rank compresses its partitions.
//
// The per-phase wall times are recorded so the Sec. 4.3 overhead experiment
// can report feature-extraction and optimization cost relative to
// compression cost.

// InSituHalo carries the halo budget for the in situ path.
type InSituHalo struct {
	TBoundary  float64
	RefEB      float64
	MassBudget float64
}

// InSituOptions configures one in situ compression.
type InSituOptions struct {
	// Ranks is the number of simulated MPI ranks (default: number of
	// partitions, capped at 64).
	Ranks int
	// AvgEB is the quality budget.
	AvgEB float64
	// Halo optionally enforces the halo-mass budget.
	Halo *InSituHalo
}

// InSituStats reports what happened inside the ranks.
type InSituStats struct {
	Ranks int
	// Critical-path (max over ranks) wall times per phase.
	FeatureSeconds  float64
	OptimizeSeconds float64
	CompressSeconds float64
	// Collectives executed on the communicator.
	Collectives int64
	// EBs is the final per-partition assignment.
	EBs []float64
	// HaloScale is the downscale applied by the halo budget (1 = none).
	HaloScale float64
}

// FeatureOverhead returns feature+optimization time as a fraction of
// compression time (the paper's ~1 % claim).
func (s *InSituStats) FeatureOverhead() float64 {
	if s.CompressSeconds == 0 {
		return 0
	}
	return (s.FeatureSeconds + s.OptimizeSeconds) / s.CompressSeconds
}

// CompressInSitu runs the full in situ protocol over the simulated MPI
// runtime and returns the adaptively compressed field. Cancellation is
// checked between partitions inside each rank's compression loop.
func (e *Engine) CompressInSitu(ctx context.Context, f *grid.Field3D, cal *Calibration, opt InSituOptions) (*CompressedField, *InSituStats, error) {
	if cal == nil || cal.Model == nil {
		return nil, nil, fmt.Errorf("core: %w: nil calibration", apierr.ErrBadConfig)
	}
	if opt.AvgEB <= 0 {
		return nil, nil, fmt.Errorf("core: %w: AvgEB must be positive", apierr.ErrBadConfig)
	}
	p, err := e.partitioner(f)
	if err != nil {
		return nil, nil, err
	}
	parts := p.Partitions()
	nParts := len(parts)
	ranks := opt.Ranks
	if ranks <= 0 {
		ranks = nParts
		if ranks > 64 {
			ranks = 64
		}
	}
	if ranks > nParts {
		ranks = nParts
	}

	rm := cal.Model
	gamma := optimizer.AllocationExponent(rm.Exponent, e.cfg.Strategy)
	lo := opt.AvgEB / e.cfg.ClampFactor
	hi := opt.AvgEB * e.cfg.ClampFactor

	ebs := make([]float64, nParts)
	compressed := make([]codec.Frame, nParts)
	featT := make([]float64, ranks)
	optT := make([]float64, ranks)
	compT := make([]float64, ranks)
	haloScale := 1.0
	var collectives int64

	runErr := mpi.Run(ranks, func(c *mpi.Comm) error {
		rank := c.Rank()
		// Partition ownership: round-robin by ID, as a static Nyx
		// decomposition would assign blocks to ranks.
		var mine []int
		for i := rank; i < nParts; i += ranks {
			mine = append(mine, i)
		}

		// Phase 1: feature extraction. The rank scans its own sub-volume
		// in place (no brick copy — the simulation already owns the data)
		// and accumulates mean |value| and the threshold-band count in a
		// single fused pass, which is exactly the paper's in situ cost.
		c.Barrier() // align phase starts so timers measure work, not skew
		t0 := time.Now()
		feats := make([]float64, len(mine))
		bcells := make([]float64, len(mine))
		scratch := e.getScratch()
		defer e.putScratch(scratch)
		for j, pi := range mine {
			part := parts[pi]
			var s float64
			n := 0
			var bandLo, bandHi float32
			if opt.Halo != nil {
				bandLo = float32(opt.Halo.TBoundary - opt.Halo.RefEB)
				bandHi = float32(opt.Halo.TBoundary + opt.Halo.RefEB)
			}
			for z := part.Z0; z < part.Z1; z++ {
				for y := part.Y0; y < part.Y1; y++ {
					base := f.Index(part.X0, y, z)
					row := f.Data[base : base+part.X1-part.X0]
					for _, v := range row {
						if v < 0 {
							s -= float64(v)
						} else {
							s += float64(v)
						}
						if opt.Halo != nil && v >= bandLo && v < bandHi {
							n++
						}
					}
				}
			}
			feats[j] = s / float64(part.Len())
			bcells[j] = float64(n)
		}
		featT[rank] = time.Since(t0).Seconds()

		// Phase 2: one Allreduce for the global mean feature, local
		// error-bound computation, optional halo Allreduce.
		c.Barrier()
		t1 := time.Now()
		var localSum float64
		for _, ft := range feats {
			localSum += ft
		}
		globalSum := c.Allreduce(localSum, mpi.OpSum)
		globalMean := globalSum / float64(nParts)
		ca := rm.Cm(globalMean)
		myEBs := make([]float64, len(mine))
		for j := range mine {
			eb := opt.AvgEB * math.Pow(rm.Cm(feats[j])/ca, gamma)
			if eb < lo {
				eb = lo
			}
			if eb > hi {
				eb = hi
			}
			myEBs[j] = eb
		}
		scale := 1.0
		if opt.Halo != nil {
			var localFault float64
			for j := range mine {
				nbc := bcells[j] * myEBs[j] / opt.Halo.RefEB
				localFault += nbc / 4
			}
			est := opt.Halo.TBoundary * c.Allreduce(localFault, mpi.OpSum)
			if est > opt.Halo.MassBudget && est > 0 {
				scale = opt.Halo.MassBudget / est
				for j := range myEBs {
					myEBs[j] *= scale
				}
			}
		}
		if rank == 0 {
			haloScale = scale
		}
		for j, pi := range mine {
			ebs[pi] = myEBs[j]
		}
		optT[rank] = time.Since(t1).Seconds()

		// Phase 3: compression of owned partitions.
		c.Barrier()
		t2 := time.Now()
		for j, pi := range mine {
			if err := ctx.Err(); err != nil {
				return fmt.Errorf("core: in situ compression: %w", err)
			}
			part := parts[pi]
			data := e.brick(scratch, f, part)
			nx, ny, nz := part.Dims()
			cc, err := e.cdc.Compress(data, nx, ny, nz, e.codecOptions(myEBs[j]), scratch)
			if err != nil {
				return fmt.Errorf("core: rank %d partition %d: %w", rank, pi, err)
			}
			compressed[pi] = cc
		}
		compT[rank] = time.Since(t2).Seconds()
		if rank == 0 {
			collectives, _ = c.Stats()
		}
		return nil
	})
	if runErr != nil {
		return nil, nil, runErr
	}

	cf := &CompressedField{
		Nx: f.Nx, Ny: f.Ny, Nz: f.Nz,
		PartitionDim: e.cfg.PartitionDim,
		Codec:        e.cfg.Codec,
		Parts:        compressed,
		partitioner:  p,
	}
	st := &InSituStats{
		Ranks:           ranks,
		FeatureSeconds:  maxOf(featT),
		OptimizeSeconds: maxOf(optT),
		CompressSeconds: maxOf(compT),
		Collectives:     collectives,
		EBs:             ebs,
		HaloScale:       haloScale,
	}
	return cf, st, nil
}

func maxOf(xs []float64) float64 {
	var m float64
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}
