// Halo-finder example: compress the baryon-density field under the
// combined power-spectrum + halo-mass budget (the paper's Sec. 3.6
// strategy for density fields), then verify the reconstructed halo catalog
// against the original — count, positions, and the mass-ratio RMSE the
// paper targets at 1 ± 0.01.
//
// Run with: go run ./examples/halofinder
package main

import (
	"context"
	"fmt"
	"log"

	"repro/adaptive"
)

func main() {
	log.SetFlags(0)
	ctx := context.Background()

	snap, err := adaptive.GenerateSnapshot(adaptive.SynthParams{N: 64, Seed: 5, Redshift: 42})
	if err != nil {
		log.Fatal(err)
	}
	density, err := snap.Field(adaptive.FieldBaryonDensity)
	if err != nil {
		log.Fatal(err)
	}

	hcfg := adaptive.DefaultHaloConfig()
	original, err := adaptive.FindHalos(density, hcfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("original catalog: %d halos, %d candidate cells, total mass %.4g\n",
		original.Count(), original.Candidates, original.TotalMass())
	for _, h := range original.LargestN(3) {
		fmt.Printf("  halo %d: %d cells, mass %.4g, peak %.4g at (%.1f, %.1f, %.1f)\n",
			h.ID, h.Cells, h.Mass, h.Peak, h.X, h.Y, h.Z)
	}

	sys, err := adaptive.New(adaptive.WithPartitionDim(16))
	if err != nil {
		log.Fatal(err)
	}
	cal, err := sys.Calibrate(ctx, density)
	if err != nil {
		log.Fatal(err)
	}
	p, err := adaptive.PartitionerForBrickDim(64, 16)
	if err != nil {
		log.Fatal(err)
	}

	// Combined budget: spectrum band plus halo-mass budget (1 % of total
	// halo mass, per the paper's RMSE target).
	avgEB, err := adaptive.SpectrumBudget(density, adaptive.BudgetOptions{})
	if err != nil {
		log.Fatal(err)
	}
	hb, err := adaptive.HaloBudget(density, hcfg, 0.01, 1.0, p)
	if err != nil {
		log.Fatal(err)
	}
	hc := hb.Constraint()
	plan, err := sys.Plan(ctx, density, cal, adaptive.PlanOptions{AvgEB: avgEB, Halo: &hc})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nplan: avg eb %.4g, halo mass budget %.4g, halo-scaled: %v (×%.3g)\n",
		avgEB, hb.MassBudget, plan.Predicted.HaloScaled, plan.Predicted.HaloScale)

	cf, err := sys.CompressAdaptive(ctx, density, plan)
	if err != nil {
		log.Fatal(err)
	}
	recon, err := cf.Decompress(ctx)
	if err != nil {
		log.Fatal(err)
	}
	reconCat, err := adaptive.FindHalos(recon, hcfg)
	if err != nil {
		log.Fatal(err)
	}
	match := adaptive.MatchHalos(original, reconCat, 2.0, 64, 64, 64)

	fmt.Printf("\ncompressed %.1f× — reconstructed catalog: %d halos\n",
		cf.Ratio(), reconCat.Count())
	fmt.Printf("  matched %d / lost %d / spurious %d\n",
		match.Matched, match.Lost, match.Spurious)
	fmt.Printf("  halo mass-ratio RMSE: %.5f (paper target ≤ 0.01)\n", match.MassRatioRMSE)
	fmt.Printf("  position RMSE: %.4f cells\n", match.PositionRMSE)
	fmt.Printf("  total |Δmass|: %.4g (model estimate was ≤ budget %.4g)\n",
		match.TotalAbsMassDiff, hb.MassBudget)
}
