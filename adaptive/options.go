package adaptive

import (
	"fmt"

	"repro/internal/apierr"
	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/pipeline"

	"repro/adaptive/codecs"
)

// config is the resolved option set behind New and NewExperimentContext.
// It unifies what used to be three divergent configuration structs (engine,
// streaming pipeline, experiment workload) behind one option list; options
// resolve once at construction, so the hot paths never consult them.
type config struct {
	engine core.Config
	pipe   pipeline.Options
	cal    core.CalibrationOptions

	// Synthetic-workload knobs, consumed by NewExperimentContext only.
	gridN    int
	seed     uint64
	redshift float64

	// notForExperiments records options an experiment context cannot
	// express; NewExperimentContext rejects them instead of silently
	// running a different configuration than the caller asked for.
	notForExperiments []string
}

// engineOnly marks an option as meaningless to NewExperimentContext.
func (c *config) engineOnly(name string) { c.notForExperiments = append(c.notForExperiments, name) }

// Option configures New and NewExperimentContext. Options validate
// eagerly where they can; anything they let through is validated by the
// layer that consumes it, and every rejection wraps ErrBadConfig (or
// ErrCodecUnknown for an unregistered backend).
type Option func(*config) error

// WithCodec selects the compression backend by registry name ("sz" by
// default; "zfp" ships too, and adaptive/codecs registers more). An
// unknown name surfaces from New as ErrCodecUnknown.
func WithCodec(name string) Option {
	return func(c *config) error {
		c.engine.Codec = codec.ID(name)
		return nil
	}
}

// WithPartitionDim sets the cubic partition brick edge (default 16).
// Field dimensions must be divisible by it.
func WithPartitionDim(d int) Option {
	return func(c *config) error {
		if d <= 0 {
			return fmt.Errorf("adaptive: %w: partition dim %d must be positive", apierr.ErrBadConfig, d)
		}
		c.engine.PartitionDim = d
		return nil
	}
}

// WithWorkers bounds the engine's partition-level parallelism
// (default: GOMAXPROCS; all levels share one bounded worker pool).
func WithWorkers(n int) Option {
	return func(c *config) error {
		c.engine.Workers = n
		return nil
	}
}

// WithMode sets the error-bound semantics for error-bounded codecs
// (default codecs.ABS, the paper's requirement).
func WithMode(m codecs.Mode) Option {
	return func(c *config) error {
		c.engine.Mode = m
		c.engineOnly("WithMode")
		return nil
	}
}

// WithPredictor selects the prediction scheme of prediction-based codecs
// (default codecs.Lorenzo3D).
func WithPredictor(p codecs.Predictor) Option {
	return func(c *config) error {
		c.engine.Predictor = p
		c.engineOnly("WithPredictor")
		return nil
	}
}

// WithQuantizeBeforePredict selects the GPU-SZ (cuSZ) formulation.
func WithQuantizeBeforePredict(v bool) Option {
	return func(c *config) error {
		c.engine.QuantizeBeforePredict = v
		c.engineOnly("WithQuantizeBeforePredict")
		return nil
	}
}

// WithClampFactor sets the optimizer's error-bound box k: each planned
// bound is clamped to [avg/k, k·avg] (default 4, the paper's choice).
func WithClampFactor(k float64) Option {
	return func(c *config) error {
		if k < 1 {
			return fmt.Errorf("adaptive: %w: clamp factor %g must be ≥ 1", apierr.ErrBadConfig, k)
		}
		c.engine.ClampFactor = k
		c.engineOnly("WithClampFactor")
		return nil
	}
}

// WithStrategy selects the error-bound allocation strategy
// (default EqualDerivative).
func WithStrategy(s Strategy) Option {
	return func(c *config) error {
		c.engine.Strategy = s
		c.engineOnly("WithStrategy")
		return nil
	}
}

// WithCalibration tunes calibration sampling for System.Calibrate and
// every (re)calibration the streaming pipeline performs.
func WithCalibration(o CalibrationOptions) Option {
	return func(c *config) error {
		c.cal = o
		c.engineOnly("WithCalibration")
		return nil
	}
}

// WithModelGuardBand sets the streaming pipeline's bound on the rate
// model's smoothed prediction residual: within it, drift events are
// absorbed by O(1) model corrections; beyond it, the next drift event
// forces a full recalibration (default 0.25; negative disables
// corrections entirely).
func WithModelGuardBand(gb float64) Option {
	return func(c *config) error {
		if gb == 0 {
			return fmt.Errorf("adaptive: %w: model guard band must be positive (or negative to disable)", apierr.ErrBadConfig)
		}
		c.pipe.ModelGuardBand = gb
		c.engineOnly("WithModelGuardBand")
		return nil
	}
}

// WithPolicy selects the streaming recalibration schedule
// (default DriftTriggered).
func WithPolicy(p Policy) Option {
	return func(c *config) error {
		c.pipe.Policy = p
		c.engineOnly("WithPolicy")
		return nil
	}
}

// WithDriftThreshold sets the relative drift of the global mean feature
// that triggers recalibration under DriftTriggered (default 0.25).
func WithDriftThreshold(t float64) Option {
	return func(c *config) error {
		if t < 0 {
			return fmt.Errorf("adaptive: %w: drift threshold %g must be ≥ 0", apierr.ErrBadConfig, t)
		}
		c.pipe.DriftThreshold = t
		c.engineOnly("WithDriftThreshold")
		return nil
	}
}

// WithRelAvgEB sets each streamed field's quality budget relative to its
// global mean |value| at first calibration (default 0.1).
func WithRelAvgEB(r float64) Option {
	return func(c *config) error {
		if r <= 0 {
			return fmt.Errorf("adaptive: %w: relative budget %g must be positive", apierr.ErrBadConfig, r)
		}
		c.pipe.RelAvgEB = r
		c.engineOnly("WithRelAvgEB")
		return nil
	}
}

// WithFieldBudget overrides the streaming budget with an absolute average
// error bound for one named field; repeat for several fields.
func WithFieldBudget(field string, avgEB float64) Option {
	return func(c *config) error {
		if avgEB <= 0 {
			return fmt.Errorf("adaptive: %w: budget %g for field %q must be positive", apierr.ErrBadConfig, avgEB, field)
		}
		if c.pipe.AvgEBs == nil {
			c.pipe.AvgEBs = make(map[string]float64)
		}
		c.pipe.AvgEBs[field] = avgEB
		c.engineOnly("WithFieldBudget")
		return nil
	}
}

// WithFieldWorkers bounds how many fields a streaming step compresses
// concurrently (default: min(#fields, GOMAXPROCS)).
func WithFieldWorkers(n int) Option {
	return func(c *config) error {
		c.pipe.FieldWorkers = n
		c.engineOnly("WithFieldWorkers")
		return nil
	}
}

// WithStreamWriter lands every streamed step in an archive v3 stream. The
// system never closes the writer: the caller owns the footer, which is
// what makes a canceled run recoverable (Close, then OpenStream).
func WithStreamWriter(w *StreamWriter) Option {
	return func(c *config) error {
		c.pipe.Writer = w
		c.engineOnly("WithStreamWriter")
		return nil
	}
}

// WithOnStep observes each streamed step's stats as the run progresses.
func WithOnStep(fn func(*StepStats)) Option {
	return func(c *config) error {
		c.pipe.OnStep = fn
		c.engineOnly("WithOnStep")
		return nil
	}
}

// WithGridN sets the synthetic grid dimension for experiment contexts
// (default 128). It has no effect on New.
func WithGridN(n int) Option {
	return func(c *config) error {
		if n < 0 {
			return fmt.Errorf("adaptive: %w: grid dimension %d must be positive", apierr.ErrBadConfig, n)
		}
		c.gridN = n
		return nil
	}
}

// WithSeed fixes the synthetic universe for experiment contexts
// (default 7). It has no effect on New.
func WithSeed(seed uint64) Option {
	return func(c *config) error {
		c.seed = seed
		return nil
	}
}

// WithRedshift sets the default snapshot epoch for experiment contexts
// (default 42). It has no effect on New.
func WithRedshift(z float64) Option {
	return func(c *config) error {
		c.redshift = z
		return nil
	}
}
