//go:build !race

package adaptive_test

const raceEnabled = false
