package huffman

import (
	"encoding/binary"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// Fuzz harness for the entropy decoder: whatever the bytes, Decompress must
// return an error or a self-consistent symbol stream — never panic, and
// never trust header-claimed sizes (the symbolCount preallocation is capped
// by the payload bit count; the oversizedClaim seed pins that). The seed
// corpus is checked in under testdata/fuzz/FuzzDecompress; regenerate with
//
//	go test ./internal/huffman -run TestWriteFuzzCorpus -update-fuzz-corpus
//
// and extend coverage any time with
//
//	go test ./internal/huffman -fuzz=FuzzDecompress -fuzztime=30s

var updateFuzzCorpus = flag.Bool("update-fuzz-corpus", false, "rewrite the checked-in fuzz seed corpus")

// oversizedClaim builds a hostile header: a tiny, fully valid table and a
// one-byte payload behind a symbolCount claiming 2⁵⁰ symbols. The decoder
// must fail fast on the missing payload instead of preallocating the claim.
func oversizedClaim() []byte {
	stream := binary.AppendUvarint(nil, 1<<50) // symbolCount (hostile)
	stream = binary.AppendUvarint(stream, 2)   // distinct
	stream = binary.AppendUvarint(stream, 3)   // symbol 3
	stream = append(stream, 1)                 // length 1
	stream = binary.AppendUvarint(stream, 9)   // symbol 9
	stream = append(stream, 1)                 // length 1
	return append(stream, 0xA5)                // 8 payload bits
}

func fuzzSeedStreams(tb testing.TB) [][]byte {
	tb.Helper()
	encode := func(sym []int) []byte {
		enc, err := Compress(sym)
		if err != nil {
			tb.Fatal(err)
		}
		return enc
	}
	skew := make([]int, 500)
	for i := range skew {
		skew[i] = 100
		if i%17 == 0 {
			skew[i] = i % 31
		}
	}
	return [][]byte{
		encode([]int{7}),
		encode([]int{0, 1, 0, 0, 1, 0}),
		encode([]int{5, 9, 5, 5, 9, 2, 5, 5, 5, 1}),
		encode(skew),
	}
}

func fuzzSeedMutations(valid [][]byte) [][]byte {
	out := [][]byte{
		nil,
		{0},
		{0x01, 0x00},             // symCount 1, distinct 0
		{0x01, 0x01},             // table truncated mid-entry
		{0x01, 0x01, 0x05},       // entry missing its length byte
		{0x01, 0x01, 0x05, 0x00}, // code length 0
		{0x01, 0x01, 0x05, 0xFF}, // code length 255 > maxCodeLen
		{0x02, 0x02, 0x05, 0x01, 0x05, 0x01, 0xFF}, // duplicate symbol
		{0x04, 0x02, 0x01, 0x01, 0x02, 0x02, 0xFF}, // Kraft violation (1+2 bits leaves a hole, then overcommits)
		oversizedClaim(),
	}
	for _, v := range valid {
		if len(v) < 2 {
			continue
		}
		out = append(out, v[:len(v)/2])
		flip := append([]byte(nil), v...)
		flip[len(flip)-1] ^= 0x40
		out = append(out, flip)
		flip2 := append([]byte(nil), v...)
		flip2[0] ^= 0x7F // mangle the symbol count
		out = append(out, flip2)
	}
	return out
}

func FuzzDecompress(f *testing.F) {
	seeds := fuzzSeedStreams(f)
	for _, s := range seeds {
		f.Add(s)
	}
	for _, s := range fuzzSeedMutations(seeds) {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		out, err := Decompress(data)
		if err != nil {
			return // malformed input must error, which it did
		}
		// A stream that decoded must be self-consistent: re-encoding the
		// symbols and decoding again reproduces them (hostile tables can
		// yield symbols outside Compress's domain, e.g. uvarint overflow
		// into negatives — those are excluded from the invariant).
		if len(out) == 0 {
			return
		}
		for _, v := range out {
			if v < 0 {
				return
			}
		}
		enc, err := Compress(out)
		if err != nil {
			t.Fatalf("decoded symbols do not re-encode: %v", err)
		}
		dec, err := Decompress(enc)
		if err != nil {
			t.Fatalf("re-encoded stream does not decode: %v", err)
		}
		if len(dec) != len(out) {
			t.Fatalf("round trip changed length: %d -> %d", len(out), len(dec))
		}
		for i := range out {
			if dec[i] != out[i] {
				t.Fatalf("round trip changed symbol %d: %d -> %d", i, out[i], dec[i])
			}
		}
	})
}

// TestDecompressOversizedSymbolCountClaim pins the hostile-header guard
// directly: the claim must fail with a table/payload error and must not
// drive the preallocation (each decoded symbol costs ≥ 1 payload bit).
func TestDecompressOversizedSymbolCountClaim(t *testing.T) {
	if _, err := Decompress(oversizedClaim()); err == nil {
		t.Fatal("2^50-symbol claim over an 8-bit payload decoded without error")
	}
	allocs := testing.AllocsPerRun(10, func() {
		_, _ = Decompress(oversizedClaim())
	})
	// The output preallocation is capped at 8 entries by the payload size;
	// anything near the claimed 2^50 would show up here (or OOM outright).
	if allocs > 16 {
		t.Fatalf("hostile claim cost %.0f allocations per decode", allocs)
	}
}

// TestWriteFuzzCorpus materializes the seed corpus as files in Go's corpus
// format so the seeds survive in git, not only in f.Add calls.
func TestWriteFuzzCorpus(t *testing.T) {
	if !*updateFuzzCorpus {
		t.Skip("run with -update-fuzz-corpus to rewrite the corpus")
	}
	seeds := fuzzSeedStreams(t)
	dir := filepath.Join("testdata", "fuzz", "FuzzDecompress")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for i, s := range append(seeds, fuzzSeedMutations(seeds)...) {
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", s)
		path := filepath.Join(dir, fmt.Sprintf("seed-%03d", i))
		if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
