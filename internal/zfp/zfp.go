// Package zfp implements a simplified ZFP-style fixed-rate transform codec
// (Lindstrom 2014), the compressor the paper compares SZ against before
// choosing SZ (Sec. 2.2: ZFP offers fixed-rate mode but lacks the absolute
// error-bound mode the method needs). It exists so the repository can
// substantiate that choice with a measured rate-distortion comparison
// (see the compressor ablation in internal/experiments).
//
// The pipeline follows ZFP's structure:
//
//  1. partition the field into 4×4×4 blocks (edge blocks are padded by
//     replicating the last layer);
//  2. block-floating-point: align all 64 values to the block's largest
//     exponent and convert to fixed point;
//  3. the reversible integer lifting transform along x, y, z;
//  4. reorder coefficients by total sequency;
//  5. negabinary mapping and embedded group-tested bit-plane coding,
//     truncated at the per-block bit budget (rate × 64 bits).
//
// Unlike internal/sz the codec is fixed-rate, not error-bounded: the
// compressed size is exact and the pointwise error is whatever the budget
// allows — precisely the trade-off the paper rejects for its use case.
package zfp

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"repro/internal/grid"
	"repro/internal/huffman"
)

const (
	blockDim   = 4
	blockSize  = blockDim * blockDim * blockDim // 64
	maxPlanes  = 40                             // fixed-point precision in bit planes
	guardBits  = 4                              // transform headroom
	headerSize = 28
	magic      = "ZFPG"
)

// Options configures fixed-rate compression.
type Options struct {
	// Rate is the bit budget per value (0.5 ≤ Rate ≤ 32).
	Rate float64
}

// Validate checks the options.
func (o Options) Validate() error {
	if o.Rate < 0.5 || o.Rate > 32 {
		return fmt.Errorf("zfp: rate %v outside [0.5, 32]", o.Rate)
	}
	return nil
}

// Compressed is one fixed-rate compressed field.
type Compressed struct {
	Nx, Ny, Nz int
	Rate       float64
	payload    []byte
}

// N returns the number of cells.
func (c *Compressed) N() int { return c.Nx * c.Ny * c.Nz }

// CompressedSize returns the total size in bytes including the header.
func (c *Compressed) CompressedSize() int { return headerSize + len(c.payload) }

// BitRate returns achieved bits per value (≈ Rate plus header amortization
// and block padding).
func (c *Compressed) BitRate() float64 {
	return float64(c.CompressedSize()) * 8 / float64(c.N())
}

// Ratio returns the compression ratio relative to fp32.
func (c *Compressed) Ratio() float64 {
	return float64(4*c.N()) / float64(c.CompressedSize())
}

// sequency is the coefficient visiting order: by total frequency i+j+k,
// ties broken lexicographically — a precomputed permutation of [0,64).
var sequency = buildSequency()

func buildSequency() [blockSize]int {
	type entry struct{ idx, key int }
	var entries []entry
	for z := 0; z < blockDim; z++ {
		for y := 0; y < blockDim; y++ {
			for x := 0; x < blockDim; x++ {
				idx := (z*blockDim+y)*blockDim + x
				// key: total sequency first, then coordinates for a
				// stable, deterministic order.
				key := (x+y+z)<<12 | z<<8 | y<<4 | x
				entries = append(entries, entry{idx, key})
			}
		}
	}
	for i := 1; i < len(entries); i++ { // insertion sort, tiny n
		for j := i; j > 0 && entries[j].key < entries[j-1].key; j-- {
			entries[j], entries[j-1] = entries[j-1], entries[j]
		}
	}
	var out [blockSize]int
	for rank, e := range entries {
		out[rank] = e.idx
	}
	return out
}

// liftForward is ZFP's reversible 4-point integer lifting transform.
func liftForward(p []int64, stride int) {
	x := p[0*stride]
	y := p[1*stride]
	z := p[2*stride]
	w := p[3*stride]
	x += w
	x >>= 1
	w -= x
	z += y
	z >>= 1
	y -= z
	x += z
	x >>= 1
	z -= x
	w += y
	w >>= 1
	y -= w
	w += y >> 1
	y -= w >> 1
	p[0*stride] = x
	p[1*stride] = y
	p[2*stride] = z
	p[3*stride] = w
}

// liftInverse is ZFP's inverse lift. Like the original, it reverses
// liftForward only up to the low bits the forward shifts discard — the
// transform is nearly orthogonal, not bit-exact, which is fine for a codec
// that truncates bit planes anyway (the guard bits absorb the loss).
func liftInverse(p []int64, stride int) {
	x := p[0*stride]
	y := p[1*stride]
	z := p[2*stride]
	w := p[3*stride]
	y += w >> 1
	w -= y >> 1
	y += w
	w <<= 1
	w -= y
	z += x
	x <<= 1
	x -= z
	y += z
	z <<= 1
	z -= y
	w += x
	x <<= 1
	x -= w
	p[0*stride] = x
	p[1*stride] = y
	p[2*stride] = z
	p[3*stride] = w
}

// transformBlock applies the lifting along each axis (forward).
func transformBlock(b *[blockSize]int64) {
	// x lines
	for z := 0; z < blockDim; z++ {
		for y := 0; y < blockDim; y++ {
			liftForward(b[(z*blockDim+y)*blockDim:], 1)
		}
	}
	// y lines
	for z := 0; z < blockDim; z++ {
		for x := 0; x < blockDim; x++ {
			liftForward(b[z*blockDim*blockDim+x:], blockDim)
		}
	}
	// z lines
	for y := 0; y < blockDim; y++ {
		for x := 0; x < blockDim; x++ {
			liftForward(b[y*blockDim+x:], blockDim*blockDim)
		}
	}
}

func inverseBlock(b *[blockSize]int64) {
	for y := 0; y < blockDim; y++ {
		for x := 0; x < blockDim; x++ {
			liftInverse(b[y*blockDim+x:], blockDim*blockDim)
		}
	}
	for z := 0; z < blockDim; z++ {
		for x := 0; x < blockDim; x++ {
			liftInverse(b[z*blockDim*blockDim+x:], blockDim)
		}
	}
	for z := 0; z < blockDim; z++ {
		for y := 0; y < blockDim; y++ {
			liftInverse(b[(z*blockDim+y)*blockDim:], 1)
		}
	}
}

// negabinary maps signed to unsigned such that magnitude ordering is
// roughly preserved across bit planes.
func negabinary(x int64) uint64 {
	const mask = 0xaaaaaaaaaaaaaaaa
	return (uint64(x) + mask) ^ mask
}

func negabinaryInv(u uint64) int64 {
	const mask = 0xaaaaaaaaaaaaaaaa
	return int64((u ^ mask) - mask)
}

// Compress compresses a field at the fixed rate.
func Compress(f *grid.Field3D, opt Options) (*Compressed, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	if f.Len() == 0 {
		return nil, errors.New("zfp: empty field")
	}
	budget := int(opt.Rate * blockSize)
	if budget < blockSize/8 {
		budget = blockSize / 8
	}
	w := huffman.NewBitWriter(f.Len() / 2)
	var block [blockSize]float64
	var ints [blockSize]int64
	for z0 := 0; z0 < f.Nz; z0 += blockDim {
		for y0 := 0; y0 < f.Ny; y0 += blockDim {
			for x0 := 0; x0 < f.Nx; x0 += blockDim {
				gatherBlock(f, x0, y0, z0, &block)
				encodeBlock(w, &block, &ints, budget)
			}
		}
	}
	return &Compressed{Nx: f.Nx, Ny: f.Ny, Nz: f.Nz, Rate: opt.Rate, payload: w.Bytes()}, nil
}

// gatherBlock copies a 4³ block, clamping coordinates at the field edge
// (replication padding).
func gatherBlock(f *grid.Field3D, x0, y0, z0 int, out *[blockSize]float64) {
	for dz := 0; dz < blockDim; dz++ {
		z := min(z0+dz, f.Nz-1)
		for dy := 0; dy < blockDim; dy++ {
			y := min(y0+dy, f.Ny-1)
			for dx := 0; dx < blockDim; dx++ {
				x := min(x0+dx, f.Nx-1)
				out[(dz*blockDim+dy)*blockDim+dx] = float64(f.At(x, y, z))
			}
		}
	}
}

// encodeBlock writes one block: 1 bit all-zero flag, 12-bit biased
// exponent, then the embedded coefficient planes up to the bit budget.
func encodeBlock(w *huffman.BitWriter, vals *[blockSize]float64, ints *[blockSize]int64, budget int) {
	// Block exponent.
	var maxAbs float64
	for _, v := range vals {
		a := math.Abs(v)
		if a > maxAbs {
			maxAbs = a
		}
	}
	if maxAbs == 0 {
		w.WriteBit(0) // all-zero block
		return
	}
	w.WriteBit(1)
	emax := math.Ilogb(maxAbs)
	w.WriteBits(uint64(emax+2048), 12)

	// Fixed point: scale so values fit maxPlanes bits with guard room.
	scale := math.Ldexp(1, maxPlanes-guardBits-1-emax)
	for i, v := range vals {
		ints[i] = int64(v * scale)
	}
	transformBlock(ints)

	// Negabinary in sequency order.
	var coeffs [blockSize]uint64
	for rank, idx := range sequency {
		coeffs[rank] = negabinary(ints[idx])
	}
	encodePlanes(w, &coeffs, budget)
}

// encodePlanes is the embedded group-tested bit-plane coder. The decoder
// mirrors the control flow exactly, so the bit budget acts as a shared
// truncation point.
func encodePlanes(w *huffman.BitWriter, coeffs *[blockSize]uint64, budget int) {
	spent := 0
	emit := func(bit uint) bool {
		if spent >= budget {
			return false
		}
		w.WriteBit(bit)
		spent++
		return true
	}
	sigPrefix := 0
	for plane := maxPlanes - 1; plane >= 0 && spent < budget; plane-- {
		// Verbatim bits for the significant prefix.
		for i := 0; i < sigPrefix; i++ {
			if !emit(uint(coeffs[i]>>plane) & 1) {
				return
			}
		}
		// Group-test the tail.
		i := sigPrefix
		for i < blockSize {
			any := uint(0)
			for j := i; j < blockSize; j++ {
				if (coeffs[j]>>plane)&1 == 1 {
					any = 1
					break
				}
			}
			if !emit(any) {
				return
			}
			if any == 0 {
				break
			}
			for i < blockSize {
				b := uint(coeffs[i]>>plane) & 1
				if !emit(b) {
					return
				}
				i++
				if b == 1 {
					break
				}
			}
		}
		if i > sigPrefix {
			sigPrefix = i
		}
	}
}

// Decompress reconstructs the field.
func Decompress(c *Compressed) (*grid.Field3D, error) {
	if c.Nx <= 0 || c.Ny <= 0 || c.Nz <= 0 {
		return nil, errors.New("zfp: invalid dimensions")
	}
	if err := (Options{Rate: c.Rate}).Validate(); err != nil {
		return nil, err
	}
	budget := int(c.Rate * blockSize)
	if budget < blockSize/8 {
		budget = blockSize / 8
	}
	out := grid.NewField3D(c.Nx, c.Ny, c.Nz)
	r := huffman.NewBitReader(c.payload)
	var block [blockSize]float64
	for z0 := 0; z0 < c.Nz; z0 += blockDim {
		for y0 := 0; y0 < c.Ny; y0 += blockDim {
			for x0 := 0; x0 < c.Nx; x0 += blockDim {
				if err := decodeBlock(r, &block, budget); err != nil {
					return nil, fmt.Errorf("zfp: block (%d,%d,%d): %w", x0, y0, z0, err)
				}
				scatterBlock(out, x0, y0, z0, &block)
			}
		}
	}
	return out, nil
}

func decodeBlock(r *huffman.BitReader, vals *[blockSize]float64, budget int) error {
	zeroFlag, err := r.ReadBit()
	if err != nil {
		return err
	}
	if zeroFlag == 0 {
		for i := range vals {
			vals[i] = 0
		}
		return nil
	}
	e, err := r.ReadBits(12)
	if err != nil {
		return err
	}
	emax := int(e) - 2048
	var coeffs [blockSize]uint64
	if err := decodePlanes(r, &coeffs, budget); err != nil {
		return err
	}
	var ints [blockSize]int64
	for rank, idx := range sequency {
		ints[idx] = negabinaryInv(coeffs[rank])
	}
	inverseBlock(&ints)
	scale := math.Ldexp(1, -(maxPlanes - guardBits - 1 - emax))
	for i, v := range ints {
		vals[i] = float64(v) * scale
	}
	return nil
}

func decodePlanes(r *huffman.BitReader, coeffs *[blockSize]uint64, budget int) error {
	spent := 0
	read := func() (uint, bool, error) {
		if spent >= budget {
			return 0, false, nil
		}
		b, err := r.ReadBit()
		if err != nil {
			return 0, false, err
		}
		spent++
		return b, true, nil
	}
	sigPrefix := 0
	for plane := maxPlanes - 1; plane >= 0 && spent < budget; plane-- {
		for i := 0; i < sigPrefix; i++ {
			b, ok, err := read()
			if err != nil {
				return err
			}
			if !ok {
				return nil
			}
			coeffs[i] |= uint64(b) << plane
		}
		i := sigPrefix
		for i < blockSize {
			any, ok, err := read()
			if err != nil {
				return err
			}
			if !ok {
				return nil
			}
			if any == 0 {
				break
			}
			for i < blockSize {
				b, ok, err := read()
				if err != nil {
					return err
				}
				if !ok {
					return nil
				}
				coeffs[i] |= uint64(b) << plane
				i++
				if b == 1 {
					break
				}
			}
		}
		if i > sigPrefix {
			sigPrefix = i
		}
	}
	return nil
}

func scatterBlock(f *grid.Field3D, x0, y0, z0 int, vals *[blockSize]float64) {
	for dz := 0; dz < blockDim && z0+dz < f.Nz; dz++ {
		for dy := 0; dy < blockDim && y0+dy < f.Ny; dy++ {
			for dx := 0; dx < blockDim && x0+dx < f.Nx; dx++ {
				f.Set(x0+dx, y0+dy, z0+dz, float32(vals[(dz*blockDim+dy)*blockDim+dx]))
			}
		}
	}
}

// Bytes serializes the compressed field.
func (c *Compressed) Bytes() []byte {
	out := make([]byte, headerSize, headerSize+len(c.payload))
	copy(out[0:4], magic)
	binary.LittleEndian.PutUint32(out[4:8], 1)
	binary.LittleEndian.PutUint32(out[8:12], uint32(c.Nx))
	binary.LittleEndian.PutUint32(out[12:16], uint32(c.Ny))
	binary.LittleEndian.PutUint32(out[16:20], uint32(c.Nz))
	binary.LittleEndian.PutUint64(out[20:28], math.Float64bits(c.Rate))
	return append(out, c.payload...)
}

// Parse deserializes a compressed field.
func Parse(data []byte) (*Compressed, error) {
	if len(data) < headerSize {
		return nil, errors.New("zfp: stream shorter than header")
	}
	if string(data[0:4]) != magic {
		return nil, fmt.Errorf("zfp: bad magic %q", data[0:4])
	}
	if v := binary.LittleEndian.Uint32(data[4:8]); v != 1 {
		return nil, fmt.Errorf("zfp: unsupported version %d", v)
	}
	c := &Compressed{
		Nx:      int(binary.LittleEndian.Uint32(data[8:12])),
		Ny:      int(binary.LittleEndian.Uint32(data[12:16])),
		Nz:      int(binary.LittleEndian.Uint32(data[16:20])),
		Rate:    math.Float64frombits(binary.LittleEndian.Uint64(data[20:28])),
		payload: data[headerSize:],
	}
	if c.Nx <= 0 || c.Ny <= 0 || c.Nz <= 0 {
		return nil, errors.New("zfp: invalid dimensions")
	}
	return c, nil
}
