package codec

import (
	"math/bits"

	"repro/internal/stats"
	"repro/internal/sz"
)

// SZHeaderBits is the sz frame's fixed per-partition overhead in bits —
// the ratio-quality model's header term.
const SZHeaderBits = 8 * sz.HeaderBytes

// ScanResiduals runs the sz predictor's open-loop residual scan over a
// brick, filling out with the value moments and the prediction-error
// distribution the ratio-quality model consumes. Exposed here so the
// engine stays codec-agnostic (the Predictor enums are value-compatible
// by construction).
func ScanResiduals(data []float32, nx, ny, nz int, p Predictor, out *stats.PredScan) error {
	return sz.ScanResiduals(data, nx, ny, nz, sz.Predictor(p), out)
}

// szCodec adapts internal/sz (prediction-based, error-bounded) to the
// Codec interface. It is the default backend: the only one whose frames
// carry a hard pointwise error guarantee, which the paper's error control
// requires (Sec. 2.2).
type szCodec struct{}

func (szCodec) ID() ID { return SZ }

func (szCodec) Compress(data []float32, nx, ny, nz int, opt Options, s *Scratch) (Frame, error) {
	if err := validateDims(data, nx, ny, nz); err != nil {
		return nil, err
	}
	zs := szScratch(s)
	if opt.Telemetry != nil && zs == nil {
		zs = &sz.Scratch{} // symbols must survive the call to be histogrammed
	}
	c, err := sz.CompressSliceWith(data, nx, ny, nz, szOptions(opt), zs)
	if err != nil {
		return nil, err
	}
	if opt.Telemetry != nil {
		radius := opt.Radius
		if radius <= 0 {
			radius = sz.DefaultRadius
		}
		fillQuantHist(opt.Telemetry, zs.Symbols(len(data)), radius)
	}
	return szFrame{c}, nil
}

// fillQuantHist condenses the quantization-symbol stream the prediction
// pass just produced into the compact octave histogram of
// Telemetry.QuantHist (symbol layout: 0 = outlier, else code + radius).
func fillQuantHist(t *Telemetry, symbols []int, radius int) {
	if cap(t.QuantHist) < QuantHistBins {
		t.QuantHist = make([]int64, QuantHistBins)
	}
	t.QuantHist = t.QuantHist[:QuantHistBins]
	clear(t.QuantHist)
	for _, sym := range symbols {
		switch q := sym - radius; {
		case sym == 0:
			t.QuantHist[QuantHistBins-1]++
		case q == 0:
			t.QuantHist[0]++
		default:
			if q < 0 {
				q = -q
			}
			k := bits.Len(uint(q)) // |q| ∈ [2^(k−1), 2^k)
			if k > QuantHistBins-2 {
				k = QuantHistBins - 2
			}
			t.QuantHist[k]++
		}
	}
}

func (szCodec) Parse(body []byte) (Frame, error) {
	c, err := sz.Parse(body)
	if err != nil {
		return nil, err
	}
	return szFrame{c}, nil
}

// szOptions maps the codec-agnostic knobs onto SZ's option set. The enums
// are value-compatible by construction (see the Mode/Predictor constants).
func szOptions(opt Options) sz.Options {
	return sz.Options{
		Mode:                  sz.Mode(opt.Mode),
		ErrorBound:            opt.ErrorBound,
		Radius:                opt.Radius,
		Predictor:             sz.Predictor(opt.Predictor),
		QuantizeBeforePredict: opt.QuantizeBeforePredict,
	}
}

// szScratch lazily materializes the SZ working buffers inside the shared
// per-worker scratch. The sz.Scratch carries the whole per-partition hot
// path: prediction/quantization buffers, the outlier accumulator, RLE
// tokens, and the entropy stage's dense frequency/code tables (see
// huffman.Scratch), so steady-state compression is allocation-flat.
func szScratch(s *Scratch) *sz.Scratch {
	if s == nil {
		return nil
	}
	if s.sz == nil {
		s.sz = &sz.Scratch{}
	}
	return s.sz
}

type szFrame struct{ c *sz.Compressed }

func (f szFrame) CodecID() ID                    { return SZ }
func (f szFrame) Dims() (int, int, int)          { return f.c.Nx, f.c.Ny, f.c.Nz }
func (f szFrame) N() int                         { return f.c.N() }
func (f szFrame) CompressedSize() int            { return f.c.CompressedSize() }
func (f szFrame) BitRate() float64               { return f.c.BitRate() }
func (f szFrame) Ratio() float64                 { return f.c.Ratio() }
func (f szFrame) ErrorBound() float64            { return f.c.Opt.ErrorBound }
func (f szFrame) Bytes() []byte                  { return f.c.Bytes() }
func (f szFrame) Decompress() ([]float32, error) { return sz.DecompressSlice(f.c) }
