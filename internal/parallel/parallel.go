// Package parallel is the shared, bounded worker pool behind every fan-out
// level of the compression stack: internal/pipeline fans out over fields,
// internal/core over partitions, and internal/zfp over 4³ blocks. Before
// this pool each level sized its own goroutine set independently, so a
// nested run could schedule FieldWorkers × GOMAXPROCS (× block chunks)
// concurrent workers; here all levels draw helper goroutines from one
// global budget of GOMAXPROCS−1 tokens, so total busy workers stay
// O(GOMAXPROCS) no matter how deep the nesting.
//
// The discipline that makes nesting safe:
//
//   - the calling goroutine always participates in its own fan-out, so
//     every call makes progress even when the pool is empty;
//   - helper tokens are try-acquired, never waited on — an inner fan-out
//     that finds the pool drained simply runs serially on its caller, and
//     no call can deadlock on the pool;
//   - work is handed out by an atomic index, so helpers and caller steal
//     from one shared queue and an idle helper never pins a token.
package parallel

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// PanicError carries a panic that happened inside a pool worker across
// goroutines: the fan-out recovers it, waits for the other workers to
// drain, and re-panics it on the calling goroutine. Without this funnel a
// panic in a helper goroutine would kill the whole process no matter how
// carefully the caller deferred a recover — with it, recovery barriers at
// the fan-out call sites (the pipeline's per-field isolation, the
// compression service's batch backstop) actually contain worker panics.
type PanicError struct {
	// Value is the original panic value.
	Value any
	// Stack is the panicking worker's stack at recovery time.
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("parallel: worker panic: %v\n%s", e.Value, e.Stack)
}

// Unwrap exposes an error panic value to errors.Is/As through the wrapper.
func (e *PanicError) Unwrap() error {
	if err, ok := e.Value.(error); ok {
		return err
	}
	return nil
}

var (
	// tokens is the helper budget: one buffered slot per allowed helper
	// goroutine, shared by every concurrent fan-out in the process.
	tokens chan struct{}

	// active counts body invocations currently running (nested bodies on
	// one goroutine count once per level); peak is its high-water mark.
	// They exist so tests can pin the oversubscription bound.
	active, peak atomic.Int64
)

func init() {
	setLimit(runtime.GOMAXPROCS(0) - 1)
}

func setLimit(n int) {
	if n < 0 {
		n = 0
	}
	tokens = make(chan struct{}, n)
}

// Limit returns the helper budget (total concurrent workers are bounded by
// callers + Limit; with the usual single top-level caller that is
// GOMAXPROCS).
func Limit() int { return cap(tokens) }

// SetLimit replaces the helper budget and resets the peak gauge — a test
// hook for exercising parallel paths on small machines (and serial paths on
// big ones). It must not be called while fan-outs are in flight; the
// returned function restores the previous budget.
func SetLimit(n int) (restore func()) {
	prev := cap(tokens)
	setLimit(n)
	ResetPeak()
	return func() { setLimit(prev); ResetPeak() }
}

// Peak returns the high-water mark of concurrently running fan-out bodies
// since the last ResetPeak. Nested fan-outs count each level, so a run
// nesting d levels deep is bounded by d × (Limit()+1) per top-level caller
// — the O(GOMAXPROCS) contract the pipeline tests assert.
func Peak() int64 { return peak.Load() }

// ResetPeak clears the high-water mark.
func ResetPeak() {
	active.Store(0)
	peak.Store(0)
}

func enter() {
	a := active.Add(1)
	for {
		p := peak.Load()
		if a <= p || peak.CompareAndSwap(p, a) {
			return
		}
	}
}

func exit() { active.Add(-1) }

// Workers fans indices [0, n) out to at most max concurrent goroutines
// (max <= 0 means "no per-call cap", i.e. bounded by the pool alone). body
// runs once per participating goroutine — the caller always participates,
// helpers join only while pool tokens are free — and drains indices via
// next, which is safe to call concurrently. Workers returns when every
// index has been processed. Use this form when each participant carries
// per-worker state (a scratch checkout); use ForEach when it does not.
func Workers(n, max int, body func(next func() (int, bool))) {
	WorkersCtx(context.Background(), n, max, body)
}

// WorkersCtx is Workers with cooperative cancellation: once ctx is done,
// next stops handing out indices, so every participant drains at the next
// index boundary and WorkersCtx returns promptly with all pool tokens
// released. Indices already handed out finish normally — cancellation never
// interrupts a body mid-item, which is what keeps compressed bitstreams
// bit-exact up to the cancellation point. Callers observe cancellation via
// ctx.Err() after the fan-out returns.
func WorkersCtx(ctx context.Context, n, max int, body func(next func() (int, bool))) {
	if n <= 0 {
		return
	}
	done := ctx.Done()
	var idx atomic.Int64
	next := func() (int, bool) {
		select {
		case <-done:
			return 0, false
		default:
		}
		i := idx.Add(1) - 1
		if i >= int64(n) {
			return 0, false
		}
		return int(i), true
	}
	helpers := n - 1
	if max > 0 && max-1 < helpers {
		helpers = max - 1
	}
	var wg sync.WaitGroup
	// The first panic from any participant (helper or caller) is captured
	// here and re-raised on the calling goroutine after the fan-out has
	// fully drained — every helper token released, no worker abandoned
	// mid-unwind. An already-funneled PanicError passes through nested
	// fan-outs unwrapped so the innermost stack survives.
	var panicOnce sync.Once
	var funneled *PanicError
	capture := func() {
		if r := recover(); r != nil {
			panicOnce.Do(func() {
				if pe, ok := r.(*PanicError); ok {
					funneled = pe
					return
				}
				funneled = &PanicError{Value: r, Stack: debug.Stack()}
			})
		}
	}
	pool := tokens // helpers must release to the pool they were drawn from
recruit:
	for h := 0; h < helpers; h++ {
		select {
		case pool <- struct{}{}:
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer func() { <-pool }()
				defer capture()
				enter()
				defer exit()
				body(next)
			}()
		default:
			break recruit // pool drained: the caller works alone
		}
	}
	enter()
	func() {
		defer capture()
		body(next)
	}()
	exit()
	wg.Wait()
	if funneled != nil {
		panic(funneled)
	}
}

// ForEach runs fn(i) for every i in [0, n), using the caller plus at most
// max−1 pool helpers (max <= 0 means no per-call cap).
func ForEach(n, max int, fn func(i int)) {
	ForEachCtx(context.Background(), n, max, fn)
}

// ForEachCtx is ForEach with cooperative cancellation (see WorkersCtx):
// indices stop being handed out once ctx is done, in-flight fn calls run to
// completion, and the call returns with no tokens retained.
func ForEachCtx(ctx context.Context, n, max int, fn func(i int)) {
	WorkersCtx(ctx, n, max, func(next func() (int, bool)) {
		for i, ok := next(); ok; i, ok = next() {
			fn(i)
		}
	})
}
