package adaptive

import (
	"io"

	"repro/internal/foresight"
	"repro/internal/halo"
	"repro/internal/model"
	"repro/internal/spectrum"
	"repro/internal/stats"
)

// Analysis surface: the post-hoc quality metrics the paper's budgets are
// derived from (power spectra, halo catalogs) and the Foresight-style
// evaluation harness.

// Spectrum is a shell-binned matter power spectrum.
type Spectrum = spectrum.Spectrum

// SpectrumOptions configures spectrum computation.
type SpectrumOptions = spectrum.Options

// ComputeSpectrum measures the power spectrum of a cubic field.
func ComputeSpectrum(f *Field, opt SpectrumOptions) (*Spectrum, error) {
	return spectrum.Compute(f, opt)
}

// SpectrumRatios returns P'(k)/P(k) per shell.
func SpectrumRatios(orig, recon *Spectrum) ([]float64, error) {
	return spectrum.Ratio(orig, recon)
}

// SpectrumMaxDeviation returns max |P'(k)/P(k) − 1| for 0 < k < kMax —
// the paper's acceptance figure.
func SpectrumMaxDeviation(orig, recon *Spectrum, kMax float64) (float64, error) {
	return spectrum.MaxDeviation(orig, recon, kMax)
}

// SigmaFFT3D is the paper's FFT error model (Eq. 9): the standard
// deviation of a 3-D FFT bin under a pointwise bound eb on an n³ field.
func SigmaFFT3D(n int, eb float64) float64 { return model.SigmaFFT3D(n, eb) }

// HaloConfig configures the friends-of-friends-style halo finder.
type HaloConfig = halo.Config

// DefaultHaloConfig returns the boundary/peak thresholds used throughout
// the reproduction for synthetic baryon-density fields (periodic).
func DefaultHaloConfig() HaloConfig {
	bt, pt := defaultHaloThresholds()
	return HaloConfig{BoundaryThreshold: bt, HaloThreshold: pt, Periodic: true}
}

// HaloCatalog is a set of found halos with positions and masses.
type HaloCatalog = halo.Catalog

// HaloMatchResult summarizes a catalog-to-catalog comparison.
type HaloMatchResult = halo.MatchResult

// FindHalos runs the halo finder on a density field.
func FindHalos(f *Field, cfg HaloConfig) (*HaloCatalog, error) { return halo.Find(f, cfg) }

// MatchHalos matches a reconstructed catalog against the original within
// maxDist cells (periodic in nx×ny×nz) and reports the paper's distortion
// metrics (mass-ratio RMSE, position RMSE, lost/spurious counts).
func MatchHalos(orig, recon *HaloCatalog, maxDist float64, nx, ny, nz int) HaloMatchResult {
	return halo.Match(orig, recon, maxDist, nx, ny, nz)
}

// Moments accumulates streaming min/max/mean/variance.
type Moments = stats.Moments

// MaxAbsError returns max |a[i] − b[i]| — the figure to verify a
// compressed field honored its pointwise bounds.
func MaxAbsError(a, b []float32) (float64, error) { return stats.MaxAbsError(a, b) }

// ForesightEvaluator is the VizAly-Foresight-style evaluation harness:
// general metrics (PSNR, MSE, max error) plus the analysis-aware ones
// (spectrum distortion, halo distortion), sweeps, and the trial-and-error
// baseline search. Build one with System.Foresight.
type ForesightEvaluator = foresight.Evaluator

// ForesightMetrics is one evaluation of a compressed field.
type ForesightMetrics = foresight.Metrics

// TrialAndErrorResult is the outcome of the traditional baseline search.
type TrialAndErrorResult = foresight.TrialAndErrorResult

// GeometricGrid builds an n-point geometric error-bound grid from lo to
// hi inclusive.
func GeometricGrid(lo, hi float64, n int) ([]float64, error) {
	return foresight.GeometricGrid(lo, hi, n)
}

// WriteMetricsCSV renders evaluation rows as CSV for external plotting.
func WriteMetricsCSV(w io.Writer, rows []ForesightMetrics) error {
	return foresight.WriteCSV(w, rows)
}
