// Package mpi provides a small in-process message-passing runtime that
// stands in for MPI in the paper's in situ protocol. Each "rank" is a
// goroutine owning one compute partition; the collectives mirror the MPI
// operations the paper uses (notably MPI_Allreduce for the global mean,
// Sec. 3.6/4.3) with deterministic, rank-ordered reductions so runs are
// bit-reproducible regardless of scheduling.
package mpi

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// Op is a reduction operator.
type Op int

const (
	// OpSum adds contributions in rank order.
	OpSum Op = iota
	// OpMin takes the minimum.
	OpMin
	// OpMax takes the maximum.
	OpMax
)

func (o Op) String() string {
	switch o {
	case OpSum:
		return "sum"
	case OpMin:
		return "min"
	case OpMax:
		return "max"
	default:
		return fmt.Sprintf("Op(%d)", int(o))
	}
}

func (o Op) apply(a, b float64) float64 {
	switch o {
	case OpSum:
		return a + b
	case OpMin:
		if b < a {
			return b
		}
		return a
	case OpMax:
		if b > a {
			return b
		}
		return a
	default:
		panic("mpi: unknown op")
	}
}

// world is the shared state of one communicator.
type world struct {
	size int

	mu         sync.Mutex
	cond       *sync.Cond
	arrived    int
	generation int64

	slots  []float64   // one scalar slot per rank
	slices [][]float64 // one vector slot per rank

	// p2p[from*size+to] carries point-to-point messages.
	p2p []chan []float64

	// Stats.
	collectives atomic.Int64
	messages    atomic.Int64
}

// Comm is one rank's handle on the communicator.
type Comm struct {
	rank int
	w    *world
}

// Rank returns this rank's index in [0, Size).
func (c *Comm) Rank() int { return c.rank }

// Size returns the number of ranks.
func (c *Comm) Size() int { return c.w.size }

// Run launches size ranks, each executing fn with its own Comm, and waits
// for all of them. The first non-nil error (lowest rank wins) is returned.
// A panic in any rank is converted into an error rather than crashing the
// whole process.
func Run(size int, fn func(c *Comm) error) error {
	if size <= 0 {
		return errors.New("mpi: size must be positive")
	}
	w := &world{
		size:   size,
		slots:  make([]float64, size),
		slices: make([][]float64, size),
		p2p:    make([]chan []float64, size*size),
	}
	w.cond = sync.NewCond(&w.mu)
	for i := range w.p2p {
		w.p2p[i] = make(chan []float64, 4)
	}
	errs := make([]error, size)
	var wg sync.WaitGroup
	for r := 0; r < size; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					errs[rank] = fmt.Errorf("mpi: rank %d panicked: %v", rank, p)
					// Unblock peers stuck in a collective.
					w.mu.Lock()
					w.arrived = 0
					w.generation++
					w.cond.Broadcast()
					w.mu.Unlock()
				}
			}()
			errs[rank] = fn(&Comm{rank: rank, w: w})
		}(r)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Barrier blocks until every rank has entered it.
func (c *Comm) Barrier() {
	w := c.w
	w.mu.Lock()
	gen := w.generation
	w.arrived++
	if w.arrived == w.size {
		w.arrived = 0
		w.generation++
		w.cond.Broadcast()
	} else {
		for gen == w.generation {
			w.cond.Wait()
		}
	}
	w.mu.Unlock()
}

// Allreduce combines one scalar per rank with op; every rank receives the
// same result. The reduction is evaluated in rank order, so OpSum results
// are identical across runs.
func (c *Comm) Allreduce(v float64, op Op) float64 {
	w := c.w
	if c.rank == 0 {
		w.collectives.Add(1)
	}
	w.slots[c.rank] = v
	c.Barrier() // all deposits visible
	acc := w.slots[0]
	for r := 1; r < w.size; r++ {
		acc = op.apply(acc, w.slots[r])
	}
	c.Barrier() // nobody overwrites slots until everyone has read
	return acc
}

// AllreduceSlice element-wise reduces equal-length vectors. Every rank
// receives a freshly allocated result.
func (c *Comm) AllreduceSlice(v []float64, op Op) ([]float64, error) {
	w := c.w
	if c.rank == 0 {
		w.collectives.Add(1)
	}
	w.slices[c.rank] = v
	c.Barrier()
	n := len(w.slices[0])
	for r := 1; r < w.size; r++ {
		if len(w.slices[r]) != n {
			c.Barrier()
			return nil, fmt.Errorf("mpi: AllreduceSlice length mismatch: rank 0 has %d, rank %d has %d",
				n, r, len(w.slices[r]))
		}
	}
	out := make([]float64, n)
	copy(out, w.slices[0])
	for r := 1; r < w.size; r++ {
		src := w.slices[r]
		for i := range out {
			out[i] = op.apply(out[i], src[i])
		}
	}
	c.Barrier()
	return out, nil
}

// Allgather collects one scalar from every rank; every rank receives the
// full rank-ordered vector.
func (c *Comm) Allgather(v float64) []float64 {
	w := c.w
	if c.rank == 0 {
		w.collectives.Add(1)
	}
	w.slots[c.rank] = v
	c.Barrier()
	out := make([]float64, w.size)
	copy(out, w.slots)
	c.Barrier()
	return out
}

// AllgatherSlice concatenates per-rank vectors in rank order. Vectors may
// have different lengths.
func (c *Comm) AllgatherSlice(v []float64) []float64 {
	w := c.w
	if c.rank == 0 {
		w.collectives.Add(1)
	}
	w.slices[c.rank] = v
	c.Barrier()
	var out []float64
	for r := 0; r < w.size; r++ {
		out = append(out, w.slices[r]...)
	}
	c.Barrier()
	return out
}

// Bcast distributes root's value to every rank.
func (c *Comm) Bcast(v float64, root int) float64 {
	w := c.w
	if c.rank == 0 {
		w.collectives.Add(1)
	}
	if c.rank == root {
		w.slots[root] = v
	}
	c.Barrier()
	out := w.slots[root]
	c.Barrier()
	return out
}

// Send delivers a vector to rank `to` (buffered; blocks only if the peer
// has 4 undelivered messages outstanding). The slice is copied.
func (c *Comm) Send(to int, data []float64) error {
	if to < 0 || to >= c.w.size {
		return fmt.Errorf("mpi: send to invalid rank %d", to)
	}
	cp := make([]float64, len(data))
	copy(cp, data)
	c.w.messages.Add(1)
	c.w.p2p[c.rank*c.w.size+to] <- cp
	return nil
}

// Recv blocks for the next message from rank `from`.
func (c *Comm) Recv(from int) ([]float64, error) {
	if from < 0 || from >= c.w.size {
		return nil, fmt.Errorf("mpi: recv from invalid rank %d", from)
	}
	return <-c.w.p2p[from*c.w.size+c.rank], nil
}

// Stats reports how many collectives and point-to-point messages the
// communicator has executed (for overhead accounting).
func (c *Comm) Stats() (collectives, messages int64) {
	return c.w.collectives.Load(), c.w.messages.Load()
}
