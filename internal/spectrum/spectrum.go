// Package spectrum computes the matter power spectrum P(k) used as the
// primary post-hoc analysis for all Nyx fields in the paper (Sec. 2.1).
// P(k) is the Fourier transform of the two-point correlation function; here
// it is estimated directly from the gridded field: the squared magnitude of
// the 3-D DFT, averaged over spherical shells of constant comoving
// wavenumber k.
package spectrum

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/fft"
	"repro/internal/grid"
)

// Spectrum is a shell-binned power spectrum. Bin i covers |k| ∈ [i, i+1)
// in units of the fundamental frequency 2π/L, so K[i] is the mean
// wavenumber of the modes that landed in the bin.
type Spectrum struct {
	K      []float64 // mean |k| per shell
	P      []float64 // mean power per shell
	Counts []int64   // number of modes per shell
}

// Options controls the estimator.
type Options struct {
	// Workers bounds the FFT worker pool; 0 means GOMAXPROCS.
	Workers int
	// Contrast switches to the cosmology convention of transforming the
	// density contrast δ = ρ/ρ̄ − 1 instead of the raw field. The paper's
	// distortion metric is a ratio P'(k)/P(k), which is insensitive to
	// this choice; it matters only for absolute values.
	Contrast bool
}

// Compute estimates the power spectrum of a field.
func Compute(f *grid.Field3D, opt Options) (*Spectrum, error) {
	if f.Nx != f.Ny || f.Ny != f.Nz {
		return nil, fmt.Errorf("spectrum: non-cubic field %s", f)
	}
	n := f.Nx
	data := make([]complex128, f.Len())
	if opt.Contrast {
		mean := f.Mean()
		if mean == 0 {
			return nil, errors.New("spectrum: zero-mean field has no density contrast")
		}
		for i, v := range f.Data {
			data[i] = complex(float64(v)/mean-1, 0)
		}
	} else {
		for i, v := range f.Data {
			data[i] = complex(float64(v), 0)
		}
	}
	plan, err := fft.NewPlan3D(n, n, n, opt.Workers)
	if err != nil {
		return nil, err
	}
	if err := plan.Forward(data); err != nil {
		return nil, err
	}
	return BinShells(data, n), nil
}

// BinShells bins an already-transformed cubic spectrum into integer-|k|
// shells. The normalization is |F|²/N³ so Parseval relates the sum of all
// bins to the field variance.
func BinShells(spec []complex128, n int) *Spectrum {
	nyquist := n / 2
	maxShell := int(math.Ceil(math.Sqrt(3)*float64(nyquist))) + 1
	s := &Spectrum{
		K:      make([]float64, maxShell),
		P:      make([]float64, maxShell),
		Counts: make([]int64, maxShell),
	}
	// Normalize |F|² by N⁶ so the count-weighted shell total equals the
	// mean square of the input (discrete Parseval identity); absolute
	// normalization cancels in every ratio-based metric anyway.
	n3 := float64(n) * float64(n) * float64(n)
	norm := 1 / (n3 * n3)
	idx := 0
	for z := 0; z < n; z++ {
		kz := wrapFreq(z, n)
		for y := 0; y < n; y++ {
			ky := wrapFreq(y, n)
			for x := 0; x < n; x++ {
				kx := wrapFreq(x, n)
				k := math.Sqrt(float64(kx*kx + ky*ky + kz*kz))
				shell := int(k)
				if shell < maxShell {
					v := spec[idx]
					power := (real(v)*real(v) + imag(v)*imag(v)) * norm
					s.K[shell] += k
					s.P[shell] += power
					s.Counts[shell]++
				}
				idx++
			}
		}
	}
	for i := range s.P {
		if s.Counts[i] > 0 {
			s.K[i] /= float64(s.Counts[i])
			s.P[i] /= float64(s.Counts[i])
		}
	}
	return s
}

// wrapFreq maps a DFT bin index to its signed frequency.
func wrapFreq(i, n int) int {
	if i <= n/2 {
		return i
	}
	return i - n
}

// Len returns the number of shells.
func (s *Spectrum) Len() int { return len(s.P) }

// Ratio returns P'(k)/P(k) per shell (NaN where the reference power is 0).
// This is exactly the paper's Fig. 13 quantity.
func Ratio(orig, recon *Spectrum) ([]float64, error) {
	if orig.Len() != recon.Len() {
		return nil, fmt.Errorf("spectrum: shell count mismatch %d vs %d", orig.Len(), recon.Len())
	}
	out := make([]float64, orig.Len())
	for i := range out {
		if orig.P[i] == 0 {
			out[i] = math.NaN()
			continue
		}
		out[i] = recon.P[i] / orig.P[i]
	}
	return out, nil
}

// MaxDeviation returns max_k |P'(k)/P(k) − 1| over shells with
// 0 < k < kMax and nonzero reference power. The k=0 (DC) shell is excluded:
// it carries the mean, which compression preserves almost exactly and which
// the paper's k<10 criterion does not target.
func MaxDeviation(orig, recon *Spectrum, kMax float64) (float64, error) {
	ratios, err := Ratio(orig, recon)
	if err != nil {
		return 0, err
	}
	var m float64
	for i := 1; i < len(ratios); i++ {
		if orig.K[i] >= kMax || orig.Counts[i] == 0 || math.IsNaN(ratios[i]) {
			continue
		}
		d := math.Abs(ratios[i] - 1)
		if d > m {
			m = d
		}
	}
	return m, nil
}

// WithinBand reports whether the reconstructed spectrum stays inside
// 1 ± tol for all shells below kMax — the paper's acceptance criterion is
// tol = 0.01, kMax = 10.
func WithinBand(orig, recon *Spectrum, kMax, tol float64) (bool, error) {
	d, err := MaxDeviation(orig, recon, kMax)
	if err != nil {
		return false, err
	}
	return d <= tol, nil
}

// TotalPower returns the count-weighted sum of shell powers, which by
// Parseval equals the mean square of the (contrast) field.
func (s *Spectrum) TotalPower() float64 {
	var t float64
	for i := range s.P {
		t += s.P[i] * float64(s.Counts[i])
	}
	return t
}
