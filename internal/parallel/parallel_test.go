package parallel

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
)

func TestForEachCoversAllIndices(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7, 100, 1000} {
		var hits sync.Map
		var count atomic.Int64
		ForEach(n, 0, func(i int) {
			if _, dup := hits.LoadOrStore(i, true); dup {
				t.Errorf("n=%d: index %d ran twice", n, i)
			}
			count.Add(1)
		})
		if got := count.Load(); got != int64(n) {
			t.Errorf("n=%d: ran %d indices", n, got)
		}
	}
}

func TestWorkersCallerParticipatesWithEmptyPool(t *testing.T) {
	restore := SetLimit(0)
	defer restore()
	bodies := 0
	Workers(64, 8, func(next func() (int, bool)) {
		bodies++ // no helpers possible: a single body on the caller
		n := 0
		for _, ok := next(); ok; _, ok = next() {
			n++
		}
		if n != 64 {
			t.Errorf("caller drained %d of 64", n)
		}
	})
	if bodies != 1 {
		t.Errorf("%d bodies with an empty pool", bodies)
	}
}

func TestWorkersRespectsMaxCap(t *testing.T) {
	restore := SetLimit(16)
	defer restore()
	var bodies atomic.Int64
	Workers(100, 3, func(next func() (int, bool)) {
		bodies.Add(1)
		for _, ok := next(); ok; _, ok = next() {
		}
	})
	if got := bodies.Load(); got > 3 {
		t.Errorf("%d bodies despite max=3", got)
	}
}

func TestNestedFanOutStaysBounded(t *testing.T) {
	const limit = 3
	restore := SetLimit(limit)
	defer restore()
	// Three nested levels, each wide enough to want many workers. With
	// per-level pools this would peak near 8×8×8 concurrent bodies; the
	// shared pool bounds it to depth × (limit + 1).
	var leaves atomic.Int64
	ForEach(8, 0, func(int) {
		ForEach(8, 0, func(int) {
			ForEach(8, 0, func(int) {
				leaves.Add(1)
			})
		})
	})
	if leaves.Load() != 512 {
		t.Fatalf("ran %d of 512 leaves", leaves.Load())
	}
	if got, bound := Peak(), int64(3*(limit+1)); got > bound {
		t.Errorf("peak %d concurrent bodies exceeds the %d bound", got, bound)
	}
}

func TestWorkersRecruitsHelpers(t *testing.T) {
	restore := SetLimit(4)
	defer restore()
	var bodies atomic.Int64
	gate := make(chan struct{})
	Workers(8, 0, func(next func() (int, bool)) {
		if bodies.Add(1) == 5 { // caller + 4 helpers all arrived
			close(gate)
		}
		<-gate // hold every body until all five are running
		for _, ok := next(); ok; _, ok = next() {
		}
	})
	if got := bodies.Load(); got != 5 {
		t.Errorf("recruited %d bodies, want caller + 4 helpers", got)
	}
	if Peak() < 5 {
		t.Errorf("peak %d never saw all bodies concurrent", Peak())
	}
}

func TestSetLimitRestores(t *testing.T) {
	prev := Limit()
	restore := SetLimit(prev + 7)
	if Limit() != prev+7 {
		t.Fatalf("limit %d after SetLimit(%d)", Limit(), prev+7)
	}
	restore()
	if Limit() != prev {
		t.Fatalf("limit %d after restore, want %d", Limit(), prev)
	}
}

func TestForEachCtxPreCanceledRunsNothing(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int64
	ForEachCtx(ctx, 1000, 0, func(int) { ran.Add(1) })
	if got := ran.Load(); got != 0 {
		t.Errorf("%d indices ran under a pre-canceled context", got)
	}
}

func TestWorkersCtxCancelStopsHandout(t *testing.T) {
	restore := SetLimit(4)
	defer restore()
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	const n = 100000
	ForEachCtx(ctx, n, 0, func(i int) {
		if ran.Add(1) == 10 {
			cancel() // mid-fan-out: later indices must never be handed out
		}
	})
	got := ran.Load()
	if got == 0 || got >= n {
		t.Errorf("ran %d of %d indices, want a strict mid-run cut", got, n)
	}
	// In-flight bodies may each finish the index they already held, but
	// nothing beyond one index per participant can run after the cancel.
	if max := int64(10 + Limit() + 1); got > max {
		t.Errorf("ran %d indices after cancel at 10, want ≤ %d", got, max)
	}
}

// TestCancelReleasesTokens pins the no-leak guarantee the streaming
// cancellation story depends on: a canceled fan-out must return every
// helper token to the pool, leaving the full helper budget available to
// the next fan-out.
func TestCancelReleasesTokens(t *testing.T) {
	restore := SetLimit(3)
	defer restore()
	for round := 0; round < 50; round++ {
		ctx, cancel := context.WithCancel(context.Background())
		var ran atomic.Int64
		ForEachCtx(ctx, 512, 0, func(int) {
			if ran.Add(1) == 5 {
				cancel()
			}
		})
		if got := len(tokens); got != 0 {
			t.Fatalf("round %d: %d helper tokens still checked out after a canceled fan-out", round, got)
		}
	}
	// The pool must still be fully usable: a follow-up fan-out can
	// recruit the whole helper budget again.
	ResetPeak()
	var bodies atomic.Int64
	gate := make(chan struct{})
	Workers(8, 0, func(next func() (int, bool)) {
		if bodies.Add(1) == 4 { // caller + 3 helpers
			close(gate)
		}
		<-gate
		for _, ok := next(); ok; _, ok = next() {
		}
	})
	if got := bodies.Load(); got != 4 {
		t.Errorf("post-cancel fan-out recruited %d bodies, want caller + 3 helpers", got)
	}
}
