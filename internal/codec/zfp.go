package codec

import (
	"context"
	"errors"
	"fmt"
	"math"

	"repro/internal/grid"
	"repro/internal/zfp"
)

// zfpCodec adapts internal/zfp (transform-based, fixed-rate) to the Codec
// interface. Two behaviours:
//
//   - Options.Rate > 0: plain fixed-rate compression, ZFP's native mode.
//   - Options.Rate == 0, ErrorBound > 0: the adapter searches for the
//     cheapest rate whose measured max error meets the bound (geometric
//     ladder then bisection refinement). This is what lets a fixed-rate
//     codec consume the configurator's per-partition error-bound plans —
//     the bound is best effort: if even the maximum rate misses it, the
//     max-rate frame is returned, which is precisely the failure mode the
//     paper cites for rejecting fixed-rate codecs (Sec. 2.2).
//
// The search is single-pass: the field is compressed once at the maximum
// rate with per-block bit accounting (zfp.CompressIndexed), every probe is
// a truncated decode of that one stream (a smaller budget reads a strict
// prefix of each block), and the chosen frame is spliced out of it
// (TruncateToRate) — byte-identical to recompressing at the chosen rate,
// so the probe sequence, the chosen rates, and the archived bits all match
// the old recompress-per-probe search exactly.
type zfpCodec struct{}

func (zfpCodec) ID() ID { return ZFP }

// Rate search bounds: ZFP accepts rates in [0.5, 32] bits/value.
const (
	zfpMinRate     = 0.5
	zfpMaxRate     = 32
	zfpRefineSteps = 3
)

func (z zfpCodec) Compress(data []float32, nx, ny, nz int, opt Options, s *Scratch) (Frame, error) {
	return z.CompressCtx(context.Background(), data, nx, ny, nz, opt, s)
}

// CompressCtx is Compress with mid-compression cancellation: the rate
// search checks ctx before every truncated-decode probe, so a canceled
// context stops a search after the probe in flight instead of running the
// remaining ladder (see codec.CompressCtx).
func (zfpCodec) CompressCtx(ctx context.Context, data []float32, nx, ny, nz int, opt Options, s *Scratch) (Frame, error) {
	if err := validateDims(data, nx, ny, nz); err != nil {
		return nil, err
	}
	f := &grid.Field3D{Nx: nx, Ny: ny, Nz: nz, Data: data}
	if opt.Rate > 0 {
		c, err := zfp.CompressWith(f, zfp.Options{Rate: opt.Rate}, zfpScratch(s))
		if err != nil {
			return nil, err
		}
		return zfpFrame{c: c}, nil
	}
	if opt.ErrorBound <= 0 {
		return nil, errors.New("codec: zfp needs Options.Rate or Options.ErrorBound")
	}
	if opt.Mode != ABS {
		return nil, errors.New("codec: zfp rate search supports ABS error bounds only")
	}
	return compressBounded(ctx, f, opt, s)
}

// zfpLadder is the geometric rate ladder of the bracket search.
var zfpLadder = [...]float64{0.5, 1, 2, 4, 8, 16, 32}

// compressBounded finds the cheapest fixed rate meeting an absolute error
// bound. One compression total; each probe decodes the indexed max-rate
// stream truncated to the probe's budget. The bracket comes from the
// geometric ladder — seeded at the model's predicted rate when
// Options.RateHint is set, so an accurate hint brackets in two probes
// where the unhinted search walks the ladder from the bottom — followed by
// the same bisection refinement either way. Because truncated-stream max
// error is non-increasing in rate, every path settles on the identical
// bracket, so hinted and unhinted searches (and the pre-hint ladder
// search) produce byte-identical frames.
func compressBounded(ctx context.Context, f *grid.Field3D, opt Options, s *Scratch) (Frame, error) {
	eb := opt.ErrorBound
	zs := zfpScratch(s)
	ix, err := zfp.CompressIndexed(f, zfp.Options{Rate: zfpMaxRate}, zs)
	if err != nil {
		return nil, err
	}
	probe := zfpProbe(s, f)
	probes := 0
	try := func(rate float64) (float64, error) {
		if err := ctx.Err(); err != nil {
			return 0, fmt.Errorf("codec: zfp rate search: %w", err)
		}
		probes++
		if err := ix.DecompressAtRateInto(probe, rate, zs); err != nil {
			return 0, err
		}
		return maxAbsErr(f.Data, probe.Data), nil
	}

	// Bracket: start at the ladder rung covering the hint (the bottom rung
	// without one) and walk toward the boundary between failing and
	// passing rungs.
	start := 0
	if opt.RateHint > 0 {
		for start < len(zfpLadder)-1 && zfpLadder[start] < opt.RateHint {
			start++
		}
	}
	lo := 0.0 // highest rate known to miss the bound
	hi := 0.0 // cheapest rate known to meet it
	k := start
	maxErr, err := try(zfpLadder[k])
	if err != nil {
		return nil, err
	}
	if maxErr <= eb {
		for k > 0 {
			below, err := try(zfpLadder[k-1])
			if err != nil {
				return nil, err
			}
			if below > eb {
				break
			}
			k--
		}
		hi = zfpLadder[k]
		if k > 0 {
			lo = zfpLadder[k-1]
		}
	} else {
		lo = zfpLadder[k]
		for k < len(zfpLadder)-1 {
			k++
			maxErr, err := try(zfpLadder[k])
			if err != nil {
				return nil, err
			}
			if maxErr <= eb {
				hi = zfpLadder[k]
				break
			}
			lo = zfpLadder[k]
		}
	}
	if hi == 0 {
		// Even the maximum rate misses the bound: the max-rate stream is
		// the best the codec can do; return it with ErrorBound 0 to signal
		// "no guarantee".
		if opt.Telemetry != nil {
			opt.Telemetry.Probes = probes
			opt.Telemetry.ChosenRate = zfpMaxRate
		}
		return zfpFrame{c: ix.C}, nil
	}
	for i := 0; i < zfpRefineSteps && hi-lo > 0.25 && lo >= zfpMinRate; i++ {
		mid := (lo + hi) / 2
		maxErr, err := try(mid)
		if err != nil {
			return nil, err
		}
		if maxErr <= eb {
			hi = mid
		} else {
			lo = mid
		}
	}
	if opt.Telemetry != nil {
		opt.Telemetry.Probes = probes
		opt.Telemetry.ChosenRate = hi
	}
	c, err := ix.TruncateToRate(hi, zs)
	if err != nil {
		return nil, err
	}
	return zfpFrame{c: c, eb: eb}, nil
}

func maxAbsErr(a, b []float32) float64 {
	var m float64
	for i := range a {
		d := math.Abs(float64(a[i]) - float64(b[i]))
		if d > m {
			m = d
		}
	}
	return m
}

// zfpScratch lazily materializes the ZFP working buffers inside the shared
// per-worker scratch, mirroring szScratch.
func zfpScratch(s *Scratch) *zfp.Scratch {
	if s == nil {
		return nil
	}
	if s.zfp == nil {
		s.zfp = &zfp.Scratch{}
	}
	return s.zfp
}

// zfpProbe returns the rate search's reusable reconstruction buffer, sized
// like f (partitions of one field all share a shape, so steady-state
// probing allocates nothing).
func zfpProbe(s *Scratch, f *grid.Field3D) *grid.Field3D {
	if s == nil {
		return grid.NewField3D(f.Nx, f.Ny, f.Nz)
	}
	if s.zfpProbe == nil || !s.zfpProbe.SameShape(f) {
		s.zfpProbe = grid.NewField3D(f.Nx, f.Ny, f.Nz)
	}
	return s.zfpProbe
}

func (zfpCodec) Parse(body []byte) (Frame, error) {
	c, err := zfp.Parse(body)
	if err != nil {
		return nil, err
	}
	return zfpFrame{c: c}, nil
}

// WrapZFP wraps an already-compressed fixed-rate stream as a Frame — the
// constructor an archive writer uses after compressing partitions itself
// with zfp.CompressIndexed (to keep the bit accounting) rather than
// through the codec adapter. The frame reports ErrorBound 0: fixed-rate
// streams carry no bound guarantee.
func WrapZFP(c *zfp.Compressed) Frame { return zfpFrame{c: c} }

// zfpFrame wraps a fixed-rate stream. eb is the bound the rate search
// verified, kept in memory only: ZFP's native serialization has no bound
// field, so parsed frames report ErrorBound 0 (no guarantee recorded).
type zfpFrame struct {
	c  *zfp.Compressed
	eb float64
}

func (f zfpFrame) CodecID() ID           { return ZFP }
func (f zfpFrame) Dims() (int, int, int) { return f.c.Nx, f.c.Ny, f.c.Nz }
func (f zfpFrame) N() int                { return f.c.N() }
func (f zfpFrame) CompressedSize() int   { return f.c.CompressedSize() }
func (f zfpFrame) BitRate() float64      { return f.c.BitRate() }
func (f zfpFrame) Ratio() float64        { return f.c.Ratio() }
func (f zfpFrame) ErrorBound() float64   { return f.eb }
func (f zfpFrame) Bytes() []byte         { return f.c.Bytes() }

func (f zfpFrame) Decompress() ([]float32, error) {
	g, err := zfp.Decompress(f.c)
	if err != nil {
		return nil, err
	}
	return g.Data, nil
}
