// Package adaptive is the public, versioned facade of the reproduction of
// "Adaptive Configuration of In Situ Lossy Compression for Cosmology
// Simulations via Fine-Grained Rate-Quality Modeling" (Jin et al.,
// HPDC '21). It is the only package external programs should import —
// everything under internal/ is implementation detail with no
// compatibility promise.
//
// The facade wraps the whole stack behind one constructor with functional
// options:
//
//	sys, err := adaptive.New(
//		adaptive.WithCodec("sz"),
//		adaptive.WithPartitionDim(16),
//	)
//
// A System is both the per-snapshot configurator and the streaming driver:
//
//	cal, _ := sys.Calibrate(ctx, field)                  // once per field kind
//	plan, _ := sys.Plan(ctx, field, cal, adaptive.PlanOptions{AvgEB: 0.1})
//	cf, _ := sys.CompressAdaptive(ctx, field, plan)      // per snapshot
//	recon, _ := cf.Decompress(ctx)
//
// or, for a running simulation, the in situ pipeline with calibration
// reuse and drift-triggered refits:
//
//	stats, err := sys.Run(ctx, source)                   // until io.EOF or cancel
//
// # Cancellation
//
// Every long-running entry point takes a context.Context. Cancellation is
// cooperative and checked between partitions (and between steps in a run),
// never mid-partition, so the bitstreams of completed work are bit-exact
// and a canceled streaming run leaves a valid truncated archive: close the
// configured StreamWriter and OpenStream reads every completed step.
//
// # Errors
//
// Failures wrap four sentinels — ErrBadConfig, ErrCorruptArchive,
// ErrCodecUnknown, ErrDriftRecalibration — at every layer boundary, so
// errors.Is classifies any error the facade returns, and cancellations
// satisfy errors.Is(err, context.Canceled).
//
// # Backends
//
// Compression backends are pluggable; the sibling package adaptive/codecs
// registers them and exposes the codec-level interface for programs that
// want raw frame compression without the adaptive machinery.
//
// # Beyond the core pipeline
//
// The facade also re-exports the supporting toolkit the reproduction is
// built on: the synthetic Nyx-like snapshot generator and snapshot file
// I/O (GenerateSnapshot, ReadSnapshotFile), the analysis-aware quality
// metrics (power spectra, halo catalogs), quality-budget derivation
// (SpectrumBudget, HaloBudget), the Foresight-style evaluation harness
// (System.Foresight), and the paper's table/figure reproductions
// (Experiments, NewExperimentContext).
package adaptive
