package core

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/apierr"
	"repro/internal/faultinject"
)

// memFile is an in-memory stand-in for *os.File with file-cursor Write
// semantics: Write appends at the cursor (overwriting any bytes a previous
// WriteAt left beyond it), WriteAt writes without moving the cursor, and
// Truncate cuts the backing store — exactly the behaviors the checkpointed
// stream writer depends on.
type memFile struct {
	data  []byte
	pos   int64
	syncs int
}

func (m *memFile) grow(end int64) {
	if int64(len(m.data)) < end {
		m.data = append(m.data, make([]byte, end-int64(len(m.data)))...)
	}
}

func (m *memFile) Write(b []byte) (int, error) {
	m.grow(m.pos + int64(len(b)))
	copy(m.data[m.pos:], b)
	m.pos += int64(len(b))
	return len(b), nil
}

func (m *memFile) WriteAt(b []byte, off int64) (int, error) {
	m.grow(off + int64(len(b)))
	copy(m.data[off:], b)
	return len(b), nil
}

func (m *memFile) Truncate(n int64) error {
	m.grow(n)
	m.data = m.data[:n]
	return nil
}

func (m *memFile) Sync() error { m.syncs++; return nil }

// snapshot is "what a kill -9 right now would leave on disk".
func (m *memFile) snapshot() []byte { return append([]byte(nil), m.data...) }

// recoverStreamSteps builds a small deterministic multi-step stream and
// returns its bytes plus each step's [offset, end) boundary.
func recoverFixture(t *testing.T, steps int) (data []byte, bounds []int64) {
	t.Helper()
	e := engine(t, Config{PartitionDim: 8})
	var buf bytes.Buffer
	sw, err := NewStreamWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < steps; s++ {
		cf, err := e.CompressStatic(context.Background(), goldenStep(s), 0.05)
		if err != nil {
			t.Fatal(err)
		}
		if err := sw.WriteStep(map[string]*CompressedField{"density": cf}); err != nil {
			t.Fatal(err)
		}
		bounds = append(bounds, int64(buf.Len()))
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), bounds
}

// completeSteps counts the steps fully contained in a length-l prefix.
func completeSteps(bounds []int64, l int64) int {
	n := 0
	for _, b := range bounds {
		if b <= l {
			n++
		}
	}
	return n
}

// TestRecoverStreamGoldenTruncationLadder is the satellite contract: the
// golden v3 fixture truncated at EVERY byte boundary must recover exactly
// the complete-step prefix — never more, never fewer, never a panic.
func TestRecoverStreamGoldenTruncationLadder(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("testdata", "golden_stream.acs"))
	if err != nil {
		t.Skipf("golden fixture missing: %v", err)
	}
	full, err := OpenStream(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	var bounds []int64
	for i := range full.index {
		bounds = append(bounds, int64(full.index[i].Offset+full.index[i].Length))
	}
	for l := int64(0); l <= int64(len(data)); l++ {
		trunc := data[:l]
		sr, rep, err := RecoverStream(bytes.NewReader(trunc), l)
		if l < streamHeaderBytes {
			if err == nil || !errors.Is(err, apierr.ErrCorruptArchive) {
				t.Fatalf("len %d: err = %v, want ErrCorruptArchive", l, err)
			}
			continue
		}
		if err != nil {
			t.Fatalf("len %d: unexpected recovery failure: %v", l, err)
		}
		want := completeSteps(bounds, l)
		if rep.Steps != want || sr.Steps() != want {
			t.Fatalf("len %d: salvaged %d steps (reader %d), want %d", l, rep.Steps, sr.Steps(), want)
		}
		if l == int64(len(data)) {
			if !rep.Clean || rep.TornBytes != 0 {
				t.Fatalf("full stream: Clean=%v TornBytes=%d, want clean recovery", rep.Clean, rep.TornBytes)
			}
		}
	}
	// Spot-check that salvaged steps decode identically to the intact
	// stream's (the ladder above asserts counts; this asserts content).
	cut := bounds[1] + 5 // one full step past step 1's end, torn inside step 2
	if cut >= int64(len(data)) {
		t.Fatal("fixture too small for spot check")
	}
	sr, rep, err := RecoverStream(bytes.NewReader(data[:cut]), cut)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Clean || rep.TornBytes != 5 {
		t.Fatalf("Clean=%v TornBytes=%d, want scan recovery with 5 torn bytes", rep.Clean, rep.TornBytes)
	}
	for i := 0; i < sr.Steps(); i++ {
		wantFields, err := full.ReadStep(i)
		if err != nil {
			t.Fatal(err)
		}
		gotFields, err := sr.ReadStep(i)
		if err != nil {
			t.Fatalf("salvaged step %d: %v", i, err)
		}
		for name, want := range wantFields {
			got := gotFields[name]
			if got == nil {
				t.Fatalf("salvaged step %d missing %q", i, name)
			}
			if !bytes.Equal(got.Bytes(), want.Bytes()) {
				t.Fatalf("salvaged step %d field %q differs from intact stream", i, name)
			}
		}
	}
}

// TestRecoverStreamTornWriter drives the stream writer through a
// deterministic injected tear and salvages the result — the unit-test form
// of the kill -9 scenario.
func TestRecoverStreamTornWriter(t *testing.T) {
	intact, bounds := recoverFixture(t, 4)
	for _, seed := range []int64{1, 2, 3, 4, 5} {
		var buf bytes.Buffer
		tw := faultinject.NewPlan(seed).TornWriterWithin(&buf, streamHeaderBytes, int64(len(intact)))
		sw, err := NewStreamWriter(tw)
		if err != nil {
			t.Fatal(err)
		}
		e := engine(t, Config{PartitionDim: 8})
		var wrote int
		for s := 0; s < 4; s++ {
			cf, err := e.CompressStatic(context.Background(), goldenStep(s), 0.05)
			if err != nil {
				t.Fatal(err)
			}
			if err := sw.WriteStep(map[string]*CompressedField{"density": cf}); err != nil {
				if !errors.Is(err, faultinject.ErrInjected) {
					t.Fatalf("seed %d: unexpected write error: %v", seed, err)
				}
				break
			}
			wrote++
		}
		// The poisoned writer must refuse to finalize a torn stream.
		if tw.Torn() {
			if err := sw.Close(); err == nil {
				t.Fatalf("seed %d: Close on a torn stream succeeded", seed)
			}
		} else {
			t.Fatalf("seed %d: tear inside the stream never fired", seed)
		}
		torn := buf.Bytes()
		sr, rep, err := RecoverStream(bytes.NewReader(torn), int64(len(torn)))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		want := completeSteps(bounds, tw.Written())
		if rep.Steps != want {
			t.Fatalf("seed %d: tore at byte %d, salvaged %d steps, want %d",
				seed, tw.Written(), rep.Steps, want)
		}
		for i := 0; i < sr.Steps(); i++ {
			if _, err := sr.ReadStep(i); err != nil {
				t.Fatalf("seed %d: salvaged step %d unreadable: %v", seed, i, err)
			}
		}
	}
}

// TestRecoverStreamRewrite pins the repair path: a torn stream salvaged by
// RecoverStream and re-serialized with WriteTo must be a complete stream
// the strict OpenStream accepts, with identical step payloads.
func TestRecoverStreamRewrite(t *testing.T) {
	intact, bounds := recoverFixture(t, 3)
	cut := bounds[1] + 9
	sr, _, err := RecoverStream(bytes.NewReader(intact[:cut]), cut)
	if err != nil {
		t.Fatal(err)
	}
	var repaired bytes.Buffer
	if _, err := sr.WriteTo(&repaired); err != nil {
		t.Fatal(err)
	}
	re, err := OpenStream(bytes.NewReader(repaired.Bytes()), int64(repaired.Len()))
	if err != nil {
		t.Fatalf("repaired stream does not open strictly: %v", err)
	}
	if re.Steps() != 2 {
		t.Fatalf("repaired stream has %d steps, want 2", re.Steps())
	}
	full, err := OpenStream(bytes.NewReader(intact), int64(len(intact)))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		want, _ := full.ReadStep(i)
		got, err := re.ReadStep(i)
		if err != nil {
			t.Fatal(err)
		}
		for name := range want {
			if !bytes.Equal(got[name].Bytes(), want[name].Bytes()) {
				t.Fatalf("repaired step %d field %q differs", i, name)
			}
		}
	}
}

// TestCheckpointedWriterByteIdentity: with checkpointing ON, the artifact
// after Close is byte-identical to the plain writer's — snapshots leave no
// residue. (Checkpointing OFF trivially preserves the format: the code
// path is untouched, which the golden fixtures already pin.)
func TestCheckpointedWriterByteIdentity(t *testing.T) {
	plain, _ := recoverFixture(t, 3)
	mf := &memFile{}
	sw, err := NewCheckpointedStreamWriter(mf, CheckpointOptions{Interval: 1, Sync: true})
	if err != nil {
		t.Fatal(err)
	}
	e := engine(t, Config{PartitionDim: 8})
	for s := 0; s < 3; s++ {
		cf, err := e.CompressStatic(context.Background(), goldenStep(s), 0.05)
		if err != nil {
			t.Fatal(err)
		}
		if err := sw.WriteStep(map[string]*CompressedField{"density": cf}); err != nil {
			t.Fatal(err)
		}
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(mf.data, plain) {
		t.Fatalf("checkpointed artifact differs from plain writer's (%d vs %d bytes)", len(mf.data), len(plain))
	}
	if mf.syncs == 0 {
		t.Fatal("Sync cadence never fsynced")
	}
}

// TestCheckpointedWriterCrashPoints kills the writer (by snapshotting the
// backing store) at every interesting moment and asserts the recovery
// contract: crash at a checkpoint → the artifact opens directly with every
// checkpointed step; crash mid-append → RecoverStream salvages all fully
// written steps, losing at most the in-flight one.
func TestCheckpointedWriterCrashPoints(t *testing.T) {
	e := engine(t, Config{PartitionDim: 8})
	mf := &memFile{}
	sw, err := NewCheckpointedStreamWriter(mf, CheckpointOptions{Interval: 2})
	if err != nil {
		t.Fatal(err)
	}
	const steps = 5
	for s := 0; s < steps; s++ {
		cf, err := e.CompressStatic(context.Background(), goldenStep(s), 0.05)
		if err != nil {
			t.Fatal(err)
		}
		if err := sw.WriteStep(map[string]*CompressedField{"density": cf}); err != nil {
			t.Fatal(err)
		}
		crash := mf.snapshot()
		atCheckpoint := (s+1)%2 == 0
		if atCheckpoint {
			// The tail is a valid footer snapshot: zero-cost recovery.
			sr, err := OpenStream(bytes.NewReader(crash), int64(len(crash)))
			if err != nil {
				t.Fatalf("after step %d (checkpoint): artifact not directly openable: %v", s, err)
			}
			if sr.Steps() != s+1 {
				t.Fatalf("after step %d: checkpoint holds %d steps, want %d", s, sr.Steps(), s+1)
			}
		}
		// Either way, RecoverStream gets everything written so far.
		sr, rep, err := RecoverStream(bytes.NewReader(crash), int64(len(crash)))
		if err != nil {
			t.Fatalf("after step %d: %v", s, err)
		}
		if rep.Steps != s+1 {
			t.Fatalf("after step %d: recovered %d steps, want %d", s, rep.Steps, s+1)
		}
		if atCheckpoint != rep.Clean {
			t.Fatalf("after step %d: Clean=%v, want %v", s, rep.Clean, atCheckpoint)
		}
		if _, err := sr.ReadStep(s); err != nil {
			t.Fatalf("after step %d: newest step unreadable: %v", s, err)
		}
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	// After Close the artifact is exact: strict open, no residue.
	if _, err := OpenStream(bytes.NewReader(mf.data), int64(len(mf.data))); err != nil {
		t.Fatalf("closed checkpointed stream does not open: %v", err)
	}
}

// TestCheckpointedWriterRequiresFileSemantics: destinations that cannot
// seek or truncate are rejected up front, not at the first checkpoint.
func TestCheckpointedWriterRequiresFileSemantics(t *testing.T) {
	var buf bytes.Buffer
	if _, err := NewCheckpointedStreamWriter(&buf, CheckpointOptions{}); err == nil {
		t.Fatal("bytes.Buffer accepted as a checkpoint destination")
	}
}

// TestCheckpointedWriterOnRealFile exercises the one true consumer of the
// WriterAt/Truncate contract — *os.File — end to end.
func TestCheckpointedWriterOnRealFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "stream.acs")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	sw, err := NewCheckpointedStreamWriter(f, CheckpointOptions{Interval: 1, Sync: true})
	if err != nil {
		t.Fatal(err)
	}
	e := engine(t, Config{PartitionDim: 8})
	for s := 0; s < 2; s++ {
		cf, err := e.CompressStatic(context.Background(), goldenStep(s), 0.05)
		if err != nil {
			t.Fatal(err)
		}
		if err := sw.WriteStep(map[string]*CompressedField{"density": cf}); err != nil {
			t.Fatal(err)
		}
	}
	// Crash before Close: the file must open at the last checkpoint.
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	ro, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer ro.Close()
	sr, err := OpenStream(ro, st.Size())
	if err != nil {
		t.Fatalf("unclosed checkpointed file not openable: %v", err)
	}
	if sr.Steps() != 2 {
		t.Fatalf("checkpoint holds %d steps, want 2", sr.Steps())
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
}
