package experiments

import (
	"context"
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/nyx"
	"repro/internal/stats"
)

// adaptiveVsStatic compresses one field both ways at the same quality
// budget and returns the two ratios.
func adaptiveVsStatic(eng *core.Engine, f *grid.Field3D, cal *core.Calibration, avgEB float64) (adaptive, static float64, plan *core.Plan, err error) {
	plan, err = eng.Plan(context.Background(), f, cal, core.PlanOptions{AvgEB: avgEB})
	if err != nil {
		return 0, 0, nil, err
	}
	cfA, err := eng.CompressAdaptive(context.Background(), f, plan)
	if err != nil {
		return 0, 0, nil, err
	}
	cfS, err := eng.CompressStatic(context.Background(), f, avgEB)
	if err != nil {
		return 0, 0, nil, err
	}
	return cfA.Ratio(), cfS.Ratio(), plan, nil
}

// Fig16Redshifts reproduces Fig. 16: the adaptive method's gain across a
// redshift sequence, including the static-once variant that optimizes at
// the first snapshot and reuses the configuration.
func Fig16Redshifts(ctx *Context) (*Result, error) {
	redshifts := []float64{54, 51, 48, 45, 42}
	res := &Result{
		ID:    "fig16",
		Title: "Compression ratio across redshifts (baryon density, normalized to adaptive)",
		Cols:  []string{"redshift", "adaptive", "static_once", "traditional"},
	}
	cal, err := ctx.Calibration(nyx.FieldBaryonDensity)
	if err != nil {
		return nil, err
	}
	var earlyPlan *core.Plan
	var rows [][3]float64
	for _, z := range redshifts {
		s, err := ctx.Snapshot(z)
		if err != nil {
			return nil, err
		}
		f, err := s.Field(nyx.FieldBaryonDensity)
		if err != nil {
			return nil, err
		}
		avgEB, err := core.SpectrumBudget(f, core.BudgetOptions{Workers: ctx.Cfg.Workers})
		if err != nil {
			return nil, err
		}
		plan, err := ctx.Engine.Plan(context.Background(), f, cal, core.PlanOptions{AvgEB: avgEB})
		if err != nil {
			return nil, err
		}
		if earlyPlan == nil {
			earlyPlan = plan // optimized once, at the earliest snapshot
		}
		adaptive, err := ctx.Engine.CompressAdaptive(context.Background(), f, plan)
		if err != nil {
			return nil, err
		}
		staticOnce, err := ctx.Engine.CompressAdaptive(context.Background(), f, &core.Plan{
			EBs: earlyPlan.EBs, Features: plan.Features, AvgEB: earlyPlan.AvgEB,
		})
		if err != nil {
			return nil, err
		}
		traditional, err := ctx.Engine.CompressStatic(context.Background(), f, avgEB)
		if err != nil {
			return nil, err
		}
		rows = append(rows, [3]float64{adaptive.Ratio(), staticOnce.Ratio(), traditional.Ratio()})
	}
	for i, z := range redshifts {
		norm := rows[i][0]
		res.AddRow(fnum(z), fnum(1.0), fnum(rows[i][1]/norm), fnum(rows[i][2]/norm))
	}
	res.Notef("static_once reuses the z=%g error-bound map for all later snapshots; re-optimizing recovers the full gain (paper Fig. 16)", redshifts[0])
	return res, nil
}

// Fig17RedshiftEbMaps reproduces Fig. 17: optimized error-bound maps early
// vs late in the simulation — early maps are nearly uniform, late maps
// spread across the clamp box.
func Fig17RedshiftEbMaps(ctx *Context) (*Result, error) {
	cal, err := ctx.Calibration(nyx.FieldTemperature)
	if err != nil {
		return nil, err
	}
	res := &Result{
		ID:    "fig17",
		Title: "Optimized error-bound maps: early vs late redshift (temperature)",
		Cols:  []string{"redshift", "eb_mean", "eb_sd/mean", "eb_max/min"},
	}
	type mapStats struct {
		z    float64
		ebs  []float64
		mean float64
	}
	var maps []mapStats
	for _, z := range []float64{54, 42} {
		s, err := ctx.Snapshot(z)
		if err != nil {
			return nil, err
		}
		f, err := s.Field(nyx.FieldTemperature)
		if err != nil {
			return nil, err
		}
		avgEB, err := core.SpectrumBudget(f, core.BudgetOptions{Workers: ctx.Cfg.Workers})
		if err != nil {
			return nil, err
		}
		plan, err := ctx.Engine.Plan(context.Background(), f, cal, core.PlanOptions{AvgEB: avgEB})
		if err != nil {
			return nil, err
		}
		var m stats.Moments
		for _, eb := range plan.EBs {
			m.Add(eb)
		}
		res.AddRow(fnum(z), fnum(m.Mean()), fnum(m.StdDev()/m.Mean()),
			fnum(m.Max()/math.Max(m.Min(), 1e-300)))
		maps = append(maps, mapStats{z: z, ebs: plan.EBs, mean: m.Mean()})
	}
	// Correlation between normalized maps.
	a, b := maps[0], maps[1]
	var num, da2, db2 float64
	for i := range a.ebs {
		da := a.ebs[i]/a.mean - 1
		db := b.ebs[i]/b.mean - 1
		num += da * db
		da2 += da * da
		db2 += db * db
	}
	if da2 > 0 && db2 > 0 {
		res.Notef("normalized map correlation %.2f — the same regions drive the allocation at both epochs", num/math.Sqrt(da2*db2))
	}
	res.Notef("early-epoch partitions are smoother and closer together, so their optimized bounds are more uniform (paper Fig. 17)")
	return res, nil
}

// Fig18PartitionSize reproduces Fig. 18: the improvement grows as the
// partition size shrinks.
func Fig18PartitionSize(ctx *Context) (*Result, error) {
	f, err := ctx.Field(nyx.FieldBaryonDensity)
	if err != nil {
		return nil, err
	}
	res := &Result{
		ID:    "fig18",
		Title: "Improvement vs partition size (baryon density)",
		Cols:  []string{"partition_dim", "partitions", "adaptive", "static", "improvement"},
	}
	avgEB, err := core.SpectrumBudget(f, core.BudgetOptions{Workers: ctx.Cfg.Workers})
	if err != nil {
		return nil, err
	}
	var dims []int
	for d := ctx.Cfg.PartitionDim; d <= ctx.Cfg.N/2; d *= 2 {
		dims = append(dims, d)
	}
	for _, dim := range dims {
		eng, err := ctx.EngineFor(dim)
		if err != nil {
			return nil, err
		}
		cal, err := eng.Calibrate(context.Background(), f)
		if err != nil {
			return nil, err
		}
		adaptive, static, plan, err := adaptiveVsStatic(eng, f, cal, avgEB)
		if err != nil {
			return nil, err
		}
		res.AddRow(fmt.Sprint(dim), fmt.Sprint(len(plan.EBs)), fnum(adaptive), fnum(static),
			fmt.Sprintf("%+.1f%%", (adaptive/static-1)*100))
	}
	res.Notef("larger partitions average out the quality-ratio differences, shrinking the gain (paper Fig. 18: 56%%→27%% from 64³ to 512³ bricks)")
	return res, nil
}

// Fig19SimulationScale reproduces Fig. 19: the improvement is consistent
// across simulation scales.
func Fig19SimulationScale(ctx *Context) (*Result, error) {
	res := &Result{
		ID:    "fig19",
		Title: "Improvement vs simulation scale (baryon density)",
		Cols:  []string{"scale", "partitions", "adaptive", "static", "improvement"},
	}
	for _, n := range []int{ctx.Cfg.N / 2, ctx.Cfg.N} {
		s, err := nyx.Generate(nyx.Params{N: n, Seed: ctx.Cfg.Seed, Redshift: ctx.Cfg.Redshift, Workers: ctx.Cfg.Workers})
		if err != nil {
			return nil, err
		}
		f, err := s.Field(nyx.FieldBaryonDensity)
		if err != nil {
			return nil, err
		}
		avgEB, err := core.SpectrumBudget(f, core.BudgetOptions{Workers: ctx.Cfg.Workers})
		if err != nil {
			return nil, err
		}
		cal, err := ctx.Engine.Calibrate(context.Background(), f)
		if err != nil {
			return nil, err
		}
		adaptive, static, plan, err := adaptiveVsStatic(ctx.Engine, f, cal, avgEB)
		if err != nil {
			return nil, err
		}
		res.AddRow(fmt.Sprintf("%d^3", n), fmt.Sprint(len(plan.EBs)), fnum(adaptive), fnum(static),
			fmt.Sprintf("%+.1f%%", (adaptive/static-1)*100))
	}
	res.Notef("the gain persists across scales (paper Fig. 19: 56.0%% at 512, 51.9%% at 1024)")
	return res, nil
}

// Sec43Overhead reproduces the Sec. 4.3 measurement: in situ feature
// extraction and optimization cost relative to compression.
func Sec43Overhead(ctx *Context) (*Result, error) {
	res := &Result{
		ID:    "sec43",
		Title: "In situ overhead: feature extraction + optimization vs compression",
		Cols:  []string{"field", "feature_s", "optimize_s", "compress_s", "overhead"},
	}
	var overheads []float64
	for _, name := range []string{nyx.FieldBaryonDensity, nyx.FieldTemperature, nyx.FieldVelocityX} {
		f, err := ctx.Field(name)
		if err != nil {
			return nil, err
		}
		cal, err := ctx.Calibration(name)
		if err != nil {
			return nil, err
		}
		avgEB, err := core.SpectrumBudget(f, core.BudgetOptions{Workers: ctx.Cfg.Workers})
		if err != nil {
			return nil, err
		}
		opt := core.InSituOptions{Ranks: 8, AvgEB: avgEB}
		if name == nyx.FieldBaryonDensity {
			bt, _ := nyx.DefaultHaloConfig()
			opt.Halo = &core.InSituHalo{TBoundary: bt, RefEB: 1, MassBudget: math.Inf(1)}
		}
		_, st, err := ctx.Engine.CompressInSitu(context.Background(), f, cal, opt)
		if err != nil {
			return nil, err
		}
		ov := st.FeatureOverhead()
		overheads = append(overheads, ov)
		res.AddRow(name, fnum(st.FeatureSeconds), fnum(st.OptimizeSeconds),
			fnum(st.CompressSeconds), fmt.Sprintf("%.2f%%", ov*100))
	}
	res.Notef("mean overhead %.2f%% of compression time (paper: ~1%% for the mean, ≤5%% with effective-cell extraction)",
		stats.MeanOf(overheads)*100)
	return res, nil
}
