package model

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/fft"
	"repro/internal/grid"
	"repro/internal/stats"
)

func TestSigmaFFTFormulas(t *testing.T) {
	if got, want := SigmaFFT1D(600, 2.0), math.Sqrt(100)*2; math.Abs(got-want) > 1e-12 {
		t.Errorf("SigmaFFT1D = %v, want %v", got, want)
	}
	// Eq. 9: σ = sqrt(N³/6)·eb.
	if got, want := SigmaFFT3D(64, 0.5), math.Sqrt(64.0*64*64/6)*0.5; math.Abs(got-want) > 1e-9 {
		t.Errorf("SigmaFFT3D = %v, want %v", got, want)
	}
}

func TestSigmaFFT3DMultiEqualsAverage(t *testing.T) {
	// Eq. 10 reduces to the σ at the average error bound.
	ebs := []float64{0.5, 1.5, 1.0, 1.0}
	if got, want := SigmaFFT3DMulti(32, ebs), SigmaFFT3D(32, 1.0); math.Abs(got-want) > 1e-9 {
		t.Errorf("multi σ %v != avg σ %v", got, want)
	}
	if SigmaFFT3DMulti(32, nil) != 0 {
		t.Error("empty ebs should give 0")
	}
}

func TestAverageEBInvertsSigma(t *testing.T) {
	for _, n := range []int{16, 64, 512} {
		eb := AverageEBForFFTSigma(n, SigmaFFT3D(n, 0.37))
		if math.Abs(eb-0.37) > 1e-12 {
			t.Errorf("n=%d: inversion gave %v", n, eb)
		}
	}
}

func TestFFTErrorBudget(t *testing.T) {
	// 2σ confidence: tolerance = 2σ → σ = tol/2.
	n := 64
	eb, err := FFTErrorBudget(n, 100, stats.TwoSigmaConfidence)
	if err != nil {
		t.Fatal(err)
	}
	want := AverageEBForFFTSigma(n, 50)
	if math.Abs(eb-want) > 1e-6*want {
		t.Errorf("budget eb %v, want %v", eb, want)
	}
	if _, err := FFTErrorBudget(n, -1, 0.95); err == nil {
		t.Error("negative tolerance accepted")
	}
	if _, err := FFTErrorBudget(n, 1, 1.5); err == nil {
		t.Error("confidence > 1 accepted")
	}
}

// TestFFTModelAgainstInjectedError validates the heart of Sec. 3.3: inject
// uniform error into a field, FFT it, and compare the empirical bin-error
// σ against sqrt(N³/6)·eb.
func TestFFTModelAgainstInjectedError(t *testing.T) {
	n := 32
	r := stats.NewRNG(42)
	f := grid.NewCube(n)
	for i := range f.Data {
		f.Data[i] = float32(r.NormFloat64() * 50)
	}
	eb := 0.8
	g := f.Clone()
	for i := range g.Data {
		g.Data[i] += float32(r.Uniform(-eb, eb))
	}
	sf, err := fft.Forward3DField(f, 0)
	if err != nil {
		t.Fatal(err)
	}
	sg, err := fft.Forward3DField(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	var m stats.Moments
	for i := range sf {
		d := sg[i] - sf[i]
		m.Add(real(d))
		m.Add(imag(d))
	}
	got := m.StdDev()
	want := SigmaFFT3D(n, eb)
	// sqrt(N³/6)·eb is exactly the per-component (real or imaginary) σ:
	// Var(Re E_k) = Σ_j Var(e_j)·cos²θ_j = (eb²/3)·(N³/2) = N³·eb²/6.
	ratio := got / want
	if ratio < 0.95 || ratio > 1.05 {
		t.Errorf("empirical σ %v vs model %v (ratio %v)", got, want, ratio)
	}
	if math.Abs(m.Mean()) > got/50 {
		t.Errorf("FFT error mean %v not ≈0", m.Mean())
	}
}

func TestHaloModelConstants(t *testing.T) {
	if PFault != 0.25 {
		t.Errorf("PFault = %v", PFault)
	}
	if got := FaultCells(100); got != 25 {
		t.Errorf("FaultCells(100) = %v", got)
	}
	if got := SigmaCellCount(300); math.Abs(got-10) > 1e-12 {
		t.Errorf("SigmaCellCount(300) = %v, want 10", got)
	}
}

func TestMassFault(t *testing.T) {
	// Eq. 11: t_boundary · Σ e_m.
	if got := MassFault(88.16, []float64{1, 2, 3}); math.Abs(got-88.16*6) > 1e-9 {
		t.Errorf("MassFault = %v", got)
	}
	if MassFault(88.16, nil) != 0 {
		t.Error("empty partitions should give 0")
	}
}

func TestMassFaultFromBoundaryCells(t *testing.T) {
	// Two partitions, measured at refEB=1: 40 and 80 boundary cells.
	// At eb = {0.5, 1.0}: n_bc = {20, 80}; faults = {5, 20}; mass = t·25.
	got, err := MassFaultFromBoundaryCells(88.16, 1.0, []int{40, 80}, []float64{0.5, 1.0})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-88.16*25) > 1e-9 {
		t.Errorf("mass fault = %v, want %v", got, 88.16*25)
	}
	if _, err := MassFaultFromBoundaryCells(88, 1, []int{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := MassFaultFromBoundaryCells(88, 0, []int{1}, []float64{1}); err == nil {
		t.Error("zero refEB accepted")
	}
}

func TestHaloBudgetScale(t *testing.T) {
	if s := HaloBudgetScale(100, 200); s != 1 {
		t.Errorf("under-budget scale = %v", s)
	}
	if s := HaloBudgetScale(200, 100); math.Abs(s-0.5) > 1e-12 {
		t.Errorf("over-budget scale = %v, want 0.5", s)
	}
	if s := HaloBudgetScale(0, 100); s != 1 {
		t.Errorf("zero estimate scale = %v", s)
	}
}

func TestMassBudgetFromRMSE(t *testing.T) {
	if b := MassBudgetFromRMSE(1e6, 0.01); b != 1e4 {
		t.Errorf("budget = %v", b)
	}
	if b := MassBudgetFromRMSE(0, 0.01); b != 0 {
		t.Errorf("zero-mass budget = %v", b)
	}
}

func syntheticCurves(nCurves int, c float64, seed uint64) []Curve {
	// C_m = 2 + 0.5·ln(feature), features spread over two decades.
	r := stats.NewRNG(seed)
	curves := make([]Curve, nCurves)
	for i := range curves {
		feat := math.Pow(10, r.Uniform(-1, 1.5))
		cm := 2 + 0.5*math.Log(feat)
		if cm < 0.05 {
			cm = 0.05
		}
		ebs := []float64{0.01, 0.03, 0.1, 0.3, 1, 3}
		brs := make([]float64, len(ebs))
		for j, eb := range ebs {
			noise := 1 + 0.02*r.NormFloat64()
			brs[j] = cm * math.Pow(eb, c) * noise
		}
		curves[i] = Curve{Feature: feat, EBs: ebs, BitRates: brs}
	}
	return curves
}

func TestCalibrateRecoversModel(t *testing.T) {
	curves := syntheticCurves(40, -0.45, 7)
	m, err := Calibrate(curves)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Exponent+0.45) > 0.03 {
		t.Errorf("exponent %v, want −0.45", m.Exponent)
	}
	if math.Abs(m.Alpha-2) > 0.15 || math.Abs(m.Beta-0.5) > 0.1 {
		t.Errorf("C_m fit (α=%v, β=%v), want (2, 0.5)", m.Alpha, m.Beta)
	}
	if m.FitR2 < 0.95 {
		t.Errorf("fit R² = %v", m.FitR2)
	}
	// Prediction accuracy on a fresh feature.
	feat := 3.0
	wantCm := 2 + 0.5*math.Log(feat)
	if got := m.Cm(feat); math.Abs(got-wantCm) > 0.15 {
		t.Errorf("Cm(%v) = %v, want %v", feat, got, wantCm)
	}
	br := m.BitRate(feat, 0.1)
	wantBR := wantCm * math.Pow(0.1, -0.45)
	if math.Abs(br-wantBR)/wantBR > 0.1 {
		t.Errorf("BitRate = %v, want ≈%v", br, wantBR)
	}
}

func TestCalibrateErrors(t *testing.T) {
	if _, err := Calibrate(nil); err == nil {
		t.Error("no curves accepted")
	}
	if _, err := Calibrate([]Curve{{Feature: 1, EBs: []float64{1}, BitRates: []float64{1}},
		{Feature: 2, EBs: []float64{1}, BitRates: []float64{1}}}); err == nil {
		t.Error("single-sample curves accepted")
	}
	// Rising "rate" curves (positive exponent) are not rate curves.
	bad := []Curve{
		{Feature: 1, EBs: []float64{0.1, 1}, BitRates: []float64{1, 2}},
		{Feature: 2, EBs: []float64{0.1, 1}, BitRates: []float64{2, 4}},
	}
	if _, err := Calibrate(bad); err == nil {
		t.Error("positive exponent accepted")
	}
}

func TestDatasetBitRate(t *testing.T) {
	m := &RateModel{Exponent: -0.5, Alpha: 1, Beta: 0}
	br, err := m.DatasetBitRate([]float64{1, 1}, []float64{1, 4})
	if err != nil {
		t.Fatal(err)
	}
	// b = 1·eb^-0.5 → {1, 0.5} → avg 0.75.
	if math.Abs(br-0.75) > 1e-12 {
		t.Errorf("dataset bit rate %v, want 0.75", br)
	}
	if _, err := m.DatasetBitRate([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := m.DatasetBitRate(nil, nil); err == nil {
		t.Error("empty input accepted")
	}
}

func TestRateModelGuards(t *testing.T) {
	m := &RateModel{Exponent: -0.5, Alpha: 1, Beta: 0.2, MinC: 0.1}
	if c := m.Cm(-5); c < 0.1 {
		t.Errorf("negative feature gave Cm %v below floor", c)
	}
	if br := m.BitRate(1, 0); !math.IsInf(br, 1) {
		t.Errorf("eb=0 bit rate %v", br)
	}
	bad := &RateModel{Exponent: 0.5}
	if err := bad.Validate(); err == nil {
		t.Error("positive exponent validated")
	}
	var nilModel *RateModel
	if err := nilModel.Validate(); err == nil {
		t.Error("nil model validated")
	}
}

func TestExactCms(t *testing.T) {
	curves := syntheticCurves(10, -0.5, 11)
	m, err := Calibrate(curves)
	if err != nil {
		t.Fatal(err)
	}
	exact := m.ExactCms(curves)
	if len(exact) != len(curves) {
		t.Fatalf("got %d Cms", len(exact))
	}
	// Exact coefficients should predict the curves well.
	for i, cu := range curves {
		for j := range cu.EBs {
			pred := exact[i] * math.Pow(cu.EBs[j], m.Exponent)
			if math.Abs(pred-cu.BitRates[j])/cu.BitRates[j] > 0.15 {
				t.Errorf("curve %d sample %d: pred %v vs %v", i, j, pred, cu.BitRates[j])
			}
		}
	}
}

func TestMedian(t *testing.T) {
	if m := median([]float64{3, 1, 2}); m != 2 {
		t.Errorf("odd median %v", m)
	}
	if m := median([]float64{4, 1, 3, 2}); m != 2.5 {
		t.Errorf("even median %v", m)
	}
	if !math.IsNaN(median(nil)) {
		t.Error("empty median not NaN")
	}
}

// Property: MassFaultFromBoundaryCells is linear in a uniform eb scale.
func TestQuickMassFaultLinearity(t *testing.T) {
	f := func(scaleSeed uint8) bool {
		scale := 0.1 + float64(scaleSeed)/64
		n := []int{10, 20, 30}
		eb1 := []float64{0.5, 1, 2}
		eb2 := make([]float64, len(eb1))
		for i := range eb1 {
			eb2[i] = eb1[i] * scale
		}
		a, err1 := MassFaultFromBoundaryCells(88, 1, n, eb1)
		b, err2 := MassFaultFromBoundaryCells(88, 1, n, eb2)
		if err1 != nil || err2 != nil {
			return false
		}
		return math.Abs(b-a*scale) < 1e-9*(1+a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
