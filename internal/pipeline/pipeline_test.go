package pipeline

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"testing"

	"repro/internal/apierr"
	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/nyx"
	"repro/internal/parallel"
)

// testSteps materializes an evolving run so tests can compare against the
// originals after decoding the stream archive.
func testSteps(t *testing.T, n, steps int, fields ...string) []map[string]*grid.Field3D {
	t.Helper()
	st, err := nyx.NewStream(nyx.StreamParams{
		Base:   nyx.Params{N: n, Seed: 7, Redshift: 42},
		Steps:  steps,
		Fields: fields,
	})
	if err != nil {
		t.Fatal(err)
	}
	var out []map[string]*grid.Field3D
	for {
		snap, err := st.Next()
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, snap)
	}
}

// TestPipelineStreamSZ is the end-to-end tentpole test: an 8-step two-field
// evolving run through the sz backend, streamed into an archive v3
// container, with drift-triggered recalibration.
func TestPipelineStreamSZ(t *testing.T) {
	steps := testSteps(t, 32, 8, nyx.FieldBaryonDensity, nyx.FieldVelocityX)

	var buf bytes.Buffer
	sw, err := core.NewStreamWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	drv, err := New(core.Config{PartitionDim: 8}, Options{
		Policy:         DriftTriggered,
		DriftThreshold: 0.25,
		RelAvgEB:       0.1,
		Writer:         sw,
	})
	if err != nil {
		t.Fatal(err)
	}
	run, err := drv.Run(context.Background(), FromSnapshots(steps))
	if err != nil {
		t.Fatal(err)
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}

	if len(run.Steps) != 8 {
		t.Fatalf("run has %d steps, want 8", len(run.Steps))
	}
	if run.Ratio() <= 1 {
		t.Errorf("run ratio %.2f, want > 1", run.Ratio())
	}
	// The density field drifts ~16 % per step: with a 25 % threshold the
	// run must react after the initial fits (drift is real) but far less
	// than once per field per step (calibration is amortized). Drift events
	// with a healthy model are absorbed by O(1) rescales, so the reaction
	// count is recalibrations plus corrections.
	if reacted := run.Recalibrations + run.ModelCorrections; reacted <= 2 {
		t.Errorf("%d recalibrations + %d corrections; drift never triggered",
			run.Recalibrations, run.ModelCorrections)
	}
	if run.ModelCorrections == 0 {
		t.Error("no drift event was absorbed by an O(1) model correction")
	}
	if run.Recalibrations >= 16 {
		t.Errorf("%d recalibrations for 16 field-steps; nothing was reused", run.Recalibrations)
	}
	// Step 0 calibrates both fields; later steps only on drift.
	if got := run.Steps[0].Recalibrations; got != 2 {
		t.Errorf("step 0 made %d calibrations, want 2", got)
	}
	for _, st := range run.Steps {
		if st.Ratio() <= 1 {
			t.Errorf("step %d ratio %.2f, want > 1", st.Step, st.Ratio())
		}
		for _, fs := range st.Fields {
			if fs.BitRate <= 0 || fs.BitRate >= 32 {
				t.Errorf("step %d field %s bit rate %.2f out of range", st.Step, fs.Name, fs.BitRate)
			}
			if st.Step > 0 && fs.Name == nyx.FieldBaryonDensity && fs.Drift == 0 {
				t.Errorf("step %d density drift is 0; monitor is dead", st.Step)
			}
		}
	}

	// The archive must hold every step, seekable in any order, and decode
	// within each field's clamp-band error bound (sz guarantees bounds).
	sr, err := core.OpenStream(bytes.NewReader(buf.Bytes()), int64(buf.Len()))
	if err != nil {
		t.Fatal(err)
	}
	if sr.Steps() != 8 {
		t.Fatalf("archive has %d steps, want 8", sr.Steps())
	}
	for _, i := range []int{7, 0, 4} {
		decoded, err := sr.ReadStep(i)
		if err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		for _, fs := range run.Steps[i].Fields {
			cf := decoded[fs.Name]
			if cf == nil {
				t.Fatalf("step %d archive missing field %s", i, fs.Name)
			}
			recon, err := cf.Decompress(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			orig := steps[i][fs.Name]
			maxEB := 4 * fs.AvgEB // the engine's clamp-band ceiling
			var worst float64
			for j := range orig.Data {
				d := math.Abs(float64(orig.Data[j]) - float64(recon.Data[j]))
				if d > worst {
					worst = d
				}
			}
			if worst > maxEB*(1+1e-6) {
				t.Errorf("step %d field %s: max error %g exceeds clamp ceiling %g",
					i, fs.Name, worst, maxEB)
			}
		}
	}
}

// TestPipelineStreamZFP runs the same ≥8-step pipeline through the zfp
// backend: the driver must be codec-agnostic end to end.
func TestPipelineStreamZFP(t *testing.T) {
	steps := testSteps(t, 32, 8, nyx.FieldBaryonDensity)
	var buf bytes.Buffer
	sw, err := core.NewStreamWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	drv, err := New(core.Config{PartitionDim: 8, Codec: codec.ZFP}, Options{
		Policy:         DriftTriggered,
		DriftThreshold: 0.25,
		Writer:         sw,
	})
	if err != nil {
		t.Fatal(err)
	}
	run, err := drv.Run(context.Background(), FromSnapshots(steps))
	if err != nil {
		t.Fatal(err)
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	if len(run.Steps) != 8 {
		t.Fatalf("run has %d steps, want 8", len(run.Steps))
	}
	if run.Ratio() <= 1 {
		t.Errorf("zfp run ratio %.2f, want > 1", run.Ratio())
	}
	sr, err := core.OpenStream(bytes.NewReader(buf.Bytes()), int64(buf.Len()))
	if err != nil {
		t.Fatal(err)
	}
	last, err := sr.ReadStep(7)
	if err != nil {
		t.Fatal(err)
	}
	cf := last[nyx.FieldBaryonDensity]
	if cf == nil || cf.Codec != codec.ZFP {
		t.Fatalf("archived step 7 codec = %v, want zfp", cf)
	}
	if _, err := cf.Decompress(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestPipelinePolicies compares the three recalibration schedules on the
// same run: drift-triggered must recalibrate strictly fewer times than
// calibrate-every-step while staying within 5 % of its bit rate.
func TestPipelinePolicies(t *testing.T) {
	steps := testSteps(t, 32, 8, nyx.FieldBaryonDensity)
	runFor := func(p Policy) *RunStats {
		t.Helper()
		drv, err := New(core.Config{PartitionDim: 8}, Options{
			Policy: p, DriftThreshold: 0.25,
		})
		if err != nil {
			t.Fatal(err)
		}
		run, err := drv.Run(context.Background(), FromSnapshots(steps))
		if err != nil {
			t.Fatal(err)
		}
		return run
	}
	every := runFor(CalibrateEveryStep)
	once := runFor(CalibrateOnce)
	drift := runFor(DriftTriggered)

	if every.Recalibrations != 8 {
		t.Errorf("every-step made %d calibrations, want 8", every.Recalibrations)
	}
	if once.Recalibrations != 1 {
		t.Errorf("calibrate-once made %d calibrations, want 1", once.Recalibrations)
	}
	if drift.Recalibrations >= every.Recalibrations {
		t.Errorf("drift-triggered made %d calibrations, not fewer than every-step's %d",
			drift.Recalibrations, every.Recalibrations)
	}
	if reacted := drift.Recalibrations + drift.ModelCorrections; reacted <= 1 {
		t.Errorf("drift-triggered made %d calibrations + %d corrections; drift never triggered",
			drift.Recalibrations, drift.ModelCorrections)
	}
	if every.ModelCorrections != 0 || once.ModelCorrections != 0 {
		t.Errorf("corrections outside DriftTriggered: every=%d once=%d",
			every.ModelCorrections, once.ModelCorrections)
	}
	rel := math.Abs(drift.BitRate()/every.BitRate() - 1)
	if rel > 0.05 {
		t.Errorf("drift-triggered bit rate %.3f vs every-step %.3f: %.1f%% apart, want ≤ 5%%",
			drift.BitRate(), every.BitRate(), rel*100)
	}
	// Identical budgets, identical data: the three policies' compressed
	// sizes may differ only through allocation, never by construction.
	if drift.Cells != every.Cells || once.Cells != every.Cells {
		t.Errorf("cell counts diverged: %d/%d/%d", drift.Cells, once.Cells, every.Cells)
	}
	// Throughput plumbing: any run that compressed cells in nonzero time
	// must report a positive rate, and steps must agree with their run.
	if once.CompressSeconds > 0 && once.CompressMBPerSec() <= 0 {
		t.Errorf("run CompressMBPerSec = %v with %v compress seconds",
			once.CompressMBPerSec(), once.CompressSeconds)
	}
	for _, st := range once.Steps {
		if st.CompressSeconds > 0 && st.CompressMBPerSec() <= 0 {
			t.Errorf("step %d CompressMBPerSec = %v", st.Step, st.CompressMBPerSec())
		}
	}
}

// TestDriverCalibrationReuse: state survives across Run calls, so a second
// segment of the same simulation does not refit.
func TestDriverCalibrationReuse(t *testing.T) {
	steps := testSteps(t, 32, 4, nyx.FieldBaryonDensity)
	drv, err := New(core.Config{PartitionDim: 8}, Options{Policy: CalibrateOnce})
	if err != nil {
		t.Fatal(err)
	}
	if drv.Calibration(nyx.FieldBaryonDensity) != nil {
		t.Fatal("calibration exists before any step")
	}
	first, err := drv.Run(context.Background(), FromSnapshots(steps[:2]))
	if err != nil {
		t.Fatal(err)
	}
	cal := drv.Calibration(nyx.FieldBaryonDensity)
	if cal == nil {
		t.Fatal("no calibration after first run")
	}
	second, err := drv.Run(context.Background(), FromSnapshots(steps[2:]))
	if err != nil {
		t.Fatal(err)
	}
	if first.Recalibrations != 1 || second.Recalibrations != 0 {
		t.Errorf("recalibrations %d/%d across runs, want 1/0",
			first.Recalibrations, second.Recalibrations)
	}
	if drv.Calibration(nyx.FieldBaryonDensity) != cal {
		t.Error("second run replaced the calibration under CalibrateOnce")
	}
}

func TestPipelineBudgetOverride(t *testing.T) {
	steps := testSteps(t, 32, 1, nyx.FieldBaryonDensity)
	drv, err := New(core.Config{PartitionDim: 8}, Options{
		AvgEBs: map[string]float64{nyx.FieldBaryonDensity: 0.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	run, err := drv.Run(context.Background(), FromSnapshots(steps))
	if err != nil {
		t.Fatal(err)
	}
	if got := run.Steps[0].Fields[0].AvgEB; got != 0.5 {
		t.Errorf("budget %.3g, want the 0.5 override", got)
	}
	if _, err := New(core.Config{}, Options{AvgEBs: map[string]float64{"x": -1}}); err == nil {
		t.Error("negative budget override accepted")
	}
	if _, err := New(core.Config{}, Options{RelAvgEB: -0.1}); err == nil {
		t.Error("negative RelAvgEB accepted")
	}
	if _, err := New(core.Config{}, Options{DriftThreshold: -1}); err == nil {
		t.Error("negative drift threshold accepted")
	}
}

func TestPipelineSourceAdapters(t *testing.T) {
	steps := testSteps(t, 16, 2, nyx.FieldBaryonDensity)

	ch := make(chan map[string]*grid.Field3D, len(steps))
	for _, s := range steps {
		ch <- s
	}
	close(ch)
	drv, err := New(core.Config{PartitionDim: 8}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	run, err := drv.Run(context.Background(), FromChannel(ch))
	if err != nil {
		t.Fatal(err)
	}
	if len(run.Steps) != 2 {
		t.Errorf("channel source yielded %d steps, want 2", len(run.Steps))
	}

	// A source error aborts the run but returns the stats so far.
	boom := errors.New("boom")
	n := 0
	src := SourceFunc(func() (map[string]*grid.Field3D, error) {
		if n++; n > 1 {
			return nil, boom
		}
		return steps[0], nil
	})
	run, err = drv.Run(context.Background(), src)
	if !errors.Is(err, boom) {
		t.Fatalf("source error not propagated: %v", err)
	}
	if len(run.Steps) != 1 {
		t.Errorf("partial run kept %d steps, want 1", len(run.Steps))
	}

	// An empty snapshot is a driver error.
	if _, err := drv.Step(context.Background(), nil); err == nil {
		t.Error("empty snapshot accepted")
	}
}

// TestNestedFanOutBounded pins the shared-pool contract end to end: a step
// with FieldWorkers > 1, multi-partition fields, and the zfp codec (whose
// big partitions fan out once more at block level) must keep the number of
// concurrently running fan-out bodies at O(pool limit) — with per-level
// worker pools this configuration would schedule fields × partitions ×
// block-chunks goroutines.
func TestNestedFanOutBounded(t *testing.T) {
	const limit = 3
	restore := parallel.SetLimit(limit)
	defer restore()

	// Two 64³ fields of 8 partitions each; 32³ partitions are 512 blocks,
	// above zfp's block-parallel threshold, so all three levels fan out.
	steps := testSteps(t, 64, 1, nyx.FieldBaryonDensity, nyx.FieldTemperature)
	drv, err := New(core.Config{PartitionDim: 32, Codec: codec.ZFP},
		Options{FieldWorkers: 4, Policy: CalibrateOnce})
	if err != nil {
		t.Fatal(err)
	}
	parallel.ResetPeak()
	if _, err := drv.Step(context.Background(), steps[0]); err != nil {
		t.Fatal(err)
	}
	// Three nested levels (fields → partitions → block chunks), each
	// adding at most limit helpers plus its callers' own bodies.
	if got, bound := parallel.Peak(), int64(3*(limit+1)); got > bound {
		t.Errorf("nested step peaked at %d concurrent fan-out bodies, bound %d", got, bound)
	}
	if parallel.Peak() < 2 {
		t.Errorf("fan-out never went concurrent (peak %d) — pool helpers were not recruited", parallel.Peak())
	}
}

// TestRunCancelBetweenSteps cancels from the OnStep callback: the run must
// stop within one step with context.Canceled, keep the stats of every
// completed step, and — because no partial step ever reaches the writer —
// leave a stream that Close turns into a valid truncated v3 archive.
func TestRunCancelBetweenSteps(t *testing.T) {
	steps := testSteps(t, 32, 8, nyx.FieldBaryonDensity)

	var buf bytes.Buffer
	sw, err := core.NewStreamWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	const cancelAfter = 3
	drv, err := New(core.Config{PartitionDim: 8}, Options{
		Writer: sw,
		OnStep: func(st *StepStats) {
			if st.Step == cancelAfter-1 {
				cancel()
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	run, err := drv.Run(ctx, FromSnapshots(steps))
	if err == nil {
		t.Fatal("run completed despite mid-run cancel")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("errors.Is(err, context.Canceled) is false: %v", err)
	}
	if len(run.Steps) != cancelAfter {
		t.Fatalf("run kept %d steps, want the %d completed before cancel", len(run.Steps), cancelAfter)
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	sr, err := core.OpenStream(bytes.NewReader(buf.Bytes()), int64(buf.Len()))
	if err != nil {
		t.Fatalf("truncated stream did not open: %v", err)
	}
	if sr.Steps() != cancelAfter {
		t.Fatalf("truncated stream has %d steps, want %d", sr.Steps(), cancelAfter)
	}
	for i := 0; i < sr.Steps(); i++ {
		fields, err := sr.ReadStep(i)
		if err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		cf := fields[nyx.FieldBaryonDensity]
		recon, err := cf.Decompress(context.Background())
		if err != nil {
			t.Fatalf("step %d decompress: %v", i, err)
		}
		if recon.Len() != steps[i][nyx.FieldBaryonDensity].Len() {
			t.Fatalf("step %d reconstructed %d cells", i, recon.Len())
		}
	}
}

// TestRunCancelMidStep cancels while a step is compressing (the source
// cancels right after handing out its snapshot): the step must fail with
// context.Canceled, the partial step must not reach the writer, and no
// pool tokens may leak.
func TestRunCancelMidStep(t *testing.T) {
	steps := testSteps(t, 32, 4, nyx.FieldBaryonDensity)

	var buf bytes.Buffer
	sw, err := core.NewStreamWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	served := 0
	src := SourceFunc(func() (map[string]*grid.Field3D, error) {
		if served >= len(steps) {
			return nil, io.EOF
		}
		snap := steps[served]
		served++
		if served == 3 {
			cancel() // the driver is handed the snapshot, then sees the cancel mid-step
		}
		return snap, nil
	})
	drv, err := New(core.Config{PartitionDim: 8}, Options{Writer: sw})
	if err != nil {
		t.Fatal(err)
	}
	run, err := drv.Run(ctx, src)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("errors.Is(err, context.Canceled) is false: %v", err)
	}
	if len(run.Steps) != 2 {
		t.Fatalf("run kept %d steps, want 2 completed before the mid-step cancel", len(run.Steps))
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	sr, err := core.OpenStream(bytes.NewReader(buf.Bytes()), int64(buf.Len()))
	if err != nil {
		t.Fatalf("truncated stream did not open: %v", err)
	}
	if sr.Steps() != 2 {
		t.Fatalf("canceled step leaked into the archive: %d steps, want 2", sr.Steps())
	}
}

// TestRefitFailureTagging pins the classification of mid-run
// recalibration failures: real fit failures carry the drift sentinel, but
// the run's own cancellation surfacing inside Calibrate must classify as
// context.Canceled only — a clean shutdown is not a bad stream.
func TestRefitFailureTagging(t *testing.T) {
	fitErr := errors.New("core: rate-model fit: degenerate curves")
	err := tagRefitFailure("rho", 0.4, fitErr)
	if !errors.Is(err, apierr.ErrDriftRecalibration) || !errors.Is(err, fitErr) {
		t.Fatalf("fit failure lost its tagging: %v", err)
	}
	var dre *apierr.DriftRecalibrationError
	if !errors.As(err, &dre) || dre.Field != "rho" || dre.Drift != 0.4 {
		t.Fatalf("typed error: %+v", dre)
	}

	for _, cancelErr := range []error{
		fmt.Errorf("core: calibration: %w", context.Canceled),
		fmt.Errorf("core: calibration: %w", context.DeadlineExceeded),
	} {
		err := tagRefitFailure("rho", 0.4, cancelErr)
		if errors.Is(err, apierr.ErrDriftRecalibration) {
			t.Fatalf("cancellation misclassified as drift failure: %v", err)
		}
		if err != cancelErr {
			t.Fatalf("cancellation rewrapped: %v", err)
		}
	}
}

// TestStepCompressedIsolatesFieldFailures: the service batches unrelated
// tenants' fields into one step, so one bad field must fail alone — the
// per-field Errs map carries it while its batch-mates still compress.
func TestStepCompressedIsolatesFieldFailures(t *testing.T) {
	steps := testSteps(t, 32, 1, nyx.FieldBaryonDensity)
	drv, err := New(core.Config{PartitionDim: 8}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	bad := grid.NewCube(12) // 12 % 8 != 0: partitioning must reject it
	for i := range bad.Data {
		bad.Data[i] = float32(i)
	}
	snap := map[string]*grid.Field3D{
		"good": steps[0][nyx.FieldBaryonDensity],
		"bad":  bad,
	}
	res, err := drv.StepCompressed(context.Background(), snap, StepOptions{})
	if err != nil {
		t.Fatalf("batch-level error for a single bad field: %v", err)
	}
	if res.Errs["bad"] == nil {
		t.Fatal("bad field's error lost")
	}
	if res.Fields["bad"] != nil {
		t.Fatal("bad field produced output")
	}
	cf := res.Fields["good"]
	if cf == nil {
		t.Fatal("good field aborted by its batch-mate")
	}
	if _, err := cf.Decompress(context.Background()); err != nil {
		t.Fatal(err)
	}
	if res.Stats.Bytes != int64(cf.CompressedSize()) {
		t.Fatalf("stats count failed fields: bytes %d, want %d", res.Stats.Bytes, cf.CompressedSize())
	}

	// Step over the same snapshot keeps the all-or-nothing contract.
	if _, err := drv.Step(context.Background(), snap); err == nil {
		t.Fatal("Step accepted a snapshot with a failing field")
	}
}

// TestStepCompressedBudgetScale: scaling the budget up for one step must
// cost fewer bits than the unscaled step, leave the stored budget
// unscaled, and report the effective (scaled) budget in the stats — the
// contract the service's load controller steps rate targets through.
func TestStepCompressedBudgetScale(t *testing.T) {
	steps := testSteps(t, 32, 1, nyx.FieldBaryonDensity)
	snap := steps[0]

	bitRateAt := func(scale float64) (bitRate, avgEB float64) {
		drv, err := New(core.Config{PartitionDim: 8}, Options{})
		if err != nil {
			t.Fatal(err)
		}
		res, err := drv.StepCompressed(context.Background(), snap, StepOptions{BudgetScale: scale})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Errs) > 0 {
			t.Fatalf("per-field errors: %v", res.Errs)
		}
		return res.Stats.BitRate(), res.Stats.Fields[0].AvgEB
	}

	base, baseEB := bitRateAt(0) // 0 = unscaled
	loose, looseEB := bitRateAt(8)
	if loose >= base {
		t.Fatalf("8× budget did not reduce the bit rate: %.3f → %.3f bits/value", base, loose)
	}
	if math.Abs(looseEB-8*baseEB) > 1e-12*looseEB {
		t.Fatalf("effective budget %g not 8× the base %g", looseEB, baseEB)
	}

	// A negative scale is a config error.
	drv, err := New(core.Config{PartitionDim: 8}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := drv.StepCompressed(context.Background(), snap, StepOptions{BudgetScale: -1}); !errors.Is(err, apierr.ErrBadConfig) {
		t.Fatalf("negative budget scale accepted: %v", err)
	}
}
