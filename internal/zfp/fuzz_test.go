package zfp

import (
	"encoding/binary"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/grid"
)

// Fuzz harness for the fixed-rate stream parser and decoder: whatever the
// bytes, Parse must return an error or a Compressed whose decode never
// panics — and must never trust header-claimed geometry (dimensions are
// bounded, the rate must be valid, and the implied block count is capped by
// the payload size; the hostile seeds pin those guards). The seed corpus is
// checked in under testdata/fuzz/FuzzParse; regenerate with
//
//	go test ./internal/zfp -run TestWriteFuzzCorpus -update-fuzz-corpus
//
// and extend coverage any time with
//
//	go test ./internal/zfp -fuzz=FuzzParse -fuzztime=30s

var updateFuzzCorpus = flag.Bool("update-fuzz-corpus", false, "rewrite the checked-in fuzz seed corpus")

// hostileHeader builds a structurally valid header claiming a 2³⁰-cell
// field behind a one-byte payload: the parser must reject it from the
// block-count/payload-size relation instead of letting the decoder
// preallocate gigabytes.
func hostileHeader() []byte {
	out := make([]byte, headerSize, headerSize+1)
	copy(out[0:4], magic)
	binary.LittleEndian.PutUint32(out[4:8], 1)
	binary.LittleEndian.PutUint32(out[8:12], 1<<10)
	binary.LittleEndian.PutUint32(out[12:16], 1<<10)
	binary.LittleEndian.PutUint32(out[16:20], 1<<10)
	binary.LittleEndian.PutUint64(out[20:28], math.Float64bits(8))
	return append(out, 0xA5)
}

// nanRateHeader claims a NaN rate over an otherwise valid tiny stream.
func nanRateHeader(valid []byte) []byte {
	out := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint64(out[20:28], math.Float64bits(math.NaN()))
	return out
}

func fuzzSeedStreams(tb testing.TB) [][]byte {
	tb.Helper()
	encode := func(f *grid.Field3D, rate float64) []byte {
		c, err := Compress(f, Options{Rate: rate})
		if err != nil {
			tb.Fatal(err)
		}
		return c.Bytes()
	}
	smooth := smoothField(8, 41)
	ragged := grid.NewField3D(7, 5, 6)
	for i := range ragged.Data {
		ragged.Data[i] = float32(i%13) * 0.75
	}
	return [][]byte{
		encode(smooth, 8),
		encode(smooth, 0.5),
		encode(ragged, 19),
		encode(grid.NewCube(8), 4), // all-zero blocks
	}
}

func fuzzSeedMutations(valid [][]byte) [][]byte {
	out := [][]byte{
		nil,
		[]byte("ZFPG"),
		[]byte("XXXXxxxxxxxxxxxxxxxxxxxxxxxxxxxx"),
		hostileHeader(),
	}
	for _, v := range valid {
		if len(v) < headerSize {
			continue
		}
		out = append(out, v[:headerSize]) // payload stripped
		out = append(out, v[:len(v)-(len(v)-headerSize)/2])
		flip := append([]byte(nil), v...)
		flip[len(flip)-1] ^= 0x40
		out = append(out, flip)
		dims := append([]byte(nil), v...)
		binary.LittleEndian.PutUint32(dims[8:12], 0xFFFFFFFF) // negative Nx
		out = append(out, dims)
		out = append(out, nanRateHeader(v))
	}
	return out
}

func FuzzParse(f *testing.F) {
	seeds := fuzzSeedStreams(f)
	for _, s := range seeds {
		f.Add(s)
	}
	for _, s := range fuzzSeedMutations(seeds) {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := Parse(data)
		if err != nil {
			return // malformed input must error, which it did
		}
		// A parsed stream must re-serialize to the same bytes (the header
		// and payload are carried verbatim).
		blob := c.Bytes()
		if len(blob) != len(data) {
			t.Fatalf("re-serialization changed length: %d -> %d", len(data), len(blob))
		}
		// Decoding a parsed stream of sane size must not panic; truncated
		// payloads may error, which is fine.
		if c.N() <= 1<<18 {
			if g, err := Decompress(c); err == nil {
				if g.Nx != c.Nx || g.Ny != c.Ny || g.Nz != c.Nz {
					t.Fatalf("decode changed dimensions: %v", g)
				}
			}
		}
	})
}

// TestParseHostileHeaders pins the hardening directly: oversized claims and
// invalid rates must fail fast, without payload-sized allocation.
func TestParseHostileHeaders(t *testing.T) {
	if _, err := Parse(hostileHeader()); err == nil {
		t.Fatal("2^30-cell claim over a 1-byte payload parsed without error")
	}
	valid := fuzzSeedStreams(t)[0]
	if _, err := Parse(nanRateHeader(valid)); err == nil {
		t.Fatal("NaN rate accepted")
	}
	tiny := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint64(tiny[20:28], math.Float64bits(0.01))
	if _, err := Parse(tiny); err == nil {
		t.Fatal("rate below 0.5 accepted")
	}
	huge := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint32(huge[8:12], 1<<26) // cbx beyond maxBlocksPerAxis
	if _, err := Parse(huge); err == nil {
		t.Fatal("dimension beyond the supported range accepted")
	}
	allocs := testing.AllocsPerRun(10, func() {
		_, _ = Parse(hostileHeader())
	})
	if allocs > 8 {
		t.Fatalf("hostile claim cost %.0f allocations per parse", allocs)
	}
}

// TestWriteFuzzCorpus materializes the seed corpus as files in Go's corpus
// format so the seeds survive in git, not only in f.Add calls.
func TestWriteFuzzCorpus(t *testing.T) {
	if !*updateFuzzCorpus {
		t.Skip("run with -update-fuzz-corpus to rewrite the corpus")
	}
	seeds := fuzzSeedStreams(t)
	dir := filepath.Join("testdata", "fuzz", "FuzzParse")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for i, s := range append(seeds, fuzzSeedMutations(seeds)...) {
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", s)
		path := filepath.Join(dir, fmt.Sprintf("seed-%03d", i))
		if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
