// Package model implements the paper's three closed-form models
// (Sec. 3.2–3.5): the propagation of compressor error into FFT-based
// power-spectrum analysis, the halo-finder fault-cell model, and the
// empirical bit-rate/error-bound power law with its mean-value predictor.
// These are the pieces the optimizer combines to pick per-partition error
// bounds without any trial-and-error compression.
package model

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/stats"
)

// FFT error model (paper Eqs. 5–10). The compressor injects i.i.d.
// U[−eb, +eb] error at every cell; each DFT output bin is a sum of N³ such
// terms rotated by unit phases, so by the CLT its error is Gaussian with
//
//	σ_3D = sqrt(N³/6)·eb,   μ = 0.
//
// With per-partition bounds the sum splits by partition (Eq. 10):
//
//	σ_3D = Σ_m sqrt(N³/6)·eb_m / M.

// SigmaFFT1D returns the model σ of a 1-D DFT bin for data length n under
// a uniform error bound eb (Eq. 8).
func SigmaFFT1D(n int, eb float64) float64 {
	return math.Sqrt(float64(n)/6) * eb
}

// SigmaFFT3D returns the model σ of a 3-D DFT bin for an n³ grid under a
// single error bound (Eq. 9).
func SigmaFFT3D(n int, eb float64) float64 {
	n3 := float64(n) * float64(n) * float64(n)
	return math.Sqrt(n3/6) * eb
}

// SigmaFFT3DMulti returns the model σ when partition m uses bound ebs[m]
// (Eq. 10). Equal-sized partitions are assumed, matching the paper.
func SigmaFFT3DMulti(n int, ebs []float64) float64 {
	if len(ebs) == 0 {
		return 0
	}
	return SigmaFFT3D(n, stats.MeanOf(ebs))
}

// AverageEBForFFTSigma inverts Eq. 9: the average error bound that keeps
// the FFT-bin σ at the given target for an n³ grid.
func AverageEBForFFTSigma(n int, sigma float64) float64 {
	n3 := float64(n) * float64(n) * float64(n)
	return sigma / math.Sqrt(n3/6)
}

// FFTErrorBudget converts an absolute tolerance on FFT outputs at a given
// two-sided confidence into the admissible average error bound. The paper
// uses confidence 95.45 % (2σ): tolerance = 2·σ_3D ⇒ eb_avg from Eq. 9.
func FFTErrorBudget(n int, tolerance, confidence float64) (float64, error) {
	if tolerance <= 0 {
		return 0, errors.New("model: FFT tolerance must be positive")
	}
	if confidence <= 0 || confidence >= 1 {
		return 0, fmt.Errorf("model: confidence %v outside (0,1)", confidence)
	}
	k := stats.ConfidenceFactor(confidence)
	return AverageEBForFFTSigma(n, tolerance/k), nil
}

// ConfidenceInterval returns the symmetric interval half-width within which
// an FFT bin error falls with the given probability under the model.
func ConfidenceInterval(n int, eb, confidence float64) float64 {
	return stats.ConfidenceFactor(confidence) * SigmaFFT3D(n, eb)
}
