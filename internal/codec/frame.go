package codec

import "fmt"

// Frame envelope: the self-describing wrapper around a codec-native stream.
//
//	offset size  field
//	0      4     magic "CFRM"
//	4      1     envelope version (1)
//	5      1     codec ID length L (1 ≤ L ≤ 32)
//	6      L     codec ID (ASCII)
//	6+L    ...   codec-native stream (own magic, version, CRC)
//
// The envelope carries only identity; integrity and geometry live in the
// codec-native stream it wraps, which every backend already versions and
// (for sz) checksums.
const (
	frameMagic      = "CFRM"
	frameVersion    = 1
	frameFixedBytes = 6
	maxIDLen        = 32
)

// EncodeFrame serializes a frame with its self-describing codec header.
func EncodeFrame(f Frame) []byte {
	id := f.CodecID()
	body := f.Bytes()
	out := make([]byte, 0, frameFixedBytes+len(id)+len(body))
	out = append(out, frameMagic...)
	out = append(out, frameVersion, byte(len(id)))
	out = append(out, id...)
	return append(out, body...)
}

// FrameBody splits a frame envelope into its codec ID and codec-native
// body without resolving a backend or parsing the stream — the zero-copy
// structural view an archive server needs to locate codec bytes inside a
// stored step (the body aliases data). Validation covers the envelope
// only; the body's own magic/version/CRC are the backend's to check.
func FrameBody(data []byte) (ID, []byte, error) {
	if len(data) < frameFixedBytes {
		return "", nil, fmt.Errorf("codec: frame shorter than envelope header")
	}
	if string(data[0:4]) != frameMagic {
		return "", nil, fmt.Errorf("codec: bad frame magic %q", data[0:4])
	}
	if data[4] != frameVersion {
		return "", nil, fmt.Errorf("codec: unsupported frame version %d", data[4])
	}
	idLen := int(data[5])
	if idLen == 0 || idLen > maxIDLen {
		return "", nil, fmt.Errorf("codec: invalid codec ID length %d", idLen)
	}
	if len(data) < frameFixedBytes+idLen {
		return "", nil, fmt.Errorf("codec: frame truncated inside codec ID")
	}
	id := ID(data[frameFixedBytes : frameFixedBytes+idLen])
	return id, data[frameFixedBytes+idLen:], nil
}

// FrameOverhead is the envelope bytes EncodeFrame adds around a
// codec-native stream for the given ID — what an exact size prediction
// (PredictSize plus assembly overhead) must account for without encoding.
func FrameOverhead(id ID) int { return frameFixedBytes + len(id) }

// DecodeFrame reverses EncodeFrame, resolving the named codec in this
// registry and handing it the codec-native body.
func (r *Registry) DecodeFrame(data []byte) (Frame, error) {
	id, body, err := FrameBody(data)
	if err != nil {
		return nil, err
	}
	c, err := r.Lookup(id)
	if err != nil {
		return nil, fmt.Errorf("codec: frame header: %w", err)
	}
	return c.Parse(body)
}

// DecodeFrame decodes a self-describing frame against the Default registry.
func DecodeFrame(data []byte) (Frame, error) { return Default.DecodeFrame(data) }
