package client

import (
	"context"
	"errors"
	"net/http/httptest"
	"path/filepath"
	"testing"

	"repro/internal/apierr"
	"repro/internal/archiveserve"
	"repro/internal/grid"
)

func newArchiveFixture(t *testing.T) (*archiveserve.Server, *Client) {
	t.Helper()
	dir := t.TempDir()
	w, err := archiveserve.NewWriter(filepath.Join(dir, "run1"+archiveserve.StreamSuffix),
		archiveserve.WriterOptions{Rate: 16, PartitionDim: 2})
	if err != nil {
		t.Fatal(err)
	}
	f := grid.NewField3D(8, 8, 8)
	for i := range f.Data {
		f.Data[i] = float32(i%97) * 0.013
	}
	if err := w.WriteStep(map[string]archiveserve.FieldSpec{"rho": {Field: f}}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	srv, err := archiveserve.New(archiveserve.Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); srv.Close() })
	c, err := New(Config{BaseURL: ts.URL, HTTPClient: ts.Client(), MaxAttempts: 1})
	if err != nil {
		t.Fatal(err)
	}
	return srv, c
}

func TestFetchFieldNegotiatesAndRevalidates(t *testing.T) {
	_, c := newArchiveFixture(t)
	ctx := context.Background()

	streams, err := c.ListArchives(ctx)
	if err != nil || len(streams) != 1 || streams[0] != "run1" {
		t.Fatalf("ListArchives: %v %v", streams, err)
	}
	m, err := c.FetchManifest(ctx, "run1")
	if err != nil {
		t.Fatal(err)
	}
	if m.Steps != 1 || len(m.Fields) != 1 || !m.Fields[0].Progressive {
		t.Fatalf("manifest %+v", m)
	}

	res, err := c.FetchField(ctx, "run1", 0, "rho", FetchOptions{Rate: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.NotModified || len(res.Body) == 0 || res.ETag == "" || res.ServedRate != 4 {
		t.Fatalf("first fetch %+v", res)
	}
	// A rate beyond the stored one negotiates down to the stored rate.
	res2, err := c.FetchField(ctx, "run1", 0, "rho", FetchOptions{Rate: 32})
	if err != nil {
		t.Fatal(err)
	}
	if res2.ServedRate != 16 {
		t.Fatalf("negotiated rate %v, want 16", res2.ServedRate)
	}
	// Revalidation with the returned ETag is a 304 without a body.
	res3, err := c.FetchField(ctx, "run1", 0, "rho", FetchOptions{Rate: 4, ETag: res.ETag})
	if err != nil {
		t.Fatal(err)
	}
	if !res3.NotModified || len(res3.Body) != 0 || res3.ETag != res.ETag {
		t.Fatalf("revalidation %+v", res3)
	}
	// A warm unconditional refetch is served from cache, byte-identical.
	res4, err := c.FetchField(ctx, "run1", 0, "rho", FetchOptions{Rate: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !res4.CacheHit || string(res4.Body) != string(res.Body) {
		t.Fatalf("warm refetch: hit=%v len=%d", res4.CacheHit, len(res4.Body))
	}

	st, err := c.ArchiveStats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Splices != 1 || st.Cache.Hits != 1 {
		t.Fatalf("stats splices=%d hits=%d, want 1/1", st.Splices, st.Cache.Hits)
	}

	if _, err := c.FetchField(ctx, "run1", 0, "nope", FetchOptions{}); !errors.Is(err, apierr.ErrNotFound) {
		t.Fatalf("missing field err %v, want ErrNotFound", err)
	}
}
