// In situ pipeline example: a simulated multi-rank cosmology run dumping
// several snapshots. Each dump runs the paper's in situ protocol — rank-
// local feature extraction, one Allreduce for the global mean, rank-local
// error-bound optimization, compression — and the example reports per-phase
// timings, the overhead ratio, and ratio/quality per snapshot.
//
// Run with: go run ./examples/insitu
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/nyx"
)

func main() {
	log.SetFlags(0)

	const (
		gridN  = 64
		bricks = 16
		ranks  = 8
	)
	eng, err := core.NewEngine(core.Config{PartitionDim: bricks})
	if err != nil {
		log.Fatal(err)
	}

	// Calibrate once on the first snapshot — the paper's offline step.
	first, err := nyx.Generate(nyx.Params{N: gridN, Seed: 3, Redshift: 54})
	if err != nil {
		log.Fatal(err)
	}
	refField, err := first.Field(nyx.FieldBaryonDensity)
	if err != nil {
		log.Fatal(err)
	}
	cal, err := eng.Calibrate(refField)
	if err != nil {
		log.Fatal(err)
	}
	avgEB, err := core.SpectrumBudget(refField, core.BudgetOptions{})
	if err != nil {
		log.Fatal(err)
	}
	bt, _ := nyx.DefaultHaloConfig()
	fmt.Printf("calibrated on z=54: exponent %.3f, budget avg eb %.4g\n\n",
		cal.Model.Exponent, avgEB)

	// The "simulation" evolves and dumps snapshots; each dump compresses
	// in situ across the simulated MPI ranks.
	fmt.Printf("%-9s %-7s %-9s %-11s %-11s %-10s\n",
		"redshift", "ranks", "ratio", "compress_s", "overhead", "collectives")
	for _, z := range []float64{54, 51, 48, 45, 42} {
		snap, err := nyx.Generate(nyx.Params{N: gridN, Seed: 3, Redshift: z})
		if err != nil {
			log.Fatal(err)
		}
		density, err := snap.Field(nyx.FieldBaryonDensity)
		if err != nil {
			log.Fatal(err)
		}
		cf, st, err := eng.CompressInSitu(density, cal, core.InSituOptions{
			Ranks: ranks,
			AvgEB: avgEB,
			Halo: &core.InSituHalo{
				TBoundary:  bt,
				RefEB:      1.0,
				MassBudget: 1e6, // generous budget; tighten for strict halo control
			},
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-9g %-7d %-9.2f %-11.4f %-11s %-10d\n",
			z, st.Ranks, cf.Ratio(), st.CompressSeconds,
			fmt.Sprintf("%.2f%%", st.FeatureOverhead()*100), st.Collectives)
	}
	fmt.Println("\noverhead = (feature extraction + optimization) / compression time per dump")
}
