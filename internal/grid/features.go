package grid

import (
	"runtime"
	"sync"

	"repro/internal/stats"
)

// Features is the per-partition summary the adaptive configurator extracts
// in situ (Sec. 3.5–3.6 of the paper). Collecting it is the *only* data
// inspection the method needs before choosing error bounds, which is why
// the paper's overhead is ~1 % of compression time:
//
//   - Mean drives the rate-coefficient prediction C_m (Fig. 10a).
//   - BoundaryCells is n in the eb→cell function n_bc = n·eb, the count of
//     cells within ±refEB of the halo threshold (Fig. 14). It is only
//     extracted for density fields that feed the halo finder.
//   - Count is the partition size (needed by the FFT error model).
type Features struct {
	PartitionID   int
	Count         int
	Mean          float64
	Min, Max      float64
	BoundaryCells int     // cells with value in [t−refEB, t+refEB)
	RefEB         float64 // the eb the boundary-cell count was taken at
}

// FeatureOptions controls extraction.
type FeatureOptions struct {
	// HaloThreshold is t_boundary; when > 0, boundary cells are counted.
	HaloThreshold float64
	// RefEB is the reference error bound for the boundary-cell band.
	// The paper extracts once at eb = 1.0 and scales linearly afterwards.
	RefEB float64
	// Workers bounds the worker pool; 0 means GOMAXPROCS.
	Workers int
}

// ExtractFeatures computes Features for every partition of f, in parallel.
// The partition order of the result matches p.Partitions().
func ExtractFeatures(f *Field3D, p *Partitioner, opt FeatureOptions) []Features {
	parts := p.Partitions()
	out := make([]Features, len(parts))
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(parts) {
		workers = len(parts)
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := make([]float32, 0)
			for i := range next {
				part := parts[i]
				if cap(buf) < part.Len() {
					buf = make([]float32, part.Len())
				}
				buf = buf[:part.Len()]
				ExtractInto(buf, f, part)
				out[i] = extractOne(part, buf, opt)
			}
		}()
	}
	for i := range parts {
		next <- i
	}
	close(next)
	wg.Wait()
	return out
}

func extractOne(part Partition, data []float32, opt FeatureOptions) Features {
	var m stats.Moments
	m.AddSlice(data)
	ft := Features{
		PartitionID: part.ID,
		Count:       len(data),
		Mean:        m.Mean(),
		Min:         m.Min(),
		Max:         m.Max(),
		RefEB:       opt.RefEB,
	}
	if opt.HaloThreshold > 0 && opt.RefEB > 0 {
		ft.BoundaryCells = stats.CountInBand(data,
			opt.HaloThreshold-opt.RefEB, opt.HaloThreshold+opt.RefEB)
	}
	return ft
}

// BoundaryCellsAt scales a partition's reference boundary-cell count to a
// different error bound using the paper's linear model n_bc(eb) = n·eb
// (valid because the local value histogram is approximately flat across the
// narrow threshold band, Sec. 3.4).
func (ft Features) BoundaryCellsAt(eb float64) float64 {
	if ft.RefEB <= 0 {
		return 0
	}
	return float64(ft.BoundaryCells) * eb / ft.RefEB
}

// MeanOfMeans returns the average of the partition means weighted by cell
// count; for equal-size partitions this equals the global mean the paper
// gathers via MPI_Allreduce.
func MeanOfMeans(fts []Features) float64 {
	var sum float64
	var n int
	for _, ft := range fts {
		sum += ft.Mean * float64(ft.Count)
		n += ft.Count
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
