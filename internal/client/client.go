// Package client is the resilient HTTP client for the compression
// service: capped exponential backoff with full jitter that honors the
// server's Retry-After, a per-endpoint closed/open/half-open circuit
// breaker (typed apierr.ErrCircuitOpen), and per-attempt deadlines carved
// from the caller's context.
//
// Retry policy follows the server's own contract (internal/server/queue.go):
// refusals wrapping apierr.ErrOverloaded (429) or apierr.ErrDraining (503)
// mean the request was NEVER STARTED, so they are retried for every
// operation. Anything else — a transport error, a 5xx — may have executed
// server-side, so it is retried only for idempotent reads (decompress,
// stats). Client-caused 4xx and the caller's own context expiry are never
// retried.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/apierr"
	"repro/internal/grid"
	"repro/internal/server"
)

// Config tunes a Client. Only BaseURL is required; the zero value of every
// other knob selects a sane default.
type Config struct {
	// BaseURL is the service root, e.g. "http://127.0.0.1:8323".
	BaseURL string
	// Tenant is sent as the X-Tenant header ("" = the server's default).
	Tenant string
	// HTTPClient overrides the transport (default: a fresh h2c transport,
	// matching the service's NewHTTPServer).
	HTTPClient *http.Client
	// MaxAttempts bounds total tries per call, first attempt included
	// (default 4). 1 disables retries.
	MaxAttempts int
	// BaseBackoff and MaxBackoff shape the exponential backoff: retry n
	// sleeps rand·min(MaxBackoff, BaseBackoff·2ⁿ) — full jitter — plus the
	// server's Retry-After when one was given (defaults 50ms and 2s).
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// AttemptTimeout bounds each individual attempt on top of the caller's
	// context (0 = attempts run under the caller's deadline alone).
	AttemptTimeout time.Duration
	// MaxResponseBytes caps a response body (default 2^28, the server's
	// own request cap).
	MaxResponseBytes int64
	// Breaker tunes the per-endpoint circuit breaker.
	Breaker BreakerConfig

	// Test seams; nil selects the real clock, a context-aware timer sleep,
	// and math/rand.
	Now   func() time.Time
	Sleep func(context.Context, time.Duration) error
	Rand  func() float64
}

func (c Config) withDefaults() Config {
	if c.HTTPClient == nil {
		c.HTTPClient = &http.Client{Transport: server.NewH2CTransport()}
	}
	if c.MaxAttempts == 0 {
		c.MaxAttempts = 4
	}
	if c.BaseBackoff == 0 {
		c.BaseBackoff = 50 * time.Millisecond
	}
	if c.MaxBackoff == 0 {
		c.MaxBackoff = 2 * time.Second
	}
	if c.MaxResponseBytes == 0 {
		c.MaxResponseBytes = 1 << 28
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	if c.Sleep == nil {
		c.Sleep = sleepCtx
	}
	if c.Rand == nil {
		c.Rand = rand.Float64
	}
	return c
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// Counters is a snapshot of the client's resilience accounting.
type Counters struct {
	// Attempts counts HTTP requests actually sent.
	Attempts uint64
	// Retries counts backoff-then-retry cycles.
	Retries uint64
	// Rejected counts never-started refusals observed (429 overloaded and
	// 503 draining), whether or not a retry eventually succeeded.
	Rejected uint64
	// CircuitOpen counts calls the breaker failed fast locally.
	CircuitOpen uint64
}

// Client is a resilient client for one compression service. Safe for
// concurrent use.
type Client struct {
	cfg Config

	mu       sync.Mutex
	breakers map[string]*breaker

	attempts, retries, rejected, circuitOpen atomic.Uint64
}

// New builds a Client. Rejections wrap apierr.ErrBadConfig.
func New(cfg Config) (*Client, error) {
	if cfg.BaseURL == "" {
		return nil, fmt.Errorf("client: %w: BaseURL is required", apierr.ErrBadConfig)
	}
	switch {
	case cfg.MaxAttempts < 0:
		return nil, fmt.Errorf("client: %w: MaxAttempts must not be negative", apierr.ErrBadConfig)
	case cfg.BaseBackoff < 0 || cfg.MaxBackoff < 0 || cfg.AttemptTimeout < 0:
		return nil, fmt.Errorf("client: %w: backoff durations must not be negative", apierr.ErrBadConfig)
	}
	cfg.BaseURL = strings.TrimRight(cfg.BaseURL, "/")
	return &Client{cfg: cfg.withDefaults(), breakers: make(map[string]*breaker)}, nil
}

// Counters snapshots the resilience accounting.
func (c *Client) Counters() Counters {
	return Counters{
		Attempts:    c.attempts.Load(),
		Retries:     c.retries.Load(),
		Rejected:    c.rejected.Load(),
		CircuitOpen: c.circuitOpen.Load(),
	}
}

// CompressResult is one successful compression: the archive plus the
// operating point the service ran it at (the X-Rate-* headers).
type CompressResult struct {
	// Archive is the v2 field archive.
	Archive []byte
	// RateLevel and BudgetScale are the load controller's operating point.
	RateLevel   int
	BudgetScale float64
	// BitRate and Ratio summarize the compression.
	BitRate, Ratio float64
	// Recalibrated is set when this request re-fitted the field's model.
	Recalibrated bool
}

// CalibrationInfo mirrors the service's /v1/calibrate response.
type CalibrationInfo struct {
	Mode            string    `json:"mode"`
	Downgraded      bool      `json:"downgraded"`
	DowngradeReason string    `json:"downgrade_reason,omitempty"`
	FellBack        bool      `json:"fell_back"`
	Residual        float64   `json:"residual"`
	Samples         int       `json:"samples"`
	EBs             []float64 `json:"ebs"`
}

// Compress posts a field for compression. Not idempotent (it advances the
// tenant's calibration state and consumes budget), so only never-started
// refusals are retried.
func (c *Client) Compress(ctx context.Context, field string, f *grid.Field3D) (*CompressResult, error) {
	res, err := c.do(ctx, "compress", false, http.MethodPost,
		"/v1/compress/"+field, server.EncodeField(f))
	if err != nil {
		return nil, err
	}
	out := &CompressResult{Archive: res.body}
	out.RateLevel, _ = strconv.Atoi(res.header.Get("X-Rate-Level"))
	out.BudgetScale, _ = strconv.ParseFloat(res.header.Get("X-Budget-Scale"), 64)
	out.BitRate, _ = strconv.ParseFloat(res.header.Get("X-Bit-Rate"), 64)
	out.Ratio, _ = strconv.ParseFloat(res.header.Get("X-Ratio"), 64)
	out.Recalibrated = res.header.Get("X-Recalibrated") == "1"
	return out, nil
}

// Decompress posts a v2 archive and returns the decoded field. Idempotent:
// also retried on transport errors and 5xx.
func (c *Client) Decompress(ctx context.Context, archive []byte) (*grid.Field3D, error) {
	res, err := c.do(ctx, "decompress", true, http.MethodPost, "/v1/decompress", archive)
	if err != nil {
		return nil, err
	}
	return server.DecodeField(res.body, c.cfg.MaxResponseBytes/4)
}

// Calibrate posts a field for calibration. Treated like Compress for retry
// purposes (the server runs it through the shared batch machinery).
func (c *Client) Calibrate(ctx context.Context, field string, f *grid.Field3D) (*CalibrationInfo, error) {
	res, err := c.do(ctx, "calibrate", false, http.MethodPost,
		"/v1/calibrate/"+field, server.EncodeField(f))
	if err != nil {
		return nil, err
	}
	var info CalibrationInfo
	if err := json.Unmarshal(res.body, &info); err != nil {
		return nil, fmt.Errorf("client: calibrate: bad response body: %w", err)
	}
	return &info, nil
}

// Stats fetches the service counter snapshot. Idempotent.
func (c *Client) Stats(ctx context.Context) (*server.Stats, error) {
	res, err := c.do(ctx, "stats", true, http.MethodGet, "/v1/stats", nil)
	if err != nil {
		return nil, err
	}
	var st server.Stats
	if err := json.Unmarshal(res.body, &st); err != nil {
		return nil, fmt.Errorf("client: stats: bad response body: %w", err)
	}
	return &st, nil
}

func (c *Client) breakerFor(endpoint string) *breaker {
	c.mu.Lock()
	defer c.mu.Unlock()
	b := c.breakers[endpoint]
	if b == nil {
		b = newBreaker(endpoint, c.cfg.Breaker, c.cfg.Now)
		c.breakers[endpoint] = b
	}
	return b
}

type response struct {
	status int
	header http.Header
	body   []byte
}

// do runs the retry loop for one logical call. idempotent widens the
// retryable class from never-started refusals to transport errors and 5xx.
func (c *Client) do(ctx context.Context, endpoint string, idempotent bool, method, path string, body []byte) (*response, error) {
	return c.doWith(ctx, endpoint, idempotent, method, path, nil, body, nil)
}

// doWith is do with extra request headers and a widened success test:
// accept(status) may admit non-2xx statuses that are successes for the
// caller (a conditional GET's 304). 2xx always succeeds.
func (c *Client) doWith(ctx context.Context, endpoint string, idempotent bool, method, path string, hdr map[string]string, body []byte, accept func(int) bool) (*response, error) {
	br := c.breakerFor(endpoint)
	var lastErr error
	for attempt := 0; ; attempt++ {
		if err := br.allow(); err != nil {
			c.circuitOpen.Add(1)
			// The breaker's rejection is local and instantaneous; retrying
			// against it would just spin, so it ends the call — but the last
			// real failure (if this loop saw one) is the better diagnosis.
			if lastErr != nil {
				return nil, fmt.Errorf("%w (last failure: %v)", err, lastErr)
			}
			return nil, err
		}
		res, err := c.attempt(ctx, method, path, hdr, body)
		if err == nil && (res.status/100 == 2 || (accept != nil && accept(res.status))) {
			br.record(true)
			return res, nil
		}

		var retryable bool
		var retryAfter time.Duration
		switch {
		case err != nil:
			// Transport failure: the request may or may not have executed.
			br.record(false)
			lastErr = fmt.Errorf("client: %s: %w", endpoint, err)
			retryable = idempotent
		default:
			lastErr = server.ErrorFromResponse(res.status, res.body)
			if lastErr == nil {
				lastErr = fmt.Errorf("client: %s: HTTP %d", endpoint, res.status)
			}
			neverStarted := errors.Is(lastErr, apierr.ErrOverloaded) || errors.Is(lastErr, apierr.ErrDraining)
			if neverStarted {
				c.rejected.Add(1)
				retryAfter = parseRetryAfter(res.header.Get("Retry-After"))
			}
			serverTrouble := neverStarted || res.status >= 500
			br.record(!serverTrouble)
			retryable = neverStarted || (idempotent && res.status >= 500)
		}

		if ctx.Err() != nil {
			// The caller's context died (possibly mid-attempt): theirs to
			// handle, never retried.
			return nil, fmt.Errorf("client: %s: %w", endpoint, ctx.Err())
		}
		if !retryable || attempt+1 >= c.cfg.MaxAttempts {
			return nil, lastErr
		}
		c.retries.Add(1)
		if err := c.cfg.Sleep(ctx, c.backoff(attempt, retryAfter)); err != nil {
			return nil, fmt.Errorf("client: %s: backoff interrupted: %w", endpoint, err)
		}
	}
}

// attempt sends one HTTP request under the per-attempt deadline and reads
// the whole (capped) response body.
func (c *Client) attempt(ctx context.Context, method, path string, hdr map[string]string, body []byte) (*response, error) {
	actx, cancel := ctx, context.CancelFunc(func() {})
	if c.cfg.AttemptTimeout > 0 {
		actx, cancel = context.WithTimeout(ctx, c.cfg.AttemptTimeout)
	}
	defer cancel()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(actx, method, c.cfg.BaseURL+path, rd)
	if err != nil {
		return nil, err
	}
	if c.cfg.Tenant != "" {
		req.Header.Set("X-Tenant", c.cfg.Tenant)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	c.attempts.Add(1)
	resp, err := c.cfg.HTTPClient.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(io.LimitReader(resp.Body, c.cfg.MaxResponseBytes+1))
	if err != nil {
		return nil, err
	}
	if int64(len(out)) > c.cfg.MaxResponseBytes {
		return nil, fmt.Errorf("response body exceeds %d bytes", c.cfg.MaxResponseBytes)
	}
	return &response{status: resp.StatusCode, header: resp.Header, body: out}, nil
}

// backoff computes the sleep before retry number `retry` (0-based): full
// jitter over the capped exponential curve, floored by the server's
// Retry-After when one was given — the jitter rides on top of the floor so
// a herd of clients told "retry after 2" does not return in lockstep.
func (c *Client) backoff(retry int, retryAfter time.Duration) time.Duration {
	d := c.cfg.BaseBackoff
	for i := 0; i < retry && d < c.cfg.MaxBackoff; i++ {
		d *= 2
	}
	if d > c.cfg.MaxBackoff {
		d = c.cfg.MaxBackoff
	}
	jitter := time.Duration(c.cfg.Rand() * float64(d))
	if retryAfter > 0 {
		return retryAfter + jitter
	}
	return jitter
}

// parseRetryAfter reads the delay-seconds form of a Retry-After header
// (the only form the service emits); anything else maps to zero.
func parseRetryAfter(h string) time.Duration {
	if h == "" {
		return 0
	}
	secs, err := strconv.Atoi(strings.TrimSpace(h))
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}
