package core

import (
	"encoding/binary"
	"fmt"

	"repro/internal/codec"
)

// Archive framing for a CompressedField: a small header followed by
// length-prefixed self-describing codec frames, one per partition in
// partition-ID order.
//
//	offset size  field
//	0      4     magic "ACFD"
//	4      4     version (2)
//	8      12    nx, ny, nz (uint32)
//	20     4     partition dim
//	24     4     partition count
//	28     ...   per partition: uint32 length + codec frame envelope
//
// Version 2 switched the per-partition payload from raw sz streams to
// codec envelopes (codec ID + version + native stream), so archives decode
// without out-of-band knowledge of the producing backend — including
// archives whose partitions mix codecs.
const (
	archiveMagic   = "ACFD"
	archiveVersion = 2
	archiveHeader  = 28
)

// Bytes serializes the compressed field. Each partition's native stream
// carries its own integrity checks (sz CRCs its payload), so the archive
// needs no extra checksum.
func (cf *CompressedField) Bytes() []byte {
	out := make([]byte, archiveHeader, archiveHeader+cf.CompressedSize()+16*len(cf.Parts))
	copy(out[0:4], archiveMagic)
	binary.LittleEndian.PutUint32(out[4:8], archiveVersion)
	binary.LittleEndian.PutUint32(out[8:12], uint32(cf.Nx))
	binary.LittleEndian.PutUint32(out[12:16], uint32(cf.Ny))
	binary.LittleEndian.PutUint32(out[16:20], uint32(cf.Nz))
	binary.LittleEndian.PutUint32(out[20:24], uint32(cf.PartitionDim))
	binary.LittleEndian.PutUint32(out[24:28], uint32(len(cf.Parts)))
	for _, p := range cf.Parts {
		blob := codec.EncodeFrame(p)
		var lenBuf [4]byte
		binary.LittleEndian.PutUint32(lenBuf[:], uint32(len(blob)))
		out = append(out, lenBuf[:]...)
		out = append(out, blob...)
	}
	return out
}

// ParseCompressedField reverses Bytes, resolving each partition's codec
// from its frame header and validating every stream.
func ParseCompressedField(data []byte) (*CompressedField, error) {
	return ParseCompressedFieldWith(data, codec.Default)
}

// ParseCompressedFieldWith is ParseCompressedField against a specific
// codec registry.
func ParseCompressedFieldWith(data []byte, reg *codec.Registry) (*CompressedField, error) {
	if len(data) < archiveHeader {
		return nil, fmt.Errorf("core: archive shorter than header")
	}
	if string(data[0:4]) != archiveMagic {
		return nil, fmt.Errorf("core: bad archive magic %q", data[0:4])
	}
	if v := binary.LittleEndian.Uint32(data[4:8]); v != archiveVersion {
		return nil, fmt.Errorf("core: unsupported archive version %d", v)
	}
	cf := &CompressedField{
		Nx:           int(binary.LittleEndian.Uint32(data[8:12])),
		Ny:           int(binary.LittleEndian.Uint32(data[12:16])),
		Nz:           int(binary.LittleEndian.Uint32(data[16:20])),
		PartitionDim: int(binary.LittleEndian.Uint32(data[20:24])),
	}
	count := int(binary.LittleEndian.Uint32(data[24:28]))
	if cf.Nx <= 0 || cf.Ny <= 0 || cf.Nz <= 0 || cf.PartitionDim <= 0 || count <= 0 {
		return nil, fmt.Errorf("core: invalid archive header (%d×%d×%d / dim %d / %d parts)",
			cf.Nx, cf.Ny, cf.Nz, cf.PartitionDim, count)
	}
	pos := archiveHeader
	cf.Parts = make([]codec.Frame, 0, count)
	for i := 0; i < count; i++ {
		if pos+4 > len(data) {
			return nil, fmt.Errorf("core: archive truncated at partition %d", i)
		}
		n := int(binary.LittleEndian.Uint32(data[pos : pos+4]))
		pos += 4
		if pos+n > len(data) {
			return nil, fmt.Errorf("core: partition %d stream truncated", i)
		}
		p, err := reg.DecodeFrame(data[pos : pos+n])
		if err != nil {
			return nil, fmt.Errorf("core: partition %d: %w", i, err)
		}
		cf.Parts = append(cf.Parts, p)
		pos += n
	}
	if pos != len(data) {
		return nil, fmt.Errorf("core: %d trailing bytes in archive", len(data)-pos)
	}
	cf.Codec = cf.Parts[0].CodecID()
	return cf, nil
}
