package codecs_test

import (
	"errors"
	"testing"

	"repro/adaptive"
	"repro/adaptive/codecs"
)

func TestRegistrySurface(t *testing.T) {
	ids := codecs.IDs()
	if len(ids) < 2 {
		t.Fatalf("registry lists %v, want at least sz and zfp", ids)
	}
	for _, id := range []codecs.ID{codecs.SZ, codecs.ZFP} {
		if _, err := codecs.Lookup(id); err != nil {
			t.Fatalf("Lookup(%s): %v", id, err)
		}
	}
	if _, err := codecs.Lookup("nope"); !errors.Is(err, adaptive.ErrCodecUnknown) {
		t.Fatalf("unknown lookup: %v", err)
	}
	if err := codecs.Register(nil); err == nil {
		t.Fatal("registered a nil codec")
	}
}

func TestFrameEnvelopeRoundTrip(t *testing.T) {
	c, err := codecs.Lookup(codecs.SZ)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]float32, 4*4*4)
	for i := range data {
		data[i] = float32(i%7) * 0.25
	}
	frame, err := c.Compress(data, 4, 4, 4, codecs.Options{ErrorBound: 0.01}, nil)
	if err != nil {
		t.Fatal(err)
	}
	blob := codecs.EncodeFrame(frame)
	back, err := codecs.DecodeFrame(blob)
	if err != nil {
		t.Fatal(err)
	}
	if back.CodecID() != codecs.SZ {
		t.Fatalf("decoded frame claims codec %q", back.CodecID())
	}
	values, err := back.Decompress()
	if err != nil {
		t.Fatal(err)
	}
	for i := range values {
		d := float64(values[i] - data[i])
		if d > 0.01 || d < -0.01 {
			t.Fatalf("value %d off by %g (bound 0.01)", i, d)
		}
	}
	if _, err := codecs.DecodeFrame([]byte("not a frame")); err == nil {
		t.Fatal("decoded garbage")
	}
}
