package repro

// One benchmark per table/figure of the paper's evaluation (Sec. 4), plus
// throughput micro-benchmarks for the substrates. The experiment benches
// run the full reproduction at the canonical 128³ / 512-partition layout
// (the paper's 8×8×8 rank grid), so a single iteration can take seconds to
// minutes; run with -benchtime=1x:
//
//	go test -bench=. -benchtime=1x -benchmem .
//
// The text tables for each figure are printed by cmd/experiments; the
// benches here time their regeneration and assert they still produce rows.

import (
	"context"
	"math"
	"sync"
	"testing"
	"time"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/fft"
	"repro/internal/grid"
	"repro/internal/halo"
	"repro/internal/huffman"
	"repro/internal/nyx"
	"repro/internal/pipeline"
	"repro/internal/spectrum"
	"repro/internal/stats"
	"repro/internal/sz"
	"repro/internal/zfp"
)

var (
	benchCtxOnce sync.Once
	benchCtx     *experiments.Context
	benchCtxErr  error
)

// benchContext builds the shared canonical-scale context once.
func benchContext(b *testing.B) *experiments.Context {
	b.Helper()
	benchCtxOnce.Do(func() {
		benchCtx, benchCtxErr = experiments.NewContext(experiments.Config{
			N: 128, PartitionDim: 16, Seed: 7,
		})
	})
	if benchCtxErr != nil {
		b.Fatal(benchCtxErr)
	}
	return benchCtx
}

// benchExperiment wraps one registered experiment as a benchmark.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	ctx := benchContext(b)
	exp, err := experiments.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := exp.Run(ctx)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) == 0 {
			b.Fatalf("%s produced no rows", id)
		}
	}
}

func BenchmarkFig03ErrorDistribution(b *testing.B)      { benchExperiment(b, "fig03") }
func BenchmarkFig04FFTErrorDistribution(b *testing.B)   { benchExperiment(b, "fig04") }
func BenchmarkFig05FFTErrorVariance(b *testing.B)       { benchExperiment(b, "fig05") }
func BenchmarkFig06CandidateCells(b *testing.B)         { benchExperiment(b, "fig06") }
func BenchmarkFig07HaloMassDistribution(b *testing.B)   { benchExperiment(b, "fig07") }
func BenchmarkTable1MassPerChangedCell(b *testing.B)    { benchExperiment(b, "table1") }
func BenchmarkFig08FaultCellEstimate(b *testing.B)      { benchExperiment(b, "fig08") }
func BenchmarkFig09BitrateCurves(b *testing.B)          { benchExperiment(b, "fig09") }
func BenchmarkFig10aCmPrediction(b *testing.B)          { benchExperiment(b, "fig10a") }
func BenchmarkFig10bRatioConsistency(b *testing.B)      { benchExperiment(b, "fig10b") }
func BenchmarkFig11ErrorBoundMap(b *testing.B)          { benchExperiment(b, "fig11") }
func BenchmarkFig12BitQualityRatio(b *testing.B)        { benchExperiment(b, "fig12") }
func BenchmarkFig13PowerSpectrum(b *testing.B)          { benchExperiment(b, "fig13") }
func BenchmarkFig14EffectiveCellHistogram(b *testing.B) { benchExperiment(b, "fig14") }
func BenchmarkFig15RatioAllFields(b *testing.B)         { benchExperiment(b, "fig15") }
func BenchmarkFig16Redshifts(b *testing.B)              { benchExperiment(b, "fig16") }
func BenchmarkFig17RedshiftEbMaps(b *testing.B)         { benchExperiment(b, "fig17") }
func BenchmarkFig18PartitionSize(b *testing.B)          { benchExperiment(b, "fig18") }
func BenchmarkFig19SimulationScale(b *testing.B)        { benchExperiment(b, "fig19") }
func BenchmarkSec43Overhead(b *testing.B)               { benchExperiment(b, "sec43") }

// Ablation benches (design-choice studies; see README.md).
func BenchmarkAblationPredictor(b *testing.B)         { benchExperiment(b, "ablation-predictor") }
func BenchmarkAblationQuantPlacement(b *testing.B)    { benchExperiment(b, "ablation-quant") }
func BenchmarkAblationClamp(b *testing.B)             { benchExperiment(b, "ablation-clamp") }
func BenchmarkAblationOptimizationOrder(b *testing.B) { benchExperiment(b, "ablation-strategy") }
func BenchmarkAblationCmSource(b *testing.B)          { benchExperiment(b, "ablation-cm") }

// --- Substrate micro-benchmarks -----------------------------------------

var (
	benchFieldOnce sync.Once
	benchField     *grid.Field3D
	benchFieldErr  error
)

func benchDensity(b *testing.B) *grid.Field3D {
	b.Helper()
	benchFieldOnce.Do(func() {
		s, err := nyx.Generate(nyx.Params{N: 64, Seed: 11, Redshift: 42})
		if err != nil {
			benchFieldErr = err
			return
		}
		benchField, benchFieldErr = s.Field(nyx.FieldBaryonDensity)
	})
	if benchFieldErr != nil {
		b.Fatal(benchFieldErr)
	}
	return benchField
}

func BenchmarkSZCompress(b *testing.B) {
	f := benchDensity(b)
	opt := sz.Options{Mode: sz.ABS, ErrorBound: 0.1}
	b.SetBytes(int64(4 * f.Len()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sz.Compress(f, opt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSZDecompress(b *testing.B) {
	f := benchDensity(b)
	c, err := sz.Compress(f, sz.Options{Mode: sz.ABS, ErrorBound: 0.1})
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(4 * f.Len()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sz.Decompress(c); err != nil {
			b.Fatal(err)
		}
	}
}

// benchHuffmanStream builds an SZ-shaped token stream at the canonical 64³
// cell count: a sharply peaked Gaussian around the center quantization code
// (the post-Lorenzo residual histogram), sparse outlier markers, and a few
// far-tail codes, which together exercise the first-level LUT and the
// long-code fallback of the table-driven coder.
func benchHuffmanStream() []int {
	r := stats.NewRNG(12)
	sym := make([]int, 1<<18)
	for i := range sym {
		switch {
		case r.Float64() < 0.002:
			sym[i] = 0 // outlier marker
		case r.Float64() < 0.01:
			sym[i] = 32768 + int(r.NormFloat64()*500) // far tail
		default:
			sym[i] = 32768 + int(math.Round(r.NormFloat64()*2))
		}
	}
	return sym
}

func BenchmarkHuffmanEncode(b *testing.B) {
	sym := benchHuffmanStream()
	var s huffman.Scratch
	b.ReportAllocs()
	b.SetBytes(int64(8 * len(sym)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := huffman.CompressWith(sym, &s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHuffmanDecode(b *testing.B) {
	sym := benchHuffmanStream()
	enc, err := huffman.Compress(sym)
	if err != nil {
		b.Fatal(err)
	}
	var s huffman.Scratch
	b.ReportAllocs()
	b.SetBytes(int64(8 * len(sym)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := huffman.DecompressWith(enc, &s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkZFPCompress(b *testing.B) {
	f := benchDensity(b)
	opt := zfp.Options{Rate: 8}
	b.ReportAllocs()
	b.SetBytes(int64(4 * f.Len()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := zfp.Compress(f, opt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkZFPDecompress(b *testing.B) {
	f := benchDensity(b)
	c, err := zfp.Compress(f, zfp.Options{Rate: 8})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.SetBytes(int64(4 * f.Len()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := zfp.Decompress(c); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFFT3D(b *testing.B) {
	f := benchDensity(b)
	plan, err := fft.NewPlan3D(f.Nx, f.Ny, f.Nz, 0)
	if err != nil {
		b.Fatal(err)
	}
	data := fft.FieldToComplex(f)
	buf := make([]complex128, len(data))
	b.SetBytes(int64(16 * len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(buf, data)
		if err := plan.Forward(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPowerSpectrum(b *testing.B) {
	f := benchDensity(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := spectrum.Compute(f, spectrum.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHaloFinder(b *testing.B) {
	f := benchDensity(b)
	bt, pt := nyx.DefaultHaloConfig()
	cfg := halo.Config{BoundaryThreshold: bt, HaloThreshold: pt, Periodic: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := halo.Find(f, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFeatureExtraction(b *testing.B) {
	f := benchDensity(b)
	p, err := grid.PartitionerForBrickDim(f.Nx, 16)
	if err != nil {
		b.Fatal(err)
	}
	bt, _ := nyx.DefaultHaloConfig()
	opt := grid.FeatureOptions{HaloThreshold: bt, RefEB: 1}
	b.SetBytes(int64(4 * f.Len()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		grid.ExtractFeatures(f, p, opt)
	}
}

func BenchmarkAdaptivePipeline(b *testing.B) {
	// End-to-end: plan + adaptive compression (calibration excluded, as it
	// is a one-time offline step), once per registered codec. Allocation
	// counts are reported because the per-partition path is pooled
	// (sync.Pool scratch buffers) and must stay that way.
	f := benchDensity(b)
	for _, id := range []codec.ID{codec.SZ, codec.ZFP} {
		b.Run(string(id), func(b *testing.B) {
			eng, err := core.NewEngine(core.Config{PartitionDim: 16, Codec: id})
			if err != nil {
				b.Fatal(err)
			}
			cal, err := eng.Calibrate(context.Background(), f)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.SetBytes(int64(4 * f.Len()))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				plan, err := eng.Plan(context.Background(), f, cal, core.PlanOptions{AvgEB: 0.1})
				if err != nil {
					b.Fatal(err)
				}
				if _, err := eng.CompressAdaptive(context.Background(), f, plan); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPipelineStream measures steady-state streaming throughput: a
// pre-materialized evolving run is pushed through the pipeline driver with
// the calibration already fitted (CalibrateOnce + warmup run), so the
// numbers are the amortized per-step cost the in situ deployment pays —
// bytes/op is uncompressed field bytes consumed per run, and steps/sec is
// reported as a custom metric.
func BenchmarkPipelineStream(b *testing.B) {
	stream, err := nyx.NewStream(nyx.StreamParams{
		Base:   nyx.Params{N: 64, Seed: 11, Redshift: 42},
		Steps:  8,
		Fields: []string{nyx.FieldBaryonDensity},
	})
	if err != nil {
		b.Fatal(err)
	}
	var steps []map[string]*grid.Field3D
	for {
		snap, err := stream.Next()
		if err != nil {
			break
		}
		steps = append(steps, snap)
	}
	var cells int64
	for _, s := range steps {
		for _, f := range s {
			cells += int64(f.Len())
		}
	}
	for _, id := range []codec.ID{codec.SZ, codec.ZFP} {
		b.Run(string(id), func(b *testing.B) {
			drv, err := pipeline.New(core.Config{PartitionDim: 16, Codec: id},
				pipeline.Options{Policy: pipeline.CalibrateOnce})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := drv.Run(context.Background(), pipeline.FromSnapshots(steps)); err != nil {
				b.Fatal(err) // warmup: fit the calibration once
			}
			b.ReportAllocs()
			b.SetBytes(4 * cells)
			b.ResetTimer()
			start := time.Now()
			for i := 0; i < b.N; i++ {
				run, err := drv.Run(context.Background(), pipeline.FromSnapshots(steps))
				if err != nil {
					b.Fatal(err)
				}
				if run.Recalibrations != 0 {
					b.Fatalf("steady state recalibrated %d times", run.Recalibrations)
				}
			}
			elapsed := time.Since(start).Seconds()
			if elapsed > 0 {
				b.ReportMetric(float64(b.N*len(steps))/elapsed, "steps/sec")
			}
		})
	}
}

// BenchmarkCalibrate measures one full calibration of the 64³ density
// field per codec — the cost the streaming pipeline pays every time a
// field's rate model is (re)fitted, and the figure the closed-form
// ratio-quality model exists to shrink (ROADMAP item 2).
func BenchmarkCalibrate(b *testing.B) {
	f := benchDensity(b)
	for _, id := range []codec.ID{codec.SZ, codec.ZFP} {
		b.Run(string(id), func(b *testing.B) {
			eng, err := core.NewEngine(core.Config{PartitionDim: 16, Codec: id})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.SetBytes(int64(4 * f.Len()))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := eng.Calibrate(context.Background(), f); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDriftRecalibration measures the steady-state per-step cost of a
// streaming run whose drift monitor fires on essentially every step (the
// evolving source moves ~16 % per step against a near-zero threshold): the
// price of keeping the rate model fresh under continuous drift.
func BenchmarkDriftRecalibration(b *testing.B) {
	stream, err := nyx.NewStream(nyx.StreamParams{
		Base:   nyx.Params{N: 64, Seed: 11, Redshift: 42},
		Steps:  8,
		Fields: []string{nyx.FieldBaryonDensity},
	})
	if err != nil {
		b.Fatal(err)
	}
	var steps []map[string]*grid.Field3D
	for {
		snap, err := stream.Next()
		if err != nil {
			break
		}
		steps = append(steps, snap)
	}
	var cells int64
	for _, s := range steps {
		for _, f := range s {
			cells += int64(f.Len())
		}
	}
	for _, id := range []codec.ID{codec.SZ, codec.ZFP} {
		b.Run(string(id), func(b *testing.B) {
			drv, err := pipeline.New(core.Config{PartitionDim: 16, Codec: id},
				pipeline.Options{Policy: pipeline.DriftTriggered, DriftThreshold: 1e-9})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := drv.Run(context.Background(), pipeline.FromSnapshots(steps)); err != nil {
				b.Fatal(err) // warmup: first calibration fitted
			}
			b.ReportAllocs()
			b.SetBytes(4 * cells)
			b.ResetTimer()
			start := time.Now()
			for i := 0; i < b.N; i++ {
				if _, err := drv.Run(context.Background(), pipeline.FromSnapshots(steps)); err != nil {
					b.Fatal(err)
				}
			}
			elapsed := time.Since(start).Seconds()
			if elapsed > 0 {
				b.ReportMetric(float64(b.N*len(steps))/elapsed, "steps/sec")
			}
		})
	}
}

// BenchmarkTimeseriesModelVsProbe runs the same drift-triggered streaming
// workload twice per iteration — once under the default model-scan
// calibration and once under the pre-model probe ladder (corrections
// disabled) — and reports the realized bit rates of both plus their gap in
// percent. The PR 6 acceptance criterion is model_vs_probe_pct within ±1.
func BenchmarkTimeseriesModelVsProbe(b *testing.B) {
	stream, err := nyx.NewStream(nyx.StreamParams{
		Base:   nyx.Params{N: 64, Seed: 11, Redshift: 42},
		Steps:  8,
		Fields: []string{nyx.FieldBaryonDensity},
	})
	if err != nil {
		b.Fatal(err)
	}
	var steps []map[string]*grid.Field3D
	for {
		snap, err := stream.Next()
		if err != nil {
			break
		}
		steps = append(steps, snap)
	}
	configs := []struct {
		name string
		opts pipeline.Options
	}{
		{"model", pipeline.Options{Policy: pipeline.DriftTriggered, DriftThreshold: 0.25}},
		{"probe", pipeline.Options{
			Policy:         pipeline.DriftTriggered,
			DriftThreshold: 0.25,
			ModelGuardBand: -1,
			Calibration:    core.CalibrationOptions{Mode: core.ProbeLadder},
		}},
	}
	for _, id := range []codec.ID{codec.SZ, codec.ZFP} {
		b.Run(string(id), func(b *testing.B) {
			var rates [2]float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j, cfg := range configs {
					drv, err := pipeline.New(core.Config{PartitionDim: 16, Codec: id}, cfg.opts)
					if err != nil {
						b.Fatal(err)
					}
					run, err := drv.Run(context.Background(), pipeline.FromSnapshots(steps))
					if err != nil {
						b.Fatal(err)
					}
					rates[j] = run.BitRate()
				}
			}
			b.ReportMetric(rates[0], "model_bits")
			b.ReportMetric(rates[1], "probe_bits")
			b.ReportMetric((rates[0]/rates[1]-1)*100, "model_vs_probe_pct")
		})
	}
}

func BenchmarkNyxGenerate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := nyx.Generate(nyx.Params{N: 64, Seed: uint64(i + 1), Redshift: 42}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationCompressor(b *testing.B) { benchExperiment(b, "ablation-compressor") }
func BenchmarkCrossCodecAdaptive(b *testing.B) { benchExperiment(b, "codec-adaptive") }
