// Package huffman implements the canonical Huffman coder used by the SZ
// compressor stage. SZ's third step Huffman-codes the quantization indices
// produced by error-controlled linear-scaling quantization (Sec. 2.2 of the
// paper); this package provides that coder plus the bit-level I/O it needs.
//
// The coder is table-driven end to end (see huffman.go): dense
// slice-indexed frequency and code tables on encode, a first-level LUT with
// canonical fallback on decode, and a reusable Scratch so the per-partition
// hot path runs without transient allocation. The BitWriter/BitReader here
// are the general-purpose bit I/O used by other packages (internal/zfp);
// the Huffman hot loops inline their own 64-bit accumulators.
package huffman

import (
	"errors"
	"fmt"
	"math/bits"
)

// BitWriter accumulates bits MSB-first into a byte slice.
type BitWriter struct {
	buf  []byte
	cur  uint64 // pending bits, left-aligned within nbits
	ncur uint   // number of pending bits (< 8 after flushes)
}

// NewBitWriter returns a writer with the given initial capacity in bytes.
func NewBitWriter(capBytes int) *BitWriter {
	return &BitWriter{buf: make([]byte, 0, capBytes)}
}

// WriteBits appends the low n bits of v, most significant first. n ≤ 57 so
// the pending accumulator never overflows in one call.
func (w *BitWriter) WriteBits(v uint64, n uint) {
	if n == 0 {
		return
	}
	if n > 57 {
		panic(fmt.Sprintf("huffman: WriteBits n=%d > 57", n))
	}
	w.cur = (w.cur << n) | (v & ((1 << n) - 1))
	w.ncur += n
	for w.ncur >= 8 {
		w.ncur -= 8
		w.buf = append(w.buf, byte(w.cur>>w.ncur))
	}
}

// WriteBit appends one bit.
func (w *BitWriter) WriteBit(b uint) { w.WriteBits(uint64(b), 1) }

// WriteBits64 appends the low n bits of v, most significant first, for any
// n ≤ 64 — the word-level emission the zfp plane coder needs (a whole
// 64-coefficient bit plane in one call).
func (w *BitWriter) WriteBits64(v uint64, n uint) {
	if n <= 57 {
		w.WriteBits(v, n)
		return
	}
	if n > 64 {
		panic(fmt.Sprintf("huffman: WriteBits64 n=%d > 64", n))
	}
	w.WriteBits(v>>32, n-32)
	w.WriteBits(v&0xffffffff, 32)
}

// Reset clears the writer for reuse, keeping the buffer capacity (writers
// are pooled by the hot compression paths).
func (w *BitWriter) Reset() {
	w.buf = w.buf[:0]
	w.cur = 0
	w.ncur = 0
}

// AppendBitRange appends nbits bits of src starting at absolute bit offset
// `from` (MSB-first packed bytes, the layout Bytes produces). This is the
// splice primitive: per-worker bit buffers and per-block bit ranges are
// concatenated back into one stream without any byte-alignment requirement.
// Offsets past len(src)*8 read as zero bits (a writer's final byte is
// zero-padded, so callers may round ranges up to whole accumulator words).
func (w *BitWriter) AppendBitRange(src []byte, from, nbits int) {
	for nbits > 0 {
		n := nbits
		if n > 48 {
			n = 48
		}
		w.WriteBits(sliceBits(src, from, n), uint(n))
		from += n
		nbits -= n
	}
}

// sliceBits extracts bits [from, from+n) of src as a right-aligned word
// (n ≤ 48 so the gather never needs more than 7 source bytes).
func sliceBits(src []byte, from, n int) uint64 {
	bi := from >> 3
	drop := from & 7
	need := drop + n
	var acc uint64
	total := 0
	for ; total < need; total += 8 {
		var b byte
		if bi < len(src) {
			b = src[bi]
		}
		acc = acc<<8 | uint64(b)
		bi++
	}
	return (acc >> uint(total-need)) & (1<<uint(n) - 1)
}

// Bytes flushes any partial byte (zero-padded) and returns the buffer.
// Bytes may be called once; further writes after Bytes are invalid.
func (w *BitWriter) Bytes() []byte {
	if w.ncur > 0 {
		w.buf = append(w.buf, byte(w.cur<<(8-w.ncur)))
		w.ncur = 0
		w.cur = 0
	}
	return w.buf
}

// BitLen returns the number of bits written so far.
func (w *BitWriter) BitLen() int { return len(w.buf)*8 + int(w.ncur) }

// ErrOutOfBits is returned when a reader runs past the end of its buffer.
var ErrOutOfBits = errors.New("huffman: read past end of bitstream")

// BitReader consumes bits MSB-first from a byte slice.
type BitReader struct {
	buf  []byte
	pos  int // next byte index
	cur  uint64
	ncur uint
}

// NewBitReader wraps buf for reading.
func NewBitReader(buf []byte) *BitReader { return &BitReader{buf: buf} }

// ReadBits reads n ≤ 57 bits, MSB-first.
func (r *BitReader) ReadBits(n uint) (uint64, error) {
	if n > 57 {
		return 0, fmt.Errorf("huffman: ReadBits n=%d > 57", n)
	}
	if r.ncur < n {
		r.refill()
		if r.ncur < n {
			return 0, ErrOutOfBits
		}
	}
	r.ncur -= n
	v := (r.cur >> r.ncur) & ((1 << n) - 1)
	return v, nil
}

// refill tops the accumulator up as far as it can — one 8-byte load on the
// fast path (the high bits of cur above ncur are garbage by convention, so
// shifting whole words in is safe). Amortizes to one refill per ~7 bytes
// consumed whatever mix of read sizes the caller issues.
func (r *BitReader) refill() {
	if k := (64 - r.ncur) >> 3; r.pos+8 <= len(r.buf) {
		chunk := binaryBigEndianUint64(r.buf[r.pos:])
		r.cur = r.cur<<(8*k) | chunk>>(64-8*k)
		r.pos += int(k)
		r.ncur += 8 * k
		return
	}
	for r.ncur <= 56 && r.pos < len(r.buf) {
		r.cur = (r.cur << 8) | uint64(r.buf[r.pos])
		r.pos++
		r.ncur += 8
	}
}

// binaryBigEndianUint64 is binary.BigEndian.Uint64 without the import (the
// compiler recognizes the pattern as a single load+byteswap).
func binaryBigEndianUint64(b []byte) uint64 {
	_ = b[7]
	return uint64(b[7]) | uint64(b[6])<<8 | uint64(b[5])<<16 | uint64(b[4])<<24 |
		uint64(b[3])<<32 | uint64(b[2])<<40 | uint64(b[1])<<48 | uint64(b[0])<<56
}

// ReadBit reads a single bit.
func (r *BitReader) ReadBit() (uint, error) {
	v, err := r.ReadBits(1)
	return uint(v), err
}

// ReadBits64 reads n ≤ 64 bits, MSB-first — the counterpart of WriteBits64.
func (r *BitReader) ReadBits64(n uint) (uint64, error) {
	if n <= 57 {
		return r.ReadBits(n)
	}
	if n > 64 {
		return 0, fmt.Errorf("huffman: ReadBits64 n=%d > 64", n)
	}
	hi, err := r.ReadBits(n - 32)
	if err != nil {
		return 0, err
	}
	lo, err := r.ReadBits(32)
	if err != nil {
		return 0, err
	}
	return hi<<32 | lo, nil
}

// Skip discards n bits (data bits the caller does not need, e.g. the zfp
// boundary scan skipping verbatim plane prefixes).
func (r *BitReader) Skip(n int) error {
	for n > 57 {
		if _, err := r.ReadBits(57); err != nil {
			return err
		}
		n -= 57
	}
	_, err := r.ReadBits(uint(n))
	return err
}

// ReadUnary consumes up to max bits, stopping after the first 1 bit. It
// returns the number of 0 bits consumed and whether a 1 terminated the run
// (when false, exactly max zero bits were consumed). Running out of buffer
// before either condition returns ErrOutOfBits, matching bit-by-bit reads.
func (r *BitReader) ReadUnary(max uint) (zeros uint, terminated bool, err error) {
	for zeros < max {
		if r.ncur == 0 {
			r.refill()
			if r.ncur == 0 {
				return zeros, false, ErrOutOfBits
			}
		}
		n := r.ncur
		if rem := max - zeros; rem < n {
			n = rem
		}
		window := (r.cur >> (r.ncur - n)) & (1<<n - 1)
		if window == 0 {
			zeros += n
			r.ncur -= n
			continue
		}
		lead := n - uint(bits.Len64(window))
		zeros += lead
		r.ncur -= lead + 1
		return zeros, true, nil
	}
	return zeros, false, nil
}

// BitPos returns the number of bits consumed so far.
func (r *BitReader) BitPos() int { return r.pos*8 - int(r.ncur) }

// SeekBit repositions the reader to an absolute bit offset, enabling
// random access into a stream whose block boundaries are known (the zfp
// parallel decoder and its single-pass rate probes).
func (r *BitReader) SeekBit(off int) error {
	if off < 0 || off > len(r.buf)*8 {
		return ErrOutOfBits
	}
	r.pos = off >> 3
	r.cur, r.ncur = 0, 0
	if rem := uint(off & 7); rem > 0 {
		r.cur = uint64(r.buf[r.pos])
		r.pos++
		r.ncur = 8 - rem
	}
	return nil
}

// Reset re-targets the reader at a new buffer from offset zero (readers are
// pooled by the hot decompression paths).
func (r *BitReader) Reset(buf []byte) {
	r.buf = buf
	r.pos = 0
	r.cur, r.ncur = 0, 0
}
