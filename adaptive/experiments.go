package adaptive

import (
	"fmt"
	"strings"

	"repro/internal/apierr"
	"repro/internal/experiments"
)

// Experiment surface: the paper's tables and figures, regenerated on the
// synthetic substrate. Each experiment maps a shared context (cached
// snapshots + calibrations) to a rendered text table.

// Experiment is one registered table/figure reproduction.
type Experiment = experiments.Experiment

// ExperimentResult is a regenerated table/figure (String renders it).
type ExperimentResult = experiments.Result

// ExperimentContext carries the engine and caches snapshots and
// calibrations across experiments.
type ExperimentContext = experiments.Context

// Experiments lists every experiment in paper order, then the ablations.
func Experiments() []Experiment { return append([]Experiment(nil), experiments.All...) }

// ExperimentByID returns the experiment with the given ID ("fig13",
// "sec43", "ablation-clamp", ...).
func ExperimentByID(id string) (Experiment, error) { return experiments.ByID(id) }

// NewExperimentContext builds an experiment context from the same option
// set as New. Only the workload knobs (WithGridN, WithSeed, WithRedshift)
// and the engine knobs an experiment run can express (WithCodec,
// WithPartitionDim, WithWorkers) apply; any other option is rejected with
// ErrBadConfig rather than silently producing tables for a configuration
// the caller did not ask for.
func NewExperimentContext(opts ...Option) (*ExperimentContext, error) {
	var cfg config
	for _, opt := range opts {
		if err := opt(&cfg); err != nil {
			return nil, err
		}
	}
	if len(cfg.notForExperiments) > 0 {
		return nil, fmt.Errorf("adaptive: %w: option(s) %s not supported by experiment contexts",
			apierr.ErrBadConfig, strings.Join(cfg.notForExperiments, ", "))
	}
	return experiments.NewContext(experiments.Config{
		N:            cfg.gridN,
		PartitionDim: cfg.engine.PartitionDim,
		Seed:         cfg.seed,
		Redshift:     cfg.redshift,
		Workers:      cfg.engine.Workers,
		Codec:        cfg.engine.Codec,
	})
}
