package client

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/apierr"
	"repro/internal/faultinject"
	"repro/internal/grid"
	"repro/internal/server"
)

// script is a deterministic response sequence: each call pops the next
// scripted response; past the end everything succeeds with the fallback.
type script struct {
	t     *testing.T
	calls atomic.Int64
	steps []func(w http.ResponseWriter, r *http.Request)
	done  func(w http.ResponseWriter, r *http.Request)
}

func (s *script) handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		i := int(s.calls.Add(1)) - 1
		if i < len(s.steps) {
			s.steps[i](w, r)
			return
		}
		if s.done != nil {
			s.done(w, r)
			return
		}
		s.t.Errorf("unexpected request %d to %s", i, r.URL.Path)
		w.WriteHeader(http.StatusTeapot)
	})
}

// respond writes a service-style typed error envelope.
func respondError(status int, code, msg string, retryAfter int) func(http.ResponseWriter, *http.Request) {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if retryAfter > 0 {
			w.Header().Set("Retry-After", fmt.Sprint(retryAfter))
		}
		w.WriteHeader(status)
		fmt.Fprintf(w, `{"error":{"code":%q,"message":%q}}`, code, msg)
	}
}

func respondArchive(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("X-Rate-Level", "2")
	w.Header().Set("X-Budget-Scale", "2.25")
	w.Header().Set("X-Bit-Rate", "3.5")
	w.Header().Set("X-Ratio", "9.1")
	_, _ = w.Write([]byte("archive-bytes"))
}

// testClient builds a client against a scripted server with a fake clock:
// Sleep records and advances instantly, Rand is pinned to 0.5.
func testClient(t *testing.T, sc *script, mutate func(*Config)) (*Client, *faultinject.Clock) {
	t.Helper()
	ts := httptest.NewServer(sc.handler())
	t.Cleanup(ts.Close)
	ck := faultinject.NewClock()
	cfg := Config{
		BaseURL:    ts.URL,
		Tenant:     "t0",
		HTTPClient: ts.Client(),
		Now:        ck.Now,
		Sleep: func(ctx context.Context, d time.Duration) error {
			ck.Sleep(d)
			return ctx.Err()
		},
		Rand: func() float64 { return 0.5 },
	}
	if mutate != nil {
		mutate(&cfg)
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c, ck
}

func field(t *testing.T) *grid.Field3D {
	t.Helper()
	f := grid.NewField3D(2, 2, 2)
	for i := range f.Data {
		f.Data[i] = float32(i)
	}
	return f
}

func TestCompressParsesRateHeaders(t *testing.T) {
	sc := &script{t: t, steps: []func(http.ResponseWriter, *http.Request){
		func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path != "/v1/compress/density" {
				t.Errorf("path = %q", r.URL.Path)
			}
			if r.Header.Get("X-Tenant") != "t0" {
				t.Errorf("tenant header = %q", r.Header.Get("X-Tenant"))
			}
			respondArchive(w, r)
		},
	}}
	c, _ := testClient(t, sc, nil)
	res, err := c.Compress(context.Background(), "density", field(t))
	if err != nil {
		t.Fatal(err)
	}
	if string(res.Archive) != "archive-bytes" {
		t.Errorf("archive = %q", res.Archive)
	}
	if res.RateLevel != 2 || res.BudgetScale != 2.25 || res.BitRate != 3.5 || res.Ratio != 9.1 {
		t.Errorf("operating point = %+v", res)
	}
	if ctr := c.Counters(); ctr.Attempts != 1 || ctr.Retries != 0 {
		t.Errorf("counters = %+v", ctr)
	}
}

func TestRetryHonorsRetryAfterWithJitterOnTop(t *testing.T) {
	sc := &script{t: t, steps: []func(http.ResponseWriter, *http.Request){
		respondError(429, "overloaded", "queue full", 2),
		respondError(429, "overloaded", "queue full", 3),
		respondArchive,
	}}
	c, ck := testClient(t, sc, func(cfg *Config) {
		cfg.BaseBackoff = 100 * time.Millisecond
		cfg.MaxBackoff = time.Second
	})
	if _, err := c.Compress(context.Background(), "density", field(t)); err != nil {
		t.Fatal(err)
	}
	// Rand pinned to 0.5: retry 0 jitters 0.5·100ms, retry 1 jitters
	// 0.5·200ms, each on top of the server's Retry-After floor.
	want := []time.Duration{
		2*time.Second + 50*time.Millisecond,
		3*time.Second + 100*time.Millisecond,
	}
	got := ck.Sleeps()
	if len(got) != len(want) {
		t.Fatalf("sleeps = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("sleep %d = %v, want %v (Retry-After floor must be honored)", i, got[i], want[i])
		}
	}
	ctr := c.Counters()
	if ctr.Attempts != 3 || ctr.Retries != 2 || ctr.Rejected != 2 {
		t.Errorf("counters = %+v", ctr)
	}
}

func TestBackoffIsCappedExponentialWithFullJitter(t *testing.T) {
	steps := []func(http.ResponseWriter, *http.Request){}
	for i := 0; i < 5; i++ {
		steps = append(steps, respondError(429, "overloaded", "queue full", 0))
	}
	sc := &script{t: t, steps: steps, done: respondArchive}
	c, ck := testClient(t, sc, func(cfg *Config) {
		cfg.MaxAttempts = 6
		cfg.BaseBackoff = 100 * time.Millisecond
		cfg.MaxBackoff = 400 * time.Millisecond
		cfg.Breaker = BreakerConfig{Threshold: -1} // 5 failures would trip the default
	})
	if _, err := c.Compress(context.Background(), "density", field(t)); err != nil {
		t.Fatal(err)
	}
	// No Retry-After: pure full jitter over 100, 200, 400, 400, 400ms.
	want := []time.Duration{50, 100, 200, 200, 200}
	got := ck.Sleeps()
	if len(got) != len(want) {
		t.Fatalf("sleeps = %v", got)
	}
	for i := range want {
		if got[i] != want[i]*time.Millisecond {
			t.Errorf("sleep %d = %v, want %v", i, got[i], want[i]*time.Millisecond)
		}
	}
}

func TestDrainingRefusalIsRetriedAndTyped(t *testing.T) {
	sc := &script{t: t, steps: []func(http.ResponseWriter, *http.Request){
		respondError(503, "draining", "lame-duck", 1),
		respondArchive,
	}}
	c, _ := testClient(t, sc, nil)
	if _, err := c.Compress(context.Background(), "density", field(t)); err != nil {
		t.Fatal(err)
	}
	if ctr := c.Counters(); ctr.Rejected != 1 || ctr.Retries != 1 {
		t.Errorf("counters = %+v", ctr)
	}

	// Exhausted retries surface the typed sentinel.
	sc2 := &script{t: t, done: respondError(503, "draining", "lame-duck", 1)}
	c2, _ := testClient(t, sc2, func(cfg *Config) { cfg.MaxAttempts = 2 })
	_, err := c2.Compress(context.Background(), "density", field(t))
	if !errors.Is(err, apierr.ErrDraining) {
		t.Fatalf("err = %v, want ErrDraining", err)
	}
}

func TestCompressNeverRetriesServerErrors(t *testing.T) {
	sc := &script{t: t, steps: []func(http.ResponseWriter, *http.Request){
		respondError(500, "internal", "batch execution panicked", 0),
	}}
	c, ck := testClient(t, sc, nil)
	_, err := c.Compress(context.Background(), "density", field(t))
	if err == nil {
		t.Fatal("want error")
	}
	// A 500 may have executed server-side; compress is not idempotent, so
	// exactly one attempt and no sleeps.
	if ctr := c.Counters(); ctr.Attempts != 1 || ctr.Retries != 0 {
		t.Errorf("counters = %+v", ctr)
	}
	if len(ck.Sleeps()) != 0 {
		t.Errorf("slept %v on a non-retryable failure", ck.Sleeps())
	}
}

func TestDecompressRetriesServerErrors(t *testing.T) {
	f := field(t)
	sc := &script{t: t, steps: []func(http.ResponseWriter, *http.Request){
		respondError(500, "internal", "transient", 0),
		func(w http.ResponseWriter, r *http.Request) { _, _ = w.Write(server.EncodeField(f)) },
	}}
	c, _ := testClient(t, sc, nil)
	got, err := c.Decompress(context.Background(), []byte("archive"))
	if err != nil {
		t.Fatal(err)
	}
	if !got.SameShape(f) {
		t.Errorf("decoded shape %v", got)
	}
	if ctr := c.Counters(); ctr.Attempts != 2 || ctr.Retries != 1 {
		t.Errorf("counters = %+v", ctr)
	}
}

func TestBadRequestIsNeverRetried(t *testing.T) {
	sc := &script{t: t, steps: []func(http.ResponseWriter, *http.Request){
		respondError(400, "bad_config", "invalid field name", 0),
	}}
	c, _ := testClient(t, sc, nil)
	_, err := c.Decompress(context.Background(), []byte("archive"))
	if !errors.Is(err, apierr.ErrBadConfig) {
		t.Fatalf("err = %v, want ErrBadConfig", err)
	}
	if ctr := c.Counters(); ctr.Attempts != 1 {
		t.Errorf("counters = %+v", ctr)
	}
}

func TestStats(t *testing.T) {
	sc := &script{t: t, steps: []func(http.ResponseWriter, *http.Request){
		func(w http.ResponseWriter, r *http.Request) {
			if r.Method != http.MethodGet || r.URL.Path != "/v1/stats" {
				t.Errorf("%s %s", r.Method, r.URL.Path)
			}
			_ = json.NewEncoder(w).Encode(server.Stats{Served: 42, Draining: true})
		},
	}}
	c, _ := testClient(t, sc, nil)
	st, err := c.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Served != 42 || !st.Draining {
		t.Errorf("stats = %+v", st)
	}
}

func TestBreakerOpensHalfOpensAndCloses(t *testing.T) {
	var fail atomic.Bool
	fail.Store(true)
	sc := &script{t: t, done: func(w http.ResponseWriter, r *http.Request) {
		if fail.Load() {
			respondError(500, "internal", "down", 0)(w, r)
			return
		}
		respondArchive(w, r)
	}}
	c, ck := testClient(t, sc, func(cfg *Config) {
		cfg.MaxAttempts = 1
		cfg.Breaker = BreakerConfig{Threshold: 3, Cooldown: 2 * time.Second}
	})
	ctx := context.Background()
	f := field(t)

	// Three consecutive failures trip the breaker.
	for i := 0; i < 3; i++ {
		if _, err := c.Compress(ctx, "density", f); err == nil {
			t.Fatal("want failure")
		}
	}
	// Open: the next call fails fast, locally, typed.
	_, err := c.Compress(ctx, "density", f)
	if !errors.Is(err, apierr.ErrCircuitOpen) {
		t.Fatalf("err = %v, want ErrCircuitOpen", err)
	}
	if ctr := c.Counters(); ctr.Attempts != 3 || ctr.CircuitOpen != 1 {
		t.Errorf("counters = %+v (open breaker must not send HTTP)", ctr)
	}
	// Endpoints break independently: stats still flows... to a scripted
	// 500 here, but the point is it reaches the wire.
	if _, err := c.Stats(ctx); errors.Is(err, apierr.ErrCircuitOpen) {
		t.Errorf("stats shares compress's breaker: %v", err)
	}

	// Half-open after the cooldown: one probe; it fails, re-opening.
	ck.Advance(2 * time.Second)
	if _, err := c.Compress(ctx, "density", f); errors.Is(err, apierr.ErrCircuitOpen) {
		t.Fatalf("cooldown elapsed, want a probe on the wire, got %v", err)
	}
	if _, err := c.Compress(ctx, "density", f); !errors.Is(err, apierr.ErrCircuitOpen) {
		t.Fatalf("failed probe must re-open the breaker, got %v", err)
	}

	// Second cooldown, healthy endpoint: the probe closes the breaker.
	ck.Advance(2 * time.Second)
	fail.Store(false)
	for i := 0; i < 3; i++ {
		if _, err := c.Compress(ctx, "density", f); err != nil {
			t.Fatalf("call %d after recovery: %v", i, err)
		}
	}
}

func TestCircuitOpenReportsLastFailure(t *testing.T) {
	sc := &script{t: t, done: respondError(429, "overloaded", "queue full", 0)}
	c, _ := testClient(t, sc, func(cfg *Config) {
		cfg.MaxAttempts = 4
		cfg.Breaker = BreakerConfig{Threshold: 2, Cooldown: time.Minute}
	})
	// The retry loop itself trips the breaker (2 failures), so the third
	// attempt fails fast mid-call; the error must still expose what the
	// endpoint was actually answering.
	_, err := c.Compress(context.Background(), "density", field(t))
	if !errors.Is(err, apierr.ErrCircuitOpen) {
		t.Fatalf("err = %v, want ErrCircuitOpen", err)
	}
}

func TestCallerContextCancelStopsRetries(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	sc := &script{t: t, done: respondError(429, "overloaded", "queue full", 5)}
	c, _ := testClient(t, sc, func(cfg *Config) {
		cfg.Sleep = func(ctx context.Context, d time.Duration) error {
			cancel() // the caller gives up mid-backoff
			return ctx.Err()
		}
	})
	_, err := c.Compress(ctx, "density", field(t))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ctr := c.Counters(); ctr.Attempts != 1 {
		t.Errorf("counters = %+v", ctr)
	}
}

func TestAttemptTimeoutIsRetriedForIdempotentReads(t *testing.T) {
	f := field(t)
	var n atomic.Int64
	sc := &script{t: t, done: func(w http.ResponseWriter, r *http.Request) {
		if n.Add(1) == 1 {
			// First attempt hangs past the per-attempt deadline. Drain the
			// body first: net/http only watches for client disconnect once
			// the request body has been consumed, and without that watch the
			// handler (and the test server's Close) would never unblock.
			_, _ = io.ReadAll(r.Body)
			<-r.Context().Done()
			return
		}
		_, _ = w.Write(server.EncodeField(f))
	}}
	c, _ := testClient(t, sc, func(cfg *Config) {
		cfg.AttemptTimeout = 50 * time.Millisecond
		cfg.Sleep = func(ctx context.Context, d time.Duration) error { return ctx.Err() }
	})
	got, err := c.Decompress(context.Background(), []byte("archive"))
	if err != nil {
		t.Fatal(err)
	}
	if !got.SameShape(f) {
		t.Errorf("decoded shape %v", got)
	}
	if ctr := c.Counters(); ctr.Attempts != 2 || ctr.Retries != 1 {
		t.Errorf("counters = %+v", ctr)
	}
}

func TestConnectionResetRetriesOnlyIdempotent(t *testing.T) {
	// A faultinject-reset connection kills the first attempt mid-flight;
	// decompress (idempotent) retries onto a fresh conn, compress does not.
	f := field(t)
	var accepts atomic.Int64
	mk := func() (*httptest.Server, *Client) {
		ts := httptest.NewUnstartedServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			_, _ = w.Write(server.EncodeField(f))
		}))
		ts.Listener = faultinject.WrapListener(ts.Listener, func(accept int) faultinject.ConnFaults {
			if accepts.Add(1) == 1 {
				return faultinject.ConnFaults{ResetAfterBytes: 64}
			}
			return faultinject.ConnFaults{}
		})
		ts.Start()
		t.Cleanup(ts.Close)
		c, err := New(Config{
			BaseURL:    ts.URL,
			HTTPClient: &http.Client{}, // fresh transport: no pooled conns across tests
			Sleep:      func(ctx context.Context, d time.Duration) error { return ctx.Err() },
			Rand:       func() float64 { return 0.5 },
		})
		if err != nil {
			t.Fatal(err)
		}
		return ts, c
	}

	accepts.Store(0)
	_, c := mk()
	if _, err := c.Decompress(context.Background(), []byte("archive")); err != nil {
		t.Fatalf("idempotent read across a reset conn: %v", err)
	}
	if ctr := c.Counters(); ctr.Retries != 1 {
		t.Errorf("counters = %+v, want one transport retry", ctr)
	}

	accepts.Store(0)
	_, c2 := mk()
	if _, err := c2.Compress(context.Background(), "density", f); err == nil {
		t.Fatal("compress across a reset conn must fail, not retry")
	}
	if ctr := c2.Counters(); ctr.Retries != 0 {
		t.Errorf("counters = %+v, compress must not retry transport errors", ctr)
	}
}
