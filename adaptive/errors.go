package adaptive

import "repro/internal/apierr"

// The error taxonomy. Every layer of the stack wraps these sentinels with
// %w at its boundary, so errors.Is works on any error a facade call
// returns, no matter how deep the failure originated.
var (
	// ErrBadConfig marks a rejected configuration or argument: a
	// non-positive partition dim, an out-of-range clamp factor, a
	// non-positive quality budget, a field whose geometry does not match
	// the configured layout.
	ErrBadConfig = apierr.ErrBadConfig

	// ErrCorruptArchive marks an archive — a v2 field archive, a v3
	// stream container, or a codec frame inside either — that failed
	// validation: bad magic, hostile header, truncation, trailing bytes,
	// checksum mismatch.
	ErrCorruptArchive = apierr.ErrCorruptArchive

	// ErrCodecUnknown marks a codec ID no backend is registered for,
	// whether it came from an option (WithCodec) or from the header of a
	// frame being decoded.
	ErrCodecUnknown = apierr.ErrCodecUnknown

	// ErrDriftRecalibration marks a mid-run recalibration failure in the
	// streaming pipeline: drift (or policy) demanded a re-fit of an
	// already-calibrated field and the fit failed. A field's initial
	// calibration failing is a plain error — this sentinel distinguishes
	// "the stream went bad mid-run".
	ErrDriftRecalibration = apierr.ErrDriftRecalibration

	// ErrOverloaded marks a request the compression service refused to
	// keep its queues bounded: the tenant's admission queue was full
	// (backpressure) or the server was shutting down. The request was
	// never started; retrying after a backoff is safe, which is what the
	// service's 429 responses advertise.
	ErrOverloaded = apierr.ErrOverloaded

	// ErrDraining marks a request refused because the service is in
	// lame-duck mode (Server.BeginDrain, typically on SIGTERM): it is
	// finishing in-flight work but admitting nothing new. Like
	// ErrOverloaded the request was never started, so retrying is safe —
	// and, unlike overload, retrying against a replacement instance can
	// succeed immediately.
	ErrDraining = apierr.ErrDraining

	// ErrCircuitOpen marks a call the resilient Client failed fast
	// locally: its per-endpoint circuit breaker was open after a run of
	// consecutive server-class failures, so no request was sent. Purely
	// client-side — the service never emits it.
	ErrCircuitOpen = apierr.ErrCircuitOpen

	// ErrNotFound marks a read that addressed something that does not
	// exist — an archive stream, step, or field name — as opposed to one
	// that found corrupt bytes (ErrCorruptArchive). The archive server's
	// 404 responses map back to it.
	ErrNotFound = apierr.ErrNotFound
)

// DriftRecalibrationError is the typed form of ErrDriftRecalibration:
// errors.As extracts the failing field and the drift that triggered the
// re-fit, while errors.Is on the same error still matches the sentinel.
type DriftRecalibrationError = apierr.DriftRecalibrationError

// OverloadError is the typed form of ErrOverloaded: errors.As extracts
// which tenant's queue refused the request and its configured depth, while
// errors.Is on the same error still matches the sentinel.
type OverloadError = apierr.OverloadError
