// Command adaptived serves the adaptive compressor over the network: a
// long-running HTTP/1.1 + h2c service that compresses, decompresses, and
// calibrates fields for many concurrent tenants, with per-tenant bounded
// queues (typed 429 backpressure), deficit-round-robin fair batching,
// token-bucket rate metering, and — with -adapt — a load controller that
// steps error-bound budgets up under pressure and back down when it
// clears.
//
// Usage:
//
//	adaptived -addr :8323 [-codec sz] [-partition 16] [-rel-eb 0.1] \
//	          [-queue 64] [-token-rate 0] [-batch-fields 16] [-inflight 2] \
//	          [-adapt] [-slo 250ms] [-max-level 4] [-eb-step 2] \
//	          [-archive stream.acs] [-checkpoint 4] [-fsync] \
//	          [-floor tenant-03=1 -floor tenant-04=2]
//
// With -archive, every compressed batch is appended to the named file as
// one step of a crash-recoverable v3 stream: -checkpoint N snapshots the
// footer every N steps (so a kill -9 loses at most N steps; streamrecover
// salvages the rest), and -fsync bounds that loss against power failure
// too. -floor caps a tenant's budget scale so load-driven stepping never
// degrades that tenant past its contract.
//
// On SIGTERM/SIGINT the server enters lame-duck mode: new requests get a
// typed 503 ("draining", safe to retry against a replacement) while queued
// and in-flight work runs to completion, then the process exits 0.
//
// API (tenancy via the X-Tenant header; bodies are the raw-field wire
// format, 12-byte little-endian dim header + fp32 cells):
//
//	POST /v1/compress/{field}   raw field in  → archive v2 out
//	POST /v1/decompress         archive v2 in → raw field out
//	POST /v1/calibrate/{field}  raw field in  → calibration JSON out
//	GET  /v1/stats              counters and controller state
//	GET  /healthz               liveness (503 while draining)
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/adaptive"
)

// floorsFlag accumulates repeated -floor tenant=scale pairs.
type floorsFlag map[string]float64

func (f floorsFlag) String() string {
	var parts []string
	for k, v := range f {
		parts = append(parts, fmt.Sprintf("%s=%g", k, v))
	}
	return strings.Join(parts, ",")
}

func (f floorsFlag) Set(s string) error {
	tenant, val, ok := strings.Cut(s, "=")
	if !ok || tenant == "" {
		return fmt.Errorf("want tenant=scale, got %q", s)
	}
	scale, err := strconv.ParseFloat(val, 64)
	if err != nil {
		return fmt.Errorf("scale in %q: %w", s, err)
	}
	f[tenant] = scale
	return nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("adaptived: ")
	floors := make(floorsFlag)
	var (
		addr      = flag.String("addr", ":8323", "listen address")
		codecName = flag.String("codec", "sz", "compression backend")
		partition = flag.Int("partition", 16, "partition brick dimension")
		relEB     = flag.Float64("rel-eb", 0.1, "quality budget relative to each field's mean |value|")
		queue     = flag.Int("queue", 64, "per-tenant admission queue depth")
		tokenRate = flag.Float64("token-rate", 0, "per-tenant rate limit in cells/sec (0 = unmetered)")
		batchF    = flag.Int("batch-fields", 16, "max fields coalesced into one pipeline batch")
		inflight  = flag.Int("inflight", 2, "max concurrently executing batches")
		adapt     = flag.Bool("adapt", false, "enable load-driven rate stepping")
		slo       = flag.Duration("slo", 250*time.Millisecond, "p99 latency SLO for the load controller")
		maxLevel  = flag.Int("max-level", 4, "load controller's max step level")
		ebStep    = flag.Float64("eb-step", 2, "per-level budget multiplier")
		archive   = flag.String("archive", "", "append compressed batches to this crash-recoverable v3 stream file")
		chkpt     = flag.Int("checkpoint", 4, "steps between archive footer checkpoints (with -archive)")
		fsync     = flag.Bool("fsync", false, "fsync the archive after each checkpoint (with -archive)")
		drainFor  = flag.Duration("drain-timeout", 10*time.Second, "max time to finish in-flight work on shutdown")
	)
	flag.Var(floors, "floor", "cap a tenant's budget scale, tenant=scale (repeatable)")
	flag.Parse()

	sys, err := adaptive.New(
		adaptive.WithCodec(*codecName),
		adaptive.WithPartitionDim(*partition),
		adaptive.WithRelAvgEB(*relEB),
	)
	if err != nil {
		log.Fatal(err)
	}
	srv, err := sys.NewServer(adaptive.ServerConfig{
		QueueDepth:         *queue,
		TokenRate:          *tokenRate,
		MaxBatchFields:     *batchF,
		MaxInflightBatches: *inflight,
		QualityFloors:      floors,
		Adapt: adaptive.ServerAdaptConfig{
			Enabled:    *adapt,
			LatencySLO: *slo,
			MaxLevel:   *maxLevel,
			EBStep:     *ebStep,
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	var archFile *os.File
	var archWriter *adaptive.StreamWriter
	if *archive != "" {
		archFile, err = os.Create(*archive)
		if err != nil {
			log.Fatal(err)
		}
		archWriter, err = adaptive.NewCheckpointedStreamWriter(archFile, adaptive.CheckpointOptions{
			Interval: *chkpt,
			Sync:     *fsync,
		})
		if err != nil {
			log.Fatal(err)
		}
		srv.AttachArchive(archWriter)
		log.Printf("archiving batches to %s (checkpoint every %d steps, fsync %v)", *archive, *chkpt, *fsync)
	}

	hs := adaptive.NewH2CServer(*addr, srv.Handler())
	go func() {
		log.Printf("serving on %s (codec %s, partition %d, adapt %v)", *addr, sys.Codec(), sys.PartitionDim(), *adapt)
		if err := hs.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatal(err)
		}
	}()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
	log.Print("draining: refusing new work, finishing in-flight requests")
	ctx, cancel := context.WithTimeout(context.Background(), *drainFor)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		log.Printf("drain: %v", err)
	}
	if err := hs.Shutdown(ctx); err != nil {
		log.Printf("http shutdown: %v", err)
	}
	if err := srv.Close(); err != nil {
		log.Printf("service close: %v", err)
	}
	if archWriter != nil {
		if err := archWriter.Close(); err != nil {
			log.Printf("archive close: %v", err)
		}
		if err := archFile.Close(); err != nil {
			log.Printf("archive file close: %v", err)
		}
	}
	st := srv.Stats()
	log.Printf("served %d requests (%d rejected, %d failed) in %d batches", st.Served, st.Rejected, st.Failed, st.Batches)
}
