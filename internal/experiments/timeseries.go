package experiments

import (
	"context"
	"fmt"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/nyx"
	"repro/internal/pipeline"
)

// timeseriesSteps is the run length of the streaming experiment: long
// enough that drift accumulates past the recalibration threshold several
// times, short enough for CI.
const timeseriesSteps = 8

// TimeseriesPipeline extends the Sec. 4.3 in situ overhead story across
// the time dimension: an evolving 8-step synthetic run is streamed through
// the pipeline driver under the three recalibration policies, for every
// registered codec. Calibrate-every-step is the quality reference (the
// model is never stale, at per-snapshot fitting cost); calibrate-once is
// the cheapest schedule (Fig. 10b's consistency assumption taken at face
// value); drift-triggered recalibrates only when the global mean feature
// moves, and the experiment shows it pays a near-calibrate-once cost at a
// near-every-step bit rate.
func TimeseriesPipeline(ctx *Context) (*Result, error) {
	snap, err := ctx.Snapshot(ctx.Cfg.Redshift)
	if err != nil {
		return nil, err
	}
	stream, err := nyx.NewStreamFrom(snap.Fields, nyx.StreamParams{
		Steps:  timeseriesSteps,
		Fields: []string{nyx.FieldBaryonDensity},
		Seed:   ctx.Cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	// Materialize the run once so every codec/policy cell compresses the
	// identical byte-for-byte timesteps.
	var steps []map[string]*grid.Field3D
	for {
		fields, err := stream.Next()
		if err != nil {
			break
		}
		steps = append(steps, fields)
	}

	res := &Result{
		ID:    "timeseries",
		Title: fmt.Sprintf("Streaming pipeline over %d evolving steps (baryon density)", timeseriesSteps),
		Cols: []string{"codec", "policy", "recals", "corr", "bitrate", "ratio",
			"vs_every_step", "cal_s", "compress_s"},
	}
	// The first three variants compare recalibration schedules under the
	// default model-scan calibration; the last re-runs drift-triggered with
	// the pre-model probe ladder (corrections disabled) so the table shows
	// the ratio-quality model choosing the same bit rate at a fraction of
	// the calibration cost.
	variants := []struct {
		label string
		opts  pipeline.Options
	}{
		{pipeline.CalibrateEveryStep.String(), pipeline.Options{Policy: pipeline.CalibrateEveryStep}},
		{pipeline.CalibrateOnce.String(), pipeline.Options{Policy: pipeline.CalibrateOnce}},
		{pipeline.DriftTriggered.String(), pipeline.Options{Policy: pipeline.DriftTriggered}},
		{"drift-probe-ladder", pipeline.Options{
			Policy:         pipeline.DriftTriggered,
			ModelGuardBand: -1,
			Calibration:    core.CalibrationOptions{Mode: core.ProbeLadder},
		}},
	}
	for _, id := range codec.IDs() {
		var ref *pipeline.RunStats // the codec's calibrate-every-step run
		for _, v := range variants {
			opts := v.opts
			opts.DriftThreshold = 0.25
			opts.RelAvgEB = 0.1
			drv, err := pipeline.New(core.Config{
				PartitionDim: ctx.Cfg.PartitionDim,
				Workers:      ctx.Cfg.Workers,
				Codec:        id,
			}, opts)
			if err != nil {
				return nil, err
			}
			run, err := drv.Run(context.Background(), pipeline.FromSnapshots(steps))
			if err != nil {
				return nil, fmt.Errorf("experiments: %s/%s: %w", id, v.label, err)
			}
			if ref == nil {
				ref = run
			}
			res.AddRow(string(id), v.label,
				fmt.Sprintf("%d", run.Recalibrations),
				fmt.Sprintf("%d", run.ModelCorrections),
				fnum(run.BitRate()), fnum(run.Ratio()),
				fmt.Sprintf("%+.2f%%", (run.BitRate()/ref.BitRate()-1)*100),
				fnum(run.CalibrateSeconds), fnum(run.CompressSeconds))
		}
	}
	res.Notef("fixed per-field budget (0.1×mean |value| at first calibration) across all policies, so bit rates are comparable; recals counts include each field's initial fit")
	res.Notef("the evolving source steepens the density field ~16%% per step; drift-triggered (threshold 0.25) absorbs small drifts with O(1) model corrections (corr) and refits only when the model goes stale")
	res.Notef("drift-probe-ladder is the pre-model configuration (probe-ladder calibration, corrections off); its bit rate vs drift-triggered measures the model-chosen vs probe-chosen gap")
	return res, nil
}
