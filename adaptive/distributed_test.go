package adaptive_test

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/adaptive"
)

// distSource builds a fresh deterministic 2-step source; each rank must
// consume its own copy of the identical stream.
func distSource(t *testing.T) adaptive.Source {
	t.Helper()
	src, err := adaptive.NewSynthStream(adaptive.SynthStreamParams{
		Base:   adaptive.SynthParams{N: 16, Seed: 11},
		Steps:  2,
		Fields: []string{"baryon_density"},
	})
	if err != nil {
		t.Fatal(err)
	}
	return src
}

var distRankCfg = adaptive.RankConfig{
	Engine: adaptive.EngineConfig{PartitionDim: 8},
	AvgEB:  0.5,
}

const distParts = 8 // 16³ grid tiled by 8³ partitions

// runDistWorld runs one RunRank per transport and merges the shards.
func runDistWorld(t *testing.T, ts []adaptive.Transport) []byte {
	t.Helper()
	shards := make([]bytes.Buffer, len(ts))
	errs := make([]error, len(ts))
	var wg sync.WaitGroup
	for r := range ts {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			_, errs[r] = adaptive.RunRank(context.Background(), ts[r], distSource(t), &shards[r], distRankCfg)
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	in := make([]adaptive.ShardInput, len(shards))
	for r := range shards {
		b := shards[r].Bytes()
		in[r] = adaptive.ShardInput{R: bytes.NewReader(b), Size: int64(len(b))}
	}
	var merged bytes.Buffer
	rep, err := adaptive.MergeShards(&merged, in, distParts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Steps != 2 || rep.SalvagedShards != 0 || rep.DuplicateParts != 0 {
		t.Fatalf("healthy merge report = %+v", rep)
	}
	return merged.Bytes()
}

// TestDistributedFacadeTCPMatchesInProcess drives the whole distributed
// facade surface: an in-process RunWorld produces the golden archive, a
// 2-rank world joined over real TCP must reproduce it byte for byte.
func TestDistributedFacadeTCPMatchesInProcess(t *testing.T) {
	var golden []byte
	err := adaptive.RunWorld(1, func(tr adaptive.Transport) error {
		golden = runDistWorld(t, []adaptive.Transport{tr})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(golden) == 0 {
		t.Fatal("empty golden archive")
	}

	cfg := adaptive.NetConfig{
		HeartbeatInterval: -1,
		HeartbeatTimeout:  -1,
		MessageTimeout:    30 * time.Second,
	}
	coord, err := adaptive.ListenCoordinator("127.0.0.1:0", 2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	ts := make([]adaptive.Transport, 2)
	for r := 0; r < 2; r++ {
		nt, err := adaptive.JoinWorld(coord.Addr(), r, 2, cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer nt.Close()
		ts[r] = nt
	}
	if got := runDistWorld(t, ts); !bytes.Equal(got, golden) {
		t.Error("2-rank TCP archive differs from the in-process golden")
	}
}

// TestCheckpointedWriterAndRecoverFacade: the zero-option checkpointed
// writer is byte-identical to the plain one, and RecoverStream takes the
// clean fast path on a footer-valid stream.
func TestCheckpointedWriterAndRecoverFacade(t *testing.T) {
	golden := validStream(t)

	ctx := context.Background()
	fh, err := os.Create(filepath.Join(t.TempDir(), "ckpt.acs"))
	if err != nil {
		t.Fatal(err)
	}
	defer fh.Close()
	sw, err := adaptive.NewCheckpointedStreamWriter(fh, adaptive.CheckpointOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sys := newSystem(t, adaptive.WithPartitionDim(8), adaptive.WithStreamWriter(sw))
	f := testField(16)
	for i := 0; i < 2; i++ {
		if _, err := sys.Step(ctx, map[string]*adaptive.Field{"rho": f}); err != nil {
			t.Fatal(err)
		}
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(fh.Name())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, golden) {
		t.Error("checkpointed stream differs from plain stream after Close")
	}

	sr, rep, err := adaptive.RecoverStream(bytes.NewReader(golden), int64(len(golden)))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean {
		t.Errorf("footer-valid stream reported torn: %+v", rep)
	}
	if sr.Steps() != 2 {
		t.Errorf("recovered steps = %d, want 2", sr.Steps())
	}
}

func TestAssignPartitionsCoversEveryPartitionOnce(t *testing.T) {
	owned := adaptive.AssignPartitions(distParts, []int{2, 0, 1})
	seen := make(map[int]int)
	for _, parts := range owned {
		for _, p := range parts {
			seen[p]++
		}
	}
	for p := 0; p < distParts; p++ {
		if seen[p] != 1 {
			t.Errorf("partition %d owned %d times", p, seen[p])
		}
	}
	if len(seen) != distParts {
		t.Errorf("assigned %d partitions, want %d", len(seen), distParts)
	}
}
