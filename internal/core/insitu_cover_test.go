package core

import (
	"errors"
	"testing"

	"repro/internal/apierr"
	"repro/internal/grid"
)

func TestNumPartitions(t *testing.T) {
	e := engine(t, Config{PartitionDim: 8})
	n, err := e.NumPartitions(grid.NewCube(16))
	if err != nil || n != 8 {
		t.Fatalf("NumPartitions(16^3 @ 8) = %d, %v; want 8", n, err)
	}
	if _, err := e.NumPartitions(grid.NewCube(12)); !errors.Is(err, apierr.ErrBadConfig) {
		t.Fatalf("indivisible field: err = %v, want ErrBadConfig", err)
	}
}

func TestFeatureOverhead(t *testing.T) {
	st := &InSituStats{FeatureSeconds: 1, OptimizeSeconds: 1, CompressSeconds: 4}
	if got := st.FeatureOverhead(); got != 0.5 {
		t.Errorf("FeatureOverhead = %v, want 0.5", got)
	}
	if got := (&InSituStats{}).FeatureOverhead(); got != 0 {
		t.Errorf("zero-compress FeatureOverhead = %v, want 0", got)
	}
}
