package sz

import (
	"fmt"
	"math"
	"math/bits"

	"repro/internal/apierr"
	"repro/internal/grid"
	"repro/internal/huffman"
)

// PreviewInfo reports what a progressive preview decode kept and dropped.
type PreviewInfo struct {
	// Outliers is the count of verbatim-stored cells, always reconstructed
	// exactly — in a cosmology field these are the halo peaks, which is
	// why even an aggressive preview keeps the structures an analyst
	// browses for.
	Outliers int
	// KeptCorrections and DroppedCorrections partition the quantized
	// prediction corrections by the octave threshold.
	KeptCorrections, DroppedCorrections int
	// Threshold is the smallest |correction| (in quantization units) the
	// preview kept; corrections below it decoded as "perfect prediction".
	// 1 means nothing was dropped — the preview equals the full decode.
	Threshold int
}

// DecompressPreview is the SZ path's first progressive rung: a decode-side
// coarsened reconstruction built from the outlier mass plus the top
// `octaves` octaves of the quantized correction tokens (the multi-level
// single-snapshot idea of arXiv 1711.03888, applied at read time). The
// stream format is untouched — SZ's entropy coding is not prefix-sliceable
// the way ZFP's bit planes are, so the whole token stream is still
// entropy-decoded — but the reconstruction zeroes every correction whose
// magnitude falls below 2^(top-octave-of-the-field − octaves + 1),
// keeping only the large prediction misses: outliers verbatim, coarse
// structure from the top token octaves, smooth regions from prediction
// alone. Larger `octaves` converge monotonically to the exact decode;
// once the threshold reaches 1 the result is bit-identical to Decompress.
//
// The pointwise error-bound guarantee does not survive coarsening (each
// dropped correction perturbs its cell by up to 2·eb·|correction| through
// the prediction feedback) — this is a browse-quality preview, not an
// analysis product, which is exactly the tier split the archive server
// serves it under.
func DecompressPreview(c *Compressed, octaves int) (*grid.Field3D, PreviewInfo, error) {
	var info PreviewInfo
	if octaves < 1 {
		return nil, info, fmt.Errorf("sz: %w: preview octaves %d, need ≥ 1", apierr.ErrBadConfig, octaves)
	}
	n := c.N()
	if n <= 0 {
		return nil, info, fmt.Errorf("%w: empty brick", ErrCorrupt)
	}
	s := scratchPool.Get().(*Scratch)
	defer scratchPool.Put(s)
	radius := c.Opt.radius()
	runBase := 2 * radius
	tokens, err := huffman.DecompressWith(c.codeStream, &s.huff)
	if err != nil {
		return nil, info, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	symbols, err := rleDecodeInto(s.symbolBuf(n)[:0], tokens, radius, runBase, n)
	if err != nil {
		return nil, info, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}

	// The field's top octave: bit length of the largest |correction|.
	maxAbs := 0
	for _, sym := range symbols {
		if sym == 0 {
			continue
		}
		if d := sym - radius; d > maxAbs {
			maxAbs = d
		} else if -d > maxAbs {
			maxAbs = -d
		}
	}
	info.Threshold = 1
	if top := bits.Len(uint(maxAbs)); top > octaves {
		info.Threshold = 1 << (top - octaves)
	}
	for i, sym := range symbols {
		if sym == 0 {
			info.Outliers++
			continue
		}
		d := sym - radius
		if d < 0 {
			d = -d
		}
		switch {
		case d == 0:
			// Perfect prediction already — no correction mass to keep or drop.
		case d >= info.Threshold:
			info.KeptCorrections++
		default:
			info.DroppedCorrections++
			symbols[i] = radius // "perfect prediction": zero correction
		}
	}

	eb := effectiveABSBound(c.Opt)
	var out []float32
	if c.Opt.QuantizeBeforePredict {
		out, err = reconstructLattice(symbols, c, eb, s)
	} else {
		out, err = reconstructDirect(symbols, c, eb)
	}
	if err != nil {
		return nil, info, err
	}
	if c.Opt.Mode == PWREL {
		for i, v := range out {
			out[i] = float32(math.Exp(float64(v)))
		}
	}
	return &grid.Field3D{Nx: c.Nx, Ny: c.Ny, Nz: c.Nz, Data: out}, info, nil
}
