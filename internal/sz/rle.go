package sz

import "fmt"

// Run-length layer between quantization and Huffman coding.
//
// At moderate-to-high error bounds the Lorenzo predictor hits exactly
// (quantization code 0 → symbol `radius`) for the overwhelming majority of
// cells, in long runs across smooth regions. Huffman alone cannot spend
// less than 1 bit on such a symbol, which would cap the compression ratio
// at 32× for fp32 — but the paper reports ratios up to 82.8×. SZ gets past
// the 1-bit wall with a lossless stage; we use explicit run tokens:
//
//   - a run of k ≥ 2 consecutive `hit` symbols is decomposed into binary
//     powers 2^j (j ≥ 1) and each power emits one token `runBase + j`;
//   - a single hit emits the plain hit symbol.
//
// The alphabet grows by at most maxRunExp tokens; a run of a million cells
// costs ~20 tokens. Decoding is exact and order-preserving.

const maxRunExp = 40 // 2^40 cells ≫ any field in this repo

// rleEncode expands symbol runs of hitSym into run tokens with base
// runBase. Symbols must be < runBase.
func rleEncode(symbols []int, hitSym, runBase int) []int {
	return rleEncodeInto(make([]int, 0, len(symbols)/2+16), symbols, hitSym, runBase)
}

// rleEncodeInto is rleEncode appending into a caller-owned buffer (reset to
// length 0 first), so the hot per-partition path can reuse token storage.
// Literal stretches between runs are bulk-copied instead of appended one
// symbol at a time.
func rleEncodeInto(out, symbols []int, hitSym, runBase int) []int {
	out = out[:0]
	i := 0
	for i < len(symbols) {
		if symbols[i] != hitSym {
			j := i + 1
			for j < len(symbols) && symbols[j] != hitSym {
				j++
			}
			out = append(out, symbols[i:j]...)
			i = j
			continue
		}
		j := i
		for j < len(symbols) && symbols[j] == hitSym {
			j++
		}
		run := j - i
		if run == 1 {
			out = append(out, hitSym)
		} else {
			for exp := maxRunExp; exp >= 1; exp-- {
				if run >= 1<<exp {
					out = append(out, runBase+exp)
					run -= 1 << exp
				}
			}
			if run == 1 {
				out = append(out, hitSym)
			}
		}
		i = j
	}
	return out
}

// rleDecode reverses rleEncode. n is the expected expanded length; the
// function errors if the stream disagrees.
func rleDecode(tokens []int, hitSym, runBase, n int) ([]int, error) {
	return rleDecodeInto(make([]int, 0, n), tokens, hitSym, runBase, n)
}

// rleDecodeInto is rleDecode expanding into a caller-owned buffer (passed
// with length 0 and capacity ≥ n), so the hot decode path reuses symbol
// storage.
func rleDecodeInto(out, tokens []int, hitSym, runBase, n int) ([]int, error) {
	for _, tok := range tokens {
		switch {
		case tok < runBase:
			out = append(out, tok)
		case tok <= runBase+maxRunExp:
			exp := tok - runBase
			if exp < 1 {
				return nil, fmt.Errorf("sz: invalid run token %d", tok)
			}
			run := 1 << exp
			if len(out)+run > n {
				return nil, fmt.Errorf("sz: run token overflows output (%d+%d > %d)",
					len(out), run, n)
			}
			for k := 0; k < run; k++ {
				out = append(out, hitSym)
			}
		default:
			return nil, fmt.Errorf("sz: token %d outside alphabet", tok)
		}
	}
	if len(out) != n {
		return nil, fmt.Errorf("sz: RLE decoded %d symbols, want %d", len(out), n)
	}
	return out, nil
}
