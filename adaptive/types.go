package adaptive

import (
	"io"

	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/optimizer"
	"repro/internal/pipeline"
)

// The facade's types are aliases of the implementation's, so values move
// between the public API and the internal packages without conversion and
// the archive formats stay byte-identical. Only the names below are part
// of the compatibility surface.

// Field is a dense 3-D float32 field in x-fastest layout.
type Field = grid.Field3D

// NewField allocates a zeroed nx×ny×nz field.
func NewField(nx, ny, nz int) *Field { return grid.NewField3D(nx, ny, nz) }

// Partitioner is a cubic brick layout over a field.
type Partitioner = grid.Partitioner

// PartitionerForBrickDim builds the layout cutting an n³ field into
// bricks of the given edge length.
func PartitionerForBrickDim(n, brickDim int) (*Partitioner, error) {
	return grid.PartitionerForBrickDim(n, brickDim)
}

// Calibration is a fitted rate model for one field kind; produce it with
// System.Calibrate and reuse it across snapshots.
type Calibration = core.Calibration

// CalibrationOptions tunes calibration sampling (see WithCalibration).
type CalibrationOptions = core.CalibrationOptions

// CalibrationMode selects how Calibrate fits the rate model
// (CalibrationOptions.Mode).
type CalibrationMode = core.CalibrationMode

const (
	// ModelScan fits from one streaming feature scan plus a single
	// validation compression per sampled partition (default). A guard-band
	// breach falls back to ProbeLadder per field, recorded on the
	// Calibration.
	ModelScan CalibrationMode = core.ModelScan
	// ProbeValidated runs the full probe ladder and reports the scan
	// model's out-of-sample residual alongside it.
	ProbeValidated CalibrationMode = core.ProbeValidated
	// ProbeLadder is the original measure-everything calibration.
	ProbeLadder CalibrationMode = core.ProbeLadder
)

// Plan is a chosen per-partition error-bound assignment for one field.
type Plan = core.Plan

// PlanOptions selects the quality budget for planning.
type PlanOptions = core.PlanOptions

// HaloConstraint is the optimizer-level halo-mass budget an optional
// PlanOptions.Halo carries.
type HaloConstraint = optimizer.HaloConstraint

// Strategy selects the error-bound allocation exponent (WithStrategy).
type Strategy = optimizer.Strategy

const (
	// EqualDerivative is the Lagrangian-optimal allocation (default).
	EqualDerivative Strategy = optimizer.EqualDerivative
	// PaperEq16 is the allocation exactly as printed in the paper's
	// Eq. 16 (kept for the ablation).
	PaperEq16 Strategy = optimizer.PaperEq16
)

// CompressedField is a field compressed partition-by-partition into
// self-describing codec frames.
type CompressedField = core.CompressedField

// ParseArchive reverses CompressedField.Bytes, resolving each partition's
// codec from its frame header and validating every stream. Validation
// failures wrap ErrCorruptArchive.
func ParseArchive(data []byte) (*CompressedField, error) {
	return core.ParseCompressedField(data)
}

// BudgetOptions controls how a power-spectrum quality target maps to an
// average-error-bound budget (SpectrumBudget).
type BudgetOptions = core.BudgetOptions

// HaloBudgetResult carries the derived halo-mass budget plus the
// reference catalog it was derived from.
type HaloBudgetResult = core.HaloBudgetResult

// InSituOptions configures one in situ compression (System.CompressInSitu).
type InSituOptions = core.InSituOptions

// InSituHalo carries the halo budget for the in situ path.
type InSituHalo = core.InSituHalo

// InSituStats reports per-phase critical-path times and collective counts
// of an in situ compression.
type InSituStats = core.InSituStats

// Policy selects when the streaming pipeline (re)fits rate models.
type Policy = pipeline.Policy

const (
	// DriftTriggered recalibrates a field only when its global mean
	// feature drifts past the threshold (default, paper-faithful).
	DriftTriggered Policy = pipeline.DriftTriggered
	// CalibrateOnce fits on each field's first step only.
	CalibrateOnce Policy = pipeline.CalibrateOnce
	// CalibrateEveryStep re-fits on every step (the quality reference).
	CalibrateEveryStep Policy = pipeline.CalibrateEveryStep
)

// Source yields successive simulation snapshots; the stream ends with
// io.EOF. Synthetic streams (NewSynthStream) satisfy it directly.
type Source = pipeline.Source

// SourceFunc adapts a plain function to the Source interface.
type SourceFunc = pipeline.SourceFunc

// FromChannel adapts a snapshot channel to a Source; a closed channel
// ends the stream.
func FromChannel(ch <-chan map[string]*Field) Source { return pipeline.FromChannel(ch) }

// FromSnapshots streams a pre-materialized step list.
func FromSnapshots(steps []map[string]*Field) Source { return pipeline.FromSnapshots(steps) }

// FieldStats reports one field of one streamed step.
type FieldStats = pipeline.FieldStats

// StepStats reports one streamed timestep.
type StepStats = pipeline.StepStats

// RunStats aggregates a whole streaming run.
type RunStats = pipeline.RunStats

// StreamWriter appends compressed steps to an archive v3 stream; close it
// to write the seekable footer index.
type StreamWriter = core.StreamWriter

// NewStreamWriter writes the stream header and returns a writer ready to
// accept steps (hand it to WithStreamWriter or write steps directly).
func NewStreamWriter(w io.Writer) (*StreamWriter, error) { return core.NewStreamWriter(w) }

// StreamReader reads an archive v3 stream with O(1) access to any step.
type StreamReader = core.StreamReader

// OpenStream validates the header and footer of a v3 stream of the given
// total size and loads its step index. Validation failures wrap
// ErrCorruptArchive.
func OpenStream(r io.ReaderAt, size int64) (*StreamReader, error) {
	return core.OpenStream(r, size)
}

// CheckpointOptions tunes NewCheckpointedStreamWriter.
type CheckpointOptions = core.CheckpointOptions

// NewCheckpointedStreamWriter is NewStreamWriter plus crash durability: on
// a writer that also supports io.WriterAt (an *os.File), it snapshots a
// valid footer every Interval steps without advancing the write cursor, so
// a process killed mid-run leaves a stream OpenStream accepts up to the
// last checkpoint — and RecoverStream salvages the steps written after it.
// The destination must implement io.WriterAt and Truncate(int64) (an
// *os.File does); once Close returns, the emitted bytes are identical to
// NewStreamWriter's.
func NewCheckpointedStreamWriter(w io.Writer, opt CheckpointOptions) (*StreamWriter, error) {
	return core.NewCheckpointedStreamWriter(w, opt)
}

// RecoveryReport says what RecoverStream salvaged and what it discarded.
type RecoveryReport = core.RecoveryReport

// RecoverStream salvages a torn archive v3 stream — one whose writer
// crashed before Close could write the footer index. It validates the
// header, walks step blocks forward as far as they parse, and returns a
// reader over every intact step plus a report of what was dropped. A
// stream whose footer is intact takes the OpenStream fast path and is
// reported Clean. Use StreamReader.WriteTo to re-serialize the salvage as
// a footer-valid stream. Unrecoverable streams (bad header, no intact
// steps) wrap ErrCorruptArchive.
func RecoverStream(r io.ReaderAt, size int64) (*StreamReader, *RecoveryReport, error) {
	return core.RecoverStream(r, size)
}
