package huffman

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

func TestBitWriterReaderRoundTrip(t *testing.T) {
	w := NewBitWriter(16)
	vals := []struct {
		v uint64
		n uint
	}{
		{1, 1}, {0, 1}, {0b101, 3}, {0xDEAD, 16}, {0x1FFFFFFFFFFFFF, 53}, {7, 5},
	}
	for _, e := range vals {
		w.WriteBits(e.v, e.n)
	}
	r := NewBitReader(w.Bytes())
	for i, e := range vals {
		got, err := r.ReadBits(e.n)
		if err != nil {
			t.Fatal(err)
		}
		if got != e.v&((1<<e.n)-1) {
			t.Fatalf("entry %d: got %x want %x", i, got, e.v)
		}
	}
}

func TestBitWriterBitLen(t *testing.T) {
	w := NewBitWriter(4)
	w.WriteBits(0, 3)
	if w.BitLen() != 3 {
		t.Fatalf("BitLen = %d", w.BitLen())
	}
	w.WriteBits(0, 13)
	if w.BitLen() != 16 {
		t.Fatalf("BitLen = %d", w.BitLen())
	}
	if len(w.Bytes()) != 2 {
		t.Fatalf("Bytes len = %d", len(w.Bytes()))
	}
}

func TestBitReaderOutOfBits(t *testing.T) {
	r := NewBitReader([]byte{0xFF})
	if _, err := r.ReadBits(8); err != nil {
		t.Fatal(err)
	}
	if _, err := r.ReadBits(1); err != ErrOutOfBits {
		t.Fatalf("err = %v, want ErrOutOfBits", err)
	}
}

func TestBitWriterPanicsOnWideWrite(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("WriteBits(>57) did not panic")
		}
	}()
	NewBitWriter(1).WriteBits(0, 58)
}

func roundTrip(t *testing.T, symbols []int) {
	t.Helper()
	enc, err := Compress(symbols)
	if err != nil {
		t.Fatalf("compress: %v", err)
	}
	dec, err := Decompress(enc)
	if err != nil {
		t.Fatalf("decompress: %v", err)
	}
	if len(dec) != len(symbols) {
		t.Fatalf("length %d != %d", len(dec), len(symbols))
	}
	for i := range symbols {
		if dec[i] != symbols[i] {
			t.Fatalf("symbol %d: %d != %d", i, dec[i], symbols[i])
		}
	}
}

func TestRoundTripSimple(t *testing.T) {
	roundTrip(t, []int{1, 2, 3, 1, 1, 1, 2, 5, 1, 1})
}

func TestRoundTripSingleSymbol(t *testing.T) {
	roundTrip(t, []int{42})
	sym := make([]int, 1000)
	for i := range sym {
		sym[i] = 7
	}
	roundTrip(t, sym)
}

func TestRoundTripTwoSymbols(t *testing.T) {
	roundTrip(t, []int{0, 1, 0, 0, 1, 0})
}

func TestRoundTripLargeAlphabet(t *testing.T) {
	r := stats.NewRNG(5)
	sym := make([]int, 20000)
	for i := range sym {
		sym[i] = r.Intn(5000)
	}
	roundTrip(t, sym)
}

func TestRoundTripSkewed(t *testing.T) {
	// SZ-like distribution: most symbols at the center code.
	r := stats.NewRNG(6)
	sym := make([]int, 50000)
	for i := range sym {
		g := r.NormFloat64() * 3
		sym[i] = 32768 + int(g)
	}
	roundTrip(t, sym)
}

func TestCompressEmpty(t *testing.T) {
	if _, err := Compress(nil); err != ErrEmptyInput {
		t.Fatalf("err = %v", err)
	}
}

func TestCompressNegativeSymbol(t *testing.T) {
	if _, err := Compress([]int{1, -2}); err == nil {
		t.Fatal("negative symbol accepted")
	}
}

func TestCompressionBeatsRaw(t *testing.T) {
	// Heavily skewed stream must compress far below 32-bit raw encoding
	// and close to its empirical entropy.
	r := stats.NewRNG(7)
	sym := make([]int, 100000)
	for i := range sym {
		if r.Float64() < 0.9 {
			sym[i] = 100
		} else {
			sym[i] = r.Intn(16)
		}
	}
	enc, err := Compress(sym)
	if err != nil {
		t.Fatal(err)
	}
	bitsPerSym := float64(len(enc)) * 8 / float64(len(sym))
	entropy := stats.SymbolEntropy(sym)
	// Huffman's guarantee is entropy+1 (it cannot emit codes shorter than
	// one bit; the sub-bit regime is handled by the RLE stage in the sz
	// package). Allow a little table overhead on top.
	if bitsPerSym > entropy+1.05 {
		t.Errorf("bits/sym = %.3f, entropy = %.3f: beyond Huffman bound", bitsPerSym, entropy)
	}
	if bitsPerSym > 8 {
		t.Errorf("bits/sym = %.3f, not compressing at all", bitsPerSym)
	}
}

func TestDecompressRejectsCorruptStreams(t *testing.T) {
	sym := []int{1, 2, 3, 4, 5, 1, 2, 1}
	enc, err := Compress(sym)
	if err != nil {
		t.Fatal(err)
	}
	// Truncations at every byte boundary must error, never panic.
	for i := 0; i < len(enc)-1; i++ {
		if _, err := Decompress(enc[:i]); err == nil {
			// Some truncations may still decode if they cut only padding;
			// the final byte carries payload here so all shorter prefixes
			// must fail. Allow success only if output length matches.
			dec, _ := Decompress(enc[:i])
			if len(dec) != len(sym) {
				t.Fatalf("truncation at %d decoded %d symbols without error", i, len(dec))
			}
		}
	}
	if _, err := Decompress(nil); err == nil {
		t.Fatal("nil stream accepted")
	}
	if _, err := Decompress([]byte{0}); err == nil {
		t.Fatal("trivial stream accepted")
	}
}

func TestDecompressBitFlips(t *testing.T) {
	sym := make([]int, 500)
	r := stats.NewRNG(8)
	for i := range sym {
		sym[i] = r.Intn(30)
	}
	enc, _ := Compress(sym)
	flips := 0
	for i := 0; i < len(enc); i += 7 {
		bad := bytes.Clone(enc)
		bad[i] ^= 0x40
		dec, err := Decompress(bad)
		if err == nil && len(dec) == len(sym) {
			// A flip can land in padding or produce a different valid
			// decode; what matters is no panic and consistent length.
			continue
		}
		flips++
	}
	_ = flips // any mixture of detected/undetected is fine; no panics is the invariant
}

func TestBoundedCodeLengths(t *testing.T) {
	// Fibonacci-like frequencies force deep trees; the bounded builder must
	// cap the depth at maxCodeLen.
	var pairs []symFreq
	a, b := int64(1), int64(1)
	for i := 0; i < 80; i++ {
		pairs = append(pairs, symFreq{sym: i, freq: a})
		a, b = b, a+b
		if a < 0 { // overflow guard: clamp
			a = 1 << 62
		}
	}
	var s Scratch
	lens := make([]uint8, len(pairs))
	s.boundedCodeLengthsInto(lens, pairs)
	entries := make([]symLen, len(pairs))
	for i, p := range pairs {
		if lens[i] > maxCodeLen {
			t.Fatalf("symbol %d has length %d > %d", p.sym, lens[i], maxCodeLen)
		}
		entries[i] = symLen{sym: p.sym, n: lens[i]}
	}
	// And the table must still be decodable (Kraft inequality holds).
	var dt decodeTable
	if err := dt.build(entries); err != nil {
		t.Fatalf("bounded lengths not decodable: %v", err)
	}
}

func TestEncodedSizeBound(t *testing.T) {
	r := stats.NewRNG(9)
	sym := make([]int, 5000)
	for i := range sym {
		sym[i] = r.Intn(100)
	}
	enc, _ := Compress(sym)
	if len(enc) > EncodedSizeBound(len(sym), 100) {
		t.Fatalf("encoded %d bytes exceeds bound %d", len(enc), EncodedSizeBound(len(sym), 100))
	}
}

// Property: round trip is exact for arbitrary non-negative symbol streams.
func TestQuickRoundTrip(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		sym := make([]int, len(raw))
		for i, v := range raw {
			sym[i] = int(v)
		}
		enc, err := Compress(sym)
		if err != nil {
			return false
		}
		dec, err := Decompress(enc)
		if err != nil || len(dec) != len(sym) {
			return false
		}
		for i := range sym {
			if dec[i] != sym[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: compressed size in bits per symbol is never more than
// entropy + 1 + small table overhead (Huffman optimality bound).
func TestQuickNearEntropy(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) < 256 {
			return true
		}
		sym := make([]int, len(raw))
		for i, v := range raw {
			sym[i] = int(v)
		}
		enc, err := Compress(sym)
		if err != nil {
			return false
		}
		bits := float64(len(enc)) * 8
		entropy := stats.SymbolEntropy(sym) * float64(len(sym))
		tableOverhead := float64(10 * 8 * 260) // generous
		return bits <= entropy+float64(len(sym))+tableOverhead
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestNearEntropyGaussian(t *testing.T) {
	// The typical SZ symbol distribution: discrete Gaussian around the
	// center code. Huffman should land within ~0.1 bit of entropy.
	r := stats.NewRNG(10)
	sym := make([]int, 200000)
	for i := range sym {
		sym[i] = 128 + int(math.Round(r.NormFloat64()*2))
	}
	enc, _ := Compress(sym)
	bps := float64(len(enc)) * 8 / float64(len(sym))
	h := stats.SymbolEntropy(sym)
	if bps > h+0.12 {
		t.Errorf("bits/sym %.4f vs entropy %.4f", bps, h)
	}
}
