package pipeline

import (
	"io"

	"repro/internal/grid"
)

// Source yields successive simulation snapshots. Each call returns the
// named fields of one timestep; the stream ends with io.EOF. The driver
// treats the returned fields as read-only and never retains them past the
// step, so a source may hand out the simulation's live buffers.
//
// nyx.Stream satisfies Source directly; FromChannel and FromSnapshots
// adapt the other common producers.
type Source interface {
	Next() (map[string]*grid.Field3D, error)
}

// SourceFunc adapts a plain function to the Source interface.
type SourceFunc func() (map[string]*grid.Field3D, error)

// Next calls f.
func (f SourceFunc) Next() (map[string]*grid.Field3D, error) { return f() }

// FromChannel adapts a snapshot channel to a Source: the producing side of
// an in situ coupling pushes steps, the driver pulls them. A closed channel
// ends the stream.
func FromChannel(ch <-chan map[string]*grid.Field3D) Source {
	return SourceFunc(func() (map[string]*grid.Field3D, error) {
		snap, ok := <-ch
		if !ok {
			return nil, io.EOF
		}
		return snap, nil
	})
}

// FromSnapshots streams a pre-materialized step list.
func FromSnapshots(steps []map[string]*grid.Field3D) Source {
	i := 0
	return SourceFunc(func() (map[string]*grid.Field3D, error) {
		if i >= len(steps) {
			return nil, io.EOF
		}
		snap := steps[i]
		i++
		return snap, nil
	})
}
