// Command benchjson parses `go test -bench` output into a JSON document
// keyed by run label, merging into an existing file so one JSON can carry a
// trajectory (e.g. a pre-PR baseline next to the current tree). It is the
// backend of scripts/bench.sh and keeps the repo free of a jq dependency.
//
// Usage:
//
//	go run ./scripts/benchjson -label current -in bench.txt -out BENCH_PR3.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
	"time"
)

// Metric is one parsed benchmark result line.
type Metric struct {
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	MBPerSec    float64            `json:"mb_per_s,omitempty"`
	BytesPerOp  int64              `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64              `json:"allocs_per_op,omitempty"`
	Custom      map[string]float64 `json:"custom,omitempty"`
}

// Run is one labeled benchmark invocation.
type Run struct {
	RecordedAt string            `json:"recorded_at"`
	GoOS       string            `json:"goos,omitempty"`
	GoArch     string            `json:"goarch,omitempty"`
	CPU        string            `json:"cpu,omitempty"`
	Benchmarks map[string]Metric `json:"benchmarks"`
}

// Doc is the whole trajectory file.
type Doc struct {
	Description string         `json:"description"`
	Runs        map[string]Run `json:"runs"`
}

var benchLine = regexp.MustCompile(`^(Benchmark[^\s]+?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op(.*)$`)

func parse(path string) (Run, error) {
	f, err := os.Open(path)
	if err != nil {
		return Run{}, err
	}
	defer f.Close()
	run := Run{
		RecordedAt: time.Now().UTC().Format(time.RFC3339),
		Benchmarks: map[string]Metric{},
	}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			run.GoOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			run.GoArch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case strings.HasPrefix(line, "cpu:"):
			run.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		iters, _ := strconv.ParseInt(m[2], 10, 64)
		ns, _ := strconv.ParseFloat(m[3], 64)
		met := Metric{Iterations: iters, NsPerOp: ns}
		// The tail alternates "<value> <unit>" pairs: MB/s, B/op,
		// allocs/op, and any b.ReportMetric custom units.
		fields := strings.Fields(m[4])
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "MB/s":
				met.MBPerSec = v
			case "B/op":
				met.BytesPerOp = int64(v)
			case "allocs/op":
				met.AllocsPerOp = int64(v)
			default:
				if met.Custom == nil {
					met.Custom = map[string]float64{}
				}
				met.Custom[fields[i+1]] = v
			}
		}
		run.Benchmarks[m[1]] = met
	}
	return run, sc.Err()
}

func main() {
	label := flag.String("label", "current", "run label to file the results under")
	in := flag.String("in", "", "raw `go test -bench` output to parse")
	out := flag.String("out", "BENCH_PR3.json", "JSON trajectory file to merge into")
	flag.Parse()
	if *in == "" {
		fmt.Fprintln(os.Stderr, "benchjson: -in is required")
		os.Exit(2)
	}

	doc := Doc{
		Description: "Hot-path benchmark trajectory (see scripts/bench.sh); ns/op are machine-dependent, compare labels from the same machine only.",
		Runs:        map[string]Run{},
	}
	if prev, err := os.ReadFile(*out); err == nil {
		if err := json.Unmarshal(prev, &doc); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %s exists but is not valid JSON: %v\n", *out, err)
			os.Exit(1)
		}
		if doc.Runs == nil {
			doc.Runs = map[string]Run{}
		}
	}

	run, err := parse(*in)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if len(run.Benchmarks) == 0 {
		fmt.Fprintf(os.Stderr, "benchjson: no benchmark lines found in %s\n", *in)
		os.Exit(1)
	}
	doc.Runs[*label] = run

	blob, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, append(blob, '\n'), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("benchjson: %d benchmarks recorded under %q in %s\n", len(run.Benchmarks), *label, *out)
}
