package sz

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/grid"
	"repro/internal/huffman"
)

// Compressed holds one compressed 3-D brick plus the metadata needed to
// reconstruct it and to account for its storage cost.
type Compressed struct {
	Nx, Ny, Nz int
	Opt        Options

	// codeStream is the Huffman-coded, RLE-expanded quantization stream.
	codeStream []byte
	// outliers are the verbatim values (ABS mode) or lattice coordinates
	// (pre-quantized mode) of unpredictable points, in encounter order.
	outliers []byte
	// logShift is the PW_REL transform offset (0 in ABS mode).
	logShift float64
}

// N returns the number of cells in the brick.
func (c *Compressed) N() int { return c.Nx * c.Ny * c.Nz }

// CompressedSize returns the payload size in bytes, including the stream
// header written by Bytes. This is the figure used for compression ratios.
func (c *Compressed) CompressedSize() int {
	return headerSize + len(c.codeStream) + len(c.outliers)
}

// BitRate returns bits per value (the paper's "bit rate"; raw fp32 is 32).
func (c *Compressed) BitRate() float64 {
	return float64(c.CompressedSize()) * 8 / float64(c.N())
}

// Ratio returns the compression ratio relative to fp32 storage.
func (c *Compressed) Ratio() float64 {
	return float64(4*c.N()) / float64(c.CompressedSize())
}

// Scratch holds the O(n) working state of one compression call — the
// prediction, quantization, and RLE buffers that are dead once the entropy
// stage has run. The hot in situ path compresses thousands of equally sized
// partitions, so reusing one Scratch per worker removes almost all transient
// allocation from the pipeline. A Scratch must not be used concurrently;
// the zero value is ready to use.
type Scratch struct {
	symbols []int
	recon   []float32
	logged  []float32
	lattice []int64
	tokens  []int
}

func (s *Scratch) symbolBuf(n int) []int {
	if cap(s.symbols) < n {
		s.symbols = make([]int, n)
	}
	return s.symbols[:n]
}

func (s *Scratch) reconBuf(n int) []float32 {
	if cap(s.recon) < n {
		s.recon = make([]float32, n)
	}
	return s.recon[:n]
}

func (s *Scratch) loggedBuf(n int) []float32 {
	if cap(s.logged) < n {
		s.logged = make([]float32, n)
	}
	return s.logged[:n]
}

func (s *Scratch) latticeBuf(n int) []int64 {
	if cap(s.lattice) < n {
		s.lattice = make([]int64, n)
	}
	return s.lattice[:n]
}

// Compress compresses a field under the given options.
func Compress(f *grid.Field3D, opt Options) (*Compressed, error) {
	return CompressSlice(f.Data, f.Nx, f.Ny, f.Nz, opt)
}

// CompressSlice compresses a flat x-fastest brick of dimensions nx×ny×nz.
func CompressSlice(data []float32, nx, ny, nz int, opt Options) (*Compressed, error) {
	return CompressSliceWith(data, nx, ny, nz, opt, nil)
}

// CompressSliceWith is CompressSlice with caller-owned scratch buffers; a
// nil scratch allocates fresh working state. The input and the scratch are
// only retained during the call.
func CompressSliceWith(data []float32, nx, ny, nz int, opt Options, s *Scratch) (*Compressed, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	if len(data) != nx*ny*nz || len(data) == 0 {
		return nil, fmt.Errorf("sz: data length %d != %d×%d×%d", len(data), nx, ny, nz)
	}
	if s == nil {
		s = &Scratch{}
	}

	work := data
	var logShift float64
	if opt.Mode == PWREL {
		var err error
		work, logShift, err = logTransform(data, s)
		if err != nil {
			return nil, err
		}
	}

	var symbols []int
	var outliers []byte
	eb := effectiveABSBound(opt)
	if opt.QuantizeBeforePredict {
		symbols, outliers = quantizeThenPredict(work, nx, ny, nz, eb, opt, s)
	} else {
		symbols, outliers = predictThenQuantize(work, nx, ny, nz, eb, opt, s)
	}

	radius := opt.radius()
	runBase := 2 * radius
	s.tokens = rleEncodeInto(s.tokens, symbols, radius, runBase)
	stream, err := huffman.Compress(s.tokens)
	if err != nil {
		return nil, fmt.Errorf("sz: entropy coding: %w", err)
	}
	return &Compressed{
		Nx: nx, Ny: ny, Nz: nz,
		Opt:        opt,
		codeStream: stream,
		outliers:   outliers,
		logShift:   logShift,
	}, nil
}

// effectiveABSBound maps the user error bound to the absolute bound applied
// in (possibly transformed) space. For PW_REL the log transform turns the
// relative bound r into an absolute bound on ln(x): bounding ln-space error
// by ln(1+r) guarantees x̂/x ∈ [1/(1+r), 1+r] ⊂ [1−r, 1+r].
func effectiveABSBound(opt Options) float64 {
	if opt.Mode == PWREL {
		return math.Log(1 + opt.ErrorBound)
	}
	return opt.ErrorBound
}

// errPositiveOnly is returned by PW_REL compression on non-positive data.
var errPositiveOnly = errors.New("sz: PW_REL mode requires strictly positive data")

// logTransform maps strictly positive data to ln(x). The shift is reserved
// for future signed support and is currently always 0.
func logTransform(data []float32, s *Scratch) ([]float32, float64, error) {
	out := s.loggedBuf(len(data))
	for i, v := range data {
		if v <= 0 {
			return nil, 0, errPositiveOnly
		}
		out[i] = float32(math.Log(float64(v)))
	}
	return out, 0, nil
}

// predictThenQuantize is the CPU-SZ formulation: predict from already
// reconstructed neighbours, quantize the residual in units of 2·eb, verify
// the bound, and fall back to a verbatim outlier when quantization cannot
// honour it. Symbol layout: 0 = outlier; [1, 2·radius) = code + radius.
func predictThenQuantize(data []float32, nx, ny, nz int, eb float64, opt Options, s *Scratch) ([]int, []byte) {
	n := len(data)
	radius := opt.radius()
	recon := s.reconBuf(n)
	symbols := s.symbolBuf(n)
	outliers := make([]byte, 0, 64)
	twoEB := 2 * eb

	idx := 0
	for z := 0; z < nz; z++ {
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				pred := predict(recon, nx, ny, x, y, z, idx, opt.Predictor)
				v := float64(data[idx])
				diff := v - pred
				q := int(math.Floor(diff/twoEB + 0.5))
				ok := q > -radius && q < radius
				if ok {
					dec := pred + twoEB*float64(q)
					// Float rounding can push the reconstruction just past
					// the bound; verify like SZ does.
					if math.Abs(float64(float32(dec))-v) <= eb {
						symbols[idx] = q + radius
						recon[idx] = float32(dec)
						idx++
						continue
					}
				}
				symbols[idx] = 0
				outliers = appendFloat32(outliers, data[idx])
				recon[idx] = data[idx]
				idx++
			}
		}
	}
	return symbols, outliers
}

// quantizeThenPredict is the GPU-SZ/cuSZ formulation: values are first
// snapped to the 2·eb lattice, then Lorenzo runs on the lattice integers.
// Outliers store the verbatim fp32 value; the decoder re-derives the
// lattice coordinate from it, so encoder and decoder lattices agree
// bit-exactly. A point also becomes an outlier when fp32 rounding of the
// lattice reconstruction would breach the bound, keeping the error-bound
// guarantee strict.
func quantizeThenPredict(data []float32, nx, ny, nz int, eb float64, opt Options, s *Scratch) ([]int, []byte) {
	n := len(data)
	radius := opt.radius()
	twoEB := 2 * eb
	lattice := s.latticeBuf(n)
	for i, v := range data {
		lattice[i] = int64(math.Floor(float64(v)/twoEB + 0.5))
	}
	symbols := s.symbolBuf(n)
	outliers := make([]byte, 0, 64)
	idx := 0
	for z := 0; z < nz; z++ {
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				pred := predictInt(lattice, nx, ny, x, y, z)
				d := lattice[idx] - pred
				inRange := d > int64(-radius) && d < int64(radius)
				exact := math.Abs(float64(float32(twoEB*float64(lattice[idx])))-
					float64(data[idx])) <= eb
				if inRange && exact {
					symbols[idx] = int(d) + radius
				} else {
					symbols[idx] = 0
					outliers = appendFloat32(outliers, data[idx])
				}
				idx++
			}
		}
	}
	return symbols, outliers
}

// predict computes the causal prediction for cell (x,y,z) from the
// reconstructed buffer.
func predict(recon []float32, nx, ny int, x, y, z, idx int, p Predictor) float64 {
	// Causal neighbour offsets in the flat buffer.
	var fx, fy, fz, fxy, fxz, fyz, fxyz float64
	hasX, hasY, hasZ := x > 0, y > 0, z > 0
	if hasX {
		fx = float64(recon[idx-1])
	}
	if hasY {
		fy = float64(recon[idx-nx])
	}
	if hasZ {
		fz = float64(recon[idx-nx*ny])
	}
	if p == MeanNeighbor {
		var sum float64
		var cnt int
		if hasX {
			sum += fx
			cnt++
		}
		if hasY {
			sum += fy
			cnt++
		}
		if hasZ {
			sum += fz
			cnt++
		}
		if cnt == 0 {
			return 0
		}
		return sum / float64(cnt)
	}
	if hasX && hasY {
		fxy = float64(recon[idx-1-nx])
	}
	if hasX && hasZ {
		fxz = float64(recon[idx-1-nx*ny])
	}
	if hasY && hasZ {
		fyz = float64(recon[idx-nx-nx*ny])
	}
	if hasX && hasY && hasZ {
		fxyz = float64(recon[idx-1-nx-nx*ny])
	}
	// First-order 3-D Lorenzo: missing neighbours contribute 0, which
	// makes boundary planes degrade gracefully to 2-D/1-D Lorenzo.
	return fx + fy + fz - fxy - fxz - fyz + fxyz
}

// predictInt is the Lorenzo predictor on the integer lattice.
func predictInt(lat []int64, nx, ny int, x, y, z int) int64 {
	idx := (z*ny+y)*nx + x
	var fx, fy, fz, fxy, fxz, fyz, fxyz int64
	hasX, hasY, hasZ := x > 0, y > 0, z > 0
	if hasX {
		fx = lat[idx-1]
	}
	if hasY {
		fy = lat[idx-nx]
	}
	if hasZ {
		fz = lat[idx-nx*ny]
	}
	if hasX && hasY {
		fxy = lat[idx-1-nx]
	}
	if hasX && hasZ {
		fxz = lat[idx-1-nx*ny]
	}
	if hasY && hasZ {
		fyz = lat[idx-nx-nx*ny]
	}
	if hasX && hasY && hasZ {
		fxyz = lat[idx-1-nx-nx*ny]
	}
	return fx + fy + fz - fxy - fxz - fyz + fxyz
}

func appendFloat32(buf []byte, v float32) []byte {
	b := math.Float32bits(v)
	return append(buf, byte(b), byte(b>>8), byte(b>>16), byte(b>>24))
}
