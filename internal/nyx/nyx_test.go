package nyx

import (
	"math"
	"testing"

	"repro/internal/grid"
	"repro/internal/halo"
	"repro/internal/spectrum"
	"repro/internal/stats"
)

func genTest(t *testing.T, p Params) *Snapshot {
	t.Helper()
	s, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestGenerateAllFields(t *testing.T) {
	s := genTest(t, Params{N: 32, Seed: 1, Redshift: 42})
	if len(s.Fields) != 6 {
		t.Fatalf("generated %d fields, want 6", len(s.Fields))
	}
	for _, name := range FieldNames {
		f, err := s.Field(name)
		if err != nil {
			t.Fatal(err)
		}
		if f.Nx != 32 || f.Ny != 32 || f.Nz != 32 {
			t.Errorf("%s: wrong shape %v", name, f)
		}
		if err := f.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	if _, err := s.Field("no_such_field"); err == nil {
		t.Error("unknown field name accepted")
	}
}

func TestDeterminism(t *testing.T) {
	a := genTest(t, Params{N: 16, Seed: 7, Redshift: 50})
	b := genTest(t, Params{N: 16, Seed: 7, Redshift: 50})
	for _, name := range FieldNames {
		fa, _ := a.Field(name)
		fb, _ := b.Field(name)
		for i := range fa.Data {
			if fa.Data[i] != fb.Data[i] {
				t.Fatalf("%s differs at %d with same seed", name, i)
			}
		}
	}
	c := genTest(t, Params{N: 16, Seed: 8, Redshift: 50})
	fa, _ := a.Field(FieldBaryonDensity)
	fc, _ := c.Field(FieldBaryonDensity)
	same := 0
	for i := range fa.Data {
		if fa.Data[i] == fc.Data[i] {
			same++
		}
	}
	if same == len(fa.Data) {
		t.Error("different seeds produced identical fields")
	}
}

func TestValueRangesMatchTable2(t *testing.T) {
	s := genTest(t, Params{N: 48, Seed: 2, Redshift: 42})
	checks := []struct {
		name   string
		lo, hi float64
	}{
		{FieldBaryonDensity, 0, 1e5},
		{FieldDarkMatterDensity, 0, 1e4},
		{FieldTemperature, 1e2, 1e7},
		{FieldVelocityX, -1e8, 1e8},
		{FieldVelocityY, -1e8, 1e8},
		{FieldVelocityZ, -1e8, 1e8},
	}
	for _, c := range checks {
		f, _ := s.Field(c.name)
		lo, hi := f.MinMax()
		if float64(lo) < c.lo || float64(hi) > c.hi {
			t.Errorf("%s range [%g, %g] outside Table 2 range [%g, %g]",
				c.name, lo, hi, c.lo, c.hi)
		}
	}
	// Densities must be strictly positive.
	for _, name := range []string{FieldBaryonDensity, FieldDarkMatterDensity} {
		f, _ := s.Field(name)
		lo, _ := f.MinMax()
		if lo <= 0 {
			t.Errorf("%s has non-positive values", name)
		}
	}
}

func TestDensityMeanNearOne(t *testing.T) {
	// The lognormal construction fixes the mean at 1 (up to sampling
	// noise and tail clipping), matching the paper's "fixed overall mean".
	s := genTest(t, Params{N: 48, Seed: 3, Redshift: 42})
	f, _ := s.Field(FieldBaryonDensity)
	if m := f.Mean(); m < 0.5 || m > 2.0 {
		t.Errorf("baryon density mean %v, want ≈1", m)
	}
}

func TestHeavyTailAndHeterogeneity(t *testing.T) {
	// The density field must be heavy-tailed (halos) and spatially
	// heterogeneous across partitions (the property the paper exploits).
	s := genTest(t, Params{N: 48, Seed: 4, Redshift: 42})
	f, _ := s.Field(FieldBaryonDensity)
	_, hi := f.MinMax()
	if float64(hi) < 100 {
		t.Errorf("density max %v: no dense regions formed", hi)
	}
	p, _ := grid.NewCubePartitioner(48, 4)
	fts := grid.ExtractFeatures(f, p, grid.FeatureOptions{})
	var means []float64
	for _, ft := range fts {
		means = append(means, ft.Mean)
	}
	var m stats.Moments
	for _, v := range means {
		m.Add(v)
	}
	if m.StdDev() < 0.1*m.Mean() {
		t.Errorf("partition means too homogeneous: mean %v sd %v", m.Mean(), m.StdDev())
	}
}

func TestPowerSpectrumFalls(t *testing.T) {
	// The density contrast must have a falling spectrum: large scales
	// carry more power than small scales.
	s := genTest(t, Params{N: 64, Seed: 5, Redshift: 42})
	f, _ := s.Field(FieldBaryonDensity)
	sp, err := spectrum.Compute(f, spectrum.Options{Contrast: true})
	if err != nil {
		t.Fatal(err)
	}
	lowBand := (sp.P[2] + sp.P[3] + sp.P[4]) / 3
	hiBand := (sp.P[20] + sp.P[21] + sp.P[22]) / 3
	if lowBand <= hiBand {
		t.Errorf("spectrum not falling: low %g vs high %g", lowBand, hiBand)
	}
}

func TestRedshiftEvolution(t *testing.T) {
	// Earlier (higher z) snapshots must be smoother: smaller density
	// variance, fewer candidate cells.
	early := genTest(t, Params{N: 32, Seed: 6, Redshift: 54})
	late := genTest(t, Params{N: 32, Seed: 6, Redshift: 42})
	fe, _ := early.Field(FieldBaryonDensity)
	fl, _ := late.Field(FieldBaryonDensity)
	me := fe.Moments()
	ml := fl.Moments()
	if me.Variance() >= ml.Variance() {
		t.Errorf("early variance %v not below late %v", me.Variance(), ml.Variance())
	}
	bt, _ := DefaultHaloConfig()
	if halo.CandidateCount(fe, bt) > halo.CandidateCount(fl, bt) {
		t.Error("early snapshot has more halo candidates than late")
	}
}

func TestHalosExist(t *testing.T) {
	s := genTest(t, Params{N: 64, Seed: 7, Redshift: 42})
	f, _ := s.Field(FieldBaryonDensity)
	bt, pt := DefaultHaloConfig()
	cat, err := halo.Find(f, halo.Config{BoundaryThreshold: bt, HaloThreshold: pt, Periodic: true})
	if err != nil {
		t.Fatal(err)
	}
	if cat.Count() == 0 {
		t.Error("no halos in generated snapshot")
	}
	if cat.Candidates == 0 {
		t.Error("no candidate cells")
	}
}

func TestVelocityZeroMean(t *testing.T) {
	s := genTest(t, Params{N: 32, Seed: 8, Redshift: 42})
	for _, name := range []string{FieldVelocityX, FieldVelocityY, FieldVelocityZ} {
		f, _ := s.Field(name)
		var m stats.Moments
		m.AddSlice(f.Data)
		if math.Abs(m.Mean()) > 0.05*m.StdDev() {
			t.Errorf("%s mean %g not ≈0 (sd %g)", name, m.Mean(), m.StdDev())
		}
	}
}

func TestGenerateSequenceSharesICs(t *testing.T) {
	snaps, err := GenerateSequence(Params{N: 16, Seed: 9}, []float64{54, 48, 42})
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 3 {
		t.Fatalf("got %d snapshots", len(snaps))
	}
	// Same ICs: the density fields must be strongly correlated across z.
	a, _ := snaps[0].Field(FieldBaryonDensity)
	b, _ := snaps[2].Field(FieldBaryonDensity)
	var corrNum, va, vb float64
	ma, mb := a.Mean(), b.Mean()
	for i := range a.Data {
		da := float64(a.Data[i]) - ma
		db := float64(b.Data[i]) - mb
		corrNum += da * db
		va += da * da
		vb += db * db
	}
	corr := corrNum / math.Sqrt(va*vb)
	if corr < 0.3 {
		t.Errorf("cross-redshift correlation %v too low for shared ICs", corr)
	}
}

func TestParamsValidate(t *testing.T) {
	if _, err := Generate(Params{N: 2}); err == nil {
		t.Error("tiny grid accepted")
	}
	if _, err := Generate(Params{N: 16, Redshift: -1}); err == nil {
		t.Error("negative redshift accepted")
	}
}

func TestNonPowerOfTwoGrid(t *testing.T) {
	// Bluestein path: any N works.
	s := genTest(t, Params{N: 12, Seed: 10, Redshift: 42})
	f, _ := s.Field(FieldTemperature)
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestGrowthFactor(t *testing.T) {
	if g := growthFactor(42, 42); g != 1 {
		t.Errorf("growth at ref = %v", g)
	}
	if growthFactor(54, 42) >= 1 {
		t.Error("earlier redshift should have growth < 1")
	}
	if growthFactor(10, 42) <= 1 {
		t.Error("later redshift should have growth > 1")
	}
}
