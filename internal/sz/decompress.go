package sz

import (
	"fmt"
	"math"

	"repro/internal/apierr"
	"repro/internal/grid"
	"repro/internal/huffman"
)

// ErrCorrupt is wrapped by all decompression-time integrity failures. It
// wraps the public ErrCorruptArchive sentinel, so a corrupt sz stream is
// classifiable from the facade whether it was hit inside an archive parse
// or through a direct codec-level decode.
var ErrCorrupt = fmt.Errorf("sz: corrupt compressed stream (%w)", apierr.ErrCorruptArchive)

// Decompress reconstructs the field from a Compressed brick.
func Decompress(c *Compressed) (*grid.Field3D, error) {
	data, err := DecompressSlice(c)
	if err != nil {
		return nil, err
	}
	return &grid.Field3D{Nx: c.Nx, Ny: c.Ny, Nz: c.Nz, Data: data}, nil
}

// DecompressSlice reconstructs the flat brick values. Working state
// (entropy tables, token and symbol buffers, the lattice) is borrowed from
// the package scratch pool; only the returned reconstruction is allocated.
func DecompressSlice(c *Compressed) ([]float32, error) {
	n := c.N()
	if n <= 0 {
		return nil, fmt.Errorf("%w: empty brick", ErrCorrupt)
	}
	s := scratchPool.Get().(*Scratch)
	defer scratchPool.Put(s)
	radius := c.Opt.radius()
	runBase := 2 * radius
	tokens, err := huffman.DecompressWith(c.codeStream, &s.huff)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	symbols, err := rleDecodeInto(s.symbolBuf(n)[:0], tokens, radius, runBase, n)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}

	eb := effectiveABSBound(c.Opt)
	var out []float32
	if c.Opt.QuantizeBeforePredict {
		out, err = reconstructLattice(symbols, c, eb, s)
	} else {
		out, err = reconstructDirect(symbols, c, eb)
	}
	if err != nil {
		return nil, err
	}
	if c.Opt.Mode == PWREL {
		for i, v := range out {
			out[i] = float32(math.Exp(float64(v)))
		}
	}
	return out, nil
}

// reconstructDirect mirrors predictThenQuantize: the interior (x, y, z all
// > 0) runs the Lorenzo stencil branch-free over flat offsets, boundary
// cells go through the generic predictor.
func reconstructDirect(symbols []int, c *Compressed, eb float64) ([]float32, error) {
	nx, ny, nz := c.Nx, c.Ny, c.Nz
	radius := c.Opt.radius()
	twoEB := 2 * eb
	recon := make([]float32, len(symbols))
	outPos := 0

	cell := func(x, y, z, idx int) error {
		s := symbols[idx]
		if s == 0 {
			v, pos, err := readFloat32(c.outliers, outPos)
			if err != nil {
				return err
			}
			recon[idx] = v
			outPos = pos
			return nil
		}
		pred := predict(recon, nx, ny, x, y, z, idx, c.Opt.Predictor)
		recon[idx] = float32(pred + twoEB*float64(s-radius))
		return nil
	}

	if c.Opt.Predictor != Lorenzo3D {
		idx := 0
		for z := 0; z < nz; z++ {
			for y := 0; y < ny; y++ {
				for x := 0; x < nx; x++ {
					if err := cell(x, y, z, idx); err != nil {
						return nil, err
					}
					idx++
				}
			}
		}
		if outPos != len(c.outliers) {
			return nil, fmt.Errorf("%w: %d unread outlier bytes", ErrCorrupt, len(c.outliers)-outPos)
		}
		return recon, nil
	}

	nxny := nx * ny
	idx := 0
	for y := 0; y < ny; y++ { // z == 0 plane
		for x := 0; x < nx; x++ {
			if err := cell(x, y, 0, idx); err != nil {
				return nil, err
			}
			idx++
		}
	}
	for z := 1; z < nz; z++ {
		for x := 0; x < nx; x++ { // y == 0 row
			if err := cell(x, 0, z, idx); err != nil {
				return nil, err
			}
			idx++
		}
		for y := 1; y < ny; y++ {
			if err := cell(0, y, z, idx); err != nil { // x == 0 cell
				return nil, err
			}
			rowStart := idx
			idx += nx
			// Same-length row views as the encoder's interior loop, so the
			// stencil reads are bounds-check free.
			cur := recon[rowStart : rowStart+nx]
			py := recon[rowStart-nx : rowStart-nx+nx]
			pz := recon[rowStart-nxny : rowStart-nxny+nx]
			pyz := recon[rowStart-nx-nxny : rowStart-nx-nxny+nx]
			srow := symbols[rowStart : rowStart+nx]
			prev := float64(cur[0])
			for x := 1; x < nx; x++ {
				s := srow[x]
				if s == 0 {
					v, pos, err := readFloat32(c.outliers, outPos)
					if err != nil {
						return nil, err
					}
					cur[x] = v
					prev = float64(v)
					outPos = pos
					continue
				}
				fy := float64(py[x])
				fz := float64(pz[x])
				fxy := float64(py[x-1])
				fxz := float64(pz[x-1])
				fyz := float64(pyz[x])
				fxyz := float64(pyz[x-1])
				pred := prev + fy + fz - fxy - fxz - fyz + fxyz
				r := float32(pred + twoEB*float64(s-radius))
				cur[x] = r
				prev = float64(r)
			}
		}
	}
	if outPos != len(c.outliers) {
		return nil, fmt.Errorf("%w: %d unread outlier bytes", ErrCorrupt, len(c.outliers)-outPos)
	}
	return recon, nil
}

// reconstructLattice mirrors quantizeThenPredict: the integer Lorenzo
// stencil runs branch-free over the interior, boundary cells go through the
// generic predictor.
func reconstructLattice(symbols []int, c *Compressed, eb float64, s *Scratch) ([]float32, error) {
	nx, ny, nz := c.Nx, c.Ny, c.Nz
	radius := c.Opt.radius()
	twoEB := 2 * eb
	lat := s.latticeBuf(len(symbols))
	out := make([]float32, len(symbols))
	verbatim := s.verbatimBuf(len(symbols))
	outPos := 0

	cell := func(x, y, z, idx int) error {
		s := symbols[idx]
		if s == 0 {
			v, pos, err := readFloat32(c.outliers, outPos)
			if err != nil {
				return err
			}
			// Re-derive the encoder's lattice coordinate from the verbatim
			// value so neighbour prediction stays exact.
			lat[idx] = int64(math.Floor(float64(v)/twoEB + 0.5))
			out[idx] = v
			verbatim[idx] = true
			outPos = pos
			return nil
		}
		lat[idx] = predictInt(lat, nx, ny, x, y, z) + int64(s-radius)
		return nil
	}

	nxny := nx * ny
	idx := 0
	for y := 0; y < ny; y++ { // z == 0 plane
		for x := 0; x < nx; x++ {
			if err := cell(x, y, 0, idx); err != nil {
				return nil, err
			}
			idx++
		}
	}
	for z := 1; z < nz; z++ {
		for x := 0; x < nx; x++ { // y == 0 row
			if err := cell(x, 0, z, idx); err != nil {
				return nil, err
			}
			idx++
		}
		for y := 1; y < ny; y++ {
			if err := cell(0, y, z, idx); err != nil { // x == 0 cell
				return nil, err
			}
			rowStart := idx
			idx += nx
			cur := lat[rowStart : rowStart+nx]
			ly := lat[rowStart-nx : rowStart-nx+nx]
			lz := lat[rowStart-nxny : rowStart-nxny+nx]
			lyz := lat[rowStart-nx-nxny : rowStart-nx-nxny+nx]
			srow := symbols[rowStart : rowStart+nx]
			prev := cur[0]
			for x := 1; x < nx; x++ {
				s := srow[x]
				if s == 0 {
					v, pos, err := readFloat32(c.outliers, outPos)
					if err != nil {
						return nil, err
					}
					prev = int64(math.Floor(float64(v)/twoEB + 0.5))
					cur[x] = prev
					out[rowStart+x] = v
					verbatim[rowStart+x] = true
					outPos = pos
					continue
				}
				pred := prev + ly[x] + lz[x] - ly[x-1] - lz[x-1] - lyz[x] + lyz[x-1]
				prev = pred + int64(s-radius)
				cur[x] = prev
			}
		}
	}
	if outPos != len(c.outliers) {
		return nil, fmt.Errorf("%w: %d unread outlier bytes", ErrCorrupt, len(c.outliers)-outPos)
	}
	for i, q := range lat {
		if !verbatim[i] {
			out[i] = float32(twoEB * float64(q))
		}
	}
	return out, nil
}

func readFloat32(buf []byte, pos int) (float32, int, error) {
	if pos+4 > len(buf) {
		return 0, 0, fmt.Errorf("%w: outlier stream truncated", ErrCorrupt)
	}
	b := uint32(buf[pos]) | uint32(buf[pos+1])<<8 | uint32(buf[pos+2])<<16 | uint32(buf[pos+3])<<24
	return math.Float32frombits(b), pos + 4, nil
}
