// Package codec is the pluggable compression layer between the adaptive
// configurator (internal/core) and the concrete compressors (internal/sz,
// internal/zfp). The paper's fine-grained rate-quality model is
// compressor-agnostic: it assigns each partition an error bound, and any
// error-bounded codec can consume that assignment. This package makes that
// property concrete — the engine talks to a Codec interface, backends are
// resolved by name through a Registry, and every compressed frame carries a
// self-describing header (codec ID + version) so archives decode without
// out-of-band knowledge of which backend produced them.
//
// Two backends ship in the default registry:
//
//   - "sz": the prediction-based error-bounded compressor the paper
//     configures (honors Options.ErrorBound exactly);
//   - "zfp": the transform-based fixed-rate codec the paper compares
//     against (honors Options.Rate exactly; when only an error bound is
//     given the adapter searches for the cheapest rate that meets it).
package codec

import (
	"context"
	"fmt"

	"repro/internal/apierr"
	"repro/internal/grid"
	"repro/internal/sz"
	"repro/internal/zfp"
)

// ID names a codec in the registry and in frame headers. IDs are short
// ASCII strings ("sz", "zfp") so frames stay self-describing and diffable.
type ID string

const (
	// SZ is the prediction-based error-bounded compressor (internal/sz).
	SZ ID = "sz"
	// ZFP is the transform-based fixed-rate codec (internal/zfp).
	ZFP ID = "zfp"
)

// Mode selects error-bound semantics for error-bounded codecs.
type Mode uint8

const (
	// ABS bounds the absolute pointwise error: |x − x̂| ≤ ErrorBound.
	ABS Mode = iota
	// PWREL bounds the pointwise relative error (strictly positive data).
	PWREL
)

func (m Mode) String() string {
	switch m {
	case ABS:
		return "abs"
	case PWREL:
		return "pwrel"
	default:
		return fmt.Sprintf("Mode(%d)", uint8(m))
	}
}

// Predictor selects the prediction scheme of prediction-based codecs.
type Predictor uint8

const (
	// Lorenzo3D is the first-order 3-D Lorenzo predictor used by SZ.
	Lorenzo3D Predictor = iota
	// MeanNeighbor predicts the average of the three causal neighbours.
	MeanNeighbor
)

func (p Predictor) String() string { return sz.Predictor(p).String() }

// Options are the codec-agnostic knobs of one compression call. Each codec
// consumes the subset it understands and ignores the rest, so the engine
// can hand the same options to any registered backend.
type Options struct {
	// Mode is the error-bound semantics (error-bounded codecs).
	Mode Mode
	// ErrorBound is the pointwise bound the frame should honor. SZ
	// guarantees it; ZFP treats it as a target and searches for the
	// cheapest rate that meets it (best effort, see the zfp adapter).
	ErrorBound float64
	// Rate is the fixed bit budget per value (fixed-rate codecs). When
	// > 0 it overrides ErrorBound-driven rate selection for ZFP.
	Rate float64
	// Predictor selects the prediction scheme (prediction-based codecs).
	Predictor Predictor
	// QuantizeBeforePredict selects the GPU-SZ (cuSZ) formulation.
	QuantizeBeforePredict bool
	// Radius overrides the quantization radius when > 0 (SZ).
	Radius int
	// RateHint is an advisory predicted bit rate (bits/value) for
	// rate-searching codecs: the zfp adapter seeds its bracket search from
	// it, cutting the probe ladder to a couple of truncated decodes. The
	// hint never changes the chosen frame — a wrong hint only costs extra
	// probes — so hinted and unhinted searches are byte-identical. 0 means
	// no hint.
	RateHint float64
	// Telemetry, when non-nil, is filled by the codec with introspection
	// from the compression it performs (quantization histogram, rate-search
	// probe counts). It adds one cheap pass at most; leave nil on paths
	// that don't consume it.
	Telemetry *Telemetry
}

// Telemetry is per-compression introspection surfaced through
// Options.Telemetry. Codecs fill the subset they understand.
type Telemetry struct {
	// QuantHist is the quantization-symbol histogram of prediction-based
	// codecs, from the prediction pass compression already ran — the free
	// feature scan of the ratio-quality model. Layout: index 0 counts
	// exact hits (code 0); index k ∈ [1, 16] counts codes with
	// |q| ∈ [2^(k−1), 2^k); the final index counts outliers.
	QuantHist []int64
	// Probes counts the truncated-decode probes a rate search performed.
	Probes int
	// ChosenRate is the bit rate the search settled on (bits/value).
	ChosenRate float64
}

// QuantHistBins is the length of Telemetry.QuantHist: hits, 16 magnitude
// octaves, outliers.
const QuantHistBins = 18

// Frame is one compressed 3-D brick, tagged with the codec that produced
// it. Frames decode themselves, so mixed-codec archives need no external
// bookkeeping beyond the registry that parsed them.
type Frame interface {
	// CodecID identifies the producing codec.
	CodecID() ID
	// Dims returns the brick dimensions (x-fastest layout).
	Dims() (nx, ny, nz int)
	// N returns the number of cells.
	N() int
	// CompressedSize returns the payload size in bytes including the
	// codec-native header (the figure used for compression ratios).
	CompressedSize() int
	// BitRate returns bits per value (raw fp32 is 32).
	BitRate() float64
	// Ratio returns the compression ratio relative to fp32 storage.
	Ratio() float64
	// ErrorBound returns the pointwise bound this frame honors, or 0 when
	// the codec gives no bound (fixed-rate frames, parsed ZFP frames).
	ErrorBound() float64
	// Bytes serializes the frame in the codec's native format (without
	// the codec envelope; see EncodeFrame for the self-describing form).
	Bytes() []byte
	// Decompress reconstructs the flat brick values.
	Decompress() ([]float32, error)
}

// Scratch holds per-worker reusable state for the hot compression path.
// The engine pools one Scratch per worker (sync.Pool) so that compressing
// thousands of partitions allocates O(1) transient memory instead of O(n)
// per partition. A Scratch must not be used concurrently; the zero value
// is ready to use.
type Scratch struct {
	// Brick is the partition-extraction buffer owned by the engine.
	Brick []float32
	// sz holds the SZ compressor's working buffers, lazily allocated by
	// the SZ adapter on first use.
	sz *sz.Scratch
	// zfp holds the ZFP compressor's working buffers (block state, stream
	// cursors, chunk bookkeeping), lazily allocated by the ZFP adapter.
	zfp *zfp.Scratch
	// zfpProbe is the reconstruction buffer the ZFP adapter's single-pass
	// rate search decodes probes into, reused across partitions.
	zfpProbe *grid.Field3D
}

// Codec is one compression backend. Implementations must be safe for
// concurrent use (each call gets its own Scratch).
type Codec interface {
	// ID returns the registry name of the codec.
	ID() ID
	// Compress compresses a flat x-fastest brick of dimensions nx×ny×nz.
	// The input and scratch (which may be nil) are only retained during
	// the call.
	Compress(data []float32, nx, ny, nz int, opt Options, s *Scratch) (Frame, error)
	// Parse deserializes a frame previously produced by Frame.Bytes.
	Parse(body []byte) (Frame, error)
}

// CompressCtx compresses through c, forwarding ctx to codecs that support
// mid-compression cancellation (the zfp rate search checks it between
// truncated-decode probes); other codecs fall back to plain Compress,
// whose callers already check ctx between partitions.
func CompressCtx(ctx context.Context, c Codec, data []float32, nx, ny, nz int, opt Options, s *Scratch) (Frame, error) {
	type ctxCompressor interface {
		CompressCtx(ctx context.Context, data []float32, nx, ny, nz int, opt Options, s *Scratch) (Frame, error)
	}
	if cc, ok := c.(ctxCompressor); ok {
		return cc.CompressCtx(ctx, data, nx, ny, nz, opt, s)
	}
	return c.Compress(data, nx, ny, nz, opt, s)
}

// ErrUnknownCodec is wrapped by registry lookups and frame decodes that
// name a codec no backend is registered for. It is the same value the
// public facade exports as adaptive.ErrCodecUnknown, so errors.Is matches
// against either name from any layer.
var ErrUnknownCodec = apierr.ErrCodecUnknown

// validateDims rejects inconsistent brick geometry before it reaches a
// backend (shared by the adapters).
func validateDims(data []float32, nx, ny, nz int) error {
	if len(data) != nx*ny*nz || len(data) == 0 {
		return fmt.Errorf("codec: data length %d != %d×%d×%d", len(data), nx, ny, nz)
	}
	return nil
}
