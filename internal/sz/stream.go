package sz

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
)

// On-disk / on-wire framing for a Compressed brick.
//
// Layout (little endian):
//
//	offset size  field
//	0      4     magic "SZGO"
//	4      1     version (1)
//	5      1     mode
//	6      1     predictor
//	7      1     flags (bit0: quantize-before-predict)
//	8      8     error bound (float64)
//	16     4     radius
//	20     12    nx, ny, nz (uint32 each)
//	32     8     logShift (float64)
//	40     4     len(codeStream)
//	44     4     len(outliers)
//	48     4     CRC32 (Castagnoli) of the two payload sections
//	52     ...   codeStream ++ outliers
const (
	headerSize = 52
	magic      = "SZGO"
	version    = 1
)

// HeaderBytes is the fixed per-brick framing overhead, exported for the
// ratio-quality model's per-partition header term.
const HeaderBytes = headerSize

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Bytes serializes the brick.
func (c *Compressed) Bytes() []byte {
	out := make([]byte, headerSize, headerSize+len(c.codeStream)+len(c.outliers))
	copy(out[0:4], magic)
	out[4] = version
	out[5] = byte(c.Opt.Mode)
	out[6] = byte(c.Opt.Predictor)
	if c.Opt.QuantizeBeforePredict {
		out[7] = 1
	}
	binary.LittleEndian.PutUint64(out[8:16], math.Float64bits(c.Opt.ErrorBound))
	binary.LittleEndian.PutUint32(out[16:20], uint32(c.Opt.radius()))
	binary.LittleEndian.PutUint32(out[20:24], uint32(c.Nx))
	binary.LittleEndian.PutUint32(out[24:28], uint32(c.Ny))
	binary.LittleEndian.PutUint32(out[28:32], uint32(c.Nz))
	binary.LittleEndian.PutUint64(out[32:40], math.Float64bits(c.logShift))
	binary.LittleEndian.PutUint32(out[40:44], uint32(len(c.codeStream)))
	binary.LittleEndian.PutUint32(out[44:48], uint32(len(c.outliers)))
	crc := crc32.Checksum(c.codeStream, crcTable)
	crc = crc32.Update(crc, crcTable, c.outliers)
	binary.LittleEndian.PutUint32(out[48:52], crc)
	out = append(out, c.codeStream...)
	out = append(out, c.outliers...)
	return out
}

// Parse deserializes a brick previously produced by Bytes. The payload CRC
// is verified so that corrupted archives fail loudly instead of producing
// silently wrong science data.
func Parse(data []byte) (*Compressed, error) {
	if len(data) < headerSize {
		return nil, fmt.Errorf("%w: stream shorter than header", ErrCorrupt)
	}
	if string(data[0:4]) != magic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrCorrupt, data[0:4])
	}
	if data[4] != version {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrCorrupt, data[4])
	}
	opt := Options{
		Mode:                  Mode(data[5]),
		Predictor:             Predictor(data[6]),
		QuantizeBeforePredict: data[7]&1 != 0,
		ErrorBound:            math.Float64frombits(binary.LittleEndian.Uint64(data[8:16])),
		Radius:                int(binary.LittleEndian.Uint32(data[16:20])),
	}
	nx := int(binary.LittleEndian.Uint32(data[20:24]))
	ny := int(binary.LittleEndian.Uint32(data[24:28]))
	nz := int(binary.LittleEndian.Uint32(data[28:32]))
	logShift := math.Float64frombits(binary.LittleEndian.Uint64(data[32:40]))
	codeLen := int(binary.LittleEndian.Uint32(data[40:44]))
	outLen := int(binary.LittleEndian.Uint32(data[44:48]))
	wantCRC := binary.LittleEndian.Uint32(data[48:52])

	if err := opt.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	if nx <= 0 || ny <= 0 || nz <= 0 {
		return nil, fmt.Errorf("%w: invalid dims %dx%dx%d", ErrCorrupt, nx, ny, nz)
	}
	if len(data) != headerSize+codeLen+outLen {
		return nil, fmt.Errorf("%w: length %d != header+%d+%d", ErrCorrupt, len(data), codeLen, outLen)
	}
	codeStream := data[headerSize : headerSize+codeLen]
	outliers := data[headerSize+codeLen:]
	crc := crc32.Checksum(codeStream, crcTable)
	crc = crc32.Update(crc, crcTable, outliers)
	if crc != wantCRC {
		return nil, fmt.Errorf("%w: CRC mismatch", ErrCorrupt)
	}
	return &Compressed{
		Nx: nx, Ny: ny, Nz: nz,
		Opt:        opt,
		codeStream: codeStream,
		outliers:   outliers,
		logShift:   logShift,
	}, nil
}
