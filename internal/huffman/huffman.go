package huffman

import (
	"container/heap"
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
)

// The coder is canonical: only code lengths are stored in the stream, and
// both sides derive identical codes by sorting (length, symbol). Symbols are
// non-negative ints (SZ quantization indices after offsetting by the
// quantization radius).

// maxCodeLen bounds code lengths so a code always fits in one ReadBits call
// with room to spare. If a frequency distribution would produce deeper
// codes, frequencies are flattened and the tree rebuilt.
const maxCodeLen = 48

type code struct {
	bits uint64
	n    uint8
}

type heapNode struct {
	freq        int64
	order       int // tie-break for determinism
	symbol      int
	left, right *heapNode
}

type nodeHeap []*heapNode

func (h nodeHeap) Len() int { return len(h) }
func (h nodeHeap) Less(i, j int) bool {
	if h[i].freq != h[j].freq {
		return h[i].freq < h[j].freq
	}
	return h[i].order < h[j].order
}
func (h nodeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *nodeHeap) Push(x interface{}) { *h = append(*h, x.(*heapNode)) }
func (h *nodeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// codeLengths runs the Huffman algorithm and returns symbol→length.
func codeLengths(freqs map[int]int64) map[int]int {
	syms := make([]int, 0, len(freqs))
	for s := range freqs {
		syms = append(syms, s)
	}
	sort.Ints(syms)
	if len(syms) == 1 {
		return map[int]int{syms[0]: 1}
	}
	h := make(nodeHeap, 0, len(syms))
	order := 0
	for _, s := range syms {
		h = append(h, &heapNode{freq: freqs[s], order: order, symbol: s})
		order++
	}
	heap.Init(&h)
	for h.Len() > 1 {
		a := heap.Pop(&h).(*heapNode)
		b := heap.Pop(&h).(*heapNode)
		heap.Push(&h, &heapNode{freq: a.freq + b.freq, order: order, symbol: -1, left: a, right: b})
		order++
	}
	root := h[0]
	lengths := make(map[int]int, len(syms))
	var walk func(n *heapNode, depth int)
	walk = func(n *heapNode, depth int) {
		if n.left == nil && n.right == nil {
			if depth == 0 {
				depth = 1
			}
			lengths[n.symbol] = depth
			return
		}
		walk(n.left, depth+1)
		walk(n.right, depth+1)
	}
	walk(root, 0)
	return lengths
}

// boundedCodeLengths retries with flattened frequencies until no code
// exceeds maxCodeLen. Flattening divides frequencies by 2 (floor, min 1),
// which strictly reduces the achievable depth and terminates.
func boundedCodeLengths(freqs map[int]int64) map[int]int {
	f := freqs
	for {
		lengths := codeLengths(f)
		max := 0
		for _, l := range lengths {
			if l > max {
				max = l
			}
		}
		if max <= maxCodeLen {
			return lengths
		}
		g := make(map[int]int64, len(f))
		for s, c := range f {
			nc := c / 2
			if nc < 1 {
				nc = 1
			}
			g[s] = nc
		}
		f = g
	}
}

// canonicalCodes assigns canonical codes from lengths: symbols sorted by
// (length, symbol) receive consecutive codes.
func canonicalCodes(lengths map[int]int) map[int]code {
	type sl struct{ sym, n int }
	list := make([]sl, 0, len(lengths))
	for s, n := range lengths {
		list = append(list, sl{s, n})
	}
	sort.Slice(list, func(i, j int) bool {
		if list[i].n != list[j].n {
			return list[i].n < list[j].n
		}
		return list[i].sym < list[j].sym
	})
	codes := make(map[int]code, len(list))
	var c uint64
	prevLen := 0
	for _, e := range list {
		c <<= uint(e.n - prevLen)
		codes[e.sym] = code{bits: c, n: uint8(e.n)}
		c++
		prevLen = e.n
	}
	return codes
}

// Errors returned by the coder.
var (
	ErrEmptyInput   = errors.New("huffman: empty symbol stream")
	ErrCorruptTable = errors.New("huffman: corrupt code table")
	ErrCorruptData  = errors.New("huffman: corrupt payload")
)

// Compress Huffman-codes a stream of non-negative symbols into a
// self-describing byte slice (code table + payload).
//
// Stream layout (all varints are unsigned LEB128 via encoding/binary):
//
//	uvarint  symbolCount (number of coded symbols)
//	uvarint  distinct    (number of table entries)
//	entries: uvarint symbol, byte length   (sorted by symbol)
//	payload: canonical-Huffman bits, zero-padded to a byte
func Compress(symbols []int) ([]byte, error) {
	if len(symbols) == 0 {
		return nil, ErrEmptyInput
	}
	freqs := make(map[int]int64, 1024)
	for _, s := range symbols {
		if s < 0 {
			return nil, fmt.Errorf("huffman: negative symbol %d", s)
		}
		freqs[s]++
	}
	lengths := boundedCodeLengths(freqs)
	codes := canonicalCodes(lengths)

	header := make([]byte, 0, 16+5*len(lengths))
	header = binary.AppendUvarint(header, uint64(len(symbols)))
	header = binary.AppendUvarint(header, uint64(len(lengths)))
	syms := make([]int, 0, len(lengths))
	for s := range lengths {
		syms = append(syms, s)
	}
	sort.Ints(syms)
	for _, s := range syms {
		header = binary.AppendUvarint(header, uint64(s))
		header = append(header, byte(lengths[s]))
	}

	w := NewBitWriter(len(symbols) / 2)
	for _, s := range symbols {
		c := codes[s]
		w.WriteBits(c.bits, uint(c.n))
	}
	return append(header, w.Bytes()...), nil
}

// decodeTable is the canonical decoding structure: for each length, the
// first code of that length, the index of its first symbol, and the count.
type decodeTable struct {
	maxLen    int
	firstCode [maxCodeLen + 1]uint64
	firstIdx  [maxCodeLen + 1]int
	count     [maxCodeLen + 1]int
	symbols   []int // sorted by (length, symbol)
}

func buildDecodeTable(lengths map[int]int) (*decodeTable, error) {
	type sl struct{ sym, n int }
	list := make([]sl, 0, len(lengths))
	for s, n := range lengths {
		if n <= 0 || n > maxCodeLen {
			return nil, ErrCorruptTable
		}
		list = append(list, sl{s, n})
	}
	sort.Slice(list, func(i, j int) bool {
		if list[i].n != list[j].n {
			return list[i].n < list[j].n
		}
		return list[i].sym < list[j].sym
	})
	t := &decodeTable{symbols: make([]int, len(list))}
	var c uint64
	prevLen := 0
	for i, e := range list {
		c <<= uint(e.n - prevLen)
		if t.count[e.n] == 0 {
			t.firstCode[e.n] = c
			t.firstIdx[e.n] = i
		}
		t.count[e.n]++
		t.symbols[i] = e.sym
		if e.n > t.maxLen {
			t.maxLen = e.n
		}
		c++
		prevLen = e.n
		// Kraft check: code must fit in n bits.
		if c > (1 << uint(e.n)) {
			return nil, ErrCorruptTable
		}
	}
	return t, nil
}

// Decompress reverses Compress.
func Decompress(data []byte) ([]int, error) {
	symCount, n1 := binary.Uvarint(data)
	if n1 <= 0 {
		return nil, ErrCorruptTable
	}
	data = data[n1:]
	distinct, n2 := binary.Uvarint(data)
	if n2 <= 0 || distinct == 0 {
		return nil, ErrCorruptTable
	}
	data = data[n2:]
	lengths := make(map[int]int, distinct)
	for i := uint64(0); i < distinct; i++ {
		s, ns := binary.Uvarint(data)
		if ns <= 0 || ns >= len(data)+1 {
			return nil, ErrCorruptTable
		}
		data = data[ns:]
		if len(data) == 0 {
			return nil, ErrCorruptTable
		}
		lengths[int(s)] = int(data[0])
		data = data[1:]
	}
	if uint64(len(lengths)) != distinct {
		return nil, ErrCorruptTable // duplicate symbols in table
	}
	t, err := buildDecodeTable(lengths)
	if err != nil {
		return nil, err
	}
	out := make([]int, 0, symCount)
	r := NewBitReader(data)
	for uint64(len(out)) < symCount {
		var c uint64
		n := 0
		for {
			bit, err := r.ReadBit()
			if err != nil {
				return nil, ErrCorruptData
			}
			c = c<<1 | uint64(bit)
			n++
			if n > t.maxLen {
				return nil, ErrCorruptData
			}
			if t.count[n] > 0 && c >= t.firstCode[n] &&
				c-t.firstCode[n] < uint64(t.count[n]) {
				out = append(out, t.symbols[t.firstIdx[n]+int(c-t.firstCode[n])])
				break
			}
		}
	}
	return out, nil
}

// EncodedSizeBound returns a loose upper bound on the compressed size of n
// symbols with the given distinct-symbol count, used for pre-allocation.
func EncodedSizeBound(n, distinct int) int {
	return 16 + 10*distinct + n*maxCodeLen/8 + 1
}
