package stats

import (
	"errors"
	"math"
)

// ErrDegenerateFit is returned when a fit has too few or collinear points.
var ErrDegenerateFit = errors.New("stats: degenerate least-squares fit")

// LinearFit computes the ordinary least-squares line y = a + b·x and the
// coefficient of determination R².
func LinearFit(xs, ys []float64) (a, b, r2 float64, err error) {
	if len(xs) != len(ys) {
		return 0, 0, 0, ErrMismatchedLengths
	}
	n := float64(len(xs))
	if len(xs) < 2 {
		return 0, 0, 0, ErrDegenerateFit
	}
	var sx, sy, sxx, sxy, syy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
		syy += ys[i] * ys[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return 0, 0, 0, ErrDegenerateFit
	}
	b = (n*sxy - sx*sy) / den
	a = (sy - b*sx) / n
	// R² = 1 − SS_res/SS_tot
	ssTot := syy - sy*sy/n
	if ssTot == 0 {
		return a, b, 1, nil
	}
	var ssRes float64
	for i := range xs {
		d := ys[i] - (a + b*xs[i])
		ssRes += d * d
	}
	r2 = 1 - ssRes/ssTot
	return a, b, r2, nil
}

// PowerLawFit fits y = C·x^c by least squares in log-log space. All inputs
// must be strictly positive. This is the form of the paper's Eq. 15
// bit-rate model b_m = C_m·eb^c.
func PowerLawFit(xs, ys []float64) (coeff, exponent, r2 float64, err error) {
	if len(xs) != len(ys) {
		return 0, 0, 0, ErrMismatchedLengths
	}
	lx := make([]float64, 0, len(xs))
	ly := make([]float64, 0, len(ys))
	for i := range xs {
		if xs[i] <= 0 || ys[i] <= 0 {
			continue // power-law domain; callers filter, this is a guard
		}
		lx = append(lx, math.Log(xs[i]))
		ly = append(ly, math.Log(ys[i]))
	}
	a, b, r2, err := LinearFit(lx, ly)
	if err != nil {
		return 0, 0, 0, err
	}
	return math.Exp(a), b, r2, nil
}

// LogFit fits y = a + b·ln(x) by least squares; x must be positive. The
// paper predicts a partition's rate coefficient C_m from its mean value via
// a logarithmic fit (Sec. 3.5, Fig. 10a).
func LogFit(xs, ys []float64) (a, b, r2 float64, err error) {
	if len(xs) != len(ys) {
		return 0, 0, 0, ErrMismatchedLengths
	}
	lx := make([]float64, 0, len(xs))
	ly := make([]float64, 0, len(ys))
	for i := range xs {
		if xs[i] <= 0 {
			continue
		}
		lx = append(lx, math.Log(xs[i]))
		ly = append(ly, ys[i])
	}
	return LinearFit(lx, ly)
}

// Polyfit2 fits y = a + b·x + c·x² via the normal equations. It backs the
// ablation that compares richer C_m predictors against the paper's
// logarithmic fit.
func Polyfit2(xs, ys []float64) (a, b, c float64, err error) {
	if len(xs) != len(ys) {
		return 0, 0, 0, ErrMismatchedLengths
	}
	if len(xs) < 3 {
		return 0, 0, 0, ErrDegenerateFit
	}
	// Accumulate the moments of the 3x3 normal system.
	var s0, s1, s2, s3, s4, t0, t1, t2 float64
	s0 = float64(len(xs))
	for i := range xs {
		x := xs[i]
		x2 := x * x
		s1 += x
		s2 += x2
		s3 += x2 * x
		s4 += x2 * x2
		t0 += ys[i]
		t1 += x * ys[i]
		t2 += x2 * ys[i]
	}
	m := [3][4]float64{
		{s0, s1, s2, t0},
		{s1, s2, s3, t1},
		{s2, s3, s4, t2},
	}
	// Gaussian elimination with partial pivoting.
	for col := 0; col < 3; col++ {
		p := col
		for r := col + 1; r < 3; r++ {
			if math.Abs(m[r][col]) > math.Abs(m[p][col]) {
				p = r
			}
		}
		if m[p][col] == 0 {
			return 0, 0, 0, ErrDegenerateFit
		}
		m[col], m[p] = m[p], m[col]
		for r := 0; r < 3; r++ {
			if r == col {
				continue
			}
			f := m[r][col] / m[col][col]
			for k := col; k < 4; k++ {
				m[r][k] -= f * m[col][k]
			}
		}
	}
	return m[0][3] / m[0][0], m[1][3] / m[1][1], m[2][3] / m[2][2], nil
}
