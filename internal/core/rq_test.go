package core

import (
	"context"
	"math"
	"testing"

	"repro/internal/codec"
	"repro/internal/grid"
	"repro/internal/nyx"
	"repro/internal/stats"
)

// realizedBitRate calibrates in the given mode, plans at the budget, and
// compresses adaptively, returning the archive bit rate actually achieved.
func realizedBitRate(t *testing.T, e *Engine, f *grid.Field3D, mode CalibrationMode, avgEB float64) (float64, *Calibration) {
	t.Helper()
	ctx := context.Background()
	cal, err := e.Calibrate(ctx, f, CalibrationOptions{Mode: mode})
	if err != nil {
		t.Fatalf("calibrate (%v): %v", mode, err)
	}
	plan, err := e.Plan(ctx, f, cal, PlanOptions{AvgEB: avgEB})
	if err != nil {
		t.Fatalf("plan (%v): %v", mode, err)
	}
	cf, err := e.CompressAdaptive(ctx, f, plan)
	if err != nil {
		t.Fatalf("compress (%v): %v", mode, err)
	}
	return cf.BitRate(), cal
}

// TestModelScanMatchesProbeLadder is the headline property of the
// ratio-quality model: on every synthetic Nyx field, for both codecs,
// across a 25× span of error budgets, the bit rate the model-scan
// calibration achieves stays within 1% of what the full probe ladder
// achieves — at a small fraction of the fitting cost.
func TestModelScanMatchesProbeLadder(t *testing.T) {
	budgets := []float64{0.02, 0.05, 0.1, 0.2, 0.5} // × field mean |value|
	for _, id := range codec.IDs() {
		for _, name := range []string{
			nyx.FieldBaryonDensity,     // heavy-tailed, void-dominated
			nyx.FieldDarkMatterDensity, // even heavier tail
			nyx.FieldTemperature,       // smooth, strictly positive
			nyx.FieldVelocityX,         // signed, zero-crossing
		} {
			t.Run(string(id)+"/"+name, func(t *testing.T) {
				f := field(t, name)
				e := engine(t, Config{PartitionDim: 16, Codec: id})
				features, err := e.Features(context.Background(), f)
				if err != nil {
					t.Fatal(err)
				}
				mean := stats.MeanOf(features)
				for _, rel := range budgets {
					model, mcal := realizedBitRate(t, e, f, ModelScan, rel*mean)
					probe, _ := realizedBitRate(t, e, f, ProbeLadder, rel*mean)
					if mcal.FellBack {
						t.Fatalf("budget %g: model-scan fell back to the probe ladder (residual %.3f)",
							rel, mcal.Residual)
					}
					if mcal.Mode != ModelScan || len(mcal.RQ) == 0 {
						t.Fatalf("budget %g: calibration not model-scan: mode=%v rq=%d",
							rel, mcal.Mode, len(mcal.RQ))
					}
					if diff := model/probe - 1; math.Abs(diff) > 0.01 {
						t.Errorf("budget %g: model-chosen bit rate %.4f vs probe-chosen %.4f (%+.2f%%)",
							rel, model, probe, diff*100)
					}
				}
			})
		}
	}
}

// TestCalibrateConstantPartition: a field with one perfectly constant
// partition must still calibrate (the flat partition contributes a
// degenerate curve that the fit filters out) and produce a plan whose
// bounds honor the clamp ceiling.
func TestCalibrateConstantPartition(t *testing.T) {
	f := grid.NewField3D(32, 32, 32)
	for z := 0; z < 32; z++ {
		for y := 0; y < 32; y++ {
			for x := 0; x < 32; x++ {
				if x < 16 && y < 16 && z < 16 {
					f.Set(x, y, z, 3.0) // one constant partition
				} else {
					v := float32(x+2*y) + 40*float32(math.Sin(float64(z)*0.4))
					f.Set(x, y, z, v)
				}
			}
		}
	}
	e := engine(t, Config{PartitionDim: 16})
	ctx := context.Background()
	cal, err := e.Calibrate(ctx, f)
	if err != nil {
		t.Fatalf("constant partition broke calibration: %v", err)
	}
	const avgEB = 0.5
	plan, err := e.Plan(ctx, f, cal, PlanOptions{AvgEB: avgEB})
	if err != nil {
		t.Fatal(err)
	}
	ceiling := e.Config().ClampFactor * avgEB
	for i, eb := range plan.EBs {
		if eb <= 0 || eb > ceiling*(1+1e-9) {
			t.Errorf("partition %d: eb %g outside (0, %g]", i, eb, ceiling)
		}
	}
	if _, err := e.CompressAdaptive(ctx, f, plan); err != nil {
		t.Fatal(err)
	}
}

// TestCalibrateGuardBandFallback: an absurdly tight guard band must trip
// the shared-residual check and fall back to the probe ladder — recorded
// on the calibration, with a usable model and no stale scan state.
func TestCalibrateGuardBandFallback(t *testing.T) {
	f := field(t, nyx.FieldBaryonDensity)
	e := engine(t, Config{PartitionDim: 16})
	cal, err := e.Calibrate(context.Background(), f, CalibrationOptions{GuardBand: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	if !cal.FellBack {
		t.Fatal("guard band 1e-9 did not force a fallback")
	}
	if cal.Mode != ProbeLadder {
		t.Errorf("fallback mode %v, want probe-ladder", cal.Mode)
	}
	if cal.Residual <= 0 {
		t.Errorf("fallback residual %g, want > 0", cal.Residual)
	}
	if cal.RQ != nil {
		t.Error("fallback kept the rejected scan models")
	}
	if cal.Model == nil || cal.Model.Validate() != nil {
		t.Errorf("fallback model unusable: %+v", cal.Model)
	}
}

// TestCalibrateProbeValidated: the opt-in mode keeps the probe ladder as
// ground truth and reports the scan model's out-of-sample residual.
func TestCalibrateProbeValidated(t *testing.T) {
	f := field(t, nyx.FieldTemperature)
	e := engine(t, Config{PartitionDim: 16})
	cal, err := e.Calibrate(context.Background(), f, CalibrationOptions{Mode: ProbeValidated})
	if err != nil {
		t.Fatal(err)
	}
	if cal.Mode != ProbeValidated || cal.FellBack {
		t.Fatalf("mode %v fellBack %v, want probe-validated without fallback", cal.Mode, cal.FellBack)
	}
	if len(cal.RQ) != len(cal.PartitionIDs) {
		t.Errorf("%d scan models for %d samples", len(cal.RQ), len(cal.PartitionIDs))
	}
	if cal.Residual <= 0 || cal.Residual > 0.5 {
		t.Errorf("out-of-sample residual %g, want in (0, 0.5] on a smooth field", cal.Residual)
	}
}

// TestCalibrateSingleSampleRequest is the regression for the quantile
// divide-by-zero: asking for one sample partition used to compute
// idx[i*(len-1)/(nSamp-1)] with nSamp==1. It must instead take the median
// partition (plus the top-feature merge) and calibrate normally.
func TestCalibrateSingleSampleRequest(t *testing.T) {
	f := field(t, nyx.FieldBaryonDensity)
	for _, mode := range []CalibrationMode{ModelScan, ProbeLadder} {
		cal, err := engine(t, Config{PartitionDim: 16}).Calibrate(context.Background(), f,
			CalibrationOptions{Partitions: 1, Mode: mode})
		if err != nil {
			t.Fatalf("Partitions:1 (%v): %v", mode, err)
		}
		if len(cal.PartitionIDs) < 2 {
			t.Errorf("Partitions:1 (%v): sampled %d partitions, top-feature merge should add more",
				mode, len(cal.PartitionIDs))
		}
	}
}

// TestCalibrationModeStrings pins the mode labels logged by the pipeline.
func TestCalibrationModeStrings(t *testing.T) {
	for mode, want := range map[CalibrationMode]string{
		ModelScan:           "model-scan",
		ProbeValidated:      "probe-validated",
		ProbeLadder:         "probe-ladder",
		CalibrationMode(42): "CalibrationMode(42)",
	} {
		if got := mode.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(mode), got, want)
		}
	}
}

// TestCalibrationRescaled: the O(1) correction scales every predicted rate
// uniformly and leaves the original calibration untouched.
func TestCalibrationRescaled(t *testing.T) {
	f := field(t, nyx.FieldBaryonDensity)
	e := engine(t, Config{PartitionDim: 16})
	cal, err := e.Calibrate(context.Background(), f)
	if err != nil {
		t.Fatal(err)
	}
	before := cal.Model.BitRate(1.5, 0.1)
	scaled := cal.Rescaled(1.3)
	if got := scaled.Model.BitRate(1.5, 0.1); math.Abs(got/before-1.3) > 1e-9 {
		t.Errorf("rescaled prediction %g, want 1.3× %g", got, before)
	}
	if got := cal.Model.BitRate(1.5, 0.1); got != before {
		t.Error("Rescaled mutated the original calibration")
	}
	for _, same := range []*Calibration{cal.Rescaled(1), cal.Rescaled(0), cal.Rescaled(-2)} {
		if same != cal {
			t.Error("degenerate factor should return the calibration unchanged")
		}
	}
	var nilCal *Calibration
	if nilCal.Rescaled(2) != nil {
		t.Error("nil calibration should rescale to nil")
	}
}

// TestModelScanDowngradesForPWREL: the scan models absolute residuals
// only, so a point-wise-relative engine must silently use the ladder.
func TestModelScanDowngradesForPWREL(t *testing.T) {
	f := field(t, nyx.FieldTemperature)
	e := engine(t, Config{PartitionDim: 16, Mode: codec.PWREL})
	cal, err := e.Calibrate(context.Background(), f,
		CalibrationOptions{EBs: []float64{1e-3, 3e-3, 1e-2, 3e-2, 0.1}})
	if err != nil {
		t.Fatal(err)
	}
	if cal.Mode != ProbeLadder {
		t.Errorf("PWREL calibrated in mode %v, want silent probe-ladder downgrade", cal.Mode)
	}
	if cal.FellBack {
		t.Error("downgrade flagged as a guard-band fallback")
	}
}
