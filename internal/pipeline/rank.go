package pipeline

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sort"

	"repro/internal/apierr"
	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/mpi"
)

// Distributed rank runner. RunRank is one rank's side of a failure-tolerant
// in situ run: every rank consumes the same deterministic source, compresses
// the partitions it owns through the partition-ID-ordered in situ protocol
// (core.CompressInSituRank), and streams them into its own v3 shard
// (core.ShardStepFields). A step commits only when the post-write barrier
// succeeds on every alive rank.
//
// When a rank dies, the transport surfaces *apierr.RankFailedError from the
// collective instead of hanging. Every survivor then rolls its shard back to
// the last committed step (StreamWriter.TruncateSteps — a no-op on ranks the
// failure caught before they wrote), recomputes the partition assignment
// over the survivor set (core.AssignPartitions — pure function of
// (nParts, alive), no negotiation), and retries the step. Because the
// protocol's reductions fold in partition-ID order, the retried frames are
// byte-identical to what a healthy run would have produced, so the merged
// archive (core.MergeShards) still matches the single-process golden
// bit-for-bit.

// RankConfig configures one rank of a distributed run. Every rank must be
// constructed with identical configuration — the assignment and the error
// bounds are derived from it deterministically, with no negotiation.
type RankConfig struct {
	// Engine is the compression engine configuration (identical on every
	// rank: partition dim, codec, clamp factor and strategy all shape the
	// bytes).
	Engine core.Config
	// AvgEB is the default quality budget per field. Budgets are absolute:
	// a relative budget would need a collectively agreed baseline, which is
	// exactly the kind of hidden negotiation this path avoids.
	AvgEB float64
	// AvgEBs overrides the budget for specific fields.
	AvgEBs map[string]float64
	// Halo optionally enforces the halo-mass budget per field.
	Halo map[string]*core.InSituHalo
	// MaxStepRetries bounds how many rank failures one step may absorb
	// before the run gives up (default: the initial world size — each retry
	// consumes at least one dead rank).
	MaxStepRetries int
	// OnCommit, when set, observes each committed step.
	OnCommit func(step, epoch int)
	// OnFailure, when set, observes each detected rank failure.
	OnFailure func(failedRank, epoch int)
}

// RankRunStats reports one rank's view of a distributed run.
type RankRunStats struct {
	// Rank is this rank's ID.
	Rank int
	// Steps is the number of committed steps.
	Steps int
	// Retries counts step attempts abandoned because a rank failed.
	Retries int
	// FinalEpoch is the membership epoch after the run (0 = no failures).
	FinalEpoch int
	// Alive is the surviving rank set after the run.
	Alive []int
	// Collectives is the number of collectives this rank executed.
	Collectives int64
}

// RunRank runs this rank's side of a distributed compression run: it
// consumes src until io.EOF, writes this rank's shard stream to shard, and
// commits each step with a barrier. See the package comment above for the
// failure protocol. The shard writer must additionally support Truncate and
// Seek (e.g. *os.File) for failure rollback; a plain writer works as long
// as no rank dies.
//
// The caller merges the shards afterwards with core.MergeShards; the merged
// stream is byte-identical to a single-process run of the same source and
// configuration, regardless of rank count or mid-run failures.
func RunRank(ctx context.Context, t mpi.Transport, src Source, shard io.Writer, cfg RankConfig) (*RankRunStats, error) {
	if cfg.AvgEB <= 0 && len(cfg.AvgEBs) == 0 {
		return nil, fmt.Errorf("pipeline: %w: RunRank needs an absolute quality budget (AvgEB or AvgEBs)", apierr.ErrBadConfig)
	}
	eng, err := core.NewEngine(cfg.Engine)
	if err != nil {
		return nil, err
	}
	comm := mpi.NewComm(t)
	sw, err := core.NewStreamWriter(shard)
	if err != nil {
		return nil, err
	}
	maxRetries := cfg.MaxStepRetries
	if maxRetries <= 0 {
		maxRetries = t.Size()
	}

	st := &RankRunStats{Rank: t.Rank()}
	cals := make(map[string]*core.Calibration)
	committed := 0
	for {
		snap, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return st, fmt.Errorf("pipeline: rank %d source: %w", t.Rank(), err)
		}
		names := make([]string, 0, len(snap))
		for name := range snap {
			names = append(names, name)
		}
		sort.Strings(names)

		retries := 0
		for { // one iteration per attempt at this step
			if err := ctx.Err(); err != nil {
				return st, fmt.Errorf("pipeline: rank %d canceled after %d steps: %w", t.Rank(), committed, err)
			}
			block, err := compressRankStep(ctx, eng, comm, t, snap, names, cals, cfg)
			if err == nil {
				if err = sw.WriteStep(block); err != nil {
					return st, err
				}
				// Commit barrier: the coordinator releases it only once every
				// alive rank has written its shard step, so either all
				// survivors commit this step or none do.
				err = comm.Barrier()
				if err == nil {
					committed++
					st.Steps = committed
					if cfg.OnCommit != nil {
						cfg.OnCommit(committed-1, t.Epoch())
					}
					break
				}
			}
			var rf *apierr.RankFailedError
			if !errors.As(err, &rf) {
				return st, err
			}
			// A peer died mid-step. Roll back whatever this attempt wrote
			// (a no-op when the failure arrived before our write), adopt the
			// survivor set, and retry the step under the new assignment.
			st.Retries++
			if cfg.OnFailure != nil {
				cfg.OnFailure(rf.Rank, rf.Epoch)
			}
			if terr := sw.TruncateSteps(committed); terr != nil {
				return st, fmt.Errorf("pipeline: rank %d rollback after failure of rank %d: %w", t.Rank(), rf.Rank, terr)
			}
			retries++
			if retries > maxRetries {
				return st, fmt.Errorf("pipeline: rank %d gave up after %d failed attempts at step %d: %w",
					t.Rank(), retries, committed, err)
			}
		}
	}
	if err := sw.Close(); err != nil {
		return st, err
	}
	// Exit barrier: ranks return only when every survivor's shard is
	// complete, so the merger may read them immediately. A failure here is
	// survivable — the dead rank's shard is complete (it committed every
	// step) — so re-enter the barrier with the survivors.
	for tries := 0; ; tries++ {
		err := comm.Barrier()
		if err == nil {
			break
		}
		var rf *apierr.RankFailedError
		if !errors.As(err, &rf) || tries >= maxRetries {
			return st, err
		}
		if cfg.OnFailure != nil {
			cfg.OnFailure(rf.Rank, rf.Epoch)
		}
	}
	st.FinalEpoch = t.Epoch()
	st.Alive = t.Alive()
	st.Collectives, _ = t.Stats()
	return st, nil
}

// compressRankStep compresses one attempt of one step: every field of the
// snapshot, this rank's share only, into a shard step block.
func compressRankStep(ctx context.Context, eng *core.Engine, comm *mpi.Comm, t mpi.Transport,
	snap map[string]*grid.Field3D, names []string, cals map[string]*core.Calibration, cfg RankConfig) (map[string]*core.CompressedField, error) {
	block := make(map[string]*core.CompressedField)
	for _, name := range names {
		f := snap[name]
		cal := cals[name]
		if cal == nil {
			// Calibration is local and deterministic: every rank fits the
			// same model from the same bytes, so no broadcast is needed and
			// a rank that joined a retry mid-run reaches the same plan.
			var err error
			cal, err = eng.Calibrate(ctx, f, core.CalibrationOptions{})
			if err != nil {
				return nil, fmt.Errorf("pipeline: rank %d field %s: %w", t.Rank(), name, err)
			}
			cals[name] = cal
		}
		eb := cfg.AvgEB
		if v, ok := cfg.AvgEBs[name]; ok {
			eb = v
		}
		nParts, err := eng.NumPartitions(f)
		if err != nil {
			return nil, err
		}
		alive := t.Alive()
		if nParts < len(alive) {
			return nil, fmt.Errorf("pipeline: %w: field %s has %d partitions for %d ranks — every rank must own at least one",
				apierr.ErrBadConfig, name, nParts, len(alive))
		}
		owned := core.AssignPartitions(nParts, alive)[t.Rank()]
		sh, err := eng.CompressInSituRank(ctx, comm, f, cal, core.InSituOptions{AvgEB: eb, Halo: cfg.Halo[name]}, owned)
		if err != nil {
			return nil, err
		}
		fields, err := core.ShardStepFields(name, f.Nx, f.Ny, f.Nz, eng.Config().PartitionDim, sh)
		if err != nil {
			return nil, err
		}
		for k, v := range fields {
			block[k] = v
		}
	}
	return block, nil
}
