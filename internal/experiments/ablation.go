package experiments

import (
	"context"
	"fmt"
	"math"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/nyx"
	"repro/internal/optimizer"
	"repro/internal/stats"
)

// gridExtract and logOf are small aliases keeping the ablation code terse.
func gridExtract(f *grid.Field3D, part grid.Partition) []float32 { return grid.Extract(f, part) }
func logOf(v float64) float64                                    { return math.Log(v) }

// Ablations for the reproduction's design choices (see README.md). Each
// runs the end-to-end adaptive-vs-static comparison under one modified
// knob.

// ablate runs adaptive-vs-static on baryon density with a custom engine.
func ablate(ctx *Context, engCfg core.Config) (adaptive, static float64, err error) {
	f, err := ctx.Field(nyx.FieldBaryonDensity)
	if err != nil {
		return 0, 0, err
	}
	engCfg.PartitionDim = ctx.Cfg.PartitionDim
	engCfg.Workers = ctx.Cfg.Workers
	if engCfg.Codec == "" {
		engCfg.Codec = ctx.Cfg.Codec
	}
	eng, err := core.NewEngine(engCfg)
	if err != nil {
		return 0, 0, err
	}
	cal, err := eng.Calibrate(context.Background(), f)
	if err != nil {
		return 0, 0, err
	}
	avgEB, err := core.SpectrumBudget(f, core.BudgetOptions{Workers: ctx.Cfg.Workers})
	if err != nil {
		return 0, 0, err
	}
	a, s, _, err := adaptiveVsStatic(eng, f, cal, avgEB)
	return a, s, err
}

// AblationPredictor compares the Lorenzo predictor against the
// mean-of-neighbours predictor.
func AblationPredictor(ctx *Context) (*Result, error) {
	res := &Result{
		ID:    "ablation-predictor",
		Title: "Ablation: predictor choice (baryon density)",
		Cols:  []string{"predictor", "adaptive", "static", "improvement"},
	}
	for _, p := range []codec.Predictor{codec.Lorenzo3D, codec.MeanNeighbor} {
		a, s, err := ablate(ctx, core.Config{Predictor: p})
		if err != nil {
			return nil, err
		}
		res.AddRow(p.String(), fnum(a), fnum(s), fmt.Sprintf("%+.1f%%", (a/s-1)*100))
	}
	res.Notef("Lorenzo should dominate on smooth structure; the adaptive gain persists under either predictor")
	return res, nil
}

// AblationQuantPlacement compares CPU-SZ (predict-then-quantize) against
// GPU-SZ (quantize-then-predict), which Sec. 3.2 argues behave identically.
func AblationQuantPlacement(ctx *Context) (*Result, error) {
	res := &Result{
		ID:    "ablation-quant",
		Title: "Ablation: quantization placement (baryon density)",
		Cols:  []string{"formulation", "adaptive", "static", "improvement"},
	}
	for _, qbp := range []bool{false, true} {
		name := "predict-then-quantize (CPU-SZ)"
		if qbp {
			name = "quantize-then-predict (GPU-SZ)"
		}
		a, s, err := ablate(ctx, core.Config{QuantizeBeforePredict: qbp})
		if err != nil {
			return nil, err
		}
		res.AddRow(name, fnum(a), fnum(s), fmt.Sprintf("%+.1f%%", (a/s-1)*100))
	}
	res.Notef("the two formulations produce (near-)identical rates — the paper's Sec. 3.2 equivalence")
	return res, nil
}

// AblationClamp sweeps the error-bound clamp factor around the paper's ×4.
func AblationClamp(ctx *Context) (*Result, error) {
	res := &Result{
		ID:    "ablation-clamp",
		Title: "Ablation: clamp factor (baryon density)",
		Cols:  []string{"clamp", "adaptive", "static", "improvement"},
	}
	for _, k := range []float64{2, 4, 8} {
		a, s, err := ablate(ctx, core.Config{ClampFactor: k})
		if err != nil {
			return nil, err
		}
		res.AddRow(fnum(k), fnum(a), fnum(s), fmt.Sprintf("%+.1f%%", (a/s-1)*100))
	}
	res.Notef("a wider clamp lets the allocation exploit more heterogeneity but weakens the per-partition error guarantee (paper uses ×4)")
	return res, nil
}

// AblationStrategy compares the equal-derivative allocation against the
// paper's literal Eq. 16 exponent.
func AblationStrategy(ctx *Context) (*Result, error) {
	res := &Result{
		ID:    "ablation-strategy",
		Title: "Ablation: allocation strategy (baryon density)",
		Cols:  []string{"strategy", "adaptive", "static", "improvement"},
	}
	for _, st := range []optimizer.Strategy{optimizer.EqualDerivative, optimizer.PaperEq16} {
		a, s, err := ablate(ctx, core.Config{Strategy: st})
		if err != nil {
			return nil, err
		}
		res.AddRow(st.String(), fnum(a), fnum(s), fmt.Sprintf("%+.1f%%", (a/s-1)*100))
	}
	res.Notef("equal-derivative is the Lagrangian optimum of Eq. 15 under a mean-eb budget; the literal Eq. 16 exponent (1/c with c<0) inverts the allocation and loses ratio")
	return res, nil
}

// AblationCmSource compares predicting C_m from the partition mean (the
// paper's choice) against predicting it from quantized entropy — the
// alternative the paper rejected for its extraction cost (Sec. 3.5).
func AblationCmSource(ctx *Context) (*Result, error) {
	f, err := ctx.Field(nyx.FieldBaryonDensity)
	if err != nil {
		return nil, err
	}
	cal, err := ctx.Calibration(nyx.FieldBaryonDensity)
	if err != nil {
		return nil, err
	}
	p, err := ctx.Partitioner()
	if err != nil {
		return nil, err
	}
	parts := p.Partitions()
	exact := cal.Model.ExactCms(cal.Curves)

	// Entropy feature per sampled partition, then a fresh log fit.
	entFeats := make([]float64, len(cal.Curves))
	for i, pi := range cal.PartitionIDs {
		data := gridExtract(f, parts[pi])
		// Offset by 1e-6 keeps the log fit defined for zero-entropy voids.
		entFeats[i] = stats.QuantizedEntropy(data, 256) + 1e-6
	}
	validEnt, validExact := []float64{}, []float64{}
	for i := range exact {
		if exact[i] > 0 {
			validEnt = append(validEnt, entFeats[i])
			validExact = append(validExact, exact[i])
		}
	}
	entA, entB, entR2, entErrFit := stats.LogFit(validEnt, validExact)

	var meanErr, entErr stats.Moments
	for i := range cal.Curves {
		if exact[i] <= 0 {
			continue
		}
		predMean := cal.Model.Cm(cal.Curves[i].Feature)
		meanErr.Add(absf(predMean-exact[i]) / exact[i])
		if entErrFit == nil {
			predEnt := entA + entB*logOf(entFeats[i])
			if predEnt < 0 {
				predEnt = 0
			}
			entErr.Add(absf(predEnt-exact[i]) / exact[i])
		}
	}
	res := &Result{
		ID:    "ablation-cm",
		Title: "Ablation: C_m predictor (baryon density)",
		Cols:  []string{"source", "mean_rel_err", "fit_r2", "extraction_cost"},
	}
	res.AddRow("partition mean (paper)", fnum(meanErr.Mean()), fnum(cal.Model.FitR2), "one pass, one float")
	if entErrFit == nil {
		res.AddRow("quantized entropy", fnum(entErr.Mean()), fnum(entR2), "two passes + 256-bin histogram")
	} else {
		res.AddRow("quantized entropy", "fit failed", "-", "two passes + 256-bin histogram")
	}
	res.AddRow("exact per-partition fit (oracle)", "0", "1", "full calibration sweep per partition")
	res.Notef("the paper chose the mean to keep in situ overhead ~1%%; entropy correlates with C_m too but costs an extra histogram pass (Sec. 3.5)")
	return res, nil
}

func absf(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
