// Package huffman implements the canonical Huffman coder used by the SZ
// compressor stage. SZ's third step Huffman-codes the quantization indices
// produced by error-controlled linear-scaling quantization (Sec. 2.2 of the
// paper); this package provides that coder plus the bit-level I/O it needs.
//
// The coder is table-driven end to end (see huffman.go): dense
// slice-indexed frequency and code tables on encode, a first-level LUT with
// canonical fallback on decode, and a reusable Scratch so the per-partition
// hot path runs without transient allocation. The BitWriter/BitReader here
// are the general-purpose bit I/O used by other packages (internal/zfp);
// the Huffman hot loops inline their own 64-bit accumulators.
package huffman

import (
	"errors"
	"fmt"
)

// BitWriter accumulates bits MSB-first into a byte slice.
type BitWriter struct {
	buf  []byte
	cur  uint64 // pending bits, left-aligned within nbits
	ncur uint   // number of pending bits (< 8 after flushes)
}

// NewBitWriter returns a writer with the given initial capacity in bytes.
func NewBitWriter(capBytes int) *BitWriter {
	return &BitWriter{buf: make([]byte, 0, capBytes)}
}

// WriteBits appends the low n bits of v, most significant first. n ≤ 57 so
// the pending accumulator never overflows in one call.
func (w *BitWriter) WriteBits(v uint64, n uint) {
	if n == 0 {
		return
	}
	if n > 57 {
		panic(fmt.Sprintf("huffman: WriteBits n=%d > 57", n))
	}
	w.cur = (w.cur << n) | (v & ((1 << n) - 1))
	w.ncur += n
	for w.ncur >= 8 {
		w.ncur -= 8
		w.buf = append(w.buf, byte(w.cur>>w.ncur))
	}
}

// WriteBit appends one bit.
func (w *BitWriter) WriteBit(b uint) { w.WriteBits(uint64(b), 1) }

// Bytes flushes any partial byte (zero-padded) and returns the buffer.
// Bytes may be called once; further writes after Bytes are invalid.
func (w *BitWriter) Bytes() []byte {
	if w.ncur > 0 {
		w.buf = append(w.buf, byte(w.cur<<(8-w.ncur)))
		w.ncur = 0
		w.cur = 0
	}
	return w.buf
}

// BitLen returns the number of bits written so far.
func (w *BitWriter) BitLen() int { return len(w.buf)*8 + int(w.ncur) }

// ErrOutOfBits is returned when a reader runs past the end of its buffer.
var ErrOutOfBits = errors.New("huffman: read past end of bitstream")

// BitReader consumes bits MSB-first from a byte slice.
type BitReader struct {
	buf  []byte
	pos  int // next byte index
	cur  uint64
	ncur uint
}

// NewBitReader wraps buf for reading.
func NewBitReader(buf []byte) *BitReader { return &BitReader{buf: buf} }

// ReadBits reads n ≤ 57 bits, MSB-first.
func (r *BitReader) ReadBits(n uint) (uint64, error) {
	if n > 57 {
		return 0, fmt.Errorf("huffman: ReadBits n=%d > 57", n)
	}
	for r.ncur < n {
		if r.pos >= len(r.buf) {
			return 0, ErrOutOfBits
		}
		r.cur = (r.cur << 8) | uint64(r.buf[r.pos])
		r.pos++
		r.ncur += 8
	}
	r.ncur -= n
	v := (r.cur >> r.ncur) & ((1 << n) - 1)
	return v, nil
}

// ReadBit reads a single bit.
func (r *BitReader) ReadBit() (uint, error) {
	v, err := r.ReadBits(1)
	return uint(v), err
}
