// Package core is the public face of the reproduction: the adaptive
// configurator that ties feature extraction, rate-quality modeling,
// error-bound optimization, and compression into the workflow the paper
// deploys in situ (Sec. 3.6, Fig. 2).
//
// Typical use (external programs should go through the public facade in
// package adaptive instead of importing this package directly):
//
//	eng, _ := core.NewEngine(core.Config{PartitionDim: 16})
//	cal, _ := eng.Calibrate(ctx, field)                 // once per field kind
//	plan, _ := eng.Plan(ctx, field, cal, core.PlanOptions{AvgEB: 0.1})
//	cf, _ := eng.CompressAdaptive(ctx, field, plan)     // per snapshot
//	recon, _ := cf.Decompress(ctx)
//
// The static baseline (one error bound everywhere) is CompressStatic; the
// two paths share everything but the allocation, so their ratio difference
// is exactly the paper's claimed improvement.
//
// The engine is codec-agnostic: Config.Codec names a backend in the
// internal/codec registry ("sz" by default, "zfp" for the fixed-rate
// comparison), and everything downstream — calibration, planning, the in
// situ protocol, archives — runs through the codec interface.
package core

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"repro/internal/apierr"
	"repro/internal/codec"
	"repro/internal/grid"
	"repro/internal/model"
	"repro/internal/optimizer"
	"repro/internal/parallel"
)

// Config configures an Engine.
type Config struct {
	// PartitionDim is the cubic brick edge length (the paper uses 64 on
	// 512³ data; the benches default to 16 on 128³, the same 512-brick
	// layout at CI scale). Field dims must be divisible by it.
	PartitionDim int
	// Codec names the compression backend in the codec registry
	// (default codec.SZ, the paper's choice).
	Codec codec.ID
	// Mode is the error-bound semantics (default ABS, as required by the
	// paper's error control).
	Mode codec.Mode
	// Predictor forwards to prediction-based codecs (default Lorenzo3D).
	Predictor codec.Predictor
	// QuantizeBeforePredict forwards to the compressor (GPU-SZ style).
	QuantizeBeforePredict bool
	// Workers bounds parallelism (0 = GOMAXPROCS).
	Workers int
	// ClampFactor is the optimizer's error-bound box (default 4).
	ClampFactor float64
	// Strategy is the allocation strategy (default EqualDerivative).
	Strategy optimizer.Strategy
}

func (c Config) withDefaults() Config {
	if c.PartitionDim == 0 {
		c.PartitionDim = 16
	}
	if c.Codec == "" {
		c.Codec = codec.SZ
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.ClampFactor == 0 {
		c.ClampFactor = 4
	}
	return c
}

// Validate checks the configuration. Rejections wrap apierr.ErrBadConfig.
func (c Config) Validate() error {
	if c.PartitionDim <= 0 {
		return fmt.Errorf("core: %w: partition dim %d must be positive", apierr.ErrBadConfig, c.PartitionDim)
	}
	if c.ClampFactor < 1 {
		return fmt.Errorf("core: %w: clamp factor %v must be ≥ 1", apierr.ErrBadConfig, c.ClampFactor)
	}
	return nil
}

// Engine is the adaptive configurator.
type Engine struct {
	cfg Config
	cdc codec.Codec
	// scratch pools per-worker compression state so the hot per-partition
	// paths allocate O(1) transient memory per snapshot.
	scratch sync.Pool
}

// NewEngine builds an engine, resolving the configured codec in the
// registry so an unknown backend fails here rather than mid-compression.
func NewEngine(cfg Config) (*Engine, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cdc, err := codec.Lookup(cfg.Codec)
	if err != nil {
		return nil, err
	}
	return &Engine{cfg: cfg, cdc: cdc}, nil
}

// Config returns the engine's effective configuration.
func (e *Engine) Config() Config { return e.cfg }

// Codec returns the resolved compression backend.
func (e *Engine) Codec() codec.Codec { return e.cdc }

func (e *Engine) getScratch() *codec.Scratch {
	if s, ok := e.scratch.Get().(*codec.Scratch); ok {
		return s
	}
	return &codec.Scratch{}
}

func (e *Engine) putScratch(s *codec.Scratch) { e.scratch.Put(s) }

// partitioner builds the brick layout for a field.
func (e *Engine) partitioner(f *grid.Field3D) (*grid.Partitioner, error) {
	d := e.cfg.PartitionDim
	if f.Nx%d != 0 || f.Ny%d != 0 || f.Nz%d != 0 {
		return nil, fmt.Errorf("core: %w: field %s not divisible by partition dim %d", apierr.ErrBadConfig, f, d)
	}
	return grid.NewPartitioner(f.Nx, f.Ny, f.Nz, f.Nx/d, f.Ny/d, f.Nz/d)
}

// codecOptions builds compressor options at a given error bound. The
// engine never sets Options.Rate: it exists to *configure* bounds, so
// fixed-rate codecs must derive their rate from each partition's bound
// (plain fixed-rate compression is available on the codec interface
// directly).
func (e *Engine) codecOptions(eb float64) codec.Options {
	return codec.Options{
		Mode:                  e.cfg.Mode,
		ErrorBound:            eb,
		Predictor:             e.cfg.Predictor,
		QuantizeBeforePredict: e.cfg.QuantizeBeforePredict,
	}
}

// Plan is a chosen per-partition configuration for one field.
type Plan struct {
	// EBs[i] is partition i's error bound.
	EBs []float64
	// Features[i] is the rate-model predictor used for partition i.
	Features []float64
	// Rates[i] is the model-predicted bit rate of partition i at its
	// planned bound, forwarded to rate-searching codecs as an advisory
	// search seed (codec.Options.RateHint — never changes the frames).
	Rates []float64
	// AvgEB is the quality budget the plan satisfies.
	AvgEB float64
	// Predicted carries the optimizer's model estimates.
	Predicted optimizer.Result
}

// PlanOptions selects the quality budget for planning.
type PlanOptions struct {
	// AvgEB is the average-error-bound budget (derive it with
	// SpectrumBudget or supply it directly).
	AvgEB float64
	// Halo optionally adds the halo-finder mass budget (density fields).
	Halo *optimizer.HaloConstraint
}

// Plan computes the adaptive per-partition error bounds for a field.
func (e *Engine) Plan(ctx context.Context, f *grid.Field3D, cal *Calibration, opt PlanOptions) (*Plan, error) {
	features, err := e.Features(ctx, f)
	if err != nil {
		return nil, err
	}
	return e.PlanFromFeatures(features, cal, opt)
}

// Features computes the per-partition rate-model predictor for a field
// (mean |value| per partition, in partition-ID order). Streaming callers
// extract features once per step to monitor drift and then hand them to
// PlanFromFeatures, so the field is scanned a single time. Cancellation is
// checked between partitions.
func (e *Engine) Features(ctx context.Context, f *grid.Field3D) ([]float64, error) {
	p, err := e.partitioner(f)
	if err != nil {
		return nil, err
	}
	features := e.extractFeatures(ctx, f, p)
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("core: feature extraction: %w", err)
	}
	return features, nil
}

// PlanFromFeatures is Plan with the per-partition features already in hand
// (they must come from Features on a field of the same layout).
func (e *Engine) PlanFromFeatures(features []float64, cal *Calibration, opt PlanOptions) (*Plan, error) {
	if cal == nil || cal.Model == nil {
		return nil, fmt.Errorf("core: %w: nil calibration", apierr.ErrBadConfig)
	}
	if opt.AvgEB <= 0 {
		return nil, fmt.Errorf("core: %w: PlanOptions.AvgEB %g must be positive", apierr.ErrBadConfig, opt.AvgEB)
	}
	cfg := optimizer.Config{
		AvgEB:       opt.AvgEB,
		ClampFactor: e.cfg.ClampFactor,
		Strategy:    e.cfg.Strategy,
	}
	var res *optimizer.Result
	var err error
	if opt.Halo != nil {
		res, err = optimizer.AllocateWithHalo(cal.Model, features, cfg, *opt.Halo)
	} else {
		res, err = optimizer.Allocate(cal.Model, features, cfg)
	}
	if err != nil {
		return nil, err
	}
	rates := make([]float64, len(res.EBs))
	for i := range rates {
		rates[i] = cal.Model.BitRate(features[i], res.EBs[i])
	}
	return &Plan{EBs: res.EBs, Features: features, Rates: rates, AvgEB: opt.AvgEB, Predicted: *res}, nil
}

// extractFeatures computes the per-partition rate-model predictor:
// mean |value| (see model.RateModel for why |·|). On cancellation the
// returned slice is partially filled; callers must check ctx.Err().
func (e *Engine) extractFeatures(ctx context.Context, f *grid.Field3D, p *grid.Partitioner) []float64 {
	parts := p.Partitions()
	out := make([]float64, len(parts))
	e.forEachPartition(ctx, len(parts), func(i int, s *codec.Scratch) {
		part := parts[i]
		data := e.brick(s, f, part)
		var sum float64
		for _, v := range data {
			if v < 0 {
				sum -= float64(v)
			} else {
				sum += float64(v)
			}
		}
		out[i] = sum / float64(len(data))
	})
	return out
}

// CompressedField is a field compressed partition-by-partition. Parts are
// codec-tagged frames; mixed-codec fields decode fine, but every frame an
// engine produces uses the engine's configured codec.
type CompressedField struct {
	Nx, Ny, Nz   int
	PartitionDim int
	// Codec records the backend that produced the partition frames.
	Codec       codec.ID
	Parts       []codec.Frame
	partitioner *grid.Partitioner
}

// CompressAdaptive compresses each partition with its planned error bound.
// Cancellation is checked between partitions, never mid-partition, so every
// frame that was produced is complete and bit-exact.
func (e *Engine) CompressAdaptive(ctx context.Context, f *grid.Field3D, plan *Plan) (*CompressedField, error) {
	p, err := e.partitioner(f)
	if err != nil {
		return nil, err
	}
	if plan == nil || len(plan.EBs) != p.Count() {
		return nil, fmt.Errorf("core: %w: plan has %d bounds for %d partitions",
			apierr.ErrBadConfig, planLen(plan), p.Count())
	}
	var rateOf func(int) float64
	if len(plan.Rates) == len(plan.EBs) {
		rateOf = func(i int) float64 { return plan.Rates[i] }
	}
	return e.compressWith(ctx, f, p, func(i int) float64 { return plan.EBs[i] }, rateOf)
}

// CompressStatic compresses every partition with the same bound — the
// paper's "traditional" baseline.
func (e *Engine) CompressStatic(ctx context.Context, f *grid.Field3D, eb float64) (*CompressedField, error) {
	if eb <= 0 {
		return nil, fmt.Errorf("core: %w: static error bound %g must be positive", apierr.ErrBadConfig, eb)
	}
	p, err := e.partitioner(f)
	if err != nil {
		return nil, err
	}
	return e.compressWith(ctx, f, p, func(int) float64 { return eb }, nil)
}

func planLen(p *Plan) int {
	if p == nil {
		return 0
	}
	return len(p.EBs)
}

func (e *Engine) compressWith(ctx context.Context, f *grid.Field3D, p *grid.Partitioner, ebOf, rateOf func(int) float64) (*CompressedField, error) {
	parts := p.Partitions()
	cf := &CompressedField{
		Nx: f.Nx, Ny: f.Ny, Nz: f.Nz,
		PartitionDim: e.cfg.PartitionDim,
		Codec:        e.cfg.Codec,
		Parts:        make([]codec.Frame, len(parts)),
		partitioner:  p,
	}
	var firstErr error
	var mu sync.Mutex
	e.forEachPartition(ctx, len(parts), func(i int, s *codec.Scratch) {
		part := parts[i]
		data := e.brick(s, f, part)
		nx, ny, nz := part.Dims()
		// The codec retains neither the input nor the scratch past the
		// call, so the per-worker buffers are reused across partitions.
		opt := e.codecOptions(ebOf(i))
		if rateOf != nil {
			opt.RateHint = rateOf(i)
		}
		c, err := codec.CompressCtx(ctx, e.cdc, data, nx, ny, nz, opt, s)
		if err != nil {
			mu.Lock()
			if firstErr == nil {
				firstErr = fmt.Errorf("core: partition %d: %w", i, err)
			}
			mu.Unlock()
			return
		}
		cf.Parts[i] = c
	})
	if firstErr != nil {
		return nil, firstErr
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("core: compression: %w", err)
	}
	return cf, nil
}

// brick extracts partition data into the worker's scratch buffer.
func (e *Engine) brick(s *codec.Scratch, f *grid.Field3D, part grid.Partition) []float32 {
	if cap(s.Brick) < part.Len() {
		s.Brick = make([]float32, part.Len())
	}
	data := s.Brick[:part.Len()]
	grid.ExtractInto(data, f, part)
	return data
}

// forEachPartition fans partition indices out over the shared worker pool
// (internal/parallel); each participating goroutine — the caller plus any
// pool helpers, capped by Config.Workers — checks one scratch out of the
// engine pool for the duration. Drawing helpers from the process-wide pool
// keeps nested fan-outs (pipeline fields above, zfp blocks below) bounded
// at O(GOMAXPROCS) total workers instead of multiplying per level.
// Cancellation stops the index hand-out between partitions; partitions
// already started run to completion (callers check ctx.Err() afterwards).
func (e *Engine) forEachPartition(ctx context.Context, n int, fn func(i int, s *codec.Scratch)) {
	if n <= 1 || e.cfg.Workers <= 1 {
		s := e.getScratch()
		for i := 0; i < n && ctx.Err() == nil; i++ {
			fn(i, s)
		}
		e.putScratch(s)
		return
	}
	parallel.WorkersCtx(ctx, n, e.cfg.Workers, func(next func() (int, bool)) {
		s := e.getScratch()
		defer e.putScratch(s)
		for i, ok := next(); ok; i, ok = next() {
			fn(i, s)
		}
	})
}

// Decompress reconstructs the full field. Cancellation is checked between
// partitions.
func (cf *CompressedField) Decompress(ctx context.Context) (*grid.Field3D, error) {
	if cf.partitioner == nil {
		p, err := grid.NewPartitioner(cf.Nx, cf.Ny, cf.Nz,
			cf.Nx/cf.PartitionDim, cf.Ny/cf.PartitionDim, cf.Nz/cf.PartitionDim)
		if err != nil {
			return nil, err
		}
		cf.partitioner = p
	}
	parts := cf.partitioner.Partitions()
	if len(parts) != len(cf.Parts) {
		return nil, fmt.Errorf("core: %w: %d compressed parts for %d partitions",
			apierr.ErrCorruptArchive, len(cf.Parts), len(parts))
	}
	out := grid.NewField3D(cf.Nx, cf.Ny, cf.Nz)
	var firstErr error
	var mu sync.Mutex
	parallel.ForEachCtx(ctx, len(parts), 0, func(i int) {
		data, err := cf.Parts[i].Decompress()
		if err == nil {
			err = grid.Insert(out, parts[i], data)
		}
		if err != nil {
			mu.Lock()
			if firstErr == nil {
				firstErr = fmt.Errorf("core: partition %d: %w", i, err)
			}
			mu.Unlock()
		}
	})
	if firstErr != nil {
		return nil, firstErr
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("core: decompression: %w", err)
	}
	return out, nil
}

// CompressedSize returns the total payload bytes.
func (cf *CompressedField) CompressedSize() int {
	var s int
	for _, p := range cf.Parts {
		s += p.CompressedSize()
	}
	return s
}

// N returns the number of cells.
func (cf *CompressedField) N() int { return cf.Nx * cf.Ny * cf.Nz }

// Ratio returns the compression ratio vs fp32.
func (cf *CompressedField) Ratio() float64 {
	return float64(4*cf.N()) / float64(cf.CompressedSize())
}

// BitRate returns bits per value.
func (cf *CompressedField) BitRate() float64 {
	return float64(cf.CompressedSize()) * 8 / float64(cf.N())
}

// PartitionEBs returns the per-partition error bounds actually stored
// (0 for frames that carry no bound, e.g. fixed-rate codecs).
func (cf *CompressedField) PartitionEBs() []float64 {
	out := make([]float64, len(cf.Parts))
	for i, p := range cf.Parts {
		out[i] = p.ErrorBound()
	}
	return out
}

// MassFaultEstimate combines a plan with halo features to predict the
// halo-mass distortion of this compressed field (Eq. 11).
func MassFaultEstimate(tBoundary, refEB float64, boundaryCells []int, ebs []float64) (float64, error) {
	return model.MassFaultFromBoundaryCells(tBoundary, refEB, boundaryCells, ebs)
}
