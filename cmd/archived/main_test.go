package main

import (
	"bytes"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"repro/adaptive"
)

// TestGenServeSplice runs the full CLI surface in-process: generate a
// stream, fetch a stored field over HTTP, and verify runSplice against
// the facade's reference splice.
func TestGenServeSplice(t *testing.T) {
	dir := t.TempDir()
	if err := runGen(dir, "demo", 2, 16, 8, 2, "temperature", 1e-3, 1); err != nil {
		t.Fatal(err)
	}

	srv, err := adaptive.NewArchiveServer(adaptive.ArchiveServerConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/v1/archive/demo/0/baryon_density")
	if err != nil {
		t.Fatal(err)
	}
	full, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stored fetch: %d %s", resp.StatusCode, full)
	}
	fullPath := filepath.Join(dir, "full.bin")
	if err := os.WriteFile(fullPath, full, 0o644); err != nil {
		t.Fatal(err)
	}
	outPath := filepath.Join(dir, "r2.bin")
	if err := runSplice(fullPath, 2, outPath); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	want, err := adaptive.SpliceArchiveField(full, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("runSplice output (%d bytes) differs from reference splice (%d bytes)", len(got), len(want))
	}

	if err := runSplice(filepath.Join(dir, "missing.bin"), 2, ""); err == nil {
		t.Fatal("runSplice on a missing file should fail")
	}
	if err := runGen("", "x", 1, 16, 8, 1, "", 0, 1); err == nil {
		t.Fatal("runGen without a dir should fail")
	}
	if err := runGen(dir, "x", 1, 16, 8, 0, "", 0, 1); err == nil {
		t.Fatal("runGen with zero fields should fail")
	}
	if err := runGen(dir, "x", 1, 16, 8, 1, "no_such_field", 1e-3, 1); err == nil {
		t.Fatal("runGen with an unknown sz field should fail")
	}
}

// TestRunServeGracefulShutdown starts the real serve loop on a free
// port and stops it the way production does: SIGTERM.
func TestRunServeGracefulShutdown(t *testing.T) {
	if err := runServe("", ":0", 0); err == nil {
		t.Fatal("runServe without a dir should fail")
	}

	dir := t.TempDir()
	if err := runGen(dir, "demo", 1, 16, 8, 1, "", 0, 1); err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()

	done := make(chan error, 1)
	go func() { done <- runServe(dir, addr, 8<<20) }()
	up := false
	for i := 0; i < 100 && !up; i++ {
		resp, err := http.Get("http://" + addr + "/v1/archive")
		if err == nil {
			resp.Body.Close()
			up = resp.StatusCode == http.StatusOK
		}
		time.Sleep(50 * time.Millisecond)
	}
	if !up {
		t.Fatal("archived never came up")
	}
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("runServe after SIGTERM: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("runServe did not exit on SIGTERM")
	}
}
