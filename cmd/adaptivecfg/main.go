// Command adaptivecfg runs the paper's adaptive compression pipeline on a
// snapshot file: calibrate the rate model, derive the quality budget, plan
// per-partition error bounds, compress adaptively, and report ratios
// against the static baseline at the same budget.
//
// Usage:
//
//	adaptivecfg -snapshot data/snapshot_z42.nyx -field baryon_density \
//	            -partition 16 [-codec sz] [-avg-eb 0.1] [-halo] [-save out.acfd]
//
// When -avg-eb is omitted the budget is derived from the power-spectrum
// quality target (±1 % for k < 10 at 2σ confidence, the paper's setting).
// -codec selects the compression backend from the codec registry (sz by
// default; zfp approximates each planned bound with its fixed-rate search).
//
// With -steps N (N > 1) the command switches to the streaming pipeline: it
// evolves the loaded snapshot N timesteps (deterministic synthetic drift),
// calibrates once, recalibrates per -policy/-drift, and reports per-step
// ratios and the run's calibration amortization. -save then writes an
// archive v3 multi-snapshot stream instead of a single-field archive.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"repro/adaptive"
	"repro/adaptive/codecs"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("adaptivecfg: ")
	var (
		snapPath  = flag.String("snapshot", "", "snapshot file from nyxgen (required)")
		fieldName = flag.String("field", adaptive.FieldBaryonDensity, "field to compress")
		partition = flag.Int("partition", 16, "partition brick dimension")
		codecName = flag.String("codec", string(codecs.SZ),
			fmt.Sprintf("compression backend (%s)", idList()))
		avgEB    = flag.Float64("avg-eb", 0, "average error-bound budget (0 = derive from spectrum target)")
		tol      = flag.Float64("tolerance", 0.01, "power-spectrum tolerance for the derived budget")
		useHalo  = flag.Bool("halo", false, "apply the halo-finder mass budget (density fields)")
		savePath = flag.String("save", "", "write the adaptive archive to this path")
		workers  = flag.Int("workers", 0, "worker goroutines (0 = all cores)")
		steps    = flag.Int("steps", 1, "stream this many evolving timesteps through the pipeline (1 = single-snapshot mode)")
		drift    = flag.Float64("drift", 0.25, "relative feature drift that triggers recalibration (streaming mode)")
		policy   = flag.String("policy", "drift", "recalibration policy: drift|once|every (streaming mode)")
	)
	flag.Parse()
	if *snapPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	ctx := context.Background()

	snap, err := adaptive.ReadSnapshotFile(*snapPath)
	if err != nil {
		log.Fatal(err)
	}
	f, ok := snap.Fields[*fieldName]
	if !ok {
		log.Fatalf("field %q not in snapshot (have %v)", *fieldName, keys(snap.Fields))
	}

	if *steps > 1 {
		runStream(ctx, *fieldName, f, *partition, *workers, *codecName, *steps, *drift, *policy, *avgEB, *savePath)
		return
	}

	sys, err := adaptive.New(
		adaptive.WithPartitionDim(*partition),
		adaptive.WithWorkers(*workers),
		adaptive.WithCodec(*codecName),
	)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("calibrating rate model on %s (%s) via %s...\n", *fieldName, f, sys.Codec())
	cal, err := sys.Calibrate(ctx, f)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  rate model: b = C·eb^%.3f, C_m = %.3f %+.3f·ln(mean), R²=%.3f\n",
		cal.Model.Exponent, cal.Model.Alpha, cal.Model.Beta, cal.Model.FitR2)

	budget := *avgEB
	if budget <= 0 {
		budget, err = adaptive.SpectrumBudget(f, adaptive.BudgetOptions{
			Tolerance: *tol, Workers: *workers,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  spectrum-derived budget: avg eb = %.4g\n", budget)
	}

	opts := adaptive.PlanOptions{AvgEB: budget}
	if *useHalo {
		p, err := adaptive.PartitionerForBrickDim(f.Nx, *partition)
		if err != nil {
			log.Fatal(err)
		}
		hb, err := adaptive.HaloBudget(f, adaptive.DefaultHaloConfig(), 0.01, 1.0, p)
		if err != nil {
			log.Fatal(err)
		}
		hc := hb.Constraint()
		opts.Halo = &hc
		fmt.Printf("  halo budget: %d halos, mass budget %.4g\n",
			hb.Catalog.Count(), hb.MassBudget)
	}

	plan, err := sys.Plan(ctx, f, cal, opts)
	if err != nil {
		log.Fatal(err)
	}
	var ebStats adaptive.Moments
	for _, eb := range plan.EBs {
		ebStats.Add(eb)
	}
	fmt.Printf("  plan: %d partitions, eb ∈ [%.4g, %.4g], mean %.4g\n",
		len(plan.EBs), ebStats.Min(), ebStats.Max(), ebStats.Mean())
	fmt.Printf("  predicted improvement over static: %+.1f%%\n",
		plan.Predicted.PredictedImprovement()*100)

	adaptiveCF, err := sys.CompressAdaptive(ctx, f, plan)
	if err != nil {
		log.Fatal(err)
	}
	static, err := sys.CompressStatic(ctx, f, budget)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("result:\n")
	fmt.Printf("  static  (eb=%.4g): ratio %.2f, %.3f bits/value\n",
		budget, static.Ratio(), static.BitRate())
	fmt.Printf("  adaptive          : ratio %.2f, %.3f bits/value (%+.1f%%)\n",
		adaptiveCF.Ratio(), adaptiveCF.BitRate(), (adaptiveCF.Ratio()/static.Ratio()-1)*100)

	if *savePath != "" {
		if err := os.WriteFile(*savePath, adaptiveCF.Bytes(), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  archive written to %s\n", *savePath)
	}
}

// runStream drives the streaming pipeline: the loaded field is evolved
// into a deterministic synthetic run and compressed step by step with
// calibration reuse.
func runStream(ctx context.Context, name string, f *adaptive.Field, partition, workers int, codecName string, steps int, drift float64, policyName string, avgEB float64, savePath string) {
	var pol adaptive.Policy
	switch policyName {
	case "drift":
		pol = adaptive.DriftTriggered
		// The library treats 0 as "use the default", so a literal
		// -drift 0 would silently become 0.25; catch it here instead.
		if drift <= 0 {
			log.Fatalf("-drift must be positive with -policy drift (use -policy every to recalibrate on every step)")
		}
	case "once":
		pol = adaptive.CalibrateOnce
	case "every":
		pol = adaptive.CalibrateEveryStep
	default:
		log.Fatalf("unknown policy %q (want drift|once|every)", policyName)
	}
	sysOpts := []adaptive.Option{
		adaptive.WithPartitionDim(partition),
		adaptive.WithWorkers(workers),
		adaptive.WithCodec(codecName),
		adaptive.WithPolicy(pol),
		adaptive.WithDriftThreshold(drift),
		adaptive.WithOnStep(func(st *adaptive.StepStats) {
			fs := st.Fields[0]
			marker := ""
			if fs.Recalibrated {
				marker = "  [recalibrated]"
			}
			fmt.Printf("  step %2d: ratio %6.2f  %6.3f bits/value  drift %5.1f%%%s\n",
				st.Step, st.Ratio(), st.BitRate(), fs.Drift*100, marker)
		}),
	}
	if avgEB > 0 {
		sysOpts = append(sysOpts, adaptive.WithFieldBudget(name, avgEB))
	}
	var out *os.File
	var writer *adaptive.StreamWriter
	if savePath != "" {
		var err error
		out, err = os.Create(savePath)
		if err != nil {
			log.Fatal(err)
		}
		if writer, err = adaptive.NewStreamWriter(out); err != nil {
			log.Fatal(err)
		}
		sysOpts = append(sysOpts, adaptive.WithStreamWriter(writer))
	}

	src, err := adaptive.NewSynthStreamFrom(map[string]*adaptive.Field{name: f}, adaptive.SynthStreamParams{
		Steps: steps, Fields: []string{name},
	})
	if err != nil {
		log.Fatal(err)
	}
	sys, err := adaptive.New(sysOpts...)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("streaming %d steps of %s (%s) via %s, policy %s (drift threshold %.0f%%):\n",
		steps, name, f, sys.Codec(), pol, drift*100)
	run, err := sys.Run(ctx, src)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("run summary:\n")
	fmt.Printf("  ratio %.2f, %.3f bits/value over %d steps\n", run.Ratio(), run.BitRate(), len(run.Steps))
	fmt.Printf("  %d (re)calibrations for %d field-steps (%.2f fits/step amortized)\n",
		run.Recalibrations, len(run.Steps), float64(run.Recalibrations)/float64(len(run.Steps)))
	fmt.Printf("  phase seconds: calibrate %.3f, plan %.3f, compress %.3f, write %.3f\n",
		run.CalibrateSeconds, run.PlanSeconds, run.CompressSeconds, run.WriteSeconds)
	fmt.Printf("  compress throughput: %.1f MB/s of field data (per-core work rate)\n",
		run.CompressMBPerSec())

	if writer != nil {
		if err := writer.Close(); err != nil {
			log.Fatal(err)
		}
		info, _ := out.Stat()
		if err := out.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  stream archive (%d steps, %d bytes) written to %s\n",
			steps, info.Size(), savePath)
	}
}

func keys(m map[string]*adaptive.Field) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

func idList() string {
	ids := codecs.IDs()
	names := make([]string, len(ids))
	for i, id := range ids {
		names[i] = string(id)
	}
	return strings.Join(names, "|")
}
