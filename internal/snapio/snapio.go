// Package snapio reads and writes snapshot containers: named 3-D float32
// fields in a simple binary format. It stands in for the HDF5 files the
// paper's Nyx datasets ship in — the payload is the same (named single
// precision 3-D arrays); only the container differs.
//
// Format (little endian):
//
//	offset size  field
//	0      8     magic "NYXSNAP1"
//	8      4     version (1)
//	12     8     redshift (float64)
//	20     4     field count F
//	then F field records:
//	  uint16 name length, name bytes (UTF-8)
//	  uint32 nx, ny, nz
//	  uint32 CRC32-C of the raw data
//	  nx·ny·nz float32 values
package snapio

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"sort"

	"repro/internal/grid"
)

const (
	magic   = "NYXSNAP1"
	version = 1
	// maxFieldCells guards against allocating absurd amounts of memory
	// when reading a corrupt header (2³¹ cells ≈ 8 GiB of float32).
	maxFieldCells = 1 << 31
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Snapshot is a named collection of fields plus the redshift it was
// generated at.
type Snapshot struct {
	Redshift float64
	Fields   map[string]*grid.Field3D
}

// Write serializes the snapshot to w. Fields are written in sorted name
// order so output is deterministic.
func Write(w io.Writer, s *Snapshot) error {
	if s == nil || len(s.Fields) == 0 {
		return errors.New("snapio: empty snapshot")
	}
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.WriteString(magic); err != nil {
		return err
	}
	var scratch [8]byte
	binary.LittleEndian.PutUint32(scratch[:4], version)
	if _, err := bw.Write(scratch[:4]); err != nil {
		return err
	}
	binary.LittleEndian.PutUint64(scratch[:8], math.Float64bits(s.Redshift))
	if _, err := bw.Write(scratch[:8]); err != nil {
		return err
	}
	binary.LittleEndian.PutUint32(scratch[:4], uint32(len(s.Fields)))
	if _, err := bw.Write(scratch[:4]); err != nil {
		return err
	}
	names := make([]string, 0, len(s.Fields))
	for name := range s.Fields {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		f := s.Fields[name]
		if f == nil || len(f.Data) != f.Nx*f.Ny*f.Nz {
			return fmt.Errorf("snapio: field %q malformed", name)
		}
		if len(name) > 65535 {
			return fmt.Errorf("snapio: field name too long (%d bytes)", len(name))
		}
		binary.LittleEndian.PutUint16(scratch[:2], uint16(len(name)))
		if _, err := bw.Write(scratch[:2]); err != nil {
			return err
		}
		if _, err := bw.WriteString(name); err != nil {
			return err
		}
		for _, dim := range []int{f.Nx, f.Ny, f.Nz} {
			binary.LittleEndian.PutUint32(scratch[:4], uint32(dim))
			if _, err := bw.Write(scratch[:4]); err != nil {
				return err
			}
		}
		raw := float32Bytes(f.Data)
		binary.LittleEndian.PutUint32(scratch[:4], crc32.Checksum(raw, crcTable))
		if _, err := bw.Write(scratch[:4]); err != nil {
			return err
		}
		if _, err := bw.Write(raw); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read parses a snapshot from r.
func Read(r io.Reader) (*Snapshot, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	head := make([]byte, len(magic))
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("snapio: reading magic: %w", err)
	}
	if string(head) != magic {
		return nil, fmt.Errorf("snapio: bad magic %q", head)
	}
	var b4 [4]byte
	var b8 [8]byte
	if _, err := io.ReadFull(br, b4[:]); err != nil {
		return nil, err
	}
	if v := binary.LittleEndian.Uint32(b4[:]); v != version {
		return nil, fmt.Errorf("snapio: unsupported version %d", v)
	}
	if _, err := io.ReadFull(br, b8[:]); err != nil {
		return nil, err
	}
	s := &Snapshot{
		Redshift: math.Float64frombits(binary.LittleEndian.Uint64(b8[:])),
		Fields:   make(map[string]*grid.Field3D),
	}
	if _, err := io.ReadFull(br, b4[:]); err != nil {
		return nil, err
	}
	count := binary.LittleEndian.Uint32(b4[:])
	if count == 0 || count > 4096 {
		return nil, fmt.Errorf("snapio: implausible field count %d", count)
	}
	for i := uint32(0); i < count; i++ {
		var b2 [2]byte
		if _, err := io.ReadFull(br, b2[:]); err != nil {
			return nil, fmt.Errorf("snapio: field %d name length: %w", i, err)
		}
		nameLen := binary.LittleEndian.Uint16(b2[:])
		nameBytes := make([]byte, nameLen)
		if _, err := io.ReadFull(br, nameBytes); err != nil {
			return nil, fmt.Errorf("snapio: field %d name: %w", i, err)
		}
		name := string(nameBytes)
		var dims [3]int
		for d := 0; d < 3; d++ {
			if _, err := io.ReadFull(br, b4[:]); err != nil {
				return nil, fmt.Errorf("snapio: field %q dims: %w", name, err)
			}
			dims[d] = int(binary.LittleEndian.Uint32(b4[:]))
			if dims[d] <= 0 {
				return nil, fmt.Errorf("snapio: field %q has dimension %d", name, dims[d])
			}
		}
		cells := dims[0] * dims[1] * dims[2]
		if cells <= 0 || cells > maxFieldCells {
			return nil, fmt.Errorf("snapio: field %q implausibly large (%d cells)", name, cells)
		}
		if _, err := io.ReadFull(br, b4[:]); err != nil {
			return nil, err
		}
		wantCRC := binary.LittleEndian.Uint32(b4[:])
		raw := make([]byte, cells*4)
		if _, err := io.ReadFull(br, raw); err != nil {
			return nil, fmt.Errorf("snapio: field %q data: %w", name, err)
		}
		if crc := crc32.Checksum(raw, crcTable); crc != wantCRC {
			return nil, fmt.Errorf("snapio: field %q CRC mismatch", name)
		}
		if _, dup := s.Fields[name]; dup {
			return nil, fmt.Errorf("snapio: duplicate field %q", name)
		}
		s.Fields[name] = &grid.Field3D{
			Nx: dims[0], Ny: dims[1], Nz: dims[2],
			Data: bytesFloat32(raw),
		}
	}
	return s, nil
}

// WriteFile writes a snapshot to a file path.
func WriteFile(path string, s *Snapshot) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Write(f, s); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadFile reads a snapshot from a file path.
func ReadFile(path string) (*Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}

func float32Bytes(xs []float32) []byte {
	out := make([]byte, len(xs)*4)
	for i, x := range xs {
		binary.LittleEndian.PutUint32(out[i*4:], math.Float32bits(x))
	}
	return out
}

func bytesFloat32(raw []byte) []float32 {
	out := make([]float32, len(raw)/4)
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(raw[i*4:]))
	}
	return out
}
