package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/internal/apierr"
	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/nyx"
	"repro/internal/pipeline"
)

// testField generates a small Nyx-like baryon density field.
func testField(tb testing.TB, n int) *grid.Field3D {
	tb.Helper()
	snap, err := nyx.Generate(nyx.Params{N: n, Seed: 7})
	if err != nil {
		tb.Fatal(err)
	}
	f, err := snap.Field(nyx.FieldBaryonDensity)
	if err != nil {
		tb.Fatal(err)
	}
	return f
}

func testDriver(tb testing.TB, engCfg core.Config) *pipeline.Driver {
	tb.Helper()
	if engCfg.PartitionDim == 0 {
		engCfg.PartitionDim = 8
	}
	drv, err := pipeline.New(engCfg, pipeline.Options{})
	if err != nil {
		tb.Fatal(err)
	}
	return drv
}

// testServer spins up a Server plus an httptest front end and tears both
// down with the test.
func testServer(tb testing.TB, engCfg core.Config, cal core.CalibrationOptions, cfg Config) (*Server, *httptest.Server) {
	tb.Helper()
	s, err := New(testDriver(tb, engCfg), cal, cfg)
	if err != nil {
		tb.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	tb.Cleanup(func() {
		// Service first: Close drains parked jobs so their handlers
		// return; ts.Close blocks until every outstanding request ends.
		_ = s.Close()
		ts.Close()
	})
	return s, ts
}

func post(tb testing.TB, url string, body []byte, hdr map[string]string) (*http.Response, []byte) {
	tb.Helper()
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		tb.Fatal(err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		tb.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		tb.Fatal(err)
	}
	return resp, out
}

func TestWireRoundTrip(t *testing.T) {
	f := testField(t, 16)
	g, err := DecodeField(EncodeField(f), 1<<24)
	if err != nil {
		t.Fatal(err)
	}
	if !f.SameShape(g) {
		t.Fatalf("shape changed: %v vs %v", f, g)
	}
	for i := range f.Data {
		if f.Data[i] != g.Data[i] {
			t.Fatalf("cell %d: %g != %g", i, f.Data[i], g.Data[i])
		}
	}
}

func TestWireRejectsHostilePayloads(t *testing.T) {
	good := EncodeField(testField(t, 16))
	cases := map[string][]byte{
		"empty":          nil,
		"short header":   good[:8],
		"truncated body": good[:len(good)-4],
		"trailing bytes": append(append([]byte(nil), good...), 0),
		"zero dim":       append(make([]byte, 12), good[12:]...),
	}
	for name, data := range cases {
		if _, err := DecodeField(data, 1<<24); !errors.Is(err, apierr.ErrBadConfig) {
			t.Errorf("%s: err = %v, want ErrBadConfig", name, err)
		}
	}
	if _, err := DecodeField(good, 16); !errors.Is(err, apierr.ErrBadConfig) {
		t.Errorf("over cell limit: err = %v, want ErrBadConfig", err)
	}
}

func TestCompressDecompressRoundTrip(t *testing.T) {
	_, ts := testServer(t, core.Config{}, core.CalibrationOptions{}, Config{})
	f := testField(t, 16)

	resp, archive := post(t, ts.URL+"/v1/compress/density", EncodeField(f), map[string]string{"X-Tenant": "t0"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("compress: HTTP %d: %s", resp.StatusCode, archive)
	}
	if got := resp.Header.Get("X-Rate-Level"); got != "0" {
		t.Errorf("X-Rate-Level = %q, want 0 (adaptation off)", got)
	}
	if br, err := strconv.ParseFloat(resp.Header.Get("X-Bit-Rate"), 64); err != nil || br <= 0 || br >= 32 {
		t.Errorf("X-Bit-Rate = %q, want a positive compressed rate", resp.Header.Get("X-Bit-Rate"))
	}
	if len(archive) >= 4*f.Len() {
		t.Errorf("archive %d bytes did not compress %d raw bytes", len(archive), 4*f.Len())
	}

	resp, raw := post(t, ts.URL+"/v1/decompress", archive, map[string]string{"X-Tenant": "t0"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("decompress: HTTP %d: %s", resp.StatusCode, raw)
	}
	g, err := DecodeField(raw, 1<<24)
	if err != nil {
		t.Fatal(err)
	}
	if !f.SameShape(g) {
		t.Fatalf("round trip changed shape: %v vs %v", f, g)
	}
	var worst float64
	for i := range f.Data {
		if d := math.Abs(float64(f.Data[i]) - float64(g.Data[i])); d > worst {
			worst = d
		}
	}
	// The default budget is 0.1× the mean |value|; lossy, but errors must
	// stay within a small multiple of it (the optimizer's clamp box).
	if budget := 0.1 * f.Mean(); worst > 8*budget {
		t.Errorf("worst-case error %g vs budget %g", worst, budget)
	}
}

func TestTypedErrorResponses(t *testing.T) {
	_, ts := testServer(t, core.Config{}, core.CalibrationOptions{}, Config{MaxBodyBytes: 1 << 20})
	good := EncodeField(testField(t, 16))

	cases := []struct {
		name     string
		url      string
		body     []byte
		status   int
		code     string
		sentinel error
	}{
		{"garbage archive", ts.URL + "/v1/decompress", []byte("not an archive at all"), 422, "corrupt_archive", apierr.ErrCorruptArchive},
		{"bad field payload", ts.URL + "/v1/compress/x", []byte{1, 2, 3}, 400, "bad_config", apierr.ErrBadConfig},
		{"bad timeout", ts.URL + "/v1/compress/x?timeout=yesterday", good, 400, "bad_config", apierr.ErrBadConfig},
		{"deadline exceeded", ts.URL + "/v1/compress/x?timeout=1ns", good, 504, "deadline_exceeded", context.DeadlineExceeded},
		{"body too large", ts.URL + "/v1/compress/x", make([]byte, 2<<20), 413, "body_too_large", nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := post(t, tc.url, tc.body, nil)
			if resp.StatusCode != tc.status {
				t.Fatalf("HTTP %d, want %d (%s)", resp.StatusCode, tc.status, body)
			}
			var eb errorBody
			if err := json.Unmarshal(body, &eb); err != nil {
				t.Fatalf("error body is not the typed envelope: %v (%s)", err, body)
			}
			if eb.Error.Code != tc.code {
				t.Errorf("code %q, want %q", eb.Error.Code, tc.code)
			}
			if tc.sentinel != nil {
				if err := ErrorFromResponse(resp.StatusCode, body); !errors.Is(err, tc.sentinel) {
					t.Errorf("ErrorFromResponse = %v, does not match %v", err, tc.sentinel)
				}
			}
		})
	}
}

func TestOverloadReturnsTyped429(t *testing.T) {
	// Token-starve the only tenant (burst below one job's cost) so every
	// admitted job parks in the queue, then overflow the queue.
	s, ts := testServer(t, core.Config{}, core.CalibrationOptions{}, Config{
		QueueDepth: 2,
		TokenRate:  1e-6,
		TokenBurst: 1,
	})
	payload := EncodeField(testField(t, 16))

	const clients = 6
	type outcome struct {
		status int
		code   string
		retry  string
	}
	results := make(chan outcome, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, body := post(t, ts.URL+"/v1/compress/f", payload, nil)
			var eb errorBody
			_ = json.Unmarshal(body, &eb)
			results <- outcome{resp.StatusCode, eb.Error.Code, resp.Header.Get("Retry-After")}
		}()
	}

	// Give the slow clients time to fill the queue, then shut down: the
	// two parked jobs must be failed, not leaked.
	time.Sleep(200 * time.Millisecond)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	close(results)

	var rejected int
	for r := range results {
		switch r.status {
		case http.StatusTooManyRequests:
			rejected++
			if r.code != "overloaded" {
				t.Errorf("429 code %q, want overloaded", r.code)
			}
			if r.retry == "" {
				t.Error("429 without Retry-After")
			}
		case http.StatusOK:
			t.Error("a token-starved request completed")
		default:
			// Parked jobs drained at shutdown: also the typed overload.
			if r.code != "overloaded" {
				t.Errorf("HTTP %d code %q, want overloaded", r.status, r.code)
			}
		}
	}
	if rejected < clients-2 {
		t.Errorf("%d rejects for %d clients over a depth-2 queue", rejected, clients)
	}
	if st := s.Stats(); st.Rejected == 0 {
		t.Error("stats counted no rejections")
	}
}

// drrServer builds a server without a running dispatcher, so collectBatch
// can be stepped by hand under a fake clock.
func drrServer(t *testing.T, clk *fakeClock, cfg Config) *Server {
	t.Helper()
	s, err := newServer(testDriver(t, core.Config{}), core.CalibrationOptions{}, cfg, clk.now)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func enqueue(t *testing.T, s *Server, tenant string, cost int64, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		j := &job{
			kind: jobCompress, tenant: tenant, field: fmt.Sprintf("f%d", i),
			cost: cost, ctx: context.Background(), queued: s.now(),
			done: make(chan jobResult, 1),
		}
		if err := s.admit(j); err != nil {
			t.Fatal(err)
		}
	}
}

func tenantsOf(batch []*job) map[string]int {
	m := make(map[string]int)
	for _, j := range batch {
		m[j.tenant]++
	}
	return m
}

func TestDeficitRoundRobinIsFair(t *testing.T) {
	clk := newFakeClock()
	s := drrServer(t, clk, Config{QueueDepth: 64, Quantum: 512, MaxBatchFields: 4, MaxBatchCells: 1 << 30})

	// A hog with a deep backlog and a mouse with two requests, equal cost:
	// the mouse must be served alongside the hog, not behind its backlog.
	enqueue(t, s, "hog", 512, 10)
	enqueue(t, s, "mouse", 512, 2)

	batch1, ok := s.collectBatch()
	if !ok {
		t.Fatal("server closed")
	}
	if got := tenantsOf(batch1); got["mouse"] != 1 || got["hog"] == 0 {
		t.Fatalf("first batch %v: both tenants must progress", got)
	}
	batch2, _ := s.collectBatch()
	if got := tenantsOf(batch2); got["mouse"] != 1 {
		t.Fatalf("second batch %v: mouse's last job still waiting behind the hog", got)
	}
}

func TestDeficitRoundRobinSharesCellsNotRequests(t *testing.T) {
	clk := newFakeClock()
	// Quantum = one big job. The small-field tenant gets the same cells
	// per round as the big-field tenant — i.e. many of its jobs per round,
	// not one-for-one with the big jobs.
	s := drrServer(t, clk, Config{QueueDepth: 64, Quantum: 4096, MaxBatchFields: 32, MaxBatchCells: 1 << 30})
	enqueue(t, s, "big", 4096, 4)
	enqueue(t, s, "small", 256, 32)

	batch, _ := s.collectBatch()
	got := tenantsOf(batch)
	if got["big"] != 1 {
		t.Fatalf("big tenant got %d jobs of quantum-size cost, want 1", got["big"])
	}
	if got["small"] != 4096/256 {
		t.Fatalf("small tenant got %d jobs, want %d (equal cells)", got["small"], 4096/256)
	}
}

func TestTokenBucketMetersTenants(t *testing.T) {
	clk := newFakeClock()
	s := drrServer(t, clk, Config{
		QueueDepth: 64, Quantum: 1 << 20, MaxBatchFields: 16, MaxBatchCells: 1 << 30,
		TokenRate: 512, TokenBurst: 512,
	})
	enqueue(t, s, "metered", 512, 3)

	if batch, _ := s.collectBatch(); len(batch) != 1 {
		t.Fatalf("burst allows exactly one job, got %d", len(batch))
	}
	if batch, _ := s.collectBatch(); len(batch) != 0 {
		t.Fatalf("tokens spent but %d jobs dispatched", len(batch))
	}
	clk.advance(time.Second) // refills one job's worth
	if batch, _ := s.collectBatch(); len(batch) != 1 {
		t.Fatal("refill did not release the next job")
	}
}

func TestQueuedJobDroppedOnCancel(t *testing.T) {
	clk := newFakeClock()
	s := drrServer(t, clk, Config{QueueDepth: 64, Quantum: 1 << 20, MaxBatchFields: 16, MaxBatchCells: 1 << 30})
	ctx, cancel := context.WithCancel(context.Background())
	j := &job{
		kind: jobCompress, tenant: "t", field: "f", cost: 64,
		ctx: ctx, queued: s.now(), done: make(chan jobResult, 1),
	}
	if err := s.admit(j); err != nil {
		t.Fatal(err)
	}
	cancel()
	batch, _ := s.collectBatch()
	if len(batch) != 0 {
		t.Fatalf("canceled job was dispatched")
	}
	select {
	case res := <-j.done:
		if !errors.Is(res.err, context.Canceled) {
			t.Fatalf("dropped job err = %v", res.err)
		}
	default:
		t.Fatal("dropped job never answered")
	}
	if s.depth() != 0 {
		t.Fatalf("queue depth %d after drop", s.depth())
	}
}

func TestCalibrateEndpointReportsDowngrade(t *testing.T) {
	// PWREL engine + a ModelScan request: the scan models ABS errors only,
	// so the service must calibrate by probe ladder AND say so.
	_, ts := testServer(t,
		core.Config{Mode: codec.PWREL},
		core.CalibrationOptions{Mode: core.ModelScan, EBs: []float64{1e-3, 3e-3, 1e-2, 3e-2, 0.1}},
		Config{})

	resp, body := post(t, ts.URL+"/v1/calibrate/density", EncodeField(testField(t, 16)), nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("calibrate: HTTP %d: %s", resp.StatusCode, body)
	}
	var view calibrationView
	if err := json.Unmarshal(body, &view); err != nil {
		t.Fatal(err)
	}
	if view.Mode != "probe-ladder" {
		t.Errorf("mode %q, want probe-ladder", view.Mode)
	}
	if !view.Downgraded || view.DowngradeReason == "" {
		t.Errorf("downgrade not disclosed: %+v", view)
	}
	if view.Samples == 0 || len(view.EBs) == 0 {
		t.Errorf("calibration detail missing: %+v", view)
	}
}

func TestLoadAdaptationStepsRateUnderPressure(t *testing.T) {
	// An unmeetable SLO: every completed request counts as pressure, so
	// the controller must walk the level up; the response headers and
	// stats must both show it.
	s, ts := testServer(t, core.Config{}, core.CalibrationOptions{}, Config{
		Adapt: AdaptConfig{
			Enabled:    true,
			MaxLevel:   2,
			EBStep:     4,
			LatencySLO: time.Nanosecond,
			HighQueue:  1 << 30, // latency-driven only
			Holdoff:    time.Nanosecond,
		},
	})
	payload := EncodeField(testField(t, 16))

	var sawStepped bool
	var baseline, stepped int
	for i := 0; i < 3*minAdaptSamples; i++ {
		resp, body := post(t, ts.URL+"/v1/compress/density", payload, nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("HTTP %d: %s", resp.StatusCode, body)
		}
		level, err := strconv.Atoi(resp.Header.Get("X-Rate-Level"))
		if err != nil {
			t.Fatalf("bad X-Rate-Level %q", resp.Header.Get("X-Rate-Level"))
		}
		switch level {
		case 0:
			baseline = len(body)
		default:
			sawStepped = true
			stepped = len(body)
		}
	}
	if !sawStepped {
		t.Fatal("controller never stepped the rate under sustained SLO breach")
	}
	if st := s.Stats(); st.StepUps == 0 || st.Level == 0 {
		t.Errorf("stats do not show the stepping: %+v", st)
	}
	if baseline > 0 && stepped > 0 && stepped >= baseline {
		t.Errorf("stepped-level archive (%dB) not smaller than full quality (%dB)", stepped, baseline)
	}
}

func TestConcurrentCompressAndCancel(t *testing.T) {
	// The -race soak: many tenants compressing concurrently, a slice of
	// them abandoning mid-flight, while stats polls — every request must
	// get exactly one well-formed answer and shutdown must be clean.
	s, ts := testServer(t, core.Config{}, core.CalibrationOptions{}, Config{
		QueueDepth: 128, MaxBatchFields: 8, MaxInflightBatches: 2,
	})
	payload := EncodeField(testField(t, 16))

	const workers = 16
	const perWorker = 4
	var wg sync.WaitGroup
	errs := make(chan error, workers*perWorker)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tenant := fmt.Sprintf("tenant-%d", w%5)
			for i := 0; i < perWorker; i++ {
				url := fmt.Sprintf("%s/v1/compress/f%d", ts.URL, i)
				if w%4 == 0 {
					url += "?timeout=1ms" // abandons mid-queue or mid-flight
				}
				resp, body := post(t, url, payload, map[string]string{"X-Tenant": tenant})
				switch resp.StatusCode {
				case http.StatusOK:
					if _, err := core.ParseCompressedField(body); err != nil {
						errs <- fmt.Errorf("200 with unparseable archive: %w", err)
					}
				case http.StatusGatewayTimeout, http.StatusTooManyRequests, statusCanceled:
					var eb errorBody
					if json.Unmarshal(body, &eb) != nil || eb.Error.Code == "" {
						errs <- fmt.Errorf("HTTP %d without typed body: %s", resp.StatusCode, body)
					}
				default:
					errs <- fmt.Errorf("unexpected HTTP %d: %s", resp.StatusCode, body)
				}
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-done:
				return
			default:
				_ = s.Stats()
				time.Sleep(time.Millisecond)
			}
		}
	}()
	wg.Wait()
	close(done)
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Served == 0 {
		t.Error("soak served nothing")
	}
	if st.Queued != 0 {
		t.Errorf("%d jobs leaked in queues after close", st.Queued)
	}
}

func TestH2CSmoke(t *testing.T) {
	drv := testDriver(t, core.Config{})
	s, err := New(drv, core.CalibrationOptions{}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hs := NewHTTPServer(ln.Addr().String(), s.Handler())
	go func() { _ = hs.Serve(ln) }()
	defer hs.Close()

	client := &http.Client{Transport: NewH2CTransport()}
	f := testField(t, 16)
	req, _ := http.NewRequest(http.MethodPost, "http://"+ln.Addr().String()+"/v1/compress/density",
		bytes.NewReader(EncodeField(f)))
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.ProtoMajor != 2 {
		t.Fatalf("served over %s, want HTTP/2 (h2c)", resp.Proto)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("HTTP %d over h2c", resp.StatusCode)
	}
	if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		t.Fatal(err)
	}
}

func TestStatsEndpoint(t *testing.T) {
	_, ts := testServer(t, core.Config{}, core.CalibrationOptions{}, Config{})
	post(t, ts.URL+"/v1/compress/density", EncodeField(testField(t, 16)), nil)

	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Served != 1 || st.Accepted != 1 || st.Tenants != 1 || st.BudgetScale != 1 {
		t.Errorf("stats after one request: %+v", st)
	}
	if resp, err := http.Get(ts.URL + "/healthz"); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v %v", resp, err)
	}
}

func TestConfigValidation(t *testing.T) {
	drv := testDriver(t, core.Config{})
	if _, err := New(nil, core.CalibrationOptions{}, Config{}); !errors.Is(err, apierr.ErrBadConfig) {
		t.Errorf("nil driver: %v", err)
	}
	if _, err := New(drv, core.CalibrationOptions{}, Config{QueueDepth: -1}); !errors.Is(err, apierr.ErrBadConfig) {
		t.Errorf("negative QueueDepth: %v", err)
	}
	if _, err := New(drv, core.CalibrationOptions{}, Config{TokenRate: -3}); !errors.Is(err, apierr.ErrBadConfig) {
		t.Errorf("negative TokenRate: %v", err)
	}
}
