package zfp

import (
	"bytes"
	"errors"
	"math"
	"testing"

	"repro/internal/apierr"
	"repro/internal/grid"
	"repro/internal/parallel"
	"repro/internal/stats"
)

// indexRates spans the ladder and bisection probes the codec adapter
// issues, plus awkward fractional rates.
var indexRates = []float64{0.5, 1, 2, 2.75, 4, 8, 12.25, 16, 31, 32}

// TestIndexedTruncateMatchesDirectCompress is the single-pass rate search's
// core invariant: splicing block prefixes out of the max-rate stream must
// be byte-identical to compressing at the target rate directly.
func TestIndexedTruncateMatchesDirectCompress(t *testing.T) {
	fields := map[string]*grid.Field3D{
		"smooth": smoothField(16, 61),
		"ragged": func() *grid.Field3D {
			r := stats.NewRNG(62)
			f := grid.NewField3D(10, 7, 5)
			for i := range f.Data {
				f.Data[i] = float32(r.NormFloat64() * 1e3)
			}
			return f
		}(),
		"zero":  grid.NewCube(8),
		"large": smoothField(40, 63), // chunked path
	}
	restore := parallel.SetLimit(3)
	defer restore()
	var s Scratch
	for name, f := range fields {
		ix, err := CompressIndexed(f, Options{Rate: 32}, &s)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, rate := range indexRates {
			direct, err := Compress(f, Options{Rate: rate})
			if err != nil {
				t.Fatalf("%s rate %v: %v", name, rate, err)
			}
			spliced, err := ix.TruncateToRate(rate, &s)
			if err != nil {
				t.Fatalf("%s rate %v: truncate: %v", name, rate, err)
			}
			if !bytes.Equal(direct.payload, spliced.payload) {
				t.Errorf("%s rate %v: spliced stream differs from direct compression", name, rate)
			}
			if spliced.Rate != rate || spliced.Nx != f.Nx {
				t.Errorf("%s rate %v: header fields wrong", name, rate)
			}
			// Size prediction must be exact, not an estimate.
			predicted, err := ix.PredictSize(rate)
			if err != nil {
				t.Fatal(err)
			}
			if predicted != direct.CompressedSize() {
				t.Errorf("%s rate %v: predicted %d bytes, direct is %d",
					name, rate, predicted, direct.CompressedSize())
			}
		}
	}
}

// TestIndexedDecompressAtRateMatchesRecompression pins the probe decode:
// reconstructing from the truncated index must equal the round trip through
// an actual recompression at that rate — the equivalence that lets the
// error-bound search measure probes without recompressing.
func TestIndexedDecompressAtRateMatchesRecompression(t *testing.T) {
	f := smoothField(16, 64)
	ix, err := CompressIndexed(f, Options{Rate: 32}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, rate := range indexRates {
		c, err := Compress(f, Options{Rate: rate})
		if err != nil {
			t.Fatal(err)
		}
		want, err := Decompress(c)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ix.DecompressAtRate(rate)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want.Data {
			if want.Data[i] != got.Data[i] {
				t.Fatalf("rate %v: probe reconstruction diverges at cell %d: %v vs %v",
					rate, i, want.Data[i], got.Data[i])
			}
		}
	}
}

func TestIndexedRejectsHigherRate(t *testing.T) {
	f := smoothField(8, 65)
	ix, err := CompressIndexed(f, Options{Rate: 8}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ix.TruncateToRate(16, nil); err == nil {
		t.Error("truncating above the index rate accepted")
	}
	if _, err := ix.PredictSize(16); err == nil {
		t.Error("predicting above the index rate accepted")
	}
	if err := ix.DecompressAtRateInto(grid.NewCube(8), 16, nil); err == nil {
		t.Error("decoding above the index rate accepted")
	}
	if err := ix.DecompressAtRateInto(grid.NewCube(4), 4, nil); err == nil {
		t.Error("mismatched output shape accepted")
	}
	if _, err := ix.TruncateToRate(math.NaN(), nil); err == nil {
		t.Error("NaN rate accepted")
	}
}

// TestIndexedRateEdgesAreTypedBadConfig pins the error taxonomy of the
// derived-rate guards: every hostile rate — above the indexed maximum,
// NaN, negative, zero, sub-minimum, infinite — must come back wrapped in
// apierr.ErrBadConfig from all three entry points, never a silent
// mis-slice or an untyped error.
func TestIndexedRateEdgesAreTypedBadConfig(t *testing.T) {
	f := smoothField(8, 67)
	ix, err := CompressIndexed(f, Options{Rate: 8}, nil)
	if err != nil {
		t.Fatal(err)
	}
	out := grid.NewCube(8)
	for _, rate := range []float64{8.0001, 16, 32, math.NaN(), -1, -math.SmallestNonzeroFloat64, 0, 0.25, math.Inf(1), math.Inf(-1)} {
		if _, err := ix.TruncateToRate(rate, nil); !errors.Is(err, apierr.ErrBadConfig) {
			t.Errorf("TruncateToRate(%v): got %v, want ErrBadConfig", rate, err)
		}
		if _, err := ix.PredictSize(rate); !errors.Is(err, apierr.ErrBadConfig) {
			t.Errorf("PredictSize(%v): got %v, want ErrBadConfig", rate, err)
		}
		if err := ix.DecompressAtRateInto(out, rate, nil); !errors.Is(err, apierr.ErrBadConfig) {
			t.Errorf("DecompressAtRateInto(%v): got %v, want ErrBadConfig", rate, err)
		}
	}
	// The indexed maximum itself is a valid request, not an edge.
	if _, err := ix.TruncateToRate(8, nil); err != nil {
		t.Errorf("TruncateToRate at the indexed max: %v", err)
	}
}

// TestReindexMatchesCompressIndexed proves the scan-rebuild path: parsing
// a serialized max-rate stream and rescanning its block boundaries must
// recover exactly the accounting CompressIndexed recorded — the recovery
// path an archive server takes when its sidecar index is missing.
func TestReindexMatchesCompressIndexed(t *testing.T) {
	for name, f := range map[string]*grid.Field3D{
		"smooth": smoothField(16, 68),
		"zero":   grid.NewCube(8),
		"ragged": smoothField(10, 69),
	} {
		ix, err := CompressIndexed(f, Options{Rate: 32}, nil)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		parsed, err := Parse(ix.C.Bytes())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		rix, err := Reindex(parsed)
		if err != nil {
			t.Fatalf("%s: reindex: %v", name, err)
		}
		if len(rix.starts) != len(ix.starts) {
			t.Fatalf("%s: reindex has %d offsets, compression recorded %d", name, len(rix.starts), len(ix.starts))
		}
		for b := range ix.starts {
			if rix.starts[b] != ix.starts[b] {
				t.Fatalf("%s: offset %d diverges: %d vs %d", name, b, rix.starts[b], ix.starts[b])
			}
		}
	}
}

// TestNewIndexedValidatesSidecar pins the sidecar-load guard: a persisted
// offset table that does not fit the stream must come back as
// ErrCorruptArchive, and a faithful one must splice identically to the
// compression-time index.
func TestNewIndexedValidatesSidecar(t *testing.T) {
	f := smoothField(12, 70)
	ix, err := CompressIndexed(f, Options{Rate: 16}, nil)
	if err != nil {
		t.Fatal(err)
	}
	good := ix.Starts()
	rebound, err := NewIndexed(ix.C, append([]int(nil), good...))
	if err != nil {
		t.Fatal(err)
	}
	want, err := ix.TruncateToRate(4, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := rebound.TruncateToRate(4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want.payload, got.payload) {
		t.Error("rebound index splices a different stream")
	}
	for name, bad := range map[string][]int{
		"short":        good[:len(good)-1],
		"long":         append(append([]int(nil), good...), 7),
		"nonzero head": func() []int { b := append([]int(nil), good...); b[0] = 1; return b }(),
		"non-monotone": func() []int { b := append([]int(nil), good...); b[1], b[2] = b[2]+1, b[1]; return b }(),
		"overlong tail": func() []int {
			b := append([]int(nil), good...)
			b[len(b)-1] = len(ix.C.payload)*8 + 1
			return b
		}(),
	} {
		if _, err := NewIndexed(ix.C, bad); !errors.Is(err, apierr.ErrCorruptArchive) {
			t.Errorf("%s sidecar: got %v, want ErrCorruptArchive", name, err)
		}
	}
}

// TestIndexedAccountingConsistent sanity-checks the offset table itself:
// monotone, ending at the stream's bit length, with every block at least
// its zero flag wide.
func TestIndexedAccountingConsistent(t *testing.T) {
	f := smoothField(12, 66)
	ix, err := CompressIndexed(f, Options{Rate: 6}, nil)
	if err != nil {
		t.Fatal(err)
	}
	l := layoutOf(f.Nx, f.Ny, f.Nz)
	if len(ix.starts) != l.blocks()+1 {
		t.Fatalf("%d offsets for %d blocks", len(ix.starts), l.blocks())
	}
	budget := budgetOf(ix.C.Rate)
	for b := 0; b < l.blocks(); b++ {
		width := ix.starts[b+1] - ix.starts[b]
		if width < 1 || (width > 1 && width > blockHeaderBits+budget) {
			t.Fatalf("block %d spans %d bits (budget %d)", b, width, budget)
		}
	}
	total := ix.starts[l.blocks()]
	if got := len(ix.C.payload); got != (total+7)/8 {
		t.Fatalf("payload %d bytes for %d recorded bits", got, total)
	}
}
