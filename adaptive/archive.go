package adaptive

import (
	"repro/internal/archiveserve"
	"repro/internal/client"
)

// ArchiveServer is the progressive multi-resolution archive server: a
// read-only HTTP service over v3 archive streams that stores each
// snapshot once at maximum rate and synthesizes any lower-rate
// representation by bit-prefix splicing (never recompression), with a
// byte-budgeted LRU over synthesized representations, strong ETags
// derived from the stream footer checksum, and Range support. Expose its
// Handler with NewH2CServer.
type ArchiveServer = archiveserve.Server

// ArchiveServerConfig tunes an ArchiveServer; zero values select sane
// defaults (256 MiB cache, the default codec registry).
type ArchiveServerConfig = archiveserve.Config

// ArchiveServerStats is the counter document the archive server's
// /v1/stats endpoint serves: per-tier request rows plus the synthesis
// counters that prove cache-hot fetches do zero compression work.
type ArchiveServerStats = archiveserve.Stats

// ArchiveTierStats is one quality tier's counter row.
type ArchiveTierStats = archiveserve.TierStats

// ArchiveCacheStats is the representation cache's counter snapshot.
type ArchiveCacheStats = archiveserve.CacheStats

// ArchiveManifest describes one stream: steps, fields, codecs, stored
// rates, and exact predicted sizes at the standard rate rungs.
type ArchiveManifest = archiveserve.Manifest

// ArchiveFieldManifest describes one field of a stream's manifest.
type ArchiveFieldManifest = archiveserve.FieldManifest

// ArchiveRungSize is one rate rung's exact serialized size.
type ArchiveRungSize = archiveserve.RungSize

// ArchiveWriter produces a v3 archive stream plus its sidecar splice
// index in one pass (ZFP partitions keep their per-block bit accounting
// from compression, so the server never has to rescan them).
type ArchiveWriter = archiveserve.Writer

// ArchiveWriterOptions configures NewArchiveWriter.
type ArchiveWriterOptions = archiveserve.WriterOptions

// ArchiveFieldSpec is one field of a step headed into an ArchiveWriter.
type ArchiveFieldSpec = archiveserve.FieldSpec

// ArchiveFetchOptions selects the representation Client.FetchField asks
// for: a spliced rate, an SZ preview rung, or a revalidation ETag.
type ArchiveFetchOptions = client.FetchOptions

// ArchiveFetchResult is one Client.FetchField read.
type ArchiveFetchResult = client.FetchResult

// ArchiveStreamSuffix names streams in a store directory (<name>.acs);
// ArchiveSidecarSuffix is appended to a stream path for its splice index.
const (
	ArchiveStreamSuffix  = archiveserve.StreamSuffix
	ArchiveSidecarSuffix = archiveserve.SidecarSuffix
)

// NewArchiveServer opens dir as a read-only archive store and builds the
// serving layer over it. Mount Handler() with NewH2CServer.
func NewArchiveServer(cfg ArchiveServerConfig) (*ArchiveServer, error) {
	return archiveserve.New(cfg)
}

// NewArchiveWriter creates (truncating) an archive stream at path and its
// sidecar index at path+ArchiveSidecarSuffix on Close.
func NewArchiveWriter(path string, opt ArchiveWriterOptions) (*ArchiveWriter, error) {
	return archiveserve.NewWriter(path, opt)
}

// SpliceArchiveField derives the rate-R form of a stored v2 ZFP field
// archive locally — the same bit-prefix splice the archive server runs
// for ?rate=R, so served bytes and this function's output are identical.
func SpliceArchiveField(archive []byte, rate float64) ([]byte, error) {
	return archiveserve.SpliceArchive(archive, rate)
}
