// In situ pipeline example: a simulated multi-rank cosmology run dumping
// several snapshots. Each dump runs the paper's in situ protocol — rank-
// local feature extraction, one Allreduce for the global mean, rank-local
// error-bound optimization, compression — and the example reports per-phase
// timings, the overhead ratio, and ratio/quality per snapshot.
//
// Run with: go run ./examples/insitu
package main

import (
	"context"
	"fmt"
	"log"

	"repro/adaptive"
)

func main() {
	log.SetFlags(0)
	ctx := context.Background()

	const (
		gridN  = 64
		bricks = 16
		ranks  = 8
	)
	sys, err := adaptive.New(adaptive.WithPartitionDim(bricks))
	if err != nil {
		log.Fatal(err)
	}

	// Calibrate once on the first snapshot — the paper's offline step.
	first, err := adaptive.GenerateSnapshot(adaptive.SynthParams{N: gridN, Seed: 3, Redshift: 54})
	if err != nil {
		log.Fatal(err)
	}
	refField, err := first.Field(adaptive.FieldBaryonDensity)
	if err != nil {
		log.Fatal(err)
	}
	cal, err := sys.Calibrate(ctx, refField)
	if err != nil {
		log.Fatal(err)
	}
	avgEB, err := adaptive.SpectrumBudget(refField, adaptive.BudgetOptions{})
	if err != nil {
		log.Fatal(err)
	}
	hcfg := adaptive.DefaultHaloConfig()
	fmt.Printf("calibrated on z=54: exponent %.3f, budget avg eb %.4g\n\n",
		cal.Model.Exponent, avgEB)

	// The "simulation" evolves and dumps snapshots; each dump compresses
	// in situ across the simulated MPI ranks.
	fmt.Printf("%-9s %-7s %-9s %-11s %-11s %-10s\n",
		"redshift", "ranks", "ratio", "compress_s", "overhead", "collectives")
	for _, z := range []float64{54, 51, 48, 45, 42} {
		snap, err := adaptive.GenerateSnapshot(adaptive.SynthParams{N: gridN, Seed: 3, Redshift: z})
		if err != nil {
			log.Fatal(err)
		}
		density, err := snap.Field(adaptive.FieldBaryonDensity)
		if err != nil {
			log.Fatal(err)
		}
		cf, st, err := sys.CompressInSitu(ctx, density, cal, adaptive.InSituOptions{
			Ranks: ranks,
			AvgEB: avgEB,
			Halo: &adaptive.InSituHalo{
				TBoundary:  hcfg.BoundaryThreshold,
				RefEB:      1.0,
				MassBudget: 1e6, // generous budget; tighten for strict halo control
			},
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-9g %-7d %-9.2f %-11.4f %-11s %-10d\n",
			z, st.Ranks, cf.Ratio(), st.CompressSeconds,
			fmt.Sprintf("%.2f%%", st.FeatureOverhead()*100), st.Collectives)
	}
	fmt.Println("\noverhead = (feature extraction + optimization) / compression time per dump")
}
