package core

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"sync"
	"testing"

	"repro/internal/apierr"
	"repro/internal/codec"
	"repro/internal/grid"
	"repro/internal/nyx"
)

// streamField compresses one small deterministic field for stream tests.
func streamField(t *testing.T, e *Engine, scale float32) *CompressedField {
	t.Helper()
	f := grid.NewCube(16)
	for i := range f.Data {
		x, y, z := f.Coords(i)
		f.Data[i] = scale * float32(x+2*y+3*z)
	}
	cf, err := e.CompressStatic(context.Background(), f, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	return cf
}

func TestStreamRoundTrip(t *testing.T) {
	e := engine(t, Config{PartitionDim: 8})
	f := field(t, nyx.FieldBaryonDensity)
	cal, err := e.Calibrate(context.Background(), f)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := e.Plan(context.Background(), f, cal, PlanOptions{AvgEB: 0.1})
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	sw, err := NewStreamWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	const steps = 5
	want := make([]*CompressedField, steps)
	for i := 0; i < steps; i++ {
		cf, err := e.CompressAdaptive(context.Background(), f, plan)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = cf
		other := streamField(t, e, float32(i+1))
		if err := sw.WriteStep(map[string]*CompressedField{
			"baryon_density": cf,
			"synthetic":      other,
		}); err != nil {
			t.Fatal(err)
		}
	}
	if sw.Steps() != steps {
		t.Fatalf("writer reports %d steps, want %d", sw.Steps(), steps)
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := sw.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
	if err := sw.WriteStep(map[string]*CompressedField{"x": want[0]}); err == nil {
		t.Error("write after close accepted")
	}

	sr, err := OpenStream(bytes.NewReader(buf.Bytes()), int64(buf.Len()))
	if err != nil {
		t.Fatal(err)
	}
	if sr.Steps() != steps {
		t.Fatalf("reader reports %d steps, want %d", sr.Steps(), steps)
	}
	// Read steps out of order: each must decode independently.
	for _, i := range []int{3, 0, 4, 2, 1} {
		fields, err := sr.ReadStep(i)
		if err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		if len(fields) != 2 {
			t.Fatalf("step %d has %d fields, want 2", i, len(fields))
		}
		got := fields["baryon_density"]
		if got == nil {
			t.Fatalf("step %d missing baryon_density", i)
		}
		if got.CompressedSize() != want[i].CompressedSize() || got.Codec != want[i].Codec {
			t.Errorf("step %d: size %d codec %s, want %d %s",
				i, got.CompressedSize(), got.Codec, want[i].CompressedSize(), want[i].Codec)
		}
		wantField, err := want[i].Decompress(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		gotField, err := got.Decompress(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(float32Bits(wantField.Data), float32Bits(gotField.Data)) {
			t.Errorf("step %d decoded field differs from source", i)
		}
	}
	if _, err := sr.ReadStep(steps); err == nil {
		t.Error("out-of-range step accepted")
	}
	if _, err := sr.ReadStep(-1); err == nil {
		t.Error("negative step accepted")
	}
}

func float32Bits(xs []float32) []byte {
	out := make([]byte, 0, 4*len(xs))
	var b [4]byte
	for _, x := range xs {
		u := math.Float32bits(x)
		b[0], b[1], b[2], b[3] = byte(u), byte(u>>8), byte(u>>16), byte(u>>24)
		out = append(out, b[:]...)
	}
	return out
}

func TestStreamEmpty(t *testing.T) {
	var buf bytes.Buffer
	sw, err := NewStreamWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := sw.WriteStep(nil); err == nil {
		t.Error("empty step accepted")
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	sr, err := OpenStream(bytes.NewReader(buf.Bytes()), int64(buf.Len()))
	if err != nil {
		t.Fatal(err)
	}
	if sr.Steps() != 0 {
		t.Errorf("empty stream has %d steps", sr.Steps())
	}
}

// failAfterWriter accepts n bytes then errors, to exercise write failures.
type failAfterWriter struct {
	n int
}

func (w *failAfterWriter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return 0, io.ErrClosedPipe
	}
	w.n -= len(p)
	return len(p), nil
}

// TestStreamCloseErrorIsSticky: a failed footer write must keep failing on
// repeated Close calls — a deferred second Close may not report success on
// a truncated stream.
func TestStreamCloseErrorIsSticky(t *testing.T) {
	e := engine(t, Config{PartitionDim: 8})
	w := &failAfterWriter{n: 1 << 20}
	sw, err := NewStreamWriter(w)
	if err != nil {
		t.Fatal(err)
	}
	if err := sw.WriteStep(map[string]*CompressedField{"f": streamField(t, e, 1)}); err != nil {
		t.Fatal(err)
	}
	w.n = 0 // every write from here on fails
	if err := sw.Close(); err == nil {
		t.Fatal("footer write failure not reported")
	}
	if err := sw.Close(); err == nil {
		t.Fatal("second Close masked the footer failure")
	}
}

// recordingReaderAt records every ReadAt range, so tests can assert which
// byte ranges a read touched.
type recordingReaderAt struct {
	r     io.ReaderAt
	reads [][2]int64 // offset, length
}

func (r *recordingReaderAt) ReadAt(p []byte, off int64) (int, error) {
	r.reads = append(r.reads, [2]int64{off, int64(len(p))})
	return r.r.ReadAt(p, off)
}

// TestStreamSeekIsO1 asserts the random-access contract: reading step k
// touches only step k's byte range — no scan through earlier steps, so
// access cost is independent of position in the stream.
func TestStreamSeekIsO1(t *testing.T) {
	e := engine(t, Config{PartitionDim: 8})
	var buf bytes.Buffer
	sw, err := NewStreamWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	const steps = 9
	for i := 0; i < steps; i++ {
		if err := sw.WriteStep(map[string]*CompressedField{
			"f": streamField(t, e, float32(i+1)),
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}

	rec := &recordingReaderAt{r: bytes.NewReader(buf.Bytes())}
	sr, err := OpenStream(rec, int64(buf.Len()))
	if err != nil {
		t.Fatal(err)
	}
	openReads := len(rec.reads)

	last := steps - 1
	if _, err := sr.ReadStep(last); err != nil {
		t.Fatal(err)
	}
	reads := rec.reads[openReads:]
	if len(reads) != 1 {
		t.Fatalf("reading one step issued %d reads, want 1", len(reads))
	}
	lo, n := reads[0][0], reads[0][1]
	// The step's range must lie strictly inside the data area and after
	// all earlier steps: the 8 preceding steps were never touched.
	e8 := sr.index[last]
	if uint64(lo) != e8.Offset || uint64(n) != e8.Length {
		t.Errorf("read [%d,+%d), want step %d range [%d,+%d)", lo, n, last, e8.Offset, e8.Length)
	}
	for i := 0; i < last; i++ {
		prev := sr.index[i]
		if uint64(lo) < prev.Offset+prev.Length {
			t.Fatalf("reading step %d touched bytes of step %d", last, i)
		}
	}
}

func TestOpenStreamRejectsCorruption(t *testing.T) {
	e := engine(t, Config{PartitionDim: 8})
	var buf bytes.Buffer
	sw, err := NewStreamWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := sw.WriteStep(map[string]*CompressedField{"f": streamField(t, e, 1)}); err != nil {
		t.Fatal(err)
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	corrupt := func(name string, mutate func(b []byte) []byte) {
		b := append([]byte(nil), good...)
		b = mutate(b)
		if _, err := OpenStream(bytes.NewReader(b), int64(len(b))); err == nil {
			t.Errorf("%s: corruption accepted", name)
		}
	}
	corrupt("bad magic", func(b []byte) []byte { b[0] = 'X'; return b })
	corrupt("bad version", func(b []byte) []byte { b[4] = 9; return b })
	corrupt("bad trailer", func(b []byte) []byte { b[len(b)-1] = 'Y'; return b })
	corrupt("truncated", func(b []byte) []byte { return b[:len(b)-5] })
	corrupt("short", func(b []byte) []byte { return b[:10] })
	corrupt("index offset", func(b []byte) []byte {
		// The index offset lives in trailer bytes [4,12) from its start.
		off := len(b) - streamTrailerBytes + 4
		b[off] = 0xFF
		return b
	})

	// Flipping a byte inside the step payload must fail at ReadStep (the
	// codec-native CRC), not at open: the index itself is still valid.
	b := append([]byte(nil), good...)
	b[streamHeaderBytes+40] ^= 0xFF
	sr, err := OpenStream(bytes.NewReader(b), int64(len(b)))
	if err != nil {
		t.Fatalf("payload corruption rejected at open: %v", err)
	}
	if _, err := sr.ReadStep(0); err == nil {
		t.Error("corrupted step payload decoded without error")
	}
}

// flakyReaderAt fails every ReadAt with a transient I/O error.
type flakyReaderAt struct{ err error }

func (f flakyReaderAt) ReadAt([]byte, int64) (int, error) { return 0, f.err }

// TestStreamIOErrorIsNotCorruption pins the read-failure taxonomy: a
// transient I/O error opening a stream must NOT classify as
// ErrCorruptArchive (only truncation — EOF-family errors — does), so
// callers that quarantine corrupt archives never condemn a healthy file
// over a flaky read.
func TestStreamIOErrorIsNotCorruption(t *testing.T) {
	transient := errors.New("read: transient EIO")
	_, err := OpenStream(flakyReaderAt{err: transient}, 1<<20)
	if err == nil {
		t.Fatal("open succeeded on a failing reader")
	}
	if !errors.Is(err, transient) {
		t.Fatalf("transient cause lost: %v", err)
	}
	if errors.Is(err, apierr.ErrCorruptArchive) {
		t.Fatalf("transient I/O error classified as corruption: %v", err)
	}

	// Truncation through the same path IS corruption.
	_, err = OpenStream(flakyReaderAt{err: io.ErrUnexpectedEOF}, 1<<20)
	if !errors.Is(err, apierr.ErrCorruptArchive) {
		t.Fatalf("truncated read not classified as corruption: %v", err)
	}
}

// countingWriter counts writes so tests can assert nothing reaches the
// destination after a failure poisoned the writer.
type countingWriter struct {
	inner  io.Writer
	writes int
}

func (w *countingWriter) Write(p []byte) (int, error) {
	w.writes++
	return w.inner.Write(p)
}

// TestStreamWriteStepErrorIsSticky: a failed WriteStep must poison the
// writer. The destination may hold a short write at an unknown offset, so
// a later WriteStep appending at the stale sw.off — or a Close indexing
// steps at stale offsets — would silently corrupt the stream.
func TestStreamWriteStepErrorIsSticky(t *testing.T) {
	e := engine(t, Config{PartitionDim: 8})
	fail := &failAfterWriter{n: 1 << 20}
	count := &countingWriter{inner: fail}
	sw, err := NewStreamWriter(count)
	if err != nil {
		t.Fatal(err)
	}
	step := map[string]*CompressedField{"f": streamField(t, e, 1)}
	if err := sw.WriteStep(step); err != nil {
		t.Fatal(err)
	}
	fail.n = 0 // every write from here on fails
	werr := sw.WriteStep(step)
	if werr == nil {
		t.Fatal("failed step write not reported")
	}
	if sw.Steps() != 1 {
		t.Fatalf("failed step counted: Steps() = %d, want 1", sw.Steps())
	}

	writesAfterFailure := count.writes
	fail.n = 1 << 20 // the destination "recovers" — the writer must not
	if err := sw.WriteStep(step); !errors.Is(err, io.ErrClosedPipe) {
		t.Fatalf("WriteStep after failure = %v, want the sticky original failure", err)
	}
	if err := sw.Close(); !errors.Is(err, io.ErrClosedPipe) {
		t.Fatalf("Close after failed step write = %v, want the sticky original failure", err)
	}
	if err := sw.Close(); !errors.Is(err, io.ErrClosedPipe) {
		t.Fatalf("second Close after failed step write = %v, want the sticky original failure", err)
	}
	if count.writes != writesAfterFailure {
		t.Fatalf("poisoned writer still wrote %d times to the destination",
			count.writes-writesAfterFailure)
	}
}

// hostileStepStream writes a valid two-field stream, then rewrites the two
// (equal-length) field names inside the step block in place — the index,
// footer, and payloads stay untouched, so only parseStepBlock's name
// validation can catch the tampering.
func hostileStepStream(t *testing.T, e *Engine, name1, name2 string) []byte {
	t.Helper()
	var buf bytes.Buffer
	sw, err := NewStreamWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := sw.WriteStep(map[string]*CompressedField{
		"aa": streamField(t, e, 1),
		"bb": streamField(t, e, 2),
	}); err != nil {
		t.Fatal(err)
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	// Step block layout from streamHeaderBytes: u32 count, then per field
	// u16 nameLen, name, u32 payloadLen, payload.
	pos := streamHeaderBytes + 4
	nameAt := func() int {
		n := int(binary.LittleEndian.Uint16(b[pos : pos+2]))
		if n != 2 {
			t.Fatalf("test expects 2-byte names, got %d", n)
		}
		return pos + 2
	}
	at := nameAt()
	copy(b[at:at+2], name1)
	pos = at + 2
	pos += 4 + int(binary.LittleEndian.Uint32(b[pos:pos+4]))
	at = nameAt()
	copy(b[at:at+2], name2)
	return b
}

// TestStreamRejectsHostileStepNames: the writer emits sorted unique field
// names, so a step block with a duplicated or out-of-order name is hostile
// and must be rejected as ErrCorruptArchive instead of collapsing into the
// map (duplicate) or re-serializing differently than it parsed (unsorted).
func TestStreamRejectsHostileStepNames(t *testing.T) {
	e := engine(t, Config{PartitionDim: 8})
	cases := []struct {
		name         string
		name1, name2 string
	}{
		{"duplicate", "aa", "aa"},
		{"out of order", "zz", "bb"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := hostileStepStream(t, e, tc.name1, tc.name2)
			sr, err := OpenStream(bytes.NewReader(b), int64(len(b)))
			if err != nil {
				t.Fatalf("open rejected a stream with a valid index: %v", err)
			}
			_, err = sr.ReadStep(0)
			if err == nil {
				t.Fatal("hostile step names accepted")
			}
			if !errors.Is(err, apierr.ErrCorruptArchive) {
				t.Fatalf("hostile step names not classified as corruption: %v", err)
			}
		})
	}

	// The untampered layout (sorted, unique) must still read back.
	b := hostileStepStream(t, e, "aa", "bb")
	sr, err := OpenStream(bytes.NewReader(b), int64(len(b)))
	if err != nil {
		t.Fatal(err)
	}
	fields, err := sr.ReadStep(0)
	if err != nil {
		t.Fatalf("sorted unique names rejected: %v", err)
	}
	if len(fields) != 2 {
		t.Fatalf("got %d fields, want 2", len(fields))
	}
}

// TestStreamReaderConcurrentReaders is the concurrent-reader contract
// under the race detector: 16 goroutines seek different steps of one open
// stream at once — through ReadStep, StepSection, and StepLayout — and
// every read must match the single-reader golden. StreamReader keeps no
// cursor, so no synchronization beyond the shared *bytes.Reader's own
// ReadAt is involved.
func TestStreamReaderConcurrentReaders(t *testing.T) {
	e := engine(t, Config{PartitionDim: 8})
	var buf bytes.Buffer
	sw, err := NewStreamWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	const steps = 8
	for i := 0; i < steps; i++ {
		if err := sw.WriteStep(map[string]*CompressedField{
			"alpha": streamField(t, e, float32(i+1)),
			"beta":  streamField(t, e, float32(2*i+1)),
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	sr, err := OpenStream(bytes.NewReader(raw), int64(len(raw)))
	if err != nil {
		t.Fatal(err)
	}

	// Single-reader goldens: serialized field bytes per step.
	golden := make([]map[string][]byte, steps)
	for i := 0; i < steps; i++ {
		fields, err := sr.ReadStep(i)
		if err != nil {
			t.Fatal(err)
		}
		golden[i] = make(map[string][]byte, len(fields))
		for name, cf := range fields {
			golden[i][name] = cf.Bytes()
		}
	}

	const readers = 16
	var wg sync.WaitGroup
	errs := make(chan error, readers)
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for it := 0; it < 8; it++ {
				step := (g + it) % steps
				fields, err := sr.ReadStep(step)
				if err != nil {
					errs <- err
					return
				}
				for name, cf := range fields {
					if !bytes.Equal(cf.Bytes(), golden[step][name]) {
						errs <- fmt.Errorf("reader %d: step %d field %q diverges", g, step, name)
						return
					}
				}
				sec, err := sr.StepSection(step)
				if err != nil {
					errs <- err
					return
				}
				blk, err := io.ReadAll(sec)
				if err != nil {
					errs <- err
					return
				}
				if _, err := parseStepBlock(blk, step, codec.Default); err != nil {
					errs <- fmt.Errorf("reader %d: section of step %d does not parse: %w", g, step, err)
					return
				}
				if _, err := sr.StepLayout(step); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestStepLayoutLocatesBytes pins the structural map against the real
// byte stream: every field range must re-parse to the archived field, and
// every partition body range must hold exactly the codec-native stream
// the decoded frame serializes to.
func TestStepLayoutLocatesBytes(t *testing.T) {
	e := engine(t, Config{PartitionDim: 8})
	var buf bytes.Buffer
	sw, err := NewStreamWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := sw.WriteStep(map[string]*CompressedField{
		"alpha": streamField(t, e, 1),
		"beta":  streamField(t, e, 3),
	}); err != nil {
		t.Fatal(err)
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	sr, err := OpenStream(bytes.NewReader(raw), int64(len(raw)))
	if err != nil {
		t.Fatal(err)
	}
	layouts, err := sr.StepLayout(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(layouts) != 2 || layouts[0].Name != "alpha" || layouts[1].Name != "beta" {
		t.Fatalf("unexpected layout fields: %+v", layouts)
	}
	for _, fl := range layouts {
		blob := raw[fl.ArchiveOffset : fl.ArchiveOffset+fl.ArchiveLength]
		cf, err := ParseCompressedField(blob)
		if err != nil {
			t.Fatalf("%s: archive range does not parse: %v", fl.Name, err)
		}
		if cf.Nx != fl.Nx || cf.Ny != fl.Ny || cf.Nz != fl.Nz || cf.PartitionDim != fl.PartitionDim {
			t.Fatalf("%s: layout geometry %dx%dx%d/%d disagrees with parsed archive",
				fl.Name, fl.Nx, fl.Ny, fl.Nz, fl.PartitionDim)
		}
		if len(fl.Partitions) != len(cf.Parts) {
			t.Fatalf("%s: layout has %d partitions, archive %d", fl.Name, len(fl.Partitions), len(cf.Parts))
		}
		for i, pl := range fl.Partitions {
			body := raw[pl.BodyOffset : pl.BodyOffset+pl.BodyLength]
			if pl.Codec != cf.Parts[i].CodecID() {
				t.Fatalf("%s partition %d: codec %q vs frame %q", fl.Name, i, pl.Codec, cf.Parts[i].CodecID())
			}
			if !bytes.Equal(body, cf.Parts[i].Bytes()) {
				t.Fatalf("%s partition %d: body range diverges from frame bytes", fl.Name, i)
			}
		}
	}
	if _, err := sr.StepLayout(1); err == nil {
		t.Fatal("out-of-range step accepted")
	}
	if _, err := sr.StepSection(-1); err == nil {
		t.Fatal("negative step accepted")
	}
}
