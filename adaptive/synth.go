package adaptive

import (
	"repro/internal/nyx"
	"repro/internal/snapio"
)

// Synthetic-data surface: the Nyx-like cosmology generator that stands in
// for the LBNL datasets the paper evaluates on, and the snapshot container
// files it is exchanged through.

// Field names every generated snapshot carries.
const (
	FieldBaryonDensity     = nyx.FieldBaryonDensity
	FieldDarkMatterDensity = nyx.FieldDarkMatterDensity
	FieldTemperature       = nyx.FieldTemperature
	FieldVelocityX         = nyx.FieldVelocityX
	FieldVelocityY         = nyx.FieldVelocityY
	FieldVelocityZ         = nyx.FieldVelocityZ
)

// FieldNames lists every generated field in canonical order.
func FieldNames() []string { return append([]string(nil), nyx.FieldNames...) }

// SynthParams configures one synthetic snapshot (grid size, seed,
// redshift; same seed = same universe).
type SynthParams = nyx.Params

// Snapshot is a generated universe: named fields at one redshift.
type Snapshot = nyx.Snapshot

// GenerateSnapshot builds a synthetic Nyx-like snapshot.
func GenerateSnapshot(p SynthParams) (*Snapshot, error) { return nyx.Generate(p) }

// GenerateSequence generates the same universe at several redshifts.
func GenerateSequence(base SynthParams, redshifts []float64) ([]*Snapshot, error) {
	return nyx.GenerateSequence(base, redshifts)
}

func defaultHaloThresholds() (boundary, peak float64) { return nyx.DefaultHaloConfig() }

// SynthStreamParams configures an evolving multi-step stream.
type SynthStreamParams = nyx.StreamParams

// SynthStream is a deterministic evolving snapshot stream; it satisfies
// Source, so it feeds System.Run directly.
type SynthStream = nyx.Stream

// NewSynthStream generates an evolving stream from scratch.
func NewSynthStream(p SynthStreamParams) (*SynthStream, error) { return nyx.NewStream(p) }

// NewSynthStreamFrom evolves externally supplied base fields (e.g. a
// snapshot loaded from disk) into a deterministic multi-step stream.
func NewSynthStreamFrom(base map[string]*Field, p SynthStreamParams) (*SynthStream, error) {
	return nyx.NewStreamFrom(base, p)
}

// SnapshotFile is the on-disk snapshot container (named fields plus the
// redshift they were generated at).
type SnapshotFile = snapio.Snapshot

// ReadSnapshotFile loads a snapshot container written by
// WriteSnapshotFile (or the nyxgen command).
func ReadSnapshotFile(path string) (*SnapshotFile, error) { return snapio.ReadFile(path) }

// WriteSnapshotFile writes a snapshot container.
func WriteSnapshotFile(path string, s *SnapshotFile) error { return snapio.WriteFile(path, s) }
