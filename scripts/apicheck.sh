#!/usr/bin/env bash
# apicheck.sh — pin the public API surface.
#
# Snapshots `go doc -all` of the two public packages (adaptive and
# adaptive/codecs) into committed golden files and diffs against them, so
# any change to the facade shows up as an explicit diff in review instead
# of slipping through. Regenerate deliberately with:
#
#   scripts/apicheck.sh -update
set -euo pipefail
cd "$(dirname "$0")/.."

declare -A goldens=(
    ["./adaptive"]="adaptive/api.txt"
    ["./adaptive/codecs"]="adaptive/codecs/api.txt"
)

update=0
[[ "${1:-}" == "-update" ]] && update=1

status=0
for pkg in "${!goldens[@]}"; do
    golden="${goldens[$pkg]}"
    current="$(mktemp)"
    go doc -all "$pkg" > "$current"
    if [[ "$update" == 1 ]]; then
        cp "$current" "$golden"
        echo "updated $golden"
    elif ! diff -u "$golden" "$current"; then
        echo "API surface of $pkg drifted from $golden." >&2
        echo "If the change is intentional, run: scripts/apicheck.sh -update" >&2
        status=1
    fi
    rm -f "$current"
done
exit $status
