// Command nyxgen generates synthetic Nyx-like cosmology snapshots and
// writes them as snapshot container files (see internal/snapio). It stands
// in for downloading the LBNL Nyx datasets the paper evaluates on.
//
// Usage:
//
//	nyxgen -n 128 -seed 7 -redshifts 54,48,42 -out ./data
//
// produces ./data/snapshot_z54.nyx, ... with all six fields.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"repro/adaptive"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("nyxgen: ")
	var (
		n         = flag.Int("n", 128, "grid dimension (cubic)")
		seed      = flag.Uint64("seed", 7, "random seed (same seed = same universe)")
		redshifts = flag.String("redshifts", "42", "comma-separated redshifts to dump")
		outDir    = flag.String("out", ".", "output directory")
		workers   = flag.Int("workers", 0, "worker goroutines (0 = all cores)")
	)
	flag.Parse()

	zs, err := parseFloats(*redshifts)
	if err != nil {
		log.Fatalf("parsing -redshifts: %v", err)
	}
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		log.Fatal(err)
	}
	for _, z := range zs {
		snap, err := adaptive.GenerateSnapshot(adaptive.SynthParams{
			N: *n, Seed: *seed, Redshift: z, Workers: *workers,
		})
		if err != nil {
			log.Fatalf("generating z=%g: %v", z, err)
		}
		path := filepath.Join(*outDir, fmt.Sprintf("snapshot_z%g.nyx", z))
		if err := adaptive.WriteSnapshotFile(path, &adaptive.SnapshotFile{
			Redshift: z,
			Fields:   snap.Fields,
		}); err != nil {
			log.Fatalf("writing %s: %v", path, err)
		}
		var bytes int64
		if st, err := os.Stat(path); err == nil {
			bytes = st.Size()
		}
		fmt.Printf("wrote %s (%d³ cells × 6 fields, %.1f MiB)\n",
			path, *n, float64(bytes)/(1<<20))
	}
}

func parseFloats(s string) ([]float64, error) {
	parts := strings.Split(s, ",")
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		v, err := strconv.ParseFloat(p, 64)
		if err != nil {
			return nil, fmt.Errorf("%q: %w", p, err)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no redshifts given")
	}
	return out, nil
}
