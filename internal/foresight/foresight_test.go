package foresight

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/halo"
	"repro/internal/nyx"
)

var testSnap *nyx.Snapshot

func snap(t *testing.T) *nyx.Snapshot {
	t.Helper()
	if testSnap == nil {
		s, err := nyx.Generate(nyx.Params{N: 64, Seed: 21, Redshift: 42})
		if err != nil {
			t.Fatal(err)
		}
		testSnap = s
	}
	return testSnap
}

func newEvaluator(t *testing.T, withHalo bool) *Evaluator {
	t.Helper()
	eng, err := core.NewEngine(core.Config{PartitionDim: 16})
	if err != nil {
		t.Fatal(err)
	}
	ev := &Evaluator{Engine: eng}
	if withHalo {
		bt, pt := nyx.DefaultHaloConfig()
		ev.Halo = &halo.Config{BoundaryThreshold: bt, HaloThreshold: pt, Periodic: true}
	}
	return ev
}

func TestEvaluateStaticBasics(t *testing.T) {
	ev := newEvaluator(t, true)
	f, _ := snap(t).Field(nyx.FieldBaryonDensity)
	m, err := ev.EvaluateStatic(context.Background(), nyx.FieldBaryonDensity, f, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if m.Ratio <= 1 || m.BitRate <= 0 || m.BitRate >= 32 {
		t.Errorf("implausible rate metrics: %+v", m)
	}
	if m.MaxAbsErr > 0.01*(1+1e-5) {
		t.Errorf("max error %v beyond bound", m.MaxAbsErr)
	}
	if m.Adaptive {
		t.Error("static compression flagged adaptive")
	}
	if !m.HaloEvaluated {
		t.Error("halo metrics not evaluated despite config")
	}
	if m.PSNR < 40 {
		t.Errorf("PSNR %v suspiciously low at tiny eb", m.PSNR)
	}
}

func TestQualityDegradesWithEB(t *testing.T) {
	ev := newEvaluator(t, false)
	f, _ := snap(t).Field(nyx.FieldBaryonDensity)
	rows, err := ev.Sweep(context.Background(), nyx.FieldBaryonDensity, f, []float64{0.001, 0.1, 10})
	if err != nil {
		t.Fatal(err)
	}
	if !(rows[0].SpectrumMaxDev <= rows[1].SpectrumMaxDev &&
		rows[1].SpectrumMaxDev <= rows[2].SpectrumMaxDev) {
		t.Errorf("spectrum deviation not monotone: %v %v %v",
			rows[0].SpectrumMaxDev, rows[1].SpectrumMaxDev, rows[2].SpectrumMaxDev)
	}
	if !(rows[0].Ratio < rows[1].Ratio && rows[1].Ratio < rows[2].Ratio) {
		t.Errorf("ratio not monotone")
	}
}

func TestEvaluateAdaptiveFlag(t *testing.T) {
	ev := newEvaluator(t, false)
	f, _ := snap(t).Field(nyx.FieldBaryonDensity)
	cal, err := ev.Engine.Calibrate(context.Background(), f)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := ev.Engine.Plan(context.Background(), f, cal, core.PlanOptions{AvgEB: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	cf, err := ev.Engine.CompressAdaptive(context.Background(), f, plan)
	if err != nil {
		t.Fatal(err)
	}
	m, err := ev.Evaluate(context.Background(), nyx.FieldBaryonDensity, f, cf)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Adaptive {
		t.Error("adaptive compression not flagged")
	}
}

func TestTrialAndError(t *testing.T) {
	ev := newEvaluator(t, false)
	f, _ := snap(t).Field(nyx.FieldBaryonDensity)
	grid, err := GeometricGrid(1e-4, 10, 11)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ev.TrialAndError(context.Background(), nyx.FieldBaryonDensity, f, grid, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.BestPassingEB <= 0 || res.ChosenEB <= 0 {
		t.Fatalf("bad result: %+v", res)
	}
	if res.ChosenEB > res.BestPassingEB {
		t.Errorf("chosen %v above best passing %v", res.ChosenEB, res.BestPassingEB)
	}
	if res.Trials < 2 {
		t.Errorf("suspiciously few trials: %d", res.Trials)
	}
	// Oracle (no safety margin) must pick the best passing bound.
	oracle, err := ev.TrialAndError(context.Background(), nyx.FieldBaryonDensity, f, grid, 0)
	if err != nil {
		t.Fatal(err)
	}
	if oracle.ChosenEB != oracle.BestPassingEB {
		t.Errorf("oracle chose %v, best %v", oracle.ChosenEB, oracle.BestPassingEB)
	}
	if oracle.BestPassingEB < res.ChosenEB {
		t.Errorf("safety margin increased the bound")
	}
}

func TestTrialAndErrorNoPassingBound(t *testing.T) {
	ev := newEvaluator(t, false)
	ev.SpectrumTol = 1e-12 // impossible target
	f, _ := snap(t).Field(nyx.FieldBaryonDensity)
	if _, err := ev.TrialAndError(context.Background(), nyx.FieldBaryonDensity, f, []float64{1, 10}, 0); err == nil {
		t.Error("impossible target produced a bound")
	}
}

func TestTrialAndErrorValidation(t *testing.T) {
	ev := newEvaluator(t, false)
	f, _ := snap(t).Field(nyx.FieldBaryonDensity)
	if _, err := ev.TrialAndError(context.Background(), "x", f, nil, 0); err == nil {
		t.Error("empty grid accepted")
	}
	if _, err := ev.TrialAndError(context.Background(), "x", f, []float64{1}, -1); err == nil {
		t.Error("negative margin accepted")
	}
}

func TestGeometricGrid(t *testing.T) {
	g, err := GeometricGrid(0.01, 100, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(g) != 5 || g[0] != 0.01 || g[4] != 100 {
		t.Fatalf("grid %v", g)
	}
	for i := 1; i < len(g); i++ {
		if g[i] <= g[i-1] {
			t.Fatalf("grid not increasing: %v", g)
		}
	}
	if _, err := GeometricGrid(0, 1, 3); err == nil {
		t.Error("zero lo accepted")
	}
	if _, err := GeometricGrid(1, 1, 3); err == nil {
		t.Error("empty range accepted")
	}
	if _, err := GeometricGrid(1, 2, 1); err == nil {
		t.Error("single point accepted")
	}
}

func TestWriteCSV(t *testing.T) {
	rows := []Metrics{
		{Field: "f", EB: 0.1, Ratio: 10, BitRate: 3.2, PSNR: 60, SpectrumOK: true},
		{Field: "g", EB: 0.2, Adaptive: true, Ratio: 12, HaloEvaluated: true, HaloOK: true},
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("CSV has %d lines", len(lines))
	}
	if !strings.HasPrefix(lines[0], "field,eb,") {
		t.Errorf("header: %s", lines[0])
	}
	if !strings.Contains(lines[2], "true") {
		t.Errorf("adaptive row: %s", lines[2])
	}
}

func TestQualityOK(t *testing.T) {
	m := Metrics{SpectrumOK: true}
	if !m.QualityOK() {
		t.Error("spectrum-only pass rejected")
	}
	m.HaloEvaluated = true
	if m.QualityOK() {
		t.Error("failed halo accepted")
	}
	m.HaloOK = true
	if !m.QualityOK() {
		t.Error("full pass rejected")
	}
	m.SpectrumOK = false
	if m.QualityOK() {
		t.Error("failed spectrum accepted")
	}
}
