package core

import (
	"bytes"
	"context"
	"errors"
	"math"
	"testing"

	"repro/internal/codec"
	"repro/internal/grid"
	"repro/internal/halo"
	"repro/internal/nyx"
	"repro/internal/stats"
)

// testSnapshot memoizes one synthetic snapshot for the whole test file.
var testSnap *nyx.Snapshot

func snap(t *testing.T) *nyx.Snapshot {
	t.Helper()
	if testSnap == nil {
		s, err := nyx.Generate(nyx.Params{N: 64, Seed: 11, Redshift: 42})
		if err != nil {
			t.Fatal(err)
		}
		testSnap = s
	}
	return testSnap
}

func field(t *testing.T, name string) *grid.Field3D {
	f, err := snap(t).Field(name)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func engine(t *testing.T, cfg Config) *Engine {
	t.Helper()
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestNewEngineDefaults(t *testing.T) {
	e := engine(t, Config{})
	if e.Config().PartitionDim != 16 || e.Config().ClampFactor != 4 || e.Config().Workers < 1 {
		t.Errorf("defaults not applied: %+v", e.Config())
	}
	if _, err := NewEngine(Config{PartitionDim: -1}); err == nil {
		t.Error("negative partition dim accepted")
	}
	if _, err := NewEngine(Config{ClampFactor: 0.2}); err == nil {
		t.Error("clamp < 1 accepted")
	}
}

func TestNewEngineRejectsUnknownCodec(t *testing.T) {
	if _, err := NewEngine(Config{Codec: "lz4"}); !errors.Is(err, codec.ErrUnknownCodec) {
		t.Errorf("unknown codec: got %v, want ErrUnknownCodec", err)
	}
	e := engine(t, Config{})
	if e.Config().Codec != codec.SZ {
		t.Errorf("default codec %q, want sz", e.Config().Codec)
	}
}

// TestAdaptivePipelinePerCodec runs calibrate → plan → adaptive compress →
// decompress → archive round trip through every registered backend: the
// configurator must be codec-agnostic end to end.
func TestAdaptivePipelinePerCodec(t *testing.T) {
	f := field(t, nyx.FieldBaryonDensity)
	for _, id := range codec.IDs() {
		t.Run(string(id), func(t *testing.T) {
			e := engine(t, Config{PartitionDim: 16, Codec: id})
			cal, err := e.Calibrate(context.Background(), f)
			if err != nil {
				t.Fatal(err)
			}
			plan, err := e.Plan(context.Background(), f, cal, PlanOptions{AvgEB: 0.1})
			if err != nil {
				t.Fatal(err)
			}
			cf, err := e.CompressAdaptive(context.Background(), f, plan)
			if err != nil {
				t.Fatal(err)
			}
			if cf.Codec != id {
				t.Errorf("field tagged %q", cf.Codec)
			}
			for i, p := range cf.Parts {
				if p.CodecID() != id {
					t.Fatalf("partition %d tagged %q", i, p.CodecID())
				}
			}
			if r := cf.Ratio(); r <= 1 {
				t.Errorf("ratio %.2f not compressive", r)
			}
			recon, err := cf.Decompress(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			// SZ guarantees each partition's planned bound; ZFP's rate
			// search is best-effort, so only sanity-check reconstruction.
			mx, _ := stats.MaxAbsError(f.Data, recon.Data)
			if id == codec.SZ {
				maxEB := 0.0
				for _, eb := range plan.EBs {
					maxEB = math.Max(maxEB, eb)
				}
				if mx > maxEB*(1+1e-5) {
					t.Errorf("max error %v beyond largest bound %v", mx, maxEB)
				}
			} else if math.IsNaN(mx) || math.IsInf(mx, 0) {
				t.Errorf("bad reconstruction error %v", mx)
			}

			// Archives are self-describing: parse back without telling the
			// parser which codec wrote them.
			parsed, err := ParseCompressedField(cf.Bytes())
			if err != nil {
				t.Fatal(err)
			}
			if parsed.Codec != id {
				t.Errorf("parsed archive tagged %q, want %q", parsed.Codec, id)
			}
			back, err := parsed.Decompress(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			for i := range recon.Data {
				if recon.Data[i] != back.Data[i] {
					t.Fatalf("archive round trip changed data at %d", i)
				}
			}
		})
	}
}

func TestCalibrateOnTemperature(t *testing.T) {
	e := engine(t, Config{PartitionDim: 16})
	cal, err := e.Calibrate(context.Background(), field(t, nyx.FieldTemperature))
	if err != nil {
		t.Fatal(err)
	}
	if err := cal.Model.Validate(); err != nil {
		t.Fatal(err)
	}
	if cal.Model.Exponent >= 0 || cal.Model.Exponent < -2 {
		t.Errorf("exponent %v outside plausible range", cal.Model.Exponent)
	}
	if len(cal.Curves) < 2 {
		t.Errorf("only %d calibration curves", len(cal.Curves))
	}
	// The fitted model should predict the calibration curves within ~50 %
	// (the paper's model is approximate; it only needs relative ordering).
	var relErr stats.Moments
	for _, cu := range cal.Curves {
		for j := range cu.EBs {
			pred := cal.Model.BitRate(cu.Feature, cu.EBs[j])
			relErr.Add(math.Abs(pred-cu.BitRates[j]) / cu.BitRates[j])
		}
	}
	if relErr.Mean() > 0.5 {
		t.Errorf("mean relative rate-model error %.2f too large", relErr.Mean())
	}
}

func TestCalibrateErrors(t *testing.T) {
	e := engine(t, Config{PartitionDim: 16})
	flat := grid.NewCube(32)
	flat.Fill(1)
	if _, err := e.Calibrate(context.Background(), flat); err == nil {
		t.Error("constant field calibrated")
	}
	odd := grid.NewCube(30) // not divisible by 16
	if _, err := e.Calibrate(context.Background(), odd); err == nil {
		t.Error("non-divisible field accepted")
	}
}

func TestPlanAndCompressAdaptive(t *testing.T) {
	e := engine(t, Config{PartitionDim: 16})
	f := field(t, nyx.FieldTemperature)
	cal, err := e.Calibrate(context.Background(), f)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := f.MinMax()
	avgEB := float64(hi-lo) * 1e-4
	plan, err := e.Plan(context.Background(), f, cal, PlanOptions{AvgEB: avgEB})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.EBs) != 64 { // (64/16)³
		t.Fatalf("plan has %d bounds", len(plan.EBs))
	}
	if math.Abs(stats.MeanOf(plan.EBs)-avgEB) > 1e-6*avgEB {
		t.Errorf("plan mean eb %v != budget %v", stats.MeanOf(plan.EBs), avgEB)
	}

	adaptive, err := e.CompressAdaptive(context.Background(), f, plan)
	if err != nil {
		t.Fatal(err)
	}
	static, err := e.CompressStatic(context.Background(), f, avgEB)
	if err != nil {
		t.Fatal(err)
	}
	// Same quality budget (same average eb) → adaptive must not lose.
	if adaptive.Ratio() < static.Ratio()*0.98 {
		t.Errorf("adaptive ratio %.2f below static %.2f", adaptive.Ratio(), static.Ratio())
	}

	// Error bound per partition must hold after decompression.
	recon, err := adaptive.Decompress(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	p, _ := grid.PartitionerForBrickDim(64, 16)
	for i, part := range p.Partitions() {
		orig := grid.Extract(f, part)
		rec := grid.Extract(recon, part)
		mx, _ := stats.MaxAbsError(orig, rec)
		if mx > plan.EBs[i]*(1+1e-5) {
			t.Fatalf("partition %d: error %v > eb %v", i, mx, plan.EBs[i])
		}
	}
}

func TestAdaptiveBeatsStaticOnBaryonDensity(t *testing.T) {
	// The heavy-tailed density field is where the paper's gains live.
	e := engine(t, Config{PartitionDim: 16})
	f := field(t, nyx.FieldBaryonDensity)
	cal, err := e.Calibrate(context.Background(), f)
	if err != nil {
		t.Fatal(err)
	}
	avgEB := 0.1 // units of mean density
	plan, err := e.Plan(context.Background(), f, cal, PlanOptions{AvgEB: avgEB})
	if err != nil {
		t.Fatal(err)
	}
	adaptive, err := e.CompressAdaptive(context.Background(), f, plan)
	if err != nil {
		t.Fatal(err)
	}
	static, err := e.CompressStatic(context.Background(), f, avgEB)
	if err != nil {
		t.Fatal(err)
	}
	improvement := adaptive.Ratio()/static.Ratio() - 1
	t.Logf("adaptive %.2f vs static %.2f (+%.1f%%)",
		adaptive.Ratio(), static.Ratio(), improvement*100)
	if improvement < 0.02 {
		t.Errorf("adaptive improvement %.3f too small on heterogeneous field", improvement)
	}
}

func TestPlanErrors(t *testing.T) {
	e := engine(t, Config{PartitionDim: 16})
	f := field(t, nyx.FieldTemperature)
	cal, _ := e.Calibrate(context.Background(), f)
	if _, err := e.Plan(context.Background(), f, nil, PlanOptions{AvgEB: 1}); err == nil {
		t.Error("nil calibration accepted")
	}
	if _, err := e.Plan(context.Background(), f, cal, PlanOptions{AvgEB: 0}); err == nil {
		t.Error("zero budget accepted")
	}
	if _, err := e.CompressAdaptive(context.Background(), f, nil); err == nil {
		t.Error("nil plan accepted")
	}
	if _, err := e.CompressStatic(context.Background(), f, -1); err == nil {
		t.Error("negative static eb accepted")
	}
}

func TestSpectrumBudgetMonotone(t *testing.T) {
	f := field(t, nyx.FieldBaryonDensity)
	tight, err := SpectrumBudget(f, BudgetOptions{Tolerance: 0.001, ShellAveraging: true})
	if err != nil {
		t.Fatal(err)
	}
	loose, err := SpectrumBudget(f, BudgetOptions{Tolerance: 0.1, ShellAveraging: true})
	if err != nil {
		t.Fatal(err)
	}
	if !(tight > 0 && loose > tight) {
		t.Errorf("budgets not monotone in tolerance: %v vs %v", tight, loose)
	}
	// The paper's conservative single-bin mapping must be stricter.
	conservative, err := SpectrumBudget(f, BudgetOptions{Tolerance: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if conservative >= loose {
		t.Errorf("single-bin budget %v not below shell-averaged %v", conservative, loose)
	}
}

func TestHaloBudgetAndPlan(t *testing.T) {
	e := engine(t, Config{PartitionDim: 16})
	f := field(t, nyx.FieldBaryonDensity)
	bt, pt := nyx.DefaultHaloConfig()
	hcfg := halo.Config{BoundaryThreshold: bt, HaloThreshold: pt, Periodic: true}
	p, _ := grid.PartitionerForBrickDim(64, 16)
	hb, err := HaloBudget(f, hcfg, 0.01, 1.0, p)
	if err != nil {
		t.Fatal(err)
	}
	if hb.Catalog.Count() == 0 {
		t.Skip("no halos at this seed; halo plan not exercisable")
	}
	if hb.MassBudget <= 0 {
		t.Fatal("zero mass budget despite halos")
	}
	cal, err := e.Calibrate(context.Background(), f)
	if err != nil {
		t.Fatal(err)
	}
	hc := hb.Constraint()
	plan, err := e.Plan(context.Background(), f, cal, PlanOptions{AvgEB: 0.5, Halo: &hc})
	if err != nil {
		t.Fatal(err)
	}
	est, err := MassFaultEstimate(hb.TBoundary, hb.RefEB, hb.BoundaryCells, plan.EBs)
	if err != nil {
		t.Fatal(err)
	}
	if est > hb.MassBudget*(1+1e-9) {
		t.Errorf("plan violates halo budget: %v > %v", est, hb.MassBudget)
	}
}

func TestArchiveRoundTrip(t *testing.T) {
	e := engine(t, Config{PartitionDim: 16})
	f := field(t, nyx.FieldDarkMatterDensity)
	cf, err := e.CompressStatic(context.Background(), f, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	blob := cf.Bytes()
	parsed, err := ParseCompressedField(blob)
	if err != nil {
		t.Fatal(err)
	}
	a, err := cf.Decompress(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	b, err := parsed.Decompress(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatal("archive round trip changed data")
		}
	}
	if parsed.Ratio() != cf.Ratio() {
		t.Errorf("ratio changed through archive")
	}
}

func TestArchiveRejectsCorruption(t *testing.T) {
	e := engine(t, Config{PartitionDim: 16})
	f := field(t, nyx.FieldDarkMatterDensity)
	cf, _ := e.CompressStatic(context.Background(), f, 0.05)
	blob := cf.Bytes()
	cases := map[string]func([]byte) []byte{
		"short":     func(b []byte) []byte { return b[:10] },
		"magic":     func(b []byte) []byte { b[0] = 'x'; return b },
		"version":   func(b []byte) []byte { b[4] = 9; return b },
		"truncated": func(b []byte) []byte { return b[:len(b)-7] },
		"payload":   func(b []byte) []byte { b[len(b)-9] ^= 0xFF; return b },
		"trailing":  func(b []byte) []byte { return append(b, 0) },
	}
	for name, corrupt := range cases {
		if _, err := ParseCompressedField(corrupt(bytes.Clone(blob))); err == nil {
			t.Errorf("%s corruption accepted", name)
		}
	}
}

func TestCompressInSitu(t *testing.T) {
	e := engine(t, Config{PartitionDim: 16})
	f := field(t, nyx.FieldBaryonDensity)
	cal, err := e.Calibrate(context.Background(), f)
	if err != nil {
		t.Fatal(err)
	}
	cf, st, err := e.CompressInSitu(context.Background(), f, cal, InSituOptions{Ranks: 8, AvgEB: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if st.Ranks != 8 || st.Collectives < 1 {
		t.Errorf("stats: %+v", st)
	}
	if len(st.EBs) != 64 {
		t.Fatalf("in situ assigned %d ebs", len(st.EBs))
	}
	// All bounds inside the clamp box.
	for i, eb := range st.EBs {
		if eb < 0.1/4-1e-12 || eb > 0.4+1e-12 {
			t.Fatalf("eb[%d] = %v outside box", i, eb)
		}
	}
	recon, err := cf.Decompress(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	mx, _ := stats.MaxAbsError(f.Data, recon.Data)
	if mx > 0.4*(1+1e-5) {
		t.Errorf("in situ max error %v beyond clamp cap", mx)
	}

	// The in situ result must agree with the offline path's ratio within
	// a few percent (they differ only in the mean-preserving rescale).
	plan, err := e.Plan(context.Background(), f, cal, PlanOptions{AvgEB: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	offline, err := e.CompressAdaptive(context.Background(), f, plan)
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(cf.Ratio()-offline.Ratio()) / offline.Ratio(); rel > 0.25 {
		t.Errorf("in situ ratio %.2f far from offline %.2f", cf.Ratio(), offline.Ratio())
	}
}

func TestCompressInSituRankInvariance(t *testing.T) {
	e := engine(t, Config{PartitionDim: 16})
	f := field(t, nyx.FieldTemperature)
	cal, err := e.Calibrate(context.Background(), f)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := f.MinMax()
	avgEB := float64(hi-lo) * 1e-4
	var ref []float64
	for _, ranks := range []int{1, 4, 16} {
		_, st, err := e.CompressInSitu(context.Background(), f, cal, InSituOptions{Ranks: ranks, AvgEB: avgEB})
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = st.EBs
			continue
		}
		for i := range ref {
			if math.Abs(st.EBs[i]-ref[i]) > 1e-9*ref[i] {
				t.Fatalf("ranks=%d: eb[%d] %v != %v", ranks, i, st.EBs[i], ref[i])
			}
		}
	}
}

func TestCompressInSituHaloBudget(t *testing.T) {
	e := engine(t, Config{PartitionDim: 16})
	f := field(t, nyx.FieldBaryonDensity)
	cal, err := e.Calibrate(context.Background(), f)
	if err != nil {
		t.Fatal(err)
	}
	bt, _ := nyx.DefaultHaloConfig()
	// An absurdly tight budget must force a visible downscale.
	_, st, err := e.CompressInSitu(context.Background(), f, cal, InSituOptions{
		Ranks: 4, AvgEB: 1.0,
		Halo: &InSituHalo{TBoundary: bt, RefEB: 1.0, MassBudget: 1e-6},
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.HaloScale >= 1 {
		t.Skip("no boundary cells at this seed; scale not triggered")
	}
	if st.HaloScale <= 0 {
		t.Fatalf("invalid halo scale %v", st.HaloScale)
	}
}

func TestSuggestStaticEB(t *testing.T) {
	e := engine(t, Config{PartitionDim: 16})
	f := field(t, nyx.FieldTemperature)
	cal, err := e.Calibrate(context.Background(), f)
	if err != nil {
		t.Fatal(err)
	}
	p, _ := grid.PartitionerForBrickDim(64, 16)
	features := e.extractFeatures(context.Background(), f, p)
	target := 2.0 // bits/value
	eb, err := cal.SuggestStaticEB(features, target)
	if err != nil {
		t.Fatal(err)
	}
	uniform := make([]float64, len(features))
	for i := range uniform {
		uniform[i] = eb
	}
	br, err := cal.Model.DatasetBitRate(features, uniform)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(br-target) > 0.01*target {
		t.Errorf("SuggestStaticEB: model bit rate %v at eb %v, want %v", br, eb, target)
	}
	if _, err := cal.SuggestStaticEB(features, -1); err == nil {
		t.Error("negative target accepted")
	}
}

// TestSteadyStateAllocationFlat pins the perf contract of the pooled hot
// path: once the engine's per-worker scratches are warm, compressing a
// snapshot costs O(partitions) small allocations (the retained frames and
// their payloads), not O(cells). The bound is loose enough for pool
// variance but orders of magnitude below an unpooled path, which allocated
// dozens of buffers and map nodes per partition.
func TestSteadyStateAllocationFlat(t *testing.T) {
	f := field(t, nyx.FieldBaryonDensity)
	// Single worker so sync.Pool churn does not inflate the count.
	e := engine(t, Config{PartitionDim: 16, Workers: 1})
	cal, err := e.Calibrate(context.Background(), f)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := e.Plan(context.Background(), f, cal, PlanOptions{AvgEB: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.CompressAdaptive(context.Background(), f, plan); err != nil {
		t.Fatal(err) // warm the scratch pool
	}
	parts := len(plan.EBs)
	allocs := testing.AllocsPerRun(3, func() {
		if _, err := e.CompressAdaptive(context.Background(), f, plan); err != nil {
			t.Fatal(err)
		}
	})
	// Retained per partition: the frame value, the sz.Compressed struct,
	// and its code stream (plus occasional outlier copies); everything else
	// is scratch. 8 per partition + 16 fixed is ~2× headroom over measured.
	if limit := float64(8*parts + 16); allocs > limit {
		t.Errorf("steady-state CompressAdaptive: %.0f allocs for %d partitions (limit %.0f)",
			allocs, parts, limit)
	}
}

// TestSteadyStateAllocationFlatZFP pins the same contract for the zfp path,
// whose per-partition work is far heavier: a max-rate indexed compression,
// ~7 truncated probe decodes, and the spliced frame. With zfp.Scratch and
// the probe buffer pooled in the engine scratch, all of that costs a
// constant handful of allocations per partition (measured ~8: the retained
// frame/payload pair, the index and its offset table) — never O(cells) or
// O(probes × cells).
func TestSteadyStateAllocationFlatZFP(t *testing.T) {
	f := field(t, nyx.FieldBaryonDensity)
	e := engine(t, Config{PartitionDim: 16, Workers: 1, Codec: codec.ZFP})
	cal, err := e.Calibrate(context.Background(), f)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := e.Plan(context.Background(), f, cal, PlanOptions{AvgEB: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.CompressAdaptive(context.Background(), f, plan); err != nil {
		t.Fatal(err) // warm the scratch pool
	}
	parts := len(plan.EBs)
	allocs := testing.AllocsPerRun(3, func() {
		if _, err := e.CompressAdaptive(context.Background(), f, plan); err != nil {
			t.Fatal(err)
		}
	})
	if limit := float64(16*parts + 32); allocs > limit {
		t.Errorf("steady-state zfp CompressAdaptive: %.0f allocs for %d partitions (limit %.0f)",
			allocs, parts, limit)
	}
}
