// Package foresight is the evaluation harness of the reproduction,
// modeled on VizAly-Foresight — the toolkit the paper uses to evaluate,
// analyze, and compare lossy compressor configurations on cosmology data
// (Sec. 4.1). It evaluates compressed fields against the original with both
// general-purpose metrics (PSNR, MSE, max error) and the analysis-aware
// metrics the paper cares about (power-spectrum distortion, halo-catalog
// distortion), sweeps configurations, and implements the paper's
// "traditional method": an empirical trial-and-error search for a single
// static error bound.
package foresight

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/halo"
	"repro/internal/spectrum"
	"repro/internal/stats"
)

// Metrics is one evaluation of a compressed field against its original.
type Metrics struct {
	Field string
	// EB is the static error bound, or the average bound for adaptive
	// configurations.
	EB       float64
	Adaptive bool

	Ratio   float64
	BitRate float64

	PSNR      float64
	MSE       float64
	MaxAbsErr float64

	// SpectrumMaxDev is max |P'(k)/P(k) − 1| for 0 < k < KMax.
	SpectrumMaxDev float64
	SpectrumOK     bool

	// Halo metrics are populated only when the evaluator has a halo
	// configuration (density fields).
	HaloEvaluated bool
	HaloMassRMSE  float64
	HaloCountDiff int
	HaloOK        bool

	CompressSeconds   float64
	DecompressSeconds float64
}

// QualityOK reports whether every evaluated analysis metric passed.
func (m *Metrics) QualityOK() bool {
	if !m.SpectrumOK {
		return false
	}
	if m.HaloEvaluated && !m.HaloOK {
		return false
	}
	return true
}

// Evaluator computes metrics for one field kind.
type Evaluator struct {
	Engine *core.Engine
	// SpectrumTol and KMax define the power-spectrum acceptance band
	// (defaults 0.01 and 10, the paper's criterion).
	SpectrumTol float64
	KMax        float64
	// Halo enables halo-catalog evaluation with the given finder config.
	Halo *halo.Config
	// HaloTol is the admissible halo-mass-ratio RMSE (default 0.01).
	HaloTol float64
	// MatchDist is the halo matching radius in cells (default 2).
	MatchDist float64
	// Workers bounds FFT parallelism.
	Workers int

	// refSpectrum and refCatalog are computed lazily per original field.
	refField    *grid.Field3D
	refSpectrum *spectrum.Spectrum
	refCatalog  *halo.Catalog
}

func (ev *Evaluator) withDefaults() {
	if ev.SpectrumTol == 0 {
		ev.SpectrumTol = 0.01
	}
	if ev.KMax == 0 {
		ev.KMax = 10
	}
	if ev.HaloTol == 0 {
		ev.HaloTol = 0.01
	}
	if ev.MatchDist == 0 {
		ev.MatchDist = 2
	}
}

// prepare caches the original field's spectrum and catalog.
func (ev *Evaluator) prepare(f *grid.Field3D) error {
	ev.withDefaults()
	if ev.refField == f && ev.refSpectrum != nil {
		return nil
	}
	sp, err := spectrum.Compute(f, spectrum.Options{Workers: ev.Workers})
	if err != nil {
		return err
	}
	ev.refSpectrum = sp
	ev.refCatalog = nil
	if ev.Halo != nil {
		cat, err := halo.Find(f, *ev.Halo)
		if err != nil {
			return err
		}
		ev.refCatalog = cat
	}
	ev.refField = f
	return nil
}

// Evaluate computes the full metric set for a compressed field.
// Cancellation is checked between decompression partitions.
func (ev *Evaluator) Evaluate(ctx context.Context, name string, f *grid.Field3D, cf *core.CompressedField) (*Metrics, error) {
	if err := ev.prepare(f); err != nil {
		return nil, err
	}
	t0 := time.Now()
	recon, err := cf.Decompress(ctx)
	if err != nil {
		return nil, err
	}
	decompSec := time.Since(t0).Seconds()

	m := &Metrics{
		Field:             name,
		Ratio:             cf.Ratio(),
		BitRate:           cf.BitRate(),
		DecompressSeconds: decompSec,
	}
	ebs := cf.PartitionEBs()
	m.EB = stats.MeanOf(ebs)
	for _, eb := range ebs {
		if math.Abs(eb-m.EB) > 1e-12*m.EB {
			m.Adaptive = true
			break
		}
	}

	m.MSE, err = stats.MSE(f.Data, recon.Data)
	if err != nil {
		return nil, err
	}
	m.PSNR, _ = stats.PSNR(f.Data, recon.Data)
	m.MaxAbsErr, _ = stats.MaxAbsError(f.Data, recon.Data)

	sp, err := spectrum.Compute(recon, spectrum.Options{Workers: ev.Workers})
	if err != nil {
		return nil, err
	}
	m.SpectrumMaxDev, err = spectrum.MaxDeviation(ev.refSpectrum, sp, ev.KMax)
	if err != nil {
		return nil, err
	}
	m.SpectrumOK = m.SpectrumMaxDev <= ev.SpectrumTol

	if ev.refCatalog != nil {
		cat, err := halo.Find(recon, *ev.Halo)
		if err != nil {
			return nil, err
		}
		res := halo.Match(ev.refCatalog, cat, ev.MatchDist, f.Nx, f.Ny, f.Nz)
		m.HaloEvaluated = true
		m.HaloMassRMSE = res.MassRatioRMSE
		m.HaloCountDiff = cat.Count() - ev.refCatalog.Count()
		m.HaloOK = res.MassRatioRMSE <= ev.HaloTol
	}
	return m, nil
}

// EvaluateStatic compresses f at a static bound and evaluates it.
func (ev *Evaluator) EvaluateStatic(ctx context.Context, name string, f *grid.Field3D, eb float64) (*Metrics, error) {
	t0 := time.Now()
	cf, err := ev.Engine.CompressStatic(ctx, f, eb)
	if err != nil {
		return nil, err
	}
	compSec := time.Since(t0).Seconds()
	m, err := ev.Evaluate(ctx, name, f, cf)
	if err != nil {
		return nil, err
	}
	m.CompressSeconds = compSec
	return m, nil
}

// Sweep evaluates a list of static bounds (the broad-spectrum analysis the
// paper attributes to Foresight).
func (ev *Evaluator) Sweep(ctx context.Context, name string, f *grid.Field3D, ebs []float64) ([]Metrics, error) {
	if len(ebs) == 0 {
		return nil, errors.New("foresight: empty sweep")
	}
	out := make([]Metrics, 0, len(ebs))
	for _, eb := range ebs {
		m, err := ev.EvaluateStatic(ctx, name, f, eb)
		if err != nil {
			return nil, fmt.Errorf("foresight: eb %g: %w", eb, err)
		}
		out = append(out, *m)
	}
	return out, nil
}

// TrialAndErrorResult is the outcome of the traditional baseline search.
type TrialAndErrorResult struct {
	// ChosenEB is the bound the traditional user would deploy.
	ChosenEB float64
	// BestPassingEB is the largest tested bound that met every quality
	// constraint on the tested snapshot.
	BestPassingEB float64
	// Evaluations lists every (eb, metrics) trial, ascending in eb.
	Evaluations []Metrics
	// Trials is the number of compress+analyze rounds spent.
	Trials int
}

// TrialAndError implements the paper's traditional method: sweep a
// geometric grid of static error bounds, find the largest one whose
// post-hoc analysis passes on this snapshot, and step back safetyNotches
// grid points. The safety margin models what Sec. 4.2 describes: "users
// usually choose a relatively lower error-bound ... based on empirical
// studies" because one tested snapshot cannot guarantee the quality of
// every future snapshot. safetyNotches = 0 yields the oracle static bound.
func (ev *Evaluator) TrialAndError(ctx context.Context, name string, f *grid.Field3D, ebs []float64, safetyNotches int) (*TrialAndErrorResult, error) {
	if len(ebs) == 0 {
		return nil, errors.New("foresight: empty candidate grid")
	}
	if safetyNotches < 0 {
		return nil, errors.New("foresight: negative safety margin")
	}
	sorted := append([]float64(nil), ebs...)
	sort.Float64s(sorted)
	res := &TrialAndErrorResult{}
	bestIdx := -1
	for i, eb := range sorted {
		m, err := ev.EvaluateStatic(ctx, name, f, eb)
		if err != nil {
			return nil, err
		}
		res.Evaluations = append(res.Evaluations, *m)
		res.Trials++
		if m.QualityOK() {
			bestIdx = i
		} else if bestIdx >= 0 {
			// Quality is monotone in eb; once we pass the knee there is
			// no point testing even larger bounds.
			break
		}
	}
	if bestIdx < 0 {
		return nil, fmt.Errorf("foresight: no candidate bound met the quality target (tightest %g)", sorted[0])
	}
	res.BestPassingEB = sorted[bestIdx]
	chosen := bestIdx - safetyNotches
	if chosen < 0 {
		chosen = 0
	}
	res.ChosenEB = sorted[chosen]
	return res, nil
}

// GeometricGrid builds an n-point geometric grid from lo to hi inclusive.
func GeometricGrid(lo, hi float64, n int) ([]float64, error) {
	if lo <= 0 || hi <= lo || n < 2 {
		return nil, fmt.Errorf("foresight: invalid grid (%g, %g, %d)", lo, hi, n)
	}
	out := make([]float64, n)
	ratio := math.Pow(hi/lo, 1/float64(n-1))
	v := lo
	for i := range out {
		out[i] = v
		v *= ratio
	}
	out[n-1] = hi
	return out, nil
}

// WriteCSV renders metrics as CSV for external plotting.
func WriteCSV(w io.Writer, rows []Metrics) error {
	if _, err := fmt.Fprintln(w, "field,eb,adaptive,ratio,bitrate,psnr,mse,max_abs_err,spectrum_max_dev,spectrum_ok,halo_evaluated,halo_mass_rmse,halo_count_diff,halo_ok"); err != nil {
		return err
	}
	for _, m := range rows {
		if _, err := fmt.Fprintf(w, "%s,%g,%t,%.4f,%.4f,%.2f,%.6g,%.6g,%.6g,%t,%t,%.6g,%d,%t\n",
			m.Field, m.EB, m.Adaptive, m.Ratio, m.BitRate, m.PSNR, m.MSE, m.MaxAbsErr,
			m.SpectrumMaxDev, m.SpectrumOK, m.HaloEvaluated, m.HaloMassRMSE,
			m.HaloCountDiff, m.HaloOK); err != nil {
			return err
		}
	}
	return nil
}
