package sz

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"repro/internal/grid"
	"repro/internal/huffman"
)

// Compressed holds one compressed 3-D brick plus the metadata needed to
// reconstruct it and to account for its storage cost.
type Compressed struct {
	Nx, Ny, Nz int
	Opt        Options

	// codeStream is the Huffman-coded, RLE-expanded quantization stream.
	codeStream []byte
	// outliers are the verbatim values (ABS mode) or lattice coordinates
	// (pre-quantized mode) of unpredictable points, in encounter order.
	outliers []byte
	// logShift is the PW_REL transform offset (0 in ABS mode).
	logShift float64
}

// N returns the number of cells in the brick.
func (c *Compressed) N() int { return c.Nx * c.Ny * c.Nz }

// CompressedSize returns the payload size in bytes, including the stream
// header written by Bytes. This is the figure used for compression ratios.
func (c *Compressed) CompressedSize() int {
	return headerSize + len(c.codeStream) + len(c.outliers)
}

// BitRate returns bits per value (the paper's "bit rate"; raw fp32 is 32).
func (c *Compressed) BitRate() float64 {
	return float64(c.CompressedSize()) * 8 / float64(c.N())
}

// Ratio returns the compression ratio relative to fp32 storage.
func (c *Compressed) Ratio() float64 {
	return float64(4*c.N()) / float64(c.CompressedSize())
}

// Scratch holds the O(n) working state of one compression call — the
// prediction, quantization, outlier, RLE, and entropy-stage buffers that
// are dead once the stream is built. The hot in situ path compresses
// thousands of equally sized partitions, so reusing one Scratch per worker
// removes almost all transient allocation from the pipeline. A Scratch must
// not be used concurrently; the zero value is ready to use.
type Scratch struct {
	symbols  []int
	recon    []float32
	logged   []float32
	lattice  []int64
	tokens   []int
	outliers []byte
	verbatim []bool
	huff     huffman.Scratch
}

func (s *Scratch) symbolBuf(n int) []int {
	if cap(s.symbols) < n {
		s.symbols = make([]int, n)
	}
	return s.symbols[:n]
}

func (s *Scratch) reconBuf(n int) []float32 {
	if cap(s.recon) < n {
		s.recon = make([]float32, n)
	}
	return s.recon[:n]
}

func (s *Scratch) loggedBuf(n int) []float32 {
	if cap(s.logged) < n {
		s.logged = make([]float32, n)
	}
	return s.logged[:n]
}

func (s *Scratch) latticeBuf(n int) []int64 {
	if cap(s.lattice) < n {
		s.lattice = make([]int64, n)
	}
	return s.lattice[:n]
}

// verbatimBuf returns the reusable outlier-position flags, cleared. Unlike
// the lattice (every cell of which is written before it is read), stale
// true flags would survive reuse, so this buffer is zeroed.
func (s *Scratch) verbatimBuf(n int) []bool {
	if cap(s.verbatim) < n {
		s.verbatim = make([]bool, n)
		return s.verbatim[:n]
	}
	v := s.verbatim[:n]
	clear(v)
	return v
}

// outlierBuf returns the reusable outlier accumulator, reset to length 0.
// The buffer keeps its high-water capacity across calls, so a heavy-outlier
// partition grows it once instead of regrowing it every call.
func (s *Scratch) outlierBuf() []byte {
	if s.outliers == nil {
		s.outliers = make([]byte, 0, 64)
	}
	return s.outliers[:0]
}

// scratchPool backs the scratchless convenience entry points (Compress,
// CompressSlice, DecompressSlice with no caller-owned Scratch), so even
// one-shot callers run allocation-flat in steady state.
var scratchPool = sync.Pool{New: func() any { return &Scratch{} }}

// Compress compresses a field under the given options.
func Compress(f *grid.Field3D, opt Options) (*Compressed, error) {
	return CompressSlice(f.Data, f.Nx, f.Ny, f.Nz, opt)
}

// CompressSlice compresses a flat x-fastest brick of dimensions nx×ny×nz.
func CompressSlice(data []float32, nx, ny, nz int, opt Options) (*Compressed, error) {
	return CompressSliceWith(data, nx, ny, nz, opt, nil)
}

// CompressSliceWith is CompressSlice with caller-owned scratch buffers; a
// nil scratch borrows pooled working state. The input and the scratch are
// only retained during the call.
func CompressSliceWith(data []float32, nx, ny, nz int, opt Options, s *Scratch) (*Compressed, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	if len(data) != nx*ny*nz || len(data) == 0 {
		return nil, fmt.Errorf("sz: data length %d != %d×%d×%d", len(data), nx, ny, nz)
	}
	if s == nil {
		ps := scratchPool.Get().(*Scratch)
		defer scratchPool.Put(ps)
		s = ps
	}

	work := data
	var logShift float64
	if opt.Mode == PWREL {
		var err error
		work, logShift, err = logTransform(data, s)
		if err != nil {
			return nil, err
		}
	}

	var symbols []int
	eb := effectiveABSBound(opt)
	if opt.QuantizeBeforePredict {
		symbols = quantizeThenPredict(work, nx, ny, nz, eb, opt, s)
	} else {
		symbols = predictThenQuantize(work, nx, ny, nz, eb, opt, s)
	}
	// The outlier accumulator is scratch-owned; the Compressed brick
	// outlives the call, so it keeps an exact-size copy.
	var outliers []byte
	if len(s.outliers) > 0 {
		outliers = make([]byte, len(s.outliers))
		copy(outliers, s.outliers)
	}

	radius := opt.radius()
	runBase := 2 * radius
	// The token stream is never longer than the symbol stream (runs only
	// shrink it); sizing the buffer up front avoids append regrowth on the
	// first use of a scratch.
	if cap(s.tokens) < len(symbols) {
		s.tokens = make([]int, 0, len(symbols))
	}
	s.tokens = rleEncodeInto(s.tokens, symbols, radius, runBase)
	stream, err := huffman.CompressWith(s.tokens, &s.huff)
	if err != nil {
		return nil, fmt.Errorf("sz: entropy coding: %w", err)
	}
	return &Compressed{
		Nx: nx, Ny: ny, Nz: nz,
		Opt:        opt,
		codeStream: stream,
		outliers:   outliers,
		logShift:   logShift,
	}, nil
}

// effectiveABSBound maps the user error bound to the absolute bound applied
// in (possibly transformed) space. For PW_REL the log transform turns the
// relative bound r into an absolute bound on ln(x): bounding ln-space error
// by ln(1+r) guarantees x̂/x ∈ [1/(1+r), 1+r] ⊂ [1−r, 1+r].
func effectiveABSBound(opt Options) float64 {
	if opt.Mode == PWREL {
		return math.Log(1 + opt.ErrorBound)
	}
	return opt.ErrorBound
}

// errPositiveOnly is returned by PW_REL compression on non-positive data.
var errPositiveOnly = errors.New("sz: PW_REL mode requires strictly positive data")

// logTransform maps strictly positive data to ln(x). The shift is reserved
// for future signed support and is currently always 0.
func logTransform(data []float32, s *Scratch) ([]float32, float64, error) {
	out := s.loggedBuf(len(data))
	for i, v := range data {
		if v <= 0 {
			return nil, 0, errPositiveOnly
		}
		out[i] = float32(math.Log(float64(v)))
	}
	return out, 0, nil
}

// predictThenQuantize is the CPU-SZ formulation: predict from already
// reconstructed neighbours, quantize the residual in units of 2·eb, verify
// the bound, and fall back to a verbatim outlier when quantization cannot
// honour it. Symbol layout: 0 = outlier; [1, 2·radius) = code + radius.
// Outliers accumulate in s.outliers.
//
// The brick is walked as boundary planes plus a branch-free interior: for
// cells with x, y, z all > 0 every causal neighbour exists, so the Lorenzo
// stencil reads seven precomputed flat offsets with no existence tests.
// Boundary cells (~3/dim of a 64³ brick) go through the generic predictor,
// which also keeps their missing-neighbour float semantics bit-identical.
func predictThenQuantize(data []float32, nx, ny, nz int, eb float64, opt Options, s *Scratch) []int {
	n := len(data)
	radius := opt.radius()
	recon := s.reconBuf(n)
	symbols := s.symbolBuf(n)
	outliers := s.outlierBuf()
	twoEB := 2 * eb

	cell := func(x, y, z, idx int) {
		pred := predict(recon, nx, ny, x, y, z, idx, opt.Predictor)
		v := float64(data[idx])
		diff := v - pred
		q := int(math.Floor(diff/twoEB + 0.5))
		if q > -radius && q < radius {
			dec := pred + twoEB*float64(q)
			// Float rounding can push the reconstruction just past the
			// bound; verify like SZ does.
			if math.Abs(float64(float32(dec))-v) <= eb {
				symbols[idx] = q + radius
				recon[idx] = float32(dec)
				return
			}
		}
		symbols[idx] = 0
		outliers = appendFloat32(outliers, data[idx])
		recon[idx] = data[idx]
	}

	if opt.Predictor != Lorenzo3D {
		idx := 0
		for z := 0; z < nz; z++ {
			for y := 0; y < ny; y++ {
				for x := 0; x < nx; x++ {
					cell(x, y, z, idx)
					idx++
				}
			}
		}
		s.outliers = outliers
		return symbols
	}

	nxny := nx * ny
	idx := 0
	for y := 0; y < ny; y++ { // z == 0 plane
		for x := 0; x < nx; x++ {
			cell(x, y, 0, idx)
			idx++
		}
	}
	for z := 1; z < nz; z++ {
		for x := 0; x < nx; x++ { // y == 0 row
			cell(x, 0, z, idx)
			idx++
		}
		for y := 1; y < ny; y++ {
			cell(0, y, z, idx) // x == 0 cell
			rowStart := idx
			idx += nx
			// Row views over the current row and its three causal
			// neighbour rows: same-length slices let the compiler drop the
			// bounds checks on the seven stencil reads.
			cur := recon[rowStart : rowStart+nx]
			py := recon[rowStart-nx : rowStart-nx+nx]
			pz := recon[rowStart-nxny : rowStart-nxny+nx]
			pyz := recon[rowStart-nx-nxny : rowStart-nx-nxny+nx]
			drow := data[rowStart : rowStart+nx]
			srow := symbols[rowStart : rowStart+nx]
			// prev carries float64(cur[x-1]) across iterations so the
			// loop-carried dependency skips the store/load/convert of the
			// just-written neighbour.
			prev := float64(cur[0])
			for x := 1; x < nx; x++ {
				fy := float64(py[x])
				fz := float64(pz[x])
				fxy := float64(py[x-1])
				fxz := float64(pz[x-1])
				fyz := float64(pyz[x])
				fxyz := float64(pyz[x-1])
				pred := prev + fy + fz - fxy - fxz - fyz + fxyz
				v := float64(drow[x])
				q := int(math.Floor((v-pred)/twoEB + 0.5))
				if q > -radius && q < radius {
					dec := pred + twoEB*float64(q)
					decF := float32(dec)
					decR := float64(decF)
					if math.Abs(decR-v) <= eb {
						srow[x] = q + radius
						cur[x] = decF
						prev = decR
						continue
					}
				}
				srow[x] = 0
				outliers = appendFloat32(outliers, drow[x])
				cur[x] = drow[x]
				prev = float64(drow[x])
			}
		}
	}
	s.outliers = outliers
	return symbols
}

// quantizeThenPredict is the GPU-SZ/cuSZ formulation: values are first
// snapped to the 2·eb lattice, then Lorenzo runs on the lattice integers.
// Outliers store the verbatim fp32 value (accumulated in s.outliers); the
// decoder re-derives the lattice coordinate from it, so encoder and decoder
// lattices agree bit-exactly. A point also becomes an outlier when fp32
// rounding of the lattice reconstruction would breach the bound, keeping
// the error-bound guarantee strict.
//
// The loop is split like predictThenQuantize: the interior runs the integer
// Lorenzo stencil branch-free over precomputed flat offsets.
func quantizeThenPredict(data []float32, nx, ny, nz int, eb float64, opt Options, s *Scratch) []int {
	n := len(data)
	radius := opt.radius()
	twoEB := 2 * eb
	lattice := s.latticeBuf(n)
	for i, v := range data {
		lattice[i] = int64(math.Floor(float64(v)/twoEB + 0.5))
	}
	symbols := s.symbolBuf(n)
	outliers := s.outlierBuf()

	cell := func(x, y, z, idx int) {
		pred := predictInt(lattice, nx, ny, x, y, z)
		d := lattice[idx] - pred
		inRange := d > int64(-radius) && d < int64(radius)
		exact := math.Abs(float64(float32(twoEB*float64(lattice[idx])))-
			float64(data[idx])) <= eb
		if inRange && exact {
			symbols[idx] = int(d) + radius
		} else {
			symbols[idx] = 0
			outliers = appendFloat32(outliers, data[idx])
		}
	}

	nxny := nx * ny
	idx := 0
	for y := 0; y < ny; y++ { // z == 0 plane
		for x := 0; x < nx; x++ {
			cell(x, y, 0, idx)
			idx++
		}
	}
	for z := 1; z < nz; z++ {
		for x := 0; x < nx; x++ { // y == 0 row
			cell(x, 0, z, idx)
			idx++
		}
		for y := 1; y < ny; y++ {
			cell(0, y, z, idx) // x == 0 cell
			rowStart := idx
			idx += nx
			cur := lattice[rowStart : rowStart+nx]
			ly := lattice[rowStart-nx : rowStart-nx+nx]
			lz := lattice[rowStart-nxny : rowStart-nxny+nx]
			lyz := lattice[rowStart-nx-nxny : rowStart-nx-nxny+nx]
			drow := data[rowStart : rowStart+nx]
			srow := symbols[rowStart : rowStart+nx]
			for x := 1; x < nx; x++ {
				pred := cur[x-1] + ly[x] + lz[x] - ly[x-1] - lz[x-1] - lyz[x] + lyz[x-1]
				d := cur[x] - pred // lattice is precomputed; no carried store here
				inRange := d > int64(-radius) && d < int64(radius)
				exact := math.Abs(float64(float32(twoEB*float64(cur[x])))-
					float64(drow[x])) <= eb
				if inRange && exact {
					srow[x] = int(d) + radius
				} else {
					srow[x] = 0
					outliers = appendFloat32(outliers, drow[x])
				}
			}
		}
	}
	s.outliers = outliers
	return symbols
}

// predict computes the causal prediction for cell (x,y,z) from the
// reconstructed buffer.
func predict(recon []float32, nx, ny int, x, y, z, idx int, p Predictor) float64 {
	// Causal neighbour offsets in the flat buffer.
	var fx, fy, fz, fxy, fxz, fyz, fxyz float64
	hasX, hasY, hasZ := x > 0, y > 0, z > 0
	if hasX {
		fx = float64(recon[idx-1])
	}
	if hasY {
		fy = float64(recon[idx-nx])
	}
	if hasZ {
		fz = float64(recon[idx-nx*ny])
	}
	if p == MeanNeighbor {
		var sum float64
		var cnt int
		if hasX {
			sum += fx
			cnt++
		}
		if hasY {
			sum += fy
			cnt++
		}
		if hasZ {
			sum += fz
			cnt++
		}
		if cnt == 0 {
			return 0
		}
		return sum / float64(cnt)
	}
	if hasX && hasY {
		fxy = float64(recon[idx-1-nx])
	}
	if hasX && hasZ {
		fxz = float64(recon[idx-1-nx*ny])
	}
	if hasY && hasZ {
		fyz = float64(recon[idx-nx-nx*ny])
	}
	if hasX && hasY && hasZ {
		fxyz = float64(recon[idx-1-nx-nx*ny])
	}
	// First-order 3-D Lorenzo: missing neighbours contribute 0, which
	// makes boundary planes degrade gracefully to 2-D/1-D Lorenzo.
	return fx + fy + fz - fxy - fxz - fyz + fxyz
}

// predictInt is the Lorenzo predictor on the integer lattice.
func predictInt(lat []int64, nx, ny int, x, y, z int) int64 {
	idx := (z*ny+y)*nx + x
	var fx, fy, fz, fxy, fxz, fyz, fxyz int64
	hasX, hasY, hasZ := x > 0, y > 0, z > 0
	if hasX {
		fx = lat[idx-1]
	}
	if hasY {
		fy = lat[idx-nx]
	}
	if hasZ {
		fz = lat[idx-nx*ny]
	}
	if hasX && hasY {
		fxy = lat[idx-1-nx]
	}
	if hasX && hasZ {
		fxz = lat[idx-1-nx*ny]
	}
	if hasY && hasZ {
		fyz = lat[idx-nx-nx*ny]
	}
	if hasX && hasY && hasZ {
		fxyz = lat[idx-1-nx-nx*ny]
	}
	return fx + fy + fz - fxy - fxz - fyz + fxyz
}

func appendFloat32(buf []byte, v float32) []byte {
	b := math.Float32bits(v)
	return append(buf, byte(b), byte(b>>8), byte(b>>16), byte(b>>24))
}
