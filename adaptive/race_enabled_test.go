//go:build race

package adaptive_test

// raceEnabled reports whether the race detector is instrumenting this
// build; its runtime perturbs allocation counts, so exact allocs/op
// assertions are skipped under -race (the non-race CI path runs them).
const raceEnabled = true
