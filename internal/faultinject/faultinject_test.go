package faultinject

import (
	"bytes"
	"errors"
	"net"
	"testing"
	"time"
)

func TestTornWriterTearsAtExactOffset(t *testing.T) {
	var dst bytes.Buffer
	tw := NewTornWriter(&dst, 10)
	if n, err := tw.Write(make([]byte, 7)); n != 7 || err != nil {
		t.Fatalf("write below tear: n=%d err=%v", n, err)
	}
	n, err := tw.Write(make([]byte, 7))
	if n != 3 {
		t.Fatalf("tearing write passed %d bytes, want 3", n)
	}
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("tear error = %v, want ErrInjected", err)
	}
	if dst.Len() != 10 {
		t.Fatalf("destination holds %d bytes, want 10", dst.Len())
	}
	if _, err := tw.Write([]byte{1}); !errors.Is(err, ErrInjected) {
		t.Fatalf("post-tear write error = %v, want ErrInjected", err)
	}
	if !tw.Torn() || tw.Written() != 10 {
		t.Fatalf("Torn=%v Written=%d, want true/10", tw.Torn(), tw.Written())
	}
}

func TestPlanIsDeterministic(t *testing.T) {
	a, b := NewPlan(42), NewPlan(42)
	for i := 0; i < 100; i++ {
		if x, y := a.Intn(1000), b.Intn(1000); x != y {
			t.Fatalf("draw %d diverged: %d vs %d", i, x, y)
		}
	}
	var d1, d2 bytes.Buffer
	t1 := NewPlan(7).TornWriterWithin(&d1, 16, 256)
	t2 := NewPlan(7).TornWriterWithin(&d2, 16, 256)
	t1.Write(make([]byte, 512))
	t2.Write(make([]byte, 512))
	if t1.Written() != t2.Written() {
		t.Fatalf("same seed tore at %d vs %d bytes", t1.Written(), t2.Written())
	}
	if t1.Written() < 16 || t1.Written() >= 256 {
		t.Fatalf("tear offset %d outside [16,256)", t1.Written())
	}
}

func TestConnResetAfterBytes(t *testing.T) {
	client, server := net.Pipe()
	defer server.Close()
	fc := WrapConn(client, ConnFaults{ResetAfterBytes: 8})
	go func() {
		buf := make([]byte, 64)
		for {
			if _, err := server.Read(buf); err != nil {
				return
			}
		}
	}()
	if _, err := fc.Write(make([]byte, 8)); !errors.Is(err, ErrInjected) {
		t.Fatalf("write crossing reset budget: err=%v, want ErrInjected", err)
	}
	if _, err := fc.Write([]byte{1}); !errors.Is(err, ErrInjected) {
		t.Fatalf("write after reset: err=%v, want ErrInjected", err)
	}
	if _, err := fc.Read(make([]byte, 1)); !errors.Is(err, ErrInjected) {
		t.Fatalf("read after reset: err=%v, want ErrInjected", err)
	}
}

func TestClockSleepAdvancesWithoutWaiting(t *testing.T) {
	c := NewClock()
	t0 := c.Now()
	start := time.Now()
	c.Sleep(time.Hour)
	if real := time.Since(start); real > time.Second {
		t.Fatalf("fake Sleep took %v of real time", real)
	}
	if got := c.Now().Sub(t0); got != time.Hour {
		t.Fatalf("clock advanced %v, want 1h", got)
	}
	c.Advance(time.Minute)
	if got := c.Now().Sub(t0); got != time.Hour+time.Minute {
		t.Fatalf("clock at +%v, want 1h1m", got)
	}
	if s := c.Sleeps(); len(s) != 1 || s[0] != time.Hour {
		t.Fatalf("recorded sleeps = %v", s)
	}
}

func TestPanicScheduleFiresOnScheduledCall(t *testing.T) {
	ps := PanicAt(3)
	mustNotPanic := func() {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("unscheduled call panicked: %v", r)
			}
		}()
		ps.Check()
	}
	mustNotPanic()
	mustNotPanic()
	func() {
		defer func() {
			r := recover()
			if r == nil {
				t.Fatal("scheduled call did not panic")
			}
			err, ok := r.(error)
			if !ok || !errors.Is(err, ErrInjected) {
				t.Fatalf("panic value %v does not wrap ErrInjected", r)
			}
		}()
		ps.Check()
	}()
	if ps.Calls() != 3 {
		t.Fatalf("Calls = %d, want 3", ps.Calls())
	}
}
