package model

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/stats"
)

// Rate model (paper Eq. 15): per-partition bit rate is a power law in the
// error bound,
//
//	b_m = C_m · eb^c,
//
// with one exponent c shared across partitions, fields, and snapshots, and
// a per-partition coefficient C_m predicted from the partition's mean value
// by a logarithmic fit (Fig. 10a):
//
//	C_m ≈ α + β · ln(feature_m).
//
// The feature is the mean of |value| — identical to the paper's plain mean
// for the non-negative density/temperature fields, and well-defined for the
// signed velocity fields where a plain mean can be ≈ 0 or negative.

// RateModel is a calibrated Eq. 15.
type RateModel struct {
	// Exponent is c. It is negative: larger error bounds yield lower bit
	// rates.
	Exponent float64
	// Alpha, Beta parameterize C_m = Alpha + Beta·ln(feature).
	Alpha, Beta float64
	// FitR2 is the R² of the C_m-vs-feature fit (diagnostic only).
	FitR2 float64
	// MinC floors predicted coefficients away from zero so the model
	// never predicts a free lunch.
	MinC float64
}

// Validate checks a calibrated model.
func (m *RateModel) Validate() error {
	if m == nil {
		return errors.New("model: nil rate model")
	}
	if m.Exponent >= 0 {
		return fmt.Errorf("model: rate exponent %v must be negative", m.Exponent)
	}
	if math.IsNaN(m.Alpha) || math.IsNaN(m.Beta) {
		return errors.New("model: NaN coefficients")
	}
	return nil
}

// Cm predicts the rate coefficient of a partition from its feature value.
func (m *RateModel) Cm(feature float64) float64 {
	if feature <= 0 {
		feature = 1e-30
	}
	c := m.Alpha + m.Beta*math.Log(feature)
	if c < m.MinC {
		c = m.MinC
	}
	return c
}

// BitRate predicts a partition's bit rate at the given error bound.
func (m *RateModel) BitRate(feature, eb float64) float64 {
	if eb <= 0 {
		return math.Inf(1)
	}
	return m.Cm(feature) * math.Pow(eb, m.Exponent)
}

// DatasetBitRate predicts the dataset bit rate as the equal-weight average
// of per-partition rates (Eq. 15's outer sum; partitions are equal-sized).
func (m *RateModel) DatasetBitRate(features, ebs []float64) (float64, error) {
	if len(features) != len(ebs) {
		return 0, errors.New("model: feature and error-bound lists differ in length")
	}
	if len(features) == 0 {
		return 0, errors.New("model: no partitions")
	}
	var sum float64
	for i := range features {
		sum += m.BitRate(features[i], ebs[i])
	}
	return sum / float64(len(features)), nil
}

// Curve is one partition's measured bit-rate/error-bound samples, used for
// calibration. Feature is the partition's predictor value (mean |value|).
type Curve struct {
	Feature  float64
	EBs      []float64
	BitRates []float64
}

// Calibrate fits a RateModel from sampled curves:
//
//  1. fit a per-curve power law b = C·eb^c in log-log space;
//  2. share the exponent: c* = median of per-curve exponents (the paper
//     observes the exponent is common across partitions/fields/snapshots);
//  3. re-fit each C_m under the shared exponent (closed form);
//  4. logarithmic fit C_m against the curve features.
func Calibrate(curves []Curve) (*RateModel, error) {
	if len(curves) < 2 {
		return nil, errors.New("model: need at least two curves to calibrate")
	}
	informative := make([]Curve, 0, len(curves))
	exponents := make([]float64, 0, len(curves))
	for i, cu := range curves {
		if len(cu.EBs) != len(cu.BitRates) || len(cu.EBs) < 2 {
			return nil, fmt.Errorf("model: curve %d has %d/%d samples", i, len(cu.EBs), len(cu.BitRates))
		}
		// Perfectly smooth partitions sit at the compressor's fixed floor
		// (header + run tokens) where the bit rate no longer depends on
		// the error bound; such flat curves carry no rate information and
		// would drag the shared exponent toward zero. They are excluded
		// here and covered by the MinC floor instead.
		if isFlatCurve(cu) {
			continue
		}
		_, c, _, err := stats.PowerLawFit(cu.EBs, cu.BitRates)
		if err != nil {
			return nil, fmt.Errorf("model: curve %d: %w", i, err)
		}
		informative = append(informative, cu)
		exponents = append(exponents, c)
	}
	if len(informative) < 2 {
		return nil, errors.New("model: fewer than two informative (non-flat) curves; data too smooth to calibrate")
	}
	curves = informative
	cShared := median(exponents)
	if cShared >= 0 {
		return nil, fmt.Errorf("model: fitted exponent %v not negative; curves are not rate curves", cShared)
	}

	// Closed-form per-curve C under the shared exponent:
	// ln C = mean(ln b − c·ln eb).
	feats := make([]float64, 0, len(curves))
	cms := make([]float64, 0, len(curves))
	for _, cu := range curves {
		var s float64
		var n int
		for j := range cu.EBs {
			if cu.EBs[j] <= 0 || cu.BitRates[j] <= 0 {
				continue
			}
			s += math.Log(cu.BitRates[j]) - cShared*math.Log(cu.EBs[j])
			n++
		}
		if n == 0 {
			continue
		}
		feat := cu.Feature
		if feat <= 0 {
			feat = 1e-30
		}
		feats = append(feats, feat)
		cms = append(cms, math.Exp(s/float64(n)))
	}
	if len(feats) < 2 {
		return nil, errors.New("model: not enough valid curves after filtering")
	}
	alpha, beta, r2, err := stats.LogFit(feats, cms)
	if err != nil {
		return nil, fmt.Errorf("model: C_m fit: %w", err)
	}
	minC := positiveMin(cms) / 4
	return &RateModel{Exponent: cShared, Alpha: alpha, Beta: beta, FitR2: r2, MinC: minC}, nil
}

// ExactCms returns the per-curve coefficients under the model's exponent,
// bypassing the feature fit. Used by the Fig. 10a accuracy experiment and
// the C_m-source ablation.
func (m *RateModel) ExactCms(curves []Curve) []float64 {
	out := make([]float64, len(curves))
	for i, cu := range curves {
		var s float64
		var n int
		for j := range cu.EBs {
			if cu.EBs[j] <= 0 || cu.BitRates[j] <= 0 {
				continue
			}
			s += math.Log(cu.BitRates[j]) - m.Exponent*math.Log(cu.EBs[j])
			n++
		}
		if n > 0 {
			out[i] = math.Exp(s / float64(n))
		}
	}
	return out
}

// isFlatCurve reports whether a curve's bit rate barely responds to the
// error bound (relative span < 10 % and absolute span < 0.05 bits).
func isFlatCurve(cu Curve) bool {
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, b := range cu.BitRates {
		if b < lo {
			lo = b
		}
		if b > hi {
			hi = b
		}
	}
	if hi <= 0 {
		return true
	}
	return hi-lo < 0.05 || hi/math.Max(lo, 1e-12) < 1.1
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	cp := append([]float64(nil), xs...)
	// insertion sort: calibration sets are small
	for i := 1; i < len(cp); i++ {
		for j := i; j > 0 && cp[j] < cp[j-1]; j-- {
			cp[j], cp[j-1] = cp[j-1], cp[j]
		}
	}
	mid := len(cp) / 2
	if len(cp)%2 == 1 {
		return cp[mid]
	}
	return (cp[mid-1] + cp[mid]) / 2
}

func positiveMin(xs []float64) float64 {
	m := math.Inf(1)
	for _, x := range xs {
		if x > 0 && x < m {
			m = x
		}
	}
	if math.IsInf(m, 1) {
		return 0
	}
	return m
}
