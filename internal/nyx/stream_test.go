package nyx

import (
	"io"
	"math"
	"testing"
)

func TestStreamDriftIsReal(t *testing.T) {
	s, err := NewStream(StreamParams{
		Base:   Params{N: 16, Seed: 3, Redshift: 42},
		Steps:  4,
		Fields: []string{FieldBaryonDensity, FieldVelocityX},
	})
	if err != nil {
		t.Fatal(err)
	}
	var densMeans, velMeans []float64
	for {
		snap, err := s.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if len(snap) != 2 {
			t.Fatalf("step has %d fields, want 2", len(snap))
		}
		var dm, vm float64
		for _, v := range snap[FieldBaryonDensity].Data {
			dm += math.Abs(float64(v))
		}
		for _, v := range snap[FieldVelocityX].Data {
			vm += math.Abs(float64(v))
		}
		densMeans = append(densMeans, dm)
		velMeans = append(velMeans, vm)
	}
	if len(densMeans) != 4 || s.Step() != 4 {
		t.Fatalf("stream yielded %d steps (Step()=%d), want 4", len(densMeans), s.Step())
	}
	// The global mean |value| must strictly increase: the drift the
	// pipeline's monitor watches is real, for both field parities.
	for i := 1; i < len(densMeans); i++ {
		if densMeans[i] <= densMeans[i-1] {
			t.Errorf("density mean did not drift at step %d: %v", i, densMeans)
		}
		if velMeans[i] <= velMeans[i-1] {
			t.Errorf("velocity mean did not drift at step %d: %v", i, velMeans)
		}
	}
	// Exhausted stream keeps returning EOF.
	if _, err := s.Next(); err != io.EOF {
		t.Errorf("post-EOF Next returned %v", err)
	}
}

func TestStreamDeterministicAndBasePreserved(t *testing.T) {
	base := genTest(t, Params{N: 16, Seed: 9, Redshift: 42})
	orig := base.Fields[FieldBaryonDensity].Clone()

	run := func() [][]float32 {
		s, err := NewStreamFrom(base.Fields, StreamParams{
			Steps: 3, Fields: []string{FieldBaryonDensity}, Seed: 9,
		})
		if err != nil {
			t.Fatal(err)
		}
		var out [][]float32
		for {
			snap, err := s.Next()
			if err == io.EOF {
				return out
			}
			out = append(out, snap[FieldBaryonDensity].Data)
		}
	}
	a, b := run(), run()
	for step := range a {
		for i := range a[step] {
			if a[step][i] != b[step][i] {
				t.Fatalf("step %d not deterministic at cell %d", step, i)
			}
		}
	}
	// Step 1+ must differ from the base (perturbation happened)...
	same := true
	for i := range a[1] {
		if a[1][i] != orig.Data[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("step 1 is identical to the base field")
	}
	// ...while the base field itself is never mutated.
	for i := range orig.Data {
		if base.Fields[FieldBaryonDensity].Data[i] != orig.Data[i] {
			t.Fatal("stream mutated the base field")
		}
	}
}

func TestStreamParamValidation(t *testing.T) {
	base := genTest(t, Params{N: 16, Seed: 5, Redshift: 42})
	if _, err := NewStreamFrom(base.Fields, StreamParams{Steps: 0}); err == nil {
		t.Error("zero steps accepted")
	}
	if _, err := NewStreamFrom(nil, StreamParams{Steps: 2}); err == nil {
		t.Error("empty base accepted")
	}
	if _, err := NewStreamFrom(base.Fields, StreamParams{
		Steps: 2, Fields: []string{"no_such_field"},
	}); err == nil {
		t.Error("unknown field accepted")
	}
	if _, err := NewStream(StreamParams{Base: Params{N: 1}, Steps: 2}); err == nil {
		t.Error("invalid base params accepted")
	}
}
