package grid

import "fmt"

// Partition identifies one brick of a partitioned field: the sub-volume a
// single MPI rank owns in the simulation. Bricks are axis-aligned,
// half-open boxes [X0, X1) × [Y0, Y1) × [Z0, Z1).
type Partition struct {
	ID         int
	Px, Py, Pz int // brick coordinates within the partition grid
	X0, X1     int
	Y0, Y1     int
	Z0, Z1     int
}

// Dims returns the brick's extent along each axis.
func (p Partition) Dims() (nx, ny, nz int) {
	return p.X1 - p.X0, p.Y1 - p.Y0, p.Z1 - p.Z0
}

// Len returns the number of cells in the brick.
func (p Partition) Len() int {
	nx, ny, nz := p.Dims()
	return nx * ny * nz
}

// String renders the brick bounds.
func (p Partition) String() string {
	return fmt.Sprintf("P%d[%d:%d,%d:%d,%d:%d]", p.ID, p.X0, p.X1, p.Y0, p.Y1, p.Z0, p.Z1)
}

// Partitioner carves a field's index space into a regular grid of bricks.
// The paper's datasets are cut into M equal partitions (e.g. 512³ data into
// 512 bricks of 64³); we additionally support non-divisible shapes by
// letting the last brick along an axis absorb the remainder, so the
// partitioning is always exact and non-overlapping.
type Partitioner struct {
	Nx, Ny, Nz int // field dims
	Bx, By, Bz int // brick counts per axis
	parts      []Partition
}

// NewPartitioner builds the partition table for a field of the given
// dimensions cut into bx×by×bz bricks.
func NewPartitioner(nx, ny, nz, bx, by, bz int) (*Partitioner, error) {
	if nx <= 0 || ny <= 0 || nz <= 0 {
		return nil, fmt.Errorf("grid: invalid field dims %dx%dx%d", nx, ny, nz)
	}
	if bx <= 0 || by <= 0 || bz <= 0 {
		return nil, fmt.Errorf("grid: invalid brick counts %dx%dx%d", bx, by, bz)
	}
	if bx > nx || by > ny || bz > nz {
		return nil, fmt.Errorf("grid: more bricks (%d,%d,%d) than cells (%d,%d,%d)",
			bx, by, bz, nx, ny, nz)
	}
	p := &Partitioner{Nx: nx, Ny: ny, Nz: nz, Bx: bx, By: by, Bz: bz}
	p.parts = make([]Partition, 0, bx*by*bz)
	id := 0
	for pz := 0; pz < bz; pz++ {
		for py := 0; py < by; py++ {
			for px := 0; px < bx; px++ {
				part := Partition{
					ID: id, Px: px, Py: py, Pz: pz,
					X0: px * nx / bx, X1: (px + 1) * nx / bx,
					Y0: py * ny / by, Y1: (py + 1) * ny / by,
					Z0: pz * nz / bz, Z1: (pz + 1) * nz / bz,
				}
				p.parts = append(p.parts, part)
				id++
			}
		}
	}
	return p, nil
}

// NewCubePartitioner cuts an n³ field into b³ bricks.
func NewCubePartitioner(n, b int) (*Partitioner, error) {
	return NewPartitioner(n, n, n, b, b, b)
}

// PartitionerForBrickDim cuts an n³ field into bricks of dimension d³
// (the paper parameterizes by partition size: 64³ bricks of 512³ data).
func PartitionerForBrickDim(n, d int) (*Partitioner, error) {
	if d <= 0 || n%d != 0 {
		return nil, fmt.Errorf("grid: brick dim %d does not divide field dim %d", d, n)
	}
	return NewCubePartitioner(n, n/d)
}

// Count returns the number of bricks.
func (p *Partitioner) Count() int { return len(p.parts) }

// Partitions returns the partition table (shared slice; do not mutate).
func (p *Partitioner) Partitions() []Partition { return p.parts }

// Partition returns brick i.
func (p *Partitioner) Partition(i int) Partition { return p.parts[i] }

// Extract copies brick part of field f into a new flat slice, x-fastest.
func Extract(f *Field3D, part Partition) []float32 {
	nx, ny, nz := part.Dims()
	out := make([]float32, 0, nx*ny*nz)
	for z := part.Z0; z < part.Z1; z++ {
		for y := part.Y0; y < part.Y1; y++ {
			row := f.Data[f.Index(part.X0, y, z) : f.Index(part.X0, y, z)+nx]
			out = append(out, row...)
		}
	}
	return out
}

// ExtractInto is Extract with a caller-provided buffer (must have length
// part.Len()); it is the allocation-free path used by the worker pools.
func ExtractInto(dst []float32, f *Field3D, part Partition) {
	nx, _, _ := part.Dims()
	pos := 0
	for z := part.Z0; z < part.Z1; z++ {
		for y := part.Y0; y < part.Y1; y++ {
			base := f.Index(part.X0, y, z)
			copy(dst[pos:pos+nx], f.Data[base:base+nx])
			pos += nx
		}
	}
}

// Insert writes a flat brick back into field f at partition part.
func Insert(f *Field3D, part Partition, data []float32) error {
	if len(data) != part.Len() {
		return fmt.Errorf("grid: brick data length %d != partition size %d", len(data), part.Len())
	}
	nx, _, _ := part.Dims()
	pos := 0
	for z := part.Z0; z < part.Z1; z++ {
		for y := part.Y0; y < part.Y1; y++ {
			base := f.Index(part.X0, y, z)
			copy(f.Data[base:base+nx], data[pos:pos+nx])
			pos += nx
		}
	}
	return nil
}

// BrickField wraps a brick slice as a standalone Field3D sharing storage,
// so the compressor can treat a partition as a small 3-D volume.
func BrickField(part Partition, data []float32) (*Field3D, error) {
	nx, ny, nz := part.Dims()
	if len(data) != nx*ny*nz {
		return nil, fmt.Errorf("grid: brick data length %d != %d×%d×%d", len(data), nx, ny, nz)
	}
	return &Field3D{Nx: nx, Ny: ny, Nz: nz, Data: data}, nil
}
