package huffman

// The naive map-based coder that shipped before the table-driven rewrite,
// retained verbatim as a differential reference: the rewrite must emit
// byte-identical streams (the archive format pins the bits, and the golden
// fixtures in internal/core depend on it) and decode them identically. Only
// the reference encoder is kept — decoding is cross-checked by running the
// production decoder over reference-encoded streams and vice versa.

import (
	"bytes"
	"container/heap"
	"encoding/binary"
	"fmt"
	"math"
	"sort"
	"testing"

	"repro/internal/stats"
)

type refHeapNode struct {
	freq        int64
	order       int // tie-break for determinism
	symbol      int
	left, right *refHeapNode
}

type refNodeHeap []*refHeapNode

func (h refNodeHeap) Len() int { return len(h) }
func (h refNodeHeap) Less(i, j int) bool {
	if h[i].freq != h[j].freq {
		return h[i].freq < h[j].freq
	}
	return h[i].order < h[j].order
}
func (h refNodeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *refNodeHeap) Push(x interface{}) { *h = append(*h, x.(*refHeapNode)) }
func (h *refNodeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

func refCodeLengths(freqs map[int]int64) map[int]int {
	syms := make([]int, 0, len(freqs))
	for s := range freqs {
		syms = append(syms, s)
	}
	sort.Ints(syms)
	if len(syms) == 1 {
		return map[int]int{syms[0]: 1}
	}
	h := make(refNodeHeap, 0, len(syms))
	order := 0
	for _, s := range syms {
		h = append(h, &refHeapNode{freq: freqs[s], order: order, symbol: s})
		order++
	}
	heap.Init(&h)
	for h.Len() > 1 {
		a := heap.Pop(&h).(*refHeapNode)
		b := heap.Pop(&h).(*refHeapNode)
		heap.Push(&h, &refHeapNode{freq: a.freq + b.freq, order: order, symbol: -1, left: a, right: b})
		order++
	}
	root := h[0]
	lengths := make(map[int]int, len(syms))
	var walk func(n *refHeapNode, depth int)
	walk = func(n *refHeapNode, depth int) {
		if n.left == nil && n.right == nil {
			if depth == 0 {
				depth = 1
			}
			lengths[n.symbol] = depth
			return
		}
		walk(n.left, depth+1)
		walk(n.right, depth+1)
	}
	walk(root, 0)
	return lengths
}

func refBoundedCodeLengths(freqs map[int]int64) map[int]int {
	f := freqs
	for {
		lengths := refCodeLengths(f)
		max := 0
		for _, l := range lengths {
			if l > max {
				max = l
			}
		}
		if max <= maxCodeLen {
			return lengths
		}
		g := make(map[int]int64, len(f))
		for s, c := range f {
			nc := c / 2
			if nc < 1 {
				nc = 1
			}
			g[s] = nc
		}
		f = g
	}
}

func refCanonicalCodes(lengths map[int]int) map[int]code {
	type sl struct{ sym, n int }
	list := make([]sl, 0, len(lengths))
	for s, n := range lengths {
		list = append(list, sl{s, n})
	}
	sort.Slice(list, func(i, j int) bool {
		if list[i].n != list[j].n {
			return list[i].n < list[j].n
		}
		return list[i].sym < list[j].sym
	})
	codes := make(map[int]code, len(list))
	var c uint64
	prevLen := 0
	for _, e := range list {
		c <<= uint(e.n - prevLen)
		codes[e.sym] = code{bits: c, n: uint8(e.n)}
		c++
		prevLen = e.n
	}
	return codes
}

// refCompress is the pre-rewrite Compress, byte for byte.
func refCompress(symbols []int) ([]byte, error) {
	if len(symbols) == 0 {
		return nil, ErrEmptyInput
	}
	freqs := make(map[int]int64, 1024)
	for _, s := range symbols {
		if s < 0 {
			return nil, fmt.Errorf("huffman: negative symbol %d", s)
		}
		freqs[s]++
	}
	lengths := refBoundedCodeLengths(freqs)
	codes := refCanonicalCodes(lengths)

	header := make([]byte, 0, 16+5*len(lengths))
	header = binary.AppendUvarint(header, uint64(len(symbols)))
	header = binary.AppendUvarint(header, uint64(len(lengths)))
	syms := make([]int, 0, len(lengths))
	for s := range lengths {
		syms = append(syms, s)
	}
	sort.Ints(syms)
	for _, s := range syms {
		header = binary.AppendUvarint(header, uint64(s))
		header = append(header, byte(lengths[s]))
	}

	w := NewBitWriter(len(symbols) / 2)
	for _, s := range symbols {
		c := codes[s]
		w.WriteBits(c.bits, uint(c.n))
	}
	return append(header, w.Bytes()...), nil
}

// diffStream asserts the production encoder reproduces the reference bytes
// exactly and that both decoders agree on the symbols.
func diffStream(t *testing.T, name string, symbols []int) {
	t.Helper()
	want, err := refCompress(symbols)
	if err != nil {
		t.Fatalf("%s: reference encode: %v", name, err)
	}
	var s Scratch
	got, err := CompressWith(symbols, &s)
	if err != nil {
		t.Fatalf("%s: encode: %v", name, err)
	}
	if !bytes.Equal(got, want) {
		n := 0
		for n < len(got) && n < len(want) && got[n] == want[n] {
			n++
		}
		t.Fatalf("%s: stream diverges from reference at byte %d (%d vs %d bytes total)",
			name, n, len(got), len(want))
	}
	dec, err := Decompress(got)
	if err != nil {
		t.Fatalf("%s: decode: %v", name, err)
	}
	if len(dec) != len(symbols) {
		t.Fatalf("%s: decoded %d symbols, want %d", name, len(dec), len(symbols))
	}
	for i := range symbols {
		if dec[i] != symbols[i] {
			t.Fatalf("%s: symbol %d: got %d want %d", name, i, dec[i], symbols[i])
		}
	}
}

func TestDifferentialSingleSymbol(t *testing.T) {
	diffStream(t, "one", []int{9})
	run := make([]int, 4096)
	for i := range run {
		run[i] = 32768
	}
	diffStream(t, "run", run)
}

func TestDifferentialFullAlphabet(t *testing.T) {
	// Every symbol of a 2¹²-ary alphabet exactly once (flat tree, all
	// lengths equal) and once with a permuted repeat pattern.
	flat := make([]int, 4096)
	for i := range flat {
		flat[i] = i
	}
	diffStream(t, "flat", flat)
	r := stats.NewRNG(21)
	mixed := make([]int, 20000)
	for i := range mixed {
		mixed[i] = r.Intn(4096)
	}
	diffStream(t, "mixed", mixed)
}

func TestDifferentialDeepTree(t *testing.T) {
	// Fibonacci frequencies force depths ≥ maxCodeLen, exercising the
	// bounded-length flattening retry on both coders.
	var symbols []int
	a, b := 1, 1
	for s := 0; s < 72; s++ {
		n := a
		if n > 200000 {
			n = 200000
		}
		for k := 0; k < n; k++ {
			symbols = append(symbols, s)
		}
		a, b = b, a+b
	}
	diffStream(t, "fibonacci", symbols)
}

func TestDifferentialSkewedGaussian(t *testing.T) {
	// SZ-like stream: sharply peaked Gaussian around the center code with
	// sparse far tails, the distribution the first-level LUT is sized for.
	r := stats.NewRNG(22)
	symbols := make([]int, 120000)
	for i := range symbols {
		g := r.NormFloat64()
		switch {
		case math.Abs(g) > 3.5: // rare far outlier
			symbols[i] = 32768 + int(g*4000)
		default:
			symbols[i] = 32768 + int(g*2)
		}
	}
	diffStream(t, "gaussian", symbols)
}

func TestDifferentialRandomStreams(t *testing.T) {
	r := stats.NewRNG(23)
	for trial := 0; trial < 40; trial++ {
		n := 1 + r.Intn(3000)
		alpha := 1 + r.Intn(1<<uint(1+r.Intn(16)))
		symbols := make([]int, n)
		for i := range symbols {
			symbols[i] = r.Intn(alpha)
		}
		diffStream(t, fmt.Sprintf("trial%d(n=%d,alpha=%d)", trial, n, alpha), symbols)
	}
}

func TestDifferentialSparseAlphabet(t *testing.T) {
	// Symbols above denseLimit take the map-backed cold path (hostile or
	// exotic radius settings); the stream must still match the reference.
	symbols := []int{denseLimit + 7, 3, 3, denseLimit + 7, 1 << 28, 3, 0, 1 << 28, 3, 3}
	diffStream(t, "sparse", symbols)
	one := []int{1 << 30}
	diffStream(t, "sparse-single", one)
}

func TestDifferentialScratchReuse(t *testing.T) {
	// One Scratch across wildly different streams must not leak state
	// between calls (dense tables shrink and grow, lengths change).
	var s Scratch
	r := stats.NewRNG(24)
	for trial := 0; trial < 25; trial++ {
		n := 1 + r.Intn(2000)
		symbols := make([]int, n)
		for i := range symbols {
			symbols[i] = r.Intn(1 + trial*97)
		}
		want, err := refCompress(symbols)
		if err != nil {
			t.Fatal(err)
		}
		got, err := CompressWith(symbols, &s)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("trial %d: scratch reuse diverged from reference", trial)
		}
	}
}
