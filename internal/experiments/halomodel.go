package experiments

import (
	"fmt"
	"math"

	"repro/internal/grid"
	"repro/internal/halo"
	"repro/internal/model"
	"repro/internal/nyx"
	"repro/internal/sz"
)

// staticRecon compresses the field at one bound and decompresses it.
func staticRecon(f *grid.Field3D, eb float64) (*grid.Field3D, error) {
	c, err := sz.Compress(f, sz.Options{Mode: sz.ABS, ErrorBound: eb})
	if err != nil {
		return nil, err
	}
	return sz.Decompress(c)
}

// Fig06CandidateCells reproduces Fig. 6: the halo-candidate cell mask
// before and after compression at a deliberately high error bound (10.0),
// where only edge cells change candidacy.
func Fig06CandidateCells(ctx *Context) (*Result, error) {
	f, err := ctx.Field(nyx.FieldBaryonDensity)
	if err != nil {
		return nil, err
	}
	cfg := ctx.HaloConfig()
	recon, err := staticRecon(f, 10.0)
	if err != nil {
		return nil, err
	}
	origN := halo.CandidateCount(f, cfg.BoundaryThreshold)
	reconN := halo.CandidateCount(recon, cfg.BoundaryThreshold)
	added, dropped := 0, 0
	thr := float32(cfg.BoundaryThreshold)
	for i := range f.Data {
		o := f.Data[i] >= thr
		r := recon.Data[i] >= thr
		switch {
		case !o && r:
			added++
		case o && !r:
			dropped++
		}
	}
	res := &Result{
		ID:    "fig06",
		Title: "Halo candidate cells before/after compression (eb=10)",
		Cols:  []string{"quantity", "value"},
	}
	res.AddRow("original candidates", fmt.Sprint(origN))
	res.AddRow("reconstructed candidates", fmt.Sprint(reconN))
	res.AddRow("cells gained candidacy", fmt.Sprint(added))
	res.AddRow("cells lost candidacy", fmt.Sprint(dropped))
	res.Notef("net change %.2f%% — candidacy changes only on halo edges (paper: 'cell candidacy changes slightly on edge areas')",
		100*float64(reconN-origN)/math.Max(1, float64(origN)))
	return res, nil
}

// Fig07HaloMassDistribution reproduces Fig. 7: the halo mass histogram is
// essentially unchanged across error bounds; only the small-halo bins move.
func Fig07HaloMassDistribution(ctx *Context) (*Result, error) {
	f, err := ctx.Field(nyx.FieldBaryonDensity)
	if err != nil {
		return nil, err
	}
	cfg := ctx.HaloConfig()
	orig, err := halo.Find(f, cfg)
	if err != nil {
		return nil, err
	}
	const bins = 8
	edges, origCounts := halo.MassHistogram(orig, bins)
	res := &Result{
		ID:    "fig07",
		Title: "Halo mass distribution vs error bound",
		Cols:  []string{"eb", "halos", "mass_bins(log-spaced counts)"},
	}
	res.AddRow("original", fmt.Sprint(orig.Count()), fmt.Sprint(origCounts))
	for _, eb := range []float64{1e-2, 1e-1, 1, 10} {
		recon, err := staticRecon(f, eb)
		if err != nil {
			return nil, err
		}
		cat, err := halo.Find(recon, cfg)
		if err != nil {
			return nil, err
		}
		counts := make([]int, bins)
		for _, h := range cat.Halos {
			pos := 0
			for pos < bins-1 && h.Mass >= edges[pos+1] {
				pos++
			}
			counts[pos]++
		}
		res.AddRow(fnum(eb), fmt.Sprint(cat.Count()), fmt.Sprint(counts))
	}
	res.Notef("halo count is stable across 4 decades of eb; only low-mass bins fluctuate (paper Fig. 7)")
	return res, nil
}

// Table1MassPerChangedCell reproduces Table 1: tracking one large halo
// across error bounds, the mass difference per changed cell stays near the
// boundary threshold t_boundary.
func Table1MassPerChangedCell(ctx *Context) (*Result, error) {
	f, err := ctx.Field(nyx.FieldBaryonDensity)
	if err != nil {
		return nil, err
	}
	cfg := ctx.HaloConfig()
	orig, err := halo.Find(f, cfg)
	if err != nil {
		return nil, err
	}
	if orig.Count() == 0 {
		return nil, fmt.Errorf("experiments: no halos in reference catalog")
	}
	res := &Result{
		ID:    "table1",
		Title: "Mass difference per changed cell (matched halos)",
		Cols:  []string{"eb", "matched", "cell_diff", "abs_mass_diff", "diff_per_cell"},
	}
	res.AddRow("original", fmt.Sprint(orig.Count()), "-", "-", "-")
	// The paper tracks one 6023-cell halo; the synthetic catalogs at CI
	// scale hold many smaller halos, so the same per-cell quantity is
	// measured across all matched halos (Σ|Δmass| / Σ|Δcells|).
	for _, eb := range []float64{1e-2, 1e-1, 1, 10, 50} {
		recon, err := staticRecon(f, eb)
		if err != nil {
			return nil, err
		}
		cat, err := halo.Find(recon, cfg)
		if err != nil {
			return nil, err
		}
		m := halo.Match(orig, cat, 3.0, f.Nx, f.Ny, f.Nz)
		perCell := "-"
		if m.CellDiff > 0 {
			perCell = fnum(m.TotalAbsMassDiff / float64(m.CellDiff))
		}
		res.AddRow(fnum(eb), fmt.Sprint(m.Matched), fmt.Sprint(m.CellDiff),
			fnum(m.TotalAbsMassDiff), perCell)
	}
	res.Notef("t_boundary = %.4g; once cells start flipping, the mass change per flipped cell sits near it (paper Table 1: ≈88.16)", cfg.BoundaryThreshold)
	return res, nil
}

// Fig08FaultCellEstimate reproduces Fig. 8: the model's fault-cell estimate
// (Eq. 13 with the linear band scaling) against the measured count of cells
// whose candidacy flipped.
func Fig08FaultCellEstimate(ctx *Context) (*Result, error) {
	f, err := ctx.Field(nyx.FieldBaryonDensity)
	if err != nil {
		return nil, err
	}
	cfg := ctx.HaloConfig()
	p, err := ctx.Partitioner()
	if err != nil {
		return nil, err
	}
	const refEB = 1.0
	fts := grid.ExtractFeatures(f, p, grid.FeatureOptions{
		HaloThreshold: cfg.BoundaryThreshold, RefEB: refEB, Workers: ctx.Cfg.Workers,
	})
	res := &Result{
		ID:    "fig08",
		Title: "Changed candidate cells: model estimate vs measured",
		Cols:  []string{"eb", "estimated", "measured", "ratio"},
	}
	thr := float32(cfg.BoundaryThreshold)
	for _, eb := range []float64{0.25, 0.5, 1, 2, 4} {
		var est float64
		for _, ft := range fts {
			est += model.FaultCells(ft.BoundaryCellsAt(eb))
		}
		recon, err := staticRecon(f, eb)
		if err != nil {
			return nil, err
		}
		flipped := 0
		for i := range f.Data {
			if (f.Data[i] >= thr) != (recon.Data[i] >= thr) {
				flipped++
			}
		}
		ratio := math.NaN()
		if flipped > 0 {
			ratio = est / float64(flipped)
		}
		res.AddRow(fnum(eb), fnum(est), fmt.Sprint(flipped), fnum(ratio))
	}
	res.Notef("estimate = Σ_m n_bc(eb)/4 (Eqs. 12–13); measured = cells whose candidacy flipped")
	return res, nil
}
