package zfp

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/grid"
	"repro/internal/parallel"
	"repro/internal/stats"
)

// indexRates spans the ladder and bisection probes the codec adapter
// issues, plus awkward fractional rates.
var indexRates = []float64{0.5, 1, 2, 2.75, 4, 8, 12.25, 16, 31, 32}

// TestIndexedTruncateMatchesDirectCompress is the single-pass rate search's
// core invariant: splicing block prefixes out of the max-rate stream must
// be byte-identical to compressing at the target rate directly.
func TestIndexedTruncateMatchesDirectCompress(t *testing.T) {
	fields := map[string]*grid.Field3D{
		"smooth": smoothField(16, 61),
		"ragged": func() *grid.Field3D {
			r := stats.NewRNG(62)
			f := grid.NewField3D(10, 7, 5)
			for i := range f.Data {
				f.Data[i] = float32(r.NormFloat64() * 1e3)
			}
			return f
		}(),
		"zero":  grid.NewCube(8),
		"large": smoothField(40, 63), // chunked path
	}
	restore := parallel.SetLimit(3)
	defer restore()
	var s Scratch
	for name, f := range fields {
		ix, err := CompressIndexed(f, Options{Rate: 32}, &s)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, rate := range indexRates {
			direct, err := Compress(f, Options{Rate: rate})
			if err != nil {
				t.Fatalf("%s rate %v: %v", name, rate, err)
			}
			spliced, err := ix.TruncateToRate(rate, &s)
			if err != nil {
				t.Fatalf("%s rate %v: truncate: %v", name, rate, err)
			}
			if !bytes.Equal(direct.payload, spliced.payload) {
				t.Errorf("%s rate %v: spliced stream differs from direct compression", name, rate)
			}
			if spliced.Rate != rate || spliced.Nx != f.Nx {
				t.Errorf("%s rate %v: header fields wrong", name, rate)
			}
			// Size prediction must be exact, not an estimate.
			predicted, err := ix.PredictSize(rate)
			if err != nil {
				t.Fatal(err)
			}
			if predicted != direct.CompressedSize() {
				t.Errorf("%s rate %v: predicted %d bytes, direct is %d",
					name, rate, predicted, direct.CompressedSize())
			}
		}
	}
}

// TestIndexedDecompressAtRateMatchesRecompression pins the probe decode:
// reconstructing from the truncated index must equal the round trip through
// an actual recompression at that rate — the equivalence that lets the
// error-bound search measure probes without recompressing.
func TestIndexedDecompressAtRateMatchesRecompression(t *testing.T) {
	f := smoothField(16, 64)
	ix, err := CompressIndexed(f, Options{Rate: 32}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, rate := range indexRates {
		c, err := Compress(f, Options{Rate: rate})
		if err != nil {
			t.Fatal(err)
		}
		want, err := Decompress(c)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ix.DecompressAtRate(rate)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want.Data {
			if want.Data[i] != got.Data[i] {
				t.Fatalf("rate %v: probe reconstruction diverges at cell %d: %v vs %v",
					rate, i, want.Data[i], got.Data[i])
			}
		}
	}
}

func TestIndexedRejectsHigherRate(t *testing.T) {
	f := smoothField(8, 65)
	ix, err := CompressIndexed(f, Options{Rate: 8}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ix.TruncateToRate(16, nil); err == nil {
		t.Error("truncating above the index rate accepted")
	}
	if _, err := ix.PredictSize(16); err == nil {
		t.Error("predicting above the index rate accepted")
	}
	if err := ix.DecompressAtRateInto(grid.NewCube(8), 16, nil); err == nil {
		t.Error("decoding above the index rate accepted")
	}
	if err := ix.DecompressAtRateInto(grid.NewCube(4), 4, nil); err == nil {
		t.Error("mismatched output shape accepted")
	}
	if _, err := ix.TruncateToRate(math.NaN(), nil); err == nil {
		t.Error("NaN rate accepted")
	}
}

// TestIndexedAccountingConsistent sanity-checks the offset table itself:
// monotone, ending at the stream's bit length, with every block at least
// its zero flag wide.
func TestIndexedAccountingConsistent(t *testing.T) {
	f := smoothField(12, 66)
	ix, err := CompressIndexed(f, Options{Rate: 6}, nil)
	if err != nil {
		t.Fatal(err)
	}
	l := layoutOf(f.Nx, f.Ny, f.Nz)
	if len(ix.starts) != l.blocks()+1 {
		t.Fatalf("%d offsets for %d blocks", len(ix.starts), l.blocks())
	}
	budget := budgetOf(ix.C.Rate)
	for b := 0; b < l.blocks(); b++ {
		width := ix.starts[b+1] - ix.starts[b]
		if width < 1 || (width > 1 && width > blockHeaderBits+budget) {
			t.Fatalf("block %d spans %d bits (budget %d)", b, width, budget)
		}
	}
	total := ix.starts[l.blocks()]
	if got := len(ix.C.payload); got != (total+7)/8 {
		t.Fatalf("payload %d bytes for %d recorded bits", got, total)
	}
}
