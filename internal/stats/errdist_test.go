package stats

import (
	"math"
	"testing"
)

func TestErrDistBasics(t *testing.T) {
	var d ErrDist
	if d.TailCount(0.5) != 0 || d.Count() != 0 || d.MeanAbs() != 0 {
		t.Fatal("zero-value histogram not empty")
	}
	d.Add(0)
	d.Add(-2) // magnitudes: sign folded
	d.Add(2)
	d.Add(8)
	if d.Count() != 4 || d.Zeros() != 1 {
		t.Fatalf("count %d zeros %d", d.Count(), d.Zeros())
	}
	if d.Max() != 8 {
		t.Errorf("max %g", d.Max())
	}
	if got := d.MeanAbs(); got != 3 {
		t.Errorf("mean |x| %g, want 3", got)
	}
	if got := d.TailCount(0); got != 3 {
		t.Errorf("tail above 0: %g, want all 3 non-zeros", got)
	}
	if got := d.TailCount(4); math.Abs(got-1) > 0.5 {
		t.Errorf("tail above 4: %g, want ≈ 1", got)
	}
	if got := d.TailCount(100); got != 0 {
		t.Errorf("tail above max: %g, want 0", got)
	}
}

// TestErrDistTailInterpolation: inside a populated bin the tail estimate
// interpolates log-uniformly; across bin boundaries it is exact.
func TestErrDistTailInterpolation(t *testing.T) {
	var d ErrDist
	n := 10000
	for i := 0; i < n; i++ {
		// Log-uniform magnitudes across 6 decades.
		d.Add(math.Pow(10, -3+6*float64(i)/float64(n)))
	}
	for _, tt := range []struct{ t, wantFrac float64 }{
		{1e-3, 1.0}, {1e-2, 5.0 / 6}, {1, 1.0 / 2}, {1e2, 1.0 / 6},
	} {
		got := d.TailCount(tt.t) / float64(n)
		if math.Abs(got-tt.wantFrac) > 0.01 {
			t.Errorf("tail fraction above %g: %.4f, want %.4f", tt.t, got, tt.wantFrac)
		}
	}
}

// TestErrDistMemoInvalidation: the suffix-sum memo must give the same
// answers as a fresh scan after interleaved Add/TailCount/Reset/Clone.
func TestErrDistMemoInvalidation(t *testing.T) {
	var d ErrDist
	for i := 1; i <= 100; i++ {
		d.Add(float64(i))
	}
	before := d.TailCount(50) // builds the memo
	d.Add(60)                 // must invalidate it
	if got := d.TailCount(50); got != before+1 {
		t.Errorf("tail after memoized add: %g, want %g", got, before+1)
	}
	c := d.Clone()
	if got := c.TailCount(50); got != before+1 {
		t.Errorf("cloned tail: %g, want %g", got, before+1)
	}
	d.Add(70) // the clone must be unaffected
	if got := c.TailCount(50); got != before+1 {
		t.Errorf("clone saw the original's add: %g", got)
	}
	c.Reset()
	if c.Count() != 0 || c.TailCount(1) != 0 {
		t.Error("reset clone not empty")
	}
}

func TestErrDistExtremes(t *testing.T) {
	var d ErrDist
	d.Add(1e-300) // far below float32 scale: counts as zero
	d.Add(1e300)  // clamped into the top bin
	if d.Zeros() != 1 {
		t.Errorf("denormal-scale value not folded to zero (%d zeros)", d.Zeros())
	}
	if got := d.TailCount(1); got != 1 {
		t.Errorf("tail above 1: %g, want the huge value only", got)
	}
	if got := d.TailCount(1e-310); got != 1 {
		t.Errorf("tail above subnormal threshold: %g, want 1", got)
	}
}

func TestPredScanReset(t *testing.T) {
	var s PredScan
	s.Values.Add(3)
	s.Errs.Add(1)
	s.Reset()
	if s.Values.Count() != 0 || s.Errs.Count() != 0 {
		t.Error("PredScan.Reset left state behind")
	}
}
