package codec

import "repro/internal/sz"

// szCodec adapts internal/sz (prediction-based, error-bounded) to the
// Codec interface. It is the default backend: the only one whose frames
// carry a hard pointwise error guarantee, which the paper's error control
// requires (Sec. 2.2).
type szCodec struct{}

func (szCodec) ID() ID { return SZ }

func (szCodec) Compress(data []float32, nx, ny, nz int, opt Options, s *Scratch) (Frame, error) {
	if err := validateDims(data, nx, ny, nz); err != nil {
		return nil, err
	}
	c, err := sz.CompressSliceWith(data, nx, ny, nz, szOptions(opt), szScratch(s))
	if err != nil {
		return nil, err
	}
	return szFrame{c}, nil
}

func (szCodec) Parse(body []byte) (Frame, error) {
	c, err := sz.Parse(body)
	if err != nil {
		return nil, err
	}
	return szFrame{c}, nil
}

// szOptions maps the codec-agnostic knobs onto SZ's option set. The enums
// are value-compatible by construction (see the Mode/Predictor constants).
func szOptions(opt Options) sz.Options {
	return sz.Options{
		Mode:                  sz.Mode(opt.Mode),
		ErrorBound:            opt.ErrorBound,
		Radius:                opt.Radius,
		Predictor:             sz.Predictor(opt.Predictor),
		QuantizeBeforePredict: opt.QuantizeBeforePredict,
	}
}

// szScratch lazily materializes the SZ working buffers inside the shared
// per-worker scratch. The sz.Scratch carries the whole per-partition hot
// path: prediction/quantization buffers, the outlier accumulator, RLE
// tokens, and the entropy stage's dense frequency/code tables (see
// huffman.Scratch), so steady-state compression is allocation-flat.
func szScratch(s *Scratch) *sz.Scratch {
	if s == nil {
		return nil
	}
	if s.sz == nil {
		s.sz = &sz.Scratch{}
	}
	return s.sz
}

type szFrame struct{ c *sz.Compressed }

func (f szFrame) CodecID() ID                    { return SZ }
func (f szFrame) Dims() (int, int, int)          { return f.c.Nx, f.c.Ny, f.c.Nz }
func (f szFrame) N() int                         { return f.c.N() }
func (f szFrame) CompressedSize() int            { return f.c.CompressedSize() }
func (f szFrame) BitRate() float64               { return f.c.BitRate() }
func (f szFrame) Ratio() float64                 { return f.c.Ratio() }
func (f szFrame) ErrorBound() float64            { return f.c.Opt.ErrorBound }
func (f szFrame) Bytes() []byte                  { return f.c.Bytes() }
func (f szFrame) Decompress() ([]float32, error) { return sz.DecompressSlice(f.c) }
