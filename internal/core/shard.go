package core

import (
	"bytes"
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/apierr"
	"repro/internal/codec"
)

// Shard archives: how a distributed run persists its output.
//
// Each rank streams the partitions it owns into its own, completely
// standard v3 stream — no new container format. A partition's frame is
// stored as a one-partition v2 field archive under a pseudo-field name
// that encodes (real field, partition ID); pseudo-names sort by field and
// then by zero-padded partition ID, so each shard's byte stream is
// deterministic, and every existing stream facility — checkpointed
// writers, RecoverStream salvage, O(1) step seeks — works on shards for
// free.
//
// MergeShards reassembles the per-rank shards into the plain stream a
// single-process run would have written. Because error bounds come from
// partition-ID-ordered reductions (invariant to rank count and ownership)
// and the merge orders partitions by ID, the merged archive is
// byte-identical to the single-process golden — even when a rank died
// mid-run, its partitions were rebalanced, and its torn shard contains a
// stale copy of the retried step.

// shardNameSep separates the real field name from the partition suffix in
// a shard pseudo-field name. The unit separator cannot appear in sane
// field names and sorts below every printable byte.
const shardNameSep = "\x1f"

// ShardFieldName builds the pseudo-field name under which one partition's
// frame is stored in a rank's shard stream.
func ShardFieldName(field string, part int) string {
	return fmt.Sprintf("%s%sp%08d", field, shardNameSep, part)
}

// ParseShardFieldName reverses ShardFieldName.
func ParseShardFieldName(name string) (field string, part int, ok bool) {
	i := strings.LastIndex(name, shardNameSep)
	if i < 0 || i == 0 {
		return "", 0, false
	}
	var p int
	if _, err := fmt.Sscanf(name[i+len(shardNameSep):], "p%08d", &p); err != nil || p < 0 {
		return "", 0, false
	}
	return name[:i], p, true
}

// ShardStepFields converts one rank's shard of a field into the pseudo-
// field map its shard stream stores for this step: one single-partition
// CompressedField per owned partition. Merge these maps across fields
// before calling StreamWriter.WriteStep when a step carries several
// fields.
func ShardStepFields(field string, nx, ny, nz, partitionDim int, sh *RankShard) (map[string]*CompressedField, error) {
	if strings.Contains(field, shardNameSep) {
		return nil, fmt.Errorf("core: %w: field name %q contains the shard separator", apierr.ErrBadConfig, field)
	}
	if len(sh.Frames) != len(sh.Owned) {
		return nil, fmt.Errorf("core: %w: shard has %d frames for %d partitions", apierr.ErrBadConfig, len(sh.Frames), len(sh.Owned))
	}
	out := make(map[string]*CompressedField, len(sh.Owned))
	for j, pi := range sh.Owned {
		fr := sh.Frames[j]
		out[ShardFieldName(field, pi)] = &CompressedField{
			Nx: nx, Ny: ny, Nz: nz,
			PartitionDim: partitionDim,
			Codec:        fr.CodecID(),
			Parts:        []codec.Frame{fr},
		}
	}
	return out, nil
}

// ShardInput is one rank's shard stream handed to MergeShards.
type ShardInput struct {
	R    io.ReaderAt
	Size int64
}

// MergeReport describes what MergeShards assembled.
type MergeReport struct {
	// Steps is the number of merged steps written.
	Steps int
	// SalvagedShards counts input shards whose footer was missing or torn
	// (a dead rank's stream) and that were recovered by scan.
	SalvagedShards int
	// DuplicateParts counts byte-identical duplicate partition frames that
	// were deduplicated — the residue of a step that was half-written
	// before a failure and rewritten by the post-rebalance retry.
	DuplicateParts int
}

// MergeShards reassembles per-rank shard streams into one plain v3 stream
// on w, identical to what a single-process run would write. Torn shards
// are salvaged first (RecoverStream), so the shard a killed rank left
// behind merges as far as it got. The merged step count is the maximum
// across shards; every partition of every field must be present exactly
// once per step — duplicates are tolerated only if byte-identical (a stale
// retried step), anything else is corruption.
//
// nParts is the partition count every field must tile to (0 skips the
// completeness check — but then a missing partition surfaces only at
// decompression).
func MergeShards(w io.Writer, shards []ShardInput, nParts int) (*MergeReport, error) {
	return MergeShardsWith(w, shards, nParts, codec.Default)
}

// MergeShardsWith is MergeShards against a specific codec registry.
func MergeShardsWith(w io.Writer, shards []ShardInput, nParts int, reg *codec.Registry) (*MergeReport, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("core: %w: no shards to merge", apierr.ErrBadConfig)
	}
	rep := &MergeReport{}
	readers := make([]*StreamReader, 0, len(shards))
	for i, sh := range shards {
		sr, rrep, err := RecoverStreamWith(sh.R, sh.Size, reg)
		if err != nil {
			return nil, fmt.Errorf("core: shard %d: %w", i, err)
		}
		if !rrep.Clean {
			rep.SalvagedShards++
		}
		readers = append(readers, sr)
	}
	nSteps := 0
	for _, sr := range readers {
		if sr.Steps() > nSteps {
			nSteps = sr.Steps()
		}
	}

	sw, err := NewStreamWriter(w)
	if err != nil {
		return nil, err
	}
	for s := 0; s < nSteps; s++ {
		merged, err := mergeStep(readers, s, nParts, rep)
		if err != nil {
			return nil, err
		}
		if err := sw.WriteStep(merged); err != nil {
			return nil, err
		}
	}
	if err := sw.Close(); err != nil {
		return nil, err
	}
	rep.Steps = nSteps
	return rep, nil
}

// mergeStep collects step s's pseudo-fields from every shard that has it
// and reassembles the real fields, partitions in ID order.
func mergeStep(readers []*StreamReader, s, nParts int, rep *MergeReport) (map[string]*CompressedField, error) {
	type partSlot struct {
		cf  *CompressedField
		enc []byte // encoded frame, for duplicate comparison
	}
	byField := make(map[string]map[int]partSlot)
	for ri, sr := range readers {
		if s >= sr.Steps() {
			continue
		}
		fields, err := sr.ReadStep(s)
		if err != nil {
			return nil, fmt.Errorf("core: shard %d step %d: %w", ri, s, err)
		}
		for name, cf := range fields {
			field, part, ok := ParseShardFieldName(name)
			if !ok {
				return nil, fmt.Errorf("core: %w: shard %d step %d has non-shard field %q", errCorrupt, ri, s, name)
			}
			if len(cf.Parts) != 1 {
				return nil, fmt.Errorf("core: %w: shard %d step %d field %q holds %d partitions, want 1",
					errCorrupt, ri, s, name, len(cf.Parts))
			}
			enc := codec.EncodeFrame(cf.Parts[0])
			slots := byField[field]
			if slots == nil {
				slots = make(map[int]partSlot)
				byField[field] = slots
			}
			if prev, dup := slots[part]; dup {
				// A stale copy from a shard whose rank died before the
				// step committed. Determinism makes the retry's frame
				// byte-identical, so an exact match is expected residue;
				// anything else means the shards disagree about the data.
				if !bytes.Equal(prev.enc, enc) || prev.cf.Nx != cf.Nx || prev.cf.Ny != cf.Ny ||
					prev.cf.Nz != cf.Nz || prev.cf.PartitionDim != cf.PartitionDim {
					return nil, fmt.Errorf("core: %w: step %d field %q partition %d differs between shards",
						errCorrupt, s, field, part)
				}
				rep.DuplicateParts++
				continue
			}
			slots[part] = partSlot{cf: cf, enc: enc}
		}
	}
	if len(byField) == 0 {
		return nil, fmt.Errorf("core: %w: merged step %d has no fields", errCorrupt, s)
	}

	merged := make(map[string]*CompressedField, len(byField))
	fieldNames := make([]string, 0, len(byField))
	for f := range byField {
		fieldNames = append(fieldNames, f)
	}
	sort.Strings(fieldNames)
	for _, field := range fieldNames {
		slots := byField[field]
		want := nParts
		if want == 0 {
			want = len(slots)
		}
		parts := make([]codec.Frame, want)
		var geom *CompressedField
		for id, slot := range slots {
			if id >= want {
				return nil, fmt.Errorf("core: %w: step %d field %q partition %d outside [0,%d)",
					errCorrupt, s, field, id, want)
			}
			parts[id] = slot.cf.Parts[0]
			if geom == nil {
				geom = slot.cf
			} else if geom.Nx != slot.cf.Nx || geom.Ny != slot.cf.Ny || geom.Nz != slot.cf.Nz ||
				geom.PartitionDim != slot.cf.PartitionDim {
				return nil, fmt.Errorf("core: %w: step %d field %q has inconsistent geometry across shards",
					errCorrupt, s, field)
			}
		}
		for id, fr := range parts {
			if fr == nil {
				return nil, fmt.Errorf("core: %w: step %d field %q is missing partition %d",
					errCorrupt, s, field, id)
			}
		}
		merged[field] = &CompressedField{
			Nx: geom.Nx, Ny: geom.Ny, Nz: geom.Nz,
			PartitionDim: geom.PartitionDim,
			Codec:        parts[0].CodecID(),
			Parts:        parts,
		}
	}
	return merged, nil
}
