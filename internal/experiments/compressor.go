package experiments

import (
	"context"
	"fmt"
	"math"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/nyx"
	"repro/internal/stats"
)

// AblationCompressor substantiates the paper's Sec. 2.2 compressor choice:
// SZ (prediction-based, error-bounded) versus ZFP (transform-based,
// fixed-rate). Both backends are resolved by name from the codec registry
// and exercised through the Codec interface — the same path the engine
// uses — so the comparison measures exactly what a backend swap would
// deliver. For a set of ZFP rates, each codec compresses the temperature
// field; SZ's error bound is bisected until its bit rate matches ZFP's,
// and the PSNRs are compared at that matched rate. The paper states SZ
// "provides a higher compression ratio than ZFP and offers the absolute
// error-bound mode that ZFP does not support".
func AblationCompressor(ctx *Context) (*Result, error) {
	f, err := ctx.Field(nyx.FieldTemperature)
	if err != nil {
		return nil, err
	}
	szc, err := codec.Lookup(codec.SZ)
	if err != nil {
		return nil, err
	}
	zfpc, err := codec.Lookup(codec.ZFP)
	if err != nil {
		return nil, err
	}
	res := &Result{
		ID:    "ablation-compressor",
		Title: "Ablation: SZ vs ZFP at matched bit rate (temperature)",
		Cols: []string{"bits/value", "zfp_psnr", "sz_psnr", "sz_eb",
			"sz_max_err", "zfp_max_err"},
	}
	szWins := 0
	for _, rate := range []float64{1, 2, 4, 8} {
		zc, err := zfpc.Compress(f.Data, f.Nx, f.Ny, f.Nz, codec.Options{Rate: rate}, nil)
		if err != nil {
			return nil, err
		}
		zr, err := zc.Decompress()
		if err != nil {
			return nil, err
		}
		zPSNR, _ := stats.PSNR(f.Data, zr)
		zMax, _ := stats.MaxAbsError(f.Data, zr)

		// Bisect SZ's error bound to hit the same achieved bit rate.
		eb, sc, err := codecAtBitRate(szc, f, zc.BitRate())
		if err != nil {
			return nil, err
		}
		sr, err := sc.Decompress()
		if err != nil {
			return nil, err
		}
		sPSNR, _ := stats.PSNR(f.Data, sr)
		sMax, _ := stats.MaxAbsError(f.Data, sr)
		if sPSNR >= zPSNR {
			szWins++
		}
		res.AddRow(fnum(zc.BitRate()), fnum(zPSNR), fnum(sPSNR), fnum(eb),
			fnum(sMax), fnum(zMax))
	}
	res.Notef("SZ wins PSNR at %d of 4 matched rates; only SZ guarantees a pointwise bound (sz_max_err == eb by construction, zfp_max_err is uncontrolled) — the paper's two reasons for choosing SZ", szWins)
	return res, nil
}

// CrossCodecAdaptive runs the full adaptive-vs-static pipeline once per
// registered codec: calibrate the rate model through the backend, plan
// per-partition error bounds, and compress both ways. This is the
// registry's point — the paper's configurator is compressor-agnostic, so
// the adaptive gain should survive a backend swap (for ZFP the per-
// partition bounds drive its error-bound rate search).
func CrossCodecAdaptive(ctx *Context) (*Result, error) {
	f, err := ctx.Field(nyx.FieldBaryonDensity)
	if err != nil {
		return nil, err
	}
	res := &Result{
		ID:    "codec-adaptive",
		Title: "Cross-codec adaptive vs static (baryon density)",
		Cols:  []string{"codec", "rate_exponent", "adaptive", "static", "improvement"},
	}
	for _, id := range codec.IDs() {
		eng, err := core.NewEngine(core.Config{
			PartitionDim: ctx.Cfg.PartitionDim,
			Workers:      ctx.Cfg.Workers,
			Codec:        id,
		})
		if err != nil {
			return nil, err
		}
		cal, err := eng.Calibrate(context.Background(), f)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s calibration: %w", id, err)
		}
		adaptive, static, _, err := adaptiveVsStatic(eng, f, cal, 0.1)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s adaptive run: %w", id, err)
		}
		res.AddRow(string(id), fnum(cal.Model.Exponent), fnum(adaptive), fnum(static),
			fmt.Sprintf("%+.1f%%", (adaptive/static-1)*100))
	}
	res.Notef("every backend runs through the same Engine/Plan path via the codec registry; SZ honors the planned bounds exactly, ZFP approximates them with its fixed-rate search")
	return res, nil
}

// codecAtBitRate bisects the ABS error bound until the codec's achieved
// bit rate is within 3 % of the target (bit rate is monotone decreasing in
// eb). The geometric bisection spans the whole plausible eb range,
// anchored on the field's magnitude.
func codecAtBitRate(c codec.Codec, f *grid.Field3D, target float64) (float64, codec.Frame, error) {
	absMax := f.AbsMax()
	if absMax <= 0 {
		return 0, nil, fmt.Errorf("experiments: constant field")
	}
	lo, hi := absMax*1e-12, absMax*10
	var best codec.Frame
	var bestEB float64
	for i := 0; i < 40; i++ {
		mid := math.Sqrt(lo * hi)
		fr, err := c.Compress(f.Data, f.Nx, f.Ny, f.Nz, codec.Options{ErrorBound: mid}, nil)
		if err != nil {
			return 0, nil, err
		}
		best, bestEB = fr, mid
		br := fr.BitRate()
		if math.Abs(br-target) <= 0.03*target {
			break
		}
		if br > target {
			lo = mid // need a larger bound for a lower rate
		} else {
			hi = mid
		}
	}
	return bestEB, best, nil
}
