package sz

import (
	"errors"
	"math"
	"testing"

	"repro/internal/apierr"
	"repro/internal/grid"
)

// previewField is a bumpy but predictable field: smooth background with a
// few sharp spikes, so the token stream has both a wide correction octave
// range and genuine outliers.
func previewField(n int) *grid.Field3D {
	f := grid.NewCube(n)
	for i := range f.Data {
		x, y, z := f.Coords(i)
		f.Data[i] = float32(math.Sin(float64(x)*0.4)*math.Cos(float64(y)*0.3) + 0.1*float64(z))
	}
	for _, spike := range []int{17, 301, 1189, 2945} {
		if spike < len(f.Data) {
			f.Data[spike] += 500
		}
	}
	return f
}

func TestDecompressPreviewConvergesToExact(t *testing.T) {
	for _, opt := range []Options{
		{Mode: ABS, ErrorBound: 1e-3},
		{Mode: ABS, ErrorBound: 1e-3, QuantizeBeforePredict: true},
		{Mode: ABS, ErrorBound: 1e-4, Predictor: MeanNeighbor},
	} {
		f := previewField(16)
		c, err := Compress(f, opt)
		if err != nil {
			t.Fatal(err)
		}
		exact, err := Decompress(c)
		if err != nil {
			t.Fatal(err)
		}
		// Enough octaves to cover any correction magnitude: the preview
		// must be bit-identical to the full decode, with nothing dropped.
		full, info, err := DecompressPreview(c, 32)
		if err != nil {
			t.Fatal(err)
		}
		if info.DroppedCorrections != 0 || info.Threshold != 1 {
			t.Fatalf("%+v: full-depth preview dropped %d corrections (threshold %d)",
				opt, info.DroppedCorrections, info.Threshold)
		}
		for i := range exact.Data {
			if exact.Data[i] != full.Data[i] {
				t.Fatalf("%+v: full-depth preview diverges from Decompress at cell %d", opt, i)
			}
		}
	}
}

func TestDecompressPreviewCoarsensMonotonically(t *testing.T) {
	f := previewField(16)
	c, err := Compress(f, Options{Mode: ABS, ErrorBound: 1e-4})
	if err != nil {
		t.Fatal(err)
	}
	exact, err := Decompress(c)
	if err != nil {
		t.Fatal(err)
	}
	maxErr := func(g *grid.Field3D) float64 {
		var m float64
		for i := range g.Data {
			if d := math.Abs(float64(g.Data[i]) - float64(exact.Data[i])); d > m {
				m = d
			}
		}
		return m
	}
	prevKept := -1
	for _, oct := range []int{1, 2, 4, 8} {
		g, info, err := DecompressPreview(c, oct)
		if err != nil {
			t.Fatalf("octaves %d: %v", oct, err)
		}
		if info.KeptCorrections < prevKept {
			t.Fatalf("octaves %d keeps %d corrections, fewer than the coarser rung's %d",
				oct, info.KeptCorrections, prevKept)
		}
		prevKept = info.KeptCorrections
		for i := range g.Data {
			if math.IsNaN(float64(g.Data[i])) || math.IsInf(float64(g.Data[i]), 0) {
				t.Fatalf("octaves %d: non-finite preview value at cell %d", oct, i)
			}
		}
		t.Logf("octaves %d: threshold %d, kept %d dropped %d outliers %d, maxErr %.3g",
			oct, info.Threshold, info.KeptCorrections, info.DroppedCorrections, info.Outliers, maxErr(g))
	}
	// The coarsest rung must actually coarsen on this field (there is more
	// than one correction octave), and still preserve the spikes' scale.
	g1, info1, err := DecompressPreview(c, 1)
	if err != nil {
		t.Fatal(err)
	}
	if info1.DroppedCorrections == 0 {
		t.Fatal("octave-1 preview dropped nothing — test field has no octave spread")
	}
	if info1.Outliers == 0 {
		t.Fatal("test field produced no outliers")
	}
	var gotSpike bool
	for _, v := range g1.Data {
		if v > 250 {
			gotSpike = true
			break
		}
	}
	if !gotSpike {
		t.Fatal("outlier spikes lost in the coarsest preview")
	}
}

func TestDecompressPreviewPWREL(t *testing.T) {
	f := grid.NewCube(12)
	for i := range f.Data {
		x, y, z := f.Coords(i)
		f.Data[i] = float32(1 + x + 10*y + 100*z)
	}
	c, err := Compress(f, Options{Mode: PWREL, ErrorBound: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	g, _, err := DecompressPreview(c, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range g.Data {
		if v <= 0 || math.IsInf(float64(v), 0) || math.IsNaN(float64(v)) {
			t.Fatalf("PW_REL preview produced non-positive/non-finite value %v at cell %d", v, i)
		}
	}
}

func TestDecompressPreviewRejectsBadOctaves(t *testing.T) {
	f := previewField(8)
	c, err := Compress(f, Options{Mode: ABS, ErrorBound: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	for _, oct := range []int{0, -1} {
		if _, _, err := DecompressPreview(c, oct); !errors.Is(err, apierr.ErrBadConfig) {
			t.Errorf("octaves %d: got %v, want ErrBadConfig", oct, err)
		}
	}
}
