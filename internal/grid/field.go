// Package grid provides the 3-D scalar field and partitioning machinery the
// reproduction is built on. A Field3D corresponds to one Nyx field (baryon
// density, temperature, ...) on a regular Eulerian mesh; a Partitioner
// carves the mesh into the per-rank bricks ("compute partitions") that the
// paper assigns individual compression configurations to.
package grid

import (
	"fmt"
	"math"

	"repro/internal/stats"
)

// Field3D is a dense 3-D scalar field in row-major (z-fastest is NOT used;
// we use x-fastest C order: index = (z*Ny + y)*Nx + x) single-precision
// storage, matching the fp32 layout of the Nyx snapshots in the paper.
type Field3D struct {
	Nx, Ny, Nz int
	Data       []float32
}

// NewField3D allocates a zero-filled field of the given dimensions.
// It panics on non-positive dimensions: field shapes are static program
// configuration in this codebase, not runtime inputs.
func NewField3D(nx, ny, nz int) *Field3D {
	if nx <= 0 || ny <= 0 || nz <= 0 {
		panic(fmt.Sprintf("grid: invalid field dims %dx%dx%d", nx, ny, nz))
	}
	return &Field3D{Nx: nx, Ny: ny, Nz: nz, Data: make([]float32, nx*ny*nz)}
}

// NewCube allocates an n×n×n field.
func NewCube(n int) *Field3D { return NewField3D(n, n, n) }

// Len returns the number of cells.
func (f *Field3D) Len() int { return f.Nx * f.Ny * f.Nz }

// Index returns the flat index of (x, y, z). No bounds checking beyond the
// slice's own; hot loops index Data directly.
func (f *Field3D) Index(x, y, z int) int { return (z*f.Ny+y)*f.Nx + x }

// At returns the value at (x, y, z).
func (f *Field3D) At(x, y, z int) float32 { return f.Data[(z*f.Ny+y)*f.Nx+x] }

// Set stores v at (x, y, z).
func (f *Field3D) Set(x, y, z int, v float32) { f.Data[(z*f.Ny+y)*f.Nx+x] = v }

// Coords inverts Index, returning (x, y, z) for a flat index.
func (f *Field3D) Coords(i int) (x, y, z int) {
	x = i % f.Nx
	y = (i / f.Nx) % f.Ny
	z = i / (f.Nx * f.Ny)
	return
}

// Clone returns a deep copy.
func (f *Field3D) Clone() *Field3D {
	g := &Field3D{Nx: f.Nx, Ny: f.Ny, Nz: f.Nz, Data: make([]float32, len(f.Data))}
	copy(g.Data, f.Data)
	return g
}

// SameShape reports whether two fields have identical dimensions.
func (f *Field3D) SameShape(g *Field3D) bool {
	return f.Nx == g.Nx && f.Ny == g.Ny && f.Nz == g.Nz
}

// Fill sets every cell to v.
func (f *Field3D) Fill(v float32) {
	for i := range f.Data {
		f.Data[i] = v
	}
}

// Moments computes count/mean/variance/min/max in one pass.
func (f *Field3D) Moments() stats.Moments {
	var m stats.Moments
	m.AddSlice(f.Data)
	return m
}

// Mean returns the arithmetic mean of the field. For large fields this uses
// a straight sum in float64, which is plenty accurate for 2^31 cells and is
// what the in situ feature extraction would do on a rank.
func (f *Field3D) Mean() float64 {
	var s float64
	for _, v := range f.Data {
		s += float64(v)
	}
	return s / float64(len(f.Data))
}

// MinMax returns the smallest and largest cell values.
func (f *Field3D) MinMax() (lo, hi float32) {
	if len(f.Data) == 0 {
		return 0, 0
	}
	lo, hi = f.Data[0], f.Data[0]
	for _, v := range f.Data[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}

// AbsMax returns max |value|, used to convert relative error bounds.
func (f *Field3D) AbsMax() float64 {
	var m float64
	for _, v := range f.Data {
		a := math.Abs(float64(v))
		if a > m {
			m = a
		}
	}
	return m
}

// Validate returns an error if the backing slice length does not match the
// dimensions, or if any value is NaN/Inf (which the compressor and the
// analyses do not support).
func (f *Field3D) Validate() error {
	if len(f.Data) != f.Nx*f.Ny*f.Nz {
		return fmt.Errorf("grid: data length %d != %d×%d×%d", len(f.Data), f.Nx, f.Ny, f.Nz)
	}
	for i, v := range f.Data {
		f64 := float64(v)
		if math.IsNaN(f64) || math.IsInf(f64, 0) {
			x, y, z := f.Coords(i)
			return fmt.Errorf("grid: non-finite value %v at (%d,%d,%d)", v, x, y, z)
		}
	}
	return nil
}

// String describes the field shape compactly.
func (f *Field3D) String() string {
	return fmt.Sprintf("Field3D(%d×%d×%d)", f.Nx, f.Ny, f.Nz)
}
