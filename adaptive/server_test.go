package adaptive_test

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/adaptive"
	"repro/adaptive/codecs"
)

// newService spins up a facade-built compression service and tears it
// down with the test.
func newService(t *testing.T, cfg adaptive.ServerConfig, opts ...adaptive.Option) *httptest.Server {
	t.Helper()
	sys := newSystem(t, opts...)
	srv, err := sys.NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		// Service first: Close drains parked jobs so their handlers
		// return; ts.Close blocks until every outstanding request ends.
		_ = srv.Close()
		ts.Close()
	})
	return ts
}

// waitUntil polls cond until it holds or the test deadline nears.
func waitUntil(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in 10s")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func postBody(t *testing.T, url string, body []byte) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out
}

// TestServiceRoundTrip drives compress and decompress through the public
// facade's server, wire helpers, and error mapping only.
func TestServiceRoundTrip(t *testing.T) {
	ts := newService(t, adaptive.ServerConfig{}, adaptive.WithPartitionDim(8), adaptive.WithCodec("sz"))
	f := testField(16)

	status, archive := postBody(t, ts.URL+"/v1/compress/density", adaptive.MarshalFieldPayload(f))
	if status != http.StatusOK {
		t.Fatalf("compress: HTTP %d: %s", status, archive)
	}
	status, raw := postBody(t, ts.URL+"/v1/decompress", archive)
	if status != http.StatusOK {
		t.Fatalf("decompress: HTTP %d: %s", status, raw)
	}
	g, err := adaptive.UnmarshalFieldPayload(raw, int64(f.Len()))
	if err != nil {
		t.Fatal(err)
	}
	if !f.SameShape(g) {
		t.Fatalf("shape changed over the wire: %v vs %v", f, g)
	}

	// A typed error response must map back onto the taxonomy sentinel.
	status, body := postBody(t, ts.URL+"/v1/decompress", []byte("junk"))
	if status != http.StatusUnprocessableEntity {
		t.Fatalf("junk archive: HTTP %d", status)
	}
	if err := adaptive.ServiceError(status, body); !errors.Is(err, adaptive.ErrCorruptArchive) {
		t.Fatalf("ServiceError = %v, want ErrCorruptArchive", err)
	}
}

// TestCalibratePWRELDowngradeVisible pins the downgrade disclosure at the
// facade boundary: a PWREL system asked for the ModelScan calibration must
// return a Calibration that says the probe ladder ran instead and why —
// locally via System.Calibrate and remotely via the service's JSON.
func TestCalibratePWRELDowngradeVisible(t *testing.T) {
	ctx := t.Context()
	pwrelEBs := []float64{1e-3, 3e-3, 1e-2, 3e-2, 0.1}
	sys := newSystem(t,
		adaptive.WithPartitionDim(8),
		adaptive.WithMode(codecs.PWREL),
		adaptive.WithCalibration(adaptive.CalibrationOptions{Mode: adaptive.ModelScan, EBs: pwrelEBs}),
	)
	f := testField(16)

	cal, err := sys.Calibrate(ctx, f)
	if err != nil {
		t.Fatal(err)
	}
	if cal.Mode != adaptive.ProbeLadder {
		t.Errorf("mode %v, want ProbeLadder", cal.Mode)
	}
	if !cal.Downgraded || cal.DowngradeReason == "" {
		t.Errorf("downgrade not visible at the facade: Downgraded=%v reason=%q", cal.Downgraded, cal.DowngradeReason)
	}
	if cal.FellBack {
		t.Error("a pre-sampling downgrade must not read as a data-driven fallback")
	}

	// Same disclosure over the service API.
	srv, err := sys.NewServer(adaptive.ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	status, body := postBody(t, ts.URL+"/v1/calibrate/density", adaptive.MarshalFieldPayload(f))
	if status != http.StatusOK {
		t.Fatalf("calibrate: HTTP %d: %s", status, body)
	}
	var view struct {
		Mode            string `json:"mode"`
		Downgraded      bool   `json:"downgraded"`
		DowngradeReason string `json:"downgrade_reason"`
	}
	if err := json.Unmarshal(body, &view); err != nil {
		t.Fatal(err)
	}
	if view.Mode != "probe-ladder" || !view.Downgraded || view.DowngradeReason == "" {
		t.Errorf("service calibrate response hides the downgrade: %s", body)
	}
}

// TestServiceOverloadError pins the typed 429 at the facade boundary.
func TestServiceOverloadError(t *testing.T) {
	// Token-starved single-slot queue: the second concurrent request must
	// be refused with the typed overload error.
	ts := newService(t, adaptive.ServerConfig{QueueDepth: 1, TokenRate: 1e-9, TokenBurst: 1},
		adaptive.WithPartitionDim(8))
	payload := adaptive.MarshalFieldPayload(testField(16))

	// Park one request in the single queue slot (it can never dispatch —
	// its cost dwarfs the token budget — and server close drains it; the
	// server-side timeout is a backstop against leaking the goroutine).
	go func() {
		_, _ = http.Post(ts.URL+"/v1/compress/a?timeout=30s", "application/octet-stream", bytes.NewReader(payload))
	}()
	// Only the server knows when that request reached its queue; poll the
	// stats endpoint rather than racing the goroutine's POST.
	waitUntil(t, func() bool {
		resp, err := http.Get(ts.URL + "/v1/stats")
		if err != nil {
			return false
		}
		defer resp.Body.Close()
		var st struct {
			Queued int `json:"queued"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			return false
		}
		return st.Queued >= 1
	})

	// With the slot held, the next request must be refused at admission.
	status, body := postBody(t, ts.URL+"/v1/compress/b?timeout=1s", payload)
	if status != http.StatusTooManyRequests {
		t.Fatalf("want a 429 with the queue full, got HTTP %d: %s", status, body)
	}
	err := adaptive.ServiceError(status, body)
	if !errors.Is(err, adaptive.ErrOverloaded) {
		t.Fatalf("ServiceError = %v, want ErrOverloaded", err)
	}
}
