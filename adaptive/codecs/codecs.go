// Package codecs is the backend-registration surface of the adaptive
// facade: the codec-level interface the engine drives its compressors
// through, and the registry new backends plug into.
//
// Two backends ship pre-registered: "sz" (the prediction-based
// error-bounded compressor the paper configures) and "zfp" (the
// transform-based fixed-rate comparison codec). A program embedding its
// own compressor implements Codec and registers it:
//
//	codecs.Register(myCodec{})                     // before adaptive.New
//	sys, _ := adaptive.New(adaptive.WithCodec("mine"))
//
// Frames are self-describing (codec ID + version in every envelope), so
// archives produced through a registered backend decode anywhere the same
// backend is registered — and fail with adaptive.ErrCodecUnknown anywhere
// it is not.
package codecs

import "repro/internal/codec"

// ID names a codec in the registry and in frame headers.
type ID = codec.ID

const (
	// SZ is the prediction-based error-bounded compressor (default).
	SZ ID = codec.SZ
	// ZFP is the transform-based fixed-rate comparison codec.
	ZFP ID = codec.ZFP
)

// Mode selects error-bound semantics for error-bounded codecs.
type Mode = codec.Mode

const (
	// ABS bounds the absolute pointwise error: |x − x̂| ≤ ErrorBound.
	ABS Mode = codec.ABS
	// PWREL bounds the pointwise relative error (positive data only).
	PWREL Mode = codec.PWREL
)

// Predictor selects the prediction scheme of prediction-based codecs.
type Predictor = codec.Predictor

const (
	// Lorenzo3D is the first-order 3-D Lorenzo predictor used by SZ.
	Lorenzo3D Predictor = codec.Lorenzo3D
	// MeanNeighbor predicts the average of the three causal neighbours.
	MeanNeighbor Predictor = codec.MeanNeighbor
)

// Options are the codec-agnostic knobs of one compression call; each
// backend consumes the subset it understands.
type Options = codec.Options

// Frame is one compressed 3-D brick, tagged with the codec that produced
// it; frames decode themselves.
type Frame = codec.Frame

// Scratch holds per-worker reusable compression state; the zero value is
// ready to use, nil is always accepted.
type Scratch = codec.Scratch

// Codec is one compression backend. Implementations must be safe for
// concurrent use.
type Codec = codec.Codec

// Register adds a backend to the registry the engine and archives resolve
// codecs from. Registering a nil codec, an empty or over-long ID, or a
// duplicate ID is an error.
func Register(c Codec) error { return codec.Register(c) }

// Lookup resolves an ID to its backend; unknown IDs wrap
// adaptive.ErrCodecUnknown.
func Lookup(id ID) (Codec, error) { return codec.Lookup(id) }

// IDs returns the registered codec IDs in sorted order.
func IDs() []ID { return codec.IDs() }

// EncodeFrame serializes a frame with its self-describing codec header.
func EncodeFrame(f Frame) []byte { return codec.EncodeFrame(f) }

// DecodeFrame reverses EncodeFrame, resolving the named backend in the
// registry and handing it the codec-native body.
func DecodeFrame(data []byte) (Frame, error) { return codec.DecodeFrame(data) }
