package model

import (
	"errors"
	"math"

	"repro/internal/stats"
)

// Ratio-quality model (Jin et al., "Improving Prediction-Based Lossy
// Compression Dramatically via Ratio-Quality Modeling", arXiv 2111.09815):
// instead of empirically compressing a partition at every candidate error
// bound, predict the bit rate analytically from one streaming scan of the
// prediction-error distribution. For a prediction-based compressor the
// stages are all statistically determined by that distribution:
//
//   - quantization: code q = round(r / 2eb), so the probability of each
//     code is the error-distribution mass of an interval proportional to
//     eb — recoverable for any eb from a log-spaced histogram;
//   - entropy coding: Huffman is within a constant of the code entropy;
//   - RLE: runs of the perfect-prediction code follow a geometric law in
//     the hit probability p₀(eb), and the binary-power run decomposition
//     emits popcount(run length) tokens.
//
// One validation compression anchors the curve (absorbing the Huffman
// table, header, and model bias), after which bit rate and quality are
// closed-form in eb. Transform codecs (zfp) get the bit-plane form
// instead: each extra bit per value halves the truncated-stream error, so
// rate is logarithmic in the bound and one anchor fixes the intercept.

// DefaultQuantRadius mirrors the sz compressor's default quantization
// radius without importing it (model stays compressor-agnostic).
const DefaultQuantRadius = 32768

// RQKind selects the model family for a codec class.
type RQKind uint8

const (
	// RQPrediction models prediction + quantization + RLE + Huffman
	// pipelines (sz): bit rate from the quantization-code entropy.
	RQPrediction RQKind = iota
	// RQTransform models truncated fixed-rate transform streams (zfp):
	// bit rate logarithmic in the error bound (one bit per halving).
	RQTransform
)

// RQModel predicts one partition's bit rate and quality for any candidate
// error bound from a single feature scan plus one anchoring compression.
type RQModel struct {
	Kind RQKind
	// Dist is the prediction-error magnitude distribution (RQPrediction).
	Dist *stats.ErrDist
	// N is the partition cell count.
	N int
	// Radius is the quantizer radius (0 selects DefaultQuantRadius).
	Radius int
	// ValueRange is max−min of the partition values (quality predictions,
	// and the transform model's rate scale).
	ValueRange float64
	// HeaderBits is the fixed per-partition stream overhead in bits.
	HeaderBits float64
	// AnchorEB/AnchorBits record the one validation compression the
	// calibration performs; they pin the predicted curve to an observed
	// (eb, bits/value) point.
	AnchorEB, AnchorBits float64

	// priors memoizes prior evaluations: calibration asks for the same
	// handful of grid bounds (and the anchor bound, once per BitRate call)
	// over and over, and a prediction-kind evaluation walks the full
	// quantization-octave and RLE-run decomposition each time.
	priors []priorPoint
}

type priorPoint struct{ eb, bits float64 }

// ErrNoScan is returned when a prediction model has no error distribution.
var ErrNoScan = errors.New("model: RQ model has no scanned error distribution")

// Validate checks the model is usable.
func (m *RQModel) Validate() error {
	if m == nil {
		return errors.New("model: nil RQ model")
	}
	if m.N <= 0 {
		return errors.New("model: RQ model has no cells")
	}
	if m.Kind == RQPrediction && (m.Dist == nil || m.Dist.Count() == 0) {
		return ErrNoScan
	}
	return nil
}

// Anchor records the observed bit rate of one validation compression at
// error bound eb, pinning the predicted curve through that point.
func (m *RQModel) Anchor(eb, bitsPerValue float64) {
	m.AnchorEB, m.AnchorBits = eb, bitsPerValue
}

// PriorBitRate is the scan-only (unanchored) bit-rate prediction in
// bits/value. It carries the curve's *shape*; the anchor fixes its level.
func (m *RQModel) PriorBitRate(eb float64) float64 {
	if m.Kind == RQTransform {
		return m.transformPrior(eb) // cheap; not worth memoizing
	}
	for _, p := range m.priors {
		if p.eb == eb {
			return p.bits
		}
	}
	bits := m.predictionPrior(eb)
	if len(m.priors) < 64 {
		m.priors = append(m.priors, priorPoint{eb, bits})
	}
	return bits
}

// BitRate is the anchored bit-rate prediction in bits/value. Before
// Anchor it falls back to the prior.
func (m *RQModel) BitRate(eb float64) float64 {
	prior := m.PriorBitRate(eb)
	if m.AnchorEB <= 0 || m.AnchorBits <= 0 {
		return prior
	}
	ref := m.PriorBitRate(m.AnchorEB)
	if m.Kind == RQTransform {
		// Logarithmic curve: anchor shifts the intercept.
		b := prior + (m.AnchorBits - ref)
		return clampRate(b)
	}
	if ref <= 0 {
		return prior
	}
	// Multiplicative correction preserves the entropy curve's shape while
	// absorbing the Huffman-vs-entropy gap and table overhead.
	return prior * (m.AnchorBits / ref)
}

// LogResidual is |ln(observed/predicted)| at one observed point — the
// quantity calibration checks against its guard band.
func (m *RQModel) LogResidual(eb, observedBits float64) float64 {
	pred := m.BitRate(eb)
	if pred <= 0 || observedBits <= 0 {
		return 0
	}
	return math.Abs(math.Log(observedBits / pred))
}

// PredictMaxError returns the pointwise error the codec will honor at this
// bound (the compressor guarantees ≤ eb; rate-searched transform codecs
// meet it best-effort).
func (m *RQModel) PredictMaxError(eb float64) float64 { return eb }

// PredictPSNR predicts the peak signal-to-noise ratio at a bound from the
// uniform U[−eb, +eb] quantization-error law (MSE = eb²/3) and the
// partition's value range — the quality half of the ratio-quality model.
func (m *RQModel) PredictPSNR(eb float64) float64 {
	if m.ValueRange <= 0 || eb <= 0 {
		return math.Inf(1)
	}
	return 20*math.Log10(m.ValueRange) - 10*math.Log10(eb*eb/3)
}

// Curve synthesizes a calibration curve over an error-bound grid, ready
// for the existing Eq.-15 fit (model.Calibrate) — the model slots into the
// calibration pipeline exactly where measured probe curves used to go.
func (m *RQModel) Curve(feature float64, ebs []float64) Curve {
	rates := make([]float64, len(ebs))
	for i, eb := range ebs {
		rates[i] = m.BitRate(eb)
	}
	return Curve{Feature: feature, EBs: append([]float64(nil), ebs...), BitRates: rates}
}

// transformPrior: a truncated zfp stream loses about one binary digit of
// accuracy per dropped bit/value, so the cheapest rate meeting a bound eb
// on data spanning ValueRange is ≈ log₂(range/eb), clamped to the codec's
// rate window.
func (m *RQModel) transformPrior(eb float64) float64 {
	if eb <= 0 {
		return 32
	}
	if m.ValueRange <= 0 {
		return clampRate(0)
	}
	return clampRate(math.Log2(m.ValueRange / eb))
}

func clampRate(r float64) float64 {
	if r < 1e-3 {
		return 1e-3
	}
	if r > 32 {
		return 32
	}
	return r
}

// predictionPrior evaluates the closed-form entropy model at one bound.
func (m *RQModel) predictionPrior(eb float64) float64 {
	if eb <= 0 {
		return math.Inf(1)
	}
	n := float64(m.N)
	if n <= 0 || m.Dist == nil || m.Dist.Count() == 0 {
		return 0
	}
	total := float64(m.Dist.Count())
	radius := m.Radius
	if radius <= 0 {
		radius = DefaultQuantRadius
	}

	// Token categories of the post-RLE stream: each category holds an
	// expected per-value token count spread over u equiprobable codes.
	type category struct{ count, u float64 }
	cats := make([]category, 0, 32)

	// Quantization: code |q| = j covers residual magnitude
	// ((2j−1)·eb, (2j+1)·eb]; octave groups of codes share the histogram's
	// log-spaced resolution.
	tail := m.Dist.TailCount(eb) // mass with |q| ≥ 1
	p0 := 1 - tail/total
	if p0 < 0 {
		p0 = 0
	}
	prev := tail
	for k := 0; 1<<k < radius; k++ {
		qLo, qHi := 1<<k, 2<<k
		if qHi > radius {
			qHi = radius
		}
		upper := m.Dist.TailCount((2*float64(qHi) - 1) * eb)
		if mass := (prev - upper) / total; mass > 0 {
			cats = append(cats, category{mass, 2 * float64(qHi-qLo)})
		}
		prev = upper
	}
	// Codes beyond the radius are outliers: one marker token plus a
	// verbatim fp32 value.
	pOut := prev / total
	if pOut > 0 {
		cats = append(cats, category{pOut, 1})
	}

	// RLE over perfect-prediction hits: for i.i.d. hits with probability
	// p₀, maximal runs start at density p₀(1−p₀) and have geometric
	// lengths, P(L=ℓ) = (1−p₀)·p₀^(ℓ−1). A length-1 run emits the plain
	// hit symbol; length ℓ ≥ 2 decomposes into binary powers, one token
	// per set bit of ℓ. The bit-b token mass has a closed form: lengths
	// with bit b set are ℓ = j·2^(b+1) + 2^b + i (i < 2^b, j ≥ 0), two
	// nested geometric sums, so
	//
	//   Σ_{bit b set} p₀^(ℓ−1) = p₀^(2^b−1)·(1−p₀^(2^b)) /
	//                            ((1−p₀)·(1−p₀^(2^(b+1))))
	//
	// evaluated via expm1 so p₀ → 1 stays finite.
	if p0 > 0 && p0 < 1 {
		miss := 1 - p0
		runs := p0 * miss
		if c := runs * miss; c > 0 { // P(L=1) = miss
			cats = append(cats, category{c, 1})
		}
		lm := math.Log(p0)
		for b := 0; b < 63; b++ {
			w := math.Exp(float64(int64(1)<<b-1) * lm) // p₀^(2^b−1)
			if w*runs < 1e-14 {
				break
			}
			num := -math.Expm1(float64(int64(1)<<b) * lm)        // 1−p₀^(2^b)
			den := miss * -math.Expm1(float64(int64(2)<<b) * lm) // (1−p₀)(1−p₀^(2^(b+1)))
			if den <= 0 {
				break
			}
			s := w * num / den // Σ p₀^(ℓ−1) over lengths with bit b set
			mass := miss * s   // Σ P(L=ℓ) over those lengths
			if b == 0 {
				mass -= miss // exclude ℓ=1: emitted as the plain hit above
			}
			if mass > 0 {
				cats = append(cats, category{runs * mass, 1})
			}
		}
	}

	var tokens float64
	for _, c := range cats {
		tokens += c.count
	}
	bits := m.HeaderBits/n + 32*pOut
	if tokens > 0 {
		for _, c := range cats {
			bits += c.count * math.Log2(tokens*c.u/c.count)
		}
	}
	if bits <= 0 || math.IsNaN(bits) {
		bits = m.HeaderBits / n
	}
	return bits
}
