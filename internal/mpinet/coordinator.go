package mpinet

import (
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"repro/internal/mpi"
)

// Config tunes the transport's timing. The zero value gets sensible
// defaults; tests inject seams (Now, Dial) and disable the real-time
// tickers to run the failure detector deterministically.
type Config struct {
	// HeartbeatInterval is how often each side emits heartbeats (members
	// to the coordinator, the coordinator to members). Default 500ms;
	// negative disables the automatic ticker (tests drive liveness
	// explicitly).
	HeartbeatInterval time.Duration
	// HeartbeatTimeout is how long a member may go silent before the
	// coordinator declares it failed, and how long a member waits for any
	// coordinator frame before declaring the coordinator lost. Default 2s;
	// negative disables the automatic sweep/read deadline.
	HeartbeatTimeout time.Duration
	// MessageTimeout bounds every frame write (a peer that stops reading
	// is as dead as one that closed). Default 10s.
	MessageTimeout time.Duration
	// DialTimeout bounds a member's connect+handshake. Default 5s.
	DialTimeout time.Duration
	// Now supplies the failure detector's clock. Default time.Now.
	Now func() time.Time
	// Dial opens the member's connection to the coordinator. Default
	// net.Dialer with DialTimeout; tests wrap the conn in
	// faultinject.WrapConn here.
	Dial func(network, addr string) (net.Conn, error)
}

func (c Config) withDefaults() Config {
	if c.HeartbeatInterval == 0 {
		c.HeartbeatInterval = 500 * time.Millisecond
	}
	if c.HeartbeatTimeout == 0 {
		c.HeartbeatTimeout = 2 * time.Second
	}
	if c.MessageTimeout == 0 {
		c.MessageTimeout = 10 * time.Second
	}
	if c.DialTimeout == 0 {
		c.DialTimeout = 5 * time.Second
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// member is the coordinator's view of one connected rank.
type member struct {
	rank int
	conn net.Conn
	wmu  sync.Mutex // serializes frame writes to this conn
	// departed is set by a clean goodbye, so the subsequent EOF is not a
	// failure.
	departed bool
}

// collState accumulates one pending collective (current epoch only).
type collState struct {
	header  uint64
	contrib map[int][]float64
	// errMsg, once set, tombstones the collective: it already failed a
	// protocol check, and every remaining contributor gets this error
	// immediately instead of a result. The entry is dropped when all
	// alive ranks have contributed (each rank contributes exactly once
	// per seq, so that is when nobody can arrive late anymore).
	errMsg []byte
}

// Coordinator is the membership and collective server of one TCP world.
// It is not itself a rank: the rank-0 process conventionally runs one and
// then joins it like everyone else.
type Coordinator struct {
	ln   net.Listener
	size int
	cfg  Config

	mu       sync.Mutex
	epoch    int
	alive    map[int]bool
	members  map[int]*member
	lastSeen map[int]time.Time
	pending  map[int]*collState
	closed   bool

	done chan struct{}
	wg   sync.WaitGroup
}

// NewCoordinator serves a world of the given size on ln. Membership starts
// as all ranks alive; ranks that never join are failed by the stale sweep
// like any silent member.
func NewCoordinator(ln net.Listener, size int, cfg Config) (*Coordinator, error) {
	if size <= 0 {
		return nil, errors.New("mpinet: size must be positive")
	}
	cfg = cfg.withDefaults()
	c := &Coordinator{
		ln:       ln,
		size:     size,
		cfg:      cfg,
		alive:    make(map[int]bool, size),
		members:  make(map[int]*member, size),
		lastSeen: make(map[int]time.Time, size),
		pending:  make(map[int]*collState),
		done:     make(chan struct{}),
	}
	now := cfg.Now()
	for r := 0; r < size; r++ {
		c.alive[r] = true
		c.lastSeen[r] = now
	}
	c.wg.Add(1)
	go c.acceptLoop()
	if cfg.HeartbeatInterval > 0 {
		c.wg.Add(1)
		go c.tickLoop()
	}
	return c, nil
}

// Listen is the convenience constructor for production use: bind addr
// (e.g. "127.0.0.1:0") and serve a world of size ranks.
func Listen(addr string, size int, cfg Config) (*Coordinator, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewCoordinator(ln, size, cfg)
}

// Addr is the coordinator's bound address, for members to Join.
func (c *Coordinator) Addr() string { return c.ln.Addr().String() }

// Epoch reports the current membership epoch.
func (c *Coordinator) Epoch() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.epoch
}

// Alive lists the ranks currently believed alive, ascending.
func (c *Coordinator) Alive() []int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.aliveLocked()
}

func (c *Coordinator) aliveLocked() []int {
	out := make([]int, 0, len(c.alive))
	for r := range c.alive {
		out = append(out, r)
	}
	sort.Ints(out)
	return out
}

// Close shuts the coordinator down: stops accepting, closes every member
// connection, and waits for its goroutines.
func (c *Coordinator) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	conns := make([]net.Conn, 0, len(c.members))
	for _, m := range c.members {
		conns = append(conns, m.conn)
	}
	c.mu.Unlock()
	close(c.done)
	err := c.ln.Close()
	for _, conn := range conns {
		conn.Close()
	}
	c.wg.Wait()
	return err
}

func (c *Coordinator) acceptLoop() {
	defer c.wg.Done()
	for {
		conn, err := c.ln.Accept()
		if err != nil {
			return // listener closed
		}
		c.wg.Add(1)
		go c.handshake(conn)
	}
}

// tickLoop drives the real-time failure detector: outbound heartbeats so
// members can detect a dead coordinator, and the stale sweep so silent
// members are failed. Tests disable it and call SweepStale directly.
func (c *Coordinator) tickLoop() {
	defer c.wg.Done()
	t := time.NewTicker(c.cfg.HeartbeatInterval)
	defer t.Stop()
	for {
		select {
		case <-c.done:
			return
		case <-t.C:
		}
		c.mu.Lock()
		epoch := c.epoch
		targets := c.connectedLocked()
		c.mu.Unlock()
		for _, m := range targets {
			c.send(m, &frame{kind: kindHeartbeat, epoch: epoch, from: -1})
		}
		if c.cfg.HeartbeatTimeout > 0 {
			c.SweepStale(c.cfg.Now())
		}
	}
}

// connectedLocked lists members that are connected, alive, and not
// departed. Caller holds c.mu.
func (c *Coordinator) connectedLocked() []*member {
	out := make([]*member, 0, len(c.members))
	for r, m := range c.members {
		if c.alive[r] && !m.departed {
			out = append(out, m)
		}
	}
	return out
}

func (c *Coordinator) handshake(conn net.Conn) {
	defer c.wg.Done()
	if c.cfg.HeartbeatTimeout > 0 {
		conn.SetReadDeadline(time.Now().Add(c.cfg.DialTimeout))
	}
	f, err := readFrame(conn)
	if err != nil || f.kind != kindHello || f.aux != uint64(c.size) {
		conn.Close()
		return
	}
	rank := f.from
	c.mu.Lock()
	if rank < 0 || rank >= c.size || !c.alive[rank] || c.members[rank] != nil || c.closed {
		c.mu.Unlock()
		conn.Close()
		return
	}
	m := &member{rank: rank, conn: conn}
	c.members[rank] = m
	c.lastSeen[rank] = c.cfg.Now()
	epoch := c.epoch
	aliveVec := make([]float64, 0, len(c.alive))
	for _, r := range c.aliveLocked() {
		aliveVec = append(aliveVec, float64(r))
	}
	c.mu.Unlock()
	conn.SetReadDeadline(time.Time{})
	if err := c.send(m, &frame{kind: kindWelcome, epoch: epoch, from: -1, vec: aliveVec}); err != nil {
		return // send already triggered the failure path
	}
	c.readLoop(m)
}

// send writes one frame to a member with the per-message deadline; a write
// failure fails the member (a peer that stops reading is gone).
func (c *Coordinator) send(m *member, f *frame) error {
	m.wmu.Lock()
	buf, err := appendFrame(nil, f)
	if err == nil {
		if c.cfg.MessageTimeout > 0 {
			m.conn.SetWriteDeadline(time.Now().Add(c.cfg.MessageTimeout))
		}
		_, err = m.conn.Write(buf)
	}
	m.wmu.Unlock()
	if err != nil {
		go c.fail(m.rank, fmt.Errorf("mpinet: write to rank %d: %w", m.rank, err))
	}
	return err
}

func (c *Coordinator) readLoop(m *member) {
	for {
		f, err := readFrame(m.conn)
		if err != nil {
			c.mu.Lock()
			departed := m.departed
			closed := c.closed
			c.mu.Unlock()
			if !departed && !closed {
				c.fail(m.rank, fmt.Errorf("mpinet: rank %d connection: %w", m.rank, err))
			}
			return
		}
		c.mu.Lock()
		c.lastSeen[m.rank] = c.cfg.Now()
		c.mu.Unlock()
		switch f.kind {
		case kindHeartbeat:
		case kindContribute:
			c.handleContribute(m.rank, f)
		case kindP2P:
			c.handleP2P(m.rank, f)
		case kindGoodbye:
			c.handleGoodbye(m)
			return
		default:
			c.fail(m.rank, fmt.Errorf("mpinet: rank %d sent unexpected frame kind %d", m.rank, f.kind))
			return
		}
	}
}

// handleGoodbye is a clean leave: the rank is removed from membership with
// no epoch bump — unless a collective is pending, in which case leaving
// early is indistinguishable from dying and is treated as a failure.
func (c *Coordinator) handleGoodbye(m *member) {
	c.mu.Lock()
	if len(c.pending) > 0 {
		c.mu.Unlock()
		c.fail(m.rank, fmt.Errorf("mpinet: rank %d left with a collective pending", m.rank))
		return
	}
	m.departed = true
	delete(c.alive, m.rank)
	c.mu.Unlock()
	m.conn.Close()
}

// fail declares rank dead: opens a new epoch, aborts every pending
// collective, and broadcasts the membership change so every member's
// in-flight (or next) collective fails fast with the typed error.
func (c *Coordinator) fail(rank int, cause error) {
	c.mu.Lock()
	if !c.alive[rank] || c.closed {
		c.mu.Unlock()
		return
	}
	delete(c.alive, rank)
	c.epoch++
	epoch := c.epoch
	c.pending = make(map[int]*collState) // abort: the broadcast below unblocks waiters
	var dead *member
	if m := c.members[rank]; m != nil {
		dead = m
	}
	targets := c.connectedLocked()
	c.mu.Unlock()
	if dead != nil {
		dead.conn.Close()
	}
	msg := []byte(cause.Error())
	if len(msg) > 512 {
		msg = msg[:512]
	}
	for _, m := range targets {
		c.send(m, &frame{kind: kindRankFailed, epoch: epoch, from: -1, aux: uint64(rank), extra: msg})
	}
}

// SweepStale fails every alive member whose last frame is older than the
// heartbeat timeout as of now. The automatic ticker calls this with real
// time; deterministic tests call it directly with a fake clock's now.
func (c *Coordinator) SweepStale(now time.Time) {
	c.mu.Lock()
	var stale []int
	var ages []time.Duration
	for r := range c.alive {
		if m := c.members[r]; m != nil && m.departed {
			continue
		}
		if age := now.Sub(c.lastSeen[r]); age > c.cfg.HeartbeatTimeout {
			stale = append(stale, r)
			ages = append(ages, age)
		}
	}
	c.mu.Unlock()
	for i, r := range stale {
		c.fail(r, fmt.Errorf("mpinet: rank %d heartbeat stale for %v (timeout %v)", r, ages[i], c.cfg.HeartbeatTimeout))
	}
}

// handleP2P routes a member's send to its target. Sends to dead ranks are
// dropped — the sender learns about the death from its next collective (or
// its Recv), exactly like a buffered MPI send.
func (c *Coordinator) handleP2P(from int, f *frame) {
	to := int(f.aux)
	c.mu.Lock()
	var target *member
	if to >= 0 && to < c.size && c.alive[to] {
		if m := c.members[to]; m != nil && !m.departed {
			target = m
		}
	}
	epoch := c.epoch
	c.mu.Unlock()
	if target == nil {
		return
	}
	c.send(target, &frame{kind: kindP2P, epoch: epoch, from: from, vec: f.vec})
}

func (c *Coordinator) handleContribute(rank int, f *frame) {
	c.mu.Lock()
	if f.epoch != c.epoch || !c.alive[rank] {
		// Stale: the member hasn't processed the epoch broadcast yet (its
		// conn is FIFO, so it will) — its retry re-contributes with the
		// new epoch and seq 0.
		c.mu.Unlock()
		return
	}
	st := c.pending[f.seq]
	if st == nil {
		st = &collState{header: f.aux, contrib: make(map[int][]float64)}
		c.pending[f.seq] = st
	}
	justSet := false
	if st.errMsg == nil && st.header != f.aux {
		// The ranks disagree about which collective this seq maps to — a
		// protocol bug above the transport. Recoverable: tombstone the
		// collective, error every contributor so far, keep membership
		// intact; later contributors get the error on arrival.
		st.errMsg = []byte(fmt.Sprintf("collective %d: mismatched headers (%x vs %x)", f.seq, st.header, f.aux))
		justSet = true
	}
	st.contrib[rank] = f.vec
	if st.errMsg != nil {
		var targets []*member
		if justSet {
			for r := range st.contrib {
				if m := c.members[r]; m != nil && !m.departed {
					targets = append(targets, m)
				}
			}
		} else if m := c.members[rank]; m != nil && !m.departed {
			targets = append(targets, m)
		}
		if len(st.contrib) >= len(c.alive) {
			delete(c.pending, f.seq)
		}
		epoch, seq, msg := c.epoch, f.seq, st.errMsg
		c.mu.Unlock()
		for _, m := range targets {
			c.send(m, &frame{kind: kindCollErr, epoch: epoch, seq: seq, from: -1, extra: msg})
		}
		return
	}
	if len(st.contrib) < len(c.alive) {
		c.mu.Unlock()
		return
	}
	// Complete: every alive rank contributed. Fold in ascending rank
	// order — the determinism contract — and broadcast.
	delete(c.pending, f.seq)
	ranks := c.aliveLocked()
	result, cerr := computeCollective(st, ranks)
	targets := c.connectedLocked()
	epoch, seq := c.epoch, f.seq
	c.mu.Unlock()
	if cerr != nil {
		msg := []byte(cerr.Error())
		for _, m := range targets {
			c.send(m, &frame{kind: kindCollErr, epoch: epoch, seq: seq, from: -1, extra: msg})
		}
		return
	}
	for _, m := range targets {
		c.send(m, &frame{kind: kindResult, epoch: epoch, seq: seq, from: -1, vec: result})
	}
}

// computeCollective folds the contributions of one completed collective in
// ascending rank order. A non-nil error is a recoverable usage error
// (length mismatch, dead bcast root), reported to every member as
// kindCollErr — membership is unaffected.
func computeCollective(st *collState, ranks []int) ([]float64, error) {
	kind, op, root := unpackColl(st.header)
	switch kind {
	case collBarrier:
		return nil, nil
	case collReduce:
		n := len(st.contrib[ranks[0]])
		for _, r := range ranks[1:] {
			if len(st.contrib[r]) != n {
				return nil, fmt.Errorf("mpinet: AllreduceSlice length mismatch: rank %d has %d, rank %d has %d",
					ranks[0], n, r, len(st.contrib[r]))
			}
		}
		out := append([]float64(nil), st.contrib[ranks[0]]...)
		for _, r := range ranks[1:] {
			src := st.contrib[r]
			for i := range out {
				out[i] = mpi.Op(op).Apply(out[i], src[i])
			}
		}
		return out, nil
	case collGather:
		out := make([]float64, 0, len(ranks))
		for _, r := range ranks {
			if len(st.contrib[r]) != 1 {
				return nil, fmt.Errorf("mpinet: Allgather: rank %d contributed %d values, want 1", r, len(st.contrib[r]))
			}
			out = append(out, st.contrib[r][0])
		}
		return out, nil
	case collGatherV:
		var out []float64
		for _, r := range ranks {
			out = append(out, st.contrib[r]...)
		}
		return out, nil
	case collBcast:
		v, ok := st.contrib[root]
		if !ok {
			return nil, fmt.Errorf("mpinet: bcast root %d is not an alive member", root)
		}
		if len(v) != 1 {
			return nil, fmt.Errorf("mpinet: bcast root contributed %d values, want 1", len(v))
		}
		return v, nil
	default:
		return nil, fmt.Errorf("mpinet: unknown collective kind %d", kind)
	}
}
