package adaptive_test

import (
	"context"
	"math"
	"testing"

	"repro/adaptive"
	"repro/internal/core"
)

// benchField is a 32³ field with realistic variation.
func benchField() *adaptive.Field {
	f := adaptive.NewField(32, 32, 32)
	for i := range f.Data {
		x := float64(i)
		f.Data[i] = float32(2 + math.Sin(x*0.37)*math.Cos(x*0.011))
	}
	return f
}

// BenchmarkFacadeOverhead pins the facade tax: the public System path and
// a direct internal/core engine run the same compression, and because
// options resolve once at construction the two must match in both time
// (within noise) and allocs/op (exactly). Compare the facade/direct
// sub-benchmarks with -benchmem.
func BenchmarkFacadeOverhead(b *testing.B) {
	ctx := context.Background()
	f := benchField()

	sys, err := adaptive.New(adaptive.WithPartitionDim(8))
	if err != nil {
		b.Fatal(err)
	}
	eng, err := core.NewEngine(core.Config{PartitionDim: 8})
	if err != nil {
		b.Fatal(err)
	}
	cal, err := sys.Calibrate(ctx, f)
	if err != nil {
		b.Fatal(err)
	}
	plan, err := sys.Plan(ctx, f, cal, adaptive.PlanOptions{AvgEB: 0.05})
	if err != nil {
		b.Fatal(err)
	}

	b.Run("facade", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := sys.CompressAdaptive(ctx, f, plan); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("direct", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := eng.CompressAdaptive(ctx, f, plan); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// TestFacadeAllocParity is the gating form of BenchmarkFacadeOverhead:
// the facade's per-call allocations must equal the direct engine's
// exactly (single-worker so the measurement is deterministic).
func TestFacadeAllocParity(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector runtime perturbs alloc counts; run without -race")
	}
	ctx := context.Background()
	f := benchField()

	sys, err := adaptive.New(adaptive.WithPartitionDim(8), adaptive.WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	eng, err := core.NewEngine(core.Config{PartitionDim: 8, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	cal, err := sys.Calibrate(ctx, f)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := sys.Plan(ctx, f, cal, adaptive.PlanOptions{AvgEB: 0.05})
	if err != nil {
		t.Fatal(err)
	}

	// Warm both scratch pools before measuring steady state.
	if _, err := sys.CompressAdaptive(ctx, f, plan); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.CompressAdaptive(ctx, f, plan); err != nil {
		t.Fatal(err)
	}

	facade := testing.AllocsPerRun(10, func() {
		if _, err := sys.CompressAdaptive(ctx, f, plan); err != nil {
			t.Fatal(err)
		}
	})
	direct := testing.AllocsPerRun(10, func() {
		if _, err := eng.CompressAdaptive(ctx, f, plan); err != nil {
			t.Fatal(err)
		}
	})
	if facade != direct {
		t.Fatalf("facade allocs/op %.1f != direct allocs/op %.1f", facade, direct)
	}
}
