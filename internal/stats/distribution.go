package stats

import "math"

// Distribution helpers backing the paper's error-propagation math
// (Sec. 3.2–3.4). The compressor's pointwise error is modeled as
// U[−eb, +eb]; the FFT of that error tends to a normal distribution by the
// central limit theorem.

// UniformVariance returns the variance of U[−eb, +eb], which is eb²/3.
func UniformVariance(eb float64) float64 { return eb * eb / 3 }

// UniformSineVariance returns the average per-term variance of
// eb·sin(2πnk/N) with eb ~ U[−eb, +eb], which the paper derives as
// (1/6)·eb² (Eq. 7, before the CLT sum). The returned value is the standard
// deviation sqrt(1/6)·eb.
func UniformSineVariance(eb float64) float64 { return math.Sqrt(1.0/6.0) * eb }

// NormalCDF returns the standard normal cumulative distribution at z.
func NormalCDF(z float64) float64 {
	return 0.5 * math.Erfc(-z/math.Sqrt2)
}

// NormalQuantile returns the z value such that NormalCDF(z) = p, for
// p in (0, 1). It uses the Acklam rational approximation refined with one
// Halley step; accuracy is ~1e-9, far beyond what the confidence-interval
// selection needs.
func NormalQuantile(p float64) float64 {
	if p <= 0 {
		return math.Inf(-1)
	}
	if p >= 1 {
		return math.Inf(1)
	}
	// Acklam's coefficients.
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02,
		-2.759285104469687e+02, 1.383577518672690e+02,
		-3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02,
		-1.556989798598866e+02, 6.680131188771972e+01,
		-1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01,
		-2.400758277161838e+00, -2.549732539343734e+00,
		4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01,
		2.445134137142996e+00, 3.754408661907416e+00}
	const plow, phigh = 0.02425, 1 - 0.02425
	var x float64
	switch {
	case p < plow:
		q := math.Sqrt(-2 * math.Log(p))
		x = (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= phigh:
		q := p - 0.5
		r := q * q
		x = (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		x = -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
	// One Halley refinement step.
	e := NormalCDF(x) - p
	u := e * math.Sqrt(2*math.Pi) * math.Exp(x*x/2)
	x = x - u/(1+x*u/2)
	return x
}

// ConfidenceFactor returns the number of standard deviations k such that a
// normal variable lies within ±k·σ with the given two-sided probability.
// The paper uses 2σ ↔ 95.45 % when turning a power-spectrum tolerance into
// an average error-bound budget.
func ConfidenceFactor(prob float64) float64 {
	if prob <= 0 {
		return 0
	}
	if prob >= 1 {
		return math.Inf(1)
	}
	return NormalQuantile(0.5 + prob/2)
}

// TwoSigmaConfidence is the coverage probability of ±2σ, quoted as 95.45 %
// in the paper.
const TwoSigmaConfidence = 0.9544997361036416
