package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("sequences diverged at step %d", i)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/100 identical outputs", same)
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestRNGUniformMoments(t *testing.T) {
	r := NewRNG(3)
	var m Moments
	for i := 0; i < 200000; i++ {
		m.Add(r.Uniform(-2, 2))
	}
	if math.Abs(m.Mean()) > 0.02 {
		t.Errorf("uniform mean = %v, want ~0", m.Mean())
	}
	// variance of U[-2,2] is (4)^2/12 = 4/3
	if math.Abs(m.Variance()-4.0/3.0) > 0.03 {
		t.Errorf("uniform variance = %v, want ~%v", m.Variance(), 4.0/3.0)
	}
}

func TestRNGNormalMoments(t *testing.T) {
	r := NewRNG(11)
	var m Moments
	for i := 0; i < 200000; i++ {
		m.Add(r.NormFloat64())
	}
	if math.Abs(m.Mean()) > 0.02 {
		t.Errorf("normal mean = %v, want ~0", m.Mean())
	}
	if math.Abs(m.Variance()-1) > 0.03 {
		t.Errorf("normal variance = %v, want ~1", m.Variance())
	}
}

func TestRNGIntnBounds(t *testing.T) {
	r := NewRNG(5)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d out of range", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Errorf("Intn(7) hit %d distinct values in 1000 draws, want 7", len(seen))
	}
}

func TestRNGIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestRNGPerm(t *testing.T) {
	r := NewRNG(9)
	p := r.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("invalid permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestRNGSplitIndependence(t *testing.T) {
	r := NewRNG(13)
	s := r.Split()
	// The split stream must not mirror the parent.
	same := 0
	for i := 0; i < 100; i++ {
		if r.Uint64() == s.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("split stream mirrors parent (%d/100 equal)", same)
	}
}

func TestMomentsBasics(t *testing.T) {
	var m Moments
	for _, x := range []float64{1, 2, 3, 4, 5} {
		m.Add(x)
	}
	if m.Count() != 5 {
		t.Errorf("count = %d", m.Count())
	}
	if m.Mean() != 3 {
		t.Errorf("mean = %v, want 3", m.Mean())
	}
	if m.Min() != 1 || m.Max() != 5 {
		t.Errorf("min/max = %v/%v", m.Min(), m.Max())
	}
	if math.Abs(m.Variance()-2) > 1e-12 {
		t.Errorf("variance = %v, want 2", m.Variance())
	}
	if math.Abs(m.Range()-4) > 1e-12 {
		t.Errorf("range = %v, want 4", m.Range())
	}
}

func TestMomentsMergeMatchesSequential(t *testing.T) {
	r := NewRNG(17)
	var all, left, right Moments
	for i := 0; i < 1000; i++ {
		x := r.NormFloat64() * 10
		all.Add(x)
		if i < 400 {
			left.Add(x)
		} else {
			right.Add(x)
		}
	}
	left.Merge(right)
	if left.Count() != all.Count() {
		t.Fatalf("merged count = %d, want %d", left.Count(), all.Count())
	}
	if math.Abs(left.Mean()-all.Mean()) > 1e-9 {
		t.Errorf("merged mean %v != %v", left.Mean(), all.Mean())
	}
	if math.Abs(left.Variance()-all.Variance()) > 1e-9*all.Variance() {
		t.Errorf("merged variance %v != %v", left.Variance(), all.Variance())
	}
	if left.Min() != all.Min() || left.Max() != all.Max() {
		t.Errorf("merged min/max mismatch")
	}
}

func TestMomentsMergeEmpty(t *testing.T) {
	var a, b Moments
	a.Add(5)
	a.Merge(b) // merging empty is a no-op
	if a.Count() != 1 || a.Mean() != 5 {
		t.Errorf("merge with empty changed accumulator: %+v", a)
	}
	b.Merge(a) // merging into empty copies
	if b.Count() != 1 || b.Mean() != 5 {
		t.Errorf("merge into empty failed: %+v", b)
	}
}

func TestPairwiseMetrics(t *testing.T) {
	a := []float32{0, 1, 2, 3}
	b := []float32{0, 1, 2, 4}
	mse, err := MSE(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mse-0.25) > 1e-12 {
		t.Errorf("mse = %v, want 0.25", mse)
	}
	mx, _ := MaxAbsError(a, b)
	if mx != 1 {
		t.Errorf("max abs err = %v, want 1", mx)
	}
	rel, _ := MaxRelError(a, b)
	if math.Abs(rel-1.0/3.0) > 1e-12 {
		t.Errorf("max rel err = %v, want 1/3", rel)
	}
	rmse, _ := RMSE(a, b)
	if math.Abs(rmse-0.5) > 1e-12 {
		t.Errorf("rmse = %v, want 0.5", rmse)
	}
	if _, err := MSE(a, b[:3]); err == nil {
		t.Error("MSE on mismatched lengths did not error")
	}
}

func TestPSNR(t *testing.T) {
	a := []float32{0, 1, 2, 3, 4}
	psnr, err := PSNR(a, a)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(psnr, 1) {
		t.Errorf("PSNR of identical = %v, want +Inf", psnr)
	}
	b := []float32{0, 1, 2, 3, 4.4}
	psnr, _ = PSNR(a, b)
	if psnr < 20 || psnr > 60 {
		t.Errorf("PSNR = %v, expected a sane finite value", psnr)
	}
}

func TestHistogramBasics(t *testing.T) {
	h, err := NewHistogram(0, 10, 10)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		h.Add(float64(i) + 0.5)
	}
	h.Add(-1)
	h.Add(11)
	if h.Total() != 12 || h.Under != 1 || h.Over != 1 || h.InRange() != 10 {
		t.Fatalf("counts wrong: %+v", h)
	}
	for i, c := range h.Counts {
		if c != 1 {
			t.Errorf("bin %d = %d, want 1", i, c)
		}
	}
	if h.BinWidth() != 1 {
		t.Errorf("bin width = %v", h.BinWidth())
	}
	if h.BinCenter(0) != 0.5 {
		t.Errorf("bin center = %v", h.BinCenter(0))
	}
	if h.ChiSquareUniform() != 0 {
		t.Errorf("chi2 of exactly-uniform = %v, want 0", h.ChiSquareUniform())
	}
}

func TestHistogramEdges(t *testing.T) {
	if _, err := NewHistogram(0, 10, 0); err == nil {
		t.Error("zero bins accepted")
	}
	if _, err := NewHistogram(5, 5, 3); err == nil {
		t.Error("empty range accepted")
	}
	h, _ := NewHistogram(0, 1, 4)
	h.Add(0)                    // lowest in-range value
	h.Add(math.Nextafter(1, 0)) // just below the top edge
	if h.InRange() != 2 {
		t.Errorf("edge values mishandled: %+v", h)
	}
}

func TestHistogramUniformityOfRNG(t *testing.T) {
	h, _ := NewHistogram(0, 1, 50)
	r := NewRNG(23)
	for i := 0; i < 100000; i++ {
		h.Add(r.Float64())
	}
	if dev := h.MaxDeviationFromUniform(); dev > 0.005 {
		t.Errorf("uniform RNG deviates %v from uniform histogram", dev)
	}
}

func TestCountInBand(t *testing.T) {
	xs := []float32{1, 2, 3, 4, 5}
	if n := CountInBand(xs, 2, 4); n != 2 {
		t.Errorf("CountInBand = %d, want 2 (half-open interval)", n)
	}
	if n := CountInBand(nil, 0, 1); n != 0 {
		t.Errorf("CountInBand(nil) = %d", n)
	}
}

func TestLinearFitExact(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{3, 5, 7, 9} // y = 1 + 2x
	a, b, r2, err := LinearFit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a-1) > 1e-9 || math.Abs(b-2) > 1e-9 || math.Abs(r2-1) > 1e-9 {
		t.Errorf("fit = (%v, %v, r2=%v), want (1, 2, 1)", a, b, r2)
	}
}

func TestLinearFitDegenerate(t *testing.T) {
	if _, _, _, err := LinearFit([]float64{1}, []float64{1}); err == nil {
		t.Error("single-point fit accepted")
	}
	if _, _, _, err := LinearFit([]float64{2, 2, 2}, []float64{1, 2, 3}); err == nil {
		t.Error("collinear-x fit accepted")
	}
}

func TestPowerLawFitExact(t *testing.T) {
	// y = 3 x^{-0.5}
	xs := []float64{0.25, 1, 4, 16}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 3 * math.Pow(x, -0.5)
	}
	coeff, exp, r2, err := PowerLawFit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(coeff-3) > 1e-9 || math.Abs(exp+0.5) > 1e-9 || r2 < 0.999999 {
		t.Errorf("power fit = (%v, %v, %v)", coeff, exp, r2)
	}
}

func TestLogFitExact(t *testing.T) {
	// y = 2 + 0.7 ln x
	xs := []float64{1, math.E, math.E * math.E, 10}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 2 + 0.7*math.Log(x)
	}
	a, b, r2, err := LogFit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a-2) > 1e-9 || math.Abs(b-0.7) > 1e-9 || r2 < 0.999999 {
		t.Errorf("log fit = (%v, %v, %v)", a, b, r2)
	}
}

func TestPolyfit2Exact(t *testing.T) {
	// y = 1 - 2x + 0.5x²
	xs := []float64{-2, -1, 0, 1, 2, 3}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 1 - 2*x + 0.5*x*x
	}
	a, b, c, err := Polyfit2(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a-1) > 1e-9 || math.Abs(b+2) > 1e-9 || math.Abs(c-0.5) > 1e-9 {
		t.Errorf("polyfit = (%v, %v, %v)", a, b, c)
	}
}

func TestQuantizedEntropy(t *testing.T) {
	// Constant data has zero entropy.
	if h := QuantizedEntropy([]float32{5, 5, 5, 5}, 16); h != 0 {
		t.Errorf("entropy of constant = %v", h)
	}
	// Two equiprobable levels → 1 bit.
	xs := make([]float32, 1000)
	for i := range xs {
		if i%2 == 0 {
			xs[i] = 0
		} else {
			xs[i] = 1
		}
	}
	if h := QuantizedEntropy(xs, 2); math.Abs(h-1) > 1e-9 {
		t.Errorf("entropy of fair coin = %v, want 1", h)
	}
	// Uniform over k levels → log2 k.
	r := NewRNG(31)
	u := make([]float32, 200000)
	for i := range u {
		u[i] = float32(r.Float64())
	}
	if h := QuantizedEntropy(u, 64); math.Abs(h-6) > 0.01 {
		t.Errorf("entropy of uniform = %v, want ~6", h)
	}
}

func TestSymbolEntropy(t *testing.T) {
	if h := SymbolEntropy([]int{7, 7, 7}); h != 0 {
		t.Errorf("constant symbols entropy = %v", h)
	}
	if h := SymbolEntropy([]int{0, 1, 2, 3}); math.Abs(h-2) > 1e-12 {
		t.Errorf("4 distinct symbols entropy = %v, want 2", h)
	}
}

func TestNormalCDFQuantileInverse(t *testing.T) {
	for _, p := range []float64{0.001, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999} {
		z := NormalQuantile(p)
		if got := NormalCDF(z); math.Abs(got-p) > 1e-8 {
			t.Errorf("CDF(Quantile(%v)) = %v", p, got)
		}
	}
	if z := NormalQuantile(0.5); math.Abs(z) > 1e-9 {
		t.Errorf("median quantile = %v, want 0", z)
	}
}

func TestConfidenceFactor(t *testing.T) {
	// ±2σ ↔ 95.45 %, the paper's choice.
	if k := ConfidenceFactor(TwoSigmaConfidence); math.Abs(k-2) > 1e-6 {
		t.Errorf("ConfidenceFactor(95.45%%) = %v, want 2", k)
	}
	if k := ConfidenceFactor(0.6826894921370859); math.Abs(k-1) > 1e-6 {
		t.Errorf("ConfidenceFactor(68.27%%) = %v, want 1", k)
	}
}

func TestUniformVariance(t *testing.T) {
	if v := UniformVariance(3); math.Abs(v-3) > 1e-12 {
		t.Errorf("UniformVariance(3) = %v, want 3", v)
	}
	// Empirically check with the RNG.
	r := NewRNG(37)
	var m Moments
	eb := 2.5
	for i := 0; i < 200000; i++ {
		m.Add(r.Uniform(-eb, eb))
	}
	if math.Abs(m.Variance()-UniformVariance(eb)) > 0.03*UniformVariance(eb) {
		t.Errorf("empirical variance %v vs model %v", m.Variance(), UniformVariance(eb))
	}
}

// Property: Moments.Merge is equivalent to sequential accumulation for
// arbitrary float inputs.
func TestQuickMomentsMerge(t *testing.T) {
	f := func(xs []float64, split uint8) bool {
		// Filter NaN/Inf which have no meaningful moments.
		clean := xs[:0]
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e100 {
				clean = append(clean, x)
			}
		}
		xs = clean
		if len(xs) == 0 {
			return true
		}
		k := int(split) % len(xs)
		var all, a, b Moments
		for i, x := range xs {
			all.Add(x)
			if i < k {
				a.Add(x)
			} else {
				b.Add(x)
			}
		}
		a.Merge(b)
		tol := 1e-6 * (1 + math.Abs(all.Variance()))
		return a.Count() == all.Count() &&
			math.Abs(a.Mean()-all.Mean()) <= 1e-6*(1+math.Abs(all.Mean())) &&
			math.Abs(a.Variance()-all.Variance()) <= tol
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: histogram total is always Under+Over+sum(bins).
func TestQuickHistogramConservation(t *testing.T) {
	f := func(xs []float64) bool {
		h, _ := NewHistogram(-1, 1, 8)
		for _, x := range xs {
			if math.IsNaN(x) {
				continue
			}
			h.Add(x)
		}
		var sum int64
		for _, c := range h.Counts {
			sum += c
		}
		return h.Total() == sum+h.Under+h.Over
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
