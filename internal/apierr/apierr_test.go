package apierr

import (
	"errors"
	"fmt"
	"strings"
	"testing"
)

func TestDriftRecalibrationErrorChain(t *testing.T) {
	cause := errors.New("core: cannot calibrate")
	var err error = &DriftRecalibrationError{Field: "rho", Drift: 0.4, Err: cause}

	if !errors.Is(err, ErrDriftRecalibration) {
		t.Fatal("sentinel not in the unwrap chain")
	}
	if !errors.Is(err, cause) {
		t.Fatal("cause not in the unwrap chain")
	}
	var dre *DriftRecalibrationError
	if !errors.As(err, &dre) || dre.Field != "rho" || dre.Drift != 0.4 {
		t.Fatalf("errors.As: %+v", dre)
	}
	msg := err.Error()
	for _, want := range []string{"rho", "0.4", "drift recalibration failed", "cannot calibrate"} {
		if !strings.Contains(msg, want) {
			t.Fatalf("message %q missing %q", msg, want)
		}
	}

	// One more wrapping layer (as the pipeline adds) keeps both visible.
	wrapped := fmt.Errorf("pipeline: field rho: %w", err)
	if !errors.Is(wrapped, ErrDriftRecalibration) || !errors.As(wrapped, &dre) {
		t.Fatal("wrapping hides the typed error")
	}
}

func TestSentinelsAreDistinct(t *testing.T) {
	sentinels := []error{ErrBadConfig, ErrCorruptArchive, ErrCodecUnknown, ErrDriftRecalibration}
	for i, a := range sentinels {
		for j, b := range sentinels {
			if (i == j) != errors.Is(a, b) {
				t.Fatalf("sentinel identity broken between %v and %v", a, b)
			}
		}
	}
}

func TestOverloadError(t *testing.T) {
	err := fmt.Errorf("server: %w", &OverloadError{Tenant: "astro", QueueDepth: 32, RetryAfterSeconds: 5})
	if !errors.Is(err, ErrOverloaded) {
		t.Fatal("sentinel not in chain")
	}
	var oe *OverloadError
	if !errors.As(err, &oe) || oe.Tenant != "astro" || oe.QueueDepth != 32 {
		t.Fatalf("typed details lost: %+v", oe)
	}
	for _, want := range []string{"astro", "32"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("message %q missing %q", err.Error(), want)
		}
	}
}

func TestRankFailedError(t *testing.T) {
	cause := errors.New("heartbeat timeout")
	err := fmt.Errorf("collective: %w", &RankFailedError{Rank: 3, Epoch: 2, Err: cause})
	if !errors.Is(err, ErrRankFailed) || !errors.Is(err, cause) {
		t.Fatal("sentinel or cause not in chain")
	}
	var rf *RankFailedError
	if !errors.As(err, &rf) || rf.Rank != 3 || rf.Epoch != 2 {
		t.Fatalf("typed details lost: %+v", rf)
	}
	for _, want := range []string{"rank 3", "epoch 2", "heartbeat timeout"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("message %q missing %q", err.Error(), want)
		}
	}
	// Without a cause, only the sentinel unwraps and the message still
	// names the rank.
	bare := &RankFailedError{Rank: 1}
	if !errors.Is(bare, ErrRankFailed) || !strings.Contains(bare.Error(), "rank 1") {
		t.Fatalf("bare error broken: %v", bare)
	}
}
