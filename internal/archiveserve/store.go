package archiveserve

import (
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/apierr"
	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/server"
	"repro/internal/sz"
	"repro/internal/zfp"
)

// StreamSuffix names archive streams in a store directory: a stream
// "demo" lives in <dir>/demo.acs with its sidecar in <dir>/demo.acs.idx.
const StreamSuffix = ".acs"

// rateRungs are the standard rate rungs the manifest predicts sizes for —
// the ZFP ladder clients are expected to browse along.
var rateRungs = []float64{0.5, 1, 2, 4, 8, 16, 32}

// Store serves read-only archive streams from one directory. Streams are
// opened lazily on first touch and stay open (file handle + footer index
// + sidecar in memory, never the payload); all access after open goes
// through ReadAt on the shared handle, so one open stream serves any
// number of concurrent requests.
type Store struct {
	dir string
	reg *codec.Registry

	mu      sync.Mutex
	streams map[string]*stream

	// sidecarRebuilds counts opens that had to rescan the stream because
	// the sidecar was missing, unreadable, or bound to different bytes.
	sidecarRebuilds uint64
}

// OpenStore opens dir as an archive store. Streams are not touched until
// requested; an empty directory is a valid (empty) store.
func OpenStore(dir string, reg *codec.Registry) (*Store, error) {
	if reg == nil {
		reg = codec.Default
	}
	fi, err := os.Stat(dir)
	if err != nil {
		return nil, fmt.Errorf("archiveserve: store: %w", err)
	}
	if !fi.IsDir() {
		return nil, fmt.Errorf("archiveserve: %w: store path %q is not a directory", apierr.ErrBadConfig, dir)
	}
	return &Store{dir: dir, reg: reg, streams: make(map[string]*stream)}, nil
}

// List names the streams currently present in the store directory.
func (st *Store) List() ([]string, error) {
	ents, err := os.ReadDir(st.dir)
	if err != nil {
		return nil, fmt.Errorf("archiveserve: store: %w", err)
	}
	var names []string
	for _, e := range ents {
		if n, ok := strings.CutSuffix(e.Name(), StreamSuffix); ok && !e.IsDir() && streamNameOK(n) {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	return names, nil
}

// Close releases every open stream handle.
func (st *Store) Close() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	var first error
	for _, s := range st.streams {
		if err := s.f.Close(); err != nil && first == nil {
			first = err
		}
	}
	st.streams = make(map[string]*stream)
	return first
}

// streamNameOK keeps stream names path-safe: they are joined into file
// paths, so anything beyond a flat token is rejected before it reaches
// the filesystem.
func streamNameOK(name string) bool {
	if len(name) == 0 || len(name) > 128 {
		return false
	}
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
		default:
			return false
		}
	}
	return true
}

// stream is one open archive: the file handle, the validated reader, the
// footer binding, the sidecar tables, and lazily built layout/manifest
// caches.
type stream struct {
	name      string
	f         *os.File
	size      int64
	sr        *core.StreamReader
	footerCRC uint32
	sc        *sidecar

	mu       sync.Mutex
	layouts  [][]core.FieldLayout // per step, nil until first touched
	manifest *Manifest
	maxRate  map[string]float64 // ZFP fields' stored rate, from step 0
}

// Stream opens (or returns the already-open) named stream.
func (st *Store) Stream(name string) (*stream, error) {
	if !streamNameOK(name) {
		return nil, fmt.Errorf("archiveserve: %w: stream %q", apierr.ErrNotFound, name)
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if s, ok := st.streams[name]; ok {
		return s, nil
	}
	s, rebuilt, err := openStream(filepath.Join(st.dir, name+StreamSuffix), name, st.reg)
	if err != nil {
		return nil, err
	}
	if rebuilt {
		st.sidecarRebuilds++
	}
	st.streams[name] = s
	return s, nil
}

func openStream(path, name string, reg *codec.Registry) (_ *stream, rebuilt bool, err error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, false, fmt.Errorf("archiveserve: %w: stream %q", apierr.ErrNotFound, name)
		}
		return nil, false, fmt.Errorf("archiveserve: stream %q: %w", name, err)
	}
	defer func() {
		if err != nil {
			f.Close()
		}
	}()
	fi, err := f.Stat()
	if err != nil {
		return nil, false, fmt.Errorf("archiveserve: stream %q: %w", name, err)
	}
	sr, err := core.OpenStreamWith(f, fi.Size(), reg)
	if err != nil {
		return nil, false, fmt.Errorf("archiveserve: stream %q: %w", name, err)
	}
	crc, err := footerRegionCRC(f, fi.Size())
	if err != nil {
		return nil, false, fmt.Errorf("archiveserve: stream %q: %w", name, err)
	}
	s := &stream{
		name: name, f: f, size: fi.Size(), sr: sr, footerCRC: crc,
		layouts: make([][]core.FieldLayout, sr.Steps()),
		maxRate: make(map[string]float64),
	}
	// Load the sidecar if it binds to this exact stream; otherwise rebuild
	// by scanning and persist the result (best effort — a read-only store
	// still serves, it just rescans on every open).
	if data, rerr := os.ReadFile(path + SidecarSuffix); rerr == nil {
		if sc, perr := parseSidecar(data); perr == nil && sc.footerCRC == crc && len(sc.steps) == sr.Steps() {
			s.sc = sc
		}
	}
	if s.sc == nil {
		sc, berr := buildSidecar(f, sr, crc)
		if berr != nil {
			return nil, false, fmt.Errorf("archiveserve: stream %q: %w", name, berr)
		}
		s.sc = sc
		rebuilt = true
		_ = os.WriteFile(path+SidecarSuffix, encodeSidecar(sc), 0o644)
	}
	return s, rebuilt, nil
}

// Steps returns the stream's step count.
func (s *stream) Steps() int { return s.sr.Steps() }

// layout returns step i's structural map, cached after the first read.
func (s *stream) layout(step int) ([]core.FieldLayout, error) {
	if step < 0 || step >= s.sr.Steps() {
		return nil, fmt.Errorf("archiveserve: %w: stream %q step %d (have %d)", apierr.ErrNotFound, s.name, step, s.sr.Steps())
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.layouts[step] == nil {
		ls, err := s.sr.StepLayout(step)
		if err != nil {
			return nil, err
		}
		s.layouts[step] = ls
	}
	return s.layouts[step], nil
}

// fieldLayout locates one field of one step.
func (s *stream) fieldLayout(step int, field string) (*core.FieldLayout, error) {
	ls, err := s.layout(step)
	if err != nil {
		return nil, err
	}
	for i := range ls {
		if ls[i].Name == field {
			return &ls[i], nil
		}
	}
	return nil, fmt.Errorf("archiveserve: %w: stream %q step %d has no field %q", apierr.ErrNotFound, s.name, step, field)
}

// readRange reads one absolute byte range of the stream file.
func (s *stream) readRange(off, n int64) ([]byte, error) {
	buf := make([]byte, n)
	if _, err := s.f.ReadAt(buf, off); err != nil {
		return nil, fmt.Errorf("archiveserve: stream %q: %w", s.name, err)
	}
	return buf, nil
}

// fieldMaxRate returns the stored ZFP rate of a field (the rate ceiling
// lower-rate requests truncate toward), parsed once from step 0's first
// partition header and cached. Non-ZFP fields return 0.
func (s *stream) fieldMaxRate(field string) (float64, error) {
	s.mu.Lock()
	if r, ok := s.maxRate[field]; ok {
		s.mu.Unlock()
		return r, nil
	}
	s.mu.Unlock()
	fl, err := s.fieldLayout(0, field)
	if err != nil {
		return 0, err
	}
	rate := 0.0
	if len(fl.Partitions) > 0 && fl.Partitions[0].Codec == codec.ZFP {
		body, err := s.readRange(fl.Partitions[0].BodyOffset, fl.Partitions[0].BodyLength)
		if err != nil {
			return 0, err
		}
		c, err := zfp.Parse(body)
		if err != nil {
			return 0, fmt.Errorf("archiveserve: stream %q field %q: %w", s.name, field, err)
		}
		rate = c.Rate
	}
	s.mu.Lock()
	s.maxRate[field] = rate
	s.mu.Unlock()
	return rate, nil
}

// splice assembles the field's v2 archive at the given (lower) rate by
// bit-prefix splicing every partition out of the stored max-rate stream —
// byte-identical to compressing at that rate directly, with zero
// recompression: each partition is zfp.Parse + sidecar table +
// TruncateToRate, and the archive envelope is rebuilt by the same
// CompressedField.Bytes used at write time.
func (s *stream) splice(step int, fl *core.FieldLayout, rate float64) ([]byte, error) {
	fi := s.sc.field(step, fl.Name)
	if fi == nil || len(fi.starts) != len(fl.Partitions) {
		return nil, fmt.Errorf("archiveserve: %w: stream %q step %d field %q missing from sidecar", apierr.ErrCorruptArchive, s.name, step, fl.Name)
	}
	cf := &core.CompressedField{
		Nx: fl.Nx, Ny: fl.Ny, Nz: fl.Nz,
		PartitionDim: fl.PartitionDim,
		Codec:        codec.ZFP,
		Parts:        make([]codec.Frame, 0, len(fl.Partitions)),
	}
	var scratch zfp.Scratch
	for p, pl := range fl.Partitions {
		if pl.Codec != codec.ZFP {
			return nil, fmt.Errorf("archiveserve: %w: field %q partition %d is %q, rate slicing is a zfp property", apierr.ErrBadConfig, fl.Name, p, pl.Codec)
		}
		body, err := s.readRange(pl.BodyOffset, pl.BodyLength)
		if err != nil {
			return nil, err
		}
		c, err := zfp.Parse(body)
		if err != nil {
			return nil, fmt.Errorf("archiveserve: stream %q field %q partition %d: %w", s.name, fl.Name, p, err)
		}
		ix, err := zfp.NewIndexed(c, fi.starts[p])
		if err != nil {
			return nil, fmt.Errorf("archiveserve: stream %q field %q partition %d: %w", s.name, fl.Name, p, err)
		}
		tc, err := ix.TruncateToRate(rate, &scratch)
		if err != nil {
			return nil, err
		}
		cf.Parts = append(cf.Parts, codec.WrapZFP(tc))
	}
	return cf.Bytes(), nil
}

// preview reconstructs the SZ progressive rung: every partition is
// entropy-decoded once, coarsened to the top `octaves` correction
// octaves (outliers always kept), and the reassembled field is returned
// in the service's raw field wire format (server.EncodeField).
func (s *stream) preview(step int, fl *core.FieldLayout, octaves int) ([]byte, error) {
	p, err := grid.NewPartitioner(fl.Nx, fl.Ny, fl.Nz,
		fl.Nx/fl.PartitionDim, fl.Ny/fl.PartitionDim, fl.Nz/fl.PartitionDim)
	if err != nil {
		return nil, fmt.Errorf("archiveserve: stream %q field %q: %w", s.name, fl.Name, err)
	}
	if p.Count() != len(fl.Partitions) {
		return nil, fmt.Errorf("archiveserve: %w: stream %q field %q has %d partitions, geometry implies %d",
			apierr.ErrCorruptArchive, s.name, fl.Name, len(fl.Partitions), p.Count())
	}
	out := grid.NewField3D(fl.Nx, fl.Ny, fl.Nz)
	for i, pl := range fl.Partitions {
		if pl.Codec != codec.SZ {
			return nil, fmt.Errorf("archiveserve: %w: field %q partition %d is %q, preview is an sz property", apierr.ErrBadConfig, fl.Name, i, pl.Codec)
		}
		body, err := s.readRange(pl.BodyOffset, pl.BodyLength)
		if err != nil {
			return nil, err
		}
		c, err := sz.Parse(body)
		if err != nil {
			return nil, fmt.Errorf("archiveserve: stream %q field %q partition %d: %w", s.name, fl.Name, i, err)
		}
		brick, _, err := sz.DecompressPreview(c, octaves)
		if err != nil {
			return nil, err
		}
		if err := grid.Insert(out, p.Partition(i), brick.Data); err != nil {
			return nil, fmt.Errorf("archiveserve: stream %q field %q partition %d: %w", s.name, fl.Name, i, err)
		}
	}
	return server.EncodeField(out), nil
}

// Manifest describes one stream to clients: what steps and fields exist,
// which are progressive, and the exact byte sizes PredictSize derives for
// the standard rate rungs — everything a reader needs to plan a browse
// without fetching a byte of payload.
type Manifest struct {
	Stream string `json:"stream"`
	Steps  int    `json:"steps"`
	// ETag is the stream-wide validator (footer checksum); every
	// representation ETag of this stream embeds it.
	ETag   string          `json:"etag"`
	Fields []FieldManifest `json:"fields"`
}

// FieldManifest describes one field (geometry from step 0; steps of one
// stream share a layout).
type FieldManifest struct {
	Name         string `json:"name"`
	Codec        string `json:"codec"`
	Nx           int    `json:"nx"`
	Ny           int    `json:"ny"`
	Nz           int    `json:"nz"`
	PartitionDim int    `json:"partition_dim"`
	// StoredBytes is the field's archived payload size at step 0.
	StoredBytes int64 `json:"stored_bytes"`
	// Progressive marks ZFP fields servable at any ?rate up to MaxRate.
	Progressive bool    `json:"progressive"`
	MaxRate     float64 `json:"max_rate,omitempty"`
	// Rungs are exact predicted sizes at the standard rate rungs
	// (PredictSize over the sidecar tables — no decompression involved).
	Rungs []RungSize `json:"rungs,omitempty"`
	// Preview marks SZ fields servable as a coarsened ?preview rung.
	Preview bool `json:"preview,omitempty"`
}

// RungSize is one rate rung's exact serialized archive size.
type RungSize struct {
	Rate  float64 `json:"rate"`
	Bytes int64   `json:"bytes"`
}

// Manifest builds (once) and returns the stream's manifest.
func (s *stream) Manifest() (*Manifest, error) {
	s.mu.Lock()
	m := s.manifest
	s.mu.Unlock()
	if m != nil {
		return m, nil
	}
	if s.sr.Steps() == 0 {
		m = &Manifest{Stream: s.name, Steps: 0, ETag: streamETag(s.footerCRC)}
		s.mu.Lock()
		s.manifest = m
		s.mu.Unlock()
		return m, nil
	}
	layouts, err := s.layout(0)
	if err != nil {
		return nil, err
	}
	m = &Manifest{Stream: s.name, Steps: s.sr.Steps(), ETag: streamETag(s.footerCRC)}
	for i := range layouts {
		fl := &layouts[i]
		fm := FieldManifest{
			Name: fl.Name, Nx: fl.Nx, Ny: fl.Ny, Nz: fl.Nz,
			PartitionDim: fl.PartitionDim, StoredBytes: fl.ArchiveLength,
		}
		if len(fl.Partitions) > 0 {
			fm.Codec = string(fl.Partitions[0].Codec)
		}
		switch codec.ID(fm.Codec) {
		case codec.ZFP:
			fm.Progressive = true
			if err := s.fillRungs(fl, &fm); err != nil {
				return nil, err
			}
		case codec.SZ:
			fm.Preview = true
		}
		m.Fields = append(m.Fields, fm)
	}
	s.mu.Lock()
	s.manifest = m
	s.mu.Unlock()
	return m, nil
}

// fillRungs computes the exact archive size at each standard rate rung:
// the stored envelope overhead (header + per-partition length prefixes +
// frame envelopes) plus PredictSize of every partition at the rung.
func (s *stream) fillRungs(fl *core.FieldLayout, fm *FieldManifest) error {
	fi := s.sc.field(0, fl.Name)
	if fi == nil || len(fi.starts) != len(fl.Partitions) {
		return fmt.Errorf("archiveserve: %w: stream %q field %q missing from sidecar", apierr.ErrCorruptArchive, s.name, fl.Name)
	}
	// Envelope overhead = archived length minus the codec-native bodies
	// and their length prefixes and frame headers, which is invariant
	// under rate truncation.
	overhead := fl.ArchiveLength
	for _, pl := range fl.Partitions {
		overhead -= 4 + int64(codec.FrameOverhead(pl.Codec)) + pl.BodyLength
	}
	var ixs []*zfp.Indexed
	for p, pl := range fl.Partitions {
		body, err := s.readRange(pl.BodyOffset, pl.BodyLength)
		if err != nil {
			return err
		}
		c, err := zfp.Parse(body)
		if err != nil {
			return fmt.Errorf("archiveserve: stream %q field %q partition %d: %w", s.name, fl.Name, p, err)
		}
		if fm.MaxRate == 0 {
			fm.MaxRate = c.Rate
		}
		ix, err := zfp.NewIndexed(c, fi.starts[p])
		if err != nil {
			return fmt.Errorf("archiveserve: stream %q field %q partition %d: %w", s.name, fl.Name, p, err)
		}
		ixs = append(ixs, ix)
	}
	for _, rung := range rateRungs {
		if rung >= fm.MaxRate {
			// The stored rate itself is not a rung: a request at or above
			// it serves the stored bytes, whose size is StoredBytes.
			break
		}
		total := overhead
		for _, ix := range ixs {
			n, err := ix.PredictSize(rung)
			if err != nil {
				return err
			}
			total += 4 + int64(codec.FrameOverhead(codec.ZFP)) + int64(n)
		}
		fm.Rungs = append(fm.Rungs, RungSize{Rate: rung, Bytes: total})
	}
	return nil
}

// streamETag renders the stream-wide validator.
func streamETag(crc uint32) string { return fmt.Sprintf("%08x", crc) }

// fieldETag derives a representation's strong ETag: stream footer
// checksum + step + field + variant token. Any change to the stream
// changes the footer CRC and with it every ETag, so CDNs revalidate
// exactly when they must.
func fieldETag(footerCRC uint32, step int, field, token string) string {
	return fmt.Sprintf("\"%08x-%d-%08x-%s\"", footerCRC, step,
		crc32.Checksum([]byte(field), castagnoli), token)
}

// rateToken renders a rate bucket as an ETag/cache-key token.
func rateToken(rate float64) string {
	return "r" + strconv.FormatFloat(rate, 'g', -1, 64)
}

// quantizeRate buckets a requested rate up to the next quarter-bit so the
// cache and CDN see a small set of representations instead of one per
// float the clients dream up. Rounding up means a client never receives
// less quality than it asked for; exact multiples (the common ?rate=8)
// are their own bucket.
func quantizeRate(rate float64) float64 {
	q := math.Ceil(rate*4) / 4
	if q < 0.5 {
		q = 0.5
	}
	return q
}
