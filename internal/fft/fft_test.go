package fft

import (
	"math"
	"math/cmplx"
	"testing"
	"testing/quick"

	"repro/internal/grid"
	"repro/internal/stats"
)

func maxDiff(a, b []complex128) float64 {
	var m float64
	for i := range a {
		d := cmplx.Abs(a[i] - b[i])
		if d > m {
			m = d
		}
	}
	return m
}

func randComplex(n int, seed uint64) []complex128 {
	r := stats.NewRNG(seed)
	out := make([]complex128, n)
	for i := range out {
		out[i] = complex(r.NormFloat64(), r.NormFloat64())
	}
	return out
}

func TestFFTMatchesDFT(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8, 16, 64, 3, 5, 6, 7, 12, 15, 31, 100} {
		p, err := NewPlan(n)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		x := randComplex(n, uint64(n))
		want := DFT(x)
		got := append([]complex128(nil), x...)
		if err := p.Forward(got); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		scale := math.Sqrt(float64(n))
		if d := maxDiff(got, want); d > 1e-9*scale {
			t.Errorf("n=%d: FFT differs from DFT by %g", n, d)
		}
	}
}

func TestFFTInverseRoundTrip(t *testing.T) {
	for _, n := range []int{1, 2, 8, 32, 128, 3, 10, 17, 49} {
		p, _ := NewPlan(n)
		x := randComplex(n, 1000+uint64(n))
		got := append([]complex128(nil), x...)
		if err := p.Forward(got); err != nil {
			t.Fatal(err)
		}
		if err := p.Inverse(got); err != nil {
			t.Fatal(err)
		}
		if d := maxDiff(got, x); d > 1e-10*float64(n) {
			t.Errorf("n=%d: round trip error %g", n, d)
		}
	}
}

func TestFFTLinearity(t *testing.T) {
	n := 64
	p, _ := NewPlan(n)
	a := randComplex(n, 7)
	b := randComplex(n, 8)
	sum := make([]complex128, n)
	for i := range sum {
		sum[i] = 2*a[i] + 3i*b[i]
	}
	fa := append([]complex128(nil), a...)
	fb := append([]complex128(nil), b...)
	fs := append([]complex128(nil), sum...)
	p.Forward(fa)
	p.Forward(fb)
	p.Forward(fs)
	for i := range fs {
		want := 2*fa[i] + 3i*fb[i]
		if cmplx.Abs(fs[i]-want) > 1e-9 {
			t.Fatalf("linearity violated at bin %d", i)
		}
	}
}

func TestFFTParseval(t *testing.T) {
	n := 256
	p, _ := NewPlan(n)
	x := randComplex(n, 9)
	var timeE float64
	for _, v := range x {
		timeE += real(v)*real(v) + imag(v)*imag(v)
	}
	f := append([]complex128(nil), x...)
	p.Forward(f)
	var freqE float64
	for _, v := range f {
		freqE += real(v)*real(v) + imag(v)*imag(v)
	}
	if math.Abs(freqE/float64(n)-timeE) > 1e-8*timeE {
		t.Errorf("Parseval violated: %v vs %v", freqE/float64(n), timeE)
	}
}

func TestFFTImpulse(t *testing.T) {
	// The DFT of a unit impulse is all ones.
	n := 32
	p, _ := NewPlan(n)
	x := make([]complex128, n)
	x[0] = 1
	p.Forward(x)
	for i, v := range x {
		if cmplx.Abs(v-1) > 1e-12 {
			t.Fatalf("impulse bin %d = %v", i, v)
		}
	}
}

func TestFFTConstant(t *testing.T) {
	// The DFT of a constant is a delta at k=0.
	n := 64
	p, _ := NewPlan(n)
	x := make([]complex128, n)
	for i := range x {
		x[i] = 3
	}
	p.Forward(x)
	if cmplx.Abs(x[0]-complex(3*float64(n), 0)) > 1e-9 {
		t.Errorf("DC bin = %v", x[0])
	}
	for i := 1; i < n; i++ {
		if cmplx.Abs(x[i]) > 1e-9 {
			t.Errorf("bin %d = %v, want 0", i, x[i])
		}
	}
}

func TestPlanErrors(t *testing.T) {
	if _, err := NewPlan(0); err == nil {
		t.Error("NewPlan(0) accepted")
	}
	p, _ := NewPlan(8)
	if err := p.Forward(make([]complex128, 4)); err == nil {
		t.Error("wrong-length input accepted")
	}
}

func TestPlan3DMatchesSeparableDFT(t *testing.T) {
	// Verify a small 3-D transform against applying naive DFT per axis.
	nx, ny, nz := 4, 3, 2
	data := randComplex(nx*ny*nz, 11)
	want := append([]complex128(nil), data...)
	// x lines
	for z := 0; z < nz; z++ {
		for y := 0; y < ny; y++ {
			line := make([]complex128, nx)
			for x := 0; x < nx; x++ {
				line[x] = want[(z*ny+y)*nx+x]
			}
			line = DFT(line)
			for x := 0; x < nx; x++ {
				want[(z*ny+y)*nx+x] = line[x]
			}
		}
	}
	// y lines
	for z := 0; z < nz; z++ {
		for x := 0; x < nx; x++ {
			line := make([]complex128, ny)
			for y := 0; y < ny; y++ {
				line[y] = want[(z*ny+y)*nx+x]
			}
			line = DFT(line)
			for y := 0; y < ny; y++ {
				want[(z*ny+y)*nx+x] = line[y]
			}
		}
	}
	// z lines
	for y := 0; y < ny; y++ {
		for x := 0; x < nx; x++ {
			line := make([]complex128, nz)
			for z := 0; z < nz; z++ {
				line[z] = want[(z*ny+y)*nx+x]
			}
			line = DFT(line)
			for z := 0; z < nz; z++ {
				want[(z*ny+y)*nx+x] = line[z]
			}
		}
	}
	p, err := NewPlan3D(nx, ny, nz, 2)
	if err != nil {
		t.Fatal(err)
	}
	got := append([]complex128(nil), data...)
	if err := p.Forward(got); err != nil {
		t.Fatal(err)
	}
	if d := maxDiff(got, want); d > 1e-9 {
		t.Errorf("3-D FFT differs from separable DFT by %g", d)
	}
}

func TestPlan3DRoundTrip(t *testing.T) {
	for _, shape := range [][3]int{{8, 8, 8}, {16, 4, 2}, {5, 6, 7}, {1, 1, 16}} {
		p, err := NewPlan3D(shape[0], shape[1], shape[2], 0)
		if err != nil {
			t.Fatal(err)
		}
		x := randComplex(shape[0]*shape[1]*shape[2], 13)
		got := append([]complex128(nil), x...)
		if err := p.Forward(got); err != nil {
			t.Fatal(err)
		}
		if err := p.Inverse(got); err != nil {
			t.Fatal(err)
		}
		if d := maxDiff(got, x); d > 1e-9 {
			t.Errorf("shape %v: round trip error %g", shape, d)
		}
	}
}

func TestPlan3DWorkerCountInvariance(t *testing.T) {
	x := randComplex(16*16*16, 17)
	var ref []complex128
	for _, workers := range []int{1, 2, 4, 8} {
		p, _ := NewPlan3D(16, 16, 16, workers)
		got := append([]complex128(nil), x...)
		if err := p.Forward(got); err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = got
			continue
		}
		if d := maxDiff(got, ref); d != 0 {
			t.Errorf("workers=%d: result differs by %g from single-worker", workers, d)
		}
	}
}

func TestPlan3DShapeErrors(t *testing.T) {
	if _, err := NewPlan3D(0, 4, 4, 1); err == nil {
		t.Error("zero dim accepted")
	}
	p, _ := NewPlan3D(4, 4, 4, 1)
	if err := p.Forward(make([]complex128, 5)); err == nil {
		t.Error("bad length accepted")
	}
}

func TestForward3DField(t *testing.T) {
	f := grid.NewCube(8)
	f.Fill(2)
	spec, err := Forward3DField(f, 2)
	if err != nil {
		t.Fatal(err)
	}
	if cmplx.Abs(spec[0]-complex(2*512, 0)) > 1e-9 {
		t.Errorf("DC bin = %v, want 1024", spec[0])
	}
	for i := 1; i < len(spec); i++ {
		if cmplx.Abs(spec[i]) > 1e-9 {
			t.Fatalf("non-DC bin %d = %v", i, spec[i])
		}
	}
}

// Property: Parseval holds for arbitrary inputs at power-of-two and
// Bluestein lengths.
func TestQuickParseval(t *testing.T) {
	f := func(re, im []float64) bool {
		n := len(re)
		if n == 0 || n > 128 {
			return true
		}
		if len(im) < n {
			return true
		}
		x := make([]complex128, n)
		var timeE float64
		for i := 0; i < n; i++ {
			a, b := re[i], im[i]
			if math.IsNaN(a) || math.IsInf(a, 0) || math.Abs(a) > 1e15 {
				a = 0
			}
			if math.IsNaN(b) || math.IsInf(b, 0) || math.Abs(b) > 1e15 {
				b = 0
			}
			x[i] = complex(a, b)
			timeE += a*a + b*b
		}
		p, err := NewPlan(n)
		if err != nil {
			return false
		}
		if err := p.Forward(x); err != nil {
			return false
		}
		var freqE float64
		for _, v := range x {
			freqE += real(v)*real(v) + imag(v)*imag(v)
		}
		return math.Abs(freqE/float64(n)-timeE) <= 1e-6*(timeE+1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
