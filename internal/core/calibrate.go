package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/apierr"
	"repro/internal/grid"
	"repro/internal/model"
	"repro/internal/stats"
)

// Calibration is a fitted rate model for one field kind. The paper fits the
// shared exponent c once and predicts each partition's coefficient from its
// mean (Sec. 3.5); we calibrate per field kind (density, temperature, ...)
// because absolute value scales differ by orders of magnitude between
// fields, and reuse the calibration across snapshots (Fig. 10b shows rate
// curves are consistent over time).
type Calibration struct {
	Model *model.RateModel
	// Curves are the sampled calibration curves (kept for diagnostics and
	// the Fig. 9/10 experiments).
	Curves []model.Curve
	// PartitionIDs[i] is the partition index curve i was sampled from.
	PartitionIDs []int
	// EBs is the error-bound grid the curves were sampled at.
	EBs []float64
}

// CalibrationOptions tunes sampling.
type CalibrationOptions struct {
	// Partitions is the number of sampled partitions (default 16),
	// spread evenly across the feature range.
	Partitions int
	// RelEBs is the error-bound grid relative to the field's mean |value|
	// (default {1e-3, 3e-3, 1e-2, 3e-2, 0.1, 0.3, 1}). Anchoring on the
	// mean rather than the range keeps the grid in the regime where error
	// bounds are actually planned, even for heavy-tailed fields whose
	// range is 10⁵× their mean.
	RelEBs []float64
	// EBs, when non-empty, overrides the relative grid with absolute
	// error bounds.
	EBs []float64
}

func (o CalibrationOptions) withDefaults() CalibrationOptions {
	if o.Partitions == 0 {
		o.Partitions = 16
	}
	if len(o.RelEBs) == 0 {
		o.RelEBs = []float64{1e-3, 3e-3, 1e-2, 3e-2, 0.1, 0.3, 1}
	}
	return o
}

// Calibrate samples bit-rate/error-bound curves from a representative field
// and fits the rate model. This is the offline step of the paper's
// methodology — done once, reused for every snapshot and partition.
// Cancellation is checked between sample compressions.
func (e *Engine) Calibrate(ctx context.Context, f *grid.Field3D, opts ...CalibrationOptions) (*Calibration, error) {
	var o CalibrationOptions
	if len(opts) > 0 {
		o = opts[0]
	}
	o = o.withDefaults()

	p, err := e.partitioner(f)
	if err != nil {
		return nil, err
	}
	features := e.extractFeatures(ctx, f, p)
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("core: calibration: %w", err)
	}
	lo, hi := f.MinMax()
	if hi <= lo {
		return nil, fmt.Errorf("core: %w: cannot calibrate on a constant field", apierr.ErrBadConfig)
	}
	var ebs []float64
	if len(o.EBs) > 0 {
		ebs = append([]float64(nil), o.EBs...)
	} else {
		anchor := stats.MeanOf(features) // dataset mean |value|
		if anchor <= 0 {
			return nil, errors.New("core: zero mean |value|; cannot anchor calibration grid")
		}
		ebs = make([]float64, len(o.RelEBs))
		for i, rel := range o.RelEBs {
			ebs[i] = rel * anchor
		}
	}
	for _, eb := range ebs {
		if eb <= 0 {
			return nil, fmt.Errorf("core: %w: non-positive calibration eb %v", apierr.ErrBadConfig, eb)
		}
	}

	// Pick sample partitions at evenly spaced feature quantiles so the
	// C_m-vs-feature fit sees the whole compressibility range.
	idx := make([]int, len(features))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return features[idx[a]] < features[idx[b]] })
	nSamp := o.Partitions
	if nSamp > len(idx) {
		nSamp = len(idx)
	}
	if nSamp < 2 {
		return nil, fmt.Errorf("core: %w: need at least 2 partitions to calibrate", apierr.ErrBadConfig)
	}
	samples := make([]int, 0, nSamp)
	for i := 0; i < nSamp; i++ {
		q := idx[i*(len(idx)-1)/(nSamp-1)]
		samples = append(samples, q)
	}
	// Heavy-tailed fields (most partitions are near-empty voids) would
	// fill every quantile with flat curves, so the top partitions by
	// feature are always included: they carry the rate information.
	topK := nSamp / 2
	if topK < 4 {
		topK = 4
	}
	for i := 0; i < topK && i < len(idx); i++ {
		samples = append(samples, idx[len(idx)-1-i])
	}
	// De-duplicate while preserving order (quantiles can collide on small
	// partition counts).
	seen := make(map[int]bool, len(samples))
	uniq := samples[:0]
	for _, s := range samples {
		if !seen[s] {
			seen[s] = true
			uniq = append(uniq, s)
		}
	}
	samples = uniq

	// The curves are sampled through the engine's configured codec, so the
	// fitted rate model describes the backend that will actually compress —
	// cross-codec calibration for free.
	curves := make([]model.Curve, 0, len(samples))
	ids := make([]int, 0, len(samples))
	parts := p.Partitions()
	scratch := e.getScratch()
	defer e.putScratch(scratch)
	for _, pi := range samples {
		part := parts[pi]
		data := e.brick(scratch, f, part)
		nx, ny, nz := part.Dims()
		cu := model.Curve{Feature: features[pi], EBs: ebs}
		rates := make([]float64, len(ebs))
		for j, eb := range ebs {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("core: calibration: %w", err)
			}
			c, err := e.cdc.Compress(data, nx, ny, nz, e.codecOptions(eb), scratch)
			if err != nil {
				return nil, fmt.Errorf("core: calibration compress (partition %d, eb %g): %w", pi, eb, err)
			}
			rates[j] = c.BitRate()
		}
		cu.BitRates = rates
		curves = append(curves, cu)
		ids = append(ids, pi)
	}
	rm, err := model.Calibrate(curves)
	if err != nil {
		return nil, fmt.Errorf("core: rate-model fit: %w", err)
	}
	return &Calibration{Model: rm, Curves: curves, PartitionIDs: ids, EBs: ebs}, nil
}

// SuggestStaticEB inverts the rate model for the static baseline: the
// uniform bound that the model predicts hits the same average bit rate as
// a given adaptive plan (used by equal-rate comparisons).
func (c *Calibration) SuggestStaticEB(features []float64, targetBitRate float64) (float64, error) {
	if c == nil || c.Model == nil {
		return 0, fmt.Errorf("core: %w: nil calibration", apierr.ErrBadConfig)
	}
	if targetBitRate <= 0 {
		return 0, fmt.Errorf("core: %w: target bit rate must be positive", apierr.ErrBadConfig)
	}
	// Bisection on eb: dataset bit rate is monotone decreasing in eb.
	lo, hi := 1e-12, 1e12
	for i := 0; i < 200; i++ {
		mid := math.Sqrt(lo * hi) // geometric, spans decades
		uniform := make([]float64, len(features))
		for j := range uniform {
			uniform[j] = mid
		}
		br, err := c.Model.DatasetBitRate(features, uniform)
		if err != nil {
			return 0, err
		}
		if br > targetBitRate {
			lo = mid
		} else {
			hi = mid
		}
	}
	return math.Sqrt(lo * hi), nil
}
