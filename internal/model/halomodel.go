package model

import (
	"errors"
	"math"
)

// Halo-finder error model (paper Eqs. 11–14). Compression error only flips
// a cell's halo candidacy when the cell's value lies within ±eb of the
// boundary threshold. Locally the value histogram is flat, so the flip
// probability integrates to exactly 25 % (Eq. 12), the expected number of
// fault cells per partition is n_bc/4 (Eq. 13), and the resulting total
// halo-mass distortion is t_boundary·Σ_m e_m (Eq. 11) because each flipped
// edge cell changes a halo's mass by roughly the threshold value (Table 1).

// PFault is the probability that a cell inside the ±eb threshold band is
// fault-detected (Eq. 12).
const PFault = 0.25

// FaultCells returns the expected number of fault-detected cells in a
// partition with nbc boundary cells (Eq. 13).
func FaultCells(nbc float64) float64 { return nbc * PFault }

// MassFault returns the expected total absolute halo-mass distortion
// (Eq. 11): t_boundary times the summed per-partition fault-cell counts.
func MassFault(tBoundary float64, faultCellsPerPartition []float64) float64 {
	var sum float64
	for _, e := range faultCellsPerPartition {
		sum += e
	}
	return tBoundary * sum
}

// MassFaultFromBoundaryCells composes Eqs. 11–13 with the linear band
// scaling n_bc(eb) = n_ref·eb/refEB: given each partition's boundary-cell
// count measured at refEB and its assigned error bound, return the expected
// total mass distortion.
func MassFaultFromBoundaryCells(tBoundary, refEB float64, nRef []int, ebs []float64) (float64, error) {
	if len(nRef) != len(ebs) {
		return 0, errors.New("model: boundary-cell and error-bound lists differ in length")
	}
	if refEB <= 0 {
		return 0, errors.New("model: reference error bound must be positive")
	}
	var sum float64
	for i := range nRef {
		nbc := float64(nRef[i]) * ebs[i] / refEB
		sum += FaultCells(nbc)
	}
	return tBoundary * sum, nil
}

// SigmaCellCount returns the model σ of a large halo's cell-count change
// (Eq. 14): fault cells flip in and out independently, so the net count
// change is Gaussian with σ = sqrt(n_bc/3).
func SigmaCellCount(nbc float64) float64 { return math.Sqrt(nbc / 3) }

// HaloBudgetScale returns the factor by which all error bounds must be
// scaled so the estimated mass fault fits the budget (≤ 1 when the current
// assignment violates it, 1 otherwise). The mass-fault estimate is linear
// in every eb, so a single multiplicative correction is exact under the
// model.
func HaloBudgetScale(estimate, budget float64) float64 {
	if budget <= 0 || estimate <= 0 {
		return 1
	}
	if estimate <= budget {
		return 1
	}
	return budget / estimate
}

// MassBudgetFromRMSE converts the paper's quality target — halo-mass-ratio
// RMSE within 1 ± tol — into an absolute mass-fault budget, given the total
// halo mass and the number of halos. Under the model each matched halo's
// mass error is ~tol·(mass share), so the budget is tol times total mass.
func MassBudgetFromRMSE(totalHaloMass, tol float64) float64 {
	if totalHaloMass <= 0 || tol <= 0 {
		return 0
	}
	return tol * totalHaloMass
}
