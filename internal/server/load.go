package server

import (
	"math"
	"sort"
	"sync"
	"time"
)

// AdaptConfig tunes the load-driven rate controller: the service's answer
// to pressure that is *not* data drift. The streaming driver already
// re-fits rate models when the data moves; this controller reacts to the
// machine instead — queue depth and per-request latency against an SLO —
// by stepping every tenant's error-bound budget up (coarser, cheaper
// compression) while overloaded and back down to the configured quality
// when pressure clears. Discrete levels with a holdoff between changes
// keep it from oscillating on noisy latency samples.
type AdaptConfig struct {
	// Enabled turns the controller on. Off (the default) pins the budget
	// scale at 1: the service compresses at configured quality no matter
	// the load.
	Enabled bool
	// MaxLevel bounds how many steps the controller may take (default 4).
	MaxLevel int
	// EBStep is the per-level budget multiplier (default 2): at level L
	// every budget is scaled by EBStep^L.
	EBStep float64
	// LatencySLO is the p99 request-latency target (default 250ms).
	// Sustained p99 above it steps the level up.
	LatencySLO time.Duration
	// HighQueue is the total queued-request depth that also counts as
	// pressure (default: the per-tenant queue depth, i.e. one full queue).
	HighQueue int
	// LowQueue is the depth the queue must fall to before stepping back
	// toward full quality (default HighQueue/8, at least 1).
	LowQueue int
	// Holdoff is the minimum time between level changes (default 250ms) —
	// the hysteresis that lets one change take effect before the next.
	Holdoff time.Duration
	// Window is the latency-sample ring size percentiles are computed
	// over (default 256).
	Window int
}

func (c AdaptConfig) withDefaults() AdaptConfig {
	if c.MaxLevel <= 0 {
		c.MaxLevel = 4
	}
	if c.EBStep <= 1 {
		c.EBStep = 2
	}
	if c.LatencySLO <= 0 {
		c.LatencySLO = 250 * time.Millisecond
	}
	if c.LowQueue <= 0 {
		c.LowQueue = c.HighQueue / 8
		if c.LowQueue < 1 {
			c.LowQueue = 1
		}
	}
	if c.Holdoff <= 0 {
		c.Holdoff = 250 * time.Millisecond
	}
	if c.Window <= 0 {
		c.Window = 256
	}
	return c
}

// minAdaptSamples is how many latency observations the controller needs
// since the last level change before it trusts the p99; below this only
// queue depth can move the level (latency of a near-empty window is
// dominated by whichever requests happened to land in it).
const minAdaptSamples = 16

// loadController holds the adaptation state. The clock is injected so the
// holdoff/hysteresis logic is unit-testable without sleeping.
type loadController struct {
	cfg AdaptConfig
	now func() time.Time

	mu         sync.Mutex
	level      int
	lastChange time.Time
	ring       []time.Duration
	next       int // ring write cursor
	count      int // samples since last level change, up to len(ring)
	ups, downs uint64
}

func newLoadController(cfg AdaptConfig, now func() time.Time) *loadController {
	cfg = cfg.withDefaults()
	return &loadController{cfg: cfg, now: now, ring: make([]time.Duration, cfg.Window), lastChange: now()}
}

// observe records one completed request's queue-to-response latency.
func (lc *loadController) observe(d time.Duration) {
	lc.mu.Lock()
	lc.ring[lc.next] = d
	lc.next = (lc.next + 1) % len(lc.ring)
	if lc.count < len(lc.ring) {
		lc.count++
	}
	lc.mu.Unlock()
}

// p99Locked computes the window's p99 (and p50) over the valid samples.
func (lc *loadController) percentilesLocked() (p50, p99 time.Duration) {
	if lc.count == 0 {
		return 0, 0
	}
	s := make([]time.Duration, lc.count)
	copy(s, lc.ring[:lc.count])
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	at := func(q float64) time.Duration {
		i := int(q * float64(len(s)-1))
		return s[i]
	}
	return at(0.50), at(0.99)
}

// adjust runs one control decision against the current total queue depth.
// Called by the dispatcher before launching a batch, so a decision is made
// about as often as work is started — no dedicated ticker.
func (lc *loadController) adjust(queueDepth int) {
	if !lc.cfg.Enabled {
		return
	}
	lc.mu.Lock()
	defer lc.mu.Unlock()
	now := lc.now()
	if now.Sub(lc.lastChange) < lc.cfg.Holdoff {
		return
	}
	_, p99 := lc.percentilesLocked()
	latencyHot := lc.count >= minAdaptSamples && p99 > lc.cfg.LatencySLO
	// Stepping down needs positive evidence of calm, not just an empty
	// window: the window resets on every level change, and treating the
	// first post-change decisions as calm would undo each step-up
	// immediately (observed as up/down oscillation under steady pressure).
	latencyCool := lc.count >= minAdaptSamples && p99 <= lc.cfg.LatencySLO/2
	switch {
	case (queueDepth >= lc.cfg.HighQueue || latencyHot) && lc.level < lc.cfg.MaxLevel:
		lc.level++
		lc.ups++
	case queueDepth <= lc.cfg.LowQueue && latencyCool && lc.level > 0:
		lc.level--
		lc.downs++
	default:
		return
	}
	// The window now mixes latencies from two operating points; restart it
	// so the next decision is made on post-change evidence only.
	lc.lastChange = now
	lc.next, lc.count = 0, 0
}

// levelScale returns the current level and its budget multiplier.
func (lc *loadController) levelScale() (int, float64) {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	return lc.level, math.Pow(lc.cfg.EBStep, float64(lc.level))
}

// snapshot reports the controller state for the stats endpoint.
func (lc *loadController) snapshot() (level int, scale float64, p50, p99 time.Duration, ups, downs uint64) {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	p50, p99 = lc.percentilesLocked()
	return lc.level, math.Pow(lc.cfg.EBStep, float64(lc.level)), p50, p99, lc.ups, lc.downs
}
