// Wire format for raw fields on the service boundary: a 12-byte header of
// little-endian uint32 dims (nx, ny, nz) followed by exactly nx·ny·nz
// little-endian float32 cells in the same x-fastest C order grid.Field3D
// stores. Compressed fields need no wire format of their own — the archive
// v2 container (core.CompressedField.Bytes) is already a validated,
// self-describing byte string.
package server

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/apierr"
	"repro/internal/grid"
)

const fieldWireHeader = 12

// EncodeField serializes a field into the raw-field wire format.
func EncodeField(f *grid.Field3D) []byte {
	buf := make([]byte, fieldWireHeader+4*len(f.Data))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(f.Nx))
	binary.LittleEndian.PutUint32(buf[4:8], uint32(f.Ny))
	binary.LittleEndian.PutUint32(buf[8:12], uint32(f.Nz))
	for i, v := range f.Data {
		binary.LittleEndian.PutUint32(buf[fieldWireHeader+4*i:], math.Float32bits(v))
	}
	return buf
}

// DecodeField parses the raw-field wire format. Hostile inputs — truncated
// headers, dims that disagree with the body length, absurd cell counts —
// are rejected wrapping apierr.ErrBadConfig: they are client mistakes, not
// archive corruption.
func DecodeField(data []byte, maxCells int64) (*grid.Field3D, error) {
	if len(data) < fieldWireHeader {
		return nil, fmt.Errorf("server: %w: field payload %d bytes, need at least the %d-byte dim header",
			apierr.ErrBadConfig, len(data), fieldWireHeader)
	}
	nx := int(binary.LittleEndian.Uint32(data[0:4]))
	ny := int(binary.LittleEndian.Uint32(data[4:8]))
	nz := int(binary.LittleEndian.Uint32(data[8:12]))
	if nx <= 0 || ny <= 0 || nz <= 0 {
		return nil, fmt.Errorf("server: %w: non-positive field dims %d×%d×%d", apierr.ErrBadConfig, nx, ny, nz)
	}
	cells := int64(nx) * int64(ny) * int64(nz)
	if cells > maxCells {
		return nil, fmt.Errorf("server: %w: field %d×%d×%d has %d cells, limit %d",
			apierr.ErrBadConfig, nx, ny, nz, cells, maxCells)
	}
	if want := int64(fieldWireHeader) + 4*cells; int64(len(data)) != want {
		return nil, fmt.Errorf("server: %w: field %d×%d×%d needs %d bytes, got %d",
			apierr.ErrBadConfig, nx, ny, nz, want, len(data))
	}
	f := grid.NewField3D(nx, ny, nz)
	for i := range f.Data {
		f.Data[i] = math.Float32frombits(binary.LittleEndian.Uint32(data[fieldWireHeader+4*i:]))
	}
	return f, nil
}
