// Package halo implements the density-based halo finder used as the second
// post-hoc analysis in the paper (Sec. 2.1, 3.4). Nyx is Eulerian, so halos
// are found on the gridded baryon-density field rather than on particles:
// cells above a boundary threshold are "candidates", connected candidate
// regions become groups, and a group whose peak density exceeds the halo
// threshold is a halo. Halo position is the centroid of its member cells and
// halo mass is the cell-weighted density sum — the two quantities whose
// distortion under compression Sec. 3.4 models.
package halo

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/grid"
)

// Config parameterizes the finder.
type Config struct {
	// BoundaryThreshold (t_boundary) is the candidate-cell density cut.
	BoundaryThreshold float64
	// HaloThreshold (t_halo) is the peak density a group must reach to be
	// counted as a halo. Must be ≥ BoundaryThreshold.
	HaloThreshold float64
	// MinCells drops groups smaller than this (0 keeps everything).
	MinCells int
	// Periodic joins components across the box faces, matching the
	// periodic boundary conditions of cosmological simulation volumes.
	Periodic bool
}

// Validate checks threshold sanity.
func (c Config) Validate() error {
	if c.BoundaryThreshold <= 0 {
		return errors.New("halo: boundary threshold must be positive")
	}
	if c.HaloThreshold < c.BoundaryThreshold {
		return fmt.Errorf("halo: halo threshold %g below boundary threshold %g",
			c.HaloThreshold, c.BoundaryThreshold)
	}
	if c.MinCells < 0 {
		return errors.New("halo: negative MinCells")
	}
	return nil
}

// Halo is one identified halo.
type Halo struct {
	ID      int
	Cells   int
	Mass    float64 // cell-weighted density sum
	X, Y, Z float64 // centroid in cell coordinates
	Peak    float64 // maximum cell density
}

// Catalog is the result of a finder run, halos sorted by descending mass.
type Catalog struct {
	Halos      []Halo
	Candidates int // number of candidate cells (Fig. 6's black cells)
	Config     Config
}

// CandidateCount returns the number of cells with value ≥ threshold.
func CandidateCount(f *grid.Field3D, threshold float64) int {
	n := 0
	thr := float32(threshold)
	for _, v := range f.Data {
		if v >= thr {
			n++
		}
	}
	return n
}

// unionFind is a slice-based disjoint-set with path halving.
type unionFind struct{ parent []int32 }

func newUnionFind(n int) *unionFind {
	p := make([]int32, n)
	for i := range p {
		p[i] = int32(i)
	}
	return &unionFind{parent: p}
}

func (u *unionFind) find(x int32) int32 {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]] // path halving
		x = u.parent[x]
	}
	return x
}

func (u *unionFind) union(a, b int32) {
	ra, rb := u.find(a), u.find(b)
	if ra != rb {
		if ra < rb {
			u.parent[rb] = ra
		} else {
			u.parent[ra] = rb
		}
	}
}

// Find runs the halo finder over a density field.
func Find(f *grid.Field3D, cfg Config) (*Catalog, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	nx, ny, nz := f.Nx, f.Ny, f.Nz
	n := f.Len()
	thr := float32(cfg.BoundaryThreshold)
	mask := make([]bool, n)
	candidates := 0
	for i, v := range f.Data {
		if v >= thr {
			mask[i] = true
			candidates++
		}
	}
	uf := newUnionFind(n)
	// 6-connectivity; only look backwards so each edge is visited once.
	idx := 0
	for z := 0; z < nz; z++ {
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				if mask[idx] {
					if x > 0 && mask[idx-1] {
						uf.union(int32(idx), int32(idx-1))
					}
					if y > 0 && mask[idx-nx] {
						uf.union(int32(idx), int32(idx-nx))
					}
					if z > 0 && mask[idx-nx*ny] {
						uf.union(int32(idx), int32(idx-nx*ny))
					}
					if cfg.Periodic {
						if x == 0 && nx > 1 && mask[idx+nx-1] {
							uf.union(int32(idx), int32(idx+nx-1))
						}
						if y == 0 && ny > 1 && mask[idx+(ny-1)*nx] {
							uf.union(int32(idx), int32(idx+(ny-1)*nx))
						}
						if z == 0 && nz > 1 && mask[idx+(nz-1)*nx*ny] {
							uf.union(int32(idx), int32(idx+(nz-1)*nx*ny))
						}
					}
				}
				idx++
			}
		}
	}
	// Accumulate per-component statistics. Centroids of periodic
	// components use circular means per axis so a halo straddling the box
	// face gets a sensible position.
	type acc struct {
		cells            int
		mass, peak       float64
		sinX, cosX       float64
		sinY, cosY       float64
		sinZ, cosZ       float64
		sumX, sumY, sumZ float64
	}
	groups := make(map[int32]*acc)
	idx = 0
	tauX := 2 * math.Pi / float64(nx)
	tauY := 2 * math.Pi / float64(ny)
	tauZ := 2 * math.Pi / float64(nz)
	for z := 0; z < nz; z++ {
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				if mask[idx] {
					root := uf.find(int32(idx))
					g := groups[root]
					if g == nil {
						g = &acc{}
						groups[root] = g
					}
					v := float64(f.Data[idx])
					g.cells++
					g.mass += v
					if v > g.peak {
						g.peak = v
					}
					g.sumX += float64(x)
					g.sumY += float64(y)
					g.sumZ += float64(z)
					g.sinX += math.Sin(tauX * float64(x))
					g.cosX += math.Cos(tauX * float64(x))
					g.sinY += math.Sin(tauY * float64(y))
					g.cosY += math.Cos(tauY * float64(y))
					g.sinZ += math.Sin(tauZ * float64(z))
					g.cosZ += math.Cos(tauZ * float64(z))
				}
				idx++
			}
		}
	}
	cat := &Catalog{Candidates: candidates, Config: cfg}
	for _, g := range groups {
		if g.peak < cfg.HaloThreshold || g.cells < cfg.MinCells {
			continue
		}
		h := Halo{
			Cells: g.cells,
			Mass:  g.mass,
			Peak:  g.peak,
		}
		if cfg.Periodic {
			h.X = circularMean(g.sinX, g.cosX, float64(nx))
			h.Y = circularMean(g.sinY, g.cosY, float64(ny))
			h.Z = circularMean(g.sinZ, g.cosZ, float64(nz))
		} else {
			h.X = g.sumX / float64(g.cells)
			h.Y = g.sumY / float64(g.cells)
			h.Z = g.sumZ / float64(g.cells)
		}
		cat.Halos = append(cat.Halos, h)
	}
	sort.Slice(cat.Halos, func(i, j int) bool {
		if cat.Halos[i].Mass != cat.Halos[j].Mass {
			return cat.Halos[i].Mass > cat.Halos[j].Mass
		}
		// Deterministic tie-break on position.
		a, b := cat.Halos[i], cat.Halos[j]
		if a.X != b.X {
			return a.X < b.X
		}
		if a.Y != b.Y {
			return a.Y < b.Y
		}
		return a.Z < b.Z
	})
	for i := range cat.Halos {
		cat.Halos[i].ID = i
	}
	return cat, nil
}

// circularMean converts summed sin/cos components back to a coordinate in
// [0, n).
func circularMean(sinSum, cosSum, n float64) float64 {
	if sinSum == 0 && cosSum == 0 {
		return 0
	}
	ang := math.Atan2(sinSum, cosSum)
	if ang < 0 {
		ang += 2 * math.Pi
	}
	v := ang * n / (2 * math.Pi)
	if v >= n {
		v -= n
	}
	return v
}

// Count returns the number of halos.
func (c *Catalog) Count() int { return len(c.Halos) }

// TotalMass returns the summed mass of all halos.
func (c *Catalog) TotalMass() float64 {
	var t float64
	for _, h := range c.Halos {
		t += h.Mass
	}
	return t
}

// MassesAbove returns halos with mass ≥ cut, preserving order.
func (c *Catalog) MassesAbove(cut float64) []Halo {
	out := make([]Halo, 0, len(c.Halos))
	for _, h := range c.Halos {
		if h.Mass >= cut {
			out = append(out, h)
		}
	}
	return out
}
