package adaptive

import (
	"net/http"

	"repro/internal/server"
)

// Server is the networked compression service: the System's engine and
// streaming driver behind an HTTP API shared by many tenants at once, with
// per-tenant bounded queues (typed 429 backpressure), deficit-round-robin
// fair batching, token-bucket rate metering, and a load controller that
// steps error-bound budgets up under pressure and back down when it
// clears. Build one with System.NewServer, expose it with NewH2CServer,
// stop it with Close.
type Server = server.Server

// ServerConfig tunes the service; the zero value of every knob selects a
// sane default.
type ServerConfig = server.Config

// ServerAdaptConfig tunes the service's load-driven rate controller.
type ServerAdaptConfig = server.AdaptConfig

// ServerStats is the counter snapshot the service's /v1/stats endpoint
// serves.
type ServerStats = server.Stats

// NewServer builds a compression service over this System's engine and
// streaming driver (sharing their worker pool and per-tenant-field
// calibration state) and starts its dispatcher. The System's calibration
// options (WithCalibration) govern the service's /v1/calibrate endpoint.
func (s *System) NewServer(cfg ServerConfig) (*Server, error) {
	return server.New(s.drv, s.cal, cfg)
}

// NewH2CServer wraps a handler — typically Server.Handler() — in an
// http.Server speaking HTTP/1.1 and cleartext HTTP/2 (h2c) on addr,
// stdlib-only. h2c gives each client stream multiplexing over one TCP
// connection, which is what lets thousands of concurrent simulation ranks
// share a few sockets.
func NewH2CServer(addr string, h http.Handler) *http.Server {
	return server.NewHTTPServer(addr, h)
}

// NewH2CTransport returns an http.Transport that speaks h2c to
// NewH2CServer instances — the client half, used by the load generator.
func NewH2CTransport() *http.Transport {
	return server.NewH2CTransport()
}

// MarshalFieldPayload serializes a field into the service's raw-field wire
// format (12-byte little-endian dim header + fp32 cells).
func MarshalFieldPayload(f *Field) []byte {
	return server.EncodeField(f)
}

// UnmarshalFieldPayload parses the service's raw-field wire format,
// rejecting payloads above maxCells cells (hostile-input guard; pass the
// service's configured limit, or a generous local one). Rejections wrap
// ErrBadConfig.
func UnmarshalFieldPayload(data []byte, maxCells int64) (*Field, error) {
	return server.DecodeField(data, maxCells)
}

// ServiceError reconstructs the error-taxonomy sentinel from a typed error
// response of the service, so clients keep errors.Is across the network:
// a 429 body maps back to ErrOverloaded, a 422 to ErrCorruptArchive, and
// so on. Returns nil when the body is not the service's error envelope.
func ServiceError(status int, body []byte) error {
	return server.ErrorFromResponse(status, body)
}
