package parallel

import (
	"errors"
	"sync/atomic"
	"testing"
)

var errDetonate = errors.New("detonate")

// recoverFrom runs fn and returns whatever it panicked with (nil = none).
func recoverFrom(fn func()) (r any) {
	defer func() { r = recover() }()
	fn()
	return nil
}

func TestWorkersCtxFunnelsWorkerPanic(t *testing.T) {
	// With helpers the panicking index may land on a pool goroutine; with
	// none it lands on the caller. Both paths must surface the same way:
	// a *PanicError re-raised on the calling goroutine after full drain.
	for _, helpers := range []int{0, 4} {
		restore := SetLimit(helpers)
		var ran atomic.Int64
		got := recoverFrom(func() {
			ForEach(64, 0, func(i int) {
				ran.Add(1)
				if i == 7 {
					panic(errDetonate)
				}
			})
		})
		pe, ok := got.(*PanicError)
		if !ok {
			restore()
			t.Fatalf("limit %d: recovered %T (%v), want *PanicError", helpers, got, got)
		}
		if !errors.Is(pe, errDetonate) {
			t.Errorf("limit %d: errors.Is through the funnel failed: %v", helpers, pe)
		}
		if len(pe.Stack) == 0 {
			t.Errorf("limit %d: panic stack not captured", helpers)
		}
		// The pool must be whole afterwards: every token released, a fresh
		// fan-out covers every index.
		var n atomic.Int64
		ForEach(128, 0, func(i int) { n.Add(1) })
		if n.Load() != 128 {
			t.Errorf("limit %d: fan-out after panic covered %d/128 indices", helpers, n.Load())
		}
		restore()
	}
}

func TestNestedFanOutKeepsInnermostPanic(t *testing.T) {
	// A panic funneled by an inner fan-out re-panics as *PanicError on its
	// caller — a worker of the outer fan-out. The outer funnel must pass
	// it through, not wrap it again, so the recovered value still carries
	// the innermost worker's stack and the original value.
	restore := SetLimit(4)
	defer restore()
	got := recoverFrom(func() {
		ForEach(8, 0, func(i int) {
			if i == 3 {
				ForEach(8, 0, func(j int) {
					if j == 5 {
						panic(errDetonate)
					}
				})
			}
		})
	})
	pe, ok := got.(*PanicError)
	if !ok {
		t.Fatalf("recovered %T (%v), want *PanicError", got, got)
	}
	if _, double := pe.Value.(*PanicError); double {
		t.Fatal("inner PanicError was re-wrapped by the outer fan-out")
	}
	if pe.Value != errDetonate {
		t.Errorf("Value = %v, want the original panic value", pe.Value)
	}
}

func TestFirstPanicWins(t *testing.T) {
	// Multiple workers panicking concurrently must still produce exactly
	// one funneled panic (the first captured), with the rest discarded
	// after the drain — not a crash, not a double panic.
	restore := SetLimit(4)
	defer restore()
	got := recoverFrom(func() {
		ForEach(16, 0, func(i int) { panic(errDetonate) })
	})
	if pe, ok := got.(*PanicError); !ok || pe.Value != errDetonate {
		t.Fatalf("recovered %v, want a single *PanicError carrying the value", got)
	}
}
