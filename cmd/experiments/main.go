// Command experiments regenerates the paper's tables and figures as text
// tables (the per-figure implementations are listed by adaptive.Experiments).
//
// Usage:
//
//	experiments                 # run everything at the default 128³ scale
//	experiments -only fig15     # one experiment
//	experiments -n 64 -list     # list IDs; run at reduced scale
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"repro/adaptive"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")
	var (
		n         = flag.Int("n", 128, "grid dimension")
		partition = flag.Int("partition", 16, "partition brick dimension")
		seed      = flag.Uint64("seed", 7, "random seed")
		only      = flag.String("only", "", "comma-separated experiment IDs (default: all)")
		list      = flag.Bool("list", false, "list experiment IDs and exit")
		workers   = flag.Int("workers", 0, "worker goroutines (0 = all cores)")
	)
	flag.Parse()

	if *list {
		for _, e := range adaptive.Experiments() {
			fmt.Printf("%-20s %s\n", e.ID, e.Title)
		}
		return
	}
	ctx, err := adaptive.NewExperimentContext(
		adaptive.WithGridN(*n),
		adaptive.WithPartitionDim(*partition),
		adaptive.WithSeed(*seed),
		adaptive.WithWorkers(*workers),
	)
	if err != nil {
		log.Fatal(err)
	}

	var toRun []adaptive.Experiment
	if *only == "" {
		toRun = adaptive.Experiments()
	} else {
		for _, id := range strings.Split(*only, ",") {
			e, err := adaptive.ExperimentByID(strings.TrimSpace(id))
			if err != nil {
				log.Fatal(err)
			}
			toRun = append(toRun, e)
		}
	}

	failed := 0
	for _, e := range toRun {
		start := time.Now()
		res, err := e.Run(ctx)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiment %s failed: %v\n", e.ID, err)
			failed++
			continue
		}
		fmt.Println(res.String())
		fmt.Printf("(%s in %.1fs)\n\n", e.ID, time.Since(start).Seconds())
	}
	if failed > 0 {
		os.Exit(1)
	}
}
