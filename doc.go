// Package repro is a pure-Go reproduction of "Adaptive Configuration of In
// Situ Lossy Compression for Cosmology Simulations via Fine-Grained
// Rate-Quality Modeling" (Jin et al., HPDC '21).
//
// The public entry points live in internal/core (the adaptive
// configurator), which drives its compressors through the pluggable codec
// layer in internal/codec (a name-keyed registry of backends: internal/sz,
// the error-bounded compressor the paper configures, and internal/zfp, the
// fixed-rate comparison codec). internal/pipeline streams a running
// simulation through the configurator — calibration is fitted once per
// field, reused across timesteps, and refreshed only when the monitored
// feature distribution drifts — and lands each step in the archive v3
// multi-snapshot container (core.StreamWriter/StreamReader, O(1) access to
// any step). The remaining substrates are internal/nyx (the synthetic
// cosmology generator, including evolving multi-step streams),
// internal/spectrum and internal/halo (the post-hoc analyses),
// internal/model and internal/optimizer (the paper's rate-quality models
// and error-bound allocation), internal/parallel (the shared bounded
// worker pool every fan-out level — fields, partitions, zfp blocks —
// draws from), and internal/experiments (one function per paper
// table/figure plus the timeseries streaming comparison). See README.md
// for the architecture overview.
//
// The benchmarks in bench_test.go regenerate every table and figure of the
// paper's evaluation:
//
//	go test -bench=. -benchtime=1x -benchmem .
package repro
