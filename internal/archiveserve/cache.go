package archiveserve

import (
	"container/list"
	"sync"
)

// blockCache is a byte-budgeted LRU over synthesized representations,
// keyed by (stream, step, field, rate-bucket) — the key is the same
// string the ETag derives from, so one cache entry backs every
// conditional, ranged, and full read of that representation.
//
// Concurrent misses on one key are deduplicated singleflight-style: the
// first caller builds, later callers wait on the same flight and share
// the result. A splice is pure CPU over an immutable file, so running it
// twice is only wasted work — but under a browse stampede (a CDN purge,
// a popular new snapshot) the duplicate work is what melts a server, and
// the dedup is what bounds it to one build per representation.
//
// Entries are immutable once inserted: callers must treat returned bodies
// as read-only (range responses slice them, they never write).
type blockCache struct {
	mu      sync.Mutex
	budget  int64
	used    int64
	ll      *list.List // front = most recently used
	items   map[string]*list.Element
	flights map[string]*flight

	hits, misses, evictions, merged uint64
}

type cacheEntry struct {
	key  string
	body []byte
}

type flight struct {
	done chan struct{}
	body []byte
	err  error
}

// newBlockCache builds a cache bounded to budget bytes of entry payload.
// budget ≤ 0 disables retention (every get is a miss) while keeping the
// singleflight dedup.
func newBlockCache(budget int64) *blockCache {
	return &blockCache{
		budget:  budget,
		ll:      list.New(),
		items:   make(map[string]*list.Element),
		flights: make(map[string]*flight),
	}
}

// getOrBuild returns the cached representation for key, building it with
// build on a miss. hit reports whether the bytes came straight from the
// cache — the "zero compression work" signal the stats surface. Errors
// are never cached.
func (c *blockCache) getOrBuild(key string, build func() ([]byte, error)) (body []byte, hit bool, err error) {
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		body = el.Value.(*cacheEntry).body
		c.mu.Unlock()
		return body, true, nil
	}
	if fl, ok := c.flights[key]; ok {
		// A concurrent miss on the same key: ride the existing build.
		c.merged++
		c.mu.Unlock()
		<-fl.done
		return fl.body, false, fl.err
	}
	fl := &flight{done: make(chan struct{})}
	c.flights[key] = fl
	c.misses++
	c.mu.Unlock()

	fl.body, fl.err = build()

	c.mu.Lock()
	delete(c.flights, key)
	if fl.err == nil && int64(len(fl.body)) <= c.budget {
		c.items[key] = c.ll.PushFront(&cacheEntry{key: key, body: fl.body})
		c.used += int64(len(fl.body))
		for c.used > c.budget {
			back := c.ll.Back()
			if back == nil {
				break
			}
			ev := back.Value.(*cacheEntry)
			c.ll.Remove(back)
			delete(c.items, ev.key)
			c.used -= int64(len(ev.body))
			c.evictions++
		}
	}
	c.mu.Unlock()
	close(fl.done)
	return fl.body, false, fl.err
}

// CacheStats is the cache's counter snapshot for /v1/stats.
type CacheStats struct {
	Entries            int    `json:"entries"`
	Bytes              int64  `json:"bytes"`
	BudgetBytes        int64  `json:"budget_bytes"`
	Hits               uint64 `json:"hits"`
	Misses             uint64 `json:"misses"`
	Evictions          uint64 `json:"evictions"`
	SingleflightMerged uint64 `json:"singleflight_merged"`
}

func (c *blockCache) stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Entries:            len(c.items),
		Bytes:              c.used,
		BudgetBytes:        c.budget,
		Hits:               c.hits,
		Misses:             c.misses,
		Evictions:          c.evictions,
		SingleflightMerged: c.merged,
	}
}
