package main

import (
	"encoding/json"
	"net"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/adaptive"
)

// TestReadModeEndToEnd drives runRead against a real archive server:
// write a two-step stream, serve it over h2c, run a short Zipf read
// burst, and check the merged benchmark JSON.
func TestReadModeEndToEnd(t *testing.T) {
	dir := t.TempDir()
	w, err := adaptive.NewArchiveWriter(filepath.Join(dir, "demo"+adaptive.ArchiveStreamSuffix),
		adaptive.ArchiveWriterOptions{Rate: 8, PartitionDim: 2})
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 2; s++ {
		f := adaptive.NewField(8, 8, 8)
		for i := range f.Data {
			f.Data[i] = float32((i+s)%97) * 0.013
		}
		err := w.WriteStep(map[string]adaptive.ArchiveFieldSpec{
			"rho":  {Field: f},
			"temp": {Field: f, Codec: "sz", ErrorBound: 1e-3},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	srv, err := adaptive.NewArchiveServer(adaptive.ArchiveServerConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hs := adaptive.NewH2CServer("", srv.Handler())
	go hs.Serve(l)
	defer hs.Close()

	jsonPath := filepath.Join(dir, "bench.json")
	runRead(readConfig{
		url:     "http://" + l.Addr().String(),
		clients: 4, conns: 2, retries: 1,
		duration: 400 * time.Millisecond, timeout: 5 * time.Second,
		label: "test", jsonPath: jsonPath, maxP99: time.Minute,
		stream: "demo", browseRate: 2, analysisRate: 0,
		browseFrac: 0.7, zipfS: 1.3, seed: 1,
	})

	data, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Runs map[string]struct {
			OK           uint64  `json:"ok"`
			Failed       uint64  `json:"failed"`
			StepsPerSec  float64 `json:"steps_per_sec"`
			HitRatio     float64 `json:"cache_hit_ratio"`
			NotModified  uint64  `json:"not_modified"`
			LatencyP99MS float64 `json:"latency_p99_ms"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	run, ok := doc.Runs["test"]
	if !ok {
		t.Fatalf("bench JSON has no run %q: %s", "test", data)
	}
	if run.OK == 0 || run.Failed != 0 || run.StepsPerSec <= 0 {
		t.Fatalf("read burst results: %+v", run)
	}

	// mergeJSON refuses to clobber a file that is not a bench document.
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := mergeJSON(bad, "x", map[string]any{}); err == nil {
		t.Fatal("mergeJSON over a non-JSON file should fail")
	}
}
