// Package mpinet is the TCP transport behind mpi.Comm: the same
// collectives that run between goroutine ranks in-process run here between
// OS processes (or nodes) over a coordinator-star topology.
//
// Topology. One coordinator (conventionally owned by the rank-0 process)
// listens on TCP; every rank — including rank 0 — joins as a member over
// its own connection. Collectives are coordinator-mediated: each member
// sends its contribution, the coordinator folds contributions in ascending
// rank order (the same bit-reproducibility contract as the in-process
// world) and broadcasts the result. Point-to-point sends are routed
// through the coordinator.
//
// Wire format. Every frame is
//
//	u32 payload length | u32 CRC-32 (IEEE) of payload | payload
//
// and the payload is
//
//	u8 kind | u32 epoch | u32 seq | i32 from | u64 aux |
//	u32 vecLen | vecLen × f64 | u16 extraLen | extra bytes
//
// all big-endian. The CRC rejects torn or corrupted frames at the
// transport layer, before any field is trusted; the length field is capped
// so a hostile or garbled header cannot drive allocation.
//
// Failure model. The coordinator declares a member failed when its
// connection errors (a kill -9 arrives as an immediate RST) or when its
// heartbeats go stale. A failure opens a new membership epoch: the
// coordinator aborts every pending collective and broadcasts the failure,
// and each member surfaces a typed *apierr.RankFailedError from its
// in-flight (or next) collective call — never a hang. Sequence numbers
// restart at zero in the new epoch, so after the caller rebalances and
// retries the step, every survivor's collectives realign. The coordinator
// itself is not fault-tolerant: members that lose it report rank 0 failed
// and the run must be restarted (ROADMAP item 4 keeps coordinator
// replication as future work).
package mpinet

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"repro/internal/apierr"
)

// Frame kinds.
const (
	kindHello      = 1 // member → coordinator: join; from=rank, aux=world size
	kindWelcome    = 2 // coordinator → member: accepted; epoch, vec=alive ranks
	kindHeartbeat  = 3 // either direction: liveness
	kindContribute = 4 // member → coordinator: collective input; aux=collective header
	kindResult     = 5 // coordinator → member: collective output
	kindCollErr    = 6 // coordinator → member: recoverable collective error; extra=message
	kindRankFailed = 7 // coordinator → member: membership change; aux=failed rank, epoch=new epoch
	kindP2P        = 8 // routed send; aux=target rank inbound, from=sender outbound
	kindGoodbye    = 9 // member → coordinator: clean leave
)

// Collective kinds, packed into the aux field of kindContribute frames
// together with the operator and the broadcast root (see packColl).
const (
	collBarrier = 1
	collReduce  = 2 // Allreduce and AllreduceSlice (vector length tells them apart server-side)
	collGather  = 3 // Allgather (scalar per rank)
	collGatherV = 4 // AllgatherSlice (variable-length per rank)
	collBcast   = 5
)

// packColl packs a collective header into aux: kind in the low byte, the
// reduction operator in the next, the bcast root in the following 16 bits.
func packColl(kind, op, root int) uint64 {
	return uint64(kind&0xFF) | uint64(op&0xFF)<<8 | uint64(root&0xFFFF)<<16
}

func unpackColl(aux uint64) (kind, op, root int) {
	return int(aux & 0xFF), int(aux >> 8 & 0xFF), int(aux >> 16 & 0xFFFF)
}

// maxFramePayload caps a frame's declared payload length. Collective
// vectors are O(partitions) and error strings are short, so 64 MiB is far
// above anything legitimate while still bounding hostile allocation.
const maxFramePayload = 64 << 20

// frameHeaderLen is the fixed prefix before the f64 vector.
const frameHeaderLen = 1 + 4 + 4 + 4 + 8 + 4

// frame is one decoded wire message.
type frame struct {
	kind  byte
	epoch int
	seq   int
	from  int
	aux   uint64
	vec   []float64
	extra []byte
}

// appendFrame encodes f (length + CRC + payload) into buf and returns the
// extended slice.
func appendFrame(buf []byte, f *frame) ([]byte, error) {
	if len(f.extra) > math.MaxUint16 {
		return nil, fmt.Errorf("mpinet: frame extra %d bytes exceeds %d", len(f.extra), math.MaxUint16)
	}
	payloadLen := frameHeaderLen + 8*len(f.vec) + 2 + len(f.extra)
	if payloadLen > maxFramePayload {
		return nil, fmt.Errorf("mpinet: frame payload %d bytes exceeds cap %d", payloadLen, maxFramePayload)
	}
	start := len(buf)
	buf = binary.BigEndian.AppendUint32(buf, uint32(payloadLen))
	buf = binary.BigEndian.AppendUint32(buf, 0) // CRC backfilled below
	payloadStart := len(buf)
	buf = append(buf, f.kind)
	buf = binary.BigEndian.AppendUint32(buf, uint32(f.epoch))
	buf = binary.BigEndian.AppendUint32(buf, uint32(f.seq))
	buf = binary.BigEndian.AppendUint32(buf, uint32(int32(f.from)))
	buf = binary.BigEndian.AppendUint64(buf, f.aux)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(f.vec)))
	for _, v := range f.vec {
		buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(v))
	}
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(f.extra)))
	buf = append(buf, f.extra...)
	crc := crc32.ChecksumIEEE(buf[payloadStart:])
	binary.BigEndian.PutUint32(buf[start+4:], crc)
	return buf, nil
}

// readFrame reads and validates one frame. A CRC mismatch, an over-cap
// length, or a malformed payload is reported as ErrCorruptArchive-tagged
// corruption — the transport equivalent of a bad archive block.
func readFrame(r io.Reader) (*frame, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	payloadLen := binary.BigEndian.Uint32(hdr[:4])
	wantCRC := binary.BigEndian.Uint32(hdr[4:])
	if payloadLen < frameHeaderLen+2 || payloadLen > maxFramePayload {
		return nil, fmt.Errorf("mpinet: %w: frame payload length %d", apierr.ErrCorruptArchive, payloadLen)
	}
	payload := make([]byte, payloadLen)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	if got := crc32.ChecksumIEEE(payload); got != wantCRC {
		return nil, fmt.Errorf("mpinet: %w: frame CRC mismatch (got %08x want %08x)", apierr.ErrCorruptArchive, got, wantCRC)
	}
	f := &frame{
		kind:  payload[0],
		epoch: int(binary.BigEndian.Uint32(payload[1:])),
		seq:   int(binary.BigEndian.Uint32(payload[5:])),
		from:  int(int32(binary.BigEndian.Uint32(payload[9:]))),
		aux:   binary.BigEndian.Uint64(payload[13:]),
	}
	vecLen := binary.BigEndian.Uint32(payload[21:])
	rest := payload[frameHeaderLen:]
	if uint64(vecLen)*8+2 > uint64(len(rest)) {
		return nil, fmt.Errorf("mpinet: %w: frame vector length %d exceeds payload", apierr.ErrCorruptArchive, vecLen)
	}
	if vecLen > 0 {
		f.vec = make([]float64, vecLen)
		for i := range f.vec {
			f.vec[i] = math.Float64frombits(binary.BigEndian.Uint64(rest[8*i:]))
		}
	}
	rest = rest[8*vecLen:]
	extraLen := int(binary.BigEndian.Uint16(rest))
	if 2+extraLen != len(rest) {
		return nil, fmt.Errorf("mpinet: %w: frame extra length %d does not tile payload", apierr.ErrCorruptArchive, extraLen)
	}
	if extraLen > 0 {
		f.extra = append([]byte(nil), rest[2:]...)
	}
	return f, nil
}
