package sz

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/grid"
	"repro/internal/stats"
)

// smoothField builds a field with smooth large-scale structure plus mild
// noise — the regime where Lorenzo prediction works well.
func smoothField(n int, seed uint64) *grid.Field3D {
	r := stats.NewRNG(seed)
	f := grid.NewCube(n)
	for z := 0; z < n; z++ {
		for y := 0; y < n; y++ {
			for x := 0; x < n; x++ {
				v := 100*math.Sin(float64(x)/7)*math.Cos(float64(y)/5) +
					50*math.Sin(float64(z)/9) + r.NormFloat64()
				f.Set(x, y, z, float32(v))
			}
		}
	}
	return f
}

func noisyField(n int, seed uint64, scale float64) *grid.Field3D {
	r := stats.NewRNG(seed)
	f := grid.NewCube(n)
	for i := range f.Data {
		f.Data[i] = float32(r.NormFloat64() * scale)
	}
	return f
}

func checkBound(t *testing.T, f *grid.Field3D, opt Options) *Compressed {
	t.Helper()
	c, err := Compress(f, opt)
	if err != nil {
		t.Fatalf("compress: %v", err)
	}
	g, err := Decompress(c)
	if err != nil {
		t.Fatalf("decompress: %v", err)
	}
	if !f.SameShape(g) {
		t.Fatalf("shape changed: %v -> %v", f, g)
	}
	switch opt.Mode {
	case ABS:
		mx, _ := stats.MaxAbsError(f.Data, g.Data)
		// Allow the tiniest fp32 slack on top of the guarantee.
		if mx > opt.ErrorBound*(1+1e-5) {
			t.Fatalf("ABS bound violated: max err %v > eb %v", mx, opt.ErrorBound)
		}
	case PWREL:
		rel, _ := stats.MaxRelError(f.Data, g.Data)
		if rel > opt.ErrorBound*(1+1e-4) {
			t.Fatalf("PW_REL bound violated: max rel err %v > eb %v", rel, opt.ErrorBound)
		}
	}
	return c
}

func TestABSRoundTripBounds(t *testing.T) {
	f := smoothField(20, 1)
	for _, eb := range []float64{1e-3, 1e-2, 0.1, 1, 10} {
		checkBound(t, f, Options{Mode: ABS, ErrorBound: eb})
	}
}

func TestABSQuantizeBeforePredict(t *testing.T) {
	f := smoothField(20, 2)
	for _, eb := range []float64{1e-2, 0.1, 1} {
		checkBound(t, f, Options{Mode: ABS, ErrorBound: eb, QuantizeBeforePredict: true})
	}
}

func TestMeanNeighborPredictor(t *testing.T) {
	f := smoothField(16, 3)
	checkBound(t, f, Options{Mode: ABS, ErrorBound: 0.5, Predictor: MeanNeighbor})
}

func TestPWRELRoundTrip(t *testing.T) {
	r := stats.NewRNG(4)
	f := grid.NewCube(16)
	for i := range f.Data {
		f.Data[i] = float32(math.Exp(r.NormFloat64() * 3)) // lognormal, positive
	}
	for _, eb := range []float64{1e-3, 1e-2, 0.1} {
		checkBound(t, f, Options{Mode: PWREL, ErrorBound: eb})
	}
}

func TestPWRELRejectsNonPositive(t *testing.T) {
	f := grid.NewCube(4)
	f.Fill(1)
	f.Data[7] = 0
	if _, err := Compress(f, Options{Mode: PWREL, ErrorBound: 0.1}); err == nil {
		t.Fatal("PW_REL accepted zero value")
	}
	f.Data[7] = -3
	if _, err := Compress(f, Options{Mode: PWREL, ErrorBound: 0.1}); err == nil {
		t.Fatal("PW_REL accepted negative value")
	}
}

func TestOptionsValidate(t *testing.T) {
	cases := []Options{
		{Mode: ABS, ErrorBound: 0},
		{Mode: ABS, ErrorBound: -1},
		{Mode: PWREL, ErrorBound: 1.5},
		{Mode: Mode(9), ErrorBound: 1},
		{Mode: ABS, ErrorBound: 1, Predictor: Predictor(9)},
		{Mode: ABS, ErrorBound: 1, Radius: 1},
	}
	for i, opt := range cases {
		if err := opt.Validate(); err == nil {
			t.Errorf("case %d: invalid options accepted: %+v", i, opt)
		}
	}
	if err := (Options{Mode: ABS, ErrorBound: 0.5}).Validate(); err != nil {
		t.Errorf("valid options rejected: %v", err)
	}
}

func TestCompressShapeMismatch(t *testing.T) {
	if _, err := CompressSlice(make([]float32, 10), 2, 2, 2, Options{Mode: ABS, ErrorBound: 1}); err == nil {
		t.Fatal("length/dims mismatch accepted")
	}
	if _, err := CompressSlice(nil, 0, 0, 0, Options{Mode: ABS, ErrorBound: 1}); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestConstantFieldCompressesExtremely(t *testing.T) {
	f := grid.NewCube(32)
	f.Fill(42)
	c := checkBound(t, f, Options{Mode: ABS, ErrorBound: 1e-3})
	if c.Ratio() < 200 {
		t.Errorf("constant field ratio = %.1f, expected very high", c.Ratio())
	}
}

func TestSmoothFieldBeatsNoisyField(t *testing.T) {
	opt := Options{Mode: ABS, ErrorBound: 0.1}
	smooth := checkBound(t, smoothField(24, 5), opt)
	noisy := checkBound(t, noisyField(24, 6, 100), opt)
	if smooth.Ratio() <= noisy.Ratio() {
		t.Errorf("smooth ratio %.2f <= noisy ratio %.2f", smooth.Ratio(), noisy.Ratio())
	}
}

func TestRatioGrowsWithErrorBound(t *testing.T) {
	f := smoothField(24, 7)
	prev := 0.0
	for _, eb := range []float64{1e-3, 1e-2, 1e-1, 1} {
		c := checkBound(t, f, Options{Mode: ABS, ErrorBound: eb})
		if c.Ratio() < prev {
			t.Errorf("ratio decreased at eb=%v: %.2f < %.2f", eb, c.Ratio(), prev)
		}
		prev = c.Ratio()
	}
}

func TestSubOneBitRate(t *testing.T) {
	// At a generous bound on smooth data, the RLE stage must push the bit
	// rate below 1 bit/value (paper ratios reach 82×).
	f := smoothField(32, 8)
	c := checkBound(t, f, Options{Mode: ABS, ErrorBound: 200})
	if br := c.BitRate(); br >= 1 {
		t.Errorf("bit rate %.3f >= 1; RLE stage ineffective", br)
	}
}

func TestErrorDistributionUniform(t *testing.T) {
	// Paper Fig. 3: SZ error is ~uniform in [-eb, eb] at moderate bounds.
	f := smoothField(32, 9)
	eb := 0.5
	c := checkBound(t, f, Options{Mode: ABS, ErrorBound: eb})
	g, _ := Decompress(c)
	h, _ := stats.NewHistogram(-eb, eb, 20)
	for i := range f.Data {
		h.Add(float64(f.Data[i]) - float64(g.Data[i]))
	}
	if dev := h.MaxDeviationFromUniform(); dev > 0.02 {
		t.Errorf("error distribution deviates %.4f from uniform", dev)
	}
	// Variance should be close to eb²/3.
	var m stats.Moments
	for i := range f.Data {
		m.Add(float64(f.Data[i]) - float64(g.Data[i]))
	}
	want := stats.UniformVariance(eb)
	if math.Abs(m.Variance()-want) > 0.05*want {
		t.Errorf("error variance %v, uniform model %v", m.Variance(), want)
	}
}

func TestBytesParseRoundTrip(t *testing.T) {
	f := smoothField(16, 10)
	c := checkBound(t, f, Options{Mode: ABS, ErrorBound: 0.25})
	blob := c.Bytes()
	if len(blob) != c.CompressedSize() {
		t.Errorf("Bytes len %d != CompressedSize %d", len(blob), c.CompressedSize())
	}
	c2, err := Parse(blob)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	g1, _ := Decompress(c)
	g2, err := Decompress(c2)
	if err != nil {
		t.Fatalf("decompress parsed: %v", err)
	}
	if !bytes.Equal(float32Bytes(g1.Data), float32Bytes(g2.Data)) {
		t.Fatal("parsed stream decodes differently")
	}
}

func float32Bytes(xs []float32) []byte {
	out := make([]byte, 0, len(xs)*4)
	for _, x := range xs {
		out = appendFloat32(out, x)
	}
	return out
}

func TestParseRejectsCorruption(t *testing.T) {
	f := smoothField(12, 11)
	c, _ := Compress(f, Options{Mode: ABS, ErrorBound: 0.5})
	blob := c.Bytes()

	cases := map[string]func([]byte) []byte{
		"truncated header":  func(b []byte) []byte { return b[:20] },
		"bad magic":         func(b []byte) []byte { b[0] = 'X'; return b },
		"bad version":       func(b []byte) []byte { b[4] = 99; return b },
		"payload bit flip":  func(b []byte) []byte { b[len(b)-5] ^= 0xFF; return b },
		"truncated payload": func(b []byte) []byte { return b[:len(b)-3] },
		"crc flip":          func(b []byte) []byte { b[49] ^= 0x01; return b },
	}
	for name, corrupt := range cases {
		bad := corrupt(bytes.Clone(blob))
		if _, err := Parse(bad); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestDecompressTamperedStreamNoPanic(t *testing.T) {
	// Even if the CRC were bypassed, decompression must error, not panic.
	f := smoothField(12, 12)
	c, _ := Compress(f, Options{Mode: ABS, ErrorBound: 0.5})
	c.outliers = c.outliers[:0]                       // drop outliers
	c.codeStream = c.codeStream[:len(c.codeStream)/2] // truncate codes
	if _, err := DecompressSlice(c); err == nil {
		t.Log("tampered stream happened to decode; acceptable as long as no panic")
	}
}

func TestRLERoundTrip(t *testing.T) {
	const hit, base = 5, 10
	cases := [][]int{
		{},
		{5},
		{5, 5},
		{1, 5, 5, 5, 5, 5, 2},
		{5, 5, 5, 5, 5, 5, 5}, // 7 = 4+2+1
		{0, 1, 2, 3, 4},
	}
	for i, sym := range cases {
		enc := rleEncode(sym, hit, base)
		dec, err := rleDecode(enc, hit, base, len(sym))
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		for j := range sym {
			if dec[j] != sym[j] {
				t.Fatalf("case %d mismatch at %d", i, j)
			}
		}
	}
}

func TestRLELongRun(t *testing.T) {
	const hit, base = 3, 10
	sym := make([]int, 1<<20)
	for i := range sym {
		sym[i] = hit
	}
	enc := rleEncode(sym, hit, base)
	if len(enc) > 4 {
		t.Errorf("1M-run encoded to %d tokens, want ≤ 4", len(enc))
	}
	dec, err := rleDecode(enc, hit, base, len(sym))
	if err != nil {
		t.Fatal(err)
	}
	if len(dec) != len(sym) {
		t.Fatalf("len %d", len(dec))
	}
}

func TestRLEDecodeErrors(t *testing.T) {
	const hit, base = 3, 10
	if _, err := rleDecode([]int{base + maxRunExp + 1}, hit, base, 4); err == nil {
		t.Error("out-of-alphabet token accepted")
	}
	if _, err := rleDecode([]int{base + 1, base + 1}, hit, base, 3); err == nil {
		t.Error("overflowing run accepted")
	}
	if _, err := rleDecode([]int{hit}, hit, base, 2); err == nil {
		t.Error("short stream accepted")
	}
}

func TestNonCubicBricks(t *testing.T) {
	// Partition bricks are not always cubes (remainder bricks).
	r := stats.NewRNG(13)
	for _, dims := range [][3]int{{7, 5, 3}, {1, 1, 64}, {64, 1, 1}, {2, 9, 2}, {1, 1, 1}} {
		n := dims[0] * dims[1] * dims[2]
		data := make([]float32, n)
		for i := range data {
			data[i] = float32(r.NormFloat64() * 10)
		}
		c, err := CompressSlice(data, dims[0], dims[1], dims[2], Options{Mode: ABS, ErrorBound: 0.1})
		if err != nil {
			t.Fatalf("dims %v: %v", dims, err)
		}
		got, err := DecompressSlice(c)
		if err != nil {
			t.Fatalf("dims %v: %v", dims, err)
		}
		mx, _ := stats.MaxAbsError(data, got)
		if mx > 0.1*(1+1e-5) {
			t.Fatalf("dims %v: bound violated (%v)", dims, mx)
		}
	}
}

func TestSmallRadiusForcesOutliers(t *testing.T) {
	// A tiny radius forces most residuals into the outlier path; the bound
	// must still hold exactly (outliers are verbatim).
	f := noisyField(12, 14, 1000)
	c := checkBound(t, f, Options{Mode: ABS, ErrorBound: 1e-4, Radius: 2})
	if c.Ratio() > 1.5 {
		t.Logf("ratio %.2f (outlier-dominated, as expected)", c.Ratio())
	}
}

// Property: the ABS error bound holds for arbitrary data and bounds.
func TestQuickABSBound(t *testing.T) {
	f := func(raw []float32, ebSeed uint8) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 512 {
			raw = raw[:512]
		}
		for i, v := range raw {
			f64 := float64(v)
			if math.IsNaN(f64) || math.IsInf(f64, 0) || math.Abs(f64) > 1e30 {
				raw[i] = 0
			}
		}
		eb := math.Pow(10, float64(ebSeed%8)-4) // 1e-4 .. 1e3
		c, err := CompressSlice(raw, len(raw), 1, 1, Options{Mode: ABS, ErrorBound: eb})
		if err != nil {
			return false
		}
		got, err := DecompressSlice(c)
		if err != nil {
			return false
		}
		mx, _ := stats.MaxAbsError(raw, got)
		return mx <= eb*(1+1e-5)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: serialization round-trips bit-exactly.
func TestQuickStreamRoundTrip(t *testing.T) {
	r := stats.NewRNG(15)
	f := func(seed uint16) bool {
		data := make([]float32, 64)
		for i := range data {
			data[i] = float32(r.NormFloat64()*float64(seed%100) + 1)
		}
		c, err := CompressSlice(data, 4, 4, 4, Options{Mode: ABS, ErrorBound: 0.5})
		if err != nil {
			return false
		}
		c2, err := Parse(c.Bytes())
		if err != nil {
			return false
		}
		a, err1 := DecompressSlice(c)
		b, err2 := DecompressSlice(c2)
		if err1 != nil || err2 != nil || len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestBitRateAndRatioConsistency(t *testing.T) {
	f := smoothField(16, 16)
	c := checkBound(t, f, Options{Mode: ABS, ErrorBound: 0.1})
	wantBR := float64(c.CompressedSize()) * 8 / float64(f.Len())
	if math.Abs(c.BitRate()-wantBR) > 1e-12 {
		t.Errorf("BitRate inconsistent")
	}
	wantRatio := 32 / wantBR
	if math.Abs(c.Ratio()-wantRatio) > 1e-9 {
		t.Errorf("Ratio %v inconsistent with bit rate %v", c.Ratio(), c.BitRate())
	}
}
