package mpinet

import (
	"strings"
	"testing"

	"repro/internal/mpi"
)

func TestStatsCountPerRankTraffic(t *testing.T) {
	_, ts := startWorld(t, 2, quiet())
	err := runRanks(ts, func(c *mpi.Comm) error {
		if _, err := c.Allreduce(1, mpi.OpSum); err != nil {
			return err
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		if c.Rank() == 0 {
			return c.Send(1, []float64{42})
		}
		_, err := c.Recv(0)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	coll, msgs := ts[0].Stats()
	if coll != 2 {
		t.Errorf("rank 0 collectives = %d, want 2", coll)
	}
	if msgs != 1 {
		t.Errorf("rank 0 messages = %d, want 1", msgs)
	}
	if coll, msgs := ts[1].Stats(); coll != 2 || msgs != 0 {
		t.Errorf("rank 1 stats = (%d, %d), want (2, 0)", coll, msgs)
	}
}

func TestInvalidArgumentsAreLocalErrors(t *testing.T) {
	_, ts := startWorld(t, 2, quiet())
	if _, err := ts[0].Bcast(1, 5); err == nil || !strings.Contains(err.Error(), "invalid root") {
		t.Errorf("Bcast invalid root: %v", err)
	}
	if _, err := ts[0].Bcast(1, -1); err == nil {
		t.Error("Bcast negative root accepted")
	}
	if err := ts[0].Send(7, []float64{1}); err == nil || !strings.Contains(err.Error(), "invalid rank") {
		t.Errorf("Send invalid rank: %v", err)
	}
	if _, err := ts[0].Recv(-2); err == nil {
		t.Error("Recv invalid rank accepted")
	}
	if _, err := ts[0].AllreduceSlice(nil, mpi.OpSum); err == nil {
		t.Error("AllreduceSlice of empty vector accepted")
	}
	// The local argument rejections must not have consumed a collective or
	// desynchronized the world: a real collective still completes.
	err := runRanks(ts, func(c *mpi.Comm) error {
		got, err := c.Allreduce(float64(c.Rank()+1), mpi.OpSum)
		if err != nil {
			return err
		}
		if got != 3 {
			t.Errorf("Allreduce after rejections = %v, want 3", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
