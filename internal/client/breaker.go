package client

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/apierr"
)

// BreakerConfig tunes the per-endpoint circuit breaker.
type BreakerConfig struct {
	// Threshold is the number of consecutive server-class failures
	// (transport errors, 5xx, 429/503 refusals) that trips the breaker
	// open (default 5). Negative disables the breaker entirely.
	Threshold int
	// Cooldown is how long an open breaker rejects locally before letting
	// one half-open probe through (default 2s).
	Cooldown time.Duration
}

func (b BreakerConfig) withDefaults() BreakerConfig {
	if b.Threshold == 0 {
		b.Threshold = 5
	}
	if b.Cooldown == 0 {
		b.Cooldown = 2 * time.Second
	}
	return b
}

type breakerState uint8

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

// breaker is a closed/open/half-open circuit breaker guarding one
// endpoint. Closed counts consecutive failures; at the threshold it opens
// and rejects every request locally (typed apierr.ErrCircuitOpen) for the
// cooldown; then it half-opens and admits exactly one probe — a probe
// success closes it, a probe failure re-opens it for another cooldown.
type breaker struct {
	cfg      BreakerConfig
	endpoint string
	now      func() time.Time

	mu       sync.Mutex
	state    breakerState
	failures int
	openedAt time.Time
	probing  bool
}

func newBreaker(endpoint string, cfg BreakerConfig, now func() time.Time) *breaker {
	return &breaker{cfg: cfg.withDefaults(), endpoint: endpoint, now: now}
}

// allow decides whether a request may be sent right now. A nil return
// admits it (and, in half-open, reserves the single probe slot — the
// caller must follow up with record). Non-nil wraps ErrCircuitOpen.
func (b *breaker) allow() error {
	if b.cfg.Threshold < 0 {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return nil
	case breakerOpen:
		if b.now().Sub(b.openedAt) >= b.cfg.Cooldown {
			b.state = breakerHalfOpen
			b.probing = true
			return nil
		}
	case breakerHalfOpen:
		if !b.probing {
			b.probing = true
			return nil
		}
	}
	return fmt.Errorf("client: %s: %w after %d consecutive failures (cooldown %v)",
		b.endpoint, apierr.ErrCircuitOpen, b.failures, b.cfg.Cooldown)
}

// record reports the outcome of an admitted request. ok means the
// endpoint is healthy (any response that is not a server-class failure);
// !ok counts toward tripping — or, from half-open, re-opens immediately.
func (b *breaker) record(ok bool) {
	if b.cfg.Threshold < 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		if ok {
			b.failures = 0
			return
		}
		b.failures++
		if b.failures >= b.cfg.Threshold {
			b.state = breakerOpen
			b.openedAt = b.now()
		}
	case breakerHalfOpen:
		b.probing = false
		if ok {
			b.state = breakerClosed
			b.failures = 0
			return
		}
		b.state = breakerOpen
		b.openedAt = b.now()
	case breakerOpen:
		// A late result from before the trip; the cooldown stands.
	}
}
