package spectrum

import (
	"math"
	"testing"

	"repro/internal/grid"
	"repro/internal/stats"
)

func TestConstantFieldIsDCOnly(t *testing.T) {
	f := grid.NewCube(16)
	f.Fill(7)
	s, err := Compute(f, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s.P[0] == 0 {
		t.Error("DC shell empty for constant field")
	}
	for i := 1; i < s.Len(); i++ {
		if s.P[i] > 1e-12 {
			t.Errorf("shell %d has power %g for constant field", i, s.P[i])
		}
	}
}

func TestSingleModeLandsInRightShell(t *testing.T) {
	// A plane wave with wavevector (3,0,0) must put all its power in
	// shell k=3.
	n := 32
	f := grid.NewCube(n)
	for z := 0; z < n; z++ {
		for y := 0; y < n; y++ {
			for x := 0; x < n; x++ {
				f.Set(x, y, z, float32(math.Cos(2*math.Pi*3*float64(x)/float64(n))))
			}
		}
	}
	s, err := Compute(f, Options{})
	if err != nil {
		t.Fatal(err)
	}
	best := 0
	for i := 1; i < s.Len(); i++ {
		if s.P[i]*float64(s.Counts[i]) > s.P[best]*float64(s.Counts[best]) {
			best = i
		}
	}
	if best != 3 {
		t.Errorf("dominant shell = %d, want 3", best)
	}
}

func TestParsevalTotalPower(t *testing.T) {
	r := stats.NewRNG(3)
	n := 16
	f := grid.NewCube(n)
	var ms float64
	for i := range f.Data {
		f.Data[i] = float32(r.NormFloat64())
		ms += float64(f.Data[i]) * float64(f.Data[i])
	}
	ms /= float64(f.Len())
	s, err := Compute(f, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Shells only cover |k| < maxShell; modes in the corners beyond
	// sqrt(3)·nyquist are included by construction, so totals match.
	if math.Abs(s.TotalPower()-ms) > 1e-6*ms {
		t.Errorf("total power %v, mean square %v", s.TotalPower(), ms)
	}
}

func TestContrastMode(t *testing.T) {
	f := grid.NewCube(8)
	f.Fill(5)
	s, err := Compute(f, Options{Contrast: true})
	if err != nil {
		t.Fatal(err)
	}
	// δ of a constant field is identically zero.
	for i := 0; i < s.Len(); i++ {
		if s.P[i] != 0 {
			t.Errorf("shell %d nonzero for zero contrast", i)
		}
	}
	zero := grid.NewCube(8)
	if _, err := Compute(zero, Options{Contrast: true}); err == nil {
		t.Error("zero-mean contrast accepted")
	}
}

func TestNonCubicRejected(t *testing.T) {
	f := grid.NewField3D(8, 8, 4)
	if _, err := Compute(f, Options{}); err == nil {
		t.Error("non-cubic field accepted")
	}
}

func TestRatioAndDeviation(t *testing.T) {
	r := stats.NewRNG(5)
	n := 16
	f := grid.NewCube(n)
	for i := range f.Data {
		f.Data[i] = float32(100 + 10*r.NormFloat64())
	}
	orig, err := Compute(f, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Identical field → ratio exactly 1 everywhere.
	same, _ := Compute(f, Options{})
	ratios, err := Ratio(orig, same)
	if err != nil {
		t.Fatal(err)
	}
	for i, rt := range ratios {
		if orig.Counts[i] > 0 && math.Abs(rt-1) > 1e-12 {
			t.Errorf("shell %d self-ratio %v", i, rt)
		}
	}
	d, err := MaxDeviation(orig, same, 10)
	if err != nil {
		t.Fatal(err)
	}
	if d != 0 {
		t.Errorf("self deviation %v", d)
	}
	ok, _ := WithinBand(orig, same, 10, 0.01)
	if !ok {
		t.Error("identical spectra not within band")
	}

	// A slightly perturbed field must yield a small but nonzero deviation.
	g := f.Clone()
	for i := range g.Data {
		g.Data[i] += float32(r.Uniform(-1, 1))
	}
	recon, _ := Compute(g, Options{})
	d2, _ := MaxDeviation(orig, recon, 10)
	if d2 <= 0 {
		t.Error("perturbed field has zero deviation")
	}
	// And a heavily perturbed field must break the ±1 % band.
	h := f.Clone()
	for i := range h.Data {
		h.Data[i] += float32(r.Uniform(-50, 50))
	}
	recon2, _ := Compute(h, Options{})
	ok2, _ := WithinBand(orig, recon2, 10, 0.01)
	if ok2 {
		t.Error("heavy distortion stayed within ±1 % band")
	}
}

func TestRatioLengthMismatch(t *testing.T) {
	a := &Spectrum{K: []float64{0, 1}, P: []float64{1, 1}, Counts: []int64{1, 1}}
	b := &Spectrum{K: []float64{0}, P: []float64{1}, Counts: []int64{1}}
	if _, err := Ratio(a, b); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := MaxDeviation(a, b, 10); err == nil {
		t.Error("length mismatch accepted by MaxDeviation")
	}
}

func TestShellCountsCoverAllModes(t *testing.T) {
	n := 8
	f := grid.NewCube(n)
	s, err := Compute(f, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, c := range s.Counts {
		total += c
	}
	if total != int64(n*n*n) {
		t.Errorf("shells cover %d modes, want %d", total, n*n*n)
	}
}
