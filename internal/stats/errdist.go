package stats

import "math"

// ErrDist is a log₂-spaced histogram of absolute values, the streaming
// summary of a prediction-error distribution that the ratio-quality model
// (Jin et al., arXiv 2111.09815) consumes: from it, the mass of every
// quantization-bin octave can be recovered for *any* candidate error bound
// without rescanning the data. Bins subdivide each octave into
// errDistSubBins slices (via Frexp, no logarithms on the hot path); values
// at or below 2^errDistMinExp collapse into the exact-zero count, far
// outside any float32-scale error bound. The zero value is ready to use.
type ErrDist struct {
	counts []int64
	n      int64
	zero   int64
	max    float64
	sum    float64
	// tails memoizes suffix sums of counts (tails[i] = Σ counts[i:]) so the
	// ratio-quality model's many TailCount queries per fitted curve cost
	// O(1) instead of a bin scan each; rebuilt lazily after any Add.
	tails []int64
}

const (
	errDistSubBins = 4
	// errDistMinExp/MaxExp bound the binned Frexp exponent range; float32
	// magnitudes (1e-45 .. 3e38) fit with slack on both sides.
	errDistMinExp = -170
	errDistMaxExp = 150
	errDistBins   = (errDistMaxExp - errDistMinExp) * errDistSubBins
)

// Reset clears the accumulator, keeping the bin storage.
func (d *ErrDist) Reset() {
	clear(d.counts)
	d.n, d.zero, d.max, d.sum = 0, 0, 0, 0
	d.tails = d.tails[:0]
}

// Add folds one observation's magnitude into the histogram.
func (d *ErrDist) Add(x float64) {
	if x < 0 {
		x = -x
	}
	d.n++
	d.sum += x
	if x > d.max {
		d.max = x
	}
	frac, exp := math.Frexp(x) // x = frac·2^exp, frac ∈ [0.5, 1)
	if x == 0 || exp <= errDistMinExp {
		d.zero++
		return
	}
	if exp > errDistMaxExp {
		exp = errDistMaxExp
	}
	sub := int((frac - 0.5) * (2 * errDistSubBins))
	if sub >= errDistSubBins {
		sub = errDistSubBins - 1
	}
	if d.counts == nil {
		d.counts = make([]int64, errDistBins)
	}
	d.counts[(exp-1-errDistMinExp)*errDistSubBins+sub]++
	d.tails = d.tails[:0]
}

// Count returns the number of observations.
func (d *ErrDist) Count() int64 { return d.n }

// Zeros returns the observations indistinguishable from zero.
func (d *ErrDist) Zeros() int64 { return d.zero }

// Max returns the largest observed magnitude.
func (d *ErrDist) Max() float64 { return d.max }

// MeanAbs returns the mean magnitude (0 for an empty accumulator).
func (d *ErrDist) MeanAbs() float64 {
	if d.n == 0 {
		return 0
	}
	return d.sum / float64(d.n)
}

// TailCount estimates the number of observations with magnitude strictly
// greater than t, interpolating log-uniformly inside the bin containing t.
// The per-octave sub-binning keeps the interpolation error per query under
// a quarter octave of mass — well inside the guard band the calibration
// layer checks the model against.
func (d *ErrDist) TailCount(t float64) float64 {
	if d.n == 0 || t >= d.max {
		return 0
	}
	nonZero := float64(d.n - d.zero)
	if t <= 0 {
		return nonZero
	}
	frac, exp := math.Frexp(t)
	if exp <= errDistMinExp {
		return nonZero
	}
	if exp > errDistMaxExp {
		return 0
	}
	sub := int((frac - 0.5) * (2 * errDistSubBins))
	if sub >= errDistSubBins {
		sub = errDistSubBins - 1
	}
	i := (exp-1-errDistMinExp)*errDistSubBins + sub
	if d.counts == nil {
		return 0
	}
	if len(d.tails) != len(d.counts)+1 {
		if cap(d.tails) < len(d.counts)+1 {
			d.tails = make([]int64, len(d.counts)+1)
		} else {
			d.tails = d.tails[:len(d.counts)+1]
		}
		d.tails[len(d.counts)] = 0
		for j := len(d.counts) - 1; j >= 0; j-- {
			d.tails[j] = d.tails[j+1] + d.counts[j]
		}
	}
	tail := float64(d.tails[i+1])
	if c := d.counts[i]; c > 0 {
		// Bin edges: frac ∈ [0.5·(1+sub/4), 0.5·(1+(sub+1)/4)) at this exp.
		lo := math.Ldexp(0.5*(1+float64(sub)/errDistSubBins), exp)
		hi := math.Ldexp(0.5*(1+float64(sub+1)/errDistSubBins), exp)
		f := (math.Log(t) - math.Log(lo)) / (math.Log(hi) - math.Log(lo))
		if f < 0 {
			f = 0
		}
		if f > 1 {
			f = 1
		}
		tail += float64(c) * (1 - f)
	}
	return tail
}

// Clone returns an independent copy (calibration keeps one per sampled
// partition for diagnostics while the scan scratch is reused).
func (d *ErrDist) Clone() *ErrDist {
	cp := *d
	if d.counts != nil {
		cp.counts = append([]int64(nil), d.counts...)
	}
	cp.tails = nil // memo is rebuilt on first query
	return &cp
}

// PredScan is the reusable scratch of one streaming feature scan: value
// moments (range, mean — the rate-model feature) and the prediction-error
// magnitude distribution, gathered in a single pass over a partition.
// Reset and reuse it across partitions; Clone the parts that must outlive
// the scan.
type PredScan struct {
	Values Moments
	Errs   ErrDist
}

// Reset clears both accumulators, keeping allocated storage.
func (s *PredScan) Reset() {
	s.Values = Moments{}
	s.Errs.Reset()
}
