package zfp

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/grid"
	"repro/internal/stats"
)

func smoothField(n int, seed uint64) *grid.Field3D {
	r := stats.NewRNG(seed)
	f := grid.NewCube(n)
	for z := 0; z < n; z++ {
		for y := 0; y < n; y++ {
			for x := 0; x < n; x++ {
				v := 100*math.Sin(float64(x)/5)*math.Cos(float64(y)/7) +
					30*math.Sin(float64(z)/4) + r.NormFloat64()*0.1
				f.Set(x, y, z, float32(v))
			}
		}
	}
	return f
}

func TestLiftInverseNearExact(t *testing.T) {
	// ZFP's lift pair loses only the bits its forward shifts discard:
	// the round trip must agree up to a few low bits.
	r := stats.NewRNG(1)
	for trial := 0; trial < 1000; trial++ {
		var p, q [4]int64
		for i := range p {
			p[i] = int64(r.Intn(1<<30)) - (1 << 29)
			q[i] = p[i]
		}
		liftForward(q[:], 1)
		liftInverse(q[:], 1)
		for i := range p {
			if d := p[i] - q[i]; d < -4 || d > 4 {
				t.Fatalf("lift round trip lost %d: %v -> %v", d, p, q)
			}
		}
	}
}

func TestTransformBlockInverseNearExact(t *testing.T) {
	r := stats.NewRNG(2)
	for trial := 0; trial < 100; trial++ {
		var b, ref [blockSize]int64
		for i := range b {
			b[i] = int64(r.Intn(1<<24)) - (1 << 23)
			ref[i] = b[i]
		}
		transformBlock(&b)
		inverseBlock(&b)
		for i := range b {
			if d := b[i] - ref[i]; d < -64 || d > 64 {
				t.Fatalf("3-D transform lost %d at %d", d, i)
			}
		}
	}
}

func TestNegabinaryRoundTrip(t *testing.T) {
	vals := []int64{0, 1, -1, 2, -2, 1 << 30, -(1 << 30), math.MaxInt32, math.MinInt32}
	for _, v := range vals {
		if got := negabinaryInv(negabinary(v)); got != v {
			t.Errorf("negabinary(%d) inverted to %d", v, got)
		}
	}
}

func TestSequencyIsPermutation(t *testing.T) {
	seen := make(map[int]bool)
	for _, idx := range sequency {
		if idx < 0 || idx >= blockSize || seen[idx] {
			t.Fatalf("sequency not a permutation: %v", sequency)
		}
		seen[idx] = true
	}
	if sequency[0] != 0 {
		t.Errorf("DC coefficient not first: %d", sequency[0])
	}
}

func TestHighRateNearLossless(t *testing.T) {
	f := smoothField(16, 3)
	c, err := Compress(f, Options{Rate: 28})
	if err != nil {
		t.Fatal(err)
	}
	g, err := Decompress(c)
	if err != nil {
		t.Fatal(err)
	}
	psnr, _ := stats.PSNR(f.Data, g.Data)
	if psnr < 90 {
		t.Errorf("rate-28 PSNR %v too low", psnr)
	}
}

func TestRateControlsSize(t *testing.T) {
	f := smoothField(32, 4)
	var prevSize int
	var prevPSNR float64
	for _, rate := range []float64{1, 2, 4, 8, 16} {
		c, err := Compress(f, Options{Rate: rate})
		if err != nil {
			t.Fatal(err)
		}
		// Achieved bit rate stays within ~25 % of the request (header and
		// group-test overhead).
		if br := c.BitRate(); br > rate*1.3+0.5 {
			t.Errorf("rate %v: achieved %v", rate, br)
		}
		if c.CompressedSize() <= prevSize {
			t.Errorf("size did not grow with rate")
		}
		prevSize = c.CompressedSize()
		g, err := Decompress(c)
		if err != nil {
			t.Fatal(err)
		}
		psnr, _ := stats.PSNR(f.Data, g.Data)
		if psnr < prevPSNR-1 {
			t.Errorf("PSNR fell with rate: %v after %v", psnr, prevPSNR)
		}
		prevPSNR = psnr
	}
	if prevPSNR < 60 {
		t.Errorf("rate-16 PSNR %v too low", prevPSNR)
	}
}

func TestZeroField(t *testing.T) {
	f := grid.NewCube(8)
	c, err := Compress(f, Options{Rate: 4})
	if err != nil {
		t.Fatal(err)
	}
	// All-zero blocks cost 1 bit each.
	if c.CompressedSize() > headerSize+8 {
		t.Errorf("zero field compressed to %d bytes", c.CompressedSize())
	}
	g, err := Decompress(c)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range g.Data {
		if v != 0 {
			t.Fatalf("zero field reconstructed nonzero at %d: %v", i, v)
		}
	}
}

func TestNonMultipleOfFourDims(t *testing.T) {
	r := stats.NewRNG(5)
	f := grid.NewField3D(7, 5, 6)
	for i := range f.Data {
		f.Data[i] = float32(r.NormFloat64() * 10)
	}
	c, err := Compress(f, Options{Rate: 12})
	if err != nil {
		t.Fatal(err)
	}
	g, err := Decompress(c)
	if err != nil {
		t.Fatal(err)
	}
	if !f.SameShape(g) {
		t.Fatalf("shape changed: %v", g)
	}
	psnr, _ := stats.PSNR(f.Data, g.Data)
	if psnr < 30 {
		t.Errorf("padded-block PSNR %v", psnr)
	}
}

func TestOptionsValidate(t *testing.T) {
	if err := (Options{Rate: 0.1}).Validate(); err == nil {
		t.Error("rate below 0.5 accepted")
	}
	if err := (Options{Rate: 64}).Validate(); err == nil {
		t.Error("rate above 32 accepted")
	}
	if _, err := Compress(grid.NewCube(4), Options{Rate: 0}); err == nil {
		t.Error("zero rate accepted")
	}
}

func TestBytesParseRoundTrip(t *testing.T) {
	f := smoothField(8, 6)
	c, err := Compress(f, Options{Rate: 8})
	if err != nil {
		t.Fatal(err)
	}
	c2, err := Parse(c.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	a, err := Decompress(c)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Decompress(c2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatal("parse round trip changed reconstruction")
		}
	}
}

func TestParseRejectsCorruption(t *testing.T) {
	f := smoothField(8, 7)
	c, _ := Compress(f, Options{Rate: 8})
	blob := c.Bytes()
	cases := map[string]func([]byte) []byte{
		"short": func(b []byte) []byte { return b[:10] },
		"magic": func(b []byte) []byte { b[0] = 'x'; return b },
		"dims":  func(b []byte) []byte { b[8], b[9], b[10], b[11] = 0, 0, 0, 0; return b },
	}
	for name, corrupt := range cases {
		if _, err := Parse(corrupt(bytes.Clone(blob))); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
	// Truncated payload: decoding must error or degrade, never panic.
	c.payload = c.payload[:len(c.payload)/2]
	if _, err := Decompress(c); err == nil {
		t.Log("truncated payload decoded partially; acceptable (no panic)")
	}
}

func TestFixedRateIsExact(t *testing.T) {
	// Two very different fields at the same rate must compress to the same
	// size modulo zero-block shortcuts — the fixed-rate property the paper
	// contrasts with error-bounded mode.
	a := smoothField(16, 8)
	r := stats.NewRNG(9)
	b := grid.NewCube(16)
	for i := range b.Data {
		b.Data[i] = float32(r.NormFloat64() * 1e6)
	}
	ca, _ := Compress(a, Options{Rate: 8})
	cb, _ := Compress(b, Options{Rate: 8})
	if d := math.Abs(float64(ca.CompressedSize()-cb.CompressedSize())) /
		float64(ca.CompressedSize()); d > 0.15 {
		t.Errorf("fixed-rate sizes differ %v%%: %d vs %d", d*100, ca.CompressedSize(), cb.CompressedSize())
	}
}

// Property: reconstruction error is bounded relative to block magnitude at
// a generous rate, for arbitrary inputs.
func TestQuickReasonableError(t *testing.T) {
	f := func(seed uint64) bool {
		r := stats.NewRNG(seed)
		fld := grid.NewCube(8)
		for i := range fld.Data {
			fld.Data[i] = float32(r.NormFloat64() * math.Pow(10, r.Uniform(-3, 6)))
		}
		c, err := Compress(fld, Options{Rate: 24})
		if err != nil {
			return false
		}
		g, err := Decompress(c)
		if err != nil {
			return false
		}
		psnr, _ := stats.PSNR(fld.Data, g.Data)
		return psnr > 40 || math.IsInf(psnr, 1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
