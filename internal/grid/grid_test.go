package grid

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

func sequentialField(nx, ny, nz int) *Field3D {
	f := NewField3D(nx, ny, nz)
	for i := range f.Data {
		f.Data[i] = float32(i)
	}
	return f
}

func TestFieldIndexRoundTrip(t *testing.T) {
	f := NewField3D(4, 5, 6)
	for z := 0; z < 6; z++ {
		for y := 0; y < 5; y++ {
			for x := 0; x < 4; x++ {
				i := f.Index(x, y, z)
				gx, gy, gz := f.Coords(i)
				if gx != x || gy != y || gz != z {
					t.Fatalf("Coords(Index(%d,%d,%d)) = (%d,%d,%d)", x, y, z, gx, gy, gz)
				}
			}
		}
	}
}

func TestFieldAtSet(t *testing.T) {
	f := NewField3D(3, 3, 3)
	f.Set(1, 2, 0, 42)
	if f.At(1, 2, 0) != 42 {
		t.Fatal("At/Set mismatch")
	}
	if f.Len() != 27 {
		t.Fatalf("Len = %d", f.Len())
	}
}

func TestFieldCloneIndependent(t *testing.T) {
	f := sequentialField(2, 2, 2)
	g := f.Clone()
	g.Data[0] = 99
	if f.Data[0] == 99 {
		t.Fatal("Clone shares storage")
	}
	if !f.SameShape(g) {
		t.Fatal("Clone shape mismatch")
	}
}

func TestFieldStats(t *testing.T) {
	f := sequentialField(2, 2, 2) // values 0..7
	if m := f.Mean(); math.Abs(m-3.5) > 1e-12 {
		t.Errorf("mean = %v, want 3.5", m)
	}
	lo, hi := f.MinMax()
	if lo != 0 || hi != 7 {
		t.Errorf("minmax = %v, %v", lo, hi)
	}
	f.Data[3] = -10
	if am := f.AbsMax(); am != 10 {
		t.Errorf("absmax = %v", am)
	}
	mom := f.Moments()
	if mom.Count() != 8 {
		t.Errorf("moments count = %d", mom.Count())
	}
}

func TestFieldValidate(t *testing.T) {
	f := NewField3D(2, 2, 2)
	if err := f.Validate(); err != nil {
		t.Fatalf("valid field rejected: %v", err)
	}
	f.Data[5] = float32(math.NaN())
	if err := f.Validate(); err == nil {
		t.Fatal("NaN accepted")
	}
	f.Data[5] = 0
	f.Data = f.Data[:7]
	if err := f.Validate(); err == nil {
		t.Fatal("truncated data accepted")
	}
}

func TestNewFieldPanicsOnBadDims(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for zero dimension")
		}
	}()
	NewField3D(0, 4, 4)
}

func TestPartitionerExactCover(t *testing.T) {
	// Non-divisible shape: last brick absorbs the remainder.
	p, err := NewPartitioner(10, 7, 5, 3, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if p.Count() != 12 {
		t.Fatalf("count = %d, want 12", p.Count())
	}
	// Every cell covered exactly once.
	seen := make([]int, 10*7*5)
	f := NewField3D(10, 7, 5)
	for _, part := range p.Partitions() {
		for z := part.Z0; z < part.Z1; z++ {
			for y := part.Y0; y < part.Y1; y++ {
				for x := part.X0; x < part.X1; x++ {
					seen[f.Index(x, y, z)]++
				}
			}
		}
	}
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("cell %d covered %d times", i, c)
		}
	}
}

func TestPartitionerErrors(t *testing.T) {
	if _, err := NewPartitioner(4, 4, 4, 0, 1, 1); err == nil {
		t.Error("zero brick count accepted")
	}
	if _, err := NewPartitioner(4, 4, 4, 5, 1, 1); err == nil {
		t.Error("more bricks than cells accepted")
	}
	if _, err := NewPartitioner(0, 4, 4, 1, 1, 1); err == nil {
		t.Error("zero dim accepted")
	}
	if _, err := PartitionerForBrickDim(512, 3); err == nil {
		t.Error("non-dividing brick dim accepted")
	}
}

func TestPartitionerForBrickDim(t *testing.T) {
	p, err := PartitionerForBrickDim(64, 16)
	if err != nil {
		t.Fatal(err)
	}
	if p.Count() != 64 {
		t.Fatalf("count = %d, want 4³", p.Count())
	}
	for _, part := range p.Partitions() {
		nx, ny, nz := part.Dims()
		if nx != 16 || ny != 16 || nz != 16 {
			t.Fatalf("brick dims = %d,%d,%d", nx, ny, nz)
		}
	}
}

func TestExtractInsertRoundTrip(t *testing.T) {
	f := sequentialField(8, 8, 8)
	p, _ := NewCubePartitioner(8, 2)
	g := NewField3D(8, 8, 8)
	for _, part := range p.Partitions() {
		brick := Extract(f, part)
		if len(brick) != part.Len() {
			t.Fatalf("brick len = %d, want %d", len(brick), part.Len())
		}
		if err := Insert(g, part, brick); err != nil {
			t.Fatal(err)
		}
	}
	for i := range f.Data {
		if f.Data[i] != g.Data[i] {
			t.Fatalf("round trip mismatch at %d", i)
		}
	}
}

func TestExtractIntoMatchesExtract(t *testing.T) {
	f := sequentialField(6, 5, 4)
	p, _ := NewPartitioner(6, 5, 4, 2, 2, 2)
	for _, part := range p.Partitions() {
		want := Extract(f, part)
		got := make([]float32, part.Len())
		ExtractInto(got, f, part)
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("partition %d idx %d: %v != %v", part.ID, i, got[i], want[i])
			}
		}
	}
}

func TestInsertLengthCheck(t *testing.T) {
	f := NewField3D(4, 4, 4)
	p, _ := NewCubePartitioner(4, 2)
	if err := Insert(f, p.Partition(0), make([]float32, 3)); err == nil {
		t.Fatal("wrong-size brick accepted")
	}
}

func TestBrickField(t *testing.T) {
	p, _ := NewCubePartitioner(8, 2)
	part := p.Partition(0)
	data := make([]float32, part.Len())
	bf, err := BrickField(part, data)
	if err != nil {
		t.Fatal(err)
	}
	if bf.Nx != 4 || bf.Ny != 4 || bf.Nz != 4 {
		t.Fatalf("brick field dims %v", bf)
	}
	bf.Data[0] = 1
	if data[0] != 1 {
		t.Fatal("BrickField must share storage")
	}
	if _, err := BrickField(part, make([]float32, 5)); err == nil {
		t.Fatal("wrong-size data accepted")
	}
}

func TestExtractFeaturesMeans(t *testing.T) {
	// Field where each octant has a distinct constant value.
	f := NewField3D(8, 8, 8)
	p, _ := NewCubePartitioner(8, 2)
	for _, part := range p.Partitions() {
		for z := part.Z0; z < part.Z1; z++ {
			for y := part.Y0; y < part.Y1; y++ {
				for x := part.X0; x < part.X1; x++ {
					f.Set(x, y, z, float32(part.ID+1))
				}
			}
		}
	}
	fts := ExtractFeatures(f, p, FeatureOptions{})
	if len(fts) != 8 {
		t.Fatalf("features count = %d", len(fts))
	}
	for i, ft := range fts {
		if ft.PartitionID != i {
			t.Errorf("feature %d has partition ID %d", i, ft.PartitionID)
		}
		if math.Abs(ft.Mean-float64(i+1)) > 1e-6 {
			t.Errorf("partition %d mean = %v, want %d", i, ft.Mean, i+1)
		}
		if ft.Count != 64 {
			t.Errorf("partition %d count = %d", i, ft.Count)
		}
	}
	// Weighted mean of means must equal the global mean.
	if got, want := MeanOfMeans(fts), f.Mean(); math.Abs(got-want) > 1e-9 {
		t.Errorf("MeanOfMeans = %v, global mean = %v", got, want)
	}
}

func TestExtractFeaturesBoundaryCells(t *testing.T) {
	f := NewField3D(4, 4, 4)
	// 5 cells exactly at threshold, 3 just below band, 2 inside band above.
	thr := 88.16
	for i := 0; i < 5; i++ {
		f.Data[i] = float32(thr)
	}
	for i := 5; i < 8; i++ {
		f.Data[i] = float32(thr - 2.0) // outside ±1 band
	}
	for i := 8; i < 10; i++ {
		f.Data[i] = float32(thr + 0.5)
	}
	p, _ := NewCubePartitioner(4, 1)
	fts := ExtractFeatures(f, p, FeatureOptions{HaloThreshold: thr, RefEB: 1.0})
	if fts[0].BoundaryCells != 7 {
		t.Errorf("boundary cells = %d, want 7", fts[0].BoundaryCells)
	}
	// Linear scaling of the band count.
	if got := fts[0].BoundaryCellsAt(0.5); math.Abs(got-3.5) > 1e-12 {
		t.Errorf("BoundaryCellsAt(0.5) = %v, want 3.5", got)
	}
	// Without a threshold no boundary cells are counted.
	fts = ExtractFeatures(f, p, FeatureOptions{})
	if fts[0].BoundaryCells != 0 || fts[0].BoundaryCellsAt(1.0) != 0 {
		t.Error("boundary cells counted without threshold")
	}
}

func TestExtractFeaturesMatchesSerial(t *testing.T) {
	r := stats.NewRNG(99)
	f := NewField3D(16, 16, 16)
	for i := range f.Data {
		f.Data[i] = float32(r.NormFloat64() * 100)
	}
	p, _ := NewCubePartitioner(16, 4)
	par := ExtractFeatures(f, p, FeatureOptions{Workers: 8})
	ser := ExtractFeatures(f, p, FeatureOptions{Workers: 1})
	for i := range par {
		if par[i] != ser[i] {
			t.Fatalf("partition %d: parallel %+v != serial %+v", i, par[i], ser[i])
		}
	}
}

// Property: Extract → Insert into a zero field reproduces exactly the brick
// region and nothing else, for arbitrary brick-count choices.
func TestQuickExtractInsert(t *testing.T) {
	f := sequentialField(12, 12, 12)
	check := func(bx, by, bz uint8) bool {
		b := func(v uint8) int { return 1 + int(v)%4 }
		p, err := NewPartitioner(12, 12, 12, b(bx), b(by), b(bz))
		if err != nil {
			return false
		}
		g := NewField3D(12, 12, 12)
		for _, part := range p.Partitions() {
			if err := Insert(g, part, Extract(f, part)); err != nil {
				return false
			}
		}
		for i := range f.Data {
			if f.Data[i] != g.Data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
