package core

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"repro/internal/apierr"
	"repro/internal/grid"
)

func TestShardFieldNameRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		field string
		part  int
	}{
		{"baryon_density", 0},
		{"temperature", 7},
		{"x", 12345678},
	} {
		name := ShardFieldName(tc.field, tc.part)
		f, p, ok := ParseShardFieldName(name)
		if !ok || f != tc.field || p != tc.part {
			t.Errorf("round trip %q/%d -> %q -> %q/%d/%v", tc.field, tc.part, name, f, p, ok)
		}
	}
	// Pseudo-names must sort by field, then by partition ID, so that each
	// shard's step block (sorted by name) is deterministic.
	names := []string{
		ShardFieldName("b", 2), ShardFieldName("a", 10), ShardFieldName("a", 9), ShardFieldName("b", 0),
	}
	sort.Strings(names)
	want := []string{
		ShardFieldName("a", 9), ShardFieldName("a", 10), ShardFieldName("b", 0), ShardFieldName("b", 2),
	}
	for i := range names {
		if names[i] != want[i] {
			t.Fatalf("sort order %v, want %v", names, want)
		}
	}
	for _, bad := range []string{"plain", "\x1fp00000001", "f\x1fnope", "f\x1fp-0000001", ""} {
		if _, _, ok := ParseShardFieldName(bad); ok {
			t.Errorf("ParseShardFieldName(%q) accepted", bad)
		}
	}
}

// shardCube builds a deterministic 16^3 field whose values vary per step.
func shardCube(step int) *grid.Field3D {
	f := grid.NewCube(16)
	for i := range f.Data {
		x, y, z := f.Coords(i)
		f.Data[i] = float32(step+1) * float32(x+2*y+3*z+1)
	}
	return f
}

// shardFixture compresses nSteps of two fields and returns the golden
// single-process stream plus the per-step CompressedFields.
func shardFixture(t *testing.T, nSteps int) (golden []byte, steps []map[string]*CompressedField, nParts int) {
	t.Helper()
	e := engine(t, Config{PartitionDim: 8})
	var buf bytes.Buffer
	sw, err := NewStreamWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < nSteps; s++ {
		rho, err := e.CompressStatic(context.Background(), shardCube(s), 0.25)
		if err != nil {
			t.Fatal(err)
		}
		tem, err := e.CompressStatic(context.Background(), shardCube(s+100), 0.5)
		if err != nil {
			t.Fatal(err)
		}
		step := map[string]*CompressedField{"rho": rho, "temperature": tem}
		steps = append(steps, step)
		if err := sw.WriteStep(step); err != nil {
			t.Fatal(err)
		}
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	nParts = len(steps[0]["rho"].Parts)
	if nParts < 4 {
		t.Fatalf("fixture has only %d partitions", nParts)
	}
	return buf.Bytes(), steps, nParts
}

// writeShard writes one rank's shard stream covering `owned` partitions of
// every field for steps [0, upto). Close is skipped when torn is set,
// leaving a footerless stream like the one a killed rank leaves behind.
func writeShard(t *testing.T, steps []map[string]*CompressedField, owned []int, upto int, torn bool) []byte {
	t.Helper()
	var buf bytes.Buffer
	sw, err := NewStreamWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < upto; s++ {
		block := make(map[string]*CompressedField)
		for field, cf := range steps[s] {
			sh := &RankShard{Owned: owned}
			for _, pi := range owned {
				sh.Frames = append(sh.Frames, cf.Parts[pi])
			}
			m, err := ShardStepFields(field, cf.Nx, cf.Ny, cf.Nz, cf.PartitionDim, sh)
			if err != nil {
				t.Fatal(err)
			}
			for k, v := range m {
				block[k] = v
			}
		}
		if err := sw.WriteStep(block); err != nil {
			t.Fatal(err)
		}
	}
	if !torn {
		if err := sw.Close(); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

func shardInputs(bufs ...[]byte) []ShardInput {
	var in []ShardInput
	for _, b := range bufs {
		in = append(in, ShardInput{R: bytes.NewReader(b), Size: int64(len(b))})
	}
	return in
}

func TestMergeShardsByteIdentical(t *testing.T) {
	golden, steps, nParts := shardFixture(t, 3)
	assign := AssignPartitions(nParts, []int{0, 1, 2})
	var bufs [][]byte
	for r := 0; r < 3; r++ {
		bufs = append(bufs, writeShard(t, steps, assign[r], len(steps), false))
	}
	var out bytes.Buffer
	rep, err := MergeShards(&out, shardInputs(bufs...), nParts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Steps != 3 || rep.SalvagedShards != 0 || rep.DuplicateParts != 0 {
		t.Fatalf("report %+v, want 3 steps, 0 salvaged, 0 duplicates", *rep)
	}
	if !bytes.Equal(out.Bytes(), golden) {
		t.Fatalf("merged stream differs from single-process golden (%d vs %d bytes)", out.Len(), len(golden))
	}
}

func TestMergeShardsSalvagesTornShardAndDedupes(t *testing.T) {
	golden, steps, nParts := shardFixture(t, 3)
	// Rank 1 died after writing its share of steps 0-2 but before the
	// stream footer landed. The survivors rebalanced: rank 0 retried step 2
	// carrying rank 1's partitions too, so those frames exist twice.
	assign := AssignPartitions(nParts, []int{0, 1})
	full := writeShard(t, steps, assign[0], 2, false) // rank 0, steps 0-1 as planned
	// rank 0's stream continues with the rebalanced step 2 owning everything.
	reassigned := AssignPartitions(nParts, []int{0})
	rank0 := rewriteShardWithExtraStep(t, full, steps, reassigned[0])
	rank1 := writeShard(t, steps, assign[1], 3, true) // torn: all 3 steps, no footer
	var out bytes.Buffer
	rep, err := MergeShards(&out, shardInputs(rank0, rank1), nParts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Steps != 3 {
		t.Fatalf("merged %d steps, want 3", rep.Steps)
	}
	if rep.SalvagedShards != 1 {
		t.Fatalf("salvaged %d shards, want 1", rep.SalvagedShards)
	}
	wantDup := len(assign[1]) * len(steps[2]) // rank 1's partitions, per field, at step 2
	if rep.DuplicateParts != wantDup {
		t.Fatalf("deduplicated %d parts, want %d", rep.DuplicateParts, wantDup)
	}
	if !bytes.Equal(out.Bytes(), golden) {
		t.Fatal("merged stream with salvage+dedupe differs from golden")
	}
}

// rewriteShardWithExtraStep rebuilds rank 0's shard: the prefix already in
// buf, plus a rebalanced step 2 covering `owned`.
func rewriteShardWithExtraStep(t *testing.T, prefix []byte, steps []map[string]*CompressedField, owned []int) []byte {
	t.Helper()
	sr, _, err := RecoverStream(bytes.NewReader(prefix), int64(len(prefix)))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	sw, err := NewStreamWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < sr.Steps(); s++ {
		fields, err := sr.ReadStep(s)
		if err != nil {
			t.Fatal(err)
		}
		if err := sw.WriteStep(fields); err != nil {
			t.Fatal(err)
		}
	}
	block := make(map[string]*CompressedField)
	for field, cf := range steps[2] {
		sh := &RankShard{Owned: owned}
		for _, pi := range owned {
			sh.Frames = append(sh.Frames, cf.Parts[pi])
		}
		m, err := ShardStepFields(field, cf.Nx, cf.Ny, cf.Nz, cf.PartitionDim, sh)
		if err != nil {
			t.Fatal(err)
		}
		for k, v := range m {
			block[k] = v
		}
	}
	if err := sw.WriteStep(block); err != nil {
		t.Fatal(err)
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestMergeShardsMissingPartitionIsCorruption(t *testing.T) {
	_, steps, nParts := shardFixture(t, 1)
	assign := AssignPartitions(nParts, []int{0, 1})
	only0 := writeShard(t, steps, assign[0], 1, false)
	var out bytes.Buffer
	_, err := MergeShards(&out, shardInputs(only0), nParts)
	if !errors.Is(err, apierr.ErrCorruptArchive) {
		t.Fatalf("missing partitions: err = %v, want ErrCorruptArchive", err)
	}
}

func TestMergeShardsConflictingDuplicateIsCorruption(t *testing.T) {
	_, steps, nParts := shardFixture(t, 1)
	all := make([]int, nParts)
	for i := range all {
		all[i] = i
	}
	a := writeShard(t, steps, all, 1, false)
	// Second shard claims the same partitions but with different bytes.
	altered := []map[string]*CompressedField{{
		"rho":         mustStatic(t, shardCube(42), 0.25),
		"temperature": steps[0]["temperature"],
	}}
	b := writeShard(t, altered, all, 1, false)
	var out bytes.Buffer
	_, err := MergeShards(&out, shardInputs(a, b), nParts)
	if !errors.Is(err, apierr.ErrCorruptArchive) {
		t.Fatalf("conflicting duplicate: err = %v, want ErrCorruptArchive", err)
	}
}

func mustStatic(t *testing.T, f *grid.Field3D, eb float64) *CompressedField {
	t.Helper()
	e := engine(t, Config{PartitionDim: 8})
	cf, err := e.CompressStatic(context.Background(), f, eb)
	if err != nil {
		t.Fatal(err)
	}
	return cf
}

func TestMergeShardsRejectsPlainFieldNames(t *testing.T) {
	var buf bytes.Buffer
	sw, err := NewStreamWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := sw.WriteStep(map[string]*CompressedField{"plain": mustStatic(t, shardCube(0), 0.5)}); err != nil {
		t.Fatal(err)
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	_, err = MergeShards(&out, shardInputs(buf.Bytes()), 0)
	if !errors.Is(err, apierr.ErrCorruptArchive) {
		t.Fatalf("plain field name: err = %v, want ErrCorruptArchive", err)
	}
}

func TestShardStepFieldsRejectsBadInput(t *testing.T) {
	cf := mustStatic(t, shardCube(0), 0.5)
	if _, err := ShardStepFields("a\x1fb", 16, 16, 16, 8, &RankShard{Owned: []int{0}, Frames: cf.Parts[:1]}); !errors.Is(err, apierr.ErrBadConfig) {
		t.Errorf("separator in field name: err = %v, want ErrBadConfig", err)
	}
	if _, err := ShardStepFields("ok", 16, 16, 16, 8, &RankShard{Owned: []int{0, 1}, Frames: cf.Parts[:1]}); !errors.Is(err, apierr.ErrBadConfig) {
		t.Errorf("frame/partition mismatch: err = %v, want ErrBadConfig", err)
	}
}

func TestTruncateSteps(t *testing.T) {
	dir := t.TempDir()
	_, steps, _ := shardFixture(t, 3)

	write := func(path string, upto int, tail bool) []byte {
		t.Helper()
		fh, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		defer fh.Close()
		sw, err := NewStreamWriter(fh)
		if err != nil {
			t.Fatal(err)
		}
		for s := 0; s < upto; s++ {
			if err := sw.WriteStep(steps[s]); err != nil {
				t.Fatal(err)
			}
		}
		if tail {
			// Write a wrong step 1 and 2, roll them back, then write the
			// real ones — the file must come out as if nothing happened.
			for s := 1; s < 3; s++ {
				if err := sw.WriteStep(steps[3-1-s]); err != nil {
					t.Fatal(err)
				}
			}
			if err := sw.TruncateSteps(1); err != nil {
				t.Fatal(err)
			}
			if sw.Steps() != 1 {
				t.Fatalf("after truncate writer reports %d steps, want 1", sw.Steps())
			}
			for s := 1; s < 3; s++ {
				if err := sw.WriteStep(steps[s]); err != nil {
					t.Fatal(err)
				}
			}
		}
		if err := sw.Close(); err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}

	golden := write(filepath.Join(dir, "golden.acs"), 3, false)
	redone := write(filepath.Join(dir, "redone.acs"), 1, true)
	if !bytes.Equal(golden, redone) {
		t.Fatalf("truncate-and-rewrite stream differs from straight-through stream (%d vs %d bytes)",
			len(redone), len(golden))
	}

	// The rewritten stream must reopen clean.
	sr, err := OpenStream(bytes.NewReader(redone), int64(len(redone)))
	if err != nil {
		t.Fatal(err)
	}
	if sr.Steps() != 3 {
		t.Fatalf("reopened stream has %d steps, want 3", sr.Steps())
	}

	// Out-of-range and unsupported-writer cases.
	fh, err := os.Create(filepath.Join(dir, "range.acs"))
	if err != nil {
		t.Fatal(err)
	}
	defer fh.Close()
	sw, err := NewStreamWriter(fh)
	if err != nil {
		t.Fatal(err)
	}
	if err := sw.WriteStep(steps[0]); err != nil {
		t.Fatal(err)
	}
	if err := sw.TruncateSteps(2); err == nil {
		t.Error("truncate beyond step count accepted")
	}
	if err := sw.TruncateSteps(-1); err == nil {
		t.Error("negative truncate accepted")
	}
	if err := sw.TruncateSteps(1); err != nil {
		t.Errorf("no-op truncate: %v", err)
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	bw, err := NewStreamWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := bw.WriteStep(steps[0]); err != nil {
		t.Fatal(err)
	}
	if err := bw.TruncateSteps(0); err == nil {
		t.Error("TruncateSteps on a non-truncatable writer accepted")
	}
}
