package zfp

// The per-bit serial codec that shipped before the word-based block-parallel
// rewrite, retained verbatim as a differential reference (PR 3 precedent in
// internal/huffman): the rewrite must emit byte-identical streams — the
// archive format pins the bits and the golden fixtures in internal/core
// depend on it — and decode them identically. Both directions are kept so
// production-encoded streams are cross-checked against the reference
// decoder and vice versa.

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"testing"

	"repro/internal/grid"
	"repro/internal/huffman"
	"repro/internal/parallel"
	"repro/internal/stats"
)

// refCompress is the pre-rewrite Compress, bit for bit: one goroutine, one
// BitWriter, per-bit plane coding.
func refCompress(f *grid.Field3D, opt Options) (*Compressed, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	if f.Len() == 0 {
		return nil, errors.New("zfp: empty field")
	}
	budget := budgetOf(opt.Rate)
	w := huffman.NewBitWriter(f.Len() / 2)
	var block [blockSize]float64
	var ints [blockSize]int64
	for z0 := 0; z0 < f.Nz; z0 += blockDim {
		for y0 := 0; y0 < f.Ny; y0 += blockDim {
			for x0 := 0; x0 < f.Nx; x0 += blockDim {
				gatherBlock(f, x0, y0, z0, &block)
				refEncodeBlock(w, &block, &ints, budget)
			}
		}
	}
	return &Compressed{Nx: f.Nx, Ny: f.Ny, Nz: f.Nz, Rate: opt.Rate, payload: w.Bytes()}, nil
}

func refEncodeBlock(w *huffman.BitWriter, vals *[blockSize]float64, ints *[blockSize]int64, budget int) {
	var maxAbs float64
	for _, v := range vals {
		a := math.Abs(v)
		if a > maxAbs {
			maxAbs = a
		}
	}
	if maxAbs == 0 {
		w.WriteBit(0)
		return
	}
	w.WriteBit(1)
	emax := math.Ilogb(maxAbs)
	w.WriteBits(uint64(emax+2048), 12)

	scale := math.Ldexp(1, maxPlanes-guardBits-1-emax)
	for i, v := range vals {
		ints[i] = int64(v * scale)
	}
	transformBlock(ints)

	var coeffs [blockSize]uint64
	for rank, idx := range sequency {
		coeffs[rank] = negabinary(ints[idx])
	}
	refEncodePlanes(w, &coeffs, budget)
}

func refEncodePlanes(w *huffman.BitWriter, coeffs *[blockSize]uint64, budget int) {
	spent := 0
	emit := func(bit uint) bool {
		if spent >= budget {
			return false
		}
		w.WriteBit(bit)
		spent++
		return true
	}
	sigPrefix := 0
	for plane := maxPlanes - 1; plane >= 0 && spent < budget; plane-- {
		for i := 0; i < sigPrefix; i++ {
			if !emit(uint(coeffs[i]>>plane) & 1) {
				return
			}
		}
		i := sigPrefix
		for i < blockSize {
			any := uint(0)
			for j := i; j < blockSize; j++ {
				if (coeffs[j]>>plane)&1 == 1 {
					any = 1
					break
				}
			}
			if !emit(any) {
				return
			}
			if any == 0 {
				break
			}
			for i < blockSize {
				b := uint(coeffs[i]>>plane) & 1
				if !emit(b) {
					return
				}
				i++
				if b == 1 {
					break
				}
			}
		}
		if i > sigPrefix {
			sigPrefix = i
		}
	}
}

// refDecompress is the pre-rewrite Decompress: one goroutine, per-bit reads.
func refDecompress(c *Compressed) (*grid.Field3D, error) {
	if c.Nx <= 0 || c.Ny <= 0 || c.Nz <= 0 {
		return nil, errors.New("zfp: invalid dimensions")
	}
	if err := (Options{Rate: c.Rate}).Validate(); err != nil {
		return nil, err
	}
	budget := budgetOf(c.Rate)
	out := grid.NewField3D(c.Nx, c.Ny, c.Nz)
	r := huffman.NewBitReader(c.payload)
	var block [blockSize]float64
	for z0 := 0; z0 < c.Nz; z0 += blockDim {
		for y0 := 0; y0 < c.Ny; y0 += blockDim {
			for x0 := 0; x0 < c.Nx; x0 += blockDim {
				if err := refDecodeBlock(r, &block, budget); err != nil {
					return nil, fmt.Errorf("zfp: block (%d,%d,%d): %w", x0, y0, z0, err)
				}
				scatterBlock(out, x0, y0, z0, &block)
			}
		}
	}
	return out, nil
}

func refDecodeBlock(r *huffman.BitReader, vals *[blockSize]float64, budget int) error {
	zeroFlag, err := r.ReadBit()
	if err != nil {
		return err
	}
	if zeroFlag == 0 {
		for i := range vals {
			vals[i] = 0
		}
		return nil
	}
	e, err := r.ReadBits(12)
	if err != nil {
		return err
	}
	emax := int(e) - 2048
	var coeffs [blockSize]uint64
	if err := refDecodePlanes(r, &coeffs, budget); err != nil {
		return err
	}
	var ints [blockSize]int64
	for rank, idx := range sequency {
		ints[idx] = negabinaryInv(coeffs[rank])
	}
	inverseBlock(&ints)
	scale := math.Ldexp(1, -(maxPlanes - guardBits - 1 - emax))
	for i, v := range ints {
		vals[i] = float64(v) * scale
	}
	return nil
}

func refDecodePlanes(r *huffman.BitReader, coeffs *[blockSize]uint64, budget int) error {
	spent := 0
	read := func() (uint, bool, error) {
		if spent >= budget {
			return 0, false, nil
		}
		b, err := r.ReadBit()
		if err != nil {
			return 0, false, err
		}
		spent++
		return b, true, nil
	}
	sigPrefix := 0
	for plane := maxPlanes - 1; plane >= 0 && spent < budget; plane-- {
		for i := 0; i < sigPrefix; i++ {
			b, ok, err := read()
			if err != nil {
				return err
			}
			if !ok {
				return nil
			}
			coeffs[i] |= uint64(b) << plane
		}
		i := sigPrefix
		for i < blockSize {
			any, ok, err := read()
			if err != nil {
				return err
			}
			if !ok {
				return nil
			}
			if any == 0 {
				break
			}
			for i < blockSize {
				b, ok, err := read()
				if err != nil {
					return err
				}
				if !ok {
					return nil
				}
				coeffs[i] |= uint64(b) << plane
				i++
				if b == 1 {
					break
				}
			}
		}
		if i > sigPrefix {
			sigPrefix = i
		}
	}
	return nil
}

// diffField asserts the production encoder reproduces the reference stream
// byte for byte at every probed rate, and that all four encoder/decoder
// pairings agree exactly on the reconstruction.
func diffField(t *testing.T, name string, f *grid.Field3D, rates ...float64) {
	t.Helper()
	if len(rates) == 0 {
		rates = []float64{0.5, 1, 2.75, 8, 19, 32}
	}
	var s Scratch
	for _, rate := range rates {
		want, err := refCompress(f, Options{Rate: rate})
		if err != nil {
			t.Fatalf("%s rate %v: reference encode: %v", name, rate, err)
		}
		got, err := CompressWith(f, Options{Rate: rate}, &s)
		if err != nil {
			t.Fatalf("%s rate %v: encode: %v", name, rate, err)
		}
		if !bytes.Equal(got.payload, want.payload) {
			n := 0
			for n < len(got.payload) && n < len(want.payload) && got.payload[n] == want.payload[n] {
				n++
			}
			t.Fatalf("%s rate %v: stream diverges from reference at byte %d (%d vs %d bytes total)",
				name, rate, n, len(got.payload), len(want.payload))
		}
		refOut, err := refDecompress(want)
		if err != nil {
			t.Fatalf("%s rate %v: reference decode: %v", name, rate, err)
		}
		prodOut, err := Decompress(got)
		if err != nil {
			t.Fatalf("%s rate %v: decode: %v", name, rate, err)
		}
		// Cross-pairings: production decoder over the reference stream and
		// the reference decoder over the production stream.
		crossA, err := Decompress(want)
		if err != nil {
			t.Fatalf("%s rate %v: decode of reference stream: %v", name, rate, err)
		}
		crossB, err := refDecompress(got)
		if err != nil {
			t.Fatalf("%s rate %v: reference decode of production stream: %v", name, rate, err)
		}
		for i := range refOut.Data {
			if refOut.Data[i] != prodOut.Data[i] || refOut.Data[i] != crossA.Data[i] || refOut.Data[i] != crossB.Data[i] {
				t.Fatalf("%s rate %v: reconstruction diverges at cell %d: ref %v prod %v crossA %v crossB %v",
					name, rate, i, refOut.Data[i], prodOut.Data[i], crossA.Data[i], crossB.Data[i])
			}
		}
	}
}

func TestDifferentialSmooth(t *testing.T) {
	diffField(t, "smooth16", smoothField(16, 31))
}

func TestDifferentialNonMultipleOfFourDims(t *testing.T) {
	r := stats.NewRNG(32)
	f := grid.NewField3D(7, 5, 6)
	for i := range f.Data {
		f.Data[i] = float32(r.NormFloat64() * 10)
	}
	diffField(t, "7x5x6", f)
	g := grid.NewField3D(1, 1, 1)
	g.Data[0] = 3.25
	diffField(t, "1x1x1", g)
	h := grid.NewField3D(9, 4, 4)
	for i := range h.Data {
		h.Data[i] = float32(r.NormFloat64())
	}
	diffField(t, "9x4x4", h)
}

func TestDifferentialAllZeroBlocks(t *testing.T) {
	diffField(t, "zero", grid.NewCube(8))
	// Mixed: zero blocks interleaved with live ones.
	f := grid.NewCube(12)
	r := stats.NewRNG(33)
	for bz := 0; bz < 3; bz++ {
		for by := 0; by < 3; by++ {
			for bx := 0; bx < 3; bx++ {
				if (bx+by+bz)%2 == 0 {
					continue // leave this block all-zero
				}
				for dz := 0; dz < 4; dz++ {
					for dy := 0; dy < 4; dy++ {
						for dx := 0; dx < 4; dx++ {
							f.Set(bx*4+dx, by*4+dy, bz*4+dz, float32(r.NormFloat64()))
						}
					}
				}
			}
		}
	}
	diffField(t, "mixed-zero", f)
}

func TestDifferentialSingleBlock(t *testing.T) {
	f := grid.NewCube(4)
	r := stats.NewRNG(34)
	for i := range f.Data {
		f.Data[i] = float32(r.NormFloat64() * 100)
	}
	diffField(t, "single-block", f)
}

func TestDifferentialExtremeExponents(t *testing.T) {
	// Denormal-scale, huge-scale, and mixed-magnitude blocks: the block
	// exponent and fixed-point scaling must agree bit for bit.
	f := grid.NewCube(8)
	r := stats.NewRNG(35)
	for i := range f.Data {
		switch i % 4 {
		case 0:
			f.Data[i] = float32(r.NormFloat64() * 1e-30)
		case 1:
			f.Data[i] = float32(r.NormFloat64() * 1e30)
		case 2:
			f.Data[i] = float32(r.NormFloat64() * 1e-8)
		default:
			f.Data[i] = float32(r.NormFloat64())
		}
	}
	diffField(t, "extreme", f)
}

func TestDifferentialRandomFields(t *testing.T) {
	r := stats.NewRNG(36)
	for trial := 0; trial < 12; trial++ {
		nx := 1 + r.Intn(12)
		ny := 1 + r.Intn(12)
		nz := 1 + r.Intn(12)
		f := grid.NewField3D(nx, ny, nz)
		scale := math.Pow(10, r.Uniform(-6, 6))
		for i := range f.Data {
			f.Data[i] = float32(r.NormFloat64() * scale)
		}
		diffField(t, fmt.Sprintf("trial%d(%dx%dx%d)", trial, nx, ny, nz), f, 1+r.Uniform(0, 30))
	}
}

func TestDifferentialScratchReuse(t *testing.T) {
	// One Scratch across different shapes and rates must not leak state.
	var s Scratch
	r := stats.NewRNG(37)
	for trial := 0; trial < 10; trial++ {
		n := 4 + 4*r.Intn(4)
		f := grid.NewCube(n)
		for i := range f.Data {
			f.Data[i] = float32(r.NormFloat64() * 50)
		}
		rate := 0.5 + r.Uniform(0, 31)
		want, err := refCompress(f, Options{Rate: rate})
		if err != nil {
			t.Fatal(err)
		}
		got, err := CompressWith(f, Options{Rate: rate}, &s)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got.payload, want.payload) {
			t.Fatalf("trial %d: scratch reuse diverged from reference", trial)
		}
		ref, err := refDecompress(want)
		if err != nil {
			t.Fatal(err)
		}
		prod, err := DecompressWith(got, &s)
		if err != nil {
			t.Fatal(err)
		}
		for i := range ref.Data {
			if ref.Data[i] != prod.Data[i] {
				t.Fatalf("trial %d: reconstruction diverged at %d", trial, i)
			}
		}
	}
}

// TestDifferentialParallelThreshold forces both the chunked and the serial
// encode/decode paths over the same fields and asserts they agree with the
// reference — the splice must be invisible in the bits. The pool limit is
// raised so the chunked path actually recruits helpers even on a 1-CPU
// machine (chunk layout, and therefore the stream, is worker-independent).
func TestDifferentialParallelThreshold(t *testing.T) {
	restore := parallel.SetLimit(3)
	defer restore()
	f := smoothField(24, 38) // 216 blocks: serial below the default threshold
	diffField(t, "serial-side", f, 7)
	big := smoothField(40, 39) // 1000 blocks: chunked path
	diffField(t, "chunked-side", big, 7)
	// And with the pool forced empty, the same big field goes serial and
	// must still produce the identical stream.
	noHelpers := parallel.SetLimit(0)
	diffField(t, "chunked-field-serial-pool", big, 7)
	noHelpers()
}
