package codec

import (
	"bytes"
	"context"
	"errors"
	"testing"
)

// TestZFPHintByteIdentity pins the rate-hint contract: a hint — accurate,
// wildly wrong, or absent — may change only how many probes the bracket
// search spends, never the frame it settles on.
func TestZFPHintByteIdentity(t *testing.T) {
	data, nx, ny, nz := testBrick()
	c, err := Lookup(ZFP)
	if err != nil {
		t.Fatal(err)
	}
	for _, eb := range []float64{0.5, 0.05, 0.005} {
		var refTel Telemetry
		ref, err := c.Compress(data, nx, ny, nz, Options{ErrorBound: eb, Telemetry: &refTel}, nil)
		if err != nil {
			t.Fatal(err)
		}
		for _, hint := range []float64{0.1, 0.9, refTel.ChosenRate, 7.3, 32, 1e6} {
			var tel Telemetry
			got, err := c.Compress(data, nx, ny, nz,
				Options{ErrorBound: eb, RateHint: hint, Telemetry: &tel}, nil)
			if err != nil {
				t.Fatalf("eb %g hint %g: %v", eb, hint, err)
			}
			if !bytes.Equal(got.Bytes(), ref.Bytes()) {
				t.Errorf("eb %g: hint %g changed the frame bytes", eb, hint)
			}
			if tel.ChosenRate != refTel.ChosenRate {
				t.Errorf("eb %g hint %g: chose rate %g, unhinted chose %g",
					eb, hint, tel.ChosenRate, refTel.ChosenRate)
			}
			if tel.Probes <= 0 {
				t.Errorf("eb %g hint %g: telemetry counted no probes", eb, hint)
			}
		}
		// The point of the hint: seeding at the chosen rate brackets in at
		// most two ladder probes before the (shared) bisection refinement.
		var tel Telemetry
		if _, err := c.Compress(data, nx, ny, nz,
			Options{ErrorBound: eb, RateHint: refTel.ChosenRate, Telemetry: &tel}, nil); err != nil {
			t.Fatal(err)
		}
		if tel.Probes > refTel.Probes {
			t.Errorf("eb %g: accurate hint spent %d probes, unhinted spent %d",
				eb, tel.Probes, refTel.Probes)
		}
	}
}

// TestZFPCompressCtxCancel: cancellation reaches the rate search's
// truncated-decode probe loop, not just the partition boundaries above it.
func TestZFPCompressCtxCancel(t *testing.T) {
	data, nx, ny, nz := testBrick()
	c, err := Lookup(ZFP)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = CompressCtx(ctx, c, data, nx, ny, nz, Options{ErrorBound: 0.01}, nil)
	if !errors.Is(err, context.Canceled) {
		t.Errorf("canceled rate search returned %v, want context.Canceled", err)
	}
	// Fixed-rate compression does no probing and must ignore the context.
	if _, err := CompressCtx(ctx, c, data, nx, ny, nz, Options{Rate: 8}, nil); err != nil {
		t.Errorf("fixed-rate compression failed under canceled ctx: %v", err)
	}
	// The sz backend has no ctx-aware path: CompressCtx must fall back to
	// plain Compress and succeed.
	szc, err := Lookup(SZ)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := CompressCtx(ctx, szc, data, nx, ny, nz, Options{ErrorBound: 0.01}, nil); err != nil {
		t.Errorf("sz CompressCtx fallback failed: %v", err)
	}
}

// TestSZTelemetryQuantHist: the quantization histogram surfaced from the
// prediction pass must account for every cell and land hits in the right
// octave bins.
func TestSZTelemetryQuantHist(t *testing.T) {
	data, nx, ny, nz := testBrick()
	c, err := Lookup(SZ)
	if err != nil {
		t.Fatal(err)
	}
	for _, withScratch := range []bool{true, false} {
		var s *Scratch
		if withScratch {
			s = &Scratch{}
		}
		var tel Telemetry
		if _, err := c.Compress(data, nx, ny, nz, Options{ErrorBound: 0.01, Telemetry: &tel}, s); err != nil {
			t.Fatal(err)
		}
		if len(tel.QuantHist) != QuantHistBins {
			t.Fatalf("histogram has %d bins, want %d", len(tel.QuantHist), QuantHistBins)
		}
		var total int64
		for _, n := range tel.QuantHist {
			if n < 0 {
				t.Fatalf("negative bin count %d", n)
			}
			total += n
		}
		if want := int64(len(data)); total != want {
			t.Errorf("histogram counts %d symbols for %d cells (scratch=%v)", total, want, withScratch)
		}
		// A smooth brick at a loose bound predicts well: exact hits dominate
		// and almost nothing is an outlier.
		if tel.QuantHist[0] == 0 {
			t.Error("no exact prediction hits on a smooth brick")
		}
		if out := tel.QuantHist[QuantHistBins-1]; out > int64(len(data)/10) {
			t.Errorf("%d outliers on a smooth brick", out)
		}
	}
}
