// Package stats provides the numerical building blocks shared by the
// reproduction: deterministic pseudo-random number generation, histograms,
// running moments, least-squares fitting, entropy estimation, and
// distribution helpers used by the rate-quality models.
//
// Everything in this package is allocation-conscious and safe for use from
// multiple goroutines as long as each goroutine owns its own RNG and
// accumulators; the types themselves are not internally synchronized.
package stats

import "math"

// RNG is a deterministic xoshiro256** pseudo-random number generator.
//
// The reproduction must generate identical synthetic cosmology fields for a
// given seed on every platform, so we cannot rely on math/rand's unspecified
// global state or on its version-dependent algorithms. xoshiro256** is
// small, fast, and has a 256-bit state with good statistical properties for
// simulation workloads (it is not cryptographically secure, which is fine
// here).
type RNG struct {
	s [4]uint64
	// cached second normal deviate for NormFloat64 (polar method)
	hasSpare bool
	spare    float64
}

// NewRNG returns an RNG seeded from a single 64-bit seed using SplitMix64
// to fill the state, as recommended by the xoshiro authors. Any seed,
// including zero, yields a valid generator.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	for i := range r.s {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	return r
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform value in [0, 1) with 53 bits of precision.
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Uniform returns a uniform value in [lo, hi).
func (r *RNG) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn called with non-positive n")
	}
	// Lemire's nearly-divisionless bounded generation is overkill here;
	// modulo bias is negligible for the n used in this repo (n << 2^64),
	// but we still reject the biased tail to keep sequences exact.
	bound := uint64(n)
	threshold := -bound % bound
	for {
		v := r.Uint64()
		if v >= threshold {
			return int(v % bound)
		}
	}
}

// NormFloat64 returns a standard normal deviate using the Marsaglia polar
// method. Two deviates are produced per round trip; the second is cached.
func (r *RNG) NormFloat64() float64 {
	if r.hasSpare {
		r.hasSpare = false
		return r.spare
	}
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		f := math.Sqrt(-2 * math.Log(s) / s)
		r.spare = v * f
		r.hasSpare = true
		return u * f
	}
}

// Perm returns a random permutation of [0, n) (Fisher–Yates).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Split returns a new RNG deterministically derived from this one.
// It is used to hand independent streams to worker goroutines without
// sharing state.
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64() ^ 0xa0761d6478bd642f)
}
