package sz

import (
	"fmt"

	"repro/internal/stats"
)

// ScanResiduals runs one open-loop pass of the predictor over a brick,
// folding every value into out.Values and every prediction residual into
// out.Errs. "Open loop" means predictions read the original values rather
// than quantized reconstructions; the difference is bounded by the
// accumulated quantization error, which the ratio-quality literature (and
// Sec. 3.2 of the paper) shows leaves the residual distribution essentially
// unchanged for any bound the configurator would actually plan. One scan
// therefore characterizes the partition for *all* candidate error bounds —
// this is the single feature scan that replaces the calibration probe
// ladder.
//
// The caller owns out and resets it between partitions; the scan itself
// allocates only out.Errs' bin storage on first use.
func ScanResiduals(data []float32, nx, ny, nz int, p Predictor, out *stats.PredScan) error {
	if len(data) != nx*ny*nz || len(data) == 0 {
		return fmt.Errorf("sz: data length %d != %d×%d×%d", len(data), nx, ny, nz)
	}
	cell := func(x, y, z, idx int) {
		pred := predict(data, nx, ny, x, y, z, idx, p)
		v := float64(data[idx])
		out.Values.Add(v)
		out.Errs.Add(v - pred)
	}

	if p != Lorenzo3D {
		idx := 0
		for z := 0; z < nz; z++ {
			for y := 0; y < ny; y++ {
				for x := 0; x < nx; x++ {
					cell(x, y, z, idx)
					idx++
				}
			}
		}
		return nil
	}

	// Boundary planes through the generic predictor, branch-free interior
	// over row views — the same walk as predictThenQuantize, minus the
	// quantize/verify/entropy stages.
	nxny := nx * ny
	idx := 0
	for y := 0; y < ny; y++ { // z == 0 plane
		for x := 0; x < nx; x++ {
			cell(x, y, 0, idx)
			idx++
		}
	}
	for z := 1; z < nz; z++ {
		for x := 0; x < nx; x++ { // y == 0 row
			cell(x, 0, z, idx)
			idx++
		}
		for y := 1; y < ny; y++ {
			cell(0, y, z, idx) // x == 0 cell
			rowStart := idx
			idx += nx
			cur := data[rowStart : rowStart+nx]
			py := data[rowStart-nx : rowStart-nx+nx]
			pz := data[rowStart-nxny : rowStart-nxny+nx]
			pyz := data[rowStart-nx-nxny : rowStart-nx-nxny+nx]
			prev := float64(cur[0])
			for x := 1; x < nx; x++ {
				pred := prev + float64(py[x]) + float64(pz[x]) -
					float64(py[x-1]) - float64(pz[x-1]) - float64(pyz[x]) + float64(pyz[x-1])
				v := float64(cur[x])
				out.Values.Add(v)
				out.Errs.Add(v - pred)
				prev = v
			}
		}
	}
	return nil
}

// Symbols exposes the quantization-symbol buffer of the most recent
// compression through this scratch, truncated to that compression's cell
// count n (the buffer keeps high-water capacity across calls). Codec
// adapters use it to surface the quantization histogram the prediction
// pass already computed, so a model refresh is free wherever compression
// already ran.
func (s *Scratch) Symbols(n int) []int {
	if n > len(s.symbols) {
		n = len(s.symbols)
	}
	return s.symbols[:n]
}
