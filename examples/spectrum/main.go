// Power-spectrum example: show how compression error propagates into the
// matter power spectrum, compare the measurement against the paper's FFT
// error model, and demonstrate that the model-derived budget keeps
// P'(k)/P(k) inside the ±1 % acceptance band (paper Figs. 4, 5 and 13).
//
// Run with: go run ./examples/spectrum
package main

import (
	"fmt"
	"log"
	"math"
	"strings"

	"repro/adaptive"
	"repro/adaptive/codecs"
)

func main() {
	log.SetFlags(0)

	const n = 64
	snap, err := adaptive.GenerateSnapshot(adaptive.SynthParams{N: n, Seed: 9, Redshift: 42})
	if err != nil {
		log.Fatal(err)
	}
	density, err := snap.Field(adaptive.FieldBaryonDensity)
	if err != nil {
		log.Fatal(err)
	}
	// The compressor comes out of the codec registry — swap codecs.SZ for
	// codecs.ZFP (or any registered backend) to rerun the study cross-codec.
	comp, err := codecs.Lookup(codecs.SZ)
	if err != nil {
		log.Fatal(err)
	}
	orig, err := adaptive.ComputeSpectrum(density, adaptive.SpectrumOptions{})
	if err != nil {
		log.Fatal(err)
	}

	// The model: FFT bin error is Gaussian with σ = sqrt(N³/6)·eb (Eq. 9).
	fmt.Println("FFT error model (Eq. 9): sigma = sqrt(N³/6)·eb")
	for _, eb := range []float64{0.01, 0.1, 1.0} {
		fmt.Printf("  eb %-6g → sigma %.4g\n", eb, adaptive.SigmaFFT3D(n, eb))
	}

	// Derive the budget that keeps the band, compress, measure.
	avgEB, err := adaptive.SpectrumBudget(density, adaptive.BudgetOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbudget for ±1%% band below k=10 at 2σ: avg eb = %.4g\n\n", avgEB)

	for _, scale := range []float64{1, 8, 64} {
		eb := avgEB * scale
		c, err := comp.Compress(density.Data, density.Nx, density.Ny, density.Nz,
			codecs.Options{ErrorBound: eb}, nil)
		if err != nil {
			log.Fatal(err)
		}
		values, err := c.Decompress()
		if err != nil {
			log.Fatal(err)
		}
		recon := &adaptive.Field{Nx: density.Nx, Ny: density.Ny, Nz: density.Nz, Data: values}
		rec, err := adaptive.ComputeSpectrum(recon, adaptive.SpectrumOptions{})
		if err != nil {
			log.Fatal(err)
		}
		dev, err := adaptive.SpectrumMaxDeviation(orig, rec, 10)
		if err != nil {
			log.Fatal(err)
		}
		status := "within ±1% band"
		if dev > 0.01 {
			status = "OUTSIDE band"
		}
		fmt.Printf("eb = %8.4g (budget×%-3g): ratio %6.2f, max|P'/P−1| = %.5f  %s\n",
			eb, scale, c.Ratio(), dev, status)
	}

	// Show the per-shell ratios at the budget bound.
	c, err := comp.Compress(density.Data, density.Nx, density.Ny, density.Nz,
		codecs.Options{ErrorBound: avgEB}, nil)
	if err != nil {
		log.Fatal(err)
	}
	values, err := c.Decompress()
	if err != nil {
		log.Fatal(err)
	}
	recon := &adaptive.Field{Nx: density.Nx, Ny: density.Ny, Nz: density.Nz, Data: values}
	rec, err := adaptive.ComputeSpectrum(recon, adaptive.SpectrumOptions{})
	if err != nil {
		log.Fatal(err)
	}
	ratios, err := adaptive.SpectrumRatios(orig, rec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nP'(k)/P(k) at the budget bound:")
	for k := 1; k < len(ratios) && orig.K[k] < 10; k++ {
		if orig.Counts[k] == 0 || math.IsNaN(ratios[k]) {
			continue
		}
		bar := int(math.Min(40, math.Abs(ratios[k]-1)*4000))
		fmt.Printf("  k=%5.2f  %.5f  %s\n", orig.K[k], ratios[k], strings.Repeat("#", bar))
	}
}
