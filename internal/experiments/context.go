// Package experiments regenerates every table and figure of the paper's
// evaluation (Sec. 4) on the synthetic substrate. Each experiment is a
// function from a shared Context to a Result (a text table plus notes);
// cmd/experiments prints them and bench_test.go wraps each in a benchmark.
//
// The default workload is a 128³ snapshot cut into 512 partitions of 16³ —
// the same partition count and per-axis layout (8×8×8) as the paper's
// 512³ / 64³ headline configuration, scaled to commodity hardware. Every
// dimension is a parameter, so the experiments also run at other scales
// (Fig. 18/19 sweep them explicitly).
package experiments

import (
	"context"
	"fmt"
	"strings"
	"sync"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/halo"
	"repro/internal/nyx"
)

// Config parameterizes the experiment workload.
type Config struct {
	// N is the grid dimension (default 128).
	N int
	// PartitionDim is the brick edge (default 16 → 512 partitions at 128).
	PartitionDim int
	// Seed fixes the synthetic universe (default 7).
	Seed uint64
	// Redshift is the default snapshot epoch (default 42, the paper's
	// latest).
	Redshift float64
	// Workers bounds parallelism (0 = GOMAXPROCS).
	Workers int
	// Codec selects the compression backend for every engine the context
	// builds (default codec.SZ), so any rate-quality experiment can run
	// cross-codec by flipping one knob.
	Codec codec.ID
}

func (c Config) withDefaults() Config {
	if c.N == 0 {
		c.N = 128
	}
	if c.PartitionDim == 0 {
		c.PartitionDim = 16
	}
	if c.Seed == 0 {
		c.Seed = 7
	}
	if c.Redshift == 0 {
		c.Redshift = 42
	}
	return c
}

// Context carries the engine and caches snapshots/calibrations across
// experiments so a full run does not regenerate the universe per figure.
type Context struct {
	Cfg    Config
	Engine *core.Engine

	mu     sync.Mutex
	snaps  map[float64]*nyx.Snapshot
	cals   map[string]*core.Calibration
	engDim map[int]*core.Engine
}

// NewContext builds a context; the engine uses the config's partition dim.
func NewContext(cfg Config) (*Context, error) {
	cfg = cfg.withDefaults()
	eng, err := core.NewEngine(core.Config{
		PartitionDim: cfg.PartitionDim,
		Workers:      cfg.Workers,
		Codec:        cfg.Codec,
	})
	if err != nil {
		return nil, err
	}
	return &Context{
		Cfg:    cfg,
		Engine: eng,
		snaps:  make(map[float64]*nyx.Snapshot),
		cals:   make(map[string]*core.Calibration),
		engDim: map[int]*core.Engine{cfg.PartitionDim: eng},
	}, nil
}

// Snapshot returns the (cached) snapshot at redshift z.
func (ctx *Context) Snapshot(z float64) (*nyx.Snapshot, error) {
	ctx.mu.Lock()
	defer ctx.mu.Unlock()
	if s, ok := ctx.snaps[z]; ok {
		return s, nil
	}
	s, err := nyx.Generate(nyx.Params{
		N: ctx.Cfg.N, Seed: ctx.Cfg.Seed, Redshift: z, Workers: ctx.Cfg.Workers,
	})
	if err != nil {
		return nil, err
	}
	ctx.snaps[z] = s
	return s, nil
}

// Field returns a named field of the default-redshift snapshot.
func (ctx *Context) Field(name string) (*grid.Field3D, error) {
	s, err := ctx.Snapshot(ctx.Cfg.Redshift)
	if err != nil {
		return nil, err
	}
	return s.Field(name)
}

// Calibration returns the (cached) rate-model calibration for a field.
func (ctx *Context) Calibration(name string) (*core.Calibration, error) {
	ctx.mu.Lock()
	if cal, ok := ctx.cals[name]; ok {
		ctx.mu.Unlock()
		return cal, nil
	}
	ctx.mu.Unlock()
	f, err := ctx.Field(name)
	if err != nil {
		return nil, err
	}
	cal, err := ctx.Engine.Calibrate(context.Background(), f)
	if err != nil {
		return nil, fmt.Errorf("experiments: calibrating %s: %w", name, err)
	}
	ctx.mu.Lock()
	ctx.cals[name] = cal
	ctx.mu.Unlock()
	return cal, nil
}

// EngineFor returns a (cached) engine with a different partition dim.
func (ctx *Context) EngineFor(partitionDim int) (*core.Engine, error) {
	ctx.mu.Lock()
	defer ctx.mu.Unlock()
	if e, ok := ctx.engDim[partitionDim]; ok {
		return e, nil
	}
	e, err := core.NewEngine(core.Config{
		PartitionDim: partitionDim, Workers: ctx.Cfg.Workers, Codec: ctx.Cfg.Codec,
	})
	if err != nil {
		return nil, err
	}
	ctx.engDim[partitionDim] = e
	return e, nil
}

// Partitioner returns the default layout for the default grid.
func (ctx *Context) Partitioner() (*grid.Partitioner, error) {
	return grid.PartitionerForBrickDim(ctx.Cfg.N, ctx.Cfg.PartitionDim)
}

// HaloConfig returns the halo-finder thresholds used throughout.
func (ctx *Context) HaloConfig() halo.Config {
	bt, pt := nyx.DefaultHaloConfig()
	return halo.Config{BoundaryThreshold: bt, HaloThreshold: pt, Periodic: true}
}

// Result is one regenerated table/figure: a text table with notes.
type Result struct {
	ID    string // e.g. "fig13"
	Title string
	Notes []string
	Cols  []string
	Rows  [][]string
}

// AddRow appends a formatted row.
func (r *Result) AddRow(cells ...string) { r.Rows = append(r.Rows, cells) }

// Notef appends a formatted note.
func (r *Result) Notef(format string, args ...interface{}) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// String renders the result as an aligned text table.
func (r *Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	widths := make([]int, len(r.Cols))
	for i, c := range r.Cols {
		widths[i] = len(c)
	}
	for _, row := range r.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(r.Cols)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range r.Rows {
		writeRow(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// fnum formats a float compactly for table cells.
func fnum(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v >= 1e5 || v < 1e-3 && v > -1e-3 || v <= -1e5:
		return fmt.Sprintf("%.3e", v)
	default:
		return fmt.Sprintf("%.4g", v)
	}
}
