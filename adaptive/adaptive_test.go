package adaptive_test

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"io"
	"math"
	"testing"

	"repro/adaptive"
	"repro/adaptive/codecs"
)

// testField builds a deterministic non-constant positive field that
// calibrates cleanly.
func testField(n int) *adaptive.Field {
	f := adaptive.NewField(n, n, n)
	for i := range f.Data {
		x := float64(i)
		f.Data[i] = float32(2 + math.Sin(x*0.37)*math.Cos(x*0.011) + 0.5*math.Sin(x*0.0031))
	}
	return f
}

func newSystem(t *testing.T, opts ...adaptive.Option) *adaptive.System {
	t.Helper()
	sys, err := adaptive.New(opts...)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// TestFacadeRoundTrip exercises the whole public path: calibrate, plan,
// compress, archive round-trip, decompress, error-bound check.
func TestFacadeRoundTrip(t *testing.T) {
	ctx := context.Background()
	sys := newSystem(t, adaptive.WithPartitionDim(8), adaptive.WithCodec("sz"))
	f := testField(32)

	cal, err := sys.Calibrate(ctx, f)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := sys.Plan(ctx, f, cal, adaptive.PlanOptions{AvgEB: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	cf, err := sys.CompressAdaptive(ctx, f, plan)
	if err != nil {
		t.Fatal(err)
	}

	parsed, err := adaptive.ParseArchive(cf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	recon, err := parsed.Decompress(ctx)
	if err != nil {
		t.Fatal(err)
	}
	maxErr, err := adaptive.MaxAbsError(f.Data, recon.Data)
	if err != nil {
		t.Fatal(err)
	}
	var worst float64
	for _, eb := range plan.EBs {
		if eb > worst {
			worst = eb
		}
	}
	if maxErr > worst*(1+1e-12) {
		t.Fatalf("max error %g exceeds largest planned bound %g", maxErr, worst)
	}
}

// validArchive builds a well-formed single-field archive for corruption.
func validArchive(t *testing.T) []byte {
	t.Helper()
	ctx := context.Background()
	sys := newSystem(t, adaptive.WithPartitionDim(8))
	f := testField(16)
	cf, err := sys.CompressStatic(ctx, f, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	return cf.Bytes()
}

// validStream builds a well-formed two-step v3 stream.
func validStream(t *testing.T) []byte {
	t.Helper()
	ctx := context.Background()
	var buf bytes.Buffer
	sw, err := adaptive.NewStreamWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	sys := newSystem(t, adaptive.WithPartitionDim(8), adaptive.WithStreamWriter(sw))
	f := testField(16)
	for i := 0; i < 2; i++ {
		if _, err := sys.Step(ctx, map[string]*adaptive.Field{"rho": f}); err != nil {
			t.Fatal(err)
		}
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestErrorTaxonomy drives every sentinel from facade-level calls,
// table-driven, asserting errors.Is through all the wrapping layers.
func TestErrorTaxonomy(t *testing.T) {
	ctx := context.Background()
	f := testField(32)

	cases := []struct {
		name    string
		err     func(t *testing.T) error
		want    []error
		notWant []error
	}{
		{
			name: "option rejects bad partition dim",
			err: func(t *testing.T) error {
				_, err := adaptive.New(adaptive.WithPartitionDim(-4))
				return err
			},
			want:    []error{adaptive.ErrBadConfig},
			notWant: []error{adaptive.ErrCorruptArchive, adaptive.ErrCodecUnknown},
		},
		{
			name: "option rejects bad clamp factor",
			err: func(t *testing.T) error {
				_, err := adaptive.New(adaptive.WithClampFactor(0.5))
				return err
			},
			want: []error{adaptive.ErrBadConfig},
		},
		{
			name: "option rejects bad field budget",
			err: func(t *testing.T) error {
				_, err := adaptive.New(adaptive.WithFieldBudget("rho", -1))
				return err
			},
			want: []error{adaptive.ErrBadConfig},
		},
		{
			name: "option rejects ambiguous zero guard band",
			err: func(t *testing.T) error {
				_, err := adaptive.New(adaptive.WithModelGuardBand(0))
				return err
			},
			want: []error{adaptive.ErrBadConfig},
		},
		{
			name: "unknown backend name",
			err: func(t *testing.T) error {
				_, err := adaptive.New(adaptive.WithCodec("lz77"))
				return err
			},
			want:    []error{adaptive.ErrCodecUnknown},
			notWant: []error{adaptive.ErrBadConfig},
		},
		{
			name: "codecs lookup of unknown id",
			err: func(t *testing.T) error {
				_, err := codecs.Lookup("nope")
				return err
			},
			want: []error{adaptive.ErrCodecUnknown},
		},
		{
			name: "non-positive static bound",
			err: func(t *testing.T) error {
				_, err := newSystem(t, adaptive.WithPartitionDim(8)).CompressStatic(ctx, f, -1)
				return err
			},
			want: []error{adaptive.ErrBadConfig},
		},
		{
			name: "non-positive plan budget",
			err: func(t *testing.T) error {
				sys := newSystem(t, adaptive.WithPartitionDim(8))
				cal, err := sys.Calibrate(ctx, f)
				if err != nil {
					t.Fatal(err)
				}
				_, err = sys.Plan(ctx, f, cal, adaptive.PlanOptions{AvgEB: 0})
				return err
			},
			want: []error{adaptive.ErrBadConfig},
		},
		{
			name: "field not divisible by partition dim",
			err: func(t *testing.T) error {
				_, err := newSystem(t, adaptive.WithPartitionDim(24)).CompressStatic(ctx, f, 0.1)
				return err
			},
			want: []error{adaptive.ErrBadConfig},
		},
		{
			name: "streaming step on empty snapshot",
			err: func(t *testing.T) error {
				_, err := newSystem(t).Step(ctx, nil)
				return err
			},
			want: []error{adaptive.ErrBadConfig},
		},
		{
			name: "archive with bad magic",
			err: func(t *testing.T) error {
				blob := validArchive(t)
				copy(blob[0:4], "EVIL")
				_, err := adaptive.ParseArchive(blob)
				return err
			},
			want:    []error{adaptive.ErrCorruptArchive},
			notWant: []error{adaptive.ErrBadConfig},
		},
		{
			name: "archive with hostile partition count",
			err: func(t *testing.T) error {
				blob := validArchive(t)
				binary.LittleEndian.PutUint32(blob[24:28], 0x7fffffff)
				_, err := adaptive.ParseArchive(blob)
				return err
			},
			want: []error{adaptive.ErrCorruptArchive},
		},
		{
			name: "archive with hostile dimensions",
			err: func(t *testing.T) error {
				blob := validArchive(t)
				binary.LittleEndian.PutUint32(blob[8:12], 0xffffffff)
				_, err := adaptive.ParseArchive(blob)
				return err
			},
			want: []error{adaptive.ErrCorruptArchive},
		},
		{
			name: "truncated archive",
			err: func(t *testing.T) error {
				blob := validArchive(t)
				_, err := adaptive.ParseArchive(blob[:len(blob)-7])
				return err
			},
			want: []error{adaptive.ErrCorruptArchive},
		},
		{
			name: "archive frame naming a foreign codec",
			err: func(t *testing.T) error {
				blob := validArchive(t)
				// First frame envelope: archive header (28) + length
				// prefix (4) + frame magic/version (5) + ID length byte,
				// then the ID bytes — overwrite "sz" with an unregistered
				// name of equal length.
				copy(blob[28+4+6:], "xx")
				_, err := adaptive.ParseArchive(blob)
				return err
			},
			want: []error{adaptive.ErrCorruptArchive, adaptive.ErrCodecUnknown},
		},
		{
			name: "stream with bad trailer magic",
			err: func(t *testing.T) error {
				blob := validStream(t)
				copy(blob[len(blob)-4:], "EVIL")
				_, err := adaptive.OpenStream(bytes.NewReader(blob), int64(len(blob)))
				return err
			},
			want: []error{adaptive.ErrCorruptArchive},
		},
		{
			name: "stream with inconsistent index",
			err: func(t *testing.T) error {
				blob := validStream(t)
				binary.LittleEndian.PutUint64(blob[len(blob)-12:], uint64(len(blob))) // index offset past EOF
				_, err := adaptive.OpenStream(bytes.NewReader(blob), int64(len(blob)))
				return err
			},
			want: []error{adaptive.ErrCorruptArchive},
		},
		{
			name: "truncated stream body",
			err: func(t *testing.T) error {
				blob := validStream(t)
				_, err := adaptive.OpenStream(bytes.NewReader(blob[:len(blob)/2]), int64(len(blob)/2))
				return err
			},
			want: []error{adaptive.ErrCorruptArchive},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.err(t)
			if err == nil {
				t.Fatal("call unexpectedly succeeded")
			}
			for _, want := range tc.want {
				if !errors.Is(err, want) {
					t.Errorf("errors.Is(%v, %v) is false", err, want)
				}
			}
			for _, not := range tc.notWant {
				if errors.Is(err, not) {
					t.Errorf("errors.Is(%v, %v) is true, want false", err, not)
				}
			}
		})
	}
}

// TestDriftRecalibrationError forces a mid-run re-fit to fail (the
// drifted step is a constant field, which cannot be calibrated) and
// asserts both errors.Is on the sentinel and errors.As on the typed form.
func TestDriftRecalibrationError(t *testing.T) {
	ctx := context.Background()
	sys := newSystem(t,
		adaptive.WithPartitionDim(8),
		adaptive.WithPolicy(adaptive.DriftTriggered),
		adaptive.WithDriftThreshold(0.1),
	)
	good := testField(16)
	flat := adaptive.NewField(16, 16, 16)
	for i := range flat.Data {
		flat.Data[i] = 42 // constant: drift is huge and the re-fit must fail
	}

	if _, err := sys.Step(ctx, map[string]*adaptive.Field{"rho": good}); err != nil {
		t.Fatal(err)
	}
	_, err := sys.Step(ctx, map[string]*adaptive.Field{"rho": flat})
	if err == nil {
		t.Fatal("step on uncalibratable drifted field succeeded")
	}
	if !errors.Is(err, adaptive.ErrDriftRecalibration) {
		t.Fatalf("errors.Is(err, ErrDriftRecalibration) is false: %v", err)
	}
	if !errors.Is(err, adaptive.ErrBadConfig) {
		t.Fatalf("underlying calibration failure lost from the chain: %v", err)
	}
	var dre *adaptive.DriftRecalibrationError
	if !errors.As(err, &dre) {
		t.Fatalf("errors.As(err, *DriftRecalibrationError) is false: %v", err)
	}
	if dre.Field != "rho" || dre.Drift <= 0.1 {
		t.Fatalf("typed error carries field %q drift %g", dre.Field, dre.Drift)
	}

	// The field's first calibration failing is NOT a drift refit.
	fresh := newSystem(t, adaptive.WithPartitionDim(8))
	_, err = fresh.Step(ctx, map[string]*adaptive.Field{"rho": flat})
	if err == nil || errors.Is(err, adaptive.ErrDriftRecalibration) {
		t.Fatalf("initial calibration failure misclassified as drift refit: %v", err)
	}
}

// TestFacadeCancellation cancels a facade-level Run mid-stream and checks
// the canonical recovery story: context.Canceled surfaces, and the
// archive writer closes into a stream OpenStream accepts.
func TestFacadeCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	var buf bytes.Buffer
	sw, err := adaptive.NewStreamWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	sys := newSystem(t,
		adaptive.WithPartitionDim(8),
		adaptive.WithStreamWriter(sw),
		adaptive.WithOnStep(func(st *adaptive.StepStats) {
			if st.Step == 1 {
				cancel()
			}
		}),
	)
	f := testField(16)
	steps := make([]map[string]*adaptive.Field, 5)
	for i := range steps {
		steps[i] = map[string]*adaptive.Field{"rho": f}
	}
	run, err := sys.Run(ctx, adaptive.FromSnapshots(steps))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("errors.Is(err, context.Canceled) is false: %v", err)
	}
	if len(run.Steps) != 2 {
		t.Fatalf("kept %d steps, want 2", len(run.Steps))
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	sr, err := adaptive.OpenStream(bytes.NewReader(buf.Bytes()), int64(buf.Len()))
	if err != nil {
		t.Fatalf("truncated stream did not open: %v", err)
	}
	if sr.Steps() != 2 {
		t.Fatalf("stream has %d steps, want 2", sr.Steps())
	}

	// Pre-canceled engine-level calls refuse promptly too.
	pre, cancelNow := context.WithCancel(context.Background())
	cancelNow()
	if _, err := sys.CompressStatic(pre, f, 0.1); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-canceled CompressStatic: %v", err)
	}
	cf, err := sys.CompressStatic(context.Background(), f, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cf.Decompress(pre); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-canceled Decompress: %v", err)
	}
}

// TestSourceAdapters exercises the facade's source constructors.
func TestSourceAdapters(t *testing.T) {
	f := testField(16)
	ch := make(chan map[string]*adaptive.Field, 2)
	ch <- map[string]*adaptive.Field{"a": f}
	ch <- map[string]*adaptive.Field{"a": f}
	close(ch)
	src := adaptive.FromChannel(ch)
	n := 0
	for {
		_, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		n++
	}
	if n != 2 {
		t.Fatalf("channel source yielded %d steps", n)
	}
}

// TestExperimentContextFromOptions pins the option → experiment-config
// mapping (the third config struct the facade unified).
func TestExperimentContextFromOptions(t *testing.T) {
	ctx, err := adaptive.NewExperimentContext(
		adaptive.WithGridN(32),
		adaptive.WithPartitionDim(8),
		adaptive.WithSeed(11),
		adaptive.WithCodec("zfp"),
	)
	if err != nil {
		t.Fatal(err)
	}
	if ctx.Cfg.N != 32 || ctx.Cfg.PartitionDim != 8 || ctx.Cfg.Seed != 11 || string(ctx.Cfg.Codec) != "zfp" {
		t.Fatalf("experiment config %+v does not reflect options", ctx.Cfg)
	}
	if _, err := adaptive.ExperimentByID("fig13"); err != nil {
		t.Fatal(err)
	}
	if len(adaptive.Experiments()) == 0 {
		t.Fatal("no experiments listed")
	}
}
