package experiments

import (
	"fmt"
	"math"

	"repro/internal/grid"
	"repro/internal/nyx"
	"repro/internal/stats"
	"repro/internal/sz"
	"repro/internal/zfp"
)

// AblationCompressor substantiates the paper's Sec. 2.2 compressor choice:
// SZ (prediction-based, error-bounded) versus ZFP (transform-based,
// fixed-rate). For a set of ZFP rates, each codec compresses the
// temperature field; SZ's error bound is bisected until its bit rate
// matches ZFP's, and the PSNRs are compared at that matched rate. The
// paper states SZ "provides a higher compression ratio than ZFP and offers
// the absolute error-bound mode that ZFP does not support".
func AblationCompressor(ctx *Context) (*Result, error) {
	f, err := ctx.Field(nyx.FieldTemperature)
	if err != nil {
		return nil, err
	}
	res := &Result{
		ID:    "ablation-compressor",
		Title: "Ablation: SZ vs ZFP at matched bit rate (temperature)",
		Cols: []string{"bits/value", "zfp_psnr", "sz_psnr", "sz_eb",
			"sz_max_err", "zfp_max_err"},
	}
	szWins := 0
	for _, rate := range []float64{1, 2, 4, 8} {
		zc, err := zfp.Compress(f, zfp.Options{Rate: rate})
		if err != nil {
			return nil, err
		}
		zr, err := zfp.Decompress(zc)
		if err != nil {
			return nil, err
		}
		zPSNR, _ := stats.PSNR(f.Data, zr.Data)
		zMax, _ := stats.MaxAbsError(f.Data, zr.Data)

		// Bisect SZ's error bound to hit the same achieved bit rate.
		eb, sc, err := szAtBitRate(f, zc.BitRate())
		if err != nil {
			return nil, err
		}
		sr, err := sz.Decompress(sc)
		if err != nil {
			return nil, err
		}
		sPSNR, _ := stats.PSNR(f.Data, sr.Data)
		sMax, _ := stats.MaxAbsError(f.Data, sr.Data)
		if sPSNR >= zPSNR {
			szWins++
		}
		res.AddRow(fnum(zc.BitRate()), fnum(zPSNR), fnum(sPSNR), fnum(eb),
			fnum(sMax), fnum(zMax))
	}
	res.Notef("SZ wins PSNR at %d of 4 matched rates; only SZ guarantees a pointwise bound (sz_max_err == eb by construction, zfp_max_err is uncontrolled) — the paper's two reasons for choosing SZ", szWins)
	return res, nil
}

// szAtBitRate bisects the ABS error bound until SZ's achieved bit rate is
// within 3 % of the target (bit rate is monotone decreasing in eb). The
// geometric bisection spans the whole plausible eb range, anchored on the
// field's magnitude.
func szAtBitRate(f *grid.Field3D, target float64) (float64, *sz.Compressed, error) {
	absMax := f.AbsMax()
	if absMax <= 0 {
		return 0, nil, fmt.Errorf("experiments: constant field")
	}
	lo, hi := absMax*1e-12, absMax*10
	var best *sz.Compressed
	var bestEB float64
	for i := 0; i < 40; i++ {
		mid := math.Sqrt(lo * hi)
		c, err := sz.Compress(f, sz.Options{Mode: sz.ABS, ErrorBound: mid})
		if err != nil {
			return 0, nil, err
		}
		best, bestEB = c, mid
		br := c.BitRate()
		if math.Abs(br-target) <= 0.03*target {
			break
		}
		if br > target {
			lo = mid // need a larger bound for a lower rate
		} else {
			hi = mid
		}
	}
	return bestEB, best, nil
}
