package archiveserve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/apierr"
	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/server"
	"repro/internal/sz"
	"repro/internal/zfp"
)

// testField builds a smooth 16³ field with a per-step phase shift so each
// step archives to distinct bytes.
func testField(n, step int) *grid.Field3D {
	f := grid.NewField3D(n, n, n)
	for z := 0; z < n; z++ {
		for y := 0; y < n; y++ {
			for x := 0; x < n; x++ {
				f.Data[(z*n+y)*n+x] = float32(math.Sin(float64(x+step)*0.31)*
					math.Cos(float64(y)*0.17) + 0.05*float64(z))
			}
		}
	}
	return f
}

// writeTestStream archives steps of a zfp field "rho" and an sz field
// "temp" into dir/name.acs (+ sidecar) and returns the stream path.
func writeTestStream(t *testing.T, dir, name string, steps int, rate float64) string {
	t.Helper()
	path := filepath.Join(dir, name+StreamSuffix)
	w, err := NewWriter(path, WriterOptions{Rate: rate, PartitionDim: 2})
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < steps; s++ {
		err := w.WriteStep(map[string]FieldSpec{
			"rho":  {Field: testField(16, s)},
			"temp": {Field: testField(16, s+100), Codec: codec.SZ, ErrorBound: 1e-3},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if w.Steps() != steps {
		t.Fatalf("writer Steps() = %d, want %d", w.Steps(), steps)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func newTestServer(t *testing.T, dir string) (*Server, *httptest.Server) {
	t.Helper()
	srv, err := New(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); srv.Close() })
	return srv, ts
}

func get(t *testing.T, url string, hdr map[string]string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

// localSplice reproduces the serving path with library calls only: parse
// the stored step, truncate every partition, reserialize. The acceptance
// gate is that served bytes equal this exactly.
func localSplice(t *testing.T, streamPath string, step int, field string, rate float64) []byte {
	t.Helper()
	f, err := os.Open(streamPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	fi, _ := f.Stat()
	sr, err := core.OpenStream(f, fi.Size())
	if err != nil {
		t.Fatal(err)
	}
	fields, err := sr.ReadStep(step)
	if err != nil {
		t.Fatal(err)
	}
	cf := fields[field]
	if cf == nil {
		t.Fatalf("field %q missing from step %d", field, step)
	}
	out := &core.CompressedField{
		Nx: cf.Nx, Ny: cf.Ny, Nz: cf.Nz,
		PartitionDim: cf.PartitionDim,
		Codec:        codec.ZFP,
	}
	var s zfp.Scratch
	for _, part := range cf.Parts {
		c, err := zfp.Parse(part.Bytes())
		if err != nil {
			t.Fatal(err)
		}
		ix, err := zfp.Reindex(c)
		if err != nil {
			t.Fatal(err)
		}
		tc, err := ix.TruncateToRate(rate, &s)
		if err != nil {
			t.Fatal(err)
		}
		out.Parts = append(out.Parts, codec.WrapZFP(tc))
	}
	return out.Bytes()
}

func TestServedRateIsByteIdenticalToLocalSplice(t *testing.T) {
	dir := t.TempDir()
	path := writeTestStream(t, dir, "run1", 3, 16)
	_, ts := newTestServer(t, dir)

	for _, rate := range []float64{0.5, 2, 4, 8} {
		for step := 0; step < 3; step++ {
			resp, body := get(t, fmt.Sprintf("%s/v1/archive/run1/%d/rho?rate=%g", ts.URL, step, rate), nil)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("rate %g step %d: status %d (%s)", rate, step, resp.StatusCode, body)
			}
			if got := resp.Header.Get("X-Served-Rate"); got != fmt.Sprintf("%g", rate) {
				t.Fatalf("rate %g: X-Served-Rate %q", rate, got)
			}
			want := localSplice(t, path, step, "rho", rate)
			if !bytes.Equal(body, want) {
				t.Fatalf("rate %g step %d: served %d bytes != local splice %d bytes", rate, step, len(body), len(want))
			}
			// SpliceArchive over the stored full bytes is the same splice.
			_, stored := get(t, fmt.Sprintf("%s/v1/archive/run1/%d/rho", ts.URL, step), nil)
			spliced, err := SpliceArchive(stored, rate)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(body, spliced) {
				t.Fatalf("rate %g step %d: served differs from SpliceArchive(stored)", rate, step)
			}
			// The splice must round-trip through the normal archive parser.
			if _, err := core.ParseCompressedField(body); err != nil {
				t.Fatalf("rate %g: served splice does not parse: %v", rate, err)
			}
		}
	}
}

func TestFullFetchServesStoredBytes(t *testing.T) {
	dir := t.TempDir()
	path := writeTestStream(t, dir, "run1", 2, 12)
	_, ts := newTestServer(t, dir)

	resp, body := get(t, ts.URL+"/v1/archive/run1/1/rho", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	fi, _ := f.Stat()
	sr, err := core.OpenStream(f, fi.Size())
	if err != nil {
		t.Fatal(err)
	}
	fields, err := sr.ReadStep(1)
	if err != nil {
		t.Fatal(err)
	}
	if want := fields["rho"].Bytes(); !bytes.Equal(body, want) {
		t.Fatalf("full fetch differs from stored archive (%d vs %d bytes)", len(body), len(want))
	}
	// A rate at or above the stored rate negotiates down to the same bytes.
	resp2, body2 := get(t, ts.URL+"/v1/archive/run1/1/rho?rate=32", nil)
	if resp2.StatusCode != http.StatusOK || !bytes.Equal(body2, body) {
		t.Fatalf("rate above stored must serve stored bytes (status %d, %d vs %d bytes)",
			resp2.StatusCode, len(body2), len(body))
	}
	if got := resp2.Header.Get("X-Served-Rate"); got != "12" {
		t.Fatalf("negotiated X-Served-Rate %q, want 12", got)
	}
}

func TestCacheHotFetchDoesZeroSpliceWork(t *testing.T) {
	dir := t.TempDir()
	writeTestStream(t, dir, "run1", 1, 16)
	srv, ts := newTestServer(t, dir)

	url := ts.URL + "/v1/archive/run1/0/rho?rate=4"
	resp1, body1 := get(t, url, nil)
	if resp1.StatusCode != http.StatusOK || resp1.Header.Get("X-Cache") != "MISS" {
		t.Fatalf("first fetch: status %d cache %q", resp1.StatusCode, resp1.Header.Get("X-Cache"))
	}
	st := srv.Stats()
	if st.Splices != 1 {
		t.Fatalf("after first fetch: %d splices, want 1", st.Splices)
	}
	resp2, body2 := get(t, url, nil)
	if resp2.StatusCode != http.StatusOK || resp2.Header.Get("X-Cache") != "HIT" {
		t.Fatalf("second fetch: status %d cache %q", resp2.StatusCode, resp2.Header.Get("X-Cache"))
	}
	if !bytes.Equal(body1, body2) {
		t.Fatal("cache hit served different bytes")
	}
	st = srv.Stats()
	if st.Splices != 1 {
		t.Fatalf("cache-hot fetch did splice work: %d splices", st.Splices)
	}
	if st.Cache.Hits != 1 {
		t.Fatalf("cache hits %d, want 1", st.Cache.Hits)
	}
	if st.Tiers[TierBrowse].CacheHits != 1 || st.Tiers[TierBrowse].Requests != 2 {
		t.Fatalf("browse tier %+v, want 2 requests / 1 hit", st.Tiers[TierBrowse])
	}
}

func TestConditionalRefetchIs304(t *testing.T) {
	dir := t.TempDir()
	writeTestStream(t, dir, "run1", 1, 16)
	srv, ts := newTestServer(t, dir)

	url := ts.URL + "/v1/archive/run1/0/rho?rate=4"
	resp1, _ := get(t, url, nil)
	etag := resp1.Header.Get("ETag")
	if etag == "" {
		t.Fatal("no ETag on 200")
	}
	resp2, body2 := get(t, url, map[string]string{"If-None-Match": etag})
	if resp2.StatusCode != http.StatusNotModified {
		t.Fatalf("conditional refetch: status %d, want 304", resp2.StatusCode)
	}
	if len(body2) != 0 {
		t.Fatalf("304 carried %d body bytes", len(body2))
	}
	if got := resp2.Header.Get("ETag"); got != etag {
		t.Fatalf("304 ETag %q != %q", got, etag)
	}
	// A weak-form or multi-candidate header still matches.
	resp3, _ := get(t, url, map[string]string{"If-None-Match": `"nope", W/` + etag})
	if resp3.StatusCode != http.StatusNotModified {
		t.Fatalf("weak/multi If-None-Match: status %d, want 304", resp3.StatusCode)
	}
	// Different variants get different ETags.
	resp4, _ := get(t, ts.URL+"/v1/archive/run1/0/rho?rate=2", map[string]string{"If-None-Match": etag})
	if resp4.StatusCode != http.StatusOK {
		t.Fatalf("other rate with stale ETag: status %d, want 200", resp4.StatusCode)
	}
	if srv.Stats().Tiers[TierBrowse].NotModified != 2 {
		t.Fatalf("not_modified %d, want 2", srv.Stats().Tiers[TierBrowse].NotModified)
	}
}

func TestRangeRequests(t *testing.T) {
	dir := t.TempDir()
	writeTestStream(t, dir, "run1", 1, 16)
	_, ts := newTestServer(t, dir)

	url := ts.URL + "/v1/archive/run1/0/rho?rate=4"
	_, full := get(t, url, nil)
	size := len(full)

	resp, body := get(t, url, map[string]string{"Range": "bytes=0-99"})
	if resp.StatusCode != http.StatusPartialContent {
		t.Fatalf("range: status %d, want 206", resp.StatusCode)
	}
	if want := fmt.Sprintf("bytes 0-99/%d", size); resp.Header.Get("Content-Range") != want {
		t.Fatalf("Content-Range %q, want %q", resp.Header.Get("Content-Range"), want)
	}
	if !bytes.Equal(body, full[:100]) {
		t.Fatal("range bytes differ from prefix")
	}
	resp, body = get(t, url, map[string]string{"Range": "bytes=-37"})
	if resp.StatusCode != http.StatusPartialContent || !bytes.Equal(body, full[size-37:]) {
		t.Fatalf("suffix range: status %d len %d", resp.StatusCode, len(body))
	}
	resp, body = get(t, url, map[string]string{"Range": fmt.Sprintf("bytes=%d-", size/2)})
	if resp.StatusCode != http.StatusPartialContent || !bytes.Equal(body, full[size/2:]) {
		t.Fatalf("open range: status %d len %d", resp.StatusCode, len(body))
	}
	// Malformed ranges are ignored: full 200.
	resp, body = get(t, url, map[string]string{"Range": "bytes=5-2"})
	if resp.StatusCode != http.StatusOK || len(body) != size {
		t.Fatalf("inverted range: status %d len %d, want full 200", resp.StatusCode, len(body))
	}
	// Unsatisfiable ranges are 416 with the size advertised.
	resp, _ = get(t, url, map[string]string{"Range": fmt.Sprintf("bytes=%d-", size+10)})
	if resp.StatusCode != http.StatusRequestedRangeNotSatisfiable {
		t.Fatalf("unsatisfiable range: status %d, want 416", resp.StatusCode)
	}
	if want := fmt.Sprintf("bytes */%d", size); resp.Header.Get("Content-Range") != want {
		t.Fatalf("416 Content-Range %q, want %q", resp.Header.Get("Content-Range"), want)
	}
}

func TestManifestRungSizesAreExact(t *testing.T) {
	dir := t.TempDir()
	writeTestStream(t, dir, "run1", 2, 16)
	_, ts := newTestServer(t, dir)

	resp, body := get(t, ts.URL+"/v1/archive/run1/manifest", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("manifest: status %d (%s)", resp.StatusCode, body)
	}
	var m Manifest
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatal(err)
	}
	if m.Steps != 2 || len(m.Fields) != 2 {
		t.Fatalf("manifest %d steps / %d fields, want 2/2", m.Steps, len(m.Fields))
	}
	var rho, temp *FieldManifest
	for i := range m.Fields {
		switch m.Fields[i].Name {
		case "rho":
			rho = &m.Fields[i]
		case "temp":
			temp = &m.Fields[i]
		}
	}
	if rho == nil || temp == nil {
		t.Fatalf("manifest fields %+v", m.Fields)
	}
	if !rho.Progressive || rho.MaxRate != 16 || rho.Codec != string(codec.ZFP) {
		t.Fatalf("rho manifest %+v", rho)
	}
	if !temp.Preview || temp.Codec != string(codec.SZ) || temp.Progressive {
		t.Fatalf("temp manifest %+v", temp)
	}
	// Every advertised rung size must equal the actual spliced body length.
	if len(rho.Rungs) == 0 {
		t.Fatal("rho has no rungs")
	}
	for _, rung := range rho.Rungs {
		if rung.Rate >= 16 {
			t.Fatalf("rung %g at or above stored rate", rung.Rate)
		}
		_, body := get(t, fmt.Sprintf("%s/v1/archive/run1/0/rho?rate=%g", ts.URL, rung.Rate), nil)
		if int64(len(body)) != rung.Bytes {
			t.Fatalf("rung %g predicted %d bytes, served %d", rung.Rate, rung.Bytes, len(body))
		}
	}
	// Conditional manifest refetch revalidates.
	resp2, _ := get(t, ts.URL+"/v1/archive/run1/manifest", map[string]string{"If-None-Match": resp.Header.Get("ETag")})
	if resp2.StatusCode != http.StatusNotModified {
		t.Fatalf("manifest If-None-Match: status %d", resp2.StatusCode)
	}
}

func TestPreviewRungMatchesLocalPreviewDecode(t *testing.T) {
	dir := t.TempDir()
	path := writeTestStream(t, dir, "run1", 1, 16)
	srv, ts := newTestServer(t, dir)

	resp, body := get(t, ts.URL+"/v1/archive/run1/0/temp?preview=2", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("preview: status %d (%s)", resp.StatusCode, body)
	}
	got, err := server.DecodeField(body, 1<<22)
	if err != nil {
		t.Fatal(err)
	}
	if got.Nx != 16 || got.Ny != 16 || got.Nz != 16 {
		t.Fatalf("preview dims %d×%d×%d", got.Nx, got.Ny, got.Nz)
	}
	// Reproduce locally: decode each stored sz partition at 2 octaves.
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	fi, _ := f.Stat()
	sr, err := core.OpenStream(f, fi.Size())
	if err != nil {
		t.Fatal(err)
	}
	fields, err := sr.ReadStep(0)
	if err != nil {
		t.Fatal(err)
	}
	cf := fields["temp"]
	p, err := grid.NewPartitioner(cf.Nx, cf.Ny, cf.Nz, cf.Nx/cf.PartitionDim, cf.Ny/cf.PartitionDim, cf.Nz/cf.PartitionDim)
	if err != nil {
		t.Fatal(err)
	}
	want := grid.NewField3D(cf.Nx, cf.Ny, cf.Nz)
	for i, part := range cf.Parts {
		c, err := sz.Parse(part.Bytes())
		if err != nil {
			t.Fatal(err)
		}
		brick, _, err := sz.DecompressPreview(c, 2)
		if err != nil {
			t.Fatal(err)
		}
		if err := grid.Insert(want, p.Partition(i), brick.Data); err != nil {
			t.Fatal(err)
		}
	}
	for i := range want.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("preview cell %d: served %v, local %v", i, got.Data[i], want.Data[i])
		}
	}
	if srv.Stats().PreviewDecodes != 1 {
		t.Fatalf("preview decodes %d, want 1", srv.Stats().PreviewDecodes)
	}
}

func TestErrorMapping(t *testing.T) {
	dir := t.TempDir()
	writeTestStream(t, dir, "run1", 1, 16)
	_, ts := newTestServer(t, dir)

	cases := []struct {
		name, url string
		status    int
	}{
		{"unknown stream", "/v1/archive/nope/manifest", http.StatusNotFound},
		{"traversal stream name", "/v1/archive/..%2Frun1/manifest", http.StatusNotFound},
		{"unknown step", "/v1/archive/run1/7/rho", http.StatusNotFound},
		{"unknown field", "/v1/archive/run1/0/nope", http.StatusNotFound},
		{"non-integer step", "/v1/archive/run1/x/rho", http.StatusBadRequest},
		{"bad rate", "/v1/archive/run1/0/rho?rate=NaN", http.StatusBadRequest},
		{"negative rate", "/v1/archive/run1/0/rho?rate=-3", http.StatusBadRequest},
		{"rate on sz field", "/v1/archive/run1/0/temp?rate=4", http.StatusBadRequest},
		{"preview on zfp field", "/v1/archive/run1/0/rho?preview=2", http.StatusBadRequest},
		{"rate and preview", "/v1/archive/run1/0/rho?rate=4&preview=2", http.StatusBadRequest},
		{"bad preview", "/v1/archive/run1/0/temp?preview=0", http.StatusBadRequest},
	}
	for _, tc := range cases {
		resp, body := get(t, ts.URL+tc.url, nil)
		if resp.StatusCode != tc.status {
			t.Errorf("%s: status %d, want %d (%s)", tc.name, resp.StatusCode, tc.status, body)
		}
	}
}

func TestSidecarRebuildWhenMissingOrStale(t *testing.T) {
	dir := t.TempDir()
	path := writeTestStream(t, dir, "run1", 2, 16)

	// Splice once with the writer's sidecar to get the reference bytes.
	srv1, ts1 := newTestServer(t, dir)
	_, want := get(t, ts1.URL+"/v1/archive/run1/0/rho?rate=4", nil)
	if srv1.Stats().SidecarRebuilds != 0 {
		t.Fatalf("fresh sidecar was rebuilt")
	}
	ts1.Close()
	srv1.Close()

	// Delete the sidecar: the server must rebuild by scanning and still
	// serve identical bytes (and persist the rebuilt sidecar).
	if err := os.Remove(path + SidecarSuffix); err != nil {
		t.Fatal(err)
	}
	srv2, ts2 := newTestServer(t, dir)
	_, got := get(t, ts2.URL+"/v1/archive/run1/0/rho?rate=4", nil)
	if !bytes.Equal(got, want) {
		t.Fatal("rebuilt sidecar produced different splice bytes")
	}
	if srv2.Stats().SidecarRebuilds != 1 {
		t.Fatalf("rebuilds %d, want 1", srv2.Stats().SidecarRebuilds)
	}
	if _, err := os.Stat(path + SidecarSuffix); err != nil {
		t.Fatalf("rebuilt sidecar not persisted: %v", err)
	}

	// Corrupt the sidecar binding: flip a byte inside the tables. The
	// trailer CRC fails, so the server falls back to a rebuild.
	data, err := os.ReadFile(path + SidecarSuffix)
	if err != nil {
		t.Fatal(err)
	}
	data[20] ^= 0xff
	if err := os.WriteFile(path+SidecarSuffix, data, 0o644); err != nil {
		t.Fatal(err)
	}
	srv3, ts3 := newTestServer(t, dir)
	_, got3 := get(t, ts3.URL+"/v1/archive/run1/0/rho?rate=4", nil)
	if !bytes.Equal(got3, want) {
		t.Fatal("corrupt-sidecar recovery produced different splice bytes")
	}
	if srv3.Stats().SidecarRebuilds != 1 {
		t.Fatalf("rebuilds %d, want 1", srv3.Stats().SidecarRebuilds)
	}
}

func TestSidecarRoundTrip(t *testing.T) {
	sc := &sidecar{
		footerCRC: 0xdeadbeef,
		steps: [][]fieldIndex{
			{
				{name: "a", starts: [][]int{{0, 13, 40, 96}, nil}},
				{name: "bb", starts: [][]int{{0, 7}}},
			},
			{
				{name: "a", starts: [][]int{nil, nil}},
			},
		},
	}
	data := encodeSidecar(sc)
	got, err := parseSidecar(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.footerCRC != sc.footerCRC || len(got.steps) != 2 {
		t.Fatalf("round trip header: %+v", got)
	}
	fi := got.field(0, "a")
	if fi == nil || len(fi.starts) != 2 || len(fi.starts[0]) != 4 || fi.starts[0][2] != 40 {
		t.Fatalf("round trip tables: %+v", fi)
	}
	if got.field(1, "bb") != nil {
		t.Fatal("field lookup leaked across steps")
	}
	// Any bit flip must be rejected by the trailer CRC.
	for _, i := range []int{0, 8, 15, len(data) / 2, len(data) - 1} {
		bad := bytes.Clone(data)
		bad[i] ^= 0x01
		if _, err := parseSidecar(bad); !errors.Is(err, apierr.ErrCorruptArchive) {
			t.Fatalf("flip at %d: err %v, want ErrCorruptArchive", i, err)
		}
	}
	// Truncations too.
	for _, n := range []int{0, 4, 19, len(data) - 1} {
		if _, err := parseSidecar(data[:n]); !errors.Is(err, apierr.ErrCorruptArchive) {
			t.Fatalf("truncate to %d: err %v, want ErrCorruptArchive", n, err)
		}
	}
}

func TestCacheEvictionAndSingleflight(t *testing.T) {
	c := newBlockCache(100)
	builds := 0
	body, hit, err := c.getOrBuild("a", func() ([]byte, error) { builds++; return make([]byte, 60), nil })
	if err != nil || hit || len(body) != 60 || builds != 1 {
		t.Fatalf("first build: hit=%v len=%d builds=%d err=%v", hit, len(body), builds, err)
	}
	if _, hit, _ := c.getOrBuild("a", nil); !hit {
		t.Fatal("second get missed")
	}
	// Inserting 60 more evicts "a" (LRU) to fit the budget.
	c.getOrBuild("b", func() ([]byte, error) { return make([]byte, 60), nil })
	st := c.stats()
	if st.Evictions != 1 || st.Bytes != 60 || st.Entries != 1 {
		t.Fatalf("eviction stats %+v", st)
	}
	// Oversized entries are served but never cached.
	c.getOrBuild("huge", func() ([]byte, error) { return make([]byte, 200), nil })
	if st := c.stats(); st.Entries != 1 || st.Bytes != 60 {
		t.Fatalf("oversized entry was cached: %+v", st)
	}
	// Errors are not cached either.
	if _, _, err := c.getOrBuild("err", func() ([]byte, error) { return nil, errors.New("boom") }); err == nil {
		t.Fatal("error swallowed")
	}
	if _, hit, err := c.getOrBuild("err", func() ([]byte, error) { return []byte("ok"), nil }); hit || err != nil {
		t.Fatalf("error was cached: hit=%v err=%v", hit, err)
	}

	// Concurrent misses on one key merge into one build.
	c2 := newBlockCache(1 << 20)
	var mu sync.Mutex
	started := make(chan struct{})
	release := make(chan struct{})
	buildCount := 0
	build := func() ([]byte, error) {
		mu.Lock()
		buildCount++
		mu.Unlock()
		close(started)
		<-release
		return []byte("shared"), nil
	}
	var wg sync.WaitGroup
	go c2.getOrBuild("k", build)
	<-started
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			body, _, err := c2.getOrBuild("k", func() ([]byte, error) {
				mu.Lock()
				buildCount++
				mu.Unlock()
				return []byte("shared"), nil
			})
			if err != nil || string(body) != "shared" {
				t.Errorf("merged get: %q %v", body, err)
			}
		}()
	}
	// The leader is parked on release, so every follower must join its
	// flight; release it only once all eight have merged.
	for {
		c2.mu.Lock()
		merged := c2.merged
		c2.mu.Unlock()
		if merged == 8 {
			break
		}
	}
	close(release)
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	if buildCount != 1 {
		t.Fatalf("%d builds for one key under contention, want 1", buildCount)
	}
	if st := c2.stats(); st.SingleflightMerged == 0 {
		t.Fatalf("no merged flights recorded: %+v", st)
	}
}

func TestListStreams(t *testing.T) {
	dir := t.TempDir()
	writeTestStream(t, dir, "bravo", 1, 8)
	writeTestStream(t, dir, "alpha", 1, 8)
	// Non-stream files are ignored.
	os.WriteFile(filepath.Join(dir, "notes.txt"), []byte("x"), 0o644)
	_, ts := newTestServer(t, dir)

	_, body := get(t, ts.URL+"/v1/archive", nil)
	var got struct {
		Streams []string `json:"streams"`
	}
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	if len(got.Streams) != 2 || got.Streams[0] != "alpha" || got.Streams[1] != "bravo" {
		t.Fatalf("streams %v", got.Streams)
	}
}

func TestHeadRequest(t *testing.T) {
	dir := t.TempDir()
	writeTestStream(t, dir, "run1", 1, 16)
	_, ts := newTestServer(t, dir)

	url := ts.URL + "/v1/archive/run1/0/rho?rate=4"
	_, full := get(t, url, nil)
	req, _ := http.NewRequest(http.MethodHead, url, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("HEAD status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("Content-Length"); got != fmt.Sprint(len(full)) {
		t.Fatalf("HEAD Content-Length %q, want %d", got, len(full))
	}
	if resp.Header.Get("ETag") == "" {
		t.Fatal("HEAD lost the ETag")
	}
}

// TestStatsEndpoint exercises /v1/stats over the wire (the other tests
// read Server.Stats directly) and the step-count accessors.
func TestStatsEndpoint(t *testing.T) {
	dir := t.TempDir()
	writeTestStream(t, dir, "snap", 2, 16)
	srv, ts := newTestServer(t, dir)

	resp, _ := get(t, ts.URL+"/v1/archive/snap/0/rho?rate=2", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warmup fetch: %d", resp.StatusCode)
	}
	resp, body := get(t, ts.URL+"/v1/stats", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats: %d", resp.StatusCode)
	}
	var st Stats
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.Splices != 1 || st.Tiers[TierBrowse].Requests != 1 {
		t.Fatalf("stats after one rate-2 fetch: %+v", st)
	}

	str, err := srv.store.Stream("snap")
	if err != nil {
		t.Fatal(err)
	}
	if str.Steps() != 2 {
		t.Fatalf("stream Steps() = %d, want 2", str.Steps())
	}
}
