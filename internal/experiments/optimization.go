package experiments

import (
	"context"
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/foresight"
	"repro/internal/nyx"
	"repro/internal/spectrum"
	"repro/internal/stats"
)

// Fig11ErrorBoundMap reproduces Fig. 11: the per-partition optimized error
// bounds for the temperature field (printed as summary statistics and a
// coarse z-slab map rather than a rendered image).
func Fig11ErrorBoundMap(ctx *Context) (*Result, error) {
	f, err := ctx.Field(nyx.FieldTemperature)
	if err != nil {
		return nil, err
	}
	cal, err := ctx.Calibration(nyx.FieldTemperature)
	if err != nil {
		return nil, err
	}
	avgEB, err := core.SpectrumBudget(f, core.BudgetOptions{Workers: ctx.Cfg.Workers})
	if err != nil {
		return nil, err
	}
	plan, err := ctx.Engine.Plan(context.Background(), f, cal, core.PlanOptions{AvgEB: avgEB})
	if err != nil {
		return nil, err
	}
	var m stats.Moments
	for _, eb := range plan.EBs {
		m.Add(eb)
	}
	res := &Result{
		ID:    "fig11",
		Title: "Optimized per-partition error bounds (temperature)",
		Cols:  []string{"statistic", "value"},
	}
	res.AddRow("partitions", fmt.Sprint(len(plan.EBs)))
	res.AddRow("budget avg eb", fnum(avgEB))
	res.AddRow("assigned mean", fnum(m.Mean()))
	res.AddRow("assigned min", fnum(m.Min()))
	res.AddRow("assigned max", fnum(m.Max()))
	res.AddRow("spread (max/min)", fnum(m.Max()/math.Max(m.Min(), 1e-300)))
	res.AddRow("at lower clamp", fmt.Sprint(countNear(plan.EBs, avgEB/4)))
	res.AddRow("at upper clamp", fmt.Sprint(countNear(plan.EBs, avgEB*4)))
	res.Notef("partitions receive individual bounds spanning the clamp box instead of one static value (paper Fig. 11)")
	return res, nil
}

func countNear(xs []float64, v float64) int {
	n := 0
	for _, x := range xs {
		if math.Abs(x-v) < 1e-9*v {
			n++
		}
	}
	return n
}

// Fig12BitQualityRatio reproduces Fig. 12: the per-partition bit-quality
// derivative |db/deb| is widely dispersed under the traditional static
// configuration and near-constant after optimization.
func Fig12BitQualityRatio(ctx *Context) (*Result, error) {
	f, err := ctx.Field(nyx.FieldTemperature)
	if err != nil {
		return nil, err
	}
	cal, err := ctx.Calibration(nyx.FieldTemperature)
	if err != nil {
		return nil, err
	}
	avgEB, err := core.SpectrumBudget(f, core.BudgetOptions{Workers: ctx.Cfg.Workers})
	if err != nil {
		return nil, err
	}
	plan, err := ctx.Engine.Plan(context.Background(), f, cal, core.PlanOptions{AvgEB: avgEB})
	if err != nil {
		return nil, err
	}
	rm := cal.Model
	deriv := func(feature, eb float64) float64 {
		// |db/deb| = |c|·C_m·eb^{c−1}
		return math.Abs(rm.Exponent) * rm.Cm(feature) * math.Pow(eb, rm.Exponent-1)
	}
	var trad, opt stats.Moments
	for i, ft := range plan.Features {
		trad.Add(deriv(ft, avgEB))
		opt.Add(deriv(ft, plan.EBs[i]))
	}
	res := &Result{
		ID:    "fig12",
		Title: "Bit-quality derivative dispersion: traditional vs optimized",
		Cols:  []string{"configuration", "mean|db/deb|", "sd", "sd/mean"},
	}
	res.AddRow("traditional (static)", fnum(trad.Mean()), fnum(trad.StdDev()), fnum(trad.StdDev()/trad.Mean()))
	res.AddRow("optimized (adaptive)", fnum(opt.Mean()), fnum(opt.StdDev()), fnum(opt.StdDev()/opt.Mean()))
	res.Notef("optimization equalizes the derivative across partitions — clamped partitions retain residual spread (paper Fig. 12)")
	return res, nil
}

// Fig13PowerSpectrum reproduces Fig. 13: P'(k)/P(k) of the adaptive
// configuration stays within the ±1 % band for k < 10.
func Fig13PowerSpectrum(ctx *Context) (*Result, error) {
	f, err := ctx.Field(nyx.FieldBaryonDensity)
	if err != nil {
		return nil, err
	}
	cal, err := ctx.Calibration(nyx.FieldBaryonDensity)
	if err != nil {
		return nil, err
	}
	avgEB, err := core.SpectrumBudget(f, core.BudgetOptions{Workers: ctx.Cfg.Workers})
	if err != nil {
		return nil, err
	}
	plan, err := ctx.Engine.Plan(context.Background(), f, cal, core.PlanOptions{AvgEB: avgEB})
	if err != nil {
		return nil, err
	}
	cf, err := ctx.Engine.CompressAdaptive(context.Background(), f, plan)
	if err != nil {
		return nil, err
	}
	recon, err := cf.Decompress(context.Background())
	if err != nil {
		return nil, err
	}
	orig, err := spectrum.Compute(f, spectrum.Options{Workers: ctx.Cfg.Workers})
	if err != nil {
		return nil, err
	}
	rec, err := spectrum.Compute(recon, spectrum.Options{Workers: ctx.Cfg.Workers})
	if err != nil {
		return nil, err
	}
	ratios, err := spectrum.Ratio(orig, rec)
	if err != nil {
		return nil, err
	}
	res := &Result{
		ID:    "fig13",
		Title: "Power spectrum ratio P'(k)/P(k), adaptive configuration (baryon density)",
		Cols:  []string{"k", "ratio", "within ±1%"},
	}
	for k := 1; k < len(ratios) && orig.K[k] < 12; k++ {
		if orig.Counts[k] == 0 {
			continue
		}
		ok := math.Abs(ratios[k]-1) <= 0.01
		res.AddRow(fnum(orig.K[k]), fnum(ratios[k]), fmt.Sprint(ok))
	}
	dev, err := spectrum.MaxDeviation(orig, rec, 10)
	if err != nil {
		return nil, err
	}
	res.Notef("max |ratio − 1| for k<10: %.4f (target ≤ 0.01); compression ratio %.1f at avg eb %.3g",
		dev, cf.Ratio(), avgEB)
	return res, nil
}

// Fig15RatioAllFields reproduces Fig. 15: compression-ratio improvement of
// the adaptive method over the traditional static method on all six fields,
// at matched post-analysis quality.
func Fig15RatioAllFields(ctx *Context) (*Result, error) {
	res := &Result{
		ID:    "fig15",
		Title: "Compression ratio: adaptive vs traditional, all six fields",
		Cols: []string{"field", "traditional_eb", "traditional_ratio",
			"adaptive_avg_eb", "adaptive_ratio", "adaptive_quality_ok", "improvement"},
	}
	var improvements []float64
	for _, name := range nyx.FieldNames {
		f, err := ctx.Field(name)
		if err != nil {
			return nil, err
		}
		cal, err := ctx.Calibration(name)
		if err != nil {
			return nil, err
		}
		budget, err := core.SpectrumBudget(f, core.BudgetOptions{Workers: ctx.Cfg.Workers})
		if err != nil {
			return nil, err
		}
		// Traditional method: trial-and-error over a geometric grid,
		// deploying one safety notch below the knee — the paper's "users
		// usually choose a relatively lower error-bound ... based on
		// empirical studies", since one tested snapshot cannot vouch for
		// the whole run. The grid spans from the (conservative) model
		// budget up to well past the empirical knee.
		ev := &foresight.Evaluator{Engine: ctx.Engine, Workers: ctx.Cfg.Workers}
		gridEBs, err := foresight.GeometricGrid(budget/8, budget*512, 16)
		if err != nil {
			return nil, err
		}
		te, err := ev.TrialAndError(context.Background(), name, f, gridEBs, 1)
		if err != nil {
			return nil, err
		}
		static, err := ctx.Engine.CompressStatic(context.Background(), f, te.ChosenEB)
		if err != nil {
			return nil, err
		}
		// Adaptive method: Eq. 10 says the FFT quality depends only on
		// the average bound, so the adaptive plan runs at the knee itself
		// — the accurate error-bound estimation the paper credits for the
		// velocity-field gains — and spreads the budget per partition.
		// Baryon density additionally carries the halo-finder budget
		// (Sec. 3.6's combined strategy). Because the uniform-error model
		// is mildly optimistic for heavy-tailed fields (error concentrates
		// in the partitions whose structure carries the spectrum), the
		// plan is verified and derated until the empirical band holds.
		planOpts := core.PlanOptions{AvgEB: te.BestPassingEB}
		if name == nyx.FieldBaryonDensity {
			p, err := ctx.Partitioner()
			if err != nil {
				return nil, err
			}
			hb, err := core.HaloBudget(f, ctx.HaloConfig(), 0.01, 1.0, p)
			if err != nil {
				return nil, err
			}
			if hb.MassBudget > 0 {
				hc := hb.Constraint()
				planOpts.Halo = &hc
			}
		}
		var adaptive *core.CompressedField
		var m *foresight.Metrics
		avgEB := planOpts.AvgEB
		for attempt := 0; attempt < 10; attempt++ {
			planOpts.AvgEB = avgEB
			plan, err := ctx.Engine.Plan(context.Background(), f, cal, planOpts)
			if err != nil {
				return nil, err
			}
			adaptive, err = ctx.Engine.CompressAdaptive(context.Background(), f, plan)
			if err != nil {
				return nil, err
			}
			m, err = ev.Evaluate(context.Background(), name, f, adaptive)
			if err != nil {
				return nil, err
			}
			if m.SpectrumOK {
				break
			}
			avgEB *= 0.9
		}
		imp := adaptive.Ratio()/static.Ratio() - 1
		improvements = append(improvements, imp)
		res.AddRow(name, fnum(te.ChosenEB), fnum(static.Ratio()),
			fnum(avgEB), fnum(adaptive.Ratio()), fmt.Sprint(m.QualityOK()),
			fmt.Sprintf("%+.1f%%", imp*100))
	}
	res.Notef("average improvement %+.1f%% (paper: 56.0%% average, up to 73%%)",
		stats.MeanOf(improvements)*100)
	res.Notef("traditional = one safety notch below the trial-and-error knee; adaptive = per-partition bounds averaging to the knee (same modeled quality, verified empirically in adaptive_quality_ok)")
	return res, nil
}
