package fft

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/grid"
)

// Plan3D performs 3-D complex DFTs of a fixed shape by applying 1-D
// transforms along x, y, and z. Rows are processed by a worker pool — the
// 3-D FFT of a 512³ field is the single most expensive analysis step in the
// pipeline, and it parallelizes embarrassingly across rows.
type Plan3D struct {
	Nx, Ny, Nz int
	px, py, pz *Plan
	workers    int
}

// NewPlan3D builds a 3-D plan; any positive dimensions are accepted
// (non-powers-of-two go through Bluestein). workers ≤ 0 means GOMAXPROCS.
func NewPlan3D(nx, ny, nz, workers int) (*Plan3D, error) {
	if nx < 1 || ny < 1 || nz < 1 {
		return nil, fmt.Errorf("fft: invalid 3-D shape %d×%d×%d", nx, ny, nz)
	}
	px, err := NewPlan(nx)
	if err != nil {
		return nil, err
	}
	py, err := NewPlan(ny)
	if err != nil {
		return nil, err
	}
	pz, err := NewPlan(nz)
	if err != nil {
		return nil, err
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Plan3D{Nx: nx, Ny: ny, Nz: nz, px: px, py: py, pz: pz, workers: workers}, nil
}

// Forward transforms data (length Nx·Ny·Nz, x-fastest) in place.
func (p *Plan3D) Forward(data []complex128) error { return p.run(data, false) }

// Inverse applies the inverse transform with full 1/(Nx·Ny·Nz)
// normalization in place.
func (p *Plan3D) Inverse(data []complex128) error { return p.run(data, true) }

func (p *Plan3D) run(data []complex128, inverse bool) error {
	if len(data) != p.Nx*p.Ny*p.Nz {
		return fmt.Errorf("fft: data length %d != %d×%d×%d", len(data), p.Nx, p.Ny, p.Nz)
	}
	// Pass 1: x-lines (contiguous).
	p.parallel(p.Ny*p.Nz, func(w int, row int) error {
		base := row * p.Nx
		line := data[base : base+p.Nx]
		if inverse {
			return p.px.Inverse(line)
		}
		return p.px.Forward(line)
	})
	// Pass 2: y-lines (stride Nx).
	if err := p.strided(data, p.py, p.Nx, p.Ny, func(row int) int {
		z := row / p.Nx
		x := row % p.Nx
		return z*p.Nx*p.Ny + x
	}, p.Nx*p.Nz, inverse); err != nil {
		return err
	}
	// Pass 3: z-lines (stride Nx·Ny).
	return p.strided(data, p.pz, p.Nx*p.Ny, p.Nz, func(row int) int {
		return row
	}, p.Nx*p.Ny, inverse)
}

// strided gathers a strided line into a scratch buffer, transforms it, and
// scatters it back. Each worker owns one scratch buffer.
func (p *Plan3D) strided(data []complex128, plan *Plan, stride, n int,
	base func(row int) int, rows int, inverse bool) error {

	scratch := make([][]complex128, p.workers)
	for i := range scratch {
		scratch[i] = make([]complex128, n)
	}
	return p.parallelErr(rows, func(w, row int) error {
		buf := scratch[w]
		b := base(row)
		for i := 0; i < n; i++ {
			buf[i] = data[b+i*stride]
		}
		var err error
		if inverse {
			err = plan.Inverse(buf)
		} else {
			err = plan.Forward(buf)
		}
		if err != nil {
			return err
		}
		for i := 0; i < n; i++ {
			data[b+i*stride] = buf[i]
		}
		return nil
	})
}

func (p *Plan3D) parallel(rows int, f func(worker, row int) error) {
	_ = p.parallelErr(rows, f)
}

func (p *Plan3D) parallelErr(rows int, f func(worker, row int) error) error {
	workers := p.workers
	if workers > rows {
		workers = rows
	}
	if workers <= 1 {
		for r := 0; r < rows; r++ {
			if err := f(0, r); err != nil {
				return err
			}
		}
		return nil
	}
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	chunk := (rows + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > rows {
			hi = rows
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			for r := lo; r < hi; r++ {
				if err := f(w, r); err != nil {
					select {
					case errCh <- err:
					default:
					}
					return
				}
			}
		}(w, lo, hi)
	}
	wg.Wait()
	select {
	case err := <-errCh:
		return err
	default:
		return nil
	}
}

// FieldToComplex copies a real field into a complex buffer.
func FieldToComplex(f *grid.Field3D) []complex128 {
	out := make([]complex128, len(f.Data))
	for i, v := range f.Data {
		out[i] = complex(float64(v), 0)
	}
	return out
}

// Forward3DField is a convenience that transforms a real scalar field and
// returns its complex spectrum.
func Forward3DField(f *grid.Field3D, workers int) ([]complex128, error) {
	p, err := NewPlan3D(f.Nx, f.Ny, f.Nz, workers)
	if err != nil {
		return nil, err
	}
	data := FieldToComplex(f)
	if err := p.Forward(data); err != nil {
		return nil, err
	}
	return data, nil
}
