package archiveserve

import (
	"fmt"
	"os"
	"sort"

	"repro/internal/apierr"
	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/zfp"
)

// WriterOptions configures an archive writer.
type WriterOptions struct {
	// Rate is the stored ZFP rate — the quality ceiling every lower rung
	// is spliced from. Default 16 bits/value.
	Rate float64
	// PartitionDim splits each axis into this many bricks (default 2).
	PartitionDim int
}

func (o *WriterOptions) defaults() {
	if o.Rate == 0 {
		o.Rate = 16
	}
	if o.PartitionDim == 0 {
		o.PartitionDim = 2
	}
}

// FieldSpec is one field of a step headed into the archive.
type FieldSpec struct {
	Field *grid.Field3D
	// Codec picks the archived representation: ZFP (default) stores the
	// progressive max-rate stream, SZ stores an error-bounded stream
	// servable as a coarsened preview.
	Codec codec.ID
	// ErrorBound is the SZ pointwise ABS bound (ignored for ZFP).
	ErrorBound float64
}

// Writer produces an archive stream and its sidecar index in one pass:
// every ZFP partition is compressed with CompressIndexed, so the per-block
// bit-offset tables the server splices from are recorded during
// compression instead of recovered by a scan.
type Writer struct {
	path string
	f    *os.File
	sw   *core.StreamWriter
	opt  WriterOptions
	sc   *sidecar
	done bool
}

// NewWriter creates (truncating) the stream at path and its sidecar at
// path+SidecarSuffix on Close.
func NewWriter(path string, opt WriterOptions) (*Writer, error) {
	opt.defaults()
	if err := (zfp.Options{Rate: opt.Rate}).Validate(); err != nil {
		return nil, fmt.Errorf("archiveserve: %w: %v", apierr.ErrBadConfig, err)
	}
	if opt.PartitionDim < 1 {
		return nil, fmt.Errorf("archiveserve: %w: partition dim %d", apierr.ErrBadConfig, opt.PartitionDim)
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("archiveserve: writer: %w", err)
	}
	sw, err := core.NewStreamWriter(f)
	if err != nil {
		f.Close()
		return nil, err
	}
	return &Writer{path: path, f: f, sw: sw, opt: opt, sc: &sidecar{}}, nil
}

// WriteStep compresses and appends one step. Fields are archived in
// sorted name order (the stream's canonical order); the sidecar records
// each ZFP partition's bit table in the same order.
func (w *Writer) WriteStep(fields map[string]FieldSpec) error {
	if w.done {
		return fmt.Errorf("archiveserve: writer is closed")
	}
	names := make([]string, 0, len(fields))
	for name := range fields {
		names = append(names, name)
	}
	sort.Strings(names)
	step := make([]fieldIndex, 0, len(names))
	cfs := make(map[string]*core.CompressedField, len(names))
	for _, name := range names {
		spec := fields[name]
		cf, fi, err := w.compressField(name, spec)
		if err != nil {
			return err
		}
		cfs[name] = cf
		step = append(step, fi)
	}
	if err := w.sw.WriteStep(cfs); err != nil {
		return err
	}
	w.sc.steps = append(w.sc.steps, step)
	return nil
}

func (w *Writer) compressField(name string, spec FieldSpec) (*core.CompressedField, fieldIndex, error) {
	fi := fieldIndex{name: name}
	f := spec.Field
	if f == nil {
		return nil, fi, fmt.Errorf("archiveserve: %w: field %q is nil", apierr.ErrBadConfig, name)
	}
	d := w.opt.PartitionDim
	if f.Nx%d != 0 || f.Ny%d != 0 || f.Nz%d != 0 {
		return nil, fi, fmt.Errorf("archiveserve: %w: field %q (%d×%d×%d) not divisible by partition dim %d",
			apierr.ErrBadConfig, name, f.Nx, f.Ny, f.Nz, d)
	}
	p, err := grid.NewPartitioner(f.Nx, f.Ny, f.Nz, f.Nx/d, f.Ny/d, f.Nz/d)
	if err != nil {
		return nil, fi, err
	}
	id := spec.Codec
	if id == "" {
		id = codec.ZFP
	}
	cf := &core.CompressedField{
		Nx: f.Nx, Ny: f.Ny, Nz: f.Nz,
		PartitionDim: d,
		Codec:        id,
		Parts:        make([]codec.Frame, 0, p.Count()),
	}
	fi.starts = make([][]int, p.Count())
	var scratch zfp.Scratch
	for i := 0; i < p.Count(); i++ {
		part := p.Partition(i)
		brick, err := grid.BrickField(part, grid.Extract(f, part))
		if err != nil {
			return nil, fi, err
		}
		switch id {
		case codec.ZFP:
			ix, err := zfp.CompressIndexed(brick, zfp.Options{Rate: w.opt.Rate}, &scratch)
			if err != nil {
				return nil, fi, err
			}
			cf.Parts = append(cf.Parts, codec.WrapZFP(ix.C))
			fi.starts[i] = ix.Starts()
		case codec.SZ:
			if spec.ErrorBound <= 0 {
				return nil, fi, fmt.Errorf("archiveserve: %w: field %q: sz needs a positive error bound", apierr.ErrBadConfig, name)
			}
			szc, err := codec.Lookup(codec.SZ)
			if err != nil {
				return nil, fi, err
			}
			fr, err := szc.Compress(brick.Data, brick.Nx, brick.Ny, brick.Nz,
				codec.Options{Mode: codec.ABS, ErrorBound: spec.ErrorBound}, nil)
			if err != nil {
				return nil, fi, err
			}
			cf.Parts = append(cf.Parts, fr)
		default:
			return nil, fi, fmt.Errorf("archiveserve: %w: field %q: unsupported archive codec %q", apierr.ErrBadConfig, name, id)
		}
	}
	return cf, fi, nil
}

// Steps reports how many steps have been written.
func (w *Writer) Steps() int { return w.sw.Steps() }

// Close finalizes the stream (footer), computes the footer binding, and
// persists the sidecar next to it.
func (w *Writer) Close() error {
	if w.done {
		return nil
	}
	w.done = true
	if err := w.sw.Close(); err != nil {
		w.f.Close()
		return err
	}
	if err := w.f.Sync(); err != nil {
		w.f.Close()
		return fmt.Errorf("archiveserve: writer: %w", err)
	}
	fi, err := w.f.Stat()
	if err != nil {
		w.f.Close()
		return fmt.Errorf("archiveserve: writer: %w", err)
	}
	crc, err := footerRegionCRC(w.f, fi.Size())
	if err != nil {
		w.f.Close()
		return err
	}
	if err := w.f.Close(); err != nil {
		return fmt.Errorf("archiveserve: writer: %w", err)
	}
	w.sc.footerCRC = crc
	if err := os.WriteFile(w.path+SidecarSuffix, encodeSidecar(w.sc), 0o644); err != nil {
		return fmt.Errorf("archiveserve: sidecar: %w", err)
	}
	return nil
}
